// Congestion: replay of the paper's §2 cascading-congestion incident.
//
// An enterprise workload ramps up and pushes one peering link past
// 85% ingress utilization. The congestion mitigation system withdraws
// anycast prefixes to shed load. Run twice on the identical incident:
//
//   - blind (pre-TIPSY): withdraw the biggest prefixes and hope —
//     shifted traffic can congest other links, forcing a cascade of
//     further withdrawals;
//   - with TIPSY: every candidate withdrawal is checked against the
//     predicted landing links' spare capacity first.
package main

import (
	"fmt"

	"tipsy/internal/cms"
	"tipsy/internal/core"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/netsim"
	"tipsy/internal/pipeline"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

const (
	seed       = 31
	trainHours = 72
	runHours   = 8
)

// incidentStats summarizes how one run of the incident went.
type incidentStats struct {
	cascadeHours int     // congested hours on links OTHER than the surging one
	cascadeLinks int     // distinct other links that congested
	peakUtil     float64 // worst utilization seen anywhere
	withdrawals  int
}

func main() {
	fmt.Println("=== blind mitigation (pre-TIPSY baseline) ===")
	blind := runIncident(true)
	fmt.Println()
	fmt.Println("=== TIPSY-guided mitigation ===")
	tipsy := runIncident(false)
	fmt.Println()
	fmt.Printf("%-28s %10s %10s\n", "", "blind", "TIPSY")
	fmt.Printf("%-28s %10d %10d\n", "cascaded congested hours", blind.cascadeHours, tipsy.cascadeHours)
	fmt.Printf("%-28s %10d %10d\n", "cascaded links", blind.cascadeLinks, tipsy.cascadeLinks)
	fmt.Printf("%-28s %9.0f%% %9.0f%%\n", "worst link utilization", blind.peakUtil*100, tipsy.peakUtil*100)
	fmt.Printf("%-28s %10d %10d\n", "withdrawals issued", blind.withdrawals, tipsy.withdrawals)
	if tipsy.cascadeHours <= blind.cascadeHours && tipsy.peakUtil <= blind.peakUtil {
		fmt.Println("\nTIPSY's what-if checks kept the congestion from cascading.")
	}
}

// runIncident builds the identical environment and incident and runs
// the CMS in the given mode.
func runIncident(blind bool) incidentStats {
	metros := geo.World()
	graph := topology.Generate(topology.TestGenConfig(seed), metros)
	workload := traffic.Generate(traffic.TestConfig(seed), graph, metros)
	simCfg := netsim.DefaultConfig(seed)
	simCfg.OutagesPerLinkYear = 0 // isolate the incident
	sim := netsim.New(simCfg, graph, metros, workload)

	// Train TIPSY on the days before the incident.
	agg := pipeline.NewAggregator(sim.GeoIP(), sim.DstMetadata)
	sim.Run(netsim.RunOptions{From: 0, To: trainHours, Sink: agg})
	train := agg.Records()
	hA := core.TrainHistorical(features.SetA, train, core.DefaultHistOpts())
	hAP := core.TrainHistorical(features.SetAP, train, core.DefaultHistOpts())
	hAL := core.TrainHistorical(features.SetAL, train, core.DefaultHistOpts())
	model := core.NewEnsemble(hAP, core.NewGeoCompletion(hAL, sim, metros), hA)

	// The incident, staged as in §2 of the paper: a transit peer's
	// link surges past threshold while the peer's other links — the
	// natural failover targets — are already running warm, so a blind
	// withdrawal shifts the surge onto links without headroom and the
	// congestion cascades through the peer (I1 -> I2 -> I3/I4).
	hot := busiestTransitLink(sim)
	l, _ := sim.Link(hot)
	for _, sib := range sim.LinksOfAS(l.PeerAS) {
		sl, _ := sim.Link(sib)
		if sib != hot && sl.Metro == l.Metro {
			sim.InflateToUtilization(sib, 0.80, trainHours, trainHours+runHours)
		}
	}
	// The peg projects with each flow's instantaneous link share, so
	// load-balancing rotation makes realized utilization come in
	// ~10%% under the target; aim correspondingly high.
	scale := sim.InflateToUtilization(hot, 1.02, trainHours, trainHours+runHours)
	m := sim.Metros().MustMetro(l.Metro)
	fmt.Printf("incident: ingress surge (x%.0f) on link %d (%s, %s, peer %v, %.0fG; %d sibling links warm)\n",
		scale, hot, l.Router, m.Name, l.PeerAS, l.Capacity/1e9, len(sim.LinksOfAS(l.PeerAS))-1)

	cmsCfg := cms.DefaultConfig(workload.Anycast)
	cmsCfg.Blind = blind
	ctrl := cms.New(cmsCfg, sim, model, sim.GeoIP(), sim.DstMetadata)

	var stats incidentStats
	cascaded := map[wan.LinkID]bool{}
	sim.Run(netsim.RunOptions{
		From: trainHours, To: trainHours + runHours,
		Sink: ctrl,
		OnHourEnd: func(h wan.Hour) {
			for _, id := range sim.Links() {
				ll, _ := sim.Link(id)
				u := ll.Utilization(sim.LinkBytes(h, id), 3600)
				if u > stats.peakUtil {
					stats.peakUtil = u
				}
				if u >= cmsCfg.UtilThreshold {
					fmt.Printf("  hour %d: link %-4d %-14s at %3.0f%%\n", h, id, ll.Router, u*100)
					if id != hot {
						stats.cascadeHours++
						cascaded[id] = true
					}
				}
			}
			ctrl.Step(h)
		},
	})
	stats.cascadeLinks = len(cascaded)

	for _, ev := range ctrl.Events() {
		ll, _ := sim.Link(ev.Link)
		fmt.Printf("  event @h%d on %s (%.0f%%): withdrew %d prefixes, %d deferred as unsafe\n",
			ev.Hour, ll.Router, ev.Util*100, len(ev.Withdrawn), ev.Deferred)
		for target, bytes := range ev.Predicted {
			tl, _ := sim.Link(target)
			fmt.Printf("      predicted shift -> link %-4d %-14s %6.1f Gbps\n",
				target, tl.Router, bytes*8/3600/1e9)
		}
	}
	stats.withdrawals = len(ctrl.Active())
	fmt.Printf("  %s\n", ctrl.Summary())
	return stats
}

// busiestTransitLink picks the busiest link whose peer AS has several
// other links — a transit-style peer, so the incident has the §2
// shape: alternates exist, but within the same neighbor.
func busiestTransitLink(sim *netsim.Sim) wan.LinkID {
	var hot wan.LinkID
	var best float64
	for _, id := range sim.Links() {
		l, _ := sim.Link(id)
		if len(sim.LinksOfAS(l.PeerAS)) < 4 {
			continue
		}
		var sum float64
		for h := wan.Hour(trainHours - 24); h < trainHours; h++ {
			sum += sim.LinkBytes(h, id)
		}
		if sum > best {
			best, hot = sum, id
		}
	}
	return hot
}
