// Capacity: the Appendix C risk analysis. TIPSY predicts, for every
// peering link, which OTHER links would exceed 70% utilization if it
// failed — the what-if input to capacity planning, where provisioning
// a link takes weeks of lead time.
package main

import (
	"fmt"

	"tipsy/internal/core"
	"tipsy/internal/dataset"
	"tipsy/internal/eval"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/netsim"
	"tipsy/internal/pipeline"
	"tipsy/internal/risk"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

func main() {
	const (
		seed    = 7
		trainTo = wan.Hour(8 * 24)
		testTo  = wan.Hour(11 * 24)
	)
	metros := geo.World()
	graph := topology.Generate(topology.TestGenConfig(seed), metros)
	workload := traffic.Generate(traffic.TestConfig(seed), graph, metros)
	simCfg := netsim.DefaultConfig(seed)
	simCfg.HorizonHours = testTo
	sim := netsim.New(simCfg, graph, metros, workload)

	// Push a handful of links into the warm zone so single-link
	// failures have consequences worth planning for.
	for i, id := range sim.Links() {
		if i%29 == 0 {
			sim.InflateToUtilization(id, 0.55, 0, 24)
		}
	}

	agg := pipeline.NewAggregator(sim.GeoIP(), sim.DstMetadata)
	sim.Run(netsim.RunOptions{From: 0, To: testTo, Sink: agg})
	all := agg.Records()
	train := dataset.Window(all, 0, trainTo)
	test := dataset.Window(all, trainTo, testTo)
	fmt.Printf("trained on %d records, analyzing %d test records (%d links)\n\n",
		len(train), len(test), sim.NumLinks())

	// Appendix C uses the Hist_AL model for the what-if predictions.
	model := core.TrainHistorical(features.SetAL, train, core.DefaultHistOpts())
	rows := risk.AtRisk(sim, model, test, risk.DefaultOptions())
	fmt.Print(risk.Format(rows, sim, 10))

	if len(rows) > 0 {
		r := rows[0]
		l, _ := sim.Link(r.Link)
		a, _ := sim.Link(r.Affecting)
		lm := metros.MustMetro(l.Metro)
		am := metros.MustMetro(a.Metro)
		fmt.Printf("\nmost exposed: %s (%s) would run hot for %d extra hours/week if %s (%s) failed —\n",
			l.Router, lm.Name, r.PredictedHours, a.Router, am.Name)
		fmt.Println("a candidate for provisioning ahead of the inevitable outage (cf. Figure 6).")
	}

	// For context, report how well the model actually predicts this
	// test window.
	acc := eval.Accuracy(model, test, eval.Options{Ks: []int{3}})
	fmt.Printf("\n(model top-3 accuracy on this window: %.1f%%)\n", acc[3]*100)
}
