// Quickstart: simulate a small Internet+WAN, train TIPSY on a few
// days of telemetry, and predict where a flow will ingress — with and
// without a withdrawal on its favourite link.
package main

import (
	"fmt"
	"io"
	"os"

	"tipsy/internal/core"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/netsim"
	"tipsy/internal/pipeline"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

func main() {
	if err := run(1, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

// run executes the whole quickstart tour against the given seed,
// writing the narrative to w. It is the entry point the smoke test
// drives.
func run(seed int64, w io.Writer) error {
	// 1. Build a synthetic Internet around a cloud WAN.
	metros := geo.World()
	graph := topology.Generate(topology.TestGenConfig(seed), metros)
	workload := traffic.Generate(traffic.TestConfig(seed), graph, metros)
	sim := netsim.New(netsim.DefaultConfig(seed), graph, metros, workload)
	fmt.Fprintf(w, "simulated WAN: %d ASes, %d peering links, %d flow aggregates\n",
		graph.Len(), sim.NumLinks(), len(workload.Flows))

	// 2. Run four days of traffic through the IPFIX pipeline.
	agg := pipeline.NewAggregator(sim.GeoIP(), sim.DstMetadata)
	sim.Run(netsim.RunOptions{From: 0, To: 4 * 24, Sink: agg})
	records := agg.Records()
	fmt.Fprintf(w, "collected %d hourly flow aggregates\n", len(records))

	// 3. Train the standard ensemble: most specific model first.
	hA := core.TrainHistorical(features.SetA, records, core.DefaultHistOpts())
	hAP := core.TrainHistorical(features.SetAP, records, core.DefaultHistOpts())
	hAL := core.TrainHistorical(features.SetAL, records, core.DefaultHistOpts())
	model := core.NewEnsemble(hAP, core.NewGeoCompletion(hAL, sim, metros), hA)
	fmt.Fprintf(w, "trained %s (%d AP tuples)\n", model.Name(), hAP.NumTuples())

	// 4. Predict for the biggest flow whose source AS has alternate
	// peering links (so the what-if below has somewhere to go).
	var big *traffic.FlowSpec
	for i := range workload.Flows {
		f := &workload.Flows[i]
		if len(sim.LinksOfAS(f.SrcAS)) < 2 {
			continue
		}
		if big == nil || f.BaseBps > big.BaseBps {
			big = f
		}
	}
	if big == nil {
		return fmt.Errorf("no flow with alternate peering links in seed %d workload", seed)
	}
	flow := features.FlowFeatures{
		AS:     big.SrcAS,
		Prefix: big.SrcPrefix,
		Loc:    sim.GeoIP().Lookup(big.SrcPrefix),
		Region: big.DstRegion,
		Type:   big.DstType,
	}
	fmt.Fprintf(w, "\nflow %v -> region %d (%v), %.0f Mbps:\n",
		flow.AS, flow.Region, flow.Type, big.BaseBps/1e6)
	preds := model.Predict(core.Query{Flow: flow, K: 3})
	printPreds(w, sim, preds)

	// 5. What if the top link loses the prefix? Ask again with the
	// link excluded — this is the what-if query the congestion
	// mitigation system runs before every withdrawal.
	if len(preds) > 0 {
		top := preds[0].Link
		fmt.Fprintf(w, "\nafter withdrawing the prefix from link %d:\n", top)
		printPreds(w, sim, model.Predict(core.Query{
			Flow: flow, K: 3,
			Exclude: func(l wan.LinkID) bool { return l == top },
		}))
	}
	return nil
}

func printPreds(w io.Writer, sim *netsim.Sim, preds []core.Prediction) {
	if len(preds) == 0 {
		fmt.Fprintln(w, "  (no prediction)")
		return
	}
	for i, p := range preds {
		l, _ := sim.Link(p.Link)
		m := sim.Metros().MustMetro(l.Metro)
		fmt.Fprintf(w, "  %d. link %-4d %-14s %-12s peer %-8v %5.1f%%\n",
			i+1, p.Link, l.Router, m.Name, l.PeerAS, p.Frac*100)
	}
}
