package main

import (
	"strings"
	"testing"
)

// TestQuickstartRuns drives the whole tour end to end on the default
// seed and spot-checks the narrative it prints.
func TestQuickstartRuns(t *testing.T) {
	var out strings.Builder
	if err := run(1, &out); err != nil {
		t.Fatalf("quickstart failed: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"simulated WAN:",
		"hourly flow aggregates",
		"trained",
		"after withdrawing the prefix from link",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestQuickstartDeterministic re-runs the tour with the same seed and
// expects the identical transcript — the end-to-end version of the
// seeded-substrate contract.
func TestQuickstartDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run(3, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(3, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed printed different transcripts:\n--- first\n%s--- second\n%s", a.String(), b.String())
	}
}
