// Ingestion: the wire-level data collection path of §4.1. The
// simulated edge routers export IPFIX (RFC 7011) over TCP to a
// collector and stream BMP (RFC 7854) to a monitoring station; the
// pipeline joins and aggregates the decoded records, and a model
// trains on the result — end to end over real sockets and real
// encodings, nothing handed across in memory.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"tipsy/internal/bmp"
	"tipsy/internal/core"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/ipfix"
	"tipsy/internal/netsim"
	"tipsy/internal/pipeline"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

const simHours = 48

func main() {
	metros := geo.World()
	graph := topology.Generate(topology.TestGenConfig(9), metros)
	workload := traffic.Generate(traffic.TestConfig(9), graph, metros)
	sim := netsim.New(netsim.DefaultConfig(9), graph, metros, workload)

	// --- IPFIX collector listening on loopback ------------------------
	ipfixLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	collector := ipfix.NewCollector()
	agg := pipeline.NewAggregator(sim.GeoIP(), sim.DstMetadata)
	var collectorWG sync.WaitGroup
	collectorWG.Add(1)
	go func() {
		defer collectorWG.Done()
		conn, err := ipfixLn.Accept()
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		// Batch hand-off: each decoded IPFIX message's records reach
		// the aggregator in one call, so the shard locks are taken per
		// message instead of per record.
		err = collector.ReadStreamBatch(conn, func(domain uint32, recs []ipfix.FlowRecord) {
			agg.RecordBatch(recs)
		})
		if err != nil {
			log.Fatalf("collector: %v", err)
		}
	}()

	// --- BMP station listening on loopback ----------------------------
	bmpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	station := bmp.NewStation()
	var stationWG sync.WaitGroup
	stationWG.Add(1)
	go func() {
		defer stationWG.Done()
		conn, err := bmpLn.Accept()
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		// All routers multiplex over one session here; the router ID
		// travels in the per-peer header, so the stream ID is fixed.
		if err := station.ReadStream(1, conn); err != nil {
			log.Fatalf("station: %v", err)
		}
	}()

	// --- Router side: dial the collectors and export ------------------
	ipfixConn, err := net.Dial("tcp", ipfixLn.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	bmpConn, err := net.Dial("tcp", bmpLn.Addr().String())
	if err != nil {
		log.Fatal(err)
	}

	// BMP: session bring-up and table dump for every peering link.
	sim.EmitBMPBootstrap(0, func(routerID uint32, msg []byte) {
		if _, err := bmpConn.Write(msg); err != nil {
			log.Fatal(err)
		}
	})

	// IPFIX: one exporting process per observation domain would be
	// faithful but noisy; a shared exporter per router works the same
	// way on the wire. Flow records ride the socket fully encoded.
	exporter := ipfix.NewExporter(ipfixConn, 1)
	if err := exporter.AnnounceSampling(4096, 0); err != nil {
		log.Fatal(err)
	}
	exported := 0
	sim.Run(netsim.RunOptions{
		From: 0, To: simHours,
		Sink: netsim.RecordSinkFunc(func(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) {
			exported++
			if err := exporter.Export(rec, uint32(h)*3600); err != nil {
				log.Fatal(err)
			}
		}),
		OnHourEnd: func(h wan.Hour) {
			sim.EmitBMPHour(h, func(routerID uint32, msg []byte) {
				bmpConn.Write(msg)
			})
		},
	})
	if err := exporter.Flush(simHours * 3600); err != nil {
		log.Fatal(err)
	}
	ipfixConn.Close()
	bmpConn.Close()
	collectorWG.Wait()
	stationWG.Wait()

	cs := collector.Stats()
	fmt.Printf("IPFIX: exported %d flow records, decoded %d from %d messages (%d lost), sampling 1/%d announced\n",
		exported, cs.Records, cs.Messages, cs.Lost, collector.SamplingInterval(1))
	ss := station.Stats()
	fmt.Printf("BMP:   %d sessions, %d route monitoring messages, %d peer-ups, %d peer-downs\n",
		station.NumSessions(), ss.Monitored, ss.PeerUps, ss.PeerDowns)

	// --- Train on what came off the wire -------------------------------
	records := agg.Records()
	model := core.TrainHistorical(features.SetAP, records, core.DefaultHistOpts())
	fmt.Printf("pipeline: %d hourly aggregates -> %s with %d tuples\n",
		len(records), model.Name(), model.NumTuples())
	if int(cs.Records) != exported || cs.Lost != 0 {
		log.Fatal("wire path lost records")
	}
	fmt.Println("wire-level ingestion path verified: router -> TCP -> collector -> pipeline -> model")
}
