// Package tipsy's top-level benchmarks regenerate every table and
// figure of the paper on the small environment (one bench per
// experiment, reporting its headline numbers as custom metrics),
// measure the model cost claims of Table 3 and Table 11, benchmark
// the protocol substrates, and run the ablation studies DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
package tipsy

import (
	"sync"
	"testing"

	"tipsy/internal/bgp"
	"tipsy/internal/bmp"
	"tipsy/internal/core"
	"tipsy/internal/eval"
	"tipsy/internal/features"
	"tipsy/internal/ipfix"
	"tipsy/internal/risk"
	"tipsy/internal/wan"
)

var (
	envOnce  sync.Once
	benchEnv *eval.Env

	env2Once  sync.Once
	benchEnv2 *eval.Env
)

func env(b *testing.B) *eval.Env {
	envOnce.Do(func() { benchEnv = eval.Build(eval.SmallEnvConfig(1)) })
	if benchEnv == nil {
		b.Fatal("environment build failed")
	}
	return benchEnv
}

// env2 is the Appendix D second-period environment (fresh seed),
// shared across calibration reruns like env so the expensive Build
// happens once per process, not once per b.N adjustment.
func env2(b *testing.B) *eval.Env {
	env2Once.Do(func() { benchEnv2 = eval.Build(eval.SmallEnvConfig(1001)) })
	if benchEnv2 == nil {
		b.Fatal("environment build failed")
	}
	return benchEnv2
}

// reportRows publishes a table's best non-oracle top-1/3 accuracy.
func reportRows(b *testing.B, rows []eval.AccuracyRow) {
	best1, best3 := 0.0, 0.0
	for _, r := range rows {
		if r.Oracle {
			continue
		}
		if r.Top1 > best1 {
			best1 = r.Top1
		}
		if r.Top3 > best3 {
			best3 = r.Top3
		}
	}
	b.ReportMetric(best1, "top1_%")
	b.ReportMetric(best3, "top3_%")
}

// ---------------------------------------------------------------------------
// Tables and figures (§5, appendices)
// ---------------------------------------------------------------------------

func BenchmarkTable4Overall(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var rows []eval.AccuracyRow
	for i := 0; i < b.N; i++ {
		rows = eval.Table4(e)
	}
	reportRows(b, rows)
}

func BenchmarkTable5AllOutages(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var rows []eval.AccuracyRow
	for i := 0; i < b.N; i++ {
		rows = eval.TableOutages(e, eval.AllOutages)
	}
	reportRows(b, rows)
}

func BenchmarkTable6SeenOutages(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var rows []eval.AccuracyRow
	for i := 0; i < b.N; i++ {
		rows = eval.TableOutages(e, eval.SeenOutages)
	}
	reportRows(b, rows)
}

func BenchmarkTable7UnseenOutages(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var rows []eval.AccuracyRow
	for i := 0; i < b.N; i++ {
		rows = eval.TableOutages(e, eval.UnseenOutages)
	}
	reportRows(b, rows)
}

func BenchmarkTable9NaiveBayesOverall(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var rows []eval.AccuracyRow
	for i := 0; i < b.N; i++ {
		rows = eval.Table9(e)
	}
	reportRows(b, rows)
}

func BenchmarkTable10NaiveBayesOutages(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var rows []eval.AccuracyRow
	for i := 0; i < b.N; i++ {
		rows = eval.Table10(e)
	}
	reportRows(b, rows)
}

func BenchmarkTable12AtRisk(b *testing.B) {
	e := env(b)
	model := e.Hist(features.SetAL)
	b.ResetTimer()
	var rows []risk.Row
	for i := 0; i < b.N; i++ {
		rows = risk.AtRisk(e.Sim, model, e.Test, risk.DefaultOptions())
	}
	b.ReportMetric(float64(len(rows)), "at_risk_pairs")
}

func BenchmarkTable13SecondPeriod(b *testing.B) {
	// Appendix D: a different time period (fresh seed).
	e2 := env2(b)
	b.ResetTimer()
	var rows []eval.AccuracyRow
	for i := 0; i < b.N; i++ {
		rows = eval.Table4(e2)
	}
	reportRows(b, rows)
}

func BenchmarkFig2ByteDistanceCDF(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var pts []eval.Fig2Point
	for i := 0; i < b.N; i++ {
		pts = eval.Fig2(e, e.Train)
	}
	b.ReportMetric(pts[0].CumFrac*100, "direct_peer_%")
}

func BenchmarkFig3LinkSpread(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var rows []eval.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = eval.Fig3(e, e.Train)
	}
	b.ReportMetric(float64(rows[0].P90), "hop1_p90_links")
}

func BenchmarkFig5OracleVsK(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var pts []eval.Fig5Point
	for i := 0; i < b.N; i++ {
		pts = eval.Fig5(e, []int{1, 3, 0})
	}
	b.ReportMetric(pts[1].Acc["Oracle_AP"], "oracleAP_top3_%")
}

func BenchmarkFig6FirstOutage(b *testing.B) {
	var pts []eval.Fig6Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts = eval.Fig6(1000, 1.6, 42, 30)
	}
	b.ReportMetric(pts[len(pts)-1].CumFrac*100, "links_with_outage_%")
}

func BenchmarkFig7LastOutage(b *testing.B) {
	var pts []eval.Fig7Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts = eval.Fig7(1000, 1.6, 42, 30)
	}
	b.ReportMetric(pts[1].CumFrac*100, "recent_outage_%")
}

func BenchmarkFig9TrainingWindow(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var pts []eval.Fig9Point
	for i := 0; i < b.N; i++ {
		pts = eval.Fig9(e, []int{2, 4}, 1, 2)
	}
	b.ReportMetric(pts[len(pts)-1].MeanTop3, "longest_window_top3_%")
}

func BenchmarkFig10Staleness(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var pts []eval.Fig10Point
	for i := 0; i < b.N; i++ {
		pts = eval.Fig10(e, 2)
	}
	b.ReportMetric(pts[0].Top3, "day1_top3_%")
}

func BenchmarkFig11SlidingWindows(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var stats []eval.Fig11Stats
	for i := 0; i < b.N; i++ {
		stats = eval.Fig11(e, 2)
	}
	b.ReportMetric(stats[0].Median, "overall_median_top3_%")
}

// ---------------------------------------------------------------------------
// Model costs (Table 3, Table 11)
// ---------------------------------------------------------------------------

func benchTrainHistorical(b *testing.B, set features.Set) {
	e := env(b)
	b.ResetTimer()
	var h *core.Historical
	for i := 0; i < b.N; i++ {
		h = core.TrainHistorical(set, e.Train, core.DefaultHistOpts())
	}
	b.ReportMetric(float64(h.NumTuples()), "tuples")
	b.ReportMetric(float64(len(e.Train))/float64(b.Elapsed().Seconds()/float64(b.N))/1e6, "Mrec/s")
}

func BenchmarkTable3TrainHistA(b *testing.B)  { benchTrainHistorical(b, features.SetA) }
func BenchmarkTable3TrainHistAP(b *testing.B) { benchTrainHistorical(b, features.SetAP) }
func BenchmarkTable3TrainHistAL(b *testing.B) { benchTrainHistorical(b, features.SetAL) }

func BenchmarkTable3PredictHistorical(b *testing.B) {
	// Table 3: one prediction is O(1) — a table lookup.
	e := env(b)
	h := e.Hist(features.SetAP)
	flows := make([]features.FlowFeatures, 0, 1024)
	for _, r := range e.Test {
		flows = append(flows, r.Flow)
		if len(flows) == cap(flows) {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Predict(core.Query{Flow: flows[i%len(flows)], K: 3})
	}
}

func BenchmarkTable11TrainNB(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var nb *core.NaiveBayes
	for i := 0; i < b.N; i++ {
		nb = core.TrainNaiveBayes(features.SetAL, e.Train, core.DefaultNBOpts())
	}
	b.ReportMetric(float64(nb.NumParameters()), "parameters")
	b.ReportMetric(float64(nb.NumClasses()), "classes")
}

func BenchmarkTable11PredictNB(b *testing.B) {
	// Table 11: one NB prediction scores every class — O(l log l),
	// orders of magnitude costlier than the historical lookup.
	e := env(b)
	nb := core.TrainNaiveBayes(features.SetAL, e.Train, core.DefaultNBOpts())
	flows := make([]features.FlowFeatures, 0, 256)
	for _, r := range e.Test {
		flows = append(flows, r.Flow)
		if len(flows) == cap(flows) {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb.Predict(core.Query{Flow: flows[i%len(flows)], K: 3})
	}
}

// ---------------------------------------------------------------------------
// Substrate throughput
// ---------------------------------------------------------------------------

func BenchmarkResolveFlow(b *testing.B) {
	e := env(b)
	flows := e.Workload.Flows
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &flows[i%len(flows)]
		e.Sim.ResolveFlow(f, wan.Hour(i%48))
	}
}

func BenchmarkBGPUpdateRoundTrip(b *testing.B) {
	u := &bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  []bgp.ASN{64500, 174, 3356},
			NextHop: bgp.V4(192, 0, 2, 1),
		},
		NLRI: []bgp.Prefix{
			bgp.MakePrefix(bgp.V4(40, 0, 0, 0), 16),
			bgp.MakePrefix(bgp.V4(40, 1, 0, 0), 16),
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg := u.Marshal()
		if _, err := bgp.Unmarshal(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIPFIXRecordRoundTrip(b *testing.B) {
	rec := &ipfix.FlowRecord{
		SrcAddr: bgp.V4(11, 0, 3, 7), DstAddr: bgp.V4(40, 1, 2, 3),
		Octets: 123456789, Packets: 98765, Ingress: 42, SrcAS: 64496,
		StartSecs: 3600, EndSecs: 7199,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ipfix.UnmarshalFlowRecord(rec.Marshal()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMPRouteMonitoringRoundTrip(b *testing.B) {
	rm := &bmp.RouteMonitoring{
		Peer: bmp.PeerHeader{Address: bgp.V4(198, 51, 100, 1), AS: 174, BGPID: 7},
		Update: &bgp.Update{
			Attrs: bgp.PathAttrs{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{64500}, NextHop: 1},
			NLRI:  []bgp.Prefix{bgp.MakePrefix(bgp.V4(40, 0, 0, 0), 10)},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bmp.Decode(rm.Marshal()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4)
// ---------------------------------------------------------------------------

// BenchmarkAblationWeighting compares byte-weighted training (§3.3)
// against unweighted sample counting.
func BenchmarkAblationWeighting(b *testing.B) {
	e := env(b)
	unweighted := make([]features.Record, len(e.Train))
	copy(unweighted, e.Train)
	for i := range unweighted {
		unweighted[i].Bytes = 1
	}
	var weighted, flat map[int]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mW := core.TrainHistorical(features.SetAP, e.Train, core.DefaultHistOpts())
		mU := core.TrainHistorical(features.SetAP, unweighted, core.DefaultHistOpts())
		weighted = eval.Accuracy(mW, e.Test, eval.Options{Ks: []int{3}})
		flat = eval.Accuracy(mU, e.Test, eval.Options{Ks: []int{3}})
	}
	b.ReportMetric(weighted[3]*100, "weighted_top3_%")
	b.ReportMetric(flat[3]*100, "unweighted_top3_%")
}

// BenchmarkAblationPrefixLen explores the §3.2 resolution/feature-
// space trade-off by coarsening the source prefix feature.
func BenchmarkAblationPrefixLen(b *testing.B) {
	e := env(b)
	coarsen := func(recs []features.Record, bits uint8) []features.Record {
		out := make([]features.Record, len(recs))
		copy(out, recs)
		mask := bgp.Mask(bits)
		for i := range out {
			out[i].Flow.Prefix &= mask
		}
		return out
	}
	results := map[uint8]float64{}
	var tuples []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuples = tuples[:0]
		for _, bits := range []uint8{16, 20, 24} {
			train := coarsen(e.Train, bits)
			test := coarsen(e.Test, bits)
			m := core.TrainHistorical(features.SetAP, train, core.DefaultHistOpts())
			results[bits] = eval.Accuracy(m, test, eval.Options{Ks: []int{3}})[3] * 100
			tuples = append(tuples, m.NumTuples())
		}
	}
	b.ReportMetric(results[16], "slash16_top3_%")
	b.ReportMetric(results[24], "slash24_top3_%")
	b.ReportMetric(float64(tuples[2]-tuples[0]), "extra_tuples_at_24")
}

// BenchmarkAblationMaxLinks varies how many ranked links the model
// keeps per tuple (§5.1.2: training beyond the useful rank is waste).
func BenchmarkAblationMaxLinks(b *testing.B) {
	e := env(b)
	acc := map[int]float64{}
	size := map[int]int{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, max := range []int{1, 3, 16} {
			m := core.TrainHistorical(features.SetAP, e.Train, core.HistOpts{MaxLinksPerTuple: max})
			acc[max] = eval.Accuracy(m, e.Test, eval.Options{Ks: []int{3}})[3] * 100
			size[max] = m.NumEntries()
		}
	}
	b.ReportMetric(acc[1], "keep1_top3_%")
	b.ReportMetric(acc[16], "keep16_top3_%")
	b.ReportMetric(float64(size[16])/float64(size[1]), "size_ratio")
}

// BenchmarkBaselineMLP reproduces the paper's model-selection claim
// (§3.3): a DNN over hashed categorical features is far more
// expensive to train than the one-pass Historical model and does not
// beat it. The custom metrics let the two be compared directly.
func BenchmarkBaselineMLP(b *testing.B) {
	e := env(b)
	opts := core.DefaultMLPOpts()
	opts.Epochs = 2
	var mlpAcc, histAcc map[int]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mlp := core.TrainMLP(features.SetAL, e.Train, opts)
		hist := core.TrainHistorical(features.SetAL, e.Train, core.DefaultHistOpts())
		mlpAcc = eval.Accuracy(mlp, e.Test, eval.Options{Ks: []int{3}})
		histAcc = eval.Accuracy(hist, e.Test, eval.Options{Ks: []int{3}})
	}
	b.ReportMetric(mlpAcc[3]*100, "mlp_top3_%")
	b.ReportMetric(histAcc[3]*100, "hist_top3_%")
}

// BenchmarkAblationEnsembleOrder compares the two sequential ensemble
// orders of Table 2 on outage-affected traffic, where ordering
// matters most (Tables 5-7).
func BenchmarkAblationEnsembleOrder(b *testing.B) {
	e := env(b)
	hA := e.Hist(features.SetA)
	hAP := e.Hist(features.SetAP)
	hAL := e.Hist(features.SetAL)
	apFirst := core.NewEnsemble(hAP, hAL, hA)
	alFirst := core.NewEnsemble(hAL, hAP, hA)
	var a1, a2 map[int]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a1 = eval.Accuracy(apFirst, e.Test, eval.Options{Ks: []int{3}})
		a2 = eval.Accuracy(alFirst, e.Test, eval.Options{Ks: []int{3}})
	}
	b.ReportMetric(a1[3]*100, "AP_first_top3_%")
	b.ReportMetric(a2[3]*100, "AL_first_top3_%")
}
