package bundle

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func textSection(name, body string) Section {
	return Section{Name: name, Write: func(w io.Writer) error {
		_, err := io.WriteString(w, body)
		return err
	}}
}

func writeTestBundle(t *testing.T, parent string) string {
	t.Helper()
	dir, err := Write(parent, "bundle-1-0001-test", "test", 42,
		map[string]string{"seed": "17", "go_version": "go1.22"},
		[]Section{
			textSection("metrics.prom", "tipsyd_predict_requests_total 3\n"),
			textSection("log_tail.txt", "level=INFO msg=retrained\n"),
		})
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestBundleRoundTrip(t *testing.T) {
	parent := t.TempDir()
	dir := writeTestBundle(t, parent)

	if filepath.Dir(dir) != parent || filepath.Base(dir) != "bundle-1-0001-test" {
		t.Fatalf("bundle landed at %s", dir)
	}
	// No staging leftovers: the write is atomic via rename.
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("parent has %d entries, want just the bundle", len(entries))
	}

	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Version != ManifestVersion || man.Reason != "test" || man.CreatedNs != 42 {
		t.Fatalf("manifest header %+v", man)
	}
	if man.Build["seed"] != "17" {
		t.Fatalf("manifest build %v", man.Build)
	}
	if len(man.Entries) != 2 {
		t.Fatalf("manifest entries %v", man.Entries)
	}
	// Entries are sorted by name.
	if man.Entries[0].Name != "log_tail.txt" || man.Entries[1].Name != "metrics.prom" {
		t.Fatalf("entry order %v", man.Entries)
	}
	if man.Entries[1].Size != int64(len("tipsyd_predict_requests_total 3\n")) {
		t.Fatalf("metrics size %d", man.Entries[1].Size)
	}

	if _, err := Verify(dir); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	dir := writeTestBundle(t, t.TempDir())
	path := filepath.Join(dir, "metrics.prom")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Same size, different bytes: only the CRC can catch it.
	buf[0] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil || !strings.Contains(err.Error(), "metrics.prom") {
		t.Fatalf("verify after bit flip: %v", err)
	}

	// Truncation changes the size.
	if err := os.WriteFile(path, buf[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("verify accepted a truncated section")
	}

	// A missing section fails too.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("verify accepted a missing section")
	}
}

func TestVerifyCatchesManifestCorruption(t *testing.T) {
	dir := writeTestBundle(t, t.TempDir())
	path := filepath.Join(dir, ManifestName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("verify accepted a corrupted manifest")
	}
}

func TestWriteRejectsBadNames(t *testing.T) {
	parent := t.TempDir()
	bad := []string{"", ".", ".hidden", "a/b", ".."}
	for _, name := range bad {
		if _, err := Write(parent, name, "r", 1, nil, nil); err == nil {
			t.Errorf("bundle name %q accepted", name)
		}
	}
	// Section names may not collide with the manifest or escape the dir.
	for _, sec := range []string{ManifestName, "x/y", "..", ""} {
		_, err := Write(parent, "ok-bundle", "r", 1, nil, []Section{textSection(sec, "x")})
		if err == nil {
			t.Errorf("section name %q accepted", sec)
		}
	}
	// Failed writes leave no staging debris behind.
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("parent not clean after failed writes: %v", entries)
	}
}

func TestWriteFailingSectionAborts(t *testing.T) {
	parent := t.TempDir()
	boom := errors.New("boom")
	_, err := Write(parent, "b", "r", 1, nil, []Section{
		{Name: "bad.bin", Write: func(io.Writer) error { return boom }},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err %v, want wrapped boom", err)
	}
	entries, _ := os.ReadDir(parent)
	if len(entries) != 0 {
		t.Fatalf("failed bundle left debris: %v", entries)
	}
}
