// Package bundle writes and verifies tipsyd's diagnostic bundles: a
// self-contained directory of evidence (metrics snapshot, quality
// report, flight-recorder dump, log tail, pprof profiles, build
// manifest) captured when an alarm fires or an operator asks. The
// directory is written to a hidden staging dir and renamed into place
// atomically, so a crash mid-write never leaves a half bundle at the
// final path; a framed, CRC-checked manifest (core/persist framing)
// indexes every section with its size and checksum so a bundle can be
// verified end to end after any amount of shipping around.
package bundle

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"tipsy/internal/core"
)

// ManifestName is the manifest's filename inside a bundle directory.
const ManifestName = "MANIFEST.tipsy"

// ManifestVersion is bumped when the manifest schema changes shape.
const ManifestVersion = 1

// Entry describes one section file in the bundle.
type Entry struct {
	Name  string `json:"name"`
	Size  int64  `json:"size"`
	CRC32 uint32 `json:"crc32"`
}

// Manifest indexes a bundle: why and when it was written, the build
// that wrote it, and a checksummed entry per section.
type Manifest struct {
	Version   int               `json:"version"`
	Reason    string            `json:"reason"`
	CreatedNs int64             `json:"created_ns"`
	Build     map[string]string `json:"build,omitempty"`
	Entries   []Entry           `json:"entries"`
}

// Section is one file to capture: a name and a writer callback, so
// callers stream content straight into the bundle without staging it
// in memory.
type Section struct {
	Name  string
	Write func(io.Writer) error
}

// Write captures sections into parent/name and returns the final
// directory path. Section checksums are computed as the bytes are
// written; the framed manifest lands last, then the whole staging
// directory is renamed into place. Any error aborts and removes the
// staging directory.
func Write(parent, name, reason string, nowNs int64, build map[string]string, sections []Section) (dir string, err error) {
	if name == "" || name != filepath.Base(name) || name[0] == '.' {
		return "", fmt.Errorf("bundle: invalid bundle name %q", name)
	}
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return "", err
	}
	staging, err := os.MkdirTemp(parent, "."+name+".tmp")
	if err != nil {
		return "", err
	}
	// No-op once the rename succeeds; cleans up every failure path.
	defer os.RemoveAll(staging)

	man := Manifest{Version: ManifestVersion, Reason: reason, CreatedNs: nowNs, Build: build}
	for _, sec := range sections {
		ent, err := writeSection(staging, sec)
		if err != nil {
			return "", fmt.Errorf("bundle: section %s: %w", sec.Name, err)
		}
		man.Entries = append(man.Entries, ent)
	}
	sort.Slice(man.Entries, func(i, j int) bool { return man.Entries[i].Name < man.Entries[j].Name })

	payload, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return "", err
	}
	mf, err := os.Create(filepath.Join(staging, ManifestName))
	if err != nil {
		return "", err
	}
	if err := core.WriteFramed(mf, core.BundleManifestMagic, payload); err != nil {
		mf.Close()
		return "", err
	}
	if err := mf.Close(); err != nil {
		return "", err
	}

	final := filepath.Join(parent, name)
	if err := os.Rename(staging, final); err != nil {
		return "", err
	}
	return final, nil
}

func writeSection(dir string, sec Section) (Entry, error) {
	if sec.Name == "" || sec.Name == ManifestName || sec.Name != filepath.Base(sec.Name) {
		return Entry{}, fmt.Errorf("invalid section name %q", sec.Name)
	}
	f, err := os.Create(filepath.Join(dir, sec.Name))
	if err != nil {
		return Entry{}, err
	}
	crc := crc32.NewIEEE()
	cw := &countingWriter{w: io.MultiWriter(f, crc)}
	if err := sec.Write(cw); err != nil {
		f.Close()
		return Entry{}, err
	}
	if err := f.Close(); err != nil {
		return Entry{}, err
	}
	return Entry{Name: sec.Name, Size: cw.n, CRC32: crc.Sum32()}, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadManifest reads and frame-verifies the manifest of the bundle at
// dir (the manifest's own CRC is checked by the framing).
func ReadManifest(dir string) (Manifest, error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, err
	}
	defer f.Close()
	payload, err := core.ReadFramed(f, core.BundleManifestMagic)
	if err != nil {
		return Manifest{}, fmt.Errorf("bundle: manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(payload, &man); err != nil {
		return Manifest{}, fmt.Errorf("bundle: manifest: %w", err)
	}
	if man.Version != ManifestVersion {
		return Manifest{}, fmt.Errorf("bundle: unsupported manifest version %d", man.Version)
	}
	return man, nil
}

// Verify checks the bundle at dir end to end — manifest frame CRC,
// then every entry's size and CRC-32 — and returns the manifest.
func Verify(dir string) (Manifest, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return Manifest{}, err
	}
	for _, ent := range man.Entries {
		if err := verifyEntry(dir, ent); err != nil {
			return Manifest{}, err
		}
	}
	return man, nil
}

func verifyEntry(dir string, ent Entry) error {
	if ent.Name != filepath.Base(ent.Name) {
		return fmt.Errorf("bundle: manifest names invalid entry %q", ent.Name)
	}
	f, err := os.Open(filepath.Join(dir, ent.Name))
	if err != nil {
		return fmt.Errorf("bundle: %s: %w", ent.Name, err)
	}
	defer f.Close()
	crc := crc32.NewIEEE()
	n, err := io.Copy(crc, f)
	if err != nil {
		return fmt.Errorf("bundle: %s: %w", ent.Name, err)
	}
	if n != ent.Size {
		return fmt.Errorf("bundle: %s: size %d, manifest says %d", ent.Name, n, ent.Size)
	}
	if crc.Sum32() != ent.CRC32 {
		return fmt.Errorf("bundle: %s: checksum mismatch", ent.Name)
	}
	return nil
}
