package dataset

import (
	"bytes"
	"reflect"
	"testing"

	"tipsy/internal/bgp"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/wan"
)

func TestFileSaveLoad(t *testing.T) {
	orig := &File{
		Records: []features.Record{
			mkrec(0, 1, 1, 100),
			mkrec(5, 2, 3, 200),
		},
		Links: []wan.Link{
			{ID: 1, Router: "sea47-er1", Metro: 1, PeerAS: 174, Capacity: 100e9},
			{ID: 3, Router: "fra30-er2", Metro: 30, PeerAS: 3356, Capacity: 400e9, Exchange: true},
		},
		Anycast:    []bgp.Prefix{bgp.MakePrefix(bgp.V4(40, 0, 0, 0), 16)},
		GeoEntries: map[uint32]geo.MetroID{0x0b000100: 7},
	}
	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, orig)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage should not load")
	}
}
