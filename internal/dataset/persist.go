package dataset

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"

	"tipsy/internal/bgp"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/wan"
)

// File is a portable telemetry bundle: the aggregated flow records of
// a time range together with the WAN metadata needed to train, query,
// and evaluate models offline.
type File struct {
	Version int
	// Records are the hourly aggregates from the pipeline.
	Records []features.Record
	// Links is the WAN's link directory at export time.
	Links []wan.Link
	// Anycast lists the announced prefixes.
	Anycast []bgp.Prefix
	// GeoEntries maps /24 source prefixes to metros (the Geo-IP view).
	GeoEntries map[uint32]geo.MetroID
}

const fileVersion = 1

// Save writes the bundle gzip-compressed — the spirit of §4.2's
// aggregation-then-compression stage.
func Save(w io.Writer, f *File) error {
	f.Version = fileVersion
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(f); err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	return zw.Close()
}

// Load reads a bundle written by Save.
func Load(r io.Reader) (*File, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	defer zr.Close()
	var f File
	if err := gob.NewDecoder(zr).Decode(&f); err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	if f.Version != fileVersion {
		return nil, fmt.Errorf("dataset: unsupported file version %d", f.Version)
	}
	return &f, nil
}
