package dataset

import (
	"testing"

	"tipsy/internal/bgp"
	"tipsy/internal/features"
	"tipsy/internal/wan"
)

func mkrec(h wan.Hour, as uint32, link wan.LinkID, bytes float64) features.Record {
	return features.Record{
		Hour: h,
		Flow: features.FlowFeatures{AS: bgp.ASN(as), Region: 1, Type: 1},
		Link: link, Bytes: bytes,
	}
}

func TestWindow(t *testing.T) {
	recs := []features.Record{mkrec(0, 1, 1, 1), mkrec(5, 1, 1, 1), mkrec(10, 1, 1, 1)}
	got := Window(recs, 1, 10)
	if len(got) != 1 || got[0].Hour != 5 {
		t.Errorf("Window = %+v", got)
	}
	if len(Window(recs, 10, 5)) != 0 {
		t.Error("inverted window should be empty")
	}
}

// linkActivity builds records where link carries traffic in every
// hour of [0, n) except the given gaps.
func linkActivity(link wan.LinkID, n int, gaps map[int]bool) []features.Record {
	var recs []features.Record
	for h := 0; h < n; h++ {
		if gaps[h] {
			continue
		}
		recs = append(recs, mkrec(wan.Hour(h), 1, link, 100))
	}
	return recs
}

func TestInferOutagesFindsGap(t *testing.T) {
	recs := linkActivity(1, 48, map[int]bool{10: true, 11: true, 12: true})
	outs := InferOutages(recs, 0, 48, DefaultInferOptions())
	if len(outs) != 1 {
		t.Fatalf("want 1 outage, got %+v", outs)
	}
	o := outs[0]
	if o.Link != 1 || o.Start != 10 || o.End != 13 || o.Duration() != 3 {
		t.Errorf("outage wrong: %+v", o)
	}
}

func TestInferOutagesIgnoresLongGaps(t *testing.T) {
	gaps := map[int]bool{}
	for h := 10; h < 40; h++ { // 30h gap > 24h band
		gaps[h] = true
	}
	recs := linkActivity(1, 96, gaps)
	outs := InferOutages(recs, 0, 96, DefaultInferOptions())
	if len(outs) != 0 {
		t.Errorf("30h gap should be excluded (decommission/disaster): %+v", outs)
	}
}

func TestInferOutagesIgnoresEdgeCensoredGaps(t *testing.T) {
	// A gap touching the window boundary has unknown true extent.
	recs := linkActivity(1, 48, map[int]bool{0: true, 1: true, 46: true, 47: true})
	outs := InferOutages(recs, 0, 48, DefaultInferOptions())
	if len(outs) != 0 {
		t.Errorf("edge-censored gaps must not count: %+v", outs)
	}
}

func TestInferOutagesIgnoresQuietLinks(t *testing.T) {
	// A link active in only a few hours is not monitored; its silence
	// is not an outage signal.
	var recs []features.Record
	recs = append(recs, mkrec(3, 1, 2, 50), mkrec(30, 1, 2, 50))
	outs := InferOutages(recs, 0, 48, DefaultInferOptions())
	if len(outs) != 0 {
		t.Errorf("quiet link produced outages: %+v", outs)
	}
}

func TestInferOutagesMultipleLinks(t *testing.T) {
	var recs []features.Record
	recs = append(recs, linkActivity(1, 48, map[int]bool{5: true})...)
	recs = append(recs, linkActivity(2, 48, map[int]bool{20: true, 21: true})...)
	recs = append(recs, linkActivity(3, 48, nil)...)
	outs := InferOutages(recs, 0, 48, DefaultInferOptions())
	if len(outs) != 2 {
		t.Fatalf("want 2 outages, got %+v", outs)
	}
	idx := NewOutageIndex(outs)
	if !idx.Down(1, 5) || idx.Down(1, 6) {
		t.Error("index wrong for link 1")
	}
	if !idx.Down(2, 21) || idx.Down(2, 22) {
		t.Error("index wrong for link 2")
	}
	if idx.HasOutage(3) {
		t.Error("healthy link flagged")
	}
	if links := idx.Links(); len(links) != 2 || links[0] != 1 || links[1] != 2 {
		t.Errorf("Links() = %v", links)
	}
	if evs := idx.Events(2); len(evs) != 1 || evs[0].Duration() != 2 {
		t.Errorf("Events(2) = %+v", evs)
	}
}

func TestTopLinks(t *testing.T) {
	f1 := features.FlowFeatures{AS: 1, Prefix: 100, Region: 1, Type: 1}
	f2 := features.FlowFeatures{AS: 2, Prefix: 200, Region: 1, Type: 1}
	recs := []features.Record{
		{Hour: 0, Flow: f1, Link: 1, Bytes: 100},
		{Hour: 1, Flow: f1, Link: 2, Bytes: 300},
		{Hour: 2, Flow: f1, Link: 1, Bytes: 150}, // link 1 total 250 < 300
		{Hour: 0, Flow: f2, Link: 5, Bytes: 10},
	}
	top := TopLinks(recs)
	if top[f1] != 2 {
		t.Errorf("top link of f1 = %d, want 2", top[f1])
	}
	if top[f2] != 5 {
		t.Errorf("top link of f2 = %d, want 5", top[f2])
	}
}

func TestTopLinksDeterministicTie(t *testing.T) {
	f := features.FlowFeatures{AS: 1, Region: 1, Type: 1}
	recs := []features.Record{
		{Hour: 0, Flow: f, Link: 9, Bytes: 100},
		{Hour: 0, Flow: f, Link: 3, Bytes: 100},
	}
	for i := 0; i < 10; i++ {
		if TopLinks(recs)[f] != 3 {
			t.Fatal("tie must break to the lowest link ID")
		}
	}
}
