// Package dataset prepares aggregated telemetry for training and
// evaluation: time-windowing (the paper's 3-week training / 1-week
// testing split, Appendix B), outage inference from IPFIX data
// (§5.1.1: a peering link that received no bytes in a one-hour window
// is considered down — IPFIX is "the ground truth about the operating
// state of the network"), and the seen/unseen outage classification
// behind Tables 6 and 7.
package dataset

import (
	"sort"

	"tipsy/internal/features"
	"tipsy/internal/wan"
)

// Window returns the records with From <= Hour < To, preserving
// order.
func Window(recs []features.Record, from, to wan.Hour) []features.Record {
	out := make([]features.Record, 0, len(recs)/4)
	for _, r := range recs {
		if r.Hour >= from && r.Hour < to {
			out = append(out, r)
		}
	}
	return out
}

// InferredOutage is one outage event reconstructed from telemetry.
type InferredOutage struct {
	Link  wan.LinkID
	Start wan.Hour // inclusive
	End   wan.Hour // exclusive
}

// Duration returns the event length in hours.
func (o InferredOutage) Duration() wan.Hour { return o.End - o.Start }

// InferOptions tunes outage inference.
type InferOptions struct {
	// MinDuration/MaxDuration band outage durations; the paper uses 1
	// to 24 hours — longer gaps tend to be decommissionings or
	// disasters, and sub-hour events are invisible at hourly
	// aggregation.
	MinDuration, MaxDuration wan.Hour
	// MinActiveFraction is how often a link must carry traffic inside
	// the window to be considered monitored at all; silent-by-nature
	// links would otherwise read as permanently down. Sampling can
	// also blank a quiet link's hour, which this filter plus the
	// duration band keeps from registering as churn.
	MinActiveFraction float64
}

// DefaultInferOptions matches the paper's evaluation band.
func DefaultInferOptions() InferOptions {
	return InferOptions{MinDuration: 1, MaxDuration: 24, MinActiveFraction: 0.33}
}

// InferOutages reconstructs outage events inside [from, to) from
// aggregated records: for every monitored link, maximal runs of hours
// with zero bytes whose length falls inside the duration band.
func InferOutages(recs []features.Record, from, to wan.Hour, opts InferOptions) []InferredOutage {
	if to <= from {
		return nil
	}
	n := int(to - from)
	active := make(map[wan.LinkID][]bool)
	for _, r := range recs {
		if r.Hour < from || r.Hour >= to || r.Bytes <= 0 {
			continue
		}
		row := active[r.Link]
		if row == nil {
			row = make([]bool, n)
			active[r.Link] = row
		}
		row[r.Hour-from] = true
	}
	var out []InferredOutage
	links := make([]wan.LinkID, 0, len(active))
	for l := range active {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, l := range links {
		row := active[l]
		activeHours := 0
		for _, a := range row {
			if a {
				activeHours++
			}
		}
		if float64(activeHours)/float64(n) < opts.MinActiveFraction {
			continue
		}
		for i := 0; i < n; {
			if row[i] {
				i++
				continue
			}
			j := i
			for j < n && !row[j] {
				j++
			}
			// Gaps touching the window edges are censored: their
			// true extent is unknown.
			if i > 0 && j < n {
				d := wan.Hour(j - i)
				if d >= opts.MinDuration && d <= opts.MaxDuration {
					out = append(out, InferredOutage{Link: l, Start: from + wan.Hour(i), End: from + wan.Hour(j)})
				}
			}
			i = j
		}
	}
	return out
}

// OutageIndex answers "was link l down at hour h" over a set of
// inferred outages.
type OutageIndex struct {
	byLink map[wan.LinkID][]InferredOutage
}

// NewOutageIndex indexes the events.
func NewOutageIndex(events []InferredOutage) *OutageIndex {
	idx := &OutageIndex{byLink: make(map[wan.LinkID][]InferredOutage)}
	for _, e := range events {
		idx.byLink[e.Link] = append(idx.byLink[e.Link], e)
	}
	for l := range idx.byLink {
		evs := idx.byLink[l]
		sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
	}
	return idx
}

// Down reports whether link was inferred down at hour h.
func (idx *OutageIndex) Down(link wan.LinkID, h wan.Hour) bool {
	evs := idx.byLink[link]
	i := sort.Search(len(evs), func(i int) bool { return evs[i].Start > h })
	return i > 0 && h < evs[i-1].End
}

// HasOutage reports whether link has any inferred outage.
func (idx *OutageIndex) HasOutage(link wan.LinkID) bool {
	return len(idx.byLink[link]) > 0
}

// Events returns the indexed outages of one link in start order.
func (idx *OutageIndex) Events(link wan.LinkID) []InferredOutage { return idx.byLink[link] }

// Links returns every link with at least one event, ascending.
func (idx *OutageIndex) Links() []wan.LinkID {
	out := make([]wan.LinkID, 0, len(idx.byLink))
	for l := range idx.byLink {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopLinks computes, for every flow aggregate (full feature
// granularity), the link that received the most of its bytes — "the
// top 1 link that received traffic during training" that Tables 5-7
// condition on.
func TopLinks(recs []features.Record) map[features.FlowFeatures]wan.LinkID {
	bytes := make(map[features.FlowFeatures]map[wan.LinkID]float64)
	for _, r := range recs {
		m := bytes[r.Flow]
		if m == nil {
			m = make(map[wan.LinkID]float64, 2)
			bytes[r.Flow] = m
		}
		m[r.Link] += r.Bytes
	}
	out := make(map[features.FlowFeatures]wan.LinkID, len(bytes))
	for f, m := range bytes {
		var best wan.LinkID
		bestB := -1.0
		for l, b := range m {
			if b > bestB || (b == bestB && l < best) {
				best, bestB = l, b
			}
		}
		out[f] = best
	}
	return out
}
