package netsim

import (
	"math"
	"sort"
	"sync"

	"tipsy/internal/ipfix"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

// RecordSink receives sampled flow observations as the simulation
// runs — the role of the paper's distributed IPFIX collectors feeding
// the data lake. Calls arrive from a single goroutine in
// deterministic order.
type RecordSink interface {
	Record(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord)
}

// RecordSinkFunc adapts a function to the RecordSink interface.
type RecordSinkFunc func(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord)

// Record implements RecordSink.
func (f RecordSinkFunc) Record(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) {
	f(h, link, rec)
}

// RunOptions controls one simulation run.
type RunOptions struct {
	From, To wan.Hour
	Sink     RecordSink
	// OnHourEnd, if set, runs after each simulated hour with ground
	// truth fully accumulated — the hook the congestion mitigation
	// system uses to observe utilization and inject withdrawals that
	// take effect the next hour.
	OnHourEnd func(h wan.Hour)
}

// Run simulates hours [From, To): it computes each active flow's
// volume, resolves its ingress links under the current announcement
// and outage state, accumulates ground-truth link loads, applies
// 1-in-N packet sampling, and emits IPFIX flow records to the sink.
func (s *Sim) Run(opts RunOptions) {
	workers := s.cfg.Workers
	flows := s.w.Flows

	type obs struct {
		flowID int
		link   wan.LinkID
		rec    ipfix.FlowRecord
	}
	for h := opts.From; h < opts.To; h++ {
		lb := make([]float64, len(s.links))
		perWorker := make([][]obs, workers)
		perWorkerLB := make([][]float64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, h wan.Hour) {
				defer wg.Done()
				localLB := make([]float64, len(s.links))
				var out []obs
				for i := w; i < len(flows); i += workers {
					f := &flows[i]
					bytes, packets := traffic.VolumeAt(f, s.metros, h)
					if bytes <= 0 {
						continue
					}
					shares := s.ResolveFlow(f, h)
					for _, sh := range shares {
						b := bytes * sh.Frac
						p := packets * sh.Frac
						localLB[sh.Link-1] += b
						oct, pkt, ok := s.sampleFlow(f, sh.Link, h, b, p)
						if !ok {
							continue
						}
						out = append(out, obs{
							flowID: f.ID,
							link:   sh.Link,
							rec: ipfix.FlowRecord{
								SrcAddr:   f.SrcAddr,
								DstAddr:   f.DstAddr,
								Octets:    oct,
								Packets:   pkt,
								Ingress:   uint32(sh.Link),
								SrcAS:     uint32(f.SrcAS),
								StartSecs: uint32(h) * 3600,
								EndSecs:   uint32(h)*3600 + 3599,
							},
						})
					}
				}
				perWorker[w] = out
				perWorkerLB[w] = localLB
			}(w, h)
		}
		wg.Wait()

		var all []obs
		for w := 0; w < workers; w++ {
			all = append(all, perWorker[w]...)
			for i, b := range perWorkerLB[w] {
				lb[i] += b
			}
		}
		// Deterministic delivery order regardless of worker count.
		sort.Slice(all, func(i, j int) bool {
			if all[i].flowID != all[j].flowID {
				return all[i].flowID < all[j].flowID
			}
			return all[i].link < all[j].link
		})
		s.lbMu.Lock()
		s.linkBytes[h] = lb
		s.lbMu.Unlock()
		if opts.Sink != nil {
			for i := range all {
				opts.Sink.Record(h, all[i].link, &all[i].rec)
			}
		}
		if opts.OnHourEnd != nil {
			opts.OnHourEnd(h)
		}
	}
}

// sampleFlow applies the router's 1-in-N random packet sampling to
// one (flow, link, hour) byte share, deterministically keyed so the
// result is independent of scheduling. Returns scaled-up estimates,
// matching IPFIX semantics of counts multiplied by the sampling rate.
func (s *Sim) sampleFlow(f *traffic.FlowSpec, link wan.LinkID, h wan.Hour, bytes, packets float64) (uint64, uint64, bool) {
	n := s.cfg.SamplingInterval
	if n <= 1 {
		if bytes <= 0 {
			return 0, 0, false
		}
		return uint64(bytes), uint64(math.Max(1, packets)), true
	}
	key := traffic.Hash(uint64(f.ID)<<32 ^ uint64(link)<<8 ^ uint64(uint32(h)))
	observed := poissonHash(key, packets/float64(n))
	if observed == 0 {
		return 0, 0, false
	}
	scaledPkts := observed * uint64(n)
	bytesPerPkt := bytes / packets
	return uint64(float64(scaledPkts) * bytesPerPkt), scaledPkts, true
}

// poissonHash draws Poisson(lambda) using a counter-mode hash stream,
// so the draw depends only on the key.
func poissonHash(key uint64, lambda float64) uint64 {
	if lambda <= 0 {
		return 0
	}
	u := func(i uint64) float64 {
		return (float64(traffic.Hash(key^(i*0x9e3779b97f4a7c15)) >> 11)) / (1 << 53)
	}
	if lambda > 30 {
		// Normal approximation via Box-Muller.
		u1, u2 := u(1), u(2)
		if u1 < 1e-15 {
			u1 = 1e-15
		}
		z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		v := lambda + math.Sqrt(lambda)*z
		if v < 0 {
			return 0
		}
		return uint64(v + 0.5)
	}
	l := math.Exp(-lambda)
	p := 1.0
	var k, i uint64
	for {
		i++
		p *= u(i)
		if p <= l {
			return k
		}
		k++
	}
}
