package netsim

import (
	"math"
	"sync"

	"tipsy/internal/ipfix"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

// RecordSink receives sampled flow observations as the simulation
// runs — the role of the paper's distributed IPFIX collectors feeding
// the data lake. Calls arrive from a single goroutine in
// deterministic order.
type RecordSink interface {
	Record(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord)
}

// RecordSinkFunc adapts a function to the RecordSink interface.
type RecordSinkFunc func(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord)

// Record implements RecordSink.
func (f RecordSinkFunc) Record(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) {
	f(h, link, rec)
}

// BatchSink is an optional fast path a RecordSink may implement. When
// the sink does, Run delivers each hour's records as one RecordBatch
// call instead of per-record Record calls, amortizing the sink's
// locking across the hour. Records arrive in exactly the order the
// per-record path would deliver them; the hour is StartSecs/3600 and
// the link is Ingress of each record. The slice is reused by Run and
// must not be retained past the call.
type BatchSink interface {
	RecordBatch(recs []ipfix.FlowRecord)
}

// RunOptions controls one simulation run.
type RunOptions struct {
	From, To wan.Hour
	Sink     RecordSink
	// OnHourEnd, if set, runs after each simulated hour with ground
	// truth fully accumulated — the hook the congestion mitigation
	// system uses to observe utilization and inject withdrawals that
	// take effect the next hour.
	OnHourEnd func(h wan.Hour)
}

// flowObs is one sampled observation, keyed for deterministic
// delivery ordering.
type flowObs struct {
	flowID int32
	link   wan.LinkID
	rec    ipfix.FlowRecord
}

// flowEpoch caches one flow's resolved link shares for as long as the
// resolution inputs cannot change: shares are a pure function of
// (flow, day, availability state, concentration bucket), so they are
// reusable across hours whose bucket and availability generation
// match. Buckets never straddle a day boundary (24 is a multiple of
// concentrateBucketHours), so the bucket also pins the day.
type flowEpoch struct {
	bucket int64
	gen    uint64
	valid  bool
	shares []LinkShare
	// steady holds the flow's steady-state day resolution — a shared
	// read-only slice from the Sim-wide cache — so an epoch miss
	// within the same day skips the global cache map entirely.
	steady      []LinkShare
	steadyDay   int32
	steadyValid bool
}

// runWorker is the persistent per-worker state of Run: a private
// resolver, reused observation and link-load buffers, and the
// per-flow share cache. Workers partition flows by ID stride, so each
// flow's epoch entry is only ever touched by one worker.
type runWorker struct {
	res     *resolver
	obs     []flowObs
	localLB []float64
	epochs  []flowEpoch
}

// availGen fingerprints the availability state relevant to hour h:
// the set of links in outage plus the withdrawal-state version. Flows
// resolved under one generation resolve identically for any other
// hour with the same generation (and the same day/bucket), which is
// what lets Run reuse shares across the hours of a concentration
// bucket instead of re-resolving every flow every hour.
func (s *Sim) availGen(h wan.Hour) uint64 {
	fp := uint64(0x9e3779b97f4a7c15)
	for li := range s.links {
		if s.outages.Down(wan.LinkID(li+1), h) {
			fp = traffic.Hash(fp ^ uint64(li+1))
		}
	}
	return traffic.Hash(fp ^ s.wdVer.Load())
}

// Run simulates hours [From, To): it computes each active flow's
// volume, resolves its ingress links under the current announcement
// and outage state, accumulates ground-truth link loads, applies
// 1-in-N packet sampling, and emits IPFIX flow records to the sink.
//
// Delivery order is deterministic and independent of the worker
// count: workers keep their observations sorted by (flowID, link) and
// Run merges the per-worker streams, which yields the same total
// order a global sort of all observations would (the keys are unique
// — a flow resolves at most one share per link per hour).
func (s *Sim) Run(opts RunOptions) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	workers := s.cfg.Workers
	flows := s.w.Flows
	if len(s.runWorkers) != workers {
		s.runWorkers = make([]*runWorker, workers)
		for w := range s.runWorkers {
			s.runWorkers[w] = &runWorker{
				res:     &resolver{s: s},
				localLB: make([]float64, len(s.links)),
				epochs:  make([]flowEpoch, len(flows)),
			}
		}
	}
	bs, _ := opts.Sink.(BatchSink)
	heads := make([]int, workers)
	var batch []ipfix.FlowRecord

	for h := opts.From; h < opts.To; h++ {
		lb := make([]float64, len(s.links)) // retained in s.linkBytes
		bucket := int64(uint64(h) / concentrateBucketHours)
		gen := s.availGen(h)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(ws *runWorker, w int, h wan.Hour) {
				defer wg.Done()
				ws.runHour(s, flows, w, workers, h, bucket, gen)
			}(s.runWorkers[w], w, h)
		}
		wg.Wait()

		// Ground truth merges in worker order, matching the historical
		// per-worker accumulation order bit for bit.
		for w := 0; w < workers; w++ {
			for i, b := range s.runWorkers[w].localLB {
				lb[i] += b
			}
		}
		s.lbMu.Lock()
		s.linkBytes[h] = lb
		s.lbMu.Unlock()

		if opts.Sink != nil {
			clear(heads)
			if bs != nil {
				batch = batch[:0]
			}
			for {
				best := -1
				for w := 0; w < workers; w++ {
					if heads[w] >= len(s.runWorkers[w].obs) {
						continue
					}
					if best < 0 {
						best = w
						continue
					}
					a := &s.runWorkers[w].obs[heads[w]]
					b := &s.runWorkers[best].obs[heads[best]]
					if a.flowID < b.flowID || (a.flowID == b.flowID && a.link < b.link) {
						best = w
					}
				}
				if best < 0 {
					break
				}
				o := &s.runWorkers[best].obs[heads[best]]
				heads[best]++
				if bs != nil {
					batch = append(batch, o.rec)
				} else {
					opts.Sink.Record(h, o.link, &o.rec)
				}
			}
			if bs != nil && len(batch) > 0 {
				bs.RecordBatch(batch)
			}
		}
		if opts.OnHourEnd != nil {
			opts.OnHourEnd(h)
		}
	}
}

// runHour processes this worker's flow stride for one hour into the
// worker's reused buffers.
func (ws *runWorker) runHour(s *Sim, flows []traffic.FlowSpec, w, workers int, h wan.Hour, bucket int64, gen uint64) {
	clear(ws.localLB)
	ws.obs = ws.obs[:0]
	for i := w; i < len(flows); i += workers {
		f := &flows[i]
		bytes, packets := traffic.VolumeAt(f, s.metros, h)
		if bytes <= 0 {
			continue
		}
		fe := &ws.epochs[f.ID]
		if !fe.valid || fe.bucket != bucket || fe.gen != gen {
			day := int32(h.Day())
			if !fe.steadyValid || fe.steadyDay != day {
				fe.steady = ws.res.steady(f, h)
				fe.steadyDay, fe.steadyValid = day, true
			}
			shares := ws.res.resolveFlowFrom(f, h, fe.steady)
			fe.shares = append(fe.shares[:0], shares...)
			fe.bucket, fe.gen, fe.valid = bucket, gen, true
		}
		start := len(ws.obs)
		for _, sh := range fe.shares {
			b := bytes * sh.Frac
			p := packets * sh.Frac
			ws.localLB[sh.Link-1] += b
			oct, pkt, ok := s.sampleFlow(f, sh.Link, h, b, p)
			if !ok {
				continue
			}
			ws.obs = append(ws.obs, flowObs{
				flowID: int32(f.ID),
				link:   sh.Link,
				rec: ipfix.FlowRecord{
					SrcAddr:   f.SrcAddr,
					DstAddr:   f.DstAddr,
					Octets:    oct,
					Packets:   pkt,
					Ingress:   uint32(sh.Link),
					SrcAS:     uint32(f.SrcAS),
					StartSecs: uint32(h) * 3600,
					EndSecs:   uint32(h)*3600 + 3599,
				},
			})
		}
		// Keep each flow's observations link-sorted so the worker's
		// whole buffer is (flowID, link)-ordered (the flow stride is
		// ascending); at most a handful of shares, insertion sort.
		seg := ws.obs[start:]
		for a := 1; a < len(seg); a++ {
			for j := a; j > 0 && seg[j].link < seg[j-1].link; j-- {
				seg[j], seg[j-1] = seg[j-1], seg[j]
			}
		}
	}
}

// sampleFlow applies the router's 1-in-N random packet sampling to
// one (flow, link, hour) byte share, deterministically keyed so the
// result is independent of scheduling. Returns scaled-up estimates,
// matching IPFIX semantics of counts multiplied by the sampling rate.
func (s *Sim) sampleFlow(f *traffic.FlowSpec, link wan.LinkID, h wan.Hour, bytes, packets float64) (uint64, uint64, bool) {
	n := s.cfg.SamplingInterval
	if n <= 1 {
		if bytes <= 0 {
			return 0, 0, false
		}
		return uint64(bytes), uint64(math.Max(1, packets)), true
	}
	key := traffic.Hash(uint64(f.ID)<<32 ^ uint64(link)<<8 ^ uint64(uint32(h)))
	observed := poissonHash(key, packets/float64(n))
	if observed == 0 {
		return 0, 0, false
	}
	scaledPkts := observed * uint64(n)
	bytesPerPkt := bytes / packets
	return uint64(float64(scaledPkts) * bytesPerPkt), scaledPkts, true
}

// poissonHash draws Poisson(lambda) using a counter-mode hash stream,
// so the draw depends only on the key.
func poissonHash(key uint64, lambda float64) uint64 {
	if lambda <= 0 {
		return 0
	}
	u := func(i uint64) float64 {
		return (float64(traffic.Hash(key^(i*0x9e3779b97f4a7c15)) >> 11)) / (1 << 53)
	}
	if lambda > 30 {
		// Normal approximation via Box-Muller.
		u1, u2 := u(1), u(2)
		if u1 < 1e-15 {
			u1 = 1e-15
		}
		z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		v := lambda + math.Sqrt(lambda)*z
		if v < 0 {
			return 0
		}
		return uint64(v + 0.5)
	}
	l := math.Exp(-lambda)
	p := 1.0
	var k, i uint64
	for {
		i++
		p *= u(i)
		if p <= l {
			return k
		}
		k++
	}
}
