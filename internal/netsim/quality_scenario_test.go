package netsim_test

// The withdrawal-then-recover quality scenario, end to end through
// the real stack: seeded sim -> aggregation pipeline -> trained
// ensemble -> monitor. It reproduces the paper's headline failure
// mode — prefix withdrawals silently collapse prediction accuracy
// until the next retrain — and proves the monitor turns it into a
// firing post-withdrawal alarm, then clears after re-announcement and
// retraining. External test package: the monitor depends on eval,
// which builds environments on netsim.

import (
	"testing"

	"tipsy/internal/core"
	"tipsy/internal/features"
	"tipsy/internal/monitor"
	"tipsy/internal/netsim"
	"tipsy/internal/obsv"
	"tipsy/internal/pipeline"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"

	"tipsy/internal/geo"
)

// qualityEnv bundles the scenario's moving parts.
type qualityEnv struct {
	sim   *netsim.Sim
	w     *traffic.Workload
	reg   *obsv.Registry
	mon   *monitor.Monitor
	store []features.Record // all aggregated records so far
	model core.Predictor
}

func newQualityEnv(t *testing.T, seed int64) *qualityEnv {
	t.Helper()
	metros := geo.World()
	g := topology.Generate(topology.TestGenConfig(seed), metros)
	w := traffic.Generate(traffic.TestConfig(seed), g, metros)
	cfg := netsim.DefaultConfig(seed)
	cfg.HorizonHours = 10 * 24
	// No outages: the scenario isolates the withdrawal signal.
	cfg.OutagesPerLinkYear = 0
	sim := netsim.New(cfg, g, metros, w)

	reg := obsv.NewRegistry()
	mcfg := monitor.DefaultConfig()
	mcfg.WindowHours = 24
	mcfg.JoinHorizonHours = 24
	mcfg.MinGroups = 10
	mcfg.FireAfter = 2
	mcfg.ClearAfter = 2
	return &qualityEnv{
		sim: sim, w: w, reg: reg,
		mon: monitor.New(mcfg, reg),
	}
}

// advance simulates days [fromDay, toDay), streams the aggregated
// records to the monitor as ground truth, closes the hours, and
// appends to the record store.
func (e *qualityEnv) advance(fromDay, toDay int) {
	agg := pipeline.NewAggregatorOn(e.reg, e.sim.GeoIP(), e.sim.DstMetadata)
	agg.SetTruthSink(e.mon)
	e.sim.Run(netsim.RunOptions{
		From: wan.Hour(fromDay * 24), To: wan.Hour(toDay * 24), Sink: agg,
	})
	e.store = append(e.store, agg.Records()...)
	e.mon.AdvanceTo(wan.Hour(toDay * 24))
}

// retrain fits the serving ensemble on everything aggregated so far.
func (e *qualityEnv) retrain() {
	hA := core.TrainHistorical(features.SetA, e.store, core.DefaultHistOpts())
	hAP := core.TrainHistorical(features.SetAP, e.store, core.DefaultHistOpts())
	hAL := core.TrainHistorical(features.SetAL, e.store, core.DefaultHistOpts())
	e.model = core.NewEnsemble(hAP, hAL, hA)
}

// flowFeatures maps a workload FlowSpec to the aggregation pipeline's
// join key.
func (e *qualityEnv) flowFeatures(f *traffic.FlowSpec) features.FlowFeatures {
	return features.FlowFeatures{
		AS: f.SrcAS, Prefix: f.SrcPrefix,
		Loc:    e.sim.GeoIP().Lookup(f.SrcPrefix),
		Region: f.DstRegion, Type: f.DstType,
	}
}

// predictVictims records the model's predictions for the victim flows
// at the given hour, exactly as tipsyd's shadow sampling would.
func (e *qualityEnv) predictVictims(now wan.Hour, victims []*traffic.FlowSpec) {
	for _, f := range victims {
		ff := e.flowFeatures(f)
		preds := e.model.Predict(core.Query{Flow: ff, K: 3})
		e.mon.RecordPrediction(now, ff, "ensemble", preds)
	}
}

func TestWithdrawalQualityScenario(t *testing.T) {
	e := newQualityEnv(t, 21)

	// Days 0-3: telemetry accumulates; train the first model.
	e.advance(0, 4)
	e.retrain()

	// Victims: the flows whose ingress concentrates on the single
	// busiest-by-flow-count link — the link a congestion mitigation
	// withdrawal would target.
	byLink := map[wan.LinkID][]*traffic.FlowSpec{}
	for i := range e.w.Flows {
		f := &e.w.Flows[i]
		shares := e.sim.ResolveFlow(f, 4*24)
		if len(shares) == 0 {
			continue
		}
		byLink[shares[0].Link] = append(byLink[shares[0].Link], f)
	}
	var target wan.LinkID
	for l, fs := range byLink {
		if target == 0 || len(fs) > len(byLink[target]) ||
			(len(fs) == len(byLink[target]) && l < target) {
			target = l
		}
	}
	victims := byLink[target]
	if len(victims) < 20 {
		t.Fatalf("only %d victim flows on link %d; scenario underpowered", len(victims), target)
	}
	if len(victims) > 64 {
		victims = victims[:64]
	}

	// Day 4: a healthy graded day establishes the baseline.
	e.predictVictims(4*24, victims)
	e.advance(4, 5)
	e.mon.FreezeBaseline(5 * 24)
	q := e.mon.Quality()
	if q.Window.Groups < 10 {
		t.Fatalf("healthy day joined only %d groups", q.Window.Groups)
	}
	if q.Baseline.Top3 < 0.5 {
		t.Fatalf("baseline top3 = %.3f; model too weak for the scenario", q.Baseline.Top3)
	}
	if firing := q.Alarms; true {
		for _, a := range firing {
			if a.Firing {
				t.Fatalf("alarm %s firing on the healthy day", a.Name)
			}
		}
	}

	// The congestion mitigation system withdraws each victim's anycast
	// prefix from the model's top predicted links — the §5 incident
	// shape. The stale model keeps predicting the withdrawn links.
	e.mon.NoteWithdrawal(5 * 24)
	for _, f := range victims {
		prefix := e.sim.FlowPrefix(f)
		preds := e.model.Predict(core.Query{Flow: e.flowFeatures(f), K: 3})
		for i, p := range preds {
			if i >= 2 {
				break // leave the flow a path so traffic still ingresses
			}
			e.sim.Withdraw(p.Link, prefix)
		}
	}
	e.predictVictims(5*24, victims)
	e.advance(5, 6)

	q = e.mon.Quality()
	if !e.mon.AlarmFiring(monitor.AlarmPostWithdrawal) {
		t.Fatalf("post-withdrawal alarm not firing; baseline top3 %.3f post top3 %.3f",
			q.Baseline.Top3, q.PostWithdrawal.Top3)
	}
	if !e.mon.AlarmFiring(monitor.AlarmDrift) {
		t.Errorf("drift alarm not firing; drift score %.3f", q.DriftScore)
	}
	if q.PostWithdrawal.Top3 >= q.Baseline.Top3-0.2 {
		t.Errorf("post-withdrawal top3 %.3f did not collapse vs baseline %.3f",
			q.PostWithdrawal.Top3, q.Baseline.Top3)
	}
	if v := e.reg.Gauge("monitor_alarm_post_withdrawal").Value(); v != 1 {
		t.Errorf("monitor_alarm_post_withdrawal gauge = %d, want 1", v)
	}
	if deg, reason := e.mon.Degraded(); !deg || reason == "" {
		t.Errorf("monitor not degraded during collapse: %v %q", deg, reason)
	}

	// Recovery: re-announce everything, retrain on the full history
	// (the daemon's response to the alarm), grade another day.
	for _, wd := range e.sim.Withdrawals() {
		e.sim.Announce(wd.Link, wd.Prefix)
	}
	e.retrain()
	e.mon.FreezeBaseline(6 * 24) // disarms the withdrawal watch
	e.predictVictims(6*24, victims)
	e.advance(6, 7)

	q = e.mon.Quality()
	for _, name := range []string{
		monitor.AlarmPostWithdrawal, monitor.AlarmDrift, monitor.AlarmAccuracyFloor,
	} {
		if e.mon.AlarmFiring(name) {
			t.Errorf("alarm %s still firing after recovery", name)
		}
	}
	if q.WithdrawalAt != -1 {
		t.Errorf("withdrawal watch still armed after retrain: hour %d", q.WithdrawalAt)
	}
	if v := e.reg.Gauge("monitor_alarm_post_withdrawal").Value(); v != 0 {
		t.Errorf("monitor_alarm_post_withdrawal gauge = %d after recovery, want 0", v)
	}
	if deg, _ := e.mon.Degraded(); deg {
		t.Error("monitor still degraded after recovery")
	}
	if q.Window.Top3 <= q.Baseline.Top3 {
		t.Errorf("recovered window top3 %.3f not above the collapsed baseline %.3f",
			q.Window.Top3, q.Baseline.Top3)
	}
}
