package netsim

import (
	"net"
	"testing"
	"time"
)

func TestInjectionOverBGP(t *testing.T) {
	s := testSim(t, 41)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.ServeInjection(ln, s.Graph().Cloud())

	link := s.Links()[3]
	prefix := s.Workload().Anycast[0]

	client, err := DialInjection(ln.Addr().String(), s.Graph().Cloud(), link)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Link() != link {
		t.Fatalf("client targets link %d, want %d", client.Link(), link)
	}

	if err := client.Withdraw(prefix); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.IsWithdrawn(link, prefix) },
		"withdrawal never reached the simulator")

	if err := client.Announce(prefix); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return !s.IsWithdrawn(link, prefix) },
		"re-announcement never reached the simulator")
}

func TestInjectionRejectsUnknownLink(t *testing.T) {
	s := testSim(t, 42)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.ServeInjection(ln, s.Graph().Cloud())

	bogus := s.Links()[len(s.Links())-1] + 999
	client, err := DialInjection(ln.Addr().String(), s.Graph().Cloud(), bogus)
	if err != nil {
		// The server may refuse before the handshake completes.
		return
	}
	defer client.Close()
	// The server sends Cease and closes; the next send or receive
	// must fail shortly after. Poll on a bounded iteration budget
	// (~2s) rather than the wall clock.
	for i := 0; i < 100; i++ {
		if err := client.Withdraw(s.Workload().Anycast[0]); err != nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("session to unknown link never torn down")
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	for i := 0; i < 200; i++ { // ~2s iteration budget
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal(msg)
}
