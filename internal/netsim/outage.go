package netsim

import (
	"math"
	"math/rand"
	"sort"

	"tipsy/internal/wan"
)

// Outage is one contiguous down period of a peering link.
type Outage struct {
	Link  wan.LinkID
	Start wan.Hour // inclusive
	End   wan.Hour // exclusive
}

// Duration returns the outage length in hours.
func (o Outage) Duration() wan.Hour { return o.End - o.Start }

// OutageSchedule is a precomputed set of link outages over the
// simulation horizon. Outages on a link never overlap.
type OutageSchedule struct {
	byLink  [][]Outage // index = LinkID-1, sorted by start
	horizon wan.Hour
}

// GenOutages draws a Poisson outage process per link. ratePerYear is
// calibrated so that, matching Figure 6 of the paper, roughly 80% of
// links see at least one outage over a year. Durations are mostly in
// the 1–24h band the evaluation uses, with a small tail of multi-day
// events (decommissionings, disasters) that the evaluation excludes.
func GenOutages(nLinks int, horizon wan.Hour, ratePerYear float64, seed int64) *OutageSchedule {
	sched := &OutageSchedule{byLink: make([][]Outage, nLinks), horizon: horizon}
	if ratePerYear <= 0 {
		return sched
	}
	hoursPerYear := 365.0 * 24
	for li := 0; li < nLinks; li++ {
		// Per-link substreams keep a link's outage history stable when
		// the horizon or link count changes.
		rng := rand.New(rand.NewSource(seed ^ int64(li+1)*0x9e3779b9))
		link := wan.LinkID(li + 1)
		// Failure rates are heterogeneous: most links fail rarely, a
		// minority are flap-prone. This is what makes a sizable share
		// of outage-affected bytes "seen" — their link also failed
		// within the recent training window (the paper measures 43%
		// seen / 57% unseen) — even though the average link fails
		// less than twice a year.
		mult := 1.0
		switch u := rng.Float64(); {
		case u < 0.55:
			mult = 1.0
		case u < 0.85:
			mult = 2.5
		default:
			mult = 14.0
		}
		rate := ratePerYear * mult
		// Poisson arrivals via exponential gaps.
		t := 0.0
		for {
			gap := rng.ExpFloat64() / (rate / hoursPerYear)
			t += gap
			if wan.Hour(t) >= horizon {
				break
			}
			start := wan.Hour(t)
			dur := drawDuration(rng)
			end := start + dur
			if end > horizon {
				end = horizon
			}
			if end > start {
				sched.byLink[li] = append(sched.byLink[li], Outage{link, start, end})
			}
			t = float64(end) + 1 // links stay up at least an hour between outages
		}
		sort.Slice(sched.byLink[li], func(a, b int) bool {
			return sched.byLink[li][a].Start < sched.byLink[li][b].Start
		})
	}
	return sched
}

// drawDuration draws an outage duration: log-uniform over 1–20h for
// 93% of events, 28–96h for the rest.
func drawDuration(rng *rand.Rand) wan.Hour {
	if rng.Float64() < 0.07 {
		return wan.Hour(28 + rng.Intn(69))
	}
	// Log-uniform between 1 and 20 hours: most outages are short.
	d := math.Exp(rng.Float64() * math.Log(20))
	return wan.Hour(math.Max(1, math.Round(d)))
}

// Down reports whether link is in outage during hour h.
func (o *OutageSchedule) Down(link wan.LinkID, h wan.Hour) bool {
	if link == 0 || int(link) > len(o.byLink) {
		return false
	}
	outs := o.byLink[link-1]
	// Binary search for the last outage starting at or before h.
	i := sort.Search(len(outs), func(i int) bool { return outs[i].Start > h })
	if i == 0 {
		return false
	}
	return h < outs[i-1].End
}

// ForLink returns the outages of one link, sorted by start. Callers
// must not modify the returned slice.
func (o *OutageSchedule) ForLink(link wan.LinkID) []Outage {
	if link == 0 || int(link) > len(o.byLink) {
		return nil
	}
	return o.byLink[link-1]
}

// All returns every outage, ordered by (start, link).
func (o *OutageSchedule) All() []Outage {
	var out []Outage
	for _, outs := range o.byLink {
		out = append(out, outs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Link < out[j].Link
	})
	return out
}

// Horizon returns the schedule's horizon in hours.
func (o *OutageSchedule) Horizon() wan.Hour { return o.horizon }
