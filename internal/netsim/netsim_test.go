package netsim

import (
	"math"
	"testing"

	"tipsy/internal/bgp"
	"tipsy/internal/geo"
	"tipsy/internal/ipfix"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

// testSim builds a small deterministic simulator.
func testSim(t testing.TB, seed int64) *Sim {
	metros := geo.World()
	g := topology.Generate(topology.TestGenConfig(seed), metros)
	w := traffic.Generate(traffic.TestConfig(seed), g, metros)
	cfg := DefaultConfig(seed)
	cfg.Workers = 4
	return New(cfg, g, metros, w)
}

func TestLinksWellFormed(t *testing.T) {
	s := testSim(t, 1)
	if s.NumLinks() < 50 {
		t.Fatalf("only %d links; want a wide peering surface", s.NumLinks())
	}
	cloudAS, _ := s.Graph().AS(s.Graph().Cloud())
	cloudMetros := map[geo.MetroID]bool{}
	for _, m := range cloudAS.Metros {
		cloudMetros[m] = true
	}
	for _, id := range s.Links() {
		l, ok := s.Link(id)
		if !ok {
			t.Fatalf("link %d missing", id)
		}
		if l.ID != id {
			t.Errorf("link %d has ID %d", id, l.ID)
		}
		if l.Capacity < wan.GbpsToBps(10) || l.Capacity > wan.GbpsToBps(400) {
			t.Errorf("link %d: capacity %.0f out of range", id, l.Capacity)
		}
		if !s.Graph().HasEdge(l.PeerAS, s.Graph().Cloud()) {
			t.Errorf("link %d faces %v which has no cloud relationship", id, l.PeerAS)
		}
		if l.Router == "" {
			t.Errorf("link %d has no router name", id)
		}
	}
	if _, ok := s.Link(0); ok {
		t.Error("link 0 should not resolve")
	}
	if _, ok := s.Link(wan.LinkID(s.NumLinks() + 1)); ok {
		t.Error("out-of-range link should not resolve")
	}
}

func TestLinksOfASConsistent(t *testing.T) {
	s := testSim(t, 1)
	total := 0
	for _, e := range s.Graph().Edges(s.Graph().Cloud()) {
		ids := s.LinksOfAS(e.Neighbor)
		if len(ids) == 0 {
			t.Errorf("cloud neighbor %v has no links", e.Neighbor)
		}
		total += len(ids)
		for _, id := range ids {
			l, _ := s.Link(id)
			if l.PeerAS != e.Neighbor {
				t.Errorf("link %d in %v's list but faces %v", id, e.Neighbor, l.PeerAS)
			}
		}
	}
	if total != s.NumLinks() {
		t.Errorf("links by AS cover %d of %d links", total, s.NumLinks())
	}
}

func TestResolveSharesSumToOne(t *testing.T) {
	s := testSim(t, 2)
	flows := s.Workload().Flows
	resolved := 0
	for i := range flows {
		if i%7 != 0 {
			continue
		}
		shares := s.ResolveFlow(&flows[i], 5)
		if len(shares) == 0 {
			continue
		}
		resolved++
		sum := 0.0
		seen := map[wan.LinkID]bool{}
		for _, sh := range shares {
			sum += sh.Frac
			if sh.Frac <= 0 || sh.Frac > 1+1e-9 {
				t.Fatalf("flow %d: share %f out of range", i, sh.Frac)
			}
			if seen[sh.Link] {
				t.Fatalf("flow %d: duplicate link %d in shares", i, sh.Link)
			}
			seen[sh.Link] = true
			if _, ok := s.Link(sh.Link); !ok {
				t.Fatalf("flow %d: unknown link %d", i, sh.Link)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("flow %d: shares sum to %f", i, sum)
		}
	}
	if resolved == 0 {
		t.Fatal("no flow resolved")
	}
}

func TestResolveDeterministic(t *testing.T) {
	a := testSim(t, 3)
	b := testSim(t, 3)
	for i := 0; i < 200; i++ {
		fa, fb := &a.Workload().Flows[i], &b.Workload().Flows[i]
		sa, sb := a.ResolveFlow(fa, 10), b.ResolveFlow(fb, 10)
		if len(sa) != len(sb) {
			t.Fatalf("flow %d: share counts differ", i)
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("flow %d: share %d differs: %+v vs %+v", i, j, sa[j], sb[j])
			}
		}
	}
}

func TestResolveRespectsAvailability(t *testing.T) {
	s := testSim(t, 4)
	flows := s.Workload().Flows
	for i := range flows {
		f := &flows[i]
		shares := s.ResolveFlow(f, 0)
		if len(shares) == 0 {
			continue
		}
		prefix := s.FlowPrefix(f)
		for _, sh := range shares {
			if !s.Available(sh.Link, prefix, 0) {
				t.Fatalf("flow %d resolved onto unavailable link %d", i, sh.Link)
			}
		}
	}
}

func TestWithdrawalShiftsTraffic(t *testing.T) {
	s := testSim(t, 5)
	flows := s.Workload().Flows
	// Find a flow with a dominant first link.
	var f *traffic.FlowSpec
	var top wan.LinkID
	for i := range flows {
		shares := s.ResolveFlow(&flows[i], 0)
		if len(shares) > 0 {
			f, top = &flows[i], shares[0].Link
			break
		}
	}
	if f == nil {
		t.Fatal("no resolvable flow")
	}
	prefix := s.FlowPrefix(f)
	s.Withdraw(top, prefix)
	if !s.IsWithdrawn(top, prefix) {
		t.Fatal("withdrawal not recorded")
	}
	after := s.ResolveFlow(f, 0)
	for _, sh := range after {
		if sh.Link == top {
			t.Fatalf("withdrawn link %d still receives traffic", top)
		}
	}
	if len(after) == 0 {
		t.Fatal("flow lost entirely after a single-link withdrawal")
	}
	// Re-announce restores the original resolution.
	s.Announce(top, prefix)
	restored := s.ResolveFlow(f, 0)
	if len(restored) == 0 || restored[0].Link != top {
		t.Error("re-announcement did not restore the original ingress")
	}
}

func TestWithdrawalPrefersSamePeer(t *testing.T) {
	// The §2 incident pattern: withdrawing a prefix on one of a peer's
	// links usually shifts traffic to other links of the same peer
	// first (I1 -> I2). Verify the shifted-to link is most often the
	// same AS.
	s := testSim(t, 6)
	flows := s.Workload().Flows
	samePeer, shifted := 0, 0
	for i := range flows {
		f := &flows[i]
		shares := s.ResolveFlow(f, 0)
		if len(shares) == 0 {
			continue
		}
		top := shares[0].Link
		tl, _ := s.Link(top)
		if len(s.LinksOfAS(tl.PeerAS)) < 2 {
			continue
		}
		prefix := s.FlowPrefix(f)
		s.Withdraw(top, prefix)
		after := s.ResolveFlow(f, 0)
		s.Announce(top, prefix)
		if len(after) == 0 {
			continue
		}
		shifted++
		al, _ := s.Link(after[0].Link)
		if al.PeerAS == tl.PeerAS {
			samePeer++
		}
		if shifted >= 150 {
			break
		}
	}
	if shifted < 50 {
		t.Fatalf("only %d shifted flows; test underpowered", shifted)
	}
	if float64(samePeer)/float64(shifted) < 0.5 {
		t.Errorf("only %d/%d withdrawals shifted to the same peer; expected same-peer preference", samePeer, shifted)
	}
}

func TestOutageExcludesLink(t *testing.T) {
	s := testSim(t, 7)
	var out Outage
	found := false
	for _, o := range s.Outages().All() {
		if o.Duration() >= 2 {
			out, found = o, true
			break
		}
	}
	if !found {
		t.Skip("no outage in schedule")
	}
	flows := s.Workload().Flows
	for i := range flows {
		shares := s.ResolveFlow(&flows[i], out.Start)
		for _, sh := range shares {
			if sh.Link == out.Link {
				t.Fatalf("flow %d resolved onto outaged link %d", i, out.Link)
			}
		}
	}
}

func TestDirectPeerUsuallyLandsOnOwnLinks(t *testing.T) {
	s := testSim(t, 8)
	flows := s.Workload().Flows
	own, total := 0.0, 0.0
	for i := range flows {
		f := &flows[i]
		if !s.Graph().HasEdge(f.SrcAS, s.Graph().Cloud()) {
			continue
		}
		shares := s.ResolveFlow(f, 0)
		for _, sh := range shares {
			l, _ := s.Link(sh.Link)
			total += sh.Frac
			if l.PeerAS == f.SrcAS {
				own += sh.Frac
			}
		}
	}
	if total == 0 {
		t.Fatal("no direct-peer flows")
	}
	frac := own / total
	if frac < 0.5 {
		t.Errorf("direct peers land on their own links only %.0f%% of the time", frac*100)
	}
	if frac > 0.999 {
		t.Errorf("direct peers always use their own links (%.4f); islands/local-exit not exercised", frac)
	}
}

func TestPolicyDriftChangesResolutions(t *testing.T) {
	s := testSim(t, 9)
	flows := s.Workload().Flows
	changed := 0
	checked := 0
	for i := range flows {
		f := &flows[i]
		early := s.ResolveFlow(f, 0)
		late := s.ResolveFlow(f, 24*60) // 60 days later
		if len(early) == 0 || len(late) == 0 {
			continue
		}
		checked++
		if early[0].Link != late[0].Link {
			changed++
		}
		if checked >= 600 {
			break
		}
	}
	if checked < 100 {
		t.Fatal("not enough resolvable flows")
	}
	if changed == 0 {
		t.Error("no flow changed ingress across 60 days; policy drift inert")
	}
	if changed > checked*2/3 {
		t.Errorf("%d/%d flows changed ingress; drift too aggressive for historical models to work", changed, checked)
	}
}

func TestRunEmitsRecordsAndGroundTruth(t *testing.T) {
	s := testSim(t, 10)
	var records []ipfix.FlowRecord
	var hours []wan.Hour
	s.Run(RunOptions{
		From: 0, To: 3,
		Sink: RecordSinkFunc(func(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) {
			records = append(records, *rec)
			hours = append(hours, h)
		}),
	})
	if len(records) == 0 {
		t.Fatal("no IPFIX records emitted")
	}
	for i, rec := range records {
		if rec.Ingress == 0 || int(rec.Ingress) > s.NumLinks() {
			t.Fatalf("record %d: bad ingress %d", i, rec.Ingress)
		}
		if rec.Octets == 0 {
			t.Fatalf("record %d: zero octets", i)
		}
		if rec.StartSecs/3600 != uint32(hours[i]) {
			t.Fatalf("record %d: timestamp %d outside hour %d", i, rec.StartSecs, hours[i])
		}
		if _, _, ok := s.DstMetadata(rec.DstAddr); !ok {
			t.Fatalf("record %d: destination %x has no metadata", i, rec.DstAddr)
		}
	}
	// Ground truth must be populated for simulated hours.
	var truth float64
	for _, id := range s.Links() {
		truth += s.LinkBytes(1, id)
	}
	if truth == 0 {
		t.Error("no ground-truth link bytes accumulated")
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	collect := func(workers int) []ipfix.FlowRecord {
		metros := geo.World()
		g := topology.Generate(topology.TestGenConfig(11), metros)
		w := traffic.Generate(traffic.TestConfig(11), g, metros)
		cfg := DefaultConfig(11)
		cfg.Workers = workers
		s := New(cfg, g, metros, w)
		var out []ipfix.FlowRecord
		s.Run(RunOptions{From: 0, To: 2, Sink: RecordSinkFunc(
			func(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) { out = append(out, *rec) })})
		return out
	}
	a, b := collect(1), collect(7)
	if len(a) != len(b) {
		t.Fatalf("record counts differ across worker counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs across worker counts", i)
		}
	}
}

func TestSamplingRoughlyUnbiased(t *testing.T) {
	s := testSim(t, 12)
	var sampled float64
	s.Run(RunOptions{From: 0, To: 6, Sink: RecordSinkFunc(
		func(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) {
			sampled += float64(rec.Octets)
		})})
	var truth float64
	for h := wan.Hour(0); h < 6; h++ {
		for _, id := range s.Links() {
			truth += s.LinkBytes(h, id)
		}
	}
	if truth == 0 {
		t.Fatal("no traffic simulated")
	}
	ratio := sampled / truth
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("sampled estimate / truth = %.3f; sampling badly biased", ratio)
	}
}

func TestSourceSpreadAcrossLinks(t *testing.T) {
	// Figure 3's premise: a 1-hop source AS's traffic, across all its
	// flows, spreads over multiple peering links — often including
	// links that are not its own direct links.
	s := testSim(t, 13)
	flows := s.Workload().Flows
	linksUsed := map[bgp.ASN]map[wan.LinkID]bool{}
	for i := range flows {
		f := &flows[i]
		if !s.Graph().HasEdge(f.SrcAS, s.Graph().Cloud()) {
			continue
		}
		for _, sh := range s.ResolveFlow(f, 0) {
			m := linksUsed[f.SrcAS]
			if m == nil {
				m = map[wan.LinkID]bool{}
				linksUsed[f.SrcAS] = m
			}
			m[sh.Link] = true
		}
	}
	multi := 0
	foreign := 0
	for asn, set := range linksUsed {
		if len(set) > 1 {
			multi++
		}
		for l := range set {
			if link, _ := s.Link(l); link.PeerAS != asn {
				foreign++
				break
			}
		}
	}
	if multi == 0 {
		t.Error("no direct-peer AS spreads over multiple links")
	}
	if foreign == 0 {
		t.Error("no direct-peer AS ever arrives on another AS's links; Figure 3 behaviour missing")
	}
}

func TestOutageScheduleProperties(t *testing.T) {
	sched := GenOutages(500, 365*24, 1.6, 42)
	linksWithOutage := 0
	for li := 0; li < 500; li++ {
		outs := sched.ForLink(wan.LinkID(li + 1))
		if len(outs) > 0 {
			linksWithOutage++
		}
		for i, o := range outs {
			if o.End <= o.Start {
				t.Fatalf("link %d outage %d empty", li+1, i)
			}
			if i > 0 && o.Start < outs[i-1].End {
				t.Fatalf("link %d outages overlap", li+1)
			}
		}
	}
	// Figure 6: ~80% of links see an outage within a year.
	frac := float64(linksWithOutage) / 500
	if frac < 0.6 || frac > 0.95 {
		t.Errorf("%.0f%% of links had an outage in a year; want near 80%%", frac*100)
	}
	// Down() agrees with the schedule.
	for _, o := range sched.All()[:10] {
		if !sched.Down(o.Link, o.Start) || !sched.Down(o.Link, o.End-1) {
			t.Error("Down() misses a scheduled outage")
		}
		if sched.Down(o.Link, o.End) {
			t.Error("Down() extends past outage end")
		}
	}
}

func TestDurationsMostlyInEvalBand(t *testing.T) {
	sched := GenOutages(300, 365*24, 1.6, 7)
	inBand, total := 0, 0
	for _, o := range sched.All() {
		total++
		if d := o.Duration(); d >= 1 && d <= 24 {
			inBand++
		}
	}
	if total == 0 {
		t.Fatal("no outages generated")
	}
	if frac := float64(inBand) / float64(total); frac < 0.85 {
		t.Errorf("only %.0f%% of outages in the 1-24h evaluation band", frac*100)
	}
	if inBand == total {
		t.Error("no long outages; the >24h exclusion path is never exercised")
	}
}

func TestGeoIPPopulated(t *testing.T) {
	s := testSim(t, 14)
	if s.GeoIP().Len() == 0 {
		t.Fatal("GeoIP empty")
	}
	miss := 0
	for _, f := range s.Workload().Flows {
		if s.GeoIP().Lookup(f.SrcPrefix) == 0 {
			miss++
		}
	}
	if miss > 0 {
		t.Errorf("%d flows have unregistered prefixes", miss)
	}
}
