package netsim

import (
	"tipsy/internal/ipfix"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

// MultiSink fans records out to several sinks in order.
func MultiSink(sinks ...RecordSink) RecordSink {
	return RecordSinkFunc(func(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) {
		for _, s := range sinks {
			s.Record(h, link, rec)
		}
	})
}

// FlowsVia returns the IDs of workload flows whose resolution at hour
// h includes the given link, with the byte share each sends there.
func (s *Sim) FlowsVia(link wan.LinkID, h wan.Hour) map[int]float64 {
	out := make(map[int]float64)
	for i := range s.w.Flows {
		f := &s.w.Flows[i]
		for _, sh := range s.ResolveFlow(f, h) {
			if sh.Link == link {
				out[f.ID] = sh.Frac
			}
		}
	}
	return out
}

// InflateToUtilization scales the base volume of every flow that
// ingresses via link at hour from so the link's projected peak
// utilization over [from, to) reaches target — pegging the incident
// to the diurnal peak so mitigation headroom is judged against the
// worst hour. It returns the applied scale factor (1 when the link
// carries nothing). This is the scenario knob behind the §2 incident
// replay and the congestion-mitigation example: enterprise workloads
// ramp up and overwhelm one peering link.
func (s *Sim) InflateToUtilization(link wan.LinkID, target float64, from, to wan.Hour) float64 {
	l, ok := s.Link(link)
	if !ok {
		return 1
	}
	via := s.FlowsVia(link, from)
	var peak float64
	for h := from; h < to; h++ {
		var hourBytes float64
		for id, frac := range via {
			f := &s.w.Flows[id]
			bytes, _ := traffic.VolumeAt(f, s.metros, h)
			hourBytes += bytes * frac
		}
		if hourBytes > peak {
			peak = hourBytes
		}
	}
	if peak <= 0 {
		return 1
	}
	targetBytes := target * l.Capacity * 3600 / 8
	scale := targetBytes / peak
	if scale <= 1 {
		return 1
	}
	for id := range via {
		s.w.Flows[id].BaseBps *= scale
	}
	return scale
}

// ScaleFlows multiplies the base volume of the given flows, e.g. to
// let an engineered incident subside.
func (s *Sim) ScaleFlows(ids map[int]float64, factor float64) {
	for id := range ids {
		if id >= 0 && id < len(s.w.Flows) {
			s.w.Flows[id].BaseBps *= factor
		}
	}
}
