package netsim

import (
	"testing"

	"tipsy/internal/bgp"
	"tipsy/internal/bmp"
	"tipsy/internal/wan"
)

// TestBMPOutageRecoveryReannouncesRoutes drives a link through a full
// outage cycle and checks the station's view: routes learned at
// bootstrap, dropped with the Peer Down, and rebuilt — without any
// extra withdrawal bookkeeping — by the re-establishment the recovery
// hour emits.
func TestBMPOutageRecoveryReannouncesRoutes(t *testing.T) {
	s := testSim(t, 21)
	var out Outage
	found := false
	for _, o := range s.Outages().All() {
		if o.Start > 0 {
			out, found = o, true
			break
		}
	}
	if !found {
		t.Skip("no outage in schedule")
	}
	l, ok := s.Link(out.Link)
	if !ok {
		t.Fatal("outaged link missing")
	}
	if len(s.Workload().Anycast) == 0 {
		t.Fatal("no anycast prefixes in workload")
	}
	prefix := s.Workload().Anycast[0]

	st := bmp.NewStation()
	send := func(routerID uint32, msg []byte) {
		if err := st.Handle(routerID, msg); err != nil {
			t.Fatalf("station rejected sim message: %v", err)
		}
	}
	key := bmp.SessionKey{
		RouterID: uint32(l.ID),
		PeerAS:   l.PeerAS,
		PeerAddr: bgp.V4(198, 18, byte(l.ID>>8), byte(l.ID)),
	}

	s.EmitBMPBootstrap(out.Start-1, send)
	if st.Routes(key, prefix) == nil {
		t.Fatal("bootstrap did not announce the anycast prefix")
	}

	s.EmitBMPHour(out.Start, send)
	if st.SessionUp(key) || st.Routes(key, prefix) != nil {
		t.Fatal("peer down did not clear the session view")
	}

	// Every hour of the outage changes nothing for this link.
	for h := out.Start + 1; h < out.End; h++ {
		s.EmitBMPHour(h, send)
	}
	if st.Routes(key, prefix) != nil {
		t.Fatal("routes reappeared while the link was down")
	}

	s.EmitBMPHour(out.End, send)
	if !st.SessionUp(key) {
		t.Fatal("session not re-established after outage end")
	}
	if st.Routes(key, prefix) == nil {
		t.Fatal("recovery did not re-announce the RIB; station view is stale-empty")
	}
	if st.Stats().Resyncs == 0 {
		t.Error("recovery Peer Up should register as a resync")
	}
}

// TestBMPFeedHonoursWithdrawals checks the recovery announcement skips
// prefixes withdrawn on the link.
func TestBMPFeedHonoursWithdrawals(t *testing.T) {
	s := testSim(t, 22)
	id := s.Links()[0]
	l, _ := s.Link(id)
	if len(s.Workload().Anycast) < 2 {
		t.Skip("need two anycast prefixes")
	}
	p0, p1 := s.Workload().Anycast[0], s.Workload().Anycast[1]
	s.Withdraw(id, p0)

	st := bmp.NewStation()
	send := func(routerID uint32, msg []byte) {
		if routerID != uint32(id) {
			return // only this link's session matters here
		}
		if err := st.Handle(routerID, msg); err != nil {
			t.Fatalf("station rejected sim message: %v", err)
		}
	}
	var h wan.Hour // any hour the link is up
	for s.Outages().Down(id, h) {
		h++
	}
	s.EmitBMPBootstrap(h, send)
	key := bmp.SessionKey{
		RouterID: uint32(l.ID),
		PeerAS:   l.PeerAS,
		PeerAddr: bgp.V4(198, 18, byte(l.ID>>8), byte(l.ID)),
	}
	if st.Routes(key, p0) != nil {
		t.Error("withdrawn prefix announced at bootstrap")
	}
	if st.Routes(key, p1) == nil {
		t.Error("non-withdrawn prefix missing at bootstrap")
	}
}
