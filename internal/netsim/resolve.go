package netsim

import (
	"sort"

	"tipsy/internal/bgp"
	"tipsy/internal/geo"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

// maxWalkDepth bounds the AS-level path length; valley-free chains in
// the generated topologies are at most ~6 hops.
const maxWalkDepth = 10

// ResolveFlow computes where the flow's bytes ingress the WAN at hour
// h under the current announcement and outage state, as a set of
// links with fractional byte shares summing to 1 (or an empty slice
// if the flow has no route, e.g. every reachable link lost the
// prefix).
//
// Resolution follows the paper's model of reality: each AS along the
// way makes an independent Gao-Rexford choice — direct peer routes
// beat transit, then hot-potato geographic cost with per-(AS, prefix)
// policy noise that re-rolls on that AS's drift schedule, with
// near-tie candidates sharing load (ECMP / flow spraying).
func (s *Sim) ResolveFlow(f *traffic.FlowSpec, h wan.Hour) []LinkShare {
	prefix := s.dstPrefix[f.ID]
	var excluded []wan.LinkID
	shares := s.resolveCached(f, h, excluded)
	for iter := 0; iter < 16; iter++ {
		bad := excluded[:0:0]
		for _, sh := range shares {
			if !s.Available(sh.Link, prefix, h) {
				bad = append(bad, sh.Link)
			}
		}
		if len(bad) == 0 {
			return s.concentrate(f, h, shares)
		}
		excluded = append(excluded, bad...)
		sort.Slice(excluded, func(i, j int) bool { return excluded[i] < excluded[j] })
		shares = s.resolveCached(f, h, excluded)
		if len(shares) == 0 {
			return nil
		}
	}
	return nil
}

// concentrateBucketHours is the period of the load-balancing
// schedule: within one bucket a flow rides a single dominant link;
// across buckets the winner rotates according to the steady split.
const concentrateBucketHours = 6

// concentrationFrac is the share of a flow's bytes its current winner
// carries at any instant.
const concentrationFrac = 0.92

// concentrate converts the steady multi-link split into what traffic
// looks like at one instant: mostly on a single winner that rotates
// over multi-hour buckets, with winners drawn proportionally to the
// steady split. The paper observes exactly this — flows touch many
// links across a week (the overall oracle's top-1 is only ~80%), yet
// during a short outage window traffic is concentrated (the
// seen-outage oracle's top-1 is ~95%).
func (s *Sim) concentrate(f *traffic.FlowSpec, h wan.Hour, steady []LinkShare) []LinkShare {
	if len(steady) <= 1 {
		return steady
	}
	bucket := uint64(h) / concentrateBucketHours
	u := float64(traffic.Hash(uint64(f.ID)*0x51b5297f+bucket)>>11) / (1 << 53)
	winner := 0
	cum := 0.0
	for i, sh := range steady {
		cum += sh.Frac
		if u < cum {
			winner = i
			break
		}
	}
	out := make([]LinkShare, len(steady))
	rest := 1 - steady[winner].Frac
	for i, sh := range steady {
		if i == winner {
			out[i] = LinkShare{Link: sh.Link, Frac: concentrationFrac}
			continue
		}
		frac := 0.0
		if rest > 0 {
			frac = (1 - concentrationFrac) * sh.Frac / rest
		}
		out[i] = LinkShare{Link: sh.Link, Frac: frac}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Frac > out[j].Frac })
	return out
}

// resolveCached memoizes full resolutions by (flow, day, exclusion
// set). Entries depend only on those inputs — availability is applied
// by the caller's exclusion loop — so the cache never needs
// invalidation when withdrawals change.
func (s *Sim) resolveCached(f *traffic.FlowSpec, h wan.Hour, excluded []wan.LinkID) []LinkShare {
	key := resKey{flow: int32(f.ID), day: int32(h.Day()), excl: hashLinks(excluded)}
	s.cacheMu.RLock()
	if shares, ok := s.cache[key]; ok {
		s.cacheMu.RUnlock()
		return shares
	}
	s.cacheMu.RUnlock()
	shares := s.walk(f.SrcAS, f.SrcMetro, f, int32(h.Day()), excluded, key.excl, nil, 0)
	normalize(shares)
	s.cacheMu.Lock()
	s.cache[key] = shares
	s.cacheMu.Unlock()
	return shares
}

// hashLinks summarizes an exclusion set; the empty set hashes to 0,
// which marks steady-state (non-failover) resolution.
func hashLinks(links []wan.LinkID) uint64 {
	if len(links) == 0 {
		return 0
	}
	h := uint64(0x9e3779b97f4a7c15)
	for _, l := range links {
		h = traffic.Hash(h ^ uint64(l))
	}
	return h
}

func normalize(shares []LinkShare) {
	var sum float64
	for _, sh := range shares {
		sum += sh.Frac
	}
	if sum <= 0 {
		return
	}
	for i := range shares {
		shares[i].Frac /= sum
	}
}

// salt returns the policy-noise epoch of an AS on a given day. When
// the epoch rolls over, every noise value the AS contributes re-rolls
// — the "constant change" of Internet routing (§2), and the reason
// trained models go stale (Appendix B).
func (s *Sim) salt(asn bgp.ASN, day int32) uint64 {
	per := s.driftPer[asn]
	if per <= 0 {
		per = 1 << 30
	}
	epoch := (day + s.driftOff[asn]) / per
	return traffic.Hash(uint64(asn)<<20 ^ uint64(uint32(epoch)))
}

func h2u(h uint64) float64 { return float64(h%4096) / 4096 }

// noiseKm returns the deterministic policy-noise distance an AS adds
// when comparing exit candidates for a flow. The dominant component
// is keyed by (AS, current metro, destination prefix, candidate) —
// BGP selects paths per destination prefix, so flows entering an AS
// at the same place bound for the same prefix share a fate, which is
// what makes the AL feature set work. A small source-prefix component
// models intra-metro diversity (it is why AP retains an edge over
// AL), and a drifting component re-rolls on the AS's drift schedule —
// routing policy changes incrementally, flipping near-tie decisions
// rather than re-shuffling the whole AS.
func (s *Sim) noiseKm(asn bgp.ASN, m geo.MetroID, f *traffic.FlowSpec, candidate uint64, day int32, exclKey uint64) float64 {
	dst := uint64(s.dstPrefix[f.ID].Addr)
	main := uint64(asn)<<40 ^ uint64(m)<<28 ^ dst<<4 ^ candidate
	stable := traffic.Hash(main)
	srcTweak := traffic.Hash(uint64(f.SrcPrefix)<<8 ^ candidate ^ uint64(asn))
	drifting := traffic.Hash(s.salt(asn, day) ^ main)
	u := 0.53*h2u(stable) + 0.15*h2u(srcTweak) + 0.32*h2u(drifting)
	if exclKey != 0 {
		// Re-routing around failed or withdrawn links: BGP path
		// exploration and per-router convergence races make the
		// failover choice less predictable than steady-state
		// selection, though still anchored in geography. The scramble
		// is deterministic in the exclusion set, so an outage that
		// also occurred in training reproduces the same failover —
		// which is exactly why the paper finds seen outages highly
		// predictable and unseen ones hard.
		fo := traffic.Hash(stable ^ exclKey)
		u = 0.70*u + 0.30*h2u(fo)
	}
	return u * s.cfg.NoiseKm
}

type exitCand struct {
	link    wan.LinkID // 0 when the candidate is a transit AS
	via     bgp.ASN
	viaM    geo.MetroID
	cost    float64 // noisy hot-potato cost
	rawCost float64 // geographic distance only
}

// walk resolves the ingress links for a flow currently inside AS asn
// at metro m. excluded links are treated as not carrying the prefix.
func (s *Sim) walk(asn bgp.ASN, m geo.MetroID, f *traffic.FlowSpec, day int32,
	excluded []wan.LinkID, exclKey uint64, visited []bgp.ASN, depth int) []LinkShare {
	if depth > maxWalkDepth {
		return nil
	}
	for _, v := range visited {
		if v == asn {
			return nil
		}
	}
	a, ok := s.g.AS(asn)
	if !ok {
		return nil
	}

	// The island the flow is in constrains which of the AS's own
	// facilities it can reach: fragmented CDNs have no backbone
	// between islands.
	var island []geo.MetroID
	if len(a.Islands) > 1 {
		if idx := a.Island(m); idx >= 0 {
			island = a.Islands[idx]
		}
	}

	direct := s.directCandidates(asn, m, island, f, day, excluded, exclKey)

	if len(direct) > 0 {
		// Gao-Rexford: the direct (peer) route wins on local-pref —
		// unless this AS prefers local public connectivity and its
		// nearest own exit is a long haul away.
		if s.localExit[asn] && direct[0].rawCost > s.cfg.LocalExitThresholdKm {
			if t := s.bestTransitCost(asn, m, island, f, day, exclKey, visited); t >= 0 && t < direct[0].rawCost {
				if shares := s.transit(asn, m, island, f, day, excluded, exclKey, visited, depth); len(shares) > 0 {
					return shares
				}
			}
		}
		return s.ecmpLinks(direct)
	}
	return s.transit(asn, m, island, f, day, excluded, exclKey, visited, depth)
}

// directCandidates lists the AS's own cloud peering links that carry
// the prefix, with noisy hot-potato costs, sorted cheapest first.
func (s *Sim) directCandidates(asn bgp.ASN, m geo.MetroID, island []geo.MetroID,
	f *traffic.FlowSpec, day int32, excluded []wan.LinkID, exclKey uint64) []exitCand {
	links := s.linksByAS[asn]
	if len(links) == 0 {
		return nil
	}
	var out []exitCand
	for _, id := range links {
		if containsLink(excluded, id) {
			continue
		}
		l := s.links[id-1]
		if island != nil && !containsMetro(island, l.Metro) {
			continue
		}
		raw := s.metros.Distance(m, l.Metro)
		cost := raw + s.noiseKm(asn, m, f, uint64(id), day, exclKey)
		out = append(out, exitCand{link: id, cost: cost, rawCost: raw})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].cost != out[j].cost {
			return out[i].cost < out[j].cost
		}
		return out[i].link < out[j].link
	})
	return out
}

// ecmpLinks converts the cheapest direct candidates into load-shared
// link fractions: every candidate within EcmpTolKm of the best shares
// traffic, with geometrically decreasing weights.
func (s *Sim) ecmpLinks(cands []exitCand) []LinkShare {
	best := cands[0].cost
	shares := make([]LinkShare, 0, 3)
	w := 1.0
	for _, c := range cands {
		if c.cost > best+s.cfg.EcmpTolKm || len(shares) == 3 {
			break
		}
		shares = append(shares, LinkShare{Link: c.link, Frac: w})
		w *= 0.45
	}
	normalize(shares)
	return shares
}

// transitCands lists the neighbor ASes this AS would hand
// cloud-bound traffic to, cheapest first: providers on shortest
// valley-free chains, with the peer clique as a last resort for
// transit-free networks.
func (s *Sim) transitCands(asn bgp.ASN, m geo.MetroID, island []geo.MetroID,
	f *traffic.FlowSpec, day int32, exclKey uint64, visited []bgp.ASN) []exitCand {
	d, reach := s.dist[asn]
	var out []exitCand
	addCand := func(nb bgp.ASN, metros []geo.MetroID) {
		im := s.interconnect(m, island, metros)
		if im == 0 {
			return
		}
		raw := s.metros.Distance(m, im)
		cost := raw + s.noiseKm(asn, m, f, uint64(nb)<<24, day, exclKey)
		out = append(out, exitCand{via: nb, viaM: im, cost: cost, rawCost: raw})
	}
	for _, e := range s.g.Edges(asn) {
		if e.Rel != bgp.RelProvider || containsAS(visited, e.Neighbor) {
			continue
		}
		nd, ok := s.dist[e.Neighbor]
		if !ok {
			continue
		}
		// Prefer strictly-closer providers; allow equal-distance ones
		// so rerouting after withdrawals still finds a way up.
		if reach && nd > d {
			continue
		}
		addCand(e.Neighbor, e.Metros)
	}
	if len(out) == 0 {
		// Transit-free networks (tier-1s) whose direct links all lost
		// the prefix fall back to paid-peering arrangements with the
		// rest of the clique.
		for _, e := range s.g.Edges(asn) {
			if e.Rel != bgp.RelPeer || e.Neighbor == s.g.Cloud() || containsAS(visited, e.Neighbor) {
				continue
			}
			if _, ok := s.dist[e.Neighbor]; !ok {
				continue
			}
			addCand(e.Neighbor, e.Metros)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := s.dist[out[i].via], s.dist[out[j].via]
		if di != dj {
			return di < dj
		}
		if out[i].cost != out[j].cost {
			return out[i].cost < out[j].cost
		}
		return out[i].via < out[j].via
	})
	return out
}

// bestTransitCost returns the raw geographic cost of the nearest
// transit hand-off, or -1 if there is none.
func (s *Sim) bestTransitCost(asn bgp.ASN, m geo.MetroID, island []geo.MetroID,
	f *traffic.FlowSpec, day int32, exclKey uint64, visited []bgp.ASN) float64 {
	cands := s.transitCands(asn, m, island, f, day, exclKey, visited)
	if len(cands) == 0 {
		return -1
	}
	best := cands[0].rawCost
	for _, c := range cands[1:] {
		if c.rawCost < best {
			best = c.rawCost
		}
	}
	return best
}

// transit recurses into the cheapest transit hand-offs, splitting the
// flow when two hand-offs are near-ties.
func (s *Sim) transit(asn bgp.ASN, m geo.MetroID, island []geo.MetroID,
	f *traffic.FlowSpec, day int32, excluded []wan.LinkID, exclKey uint64, visited []bgp.ASN, depth int) []LinkShare {
	cands := s.transitCands(asn, m, island, f, day, exclKey, visited)
	if len(cands) == 0 {
		return nil
	}
	visited = append(visited, asn)

	type branch struct {
		cand   exitCand
		weight float64
	}
	branches := []branch{{cands[0], 1.0}}
	if len(cands) > 1 &&
		s.dist[cands[1].via] == s.dist[cands[0].via] &&
		cands[1].cost <= cands[0].cost+s.cfg.EcmpTolKm {
		branches = append(branches, branch{cands[1], 0.45})
	}

	var shares []LinkShare
	merged := make(map[wan.LinkID]float64)
	resolvedWeight := 0.0
	for _, b := range branches {
		sub := s.walk(b.cand.via, b.cand.viaM, f, day, excluded, exclKey, visited, depth+1)
		if len(sub) == 0 {
			continue
		}
		resolvedWeight += b.weight
		for _, sh := range sub {
			merged[sh.Link] += sh.Frac * b.weight
		}
	}
	if resolvedWeight == 0 {
		// Both preferred branches dead-ended (e.g. the prefix is gone
		// from their links too); try the remaining candidates in
		// order.
		for _, c := range cands[len(branches):] {
			sub := s.walk(c.via, c.viaM, f, day, excluded, exclKey, visited, depth+1)
			if len(sub) > 0 {
				return sub
			}
		}
		return nil
	}
	for l, frac := range merged {
		shares = append(shares, LinkShare{Link: l, Frac: frac})
	}
	sort.Slice(shares, func(i, j int) bool { return shares[i].Link < shares[j].Link })
	normalize(shares)
	return shares
}

// interconnect picks where the flow crosses into the neighbor AS: the
// allowed interconnection metro nearest to the flow's current metro.
// Island-bound flows must leave through their island when possible.
func (s *Sim) interconnect(m geo.MetroID, island []geo.MetroID, edgeMetros []geo.MetroID) geo.MetroID {
	if island != nil {
		var inIsland []geo.MetroID
		for _, em := range edgeMetros {
			if containsMetro(island, em) {
				inIsland = append(inIsland, em)
			}
		}
		if len(inIsland) > 0 {
			return s.metros.Nearest(m, inIsland)
		}
	}
	return s.metros.Nearest(m, edgeMetros)
}

func containsLink(set []wan.LinkID, id wan.LinkID) bool {
	for _, l := range set {
		if l == id {
			return true
		}
	}
	return false
}

func containsMetro(set []geo.MetroID, id geo.MetroID) bool {
	for _, m := range set {
		if m == id {
			return true
		}
	}
	return false
}

func containsAS(set []bgp.ASN, asn bgp.ASN) bool {
	for _, a := range set {
		if a == asn {
			return true
		}
	}
	return false
}
