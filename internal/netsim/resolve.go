package netsim

import (
	"slices"

	"tipsy/internal/bgp"
	"tipsy/internal/geo"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

// maxWalkDepth bounds the AS-level path length; valley-free chains in
// the generated topologies are at most ~6 hops.
const maxWalkDepth = 10

// resolver holds one goroutine's worth of resolution scratch: a
// per-depth frame of candidate/share buffers plus the walk's visited
// set as a fixed array. Resolution runs millions of times per
// simulated run, and with the scratch reused a steady-state resolve
// performs no heap allocation at all (the only allocation left on the
// path is the one copy resolveCached makes to persist a cache miss).
// A resolver is not safe for concurrent use; Run gives each worker
// its own, and the public ResolveFlow draws one from a pool.
type resolver struct {
	s        *Sim
	frames   [maxWalkDepth + 2]walkFrame
	visited  [maxWalkDepth + 2]bgp.ASN
	excluded []wan.LinkID
	bad      []wan.LinkID
	conc     []LinkShare
}

// walkFrame is the scratch of one recursion depth. Buffers at
// different depths never alias, so a parent's candidate list survives
// its children's recursion.
type walkFrame struct {
	cands    []exitCand // direct peering candidates
	tcands   []exitCand // transit hand-off candidates
	inIsland []geo.MetroID
	pairs    []LinkShare // transit pre-merge (link, weighted frac) pairs
	out      []LinkShare // transit merged result
	shares   []LinkShare // ecmp result
}

// ResolveFlow computes where the flow's bytes ingress the WAN at hour
// h under the current announcement and outage state, as a set of
// links with fractional byte shares summing to 1 (or an empty slice
// if the flow has no route, e.g. every reachable link lost the
// prefix). The returned slice is freshly allocated and owned by the
// caller.
//
// Resolution follows the paper's model of reality: each AS along the
// way makes an independent Gao-Rexford choice — direct peer routes
// beat transit, then hot-potato geographic cost with per-(AS, prefix)
// policy noise that re-rolls on that AS's drift schedule, with
// near-tie candidates sharing load (ECMP / flow spraying).
func (s *Sim) ResolveFlow(f *traffic.FlowSpec, h wan.Hour) []LinkShare {
	r := s.getResolver()
	shares := slices.Clone(r.resolveFlow(f, h))
	s.putResolver(r)
	return shares
}

// resolveFlow is ResolveFlow against the resolver's scratch: the
// returned slice is only valid until the resolver's next call.
func (r *resolver) resolveFlow(f *traffic.FlowSpec, h wan.Hour) []LinkShare {
	r.excluded = r.excluded[:0]
	return r.resolveFlowFrom(f, h, r.resolveCached(f, h, r.excluded))
}

// steady returns the flow's steady-state (no exclusions) resolution
// for h's day — the shared read-only cache entry, usable as the
// starting point of resolveFlowFrom for any hour of the same day.
func (r *resolver) steady(f *traffic.FlowSpec, h wan.Hour) []LinkShare {
	return r.resolveCached(f, h, nil)
}

// resolveFlowFrom runs the availability-exclusion loop starting from
// an already-resolved steady split for h's day (as returned by
// steady), concentrating the surviving split.
func (r *resolver) resolveFlowFrom(f *traffic.FlowSpec, h wan.Hour, shares []LinkShare) []LinkShare {
	s := r.s
	prefix := s.dstPrefix[f.ID]
	r.excluded = r.excluded[:0]
	for iter := 0; iter < 16; iter++ {
		r.bad = r.bad[:0]
		for _, sh := range shares {
			if !s.Available(sh.Link, prefix, h) {
				r.bad = append(r.bad, sh.Link)
			}
		}
		if len(r.bad) == 0 {
			return r.concentrate(f, h, shares)
		}
		r.excluded = append(r.excluded, r.bad...)
		slices.Sort(r.excluded)
		shares = r.resolveCached(f, h, r.excluded)
		if len(shares) == 0 {
			return nil
		}
	}
	return nil
}

// concentrateBucketHours is the period of the load-balancing
// schedule: within one bucket a flow rides a single dominant link;
// across buckets the winner rotates according to the steady split.
const concentrateBucketHours = 6

// concentrationFrac is the share of a flow's bytes its current winner
// carries at any instant.
const concentrationFrac = 0.92

// concentrate converts the steady multi-link split into what traffic
// looks like at one instant: mostly on a single winner that rotates
// over multi-hour buckets, with winners drawn proportionally to the
// steady split. The paper observes exactly this — flows touch many
// links across a week (the overall oracle's top-1 is only ~80%), yet
// during a short outage window traffic is concentrated (the
// seen-outage oracle's top-1 is ~95%).
func (r *resolver) concentrate(f *traffic.FlowSpec, h wan.Hour, steady []LinkShare) []LinkShare {
	if len(steady) <= 1 {
		return steady
	}
	bucket := uint64(h) / concentrateBucketHours
	u := float64(traffic.Hash(uint64(f.ID)*0x51b5297f+bucket)>>11) / (1 << 53)
	winner := 0
	cum := 0.0
	for i, sh := range steady {
		cum += sh.Frac
		if u < cum {
			winner = i
			break
		}
	}
	out := slices.Grow(r.conc[:0], len(steady))[:len(steady)]
	rest := 1 - steady[winner].Frac
	for i, sh := range steady {
		if i == winner {
			out[i] = LinkShare{Link: sh.Link, Frac: concentrationFrac}
			continue
		}
		frac := 0.0
		if rest > 0 {
			frac = (1 - concentrationFrac) * sh.Frac / rest
		}
		out[i] = LinkShare{Link: sh.Link, Frac: frac}
	}
	slices.SortFunc(out, func(a, b LinkShare) int {
		if a.Frac != b.Frac {
			if a.Frac > b.Frac {
				return -1
			}
			return 1
		}
		return int(a.Link) - int(b.Link)
	})
	r.conc = out
	return out
}

// resolveCached memoizes full resolutions by (flow, day, exclusion
// set). Entries depend only on those inputs — availability is applied
// by the caller's exclusion loop — so the cache never needs
// invalidation when withdrawals change. Cached slices are shared and
// read-only.
func (r *resolver) resolveCached(f *traffic.FlowSpec, h wan.Hour, excluded []wan.LinkID) []LinkShare {
	s := r.s
	key := resKey{flow: int32(f.ID), day: int32(h.Day()), excl: hashLinks(excluded)}
	s.cacheMu.RLock()
	shares, ok := s.cache[key]
	s.cacheMu.RUnlock()
	if ok {
		return shares
	}
	res := r.walk(f.SrcAS, f.SrcMetro, f, int32(h.Day()), excluded, key.excl, 0, 0)
	normalize(res)
	shares = slices.Clone(res) // persist off the walk scratch
	s.cacheMu.Lock()
	s.cache[key] = shares
	s.cacheMu.Unlock()
	return shares
}

// hashLinks summarizes an exclusion set; the empty set hashes to 0,
// which marks steady-state (non-failover) resolution.
func hashLinks(links []wan.LinkID) uint64 {
	if len(links) == 0 {
		return 0
	}
	h := uint64(0x9e3779b97f4a7c15)
	for _, l := range links {
		h = traffic.Hash(h ^ uint64(l))
	}
	return h
}

func normalize(shares []LinkShare) {
	var sum float64
	for _, sh := range shares {
		sum += sh.Frac
	}
	if sum <= 0 {
		return
	}
	for i := range shares {
		shares[i].Frac /= sum
	}
}

// salt returns the policy-noise epoch of an AS on a given day. When
// the epoch rolls over, every noise value the AS contributes re-rolls
// — the "constant change" of Internet routing (§2), and the reason
// trained models go stale (Appendix B).
func (s *Sim) salt(asn bgp.ASN, day int32) uint64 {
	per := s.driftPer[asn]
	if per <= 0 {
		per = 1 << 30
	}
	epoch := (day + s.driftOff[asn]) / per
	return traffic.Hash(uint64(asn)<<20 ^ uint64(uint32(epoch)))
}

func h2u(h uint64) float64 { return float64(h%4096) / 4096 }

// noiseKm returns the deterministic policy-noise distance an AS adds
// when comparing exit candidates for a flow. The dominant component
// is keyed by (AS, current metro, destination prefix, candidate) —
// BGP selects paths per destination prefix, so flows entering an AS
// at the same place bound for the same prefix share a fate, which is
// what makes the AL feature set work. A small source-prefix component
// models intra-metro diversity (it is why AP retains an edge over
// AL), and a drifting component re-rolls on the AS's drift schedule —
// routing policy changes incrementally, flipping near-tie decisions
// rather than re-shuffling the whole AS.
func (s *Sim) noiseKm(asn bgp.ASN, m geo.MetroID, f *traffic.FlowSpec, candidate uint64, day int32, exclKey uint64) float64 {
	dst := uint64(s.dstPrefix[f.ID].Addr)
	main := uint64(asn)<<40 ^ uint64(m)<<28 ^ dst<<4 ^ candidate
	stable := traffic.Hash(main)
	srcTweak := traffic.Hash(uint64(f.SrcPrefix)<<8 ^ candidate ^ uint64(asn))
	drifting := traffic.Hash(s.salt(asn, day) ^ main)
	u := 0.53*h2u(stable) + 0.15*h2u(srcTweak) + 0.32*h2u(drifting)
	if exclKey != 0 {
		// Re-routing around failed or withdrawn links: BGP path
		// exploration and per-router convergence races make the
		// failover choice less predictable than steady-state
		// selection, though still anchored in geography. The scramble
		// is deterministic in the exclusion set, so an outage that
		// also occurred in training reproduces the same failover —
		// which is exactly why the paper finds seen outages highly
		// predictable and unseen ones hard.
		fo := traffic.Hash(stable ^ exclKey)
		u = 0.70*u + 0.30*h2u(fo)
	}
	return u * s.cfg.NoiseKm
}

type exitCand struct {
	link    wan.LinkID // 0 when the candidate is a transit AS
	via     bgp.ASN
	viaM    geo.MetroID
	cost    float64 // noisy hot-potato cost
	rawCost float64 // geographic distance only
}

// walk resolves the ingress links for a flow currently inside AS asn
// at metro m. excluded links are treated as not carrying the prefix.
// The first vlen entries of r.visited are the ASes already on the
// path. The returned slice lives in this depth's (or a child's)
// frame: callers must copy or fold it before resolving anything else.
func (r *resolver) walk(asn bgp.ASN, m geo.MetroID, f *traffic.FlowSpec, day int32,
	excluded []wan.LinkID, exclKey uint64, vlen, depth int) []LinkShare {
	if depth > maxWalkDepth {
		return nil
	}
	if r.visitedHas(vlen, asn) {
		return nil
	}
	s := r.s
	a, ok := s.g.AS(asn)
	if !ok {
		return nil
	}

	// The island the flow is in constrains which of the AS's own
	// facilities it can reach: fragmented CDNs have no backbone
	// between islands.
	var island []geo.MetroID
	if len(a.Islands) > 1 {
		if idx := a.Island(m); idx >= 0 {
			island = a.Islands[idx]
		}
	}

	fr := &r.frames[depth]
	direct := r.directCandidates(fr, asn, m, island, f, day, excluded, exclKey)

	if len(direct) > 0 {
		// Gao-Rexford: the direct (peer) route wins on local-pref —
		// unless this AS prefers local public connectivity and its
		// nearest own exit is a long haul away.
		if s.localExit[asn] && direct[0].rawCost > s.cfg.LocalExitThresholdKm {
			if t := r.bestTransitCost(fr, asn, m, island, f, day, exclKey, vlen); t >= 0 && t < direct[0].rawCost {
				if shares := r.transit(fr, asn, m, island, f, day, excluded, exclKey, vlen, depth); len(shares) > 0 {
					return shares
				}
			}
		}
		return r.ecmpLinks(fr, direct)
	}
	return r.transit(fr, asn, m, island, f, day, excluded, exclKey, vlen, depth)
}

func (r *resolver) visitedHas(vlen int, asn bgp.ASN) bool {
	for _, v := range r.visited[:vlen] {
		if v == asn {
			return true
		}
	}
	return false
}

// directCandidates lists the AS's own cloud peering links that carry
// the prefix, with noisy hot-potato costs, sorted cheapest first.
func (r *resolver) directCandidates(fr *walkFrame, asn bgp.ASN, m geo.MetroID, island []geo.MetroID,
	f *traffic.FlowSpec, day int32, excluded []wan.LinkID, exclKey uint64) []exitCand {
	s := r.s
	links := s.linksByAS[asn]
	if len(links) == 0 {
		return nil
	}
	out := fr.cands[:0]
	for _, id := range links {
		if containsLink(excluded, id) {
			continue
		}
		l := s.links[id-1]
		if island != nil && !containsMetro(island, l.Metro) {
			continue
		}
		raw := s.metros.Distance(m, l.Metro)
		cost := raw + s.noiseKm(asn, m, f, uint64(id), day, exclKey)
		out = append(out, exitCand{link: id, cost: cost, rawCost: raw})
	}
	slices.SortFunc(out, func(a, b exitCand) int {
		if a.cost != b.cost {
			if a.cost < b.cost {
				return -1
			}
			return 1
		}
		return int(a.link) - int(b.link)
	})
	fr.cands = out
	return out
}

// ecmpLinks converts the cheapest direct candidates into load-shared
// link fractions: every candidate within EcmpTolKm of the best shares
// traffic, with geometrically decreasing weights.
func (r *resolver) ecmpLinks(fr *walkFrame, cands []exitCand) []LinkShare {
	best := cands[0].cost
	shares := fr.shares[:0]
	w := 1.0
	for _, c := range cands {
		if c.cost > best+r.s.cfg.EcmpTolKm || len(shares) == 3 {
			break
		}
		shares = append(shares, LinkShare{Link: c.link, Frac: w})
		w *= 0.45
	}
	normalize(shares)
	fr.shares = shares
	return shares
}

// transitCands lists the neighbor ASes this AS would hand
// cloud-bound traffic to, cheapest first: providers on shortest
// valley-free chains, with the peer clique as a last resort for
// transit-free networks.
func (r *resolver) transitCands(fr *walkFrame, asn bgp.ASN, m geo.MetroID, island []geo.MetroID,
	f *traffic.FlowSpec, day int32, exclKey uint64, vlen int) []exitCand {
	s := r.s
	d, reach := s.dist[asn]
	out := fr.tcands[:0]
	for _, e := range s.g.Edges(asn) {
		if e.Rel != bgp.RelProvider || r.visitedHas(vlen, e.Neighbor) {
			continue
		}
		nd, ok := s.dist[e.Neighbor]
		if !ok {
			continue
		}
		// Prefer strictly-closer providers; allow equal-distance ones
		// so rerouting after withdrawals still finds a way up.
		if reach && nd > d {
			continue
		}
		out = r.addCand(fr, out, asn, m, island, f, day, exclKey, e.Neighbor, e.Metros)
	}
	if len(out) == 0 {
		// Transit-free networks (tier-1s) whose direct links all lost
		// the prefix fall back to paid-peering arrangements with the
		// rest of the clique.
		for _, e := range s.g.Edges(asn) {
			if e.Rel != bgp.RelPeer || e.Neighbor == s.g.Cloud() || r.visitedHas(vlen, e.Neighbor) {
				continue
			}
			if _, ok := s.dist[e.Neighbor]; !ok {
				continue
			}
			out = r.addCand(fr, out, asn, m, island, f, day, exclKey, e.Neighbor, e.Metros)
		}
	}
	slices.SortFunc(out, func(a, b exitCand) int {
		da, db := s.dist[a.via], s.dist[b.via]
		if da != db {
			return da - db
		}
		if a.cost != b.cost {
			if a.cost < b.cost {
				return -1
			}
			return 1
		}
		return int(a.via) - int(b.via)
	})
	fr.tcands = out
	return out
}

// addCand appends one transit candidate if an interconnection metro
// is reachable.
func (r *resolver) addCand(fr *walkFrame, out []exitCand, asn bgp.ASN, m geo.MetroID, island []geo.MetroID,
	f *traffic.FlowSpec, day int32, exclKey uint64, nb bgp.ASN, metros []geo.MetroID) []exitCand {
	im := r.interconnect(fr, m, island, metros)
	if im == 0 {
		return out
	}
	s := r.s
	raw := s.metros.Distance(m, im)
	cost := raw + s.noiseKm(asn, m, f, uint64(nb)<<24, day, exclKey)
	return append(out, exitCand{via: nb, viaM: im, cost: cost, rawCost: raw})
}

// bestTransitCost returns the raw geographic cost of the nearest
// transit hand-off, or -1 if there is none.
func (r *resolver) bestTransitCost(fr *walkFrame, asn bgp.ASN, m geo.MetroID, island []geo.MetroID,
	f *traffic.FlowSpec, day int32, exclKey uint64, vlen int) float64 {
	cands := r.transitCands(fr, asn, m, island, f, day, exclKey, vlen)
	if len(cands) == 0 {
		return -1
	}
	best := cands[0].rawCost
	for _, c := range cands[1:] {
		if c.rawCost < best {
			best = c.rawCost
		}
	}
	return best
}

// transit recurses into the cheapest transit hand-offs, splitting the
// flow when two hand-offs are near-ties. Branch results are folded as
// (link, weighted frac) pairs and merged with a stable sort by link:
// per-link contributions accumulate in branch order, which keeps the
// floating-point sums bit-identical to the historical map-based merge
// while making the merge order explicit and allocation-free.
func (r *resolver) transit(fr *walkFrame, asn bgp.ASN, m geo.MetroID, island []geo.MetroID,
	f *traffic.FlowSpec, day int32, excluded []wan.LinkID, exclKey uint64, vlen, depth int) []LinkShare {
	s := r.s
	cands := r.transitCands(fr, asn, m, island, f, day, exclKey, vlen)
	if len(cands) == 0 {
		return nil
	}
	r.visited[vlen] = asn
	vlen++

	nBranches := 1
	branch1Weight := 0.0
	if len(cands) > 1 &&
		s.dist[cands[1].via] == s.dist[cands[0].via] &&
		cands[1].cost <= cands[0].cost+s.cfg.EcmpTolKm {
		nBranches = 2
		branch1Weight = 0.45
	}

	pairs := fr.pairs[:0]
	resolvedWeight := 0.0
	for bi := 0; bi < nBranches; bi++ {
		weight := 1.0
		if bi == 1 {
			weight = branch1Weight
		}
		c := cands[bi]
		sub := r.walk(c.via, c.viaM, f, day, excluded, exclKey, vlen, depth+1)
		if len(sub) == 0 {
			continue
		}
		resolvedWeight += weight
		for _, sh := range sub {
			pairs = append(pairs, LinkShare{Link: sh.Link, Frac: sh.Frac * weight})
		}
	}
	fr.pairs = pairs
	if resolvedWeight == 0 {
		// Both preferred branches dead-ended (e.g. the prefix is gone
		// from their links too); try the remaining candidates in
		// order.
		for i := nBranches; i < len(cands); i++ {
			c := cands[i]
			sub := r.walk(c.via, c.viaM, f, day, excluded, exclKey, vlen, depth+1)
			if len(sub) > 0 {
				return sub
			}
		}
		return nil
	}
	slices.SortStableFunc(pairs, func(a, b LinkShare) int {
		return int(a.Link) - int(b.Link)
	})
	out := fr.out[:0]
	for i := 0; i < len(pairs); {
		link := pairs[i].Link
		acc := pairs[i].Frac
		for i++; i < len(pairs) && pairs[i].Link == link; i++ {
			acc += pairs[i].Frac
		}
		out = append(out, LinkShare{Link: link, Frac: acc})
	}
	fr.out = out
	normalize(out)
	return out
}

// interconnect picks where the flow crosses into the neighbor AS: the
// allowed interconnection metro nearest to the flow's current metro.
// Island-bound flows must leave through their island when possible.
func (r *resolver) interconnect(fr *walkFrame, m geo.MetroID, island []geo.MetroID, edgeMetros []geo.MetroID) geo.MetroID {
	if island != nil {
		inIsland := fr.inIsland[:0]
		for _, em := range edgeMetros {
			if containsMetro(island, em) {
				inIsland = append(inIsland, em)
			}
		}
		fr.inIsland = inIsland
		if len(inIsland) > 0 {
			return r.s.metros.Nearest(m, inIsland)
		}
	}
	return r.s.metros.Nearest(m, edgeMetros)
}

func containsLink(set []wan.LinkID, id wan.LinkID) bool {
	for _, l := range set {
		if l == id {
			return true
		}
	}
	return false
}

func containsMetro(set []geo.MetroID, id geo.MetroID) bool {
	for _, m := range set {
		if m == id {
			return true
		}
	}
	return false
}

func containsAS(set []bgp.ASN, asn bgp.ASN) bool {
	for _, a := range set {
		if a == asn {
			return true
		}
	}
	return false
}
