package netsim

import (
	"fmt"
	"hash/fnv"
	"testing"

	"tipsy/internal/ipfix"
	"tipsy/internal/wan"
)

// ingressFingerprint runs hours [0, to) on a fresh simulator built
// from seed and folds every emitted (hour, link, record) tuple — the
// ingress assignments the paper's models learn from — into one hash.
func ingressFingerprint(t *testing.T, seed int64, to wan.Hour) uint64 {
	t.Helper()
	s := testSim(t, seed)
	h := fnv.New64a()
	n := 0
	s.Run(RunOptions{From: 0, To: to, Sink: RecordSinkFunc(
		func(hour wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) {
			n++
			fmt.Fprintf(h, "%d|%d|%v|%v|%d|%d|%d|%d|%d\n",
				hour, link, rec.SrcAddr, rec.DstAddr,
				rec.Octets, rec.Packets, rec.Ingress, rec.SrcAS, rec.StartSecs)
		})})
	if n == 0 {
		t.Fatal("simulation emitted no flow records")
	}
	return h.Sum64()
}

// TestSameSeedReplaysByteForByte is the behavioural twin of the
// tipsylint determinism rule: two independently constructed runs with
// the same seed must produce identical ingress-assignment streams.
// If this fails, some code path consulted the wall clock, the global
// RNG, or iteration order of a map.
func TestSameSeedReplaysByteForByte(t *testing.T) {
	const seed, hours = 7, 12
	a := ingressFingerprint(t, seed, hours)
	b := ingressFingerprint(t, seed, hours)
	if a != b {
		t.Fatalf("same seed diverged: run1=%x run2=%x", a, b)
	}
	// Sanity-check the fingerprint actually sees the substrate: a
	// different seed must not collide.
	if c := ingressFingerprint(t, seed+1, hours); c == a {
		t.Fatalf("different seed produced an identical stream (%x); fingerprint is blind", c)
	}
}
