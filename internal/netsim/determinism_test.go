package netsim

import (
	"fmt"
	"hash/fnv"
	"testing"

	"tipsy/internal/bmp"
	"tipsy/internal/chaos"
	"tipsy/internal/core"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/ipfix"
	"tipsy/internal/pipeline"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

// ingressFingerprint runs hours [0, to) on a fresh simulator built
// from seed and folds every emitted (hour, link, record) tuple — the
// ingress assignments the paper's models learn from — into one hash.
func ingressFingerprint(t *testing.T, seed int64, to wan.Hour) uint64 {
	t.Helper()
	s := testSim(t, seed)
	h := fnv.New64a()
	n := 0
	s.Run(RunOptions{From: 0, To: to, Sink: RecordSinkFunc(
		func(hour wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) {
			n++
			fmt.Fprintf(h, "%d|%d|%v|%v|%d|%d|%d|%d|%d\n",
				hour, link, rec.SrcAddr, rec.DstAddr,
				rec.Octets, rec.Packets, rec.Ingress, rec.SrcAS, rec.StartSecs)
		})})
	if n == 0 {
		t.Fatal("simulation emitted no flow records")
	}
	return h.Sum64()
}

// TestSameSeedReplaysByteForByte is the behavioural twin of the
// tipsylint determinism rule: two independently constructed runs with
// the same seed must produce identical ingress-assignment streams.
// If this fails, some code path consulted the wall clock, the global
// RNG, or iteration order of a map.
func TestSameSeedReplaysByteForByte(t *testing.T) {
	const seed, hours = 7, 12
	a := ingressFingerprint(t, seed, hours)
	b := ingressFingerprint(t, seed, hours)
	if a != b {
		t.Fatalf("same seed diverged: run1=%x run2=%x", a, b)
	}
	// Sanity-check the fingerprint actually sees the substrate: a
	// different seed must not collide.
	if c := ingressFingerprint(t, seed+1, hours); c == a {
		t.Fatalf("different seed produced an identical stream (%x); fingerprint is blind", c)
	}
}

// chaosRunResult is everything a chaos-fed telemetry run observably
// produces: what the fault transport did, what each receiver counted,
// and a hash of the predictions of a model trained on what survived.
// The struct is comparable, so two runs can be checked with ==.
type chaosRunResult struct {
	link  chaos.Stats
	col   ipfix.CollectorStats
	st    bmp.StationStats
	preds uint64
}

// chaosRun drives a full telemetry cycle through fault-injecting
// links: sim -> IPFIX exporter -> chaos -> collector -> aggregator,
// with the BMP feed riding its own per-router chaos links, then trains
// a Hist_AP on the surviving aggregates and fingerprints its
// predictions.
func chaosRun(t *testing.T, seed int64, to wan.Hour) chaosRunResult {
	t.Helper()
	metros := geo.World()
	g := topology.Generate(topology.TestGenConfig(seed), metros)
	w := traffic.Generate(traffic.TestConfig(seed), g, metros)
	cfg := DefaultConfig(seed)
	cfg.Workers = 4
	cfg.SamplingInterval = 256 // denser records: more messages for faults to hit
	s := New(cfg, g, metros, w)

	fault := chaos.Config{
		Seed: seed,
		Drop: 0.02, Dup: 0.01, Reorder: 0.03,
		Corrupt: 0.005, Truncate: 0.005, Delay: 0.01,
	}

	col := ipfix.NewCollector()
	agg := pipeline.NewAggregator(s.GeoIP(), s.DstMetadata)
	ipfixLink := chaos.NewLink(fault.ForKey(1), func(m []byte) {
		// Quarantinable messages are counted by the collector, not fatal.
		_ = col.HandleMessage(m, func(_ uint32, rec ipfix.FlowRecord) {
			agg.Record(wan.Hour(rec.StartSecs/3600), wan.LinkID(rec.Ingress), &rec)
		})
	})
	exp := ipfix.NewExporter(ipfixLink.Writer(), 1)

	st := bmp.NewStation()
	bmpLinks := map[uint32]*chaos.Link{}
	var routerOrder []uint32
	send := func(routerID uint32, msg []byte) {
		l := bmpLinks[routerID]
		if l == nil {
			id := routerID
			l = chaos.NewLink(fault.ForKey(1<<32|uint64(id)), func(m []byte) {
				_ = st.Handle(id, m)
			})
			bmpLinks[routerID] = l
			routerOrder = append(routerOrder, routerID)
		}
		l.Send(msg)
	}
	s.EmitBMPBootstrap(0, send)
	s.Run(RunOptions{
		From: 0, To: to,
		Sink: RecordSinkFunc(func(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) {
			if err := exp.Export(rec, uint32(h)*3600); err != nil {
				t.Error(err)
			}
		}),
		OnHourEnd: func(h wan.Hour) { s.EmitBMPHour(h, send) },
	})
	if err := exp.Flush(uint32(to) * 3600); err != nil {
		t.Fatal(err)
	}
	ipfixLink.Flush()
	for _, id := range routerOrder { // slice, not map: deterministic flush order
		bmpLinks[id].Flush()
	}

	recs := agg.Records()
	if len(recs) == 0 {
		t.Fatal("chaos run produced no aggregated records")
	}
	model := core.TrainHistorical(features.SetAP, recs, core.DefaultHistOpts())
	h := fnv.New64a()
	for i := 0; i < len(recs); i += 7 {
		for _, p := range model.Predict(core.Query{Flow: recs[i].Flow, K: 3}) {
			fmt.Fprintf(h, "%d|%d|%g\n", i, p.Link, p.Frac)
		}
	}
	return chaosRunResult{link: ipfixLink.Stats(), col: col.Stats(), st: st.Stats(), preds: h.Sum64()}
}

// TestChaosReplayIsByteIdentical extends the determinism guarantee
// across the fault injector: the same seed and the same chaos config
// must replay the exact same fault schedule, so two runs produce
// byte-identical transport, collector, and station stats — and a model
// trained downstream of the faults makes identical predictions.
func TestChaosReplayIsByteIdentical(t *testing.T) {
	const seed, hours = 11, 8
	a := chaosRun(t, seed, hours)
	b := chaosRun(t, seed, hours)
	if a != b {
		t.Fatalf("same seed + chaos config diverged:\n run1 %+v\n run2 %+v", a, b)
	}
	// The faults must actually have fired, or the test proves nothing.
	if a.link.Dropped == 0 || a.link.Reordered == 0 {
		t.Errorf("fault schedule barely fired: %+v", a.link)
	}
	// A different seed reshuffles both traffic and faults.
	if c := chaosRun(t, seed+1, hours); c == a {
		t.Fatal("different seed replayed identically; chaos schedule is not seed-driven")
	}
}
