package netsim

import (
	"errors"
	"net"

	"tipsy/internal/bgp"
	"tipsy/internal/wan"
)

// The paper's congestion mitigation system "injects BGP withdrawal
// messages into the edge router" (§4.4). This file is that path over
// real BGP: edge routers terminate an iBGP-style control session, and
// UPDATEs received on it change the simulator's announcement state.
// The target peering link is identified by the client's BGP ID.

// ServeInjection accepts control sessions on ln until the listener
// closes. Each accepted session is served on its own goroutine; every
// UPDATE received applies its withdrawals and announcements to the
// link named by the client's BGP identifier.
func (s *Sim) ServeInjection(ln net.Listener, localAS bgp.ASN) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go s.serveInjectionConn(conn, localAS)
	}
}

func (s *Sim) serveInjectionConn(conn net.Conn, localAS bgp.ASN) {
	sess := bgp.NewSession(conn, localAS, 0xffffff01, 180)
	if err := sess.Establish(); err != nil {
		conn.Close()
		return
	}
	defer sess.Close()
	link := wan.LinkID(sess.PeerOpen().BGPID)
	if _, ok := s.Link(link); !ok {
		sess.Notify(6, 3, nil) // Cease / Peer De-configured
		return
	}
	for {
		msg, err := sess.Recv()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *bgp.Update:
			for _, p := range m.Withdrawn {
				s.Withdraw(link, p)
			}
			for _, p := range m.NLRI {
				s.Announce(link, p)
			}
		case *bgp.Notification:
			return
		}
	}
}

// InjectionClient is the CMS side of the control path: one BGP
// session per targeted peering link.
type InjectionClient struct {
	sess *bgp.Session
	link wan.LinkID
}

// DialInjection opens a control session to an edge router serving
// ServeInjection and targets the given link.
func DialInjection(addr string, localAS bgp.ASN, link wan.LinkID) (*InjectionClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sess := bgp.NewSession(conn, localAS, uint32(link), 180)
	if err := sess.Establish(); err != nil {
		conn.Close()
		return nil, err
	}
	return &InjectionClient{sess: sess, link: link}, nil
}

// Link returns the targeted peering link.
func (c *InjectionClient) Link() wan.LinkID { return c.link }

// Withdraw injects a withdrawal for prefix at the client's link.
func (c *InjectionClient) Withdraw(prefix bgp.Prefix) error {
	return c.sess.SendUpdate(&bgp.Update{Withdrawn: []bgp.Prefix{prefix}})
}

// Announce re-announces prefix at the client's link.
func (c *InjectionClient) Announce(prefix bgp.Prefix) error {
	return c.sess.SendUpdate(&bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  nil, // iBGP-style: locally originated
			NextHop: bgp.V4(198, 19, byte(c.link>>8), byte(c.link)),
		},
		NLRI: []bgp.Prefix{prefix},
	})
}

// Close shuts the session down with an administrative NOTIFICATION.
func (c *InjectionClient) Close() error {
	err := c.sess.Notify(6, 2, nil) // Cease / Administrative Shutdown
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}
