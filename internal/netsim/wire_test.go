package netsim

import (
	"bytes"
	"testing"

	"tipsy/internal/ipfix"
	"tipsy/internal/wan"
)

// TestWirePathEquivalence verifies that telemetry which rides the real
// IPFIX encoding (exporter -> bytes -> collector) is record-for-record
// identical to what the in-memory sink sees: nothing in the learning
// pipeline depends on skipping the wire.
func TestWirePathEquivalence(t *testing.T) {
	s := testSim(t, 51)

	var direct []ipfix.FlowRecord
	var stream bytes.Buffer
	exp := ipfix.NewExporter(&stream, 9)
	s.Run(RunOptions{
		From: 0, To: 3,
		Sink: RecordSinkFunc(func(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) {
			direct = append(direct, *rec)
			if err := exp.Export(rec, uint32(h)*3600); err != nil {
				t.Fatal(err)
			}
		}),
	})
	if err := exp.Flush(3 * 3600); err != nil {
		t.Fatal(err)
	}
	if len(direct) == 0 {
		t.Fatal("no records produced")
	}

	col := ipfix.NewCollector()
	var decoded []ipfix.FlowRecord
	if err := col.ReadStream(&stream, func(domain uint32, rec ipfix.FlowRecord) {
		if domain != 9 {
			t.Fatalf("domain %d", domain)
		}
		decoded = append(decoded, rec)
	}); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(direct) {
		t.Fatalf("wire path decoded %d of %d records", len(decoded), len(direct))
	}
	for i := range direct {
		if decoded[i] != direct[i] {
			t.Fatalf("record %d differs across the wire:\n direct %+v\n  wire  %+v", i, direct[i], decoded[i])
		}
	}
	if st := col.Stats(); st.Lost != 0 {
		t.Errorf("sequence loss on a lossless stream: %d", st.Lost)
	}
}
