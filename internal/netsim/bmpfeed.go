package netsim

import (
	"tipsy/internal/bgp"
	"tipsy/internal/bmp"
	"tipsy/internal/wan"
)

// BMPSender receives framed BMP messages from the WAN's edge routers.
// routerID identifies the sending router; in the substrate each
// peering link has a dedicated monitored session and routerID equals
// the link ID.
type BMPSender func(routerID uint32, msg []byte)

// peerHeader builds the BMP per-peer header for a link's session.
func (s *Sim) peerHeader(l wan.Link, h wan.Hour) bmp.PeerHeader {
	return bmp.PeerHeader{
		Address:   bgp.V4(198, 18, byte(l.ID>>8), byte(l.ID)),
		AS:        l.PeerAS,
		BGPID:     uint32(l.ID),
		Timestamp: uint32(h) * 3600,
	}
}

// emitSessionUp sends the Peer Up for a link's session followed by a
// Route Monitoring announcement of every anycast prefix currently
// announced there — the full RIB a real router re-advertises when a
// monitored session (re-)establishes. Bootstrap and outage recovery
// share this path so a BMP station can rebuild its per-session view
// from scratch after a mid-stream session-down.
func (s *Sim) emitSessionUp(l wan.Link, h wan.Hour, send BMPSender) {
	rid := uint32(l.ID)
	ph := s.peerHeader(l, h)
	up := &bmp.PeerUp{
		Peer:       ph,
		LocalAddr:  bgp.V4(198, 19, byte(l.ID>>8), byte(l.ID)),
		LocalPort:  179,
		RemotePort: 30000 + uint16(l.ID%10000),
		SentOpen:   &bgp.Open{Version: 4, AS: s.g.Cloud(), HoldTime: 90, BGPID: uint32(l.ID)},
		RecvOpen:   &bgp.Open{Version: 4, AS: l.PeerAS, HoldTime: 90, BGPID: ph.BGPID},
	}
	send(rid, up.Marshal())
	var nlri []bgp.Prefix
	for _, p := range s.w.Anycast {
		if !s.IsWithdrawn(l.ID, p) {
			nlri = append(nlri, p)
		}
	}
	if len(nlri) == 0 {
		return
	}
	rm := &bmp.RouteMonitoring{
		Peer: ph,
		Update: &bgp.Update{
			Attrs: bgp.PathAttrs{
				Origin:  bgp.OriginIGP,
				ASPath:  []bgp.ASN{s.g.Cloud()},
				NextHop: up.LocalAddr,
			},
			NLRI: nlri,
		},
	}
	send(rid, rm.Marshal())
}

// EmitBMPBootstrap sends, for every peering link, the Initiation and
// Peer Up messages followed by Route Monitoring announcements of every
// anycast prefix currently announced there — the state a BMP station
// would learn when the WAN's routers first connect to it.
func (s *Sim) EmitBMPBootstrap(h wan.Hour, send BMPSender) {
	for _, l := range s.links {
		send(uint32(l.ID), (&bmp.Initiation{SysName: l.Router, SysDescr: "edge router"}).Marshal())
		if s.outages.Down(l.ID, h) {
			continue
		}
		s.emitSessionUp(l, h, send)
	}
}

// EmitBMPHour sends Peer Down messages for links that went down
// entering hour h, and for links that recovered, the full session
// re-establishment: Peer Up plus the complete set of current
// announcements, so a monitoring station re-bootstraps its RIB view.
func (s *Sim) EmitBMPHour(h wan.Hour, send BMPSender) {
	if h == 0 {
		return
	}
	for _, l := range s.links {
		was, is := s.outages.Down(l.ID, h-1), s.outages.Down(l.ID, h)
		switch {
		case is && !was:
			send(uint32(l.ID), (&bmp.PeerDown{
				Peer:   s.peerHeader(l, h),
				Reason: bmp.ReasonRemoteNoNotification,
			}).Marshal())
		case was && !is:
			s.emitSessionUp(l, h, send)
		}
	}
}

// EmitWithdrawal sends the Route Monitoring message corresponding to
// a prefix withdrawal (or re-announcement when announce is true) on a
// link, mirroring what the CMS's injected BGP messages look like to a
// BMP station.
func (s *Sim) EmitWithdrawal(link wan.LinkID, prefix bgp.Prefix, announce bool, h wan.Hour, send BMPSender) {
	l, ok := s.Link(link)
	if !ok {
		return
	}
	upd := &bgp.Update{}
	if announce {
		upd.NLRI = []bgp.Prefix{prefix}
		upd.Attrs = bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  []bgp.ASN{s.g.Cloud()},
			NextHop: bgp.V4(198, 19, byte(l.ID>>8), byte(l.ID)),
		}
	} else {
		upd.Withdrawn = []bgp.Prefix{prefix}
	}
	send(uint32(l.ID), (&bmp.RouteMonitoring{Peer: s.peerHeader(l, h), Update: upd}).Marshal())
}
