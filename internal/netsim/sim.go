// Package netsim binds the topology, BGP policy, geography, and
// traffic substrates into a running Internet+WAN simulator. It is the
// stand-in for the production environment the paper measures: it
// resolves, for every flow and hour, which peering links the flow's
// bytes ingress on — honouring anycast advertisement state, per-AS
// Gao-Rexford route selection, hot-potato (geographic) tie-breaking
// with slowly drifting policy noise, ECMP-style load balancing, CDN
// island fragmentation, link outages, and BGP prefix withdrawals —
// and it emits IPFIX telemetry from the edge routers exactly where
// the production WAN would.
package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"tipsy/internal/bgp"
	"tipsy/internal/geo"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

// Config holds the simulator's behavioural knobs.
type Config struct {
	Seed int64
	// SamplingInterval is the IPFIX packet sampling rate (paper:
	// 1 out of 4096).
	SamplingInterval uint32
	// OutagesPerLinkYear is the Poisson rate of peering link outages.
	OutagesPerLinkYear float64
	// HorizonHours bounds the outage schedule.
	HorizonHours wan.Hour
	// NoiseKm scales the per-(AS, prefix) policy noise added to
	// hot-potato distances.
	NoiseKm float64
	// EcmpTolKm is the cost tolerance within which candidate exits
	// share traffic (load balancing).
	EcmpTolKm float64
	// LocalExitFraction is the share of multi-metro ASes that prefer
	// nearby public connectivity over hauling traffic across their
	// own backbone (§2: "routing policies to avoid the use of their
	// private long-haul links").
	LocalExitFraction float64
	// LocalExitThresholdKm is how far an AS with local-exit policy is
	// willing to haul traffic to its own direct peering before
	// handing it to transit.
	LocalExitThresholdKm float64
	// DriftMinDays/DriftMaxDays bound each AS's policy re-roll
	// period; shorter periods mean faster model staleness.
	DriftMinDays, DriftMaxDays int
	// GeoErrRate is the Geo-IP database error rate.
	GeoErrRate float64
	// Workers shards the per-hour flow loop. Results are
	// deterministic for any worker count.
	Workers int
}

// DefaultConfig returns the simulator configuration used by the
// experiment harness.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                 seed,
		SamplingInterval:     4096,
		OutagesPerLinkYear:   1.6,
		HorizonHours:         24 * 40,
		NoiseKm:              420,
		EcmpTolKm:            70,
		LocalExitFraction:    0.35,
		LocalExitThresholdKm: 2500,
		DriftMinDays:         5,
		DriftMaxDays:         21,
		GeoErrRate:           0.02,
		Workers:              8,
	}
}

// LinkShare is one component of a flow's ingress resolution: Frac of
// the flow's bytes arrive on Link.
type LinkShare struct {
	Link wan.LinkID
	Frac float64
}

type wdKey struct {
	link   wan.LinkID
	prefix bgp.Prefix
}

// Sim is a running simulation. Methods are safe for concurrent use
// unless noted.
type Sim struct {
	cfg    Config
	g      *topology.Graph
	metros *geo.DB
	geoip  *geo.GeoIP
	w      *traffic.Workload

	links     []wan.Link // index = LinkID-1
	linksByAS map[bgp.ASN][]wan.LinkID
	dist      map[bgp.ASN]int
	localExit map[bgp.ASN]bool
	driftPer  map[bgp.ASN]int32
	driftOff  map[bgp.ASN]int32
	outages   *OutageSchedule
	dstPrefix []bgp.Prefix // per flow ID
	meta      map[uint32]dstMeta

	mu sync.RWMutex
	//tipsy:guardedby mu
	withdrawn map[wdKey]bool
	// anyWithdrawn lets Available skip the read lock entirely in the
	// common no-withdrawals state; wdVer bumps on every announcement
	// change so Run knows when cached resolutions must be redone.
	anyWithdrawn atomic.Bool
	wdVer        atomic.Uint64

	cacheMu sync.RWMutex
	//tipsy:guardedby cacheMu
	cache map[resKey][]LinkShare

	// resolvers pools resolution scratch for the public ResolveFlow;
	// Run's workers hold their own. runMu serializes Run calls, which
	// own runWorkers.
	resolvers sync.Pool
	runMu     sync.Mutex
	//tipsy:guardedby runMu
	runWorkers []*runWorker

	// linkBytes is ground-truth per-link ingress volume per hour,
	// filled in by Run.
	lbMu sync.Mutex
	//tipsy:guardedby lbMu
	linkBytes map[wan.Hour][]float64
}

type dstMeta struct {
	region wan.Region
	svc    wan.ServiceType
}

type resKey struct {
	flow int32
	day  int32
	excl uint64
}

// New builds a simulator over the given topology and workload.
func New(cfg Config, g *topology.Graph, metros *geo.DB, w *traffic.Workload) *Sim {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Sim{
		cfg:       cfg,
		g:         g,
		metros:    metros,
		geoip:     geo.NewGeoIP(metros, cfg.GeoErrRate, cfg.Seed+1),
		w:         w,
		linksByAS: make(map[bgp.ASN][]wan.LinkID),
		dist:      g.DistancesToCloud(),
		localExit: make(map[bgp.ASN]bool),
		driftPer:  make(map[bgp.ASN]int32),
		driftOff:  make(map[bgp.ASN]int32),
		withdrawn: make(map[wdKey]bool),
		cache:     make(map[resKey][]LinkShare),
		meta:      make(map[uint32]dstMeta),
		linkBytes: make(map[wan.Hour][]float64),
	}
	s.buildLinks(rng)
	s.outages = GenOutages(len(s.links), cfg.HorizonHours, cfg.OutagesPerLinkYear, cfg.Seed+2)

	// Per-AS policy traits.
	for _, asn := range g.ASNs() {
		a, _ := g.AS(asn)
		if a.Kind == topology.KindCloud {
			continue
		}
		if len(a.Metros) > 1 && rng.Float64() < cfg.LocalExitFraction {
			s.localExit[asn] = true
		}
		span := cfg.DriftMaxDays - cfg.DriftMinDays
		if span < 1 {
			span = 1
		}
		s.driftPer[asn] = int32(cfg.DriftMinDays + rng.Intn(span))
		s.driftOff[asn] = int32(rng.Intn(365))
	}

	// Register Geo-IP truth (once per unique /24) and destination
	// metadata (the cloud knows region and service of its own VIPs).
	seen := make(map[uint32]bool)
	for i := range w.Flows {
		f := &w.Flows[i]
		if !seen[f.SrcPrefix] {
			seen[f.SrcPrefix] = true
			s.geoip.Register(f.SrcPrefix, f.SrcMetro)
		}
		s.meta[f.DstAddr] = dstMeta{f.DstRegion, f.DstType}
		s.dstPrefix = append(s.dstPrefix, w.DstPrefix(f))
	}
	return s
}

// buildLinks expands each cloud peering relationship into concrete
// eBGP sessions: one to three parallel links per interconnection
// metro, with capacities drawn by peer kind.
func (s *Sim) buildLinks(rng *rand.Rand) {
	cloud := s.g.Cloud()
	seq := make(map[geo.MetroID]int) // per-metro router numbering
	for _, e := range s.g.Edges(cloud) {
		peer, _ := s.g.AS(e.Neighbor)
		for _, m := range e.Metros {
			parallels := 1
			var caps []float64
			exchange := false
			switch peer.Kind {
			case topology.KindTier1:
				parallels = 2 + rng.Intn(2)
				caps = []float64{100, 200, 400}
			case topology.KindCDN:
				parallels = 1 + rng.Intn(2)
				caps = []float64{100, 200}
			case topology.KindTier2:
				parallels = 1 + rng.Intn(2)
				caps = []float64{40, 100}
			case topology.KindAccess:
				parallels = 1 + rng.Intn(2)
				caps = []float64{10, 20, 40, 100}
				exchange = rng.Float64() < 0.2
			default:
				caps = []float64{10, 20}
				exchange = rng.Float64() < 0.5
			}
			metro := s.metros.MustMetro(m)
			for j := 0; j < parallels; j++ {
				seq[m]++
				id := wan.LinkID(len(s.links) + 1)
				s.links = append(s.links, wan.Link{
					ID:       id,
					Router:   fmt.Sprintf("%s%02d-er%d", metroCode(metro.Name), m, seq[m]),
					Metro:    m,
					PeerAS:   e.Neighbor,
					Capacity: wan.GbpsToBps(caps[rng.Intn(len(caps))]),
					Exchange: exchange,
				})
				s.linksByAS[e.Neighbor] = append(s.linksByAS[e.Neighbor], id)
			}
		}
	}
}

// metroCode derives a short lowercase router-name prefix from a metro
// name, e.g. "Frankfurt" -> "fra".
func metroCode(name string) string {
	code := make([]byte, 0, 3)
	for i := 0; i < len(name) && len(code) < 3; i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
			code = append(code, c)
		case c >= 'A' && c <= 'Z':
			code = append(code, c+'a'-'A')
		}
	}
	return string(code)
}

// Link implements wan.Directory.
func (s *Sim) Link(id wan.LinkID) (wan.Link, bool) {
	if id == 0 || int(id) > len(s.links) {
		return wan.Link{}, false
	}
	return s.links[id-1], true
}

// LinksOfAS implements wan.Directory.
func (s *Sim) LinksOfAS(as bgp.ASN) []wan.LinkID { return s.linksByAS[as] }

// Links implements wan.Directory.
func (s *Sim) Links() []wan.LinkID {
	out := make([]wan.LinkID, len(s.links))
	for i := range s.links {
		out[i] = wan.LinkID(i + 1)
	}
	return out
}

// NumLinks reports the number of peering links on the WAN.
func (s *Sim) NumLinks() int { return len(s.links) }

// GeoIP exposes the simulated Geo-IP database.
func (s *Sim) GeoIP() *geo.GeoIP { return s.geoip }

// Metros exposes the metro database.
func (s *Sim) Metros() *geo.DB { return s.metros }

// Graph exposes the underlying topology.
func (s *Sim) Graph() *topology.Graph { return s.g }

// Workload exposes the simulated workload.
func (s *Sim) Workload() *traffic.Workload { return s.w }

// Outages exposes the outage schedule.
func (s *Sim) Outages() *OutageSchedule { return s.outages }

// DstMetadata resolves a destination address to its cloud region and
// service type — the paper's "network metadata" join (§4.1).
func (s *Sim) DstMetadata(addr uint32) (wan.Region, wan.ServiceType, bool) {
	m, ok := s.meta[addr]
	return m.region, m.svc, ok
}

// Withdraw stops announcing prefix on the given link, as the
// congestion mitigation system does to shift traffic away.
func (s *Sim) Withdraw(link wan.LinkID, prefix bgp.Prefix) {
	s.mu.Lock()
	s.withdrawn[wdKey{link, prefix}] = true
	s.anyWithdrawn.Store(true)
	s.wdVer.Add(1)
	s.mu.Unlock()
}

// Announce re-announces prefix on the given link.
func (s *Sim) Announce(link wan.LinkID, prefix bgp.Prefix) {
	s.mu.Lock()
	delete(s.withdrawn, wdKey{link, prefix})
	s.anyWithdrawn.Store(len(s.withdrawn) > 0)
	s.wdVer.Add(1)
	s.mu.Unlock()
}

// IsWithdrawn reports the announcement state of (link, prefix).
func (s *Sim) IsWithdrawn(link wan.LinkID, prefix bgp.Prefix) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.withdrawn[wdKey{link, prefix}]
}

// Withdrawals returns the current withdrawal set as (link, prefix)
// pairs in deterministic order.
func (s *Sim) Withdrawals() []struct {
	Link   wan.LinkID
	Prefix bgp.Prefix
} {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]struct {
		Link   wan.LinkID
		Prefix bgp.Prefix
	}, 0, len(s.withdrawn))
	for k := range s.withdrawn {
		out = append(out, struct {
			Link   wan.LinkID
			Prefix bgp.Prefix
		}{k.link, k.prefix})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Link != out[j].Link {
			return out[i].Link < out[j].Link
		}
		return out[i].Prefix.Addr < out[j].Prefix.Addr
	})
	return out
}

// Available reports whether prefix is reachable over link at hour h:
// the link is not in outage and the prefix is not withdrawn there.
func (s *Sim) Available(link wan.LinkID, prefix bgp.Prefix, h wan.Hour) bool {
	if s.outages.Down(link, h) {
		return false
	}
	if !s.anyWithdrawn.Load() {
		return true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return !s.withdrawn[wdKey{link, prefix}]
}

// getResolver draws resolution scratch from the pool.
func (s *Sim) getResolver() *resolver {
	if r, ok := s.resolvers.Get().(*resolver); ok {
		return r
	}
	return &resolver{s: s}
}

func (s *Sim) putResolver(r *resolver) { s.resolvers.Put(r) }

// LinkBytes returns the ground-truth ingress bytes link carried during
// hour h (0 if the hour was not simulated).
func (s *Sim) LinkBytes(h wan.Hour, link wan.LinkID) float64 {
	s.lbMu.Lock()
	defer s.lbMu.Unlock()
	row := s.linkBytes[h]
	if row == nil || int(link) > len(row) || link == 0 {
		return 0
	}
	return row[link-1]
}

// FlowPrefix returns the anycast destination prefix of a flow.
func (s *Sim) FlowPrefix(f *traffic.FlowSpec) bgp.Prefix { return s.dstPrefix[f.ID] }
