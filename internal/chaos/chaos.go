// Package chaos implements a deterministic fault-injecting message
// transport. It sits on the message hop between the simulated edge
// routers and the telemetry receivers (the IPFIX collector and the
// BMP station) and subjects every framed message to the failure modes
// a real WAN telemetry path exhibits: loss, duplication, reordering,
// byte corruption, truncation, and delivery delay.
//
// Every fault draw comes from a generator seeded by the scenario
// seed, so a chaos run is a pure function of (input messages, Config):
// the same seed and the same config replay the exact same fault
// schedule, which is what lets the soak tests assert byte-identical
// receiver stats across runs.
//
// A Link is fed synchronously: faults are applied and deliveries
// happen inside Send (and Flush), on the caller's goroutine, so a
// single-goroutine producer — like netsim's deterministic delivery
// loop — observes a fully deterministic delivery order. The delivery
// callback must not call back into the same Link.
package chaos

import (
	"io"
	"math/rand"
	"sort"
	"sync"
)

// Config holds per-link fault probabilities, drawn independently per
// message. The zero value is a faultless transport.
type Config struct {
	// Seed derives the fault schedule. Use ForKey to split one
	// scenario seed into independent per-channel schedules.
	Seed int64

	Drop     float64 // message silently discarded
	Dup      float64 // message delivered twice
	Reorder  float64 // message held back a few slots (bounded buffer)
	Corrupt  float64 // one byte flipped
	Truncate float64 // message cut short
	Delay    float64 // message held back longer than a reorder

	// ReorderDepth bounds how many subsequent messages may overtake a
	// reordered one (default 4).
	ReorderDepth int
	// DelayMax bounds how many subsequent messages may overtake a
	// delayed one (default 16).
	DelayMax int
}

// ForKey derives the config for one channel (one exporter, one BMP
// router session) from the run's base config: probabilities are
// shared, the seed is split so per-channel schedules are independent
// but still a pure function of the scenario seed.
func (c Config) ForKey(key uint64) Config {
	c.Seed = int64(splitmix(uint64(c.Seed) ^ splitmix(key)))
	return c
}

// splitmix is the splitmix64 finalizer, used to decorrelate derived
// seeds.
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stats counts what the link did to the traffic it carried.
type Stats struct {
	Sent       uint64 // messages offered by the producer
	Delivered  uint64 // deliveries to the receiver (includes duplicates)
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
	Corrupted  uint64
	Truncated  uint64
	Delayed    uint64
}

// held is a message waiting in the reorder/delay buffer.
type held struct {
	release uint64 // slot at (or after) which the message is due
	seq     uint64 // tiebreak: admission order
	msg     []byte
}

// Link is one fault-injected message channel. Safe for concurrent
// use, but delivery order is only deterministic when Send is called
// from a single goroutine.
type Link struct {
	cfg     Config
	deliver func([]byte)

	mu sync.Mutex
	//tipsy:guardedby mu
	rng *rand.Rand
	//tipsy:guardedby mu
	slot uint64 // messages offered so far
	//tipsy:guardedby mu
	seq uint64 // admission counter for stable hold ordering
	//tipsy:guardedby mu
	held []held
	//tipsy:guardedby mu
	stats Stats
}

// NewLink creates a chaos link delivering surviving messages to
// deliver. Messages are copied on admission, so the producer may
// reuse its buffer.
func NewLink(cfg Config, deliver func([]byte)) *Link {
	if cfg.ReorderDepth <= 0 {
		cfg.ReorderDepth = 4
	}
	if cfg.DelayMax <= 0 {
		cfg.DelayMax = 16
	}
	return &Link{
		cfg:     cfg,
		deliver: deliver,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Send offers one framed message to the link. Faults are drawn, the
// message is delivered zero, one, or two times — possibly mutated,
// possibly after later messages — and any held messages that have
// come due are released.
func (l *Link) Send(msg []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Sent++
	l.slot++

	if l.cfg.Drop > 0 && l.rng.Float64() < l.cfg.Drop {
		l.stats.Dropped++
		l.releaseDue()
		return
	}

	m := append([]byte(nil), msg...)
	if l.cfg.Corrupt > 0 && len(m) > 0 && l.rng.Float64() < l.cfg.Corrupt {
		m[l.rng.Intn(len(m))] ^= byte(1 + l.rng.Intn(255))
		l.stats.Corrupted++
	}
	if l.cfg.Truncate > 0 && len(m) > 1 && l.rng.Float64() < l.cfg.Truncate {
		m = m[:1+l.rng.Intn(len(m)-1)]
		l.stats.Truncated++
	}

	dup := l.cfg.Dup > 0 && l.rng.Float64() < l.cfg.Dup
	if dup {
		l.stats.Duplicated++
	}

	// Scheduling: a reorder holds the message back a few slots, a
	// delay holds it back longer. In a synchronous transport both are
	// the same mechanism at different depths.
	switch {
	case l.cfg.Reorder > 0 && l.rng.Float64() < l.cfg.Reorder:
		l.stats.Reordered++
		l.hold(m, uint64(1+l.rng.Intn(l.cfg.ReorderDepth)))
	case l.cfg.Delay > 0 && l.rng.Float64() < l.cfg.Delay:
		l.stats.Delayed++
		l.hold(m, uint64(1+l.rng.Intn(l.cfg.DelayMax)))
	default:
		l.deliverLocked(m)
	}
	if dup {
		l.deliverLocked(m)
	}
	l.releaseDue()
}

// hold queues a message to be released once the slot counter passes
// release.
func (l *Link) hold(m []byte, after uint64) {
	l.seq++
	l.held = append(l.held, held{release: l.slot + after, seq: l.seq, msg: m})
}

// releaseDue delivers every held message whose release slot has
// passed, in (release, admission) order.
func (l *Link) releaseDue() {
	if len(l.held) == 0 {
		return
	}
	sort.Slice(l.held, func(i, j int) bool {
		if l.held[i].release != l.held[j].release {
			return l.held[i].release < l.held[j].release
		}
		return l.held[i].seq < l.held[j].seq
	})
	n := 0
	for n < len(l.held) && l.held[n].release <= l.slot {
		n++
	}
	for _, h := range l.held[:n] {
		l.deliverLocked(h.msg)
	}
	l.held = append(l.held[:0], l.held[n:]...)
}

// Flush releases every held message in order. Call it when the
// producer is done, mirroring a transport draining its queues.
func (l *Link) Flush() {
	l.mu.Lock()
	defer l.mu.Unlock()
	sort.Slice(l.held, func(i, j int) bool {
		if l.held[i].release != l.held[j].release {
			return l.held[i].release < l.held[j].release
		}
		return l.held[i].seq < l.held[j].seq
	})
	for _, h := range l.held {
		l.deliverLocked(h.msg)
	}
	l.held = l.held[:0]
}

func (l *Link) deliverLocked(m []byte) {
	l.stats.Delivered++
	if l.deliver != nil {
		l.deliver(m)
	}
}

// Pending reports how many messages sit in the reorder/delay buffer.
func (l *Link) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.held)
}

// Stats returns a snapshot of the link's counters.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Writer adapts the link to io.Writer for producers that frame one
// message per Write call, like ipfix.Exporter. The write never
// fails: a chaos link swallows what it drops.
func (l *Link) Writer() io.Writer { return writerAdapter{l} }

type writerAdapter struct{ l *Link }

func (w writerAdapter) Write(p []byte) (int, error) {
	w.l.Send(p)
	return len(p), nil
}
