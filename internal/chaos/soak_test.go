package chaos

import (
	"testing"

	"tipsy/internal/bmp"
	"tipsy/internal/core"
	"tipsy/internal/eval"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/ipfix"
	"tipsy/internal/netsim"
	"tipsy/internal/pipeline"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

// soakResult captures one end-to-end cycle: simulate -> chaos ->
// collect -> aggregate -> train -> evaluate.
type soakResult struct {
	link    Stats
	col     ipfix.CollectorStats
	st      bmp.StationStats
	records int
	acc     map[int]float64
}

// soakRun drives the whole pipeline through fault-injecting links and
// scores the ensemble trained on whatever telemetry survived. Hours
// [0, trainTo) train; [trainTo, evalTo) evaluate.
func soakRun(t *testing.T, seed int64, fault Config, trainTo, evalTo wan.Hour) soakResult {
	t.Helper()
	metros := geo.World()
	g := topology.Generate(topology.TestGenConfig(seed), metros)
	w := traffic.Generate(traffic.TestConfig(seed), g, metros)
	cfg := netsim.DefaultConfig(seed)
	cfg.Workers = 4
	cfg.SamplingInterval = 256 // denser telemetry: more messages for faults to hit
	sim := netsim.New(cfg, g, metros, w)

	col := ipfix.NewCollector()
	agg := pipeline.NewAggregator(sim.GeoIP(), sim.DstMetadata)
	ipfixLink := NewLink(fault.ForKey(1), func(m []byte) {
		// Malformed messages are quarantined by the collector, not fatal.
		_ = col.HandleMessage(m, func(_ uint32, rec ipfix.FlowRecord) {
			agg.Record(wan.Hour(rec.StartSecs/3600), wan.LinkID(rec.Ingress), &rec)
		})
	})
	exp := ipfix.NewExporter(ipfixLink.Writer(), 1)

	st := bmp.NewStation()
	bmpLinks := map[uint32]*Link{}
	var routerOrder []uint32
	send := func(routerID uint32, msg []byte) {
		l := bmpLinks[routerID]
		if l == nil {
			id := routerID
			l = NewLink(fault.ForKey(1<<32|uint64(id)), func(m []byte) {
				_ = st.Handle(id, m)
			})
			bmpLinks[routerID] = l
			routerOrder = append(routerOrder, routerID)
		}
		l.Send(msg)
	}
	sim.EmitBMPBootstrap(0, send)
	sim.Run(netsim.RunOptions{
		From: 0, To: evalTo,
		Sink: netsim.RecordSinkFunc(func(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) {
			if err := exp.Export(rec, uint32(h)*3600); err != nil {
				t.Error(err)
			}
		}),
		OnHourEnd: func(h wan.Hour) { sim.EmitBMPHour(h, send) },
	})
	if err := exp.Flush(uint32(evalTo) * 3600); err != nil {
		t.Fatal(err)
	}
	ipfixLink.Flush()
	for _, id := range routerOrder { // slice, not map: deterministic flush order
		bmpLinks[id].Flush()
	}

	all := agg.Records()
	var train, evalRecs []features.Record
	for _, r := range all {
		if r.Hour < trainTo {
			train = append(train, r)
		} else {
			evalRecs = append(evalRecs, r)
		}
	}
	if len(train) == 0 || len(evalRecs) == 0 {
		t.Fatalf("soak produced %d train / %d eval records", len(train), len(evalRecs))
	}
	// The daemon's serving ensemble: Hist_AP, geo-completed Hist_AL,
	// Hist_A — trained only on what survived the chaos transport.
	hA := core.TrainHistorical(features.SetA, train, core.DefaultHistOpts())
	hAP := core.TrainHistorical(features.SetAP, train, core.DefaultHistOpts())
	hAL := core.TrainHistorical(features.SetAL, train, core.DefaultHistOpts())
	model := core.NewEnsemble(hAP, core.NewGeoCompletion(hAL, sim, metros), hA)
	acc := eval.Accuracy(model, evalRecs, eval.Options{Ks: []int{1, 3}})
	return soakResult{
		link:    ipfixLink.Stats(),
		col:     col.Stats(),
		st:      st.Stats(),
		records: len(all),
		acc:     acc,
	}
}

// TestChaosSoak is the robustness acceptance test: a full simulate ->
// chaos -> pipeline -> train -> predict cycle at several fault rates
// must complete with zero errors, quarantine the malformed telemetry
// it was fed, and land top-1 accuracy within a declared envelope of
// the clean run — degraded telemetry degrades the models gracefully,
// it does not break them.
func TestChaosSoak(t *testing.T) {
	const seed = 99
	trainTo, evalTo := wan.Hour(48), wan.Hour(72)
	if testing.Short() {
		trainTo, evalTo = 24, 36
	}

	clean := soakRun(t, seed, Config{}, trainTo, evalTo)
	if clean.link.Dropped != 0 || clean.col.Quarantined != 0 || clean.col.Lost != 0 {
		t.Fatalf("faultless config injected faults: link %+v col %+v", clean.link, clean.col)
	}
	if clean.acc[1] < 0.2 {
		t.Fatalf("clean baseline implausibly weak: %v", clean.acc)
	}

	cases := []struct {
		name     string
		cfg      Config
		envelope float64 // max tolerated top-1 drop vs clean
	}{
		// The rates the acceptance criteria name, plus enough
		// truncation that quarantines must register.
		{"nominal", Config{Drop: 0.01, Reorder: 0.01, Corrupt: 0.001, Truncate: 0.005}, 0.10},
	}
	if !testing.Short() {
		cases = append(cases, struct {
			name     string
			cfg      Config
			envelope float64
		}{"heavy", Config{Drop: 0.05, Dup: 0.02, Reorder: 0.05, Corrupt: 0.01, Truncate: 0.01, Delay: 0.02}, 0.20})
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Seed = seed
			r := soakRun(t, seed, cfg, trainTo, evalTo)
			t.Logf("link %+v", r.link)
			t.Logf("collector %+v", r.col)
			t.Logf("station %+v records %d acc %v (clean %v)", r.st, r.records, r.acc, clean.acc)

			// The transport conserved messages and actually misbehaved.
			if r.link.Delivered != r.link.Sent-r.link.Dropped+r.link.Duplicated {
				t.Errorf("conservation violated: %+v", r.link)
			}
			if r.link.Dropped == 0 || r.link.Reordered == 0 || r.link.Truncated == 0 {
				t.Errorf("fault schedule barely fired: %+v", r.link)
			}
			// The receivers saw the faults and counted them instead of
			// dying: corrupt/truncated messages quarantine, drops
			// register as loss, reorders are not miscounted as loss.
			if r.col.Quarantined == 0 {
				t.Error("no quarantined messages despite corruption and truncation")
			}
			if r.col.Lost == 0 {
				t.Error("dropped messages did not register as sequence loss")
			}
			if r.st.Monitored == 0 {
				t.Error("BMP station monitored nothing")
			}
			// Degraded, not broken: the surviving telemetry still trains
			// a model inside the accuracy envelope.
			if d := clean.acc[1] - r.acc[1]; d > tc.envelope {
				t.Errorf("top-1 accuracy dropped %.3f (clean %.3f -> %.3f), envelope %.2f",
					d, clean.acc[1], r.acc[1], tc.envelope)
			}
		})
	}
}
