package chaos

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"
)

// feed pushes n distinct 32-byte messages through a link built from
// cfg and returns the delivered payloads in order.
func feed(cfg Config, n int) ([][]byte, Stats) {
	var got [][]byte
	l := NewLink(cfg, func(m []byte) { got = append(got, append([]byte(nil), m...)) })
	msg := make([]byte, 32)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint32(msg, uint32(i))
		l.Send(msg)
	}
	l.Flush()
	return got, l.Stats()
}

func TestFaultlessLinkIsTransparent(t *testing.T) {
	got, st := feed(Config{Seed: 1}, 100)
	if len(got) != 100 {
		t.Fatalf("delivered %d of 100", len(got))
	}
	for i, m := range got {
		if binary.BigEndian.Uint32(m) != uint32(i) {
			t.Fatalf("message %d out of order or mutated", i)
		}
	}
	if st.Dropped+st.Duplicated+st.Reordered+st.Corrupted+st.Truncated+st.Delayed != 0 {
		t.Errorf("faultless link reported faults: %+v", st)
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	cfg := Config{Seed: 42, Drop: 0.05, Dup: 0.05, Reorder: 0.1, Corrupt: 0.05, Truncate: 0.05, Delay: 0.02}
	a, sa := feed(cfg, 500)
	b, sb := feed(cfg, 500)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("delivery streams diverged for the same seed")
	}
	// A different seed must produce a different schedule.
	cfg.Seed = 43
	c, _ := feed(cfg, 500)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestEveryFaultTypeFires(t *testing.T) {
	cfg := Config{Seed: 7, Drop: 0.1, Dup: 0.1, Reorder: 0.1, Corrupt: 0.1, Truncate: 0.1, Delay: 0.1}
	got, st := feed(cfg, 1000)
	for name, v := range map[string]uint64{
		"drop": st.Dropped, "dup": st.Duplicated, "reorder": st.Reordered,
		"corrupt": st.Corrupted, "truncate": st.Truncated, "delay": st.Delayed,
	} {
		if v == 0 {
			t.Errorf("%s never fired in 1000 messages at 10%%", name)
		}
	}
	if st.Sent != 1000 {
		t.Errorf("sent = %d", st.Sent)
	}
	// Conservation: delivered = sent - dropped + duplicated.
	if want := st.Sent - st.Dropped + st.Duplicated; st.Delivered != want {
		t.Errorf("delivered %d, want %d (sent - dropped + duplicated)", st.Delivered, want)
	}
	if uint64(len(got)) != st.Delivered {
		t.Errorf("callback saw %d messages, stats say %d", len(got), st.Delivered)
	}
}

func TestReorderIsBounded(t *testing.T) {
	cfg := Config{Seed: 3, Reorder: 0.3, ReorderDepth: 4}
	got, st := feed(cfg, 400)
	if st.Reordered == 0 {
		t.Fatal("no reorders at 30%")
	}
	if len(got) != 400 {
		t.Fatalf("reorder lost messages: %d of 400", len(got))
	}
	// Every message arrives, and none is displaced beyond the buffer
	// depth plus the messages reordered around it.
	seen := make(map[uint32]int, len(got))
	for pos, m := range got {
		seen[binary.BigEndian.Uint32(m)] = pos
	}
	for i := 0; i < 400; i++ {
		pos, ok := seen[uint32(i)]
		if !ok {
			t.Fatalf("message %d never delivered", i)
		}
		if d := pos - i; d > 2*cfg.ReorderDepth || d < -2*cfg.ReorderDepth {
			t.Errorf("message %d displaced by %d, beyond bound", i, d)
		}
	}
}

func TestCorruptionMutatesExactlyOneByte(t *testing.T) {
	var got [][]byte
	l := NewLink(Config{Seed: 9, Corrupt: 1}, func(m []byte) { got = append(got, append([]byte(nil), m...)) })
	orig := bytes.Repeat([]byte{0xAA}, 64)
	l.Send(orig)
	if len(got) != 1 {
		t.Fatal("message not delivered")
	}
	diff := 0
	for i := range orig {
		if got[0][i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corruption changed %d bytes, want exactly 1", diff)
	}
	if !bytes.Equal(orig, bytes.Repeat([]byte{0xAA}, 64)) {
		t.Error("corruption mutated the caller's buffer")
	}
}

func TestTruncationShortensMessage(t *testing.T) {
	var got [][]byte
	l := NewLink(Config{Seed: 11, Truncate: 1}, func(m []byte) { got = append(got, m) })
	l.Send(make([]byte, 100))
	if len(got) != 1 || len(got[0]) >= 100 || len(got[0]) < 1 {
		t.Fatalf("truncated length %d, want in [1, 99]", len(got[0]))
	}
}

func TestFlushDrainsHeld(t *testing.T) {
	delivered := 0
	l := NewLink(Config{Seed: 5, Delay: 1, DelayMax: 1000}, func([]byte) { delivered++ })
	for i := 0; i < 10; i++ {
		l.Send([]byte{byte(i)})
	}
	if l.Pending() == 0 {
		t.Fatal("nothing held despite 100% delay")
	}
	l.Flush()
	if l.Pending() != 0 || delivered != 10 {
		t.Fatalf("flush left %d pending, delivered %d of 10", l.Pending(), delivered)
	}
}

func TestForKeySplitsSchedules(t *testing.T) {
	base := Config{Seed: 77, Drop: 0.2}
	a, _ := feed(base.ForKey(1), 300)
	b, _ := feed(base.ForKey(2), 300)
	if reflect.DeepEqual(a, b) {
		t.Error("per-key schedules identical; seeds not split")
	}
	a2, _ := feed(base.ForKey(1), 300)
	if !reflect.DeepEqual(a, a2) {
		t.Error("per-key schedule not reproducible")
	}
}

func TestWriterAdapter(t *testing.T) {
	var got [][]byte
	l := NewLink(Config{Seed: 1}, func(m []byte) { got = append(got, m) })
	w := l.Writer()
	for i := 0; i < 3; i++ {
		n, err := fmt.Fprintf(w, "msg-%d", i)
		if err != nil || n != 5 {
			t.Fatalf("write: n=%d err=%v", n, err)
		}
	}
	if len(got) != 3 || string(got[2]) != "msg-2" {
		t.Fatalf("writer adapter delivered %q", got)
	}
}
