// Package wan defines the cloud-WAN-side vocabulary shared by the
// simulator, the feature pipeline, the TIPSY models, and the
// congestion mitigation system: peering links, destination regions and
// service types, and simulated time.
package wan

import (
	"fmt"

	"tipsy/internal/bgp"
	"tipsy/internal/geo"
)

// LinkID identifies one peering link, at the granularity the paper
// uses: an individual eBGP session. IDs start at 1; 0 means "none".
type LinkID uint32

// Region is the geographic location of a destination inside the WAN.
// It reuses metro identifiers: a WAN region is a metro where the cloud
// operates datacenters.
type Region = geo.MetroID

// ServiceType is the kind of service a destination serves (§3.2:
// "destination type", e.g. web service or storage).
type ServiceType uint8

// Built-in service types. The paper reports ~200 distinct types; the
// generator synthesizes IDs above the named ones up to a configurable
// cardinality.
const (
	SvcUnknown ServiceType = iota
	SvcWeb
	SvcStorage
	SvcVideoConf
	SvcMail
	SvcVPN
	SvcAnalytics
	SvcAIML
	SvcBackup
	SvcCDN
	SvcGaming
)

// String implements fmt.Stringer for the named service types.
func (s ServiceType) String() string {
	names := [...]string{"unknown", "web", "storage", "videoconf", "mail",
		"vpn", "analytics", "aiml", "backup", "cdn", "gaming"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("svc%d", uint8(s))
}

// Hour is simulated time: whole hours since the simulation epoch.
// TIPSY's pipeline aggregates telemetry into hour-long chunks (§4.2),
// so the hour is the natural clock tick.
type Hour int32

// Day returns the simulation day the hour falls in.
func (h Hour) Day() int { return int(h) / 24 }

// HourOfDay returns the hour within its day, 0-23.
func (h Hour) HourOfDay() int { return int(h) % 24 }

// DayOfWeek returns 0-6 with day 0 of the simulation defined as a
// Monday.
func (h Hour) DayOfWeek() int { return h.Day() % 7 }

// Link is one peering link of the WAN: an eBGP session with a peer AS
// on an edge router in some metro, with a provisioned capacity.
type Link struct {
	ID       LinkID
	Router   string      // edge router name, e.g. "fra01-er2"
	Metro    geo.MetroID // where the link lands
	PeerAS   bgp.ASN     // the neighbor AS on the session
	Capacity float64     // bits per second, ingress direction
	// Exchange marks the session as crossing a public Internet
	// exchange rather than a private interconnect (PNI).
	Exchange bool
}

// GbpsToBps converts gigabits per second to bits per second.
func GbpsToBps(g float64) float64 { return g * 1e9 }

// Utilization returns u as a fraction of link capacity given a byte
// count observed over the given number of seconds.
func (l Link) Utilization(bytes float64, seconds float64) float64 {
	if l.Capacity <= 0 || seconds <= 0 {
		return 0
	}
	return bytes * 8 / seconds / l.Capacity
}

// Directory exposes link metadata to components, such as the AL+G
// model, that need to reason about where links are and which AS they
// face, without depending on the whole simulator.
type Directory interface {
	// Link returns the link with the given ID.
	Link(id LinkID) (Link, bool)
	// LinksOfAS returns the IDs of every link facing the given peer
	// AS, in ascending ID order.
	LinksOfAS(as bgp.ASN) []LinkID
	// Links returns all link IDs in ascending order.
	Links() []LinkID
}
