package wan

import (
	"sort"

	"tipsy/internal/bgp"
)

// Table is a static, serializable implementation of Directory backed
// by a plain link slice — the form link metadata takes when exported
// to files or sent between processes.
type Table struct {
	links []Link
	byAS  map[bgp.ASN][]LinkID
}

// NewTable builds a Table. Links keep their own IDs; lookups are by
// ID, so the slice need not be dense.
func NewTable(links []Link) *Table {
	t := &Table{
		links: append([]Link(nil), links...),
		byAS:  make(map[bgp.ASN][]LinkID),
	}
	sort.Slice(t.links, func(i, j int) bool { return t.links[i].ID < t.links[j].ID })
	for _, l := range t.links {
		t.byAS[l.PeerAS] = append(t.byAS[l.PeerAS], l.ID)
	}
	return t
}

// Link implements Directory.
func (t *Table) Link(id LinkID) (Link, bool) {
	i := sort.Search(len(t.links), func(i int) bool { return t.links[i].ID >= id })
	if i < len(t.links) && t.links[i].ID == id {
		return t.links[i], true
	}
	return Link{}, false
}

// LinksOfAS implements Directory.
func (t *Table) LinksOfAS(as bgp.ASN) []LinkID { return t.byAS[as] }

// Links implements Directory.
func (t *Table) Links() []LinkID {
	out := make([]LinkID, len(t.links))
	for i, l := range t.links {
		out[i] = l.ID
	}
	return out
}

// All returns the underlying links in ID order. Callers must not
// modify the returned slice.
func (t *Table) All() []Link { return t.links }
