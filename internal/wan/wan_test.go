package wan

import (
	"testing"
	"testing/quick"
)

func TestHourArithmetic(t *testing.T) {
	cases := []struct {
		h             Hour
		day, hod, dow int
	}{
		{0, 0, 0, 0},
		{23, 0, 23, 0},
		{24, 1, 0, 1},
		{24*7 + 5, 7, 5, 0}, // next Monday
		{24*6 + 1, 6, 1, 6}, // Sunday
	}
	for _, c := range cases {
		if c.h.Day() != c.day || c.h.HourOfDay() != c.hod || c.h.DayOfWeek() != c.dow {
			t.Errorf("hour %d: got (%d,%d,%d), want (%d,%d,%d)",
				c.h, c.h.Day(), c.h.HourOfDay(), c.h.DayOfWeek(), c.day, c.hod, c.dow)
		}
	}
}

func TestHourProperties(t *testing.T) {
	f := func(raw uint16) bool {
		h := Hour(raw)
		return h.Day()*24+h.HourOfDay() == int(h) && h.DayOfWeek() == h.Day()%7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestServiceTypeString(t *testing.T) {
	if SvcStorage.String() != "storage" || SvcWeb.String() != "web" {
		t.Error("named service types misnamed")
	}
	if ServiceType(200).String() != "svc200" {
		t.Errorf("synthetic type renders %q", ServiceType(200).String())
	}
}

func TestUtilization(t *testing.T) {
	l := Link{Capacity: GbpsToBps(100)}
	// 100G for a full hour = 45e12 bytes.
	if got := l.Utilization(45e12, 3600); got < 0.999 || got > 1.001 {
		t.Errorf("full-hour line rate utilization = %f", got)
	}
	if got := l.Utilization(45e12/2, 3600); got < 0.499 || got > 0.501 {
		t.Errorf("half load = %f", got)
	}
	if (Link{}).Utilization(100, 3600) != 0 {
		t.Error("zero-capacity link should report 0")
	}
	if l.Utilization(100, 0) != 0 {
		t.Error("zero window should report 0")
	}
}

func TestTableDirectory(t *testing.T) {
	links := []Link{
		{ID: 3, PeerAS: 10, Router: "c"},
		{ID: 1, PeerAS: 10, Router: "a"},
		{ID: 7, PeerAS: 20, Router: "b"},
	}
	tab := NewTable(links)
	if got := tab.Links(); len(got) != 3 || got[0] != 1 || got[2] != 7 {
		t.Errorf("Links() = %v", got)
	}
	l, ok := tab.Link(3)
	if !ok || l.Router != "c" {
		t.Errorf("Link(3) = %+v, %v", l, ok)
	}
	if _, ok := tab.Link(2); ok {
		t.Error("Link(2) should miss")
	}
	if got := tab.LinksOfAS(10); len(got) != 2 {
		t.Errorf("LinksOfAS(10) = %v", got)
	}
	if got := tab.LinksOfAS(99); got != nil {
		t.Errorf("LinksOfAS(99) = %v", got)
	}
	var _ Directory = tab
}

func TestGbpsToBps(t *testing.T) {
	if GbpsToBps(40) != 40e9 {
		t.Error("conversion wrong")
	}
}
