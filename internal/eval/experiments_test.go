package eval

import (
	"sync"
	"testing"

	"tipsy/internal/features"
)

var (
	envOnce sync.Once
	testEnv *Env
)

// sharedEnv builds the small environment once; the environment build
// is the expensive part of every experiment test.
func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() { testEnv = Build(SmallEnvConfig(1)) })
	if testEnv == nil {
		t.Fatal("environment build failed")
	}
	return testEnv
}

func TestEnvWellFormed(t *testing.T) {
	e := sharedEnv(t)
	if len(e.Train) == 0 || len(e.Test) == 0 {
		t.Fatal("empty train or test window")
	}
	for _, r := range e.Train {
		if r.Hour >= e.TrainTo {
			t.Fatal("train window leaked into test hours")
		}
	}
	for _, r := range e.Test {
		if r.Hour < e.TestFrom {
			t.Fatal("test window leaked into training hours")
		}
	}
	if len(e.TopTrain) == 0 {
		t.Fatal("no top training links computed")
	}
}

func TestTable1Shape(t *testing.T) {
	e := sharedEnv(t)
	c := Table1(e)
	// Table 1 of the paper: A tuples < AL tuples < AP tuples, because
	// prefix is the highest-cardinality feature and location the
	// coarser stand-in.
	if !(c.TuplesA < c.TuplesAL && c.TuplesAL < c.TuplesAP) {
		t.Errorf("tuple cardinality ordering violated: %+v", c)
	}
	if c.Prefix <= c.AS || c.Loc >= c.Prefix {
		t.Errorf("feature cardinality ordering violated: %+v", c)
	}
}

func TestFig2Shape(t *testing.T) {
	e := sharedEnv(t)
	pts := Fig2(e, e.Train)
	if len(pts) < 2 {
		t.Fatalf("need at least 2 distances: %+v", pts)
	}
	last := 0.0
	for _, p := range pts {
		if p.CumFrac < last {
			t.Error("CDF not monotone")
		}
		last = p.CumFrac
	}
	if last < 0.999 {
		t.Errorf("CDF ends at %f, want 1", last)
	}
	if pts[0].Dist != 1 || pts[0].CumFrac < 0.40 {
		t.Errorf("flat-Internet property violated: direct peers carry %f of bytes", pts[0].CumFrac)
	}
}

func TestFig3Shape(t *testing.T) {
	e := sharedEnv(t)
	rows := Fig3(e, e.Train)
	if len(rows) < 2 {
		t.Fatalf("need at least 2 distance groups: %+v", rows)
	}
	// Figure 3's surprising finding: the closer the source AS, the
	// MORE links its traffic spreads over.
	if rows[0].Dist != 1 {
		t.Fatal("first row should be 1-hop ASes")
	}
	if rows[0].P90 < rows[len(rows)-1].P90 {
		t.Errorf("1-hop ASes should spray over at least as many links as the farthest: %+v", rows)
	}
	if rows[0].MaxLinks < 3 {
		t.Errorf("1-hop ASes spread over only %d links", rows[0].MaxLinks)
	}
}

func TestFig5Shape(t *testing.T) {
	e := sharedEnv(t)
	pts := Fig5(e, []int{1, 2, 3, 10, 0})
	for _, name := range []string{"Oracle_A", "Oracle_AP", "Oracle_AL"} {
		last := -1.0
		for _, p := range pts {
			v := p.Acc[name]
			if v < last-1e-9 {
				t.Errorf("%s: accuracy not monotone in k", name)
			}
			last = v
		}
		if final := pts[len(pts)-1].Acc[name]; final < 99.99 {
			t.Errorf("%s unrestricted = %f, want 100", name, final)
		}
	}
	// Top-1 must leave meaningful mass on other links (the paper sees
	// 65-85%).
	if top1 := pts[0].Acc["Oracle_AP"]; top1 < 55 || top1 > 97 {
		t.Errorf("Oracle_AP top-1 = %f, implausible", top1)
	}
}

func TestTable4Shape(t *testing.T) {
	e := sharedEnv(t)
	rows := Table4(e)
	byName := map[string]AccuracyRow{}
	for _, r := range rows {
		byName[r.Model] = r
	}
	// Oracles bound their models.
	for _, set := range []string{"A", "AP", "AL"} {
		o, h := byName["Oracle_"+set], byName["Hist_"+set]
		if h.Top3 > o.Top3+1e-9 {
			t.Errorf("Hist_%s (%.2f) beats its oracle (%.2f) at top-3", set, h.Top3, o.Top3)
		}
	}
	// Feature-rich models beat the AS-only model.
	if byName["Hist_AP"].Top3 <= byName["Hist_A"].Top3 {
		t.Error("Hist_AP should beat Hist_A overall")
	}
	// The ensemble is at least as good as its best component here.
	if byName["Hist_AP/AL/A"].Top3 < byName["Hist_AP"].Top3-1e-9 {
		t.Error("ensemble should not lose to its first component")
	}
	// AL+G must not hurt normal traffic (Table 4 of the paper).
	if byName["Hist_AL+G"].Top3 < byName["Hist_AL"].Top3-1.0 {
		t.Errorf("AL+G (%.2f) materially worse than AL (%.2f) overall",
			byName["Hist_AL+G"].Top3, byName["Hist_AL"].Top3)
	}
	// Sanity on absolute levels: historical models work well overall.
	if byName["Hist_AP"].Top3 < 70 {
		t.Errorf("Hist_AP top-3 = %.2f, implausibly low", byName["Hist_AP"].Top3)
	}
}

func TestOutageTablesShape(t *testing.T) {
	e := sharedEnv(t)
	overall := Table4(e)
	all := TableOutages(e, AllOutages)
	if len(all) == 0 {
		t.Skip("no outage-affected traffic in this window")
	}
	get := func(rows []AccuracyRow, name string) AccuracyRow {
		for _, r := range rows {
			if r.Model == name {
				return r
			}
		}
		t.Fatalf("row %s missing", name)
		return AccuracyRow{}
	}
	// Outage-time prediction is harder than normal operation (Table 5
	// vs Table 4 of the paper). Individual small-environment windows
	// can buck the trend when one well-covered event dominates, so
	// the bound is loose.
	if get(all, "Hist_AP").Top3 > get(overall, "Hist_AP").Top3+10 {
		t.Errorf("outage accuracy (%.1f) implausibly above overall (%.1f) for Hist_AP",
			get(all, "Hist_AP").Top3, get(overall, "Hist_AP").Top3)
	}
	// The oracle bound holds unconditionally.
	if get(all, "Hist_AP").Top3 > get(all, "Oracle_AP").Top3+1e-9 {
		t.Error("Hist_AP beats its oracle on outage traffic")
	}
	seen, unseen := OutageBytesSplit(e)
	if seen+unseen == 0 {
		t.Skip("no outage bytes")
	}
	if seen > 0 && unseen > 0 {
		seenRows := TableOutages(e, SeenOutages)
		unseenRows := TableOutages(e, UnseenOutages)
		// Seen outages are far more predictable than unseen ones for
		// the prefix-specific model (Tables 6 vs 7).
		if get(seenRows, "Hist_AP").Top3 <= get(unseenRows, "Hist_AP").Top3 {
			t.Errorf("seen (%.1f) should beat unseen (%.1f) for Hist_AP",
				get(seenRows, "Hist_AP").Top3, get(unseenRows, "Hist_AP").Top3)
		}
	}
}

func TestFig6Fig7Shape(t *testing.T) {
	pts6 := Fig6(800, 1.6, 3, 30)
	if len(pts6) == 0 {
		t.Fatal("no Fig6 points")
	}
	last := 0.0
	for _, p := range pts6 {
		if p.CumFrac < last {
			t.Error("Fig6 CDF not monotone")
		}
		last = p.CumFrac
	}
	// Figure 6: most links experience an outage within the year.
	if last < 0.6 || last > 1.0 {
		t.Errorf("%.0f%% of links had an outage in a year; want a large majority", last*100)
	}
	pts7 := Fig7(800, 1.6, 3, 30)
	if len(pts7) == 0 {
		t.Fatal("no Fig7 points")
	}
	// Figure 7: a sizable fraction of links failed recently (within
	// ~50 days).
	var at60 float64
	for _, p := range pts7 {
		if p.DaysAgo == 60 {
			at60 = p.CumFrac
		}
	}
	if at60 < 0.15 {
		t.Errorf("only %.0f%% of links failed within 60 days", at60*100)
	}
}

func TestFig9Fig10Run(t *testing.T) {
	e := sharedEnv(t)
	pts := Fig9(e, []int{2, 4}, 1, 2)
	if len(pts) == 0 {
		t.Fatal("Fig9 produced nothing")
	}
	for _, p := range pts {
		if p.MeanTop3 <= 0 || p.MeanTop3 > 100 {
			t.Errorf("implausible accuracy %f at %d train days", p.MeanTop3, p.TrainDays)
		}
		if p.MinTop3 > p.MeanTop3+1e-9 || p.MaxTop3 < p.MeanTop3-1e-9 {
			t.Errorf("min/mean/max inconsistent: %+v", p)
		}
	}
	pts10 := Fig10(e, 2)
	if len(pts10) == 0 {
		t.Fatal("Fig10 produced nothing")
	}
	for _, p := range pts10 {
		if p.Top3 <= 0 || p.Top3 > 100 {
			t.Errorf("implausible accuracy %f on day %d", p.Top3, p.DayAfter)
		}
	}
}

func TestFig11Run(t *testing.T) {
	e := sharedEnv(t)
	stats := Fig11(e, 2)
	if len(stats) == 0 {
		t.Fatal("Fig11 produced nothing")
	}
	for _, s := range stats {
		if s.Min > s.Q1+1e-9 || s.Q1 > s.Median+1e-9 || s.Median > s.Q3+1e-9 || s.Q3 > s.Max+1e-9 {
			t.Errorf("%s: quartiles out of order: %+v", s.Class, s)
		}
	}
}

func TestNaiveBayesTables(t *testing.T) {
	e := sharedEnv(t)
	rows := Table9(e)
	byName := map[string]AccuracyRow{}
	for _, r := range rows {
		byName[r.Model] = r
	}
	nb, hist := byName["NB_AL"], byName["Hist_AL"]
	if nb.Model == "" {
		t.Fatal("NB_AL row missing")
	}
	// Appendix A: Naive Bayes is inferior to the historical model at
	// the same feature set.
	if nb.Top3 > hist.Top3+2.0 {
		t.Errorf("NB_AL (%.2f) should not beat Hist_AL (%.2f)", nb.Top3, hist.Top3)
	}
	if nb.Top3 < 20 {
		t.Errorf("NB_AL top-3 = %.2f, implausibly low", nb.Top3)
	}
}

func TestCardinalityHelpers(t *testing.T) {
	e := sharedEnv(t)
	if got := features.Cardinalities(e.Train); got.AS == 0 {
		t.Error("no AS cardinality")
	}
}
