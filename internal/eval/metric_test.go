package eval

import (
	"math"
	"testing"

	"tipsy/internal/bgp"
	"tipsy/internal/core"
	"tipsy/internal/features"
	"tipsy/internal/wan"
)

func ff(as uint32, prefix uint32, loc uint16) features.FlowFeatures {
	return features.FlowFeatures{AS: bgp.ASN(as), Prefix: prefix, Loc: wan.Region(loc), Region: 1, Type: 1}
}

func mkRecs() []features.Record {
	f1 := ff(1, 100, 1)
	f2 := ff(2, 200, 2)
	return []features.Record{
		{Hour: 0, Flow: f1, Link: 1, Bytes: 600},
		{Hour: 1, Flow: f1, Link: 2, Bytes: 400},
		{Hour: 0, Flow: f2, Link: 3, Bytes: 1000},
	}
}

func TestOracleIsPerfectUnrestricted(t *testing.T) {
	recs := mkRecs()
	o := core.NewOracle(features.SetAP, recs)
	acc := Accuracy(o, recs, Options{Ks: []int{0}})
	if math.Abs(acc[0]-1) > 1e-9 {
		t.Errorf("unrestricted oracle accuracy = %f, want 1", acc[0])
	}
}

func TestOracleTopKIsTopLinkMass(t *testing.T) {
	recs := mkRecs()
	o := core.NewOracle(features.SetAP, recs)
	acc := Accuracy(o, recs, Options{Ks: []int{1}})
	// f1: top link carries 600 of 1000; f2: 1000 of 1000.
	want := (600.0 + 1000.0) / 2000.0
	if math.Abs(acc[1]-want) > 1e-9 {
		t.Errorf("top-1 oracle accuracy = %f, want %f", acc[1], want)
	}
}

func TestAccuracyMonotoneInK(t *testing.T) {
	recs := mkRecs()
	models := []core.Predictor{
		core.NewOracle(features.SetAP, recs),
		core.TrainHistorical(features.SetA, recs, core.DefaultHistOpts()),
	}
	for _, m := range models {
		acc := Accuracy(m, recs, Options{Ks: []int{1, 2, 3, 0}})
		if acc[2] < acc[1]-1e-12 || acc[3] < acc[2]-1e-12 || acc[0] < acc[3]-1e-12 {
			t.Errorf("%s: accuracy not monotone in k: %v", m.Name(), acc)
		}
	}
}

func TestAccuracyCreditCappedByPrediction(t *testing.T) {
	// Model trained 50/50 across two links; reality is 100/0. Credit
	// at k=1 must be limited to the predicted 50%, not inflated by
	// renormalization.
	f := ff(1, 100, 1)
	train := []features.Record{
		{Hour: 0, Flow: f, Link: 1, Bytes: 500},
		{Hour: 0, Flow: f, Link: 2, Bytes: 500},
	}
	test := []features.Record{{Hour: 10, Flow: f, Link: 1, Bytes: 1000}}
	m := core.TrainHistorical(features.SetAP, train, core.DefaultHistOpts())
	acc := Accuracy(m, test, Options{Ks: []int{1}})
	if math.Abs(acc[1]-0.5) > 1e-9 {
		t.Errorf("top-1 accuracy = %f, want 0.5 (the stated fraction)", acc[1])
	}
}

func TestAccuracySelect(t *testing.T) {
	recs := mkRecs()
	// An oracle must be built from the records it is scored on: the
	// paper's outage oracles have perfect knowledge of exactly the
	// selected traffic.
	var hour0 []features.Record
	for _, r := range recs {
		if r.Hour == 0 {
			hour0 = append(hour0, r)
		}
	}
	o := core.NewOracle(features.SetAP, hour0)
	acc := Accuracy(o, recs, Options{
		Ks:     []int{0},
		Select: func(f features.FlowFeatures, h wan.Hour) bool { return h == 0 },
	})
	if math.Abs(acc[0]-1) > 1e-9 {
		t.Errorf("selected oracle accuracy = %f", acc[0])
	}
	// A whole-window oracle scored on a selection is no longer exact.
	whole := core.NewOracle(features.SetAP, recs)
	acc = Accuracy(whole, recs, Options{
		Ks:     []int{0},
		Select: func(f features.FlowFeatures, h wan.Hour) bool { return h == 0 },
	})
	if acc[0] >= 1 {
		t.Error("whole-window oracle should not be exact on a selection")
	}
	// Nothing selected: accuracy map returns zero values.
	acc = Accuracy(whole, recs, Options{
		Ks:     []int{1},
		Select: func(features.FlowFeatures, wan.Hour) bool { return false },
	})
	if acc[1] != 0 {
		t.Errorf("empty selection should yield 0, got %f", acc[1])
	}
}

func TestAccuracyExcludeMajority(t *testing.T) {
	f := ff(1, 100, 1)
	train := []features.Record{
		{Hour: 0, Flow: f, Link: 1, Bytes: 900},
		{Hour: 0, Flow: f, Link: 2, Bytes: 100},
	}
	// Test traffic arrives on link 2 while link 1 is down.
	test := []features.Record{{Hour: 5, Flow: f, Link: 2, Bytes: 100}}
	m := core.TrainHistorical(features.SetAP, train, core.DefaultHistOpts())
	// Without the exclusion prior the model bets on link 1 first.
	noPrior := Accuracy(m, test, Options{Ks: []int{1}})
	// With it, link 1 is excluded and the surviving link 2 is
	// renormalized to full confidence.
	withPrior := Accuracy(m, test, Options{
		Ks:      []int{1},
		Exclude: func(l wan.LinkID, h wan.Hour) bool { return l == 1 },
	})
	if noPrior[1] >= withPrior[1] {
		t.Errorf("exclusion prior should help: %f vs %f", noPrior[1], withPrior[1])
	}
	if math.Abs(withPrior[1]-1) > 1e-9 {
		t.Errorf("with prior, accuracy = %f, want 1", withPrior[1])
	}
}

func TestGroupByCoarsensUnits(t *testing.T) {
	f1 := ff(1, 100, 1)
	f2 := ff(1, 200, 1) // same A-projection, different prefix
	recs := []features.Record{
		{Hour: 0, Flow: f1, Link: 1, Bytes: 500},
		{Hour: 0, Flow: f2, Link: 2, Bytes: 500},
	}
	fine := BuildGroups(recs, Options{})
	coarse := BuildGroups(recs, Options{GroupBy: GroupBySet(features.SetA)})
	if len(fine) != 2 || len(coarse) != 1 {
		t.Fatalf("groups: fine=%d coarse=%d", len(fine), len(coarse))
	}
	if coarse[0].Total != 1000 || len(coarse[0].Links) != 2 {
		t.Errorf("coarse group wrong: %+v", coarse[0])
	}
	// Oracle_A at its own granularity is perfect unrestricted.
	o := core.NewOracle(features.SetA, recs)
	acc := Accuracy(o, recs, Options{Ks: []int{0}, GroupBy: GroupBySet(features.SetA)})
	if math.Abs(acc[0]-1) > 1e-9 {
		t.Errorf("coarse oracle accuracy = %f", acc[0])
	}
}

func TestGroupsDeterministic(t *testing.T) {
	recs := mkRecs()
	a := BuildGroups(recs, Options{})
	b := BuildGroups(recs, Options{})
	if len(a) != len(b) {
		t.Fatal("group counts differ")
	}
	for i := range a {
		if a[i].Flow != b[i].Flow || a[i].Total != b[i].Total {
			t.Fatal("group order not deterministic")
		}
	}
}

func TestGroupByFlowHourSeparatesHours(t *testing.T) {
	groups := GroupByFlowHour(mkRecs())
	if len(groups) != 3 {
		t.Fatalf("want 3 per-hour groups, got %d", len(groups))
	}
}

// TestCreditBytesShared pins the exported credit computation the
// online monitor reuses: Σ min(predicted bytes, actual bytes) over
// the first k predictions.
func TestCreditBytesShared(t *testing.T) {
	links := map[wan.LinkID]float64{1: 600, 2: 300, 3: 100}
	preds := []core.Prediction{
		{Link: 1, Frac: 0.5}, // min(500, 600) = 500
		{Link: 3, Frac: 0.3}, // min(300, 100) = 100
		{Link: 9, Frac: 0.2}, // absent from truth: 0
	}
	if got := CreditBytes(preds, 1, links, 1000); got != 500 {
		t.Errorf("k=1 credit = %v, want 500", got)
	}
	if got := CreditBytes(preds, 3, links, 1000); got != 600 {
		t.Errorf("k=3 credit = %v, want 600", got)
	}
	// k=0 means no truncation; empty predictions earn nothing.
	if got := CreditBytes(preds, 0, links, 1000); got != 600 {
		t.Errorf("k=0 credit = %v, want 600", got)
	}
	if got := CreditBytes(nil, 3, links, 1000); got != 0 {
		t.Errorf("empty predictions credit = %v, want 0", got)
	}
}
