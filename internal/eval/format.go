package eval

import (
	"fmt"
	"strings"

	"tipsy/internal/features"
)

// FormatAccuracyTable renders accuracy rows in the paper's table
// layout.
func FormatAccuracyTable(title string, rows []AccuracyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-18s %8s %8s %8s\n", "Model", "Top 1 %", "Top 2 %", "Top 3 %")
	best := [3]float64{}
	for _, r := range rows {
		if r.Oracle {
			continue
		}
		if r.Top1 > best[0] {
			best[0] = r.Top1
		}
		if r.Top2 > best[1] {
			best[1] = r.Top2
		}
		if r.Top3 > best[2] {
			best[2] = r.Top3
		}
	}
	mark := func(v, best float64, oracle bool) string {
		s := fmt.Sprintf("%8.2f", v)
		if !oracle && v == best && v > 0 {
			s += "*"
		} else {
			s += " "
		}
		return s
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %s %s %s\n", r.Model,
			mark(r.Top1, best[0], r.Oracle),
			mark(r.Top2, best[1], r.Oracle),
			mark(r.Top3, best[2], r.Oracle))
	}
	b.WriteString("(* best non-oracle accuracy per column)\n")
	return b.String()
}

// FormatFig2 renders the Figure 2 CDF.
func FormatFig2(points []Fig2Point) string {
	var b strings.Builder
	b.WriteString("Figure 2: CDF of bytes by source-AS distance\n")
	fmt.Fprintf(&b, "%-10s %14s %10s\n", "AS hops", "bytes", "cum %")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10d %14.3e %9.2f%%\n", p.Dist, p.Bytes, p.CumFrac*100)
	}
	return b.String()
}

// FormatFig3 renders the Figure 3 per-distance link-spread summary.
func FormatFig3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3: links receiving a source AS's traffic, by AS distance (byte-weighted)\n")
	fmt.Fprintf(&b, "%-10s %6s %12s %6s %6s %6s %6s\n", "AS hops", "ASes", "bytes", "p50", "p90", "p99", "max")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %6d %12.3e %6d %6d %6d %6d\n",
			r.Dist, r.ASes, r.Bytes, r.P50, r.P90, r.P99, r.MaxLinks)
	}
	return b.String()
}

// FormatFig5 renders the oracle-accuracy-vs-k curve.
func FormatFig5(points []Fig5Point) string {
	var b strings.Builder
	b.WriteString("Figure 5: oracle accuracy vs number of predicted links\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s\n", "k", "Oracle_A", "Oracle_AP", "Oracle_AL")
	for _, p := range points {
		k := fmt.Sprintf("%d", p.K)
		if p.K == 0 {
			k = "all"
		}
		fmt.Fprintf(&b, "%-8s %9.2f%% %9.2f%% %9.2f%%\n", k,
			p.Acc["Oracle_A"], p.Acc["Oracle_AP"], p.Acc["Oracle_AL"])
	}
	return b.String()
}

// FormatFig9 renders accuracy vs training window length.
func FormatFig9(points []Fig9Point) string {
	var b strings.Builder
	b.WriteString("Figure 9: Hist_AL/AP/A top-3 accuracy vs training window length\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s\n", "train days", "mean %", "min %", "max %")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12d %8.2f %8.2f %8.2f\n", p.TrainDays, p.MeanTop3, p.MinTop3, p.MaxTop3)
	}
	return b.String()
}

// FormatFig10 renders accuracy decay per day after training.
func FormatFig10(points []Fig10Point) string {
	var b strings.Builder
	b.WriteString("Figure 10: Hist_AL/AP/A top-3 accuracy per day after training\n")
	fmt.Fprintf(&b, "%-12s %8s\n", "day after", "top-3 %")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12d %8.2f\n", p.DayAfter, p.Top3)
	}
	return b.String()
}

// FormatFig11 renders the sliding-window accuracy distributions.
func FormatFig11(stats []Fig11Stats) string {
	var b strings.Builder
	b.WriteString("Figure 11: top-3 accuracy across sliding windows, by outage class\n")
	fmt.Fprintf(&b, "%-10s %4s %8s %8s %8s %8s %8s\n", "class", "n", "min", "q1", "median", "q3", "max")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-10s %4d %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			s.Class, s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max)
	}
	return b.String()
}

// FormatTable1 renders the feature cardinality summary in the shape
// of the paper's Table 1.
func FormatTable1(c features.Cardinality) string {
	var b strings.Builder
	b.WriteString("Table 1: feature cardinalities and tuple counts (training window)\n")
	fmt.Fprintf(&b, "%-18s %10s\n", "feature", "distinct")
	fmt.Fprintf(&b, "%-18s %10d\n", "source AS", c.AS)
	fmt.Fprintf(&b, "%-18s %10d\n", "source /24", c.Prefix)
	fmt.Fprintf(&b, "%-18s %10d\n", "source location", c.Loc)
	fmt.Fprintf(&b, "%-18s %10d\n", "dest region", c.Region)
	fmt.Fprintf(&b, "%-18s %10d\n", "dest type", c.Type)
	fmt.Fprintf(&b, "%-18s %10d\n", "tuples (A)", c.TuplesA)
	fmt.Fprintf(&b, "%-18s %10d\n", "tuples (AP)", c.TuplesAP)
	fmt.Fprintf(&b, "%-18s %10d\n", "tuples (AL)", c.TuplesAL)
	return b.String()
}
