package eval

import (
	"sort"

	"tipsy/internal/bgp"
	"tipsy/internal/core"
	"tipsy/internal/dataset"
	"tipsy/internal/features"
	"tipsy/internal/wan"
)

// AccuracyRow is one row of an accuracy table: a model's top-1/2/3
// accuracy as percentages.
type AccuracyRow struct {
	Model            string
	Top1, Top2, Top3 float64
	Oracle           bool
}

// StandardKs are the k values the paper's tables report.
var StandardKs = []int{1, 2, 3}

func row(model core.Predictor, recs []features.Record, opts Options, oracle bool) AccuracyRow {
	opts.Ks = StandardKs
	acc := Accuracy(model, recs, opts)
	return AccuracyRow{
		Model: model.Name(), Oracle: oracle,
		Top1: acc[1] * 100, Top2: acc[2] * 100, Top3: acc[3] * 100,
	}
}

// GroupBySet coarsens evaluation units to a feature set's tuple
// granularity; the paper scores each oracle this way.
func GroupBySet(set features.Set) func(features.FlowFeatures) features.FlowFeatures {
	return func(f features.FlowFeatures) features.FlowFeatures {
		t := set.Project(f)
		return features.FlowFeatures{AS: t.AS, Prefix: t.Prefix, Loc: t.Loc, Region: t.Region, Type: t.Type}
	}
}

// tableEntry pairs a model with how it is evaluated. Oracle entries
// carry only the feature set; the oracle itself is trained per table
// on the selected slice of the testing data, because the paper's
// oracle has perfect knowledge of exactly the traffic being scored.
type tableEntry struct {
	m      core.Predictor
	oracle bool
	set    features.Set // oracle granularity; valid when oracle
}

// modelsWithOracles interleaves oracles and models the way the
// paper's tables do: Oracle_X immediately above the Hist_X it bounds.
func (e *Env) modelsWithOracles(models []core.Predictor) []tableEntry {
	var out []tableEntry
	for _, set := range []features.Set{features.SetA, features.SetAP, features.SetAL} {
		out = append(out, tableEntry{oracle: true, set: set})
		for _, m := range models {
			if h, ok := m.(*core.Historical); ok && h.Set() == set {
				out = append(out, tableEntry{m: m})
			}
		}
	}
	for _, m := range models {
		if _, ok := m.(*core.Historical); !ok {
			out = append(out, tableEntry{m: m})
		}
	}
	return out
}

// tableRows scores each entry. Oracles are trained on the selected
// records and evaluated at their own tuple granularity.
func tableRows(e *Env, entries []tableEntry, opts Options) []AccuracyRow {
	selected := e.Test
	if opts.Select != nil {
		selected = selected[:0:0]
		for _, r := range e.Test {
			if opts.Select(r.Flow, r.Hour) {
				selected = append(selected, r)
			}
		}
	}
	var rows []AccuracyRow
	for _, entry := range entries {
		o := opts
		m := entry.m
		if entry.oracle {
			o.GroupBy = GroupBySet(entry.set)
			m = core.NewOracle(entry.set, selected)
		}
		rows = append(rows, row(m, e.Test, o, entry.oracle))
	}
	return rows
}

// Table4 reproduces "Overall prediction accuracy, with 3 weeks of
// training and 1 week of testing": every model and oracle scored on
// all test traffic.
func Table4(e *Env) []AccuracyRow {
	return tableRows(e, e.modelsWithOracles(e.StandardModels()), Options{})
}

// OutageClass selects which outage-affected traffic an experiment
// scores.
type OutageClass int

const (
	// AllOutages: every flow-hour whose top trained link was down
	// (Table 5).
	AllOutages OutageClass = iota
	// SeenOutages: the down link also had an outage during training
	// (Table 6).
	SeenOutages
	// UnseenOutages: the down link had no outage during training
	// (Table 7).
	UnseenOutages
)

// outageOptions builds the §5.3 evaluation options: select flow-hours
// whose top-1 training link is unavailable, give models the
// availability prior, and restrict by outage class.
func (e *Env) outageOptions(class OutageClass) Options {
	return Options{
		Exclude: e.TestExclude,
		Select: func(f features.FlowFeatures, h wan.Hour) bool {
			top, ok := e.TopTrain[f]
			if !ok || !e.TestOut.Down(top, h) {
				return false
			}
			switch class {
			case SeenOutages:
				return e.TrainOut.HasOutage(top)
			case UnseenOutages:
				return !e.TrainOut.HasOutage(top)
			default:
				return true
			}
		},
	}
}

// TableOutages reproduces Tables 5, 6, and 7: accuracy restricted to
// traffic whose top training link was down, for the given class.
func TableOutages(e *Env, class OutageClass) []AccuracyRow {
	return tableRows(e, e.modelsWithOracles(e.StandardModels()), e.outageOptions(class))
}

// OutageBytesSplit reports the fraction of outage-affected test bytes
// whose outage was unseen in training (the paper reports ~57%).
func OutageBytesSplit(e *Env) (seen, unseen float64) {
	for _, r := range e.Test {
		top, ok := e.TopTrain[r.Flow]
		if !ok || !e.TestOut.Down(top, r.Hour) {
			continue
		}
		if e.TrainOut.HasOutage(top) {
			seen += r.Bytes
		} else {
			unseen += r.Bytes
		}
	}
	return seen, unseen
}

// Fig5Point is one point of Figure 5: oracle accuracy at k.
type Fig5Point struct {
	K   int // 0 = unrestricted
	Acc map[string]float64
}

// Fig5 reproduces "Prediction accuracy of oracle as a function of the
// number of ingress links predicted" for the A, AP and AL oracles.
func Fig5(e *Env, ks []int) []Fig5Point {
	if len(ks) == 0 {
		ks = []int{1, 2, 3, 4, 5, 7, 10, 15, 20, 50, 0}
	}
	oracles := []*core.Oracle{
		e.Oracle(features.SetA), e.Oracle(features.SetAP), e.Oracle(features.SetAL),
	}
	accs := make(map[string]map[int]float64)
	for _, o := range oracles {
		accs[o.Name()] = Accuracy(o, e.Test, Options{Ks: ks, GroupBy: GroupBySet(o.Set())})
	}
	out := make([]Fig5Point, len(ks))
	for i, k := range ks {
		p := Fig5Point{K: k, Acc: make(map[string]float64, len(oracles))}
		for _, o := range oracles {
			p.Acc[o.Name()] = accs[o.Name()][k] * 100
		}
		out[i] = p
	}
	return out
}

// Fig2Point is one point of the Figure 2 CDF: cumulative fraction of
// ingress bytes from source ASes at most Dist AS-hops away.
type Fig2Point struct {
	Dist    int
	Bytes   float64
	CumFrac float64
}

// Fig2 reproduces "CDF of Bytes by distance of source AS" over the
// given records, using the valley-free AS distances the BMP-derived
// topology yields.
func Fig2(e *Env, recs []features.Record) []Fig2Point {
	dist := e.Graph.DistancesToCloud()
	byDist := make(map[int]float64)
	var total float64
	for _, r := range recs {
		d, ok := dist[r.Flow.AS]
		if !ok {
			continue
		}
		byDist[d] += r.Bytes
		total += r.Bytes
	}
	var ds []int
	for d := range byDist {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	out := make([]Fig2Point, 0, len(ds))
	cum := 0.0
	for _, d := range ds {
		cum += byDist[d]
		out = append(out, Fig2Point{Dist: d, Bytes: byDist[d], CumFrac: cum / total})
	}
	return out
}

// Fig3Row summarizes, for source ASes at one AS-hop distance, the
// byte-weighted distribution of how many distinct peering links each
// AS's traffic arrived on: the quantiles of Figure 3's per-distance
// CDFs.
type Fig3Row struct {
	Dist          int
	ASes          int
	Bytes         float64
	P50, P90, P99 int // links receiving traffic, byte-weighted quantiles
	MaxLinks      int
}

// Fig3 reproduces "CDF of Bytes from source ASes against the number
// of our peering links that received it, grouped by AS distance".
func Fig3(e *Env, recs []features.Record) []Fig3Row {
	dist := e.Graph.DistancesToCloud()
	type asAgg struct {
		links map[wan.LinkID]bool
		bytes float64
	}
	perAS := make(map[bgp.ASN]*asAgg)
	for _, r := range recs {
		a := perAS[r.Flow.AS]
		if a == nil {
			a = &asAgg{links: make(map[wan.LinkID]bool)}
			perAS[r.Flow.AS] = a
		}
		a.links[r.Link] = true
		a.bytes += r.Bytes
	}
	type pt struct {
		nLinks int
		bytes  float64
	}
	byDist := make(map[int][]pt)
	for asn, a := range perAS {
		d, ok := dist[asn]
		if !ok {
			continue
		}
		byDist[d] = append(byDist[d], pt{len(a.links), a.bytes})
	}
	var ds []int
	for d := range byDist {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	out := make([]Fig3Row, 0, len(ds))
	for _, d := range ds {
		pts := byDist[d]
		sort.Slice(pts, func(i, j int) bool { return pts[i].nLinks < pts[j].nLinks })
		var total float64
		for _, p := range pts {
			total += p.bytes
		}
		quantile := func(q float64) int {
			cum := 0.0
			for _, p := range pts {
				cum += p.bytes
				if cum >= q*total {
					return p.nLinks
				}
			}
			return pts[len(pts)-1].nLinks
		}
		out = append(out, Fig3Row{
			Dist: d, ASes: len(pts), Bytes: total,
			P50: quantile(0.5), P90: quantile(0.9), P99: quantile(0.99),
			MaxLinks: pts[len(pts)-1].nLinks,
		})
	}
	return out
}

// Table1 reports the observed feature cardinalities over the training
// window, the substrate's version of the paper's Table 1.
func Table1(e *Env) features.Cardinality {
	return features.Cardinalities(e.Train)
}

// NBModels trains the Appendix A Naïve Bayes models and the
// Hist_AL/NB_AL ensemble alongside the standard set, for Tables 9
// and 10.
func (e *Env) NBModels() []core.Predictor {
	hAL := e.Hist(features.SetAL)
	nbA := core.TrainNaiveBayes(features.SetA, e.Train, core.DefaultNBOpts())
	nbAL := core.TrainNaiveBayes(features.SetAL, e.Train, core.DefaultNBOpts())
	return []core.Predictor{nbA, nbAL, core.NewEnsemble(hAL, nbAL)}
}

// Table9 reproduces the Appendix A overall-accuracy comparison
// including the Naïve Bayes models.
func Table9(e *Env) []AccuracyRow {
	models := append(e.StandardModels(), e.NBModels()...)
	return tableRows(e, e.modelsWithOracles(models), Options{})
}

// Table10 reproduces the Appendix A outage-accuracy comparison.
func Table10(e *Env) []AccuracyRow {
	models := append(e.StandardModels(), e.NBModels()...)
	return tableRows(e, e.modelsWithOracles(models), e.outageOptions(AllOutages))
}

// Fig9Point is one point of Figure 9: model accuracy given a training
// window length.
type Fig9Point struct {
	TrainDays        int
	MeanTop3         float64
	MinTop3, MaxTop3 float64
}

// Fig9 reproduces "Accuracy given the number of training days" for
// Hist_AL/AP/A: the environment's full horizon is re-sliced into
// nPeriods non-overlapping test windows, each preceded by training
// windows of varying lengths. The environment must have been built
// with enough TrainDays to accommodate the longest length.
func Fig9(e *Env, lengths []int, nPeriods, testDays int) []Fig9Point {
	if len(lengths) == 0 {
		lengths = []int{3, 7, 14, 21, 28}
	}
	maxLen := 0
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	// The sliding periods extend past the standard split; simulate as
	// far as the last one needs.
	horizon := wan.Hour((maxLen + nPeriods*testDays) * 24)
	if horizon < e.TestTo {
		horizon = e.TestTo
	}
	all := e.Records(0, horizon)
	out := make([]Fig9Point, 0, len(lengths))
	for _, l := range lengths {
		pt := Fig9Point{TrainDays: l, MinTop3: 101, MaxTop3: -1}
		n := 0
		for p := 0; p < nPeriods; p++ {
			testFrom := wan.Hour((maxLen + p*testDays) * 24)
			testTo := testFrom + wan.Hour(testDays*24)
			if testTo > horizon {
				break
			}
			trainFrom := testFrom - wan.Hour(l*24)
			train := dataset.Window(all, trainFrom, testFrom)
			test := dataset.Window(all, testFrom, testTo)
			if len(train) == 0 || len(test) == 0 {
				continue
			}
			m := trainEnsembleALAPA(train)
			acc := Accuracy(m, test, Options{Ks: []int{3}})[3] * 100
			pt.MeanTop3 += acc
			if acc < pt.MinTop3 {
				pt.MinTop3 = acc
			}
			if acc > pt.MaxTop3 {
				pt.MaxTop3 = acc
			}
			n++
		}
		if n > 0 {
			pt.MeanTop3 /= float64(n)
			out = append(out, pt)
		}
	}
	return out
}

func trainEnsembleALAPA(train []features.Record) core.Predictor {
	hA := core.TrainHistorical(features.SetA, train, core.DefaultHistOpts())
	hAP := core.TrainHistorical(features.SetAP, train, core.DefaultHistOpts())
	hAL := core.TrainHistorical(features.SetAL, train, core.DefaultHistOpts())
	return core.NewEnsemble(hAL, hAP, hA)
}

// Fig10Point is one point of Figure 10: accuracy on the nth day after
// the training window closed.
type Fig10Point struct {
	DayAfter int
	Top3     float64
}

// Fig10 reproduces "Daily accuracy after training": a model trained
// on the standard window is scored on each subsequent day separately,
// showing staleness decay.
func Fig10(e *Env, days int) []Fig10Point {
	all := e.Records(0, e.TrainTo+wan.Hour(days*24))
	train := dataset.Window(all, e.TrainFrom, e.TrainTo)
	m := trainEnsembleALAPA(train)
	out := make([]Fig10Point, 0, days)
	for d := 0; d < days; d++ {
		from := e.TrainTo + wan.Hour(d*24)
		day := dataset.Window(all, from, from+24)
		if len(day) == 0 {
			continue
		}
		acc := Accuracy(m, day, Options{Ks: []int{3}})[3] * 100
		out = append(out, Fig10Point{DayAfter: d + 1, Top3: acc})
	}
	return out
}

// Fig11Stats summarizes the accuracy distribution across sliding
// windows for one outage class (Figure 11's box plots).
type Fig11Stats struct {
	Class                    string
	N                        int
	Min, Q1, Median, Q3, Max float64
}

// Fig11 reproduces "Accuracy for N training and testing time
// windows": models are retrained on sliding 21-day windows (scaled to
// the environment's TrainDays) and tested on the following day,
// separately for overall, seen-outage, and unseen-outage traffic.
func Fig11(e *Env, windows int) []Fig11Stats {
	trainLen := wan.Hour(e.Cfg.TrainDays * 24)
	horizon := trainLen + wan.Hour((windows+1)*24)
	if horizon < e.TestTo {
		horizon = e.TestTo
	}
	all := e.Records(0, horizon)
	samples := map[string][]float64{"overall": nil, "seen": nil, "unseen": nil}
	for w := 0; w < windows; w++ {
		testFrom := trainLen + wan.Hour(w*24)
		testTo := testFrom + 24
		if testTo > horizon {
			break
		}
		trainFrom := testFrom - trainLen
		train := dataset.Window(all, trainFrom, testFrom)
		test := dataset.Window(all, testFrom, testTo)
		if len(train) == 0 || len(test) == 0 {
			continue
		}
		sub := &Env{Cfg: e.Cfg, Sim: e.Sim, Metros: e.Metros, Graph: e.Graph, Workload: e.Workload,
			TrainFrom: trainFrom, TestTo: testTo}
		subAll := append(append([]features.Record(nil), train...), test...)
		sub.SplitAt(subAll, testFrom)
		m := trainEnsembleALAPA(train)
		samples["overall"] = append(samples["overall"],
			Accuracy(m, sub.Test, Options{Ks: []int{3}})[3]*100)
		for _, cls := range []struct {
			name string
			c    OutageClass
		}{{"seen", SeenOutages}, {"unseen", UnseenOutages}} {
			opts := sub.outageOptions(cls.c)
			opts.Ks = []int{3}
			acc := Accuracy(m, sub.Test, opts)
			samples[cls.name] = append(samples[cls.name], acc[3]*100)
		}
	}
	var out []Fig11Stats
	for _, name := range []string{"overall", "seen", "unseen"} {
		s := samples[name]
		if len(s) == 0 {
			continue
		}
		sort.Float64s(s)
		q := func(p float64) float64 { return s[int(p*float64(len(s)-1)+0.5)] }
		out = append(out, Fig11Stats{
			Class: name, N: len(s),
			Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1],
		})
	}
	return out
}
