package eval

import (
	"fmt"
	"sort"
	"strings"

	"tipsy/internal/netsim"
	"tipsy/internal/wan"
)

// Fig6Point is one point of Figure 6: by day D of the year, CumFrac
// of links had experienced their first outage.
type Fig6Point struct {
	Day     int
	CumFrac float64
}

// Fig6 reproduces "Earliest time in a calendar year that a peering
// link was down": the cumulative fraction of links that have had at
// least one outage by each day, over a year-long outage process.
func Fig6(nLinks int, ratePerYear float64, seed int64, stepDays int) []Fig6Point {
	sched := netsim.GenOutages(nLinks, 365*24, ratePerYear, seed)
	firstDay := make([]int, 0, nLinks)
	for l := 1; l <= nLinks; l++ {
		outs := sched.ForLink(wan.LinkID(l))
		if len(outs) > 0 {
			firstDay = append(firstDay, int(outs[0].Start)/24)
		}
	}
	sort.Ints(firstDay)
	var out []Fig6Point
	for day := stepDays; day <= 365; day += stepDays {
		n := sort.SearchInts(firstDay, day)
		out = append(out, Fig6Point{Day: day, CumFrac: float64(n) / float64(nLinks)})
	}
	return out
}

// Fig7Point is one point of Figure 7: CumFrac of links whose most
// recent outage was at most Days ago, looking back from year end.
type Fig7Point struct {
	DaysAgo int
	CumFrac float64
}

// Fig7 reproduces "Days since the last time a peering link was down".
func Fig7(nLinks int, ratePerYear float64, seed int64, stepDays int) []Fig7Point {
	sched := netsim.GenOutages(nLinks, 365*24, ratePerYear, seed)
	lastAgo := make([]int, 0, nLinks)
	for l := 1; l <= nLinks; l++ {
		outs := sched.ForLink(wan.LinkID(l))
		if len(outs) > 0 {
			last := outs[len(outs)-1]
			lastAgo = append(lastAgo, (365*24-int(last.End))/24)
		}
	}
	sort.Ints(lastAgo)
	var out []Fig7Point
	for day := stepDays; day <= 365; day += stepDays {
		n := sort.SearchInts(lastAgo, day)
		out = append(out, Fig7Point{DaysAgo: day, CumFrac: float64(n) / float64(nLinks)})
	}
	return out
}

// FormatFig6 renders the first-outage CDF.
func FormatFig6(points []Fig6Point) string {
	var b strings.Builder
	b.WriteString("Figure 6: earliest day in the year a peering link was down (CDF over links)\n")
	fmt.Fprintf(&b, "%-8s %10s\n", "day", "cum frac")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8d %9.1f%%\n", p.Day, p.CumFrac*100)
	}
	return b.String()
}

// FormatFig7 renders the last-outage CDF.
func FormatFig7(points []Fig7Point) string {
	var b strings.Builder
	b.WriteString("Figure 7: days since a peering link was last down (CDF over links)\n")
	fmt.Fprintf(&b, "%-8s %10s\n", "days ago", "cum frac")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8d %9.1f%%\n", p.DaysAgo, p.CumFrac*100)
	}
	return b.String()
}
