package eval

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"tipsy/internal/features"
)

// CSV export: every experiment's data in a plot-ready form, so the
// paper's figures can be regenerated with any plotting tool. Each
// writer produces one file under dir.

func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func f2s(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// WriteAccuracyCSV exports an accuracy table.
func WriteAccuracyCSV(dir, name string, rows []AccuracyRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		kind := "model"
		if r.Oracle {
			kind = "oracle"
		}
		out[i] = []string{r.Model, kind, f2s(r.Top1), f2s(r.Top2), f2s(r.Top3)}
	}
	return writeCSV(dir, name, []string{"model", "kind", "top1_pct", "top2_pct", "top3_pct"}, out)
}

// WriteFig2CSV exports the byte-distance CDF.
func WriteFig2CSV(dir string, pts []Fig2Point) error {
	rows := make([][]string, len(pts))
	for i, p := range pts {
		rows[i] = []string{strconv.Itoa(p.Dist), f2s(p.Bytes), f2s(p.CumFrac)}
	}
	return writeCSV(dir, "fig2.csv", []string{"as_hops", "bytes", "cum_frac"}, rows)
}

// WriteFig3CSV exports the per-distance link-spread quantiles.
func WriteFig3CSV(dir string, rows3 []Fig3Row) error {
	rows := make([][]string, len(rows3))
	for i, r := range rows3 {
		rows[i] = []string{strconv.Itoa(r.Dist), strconv.Itoa(r.ASes), f2s(r.Bytes),
			strconv.Itoa(r.P50), strconv.Itoa(r.P90), strconv.Itoa(r.P99), strconv.Itoa(r.MaxLinks)}
	}
	return writeCSV(dir, "fig3.csv",
		[]string{"as_hops", "ases", "bytes", "p50_links", "p90_links", "p99_links", "max_links"}, rows)
}

// WriteFig5CSV exports the oracle-vs-k curves.
func WriteFig5CSV(dir string, pts []Fig5Point) error {
	rows := make([][]string, len(pts))
	for i, p := range pts {
		rows[i] = []string{strconv.Itoa(p.K),
			f2s(p.Acc["Oracle_A"]), f2s(p.Acc["Oracle_AP"]), f2s(p.Acc["Oracle_AL"])}
	}
	return writeCSV(dir, "fig5.csv", []string{"k", "oracle_a_pct", "oracle_ap_pct", "oracle_al_pct"}, rows)
}

// WriteFig6CSV exports the first-outage CDF.
func WriteFig6CSV(dir string, pts []Fig6Point) error {
	rows := make([][]string, len(pts))
	for i, p := range pts {
		rows[i] = []string{strconv.Itoa(p.Day), f2s(p.CumFrac)}
	}
	return writeCSV(dir, "fig6.csv", []string{"day", "cum_frac"}, rows)
}

// WriteFig7CSV exports the last-outage CDF.
func WriteFig7CSV(dir string, pts []Fig7Point) error {
	rows := make([][]string, len(pts))
	for i, p := range pts {
		rows[i] = []string{strconv.Itoa(p.DaysAgo), f2s(p.CumFrac)}
	}
	return writeCSV(dir, "fig7.csv", []string{"days_ago", "cum_frac"}, rows)
}

// WriteFig9CSV exports accuracy vs training-window length.
func WriteFig9CSV(dir string, pts []Fig9Point) error {
	rows := make([][]string, len(pts))
	for i, p := range pts {
		rows[i] = []string{strconv.Itoa(p.TrainDays), f2s(p.MeanTop3), f2s(p.MinTop3), f2s(p.MaxTop3)}
	}
	return writeCSV(dir, "fig9.csv", []string{"train_days", "mean_top3_pct", "min_top3_pct", "max_top3_pct"}, rows)
}

// WriteFig10CSV exports the staleness decay.
func WriteFig10CSV(dir string, pts []Fig10Point) error {
	rows := make([][]string, len(pts))
	for i, p := range pts {
		rows[i] = []string{strconv.Itoa(p.DayAfter), f2s(p.Top3)}
	}
	return writeCSV(dir, "fig10.csv", []string{"day_after", "top3_pct"}, rows)
}

// WriteFig11CSV exports the sliding-window distribution summary.
func WriteFig11CSV(dir string, stats []Fig11Stats) error {
	rows := make([][]string, len(stats))
	for i, s := range stats {
		rows[i] = []string{s.Class, strconv.Itoa(s.N),
			f2s(s.Min), f2s(s.Q1), f2s(s.Median), f2s(s.Q3), f2s(s.Max)}
	}
	return writeCSV(dir, "fig11.csv", []string{"class", "n", "min", "q1", "median", "q3", "max"}, rows)
}

// WriteTable1CSV exports feature cardinalities.
func WriteTable1CSV(dir string, c features.Cardinality) error {
	rows := [][]string{
		{"source_as", strconv.Itoa(c.AS)},
		{"source_prefix24", strconv.Itoa(c.Prefix)},
		{"source_location", strconv.Itoa(c.Loc)},
		{"dest_region", strconv.Itoa(c.Region)},
		{"dest_type", strconv.Itoa(c.Type)},
		{"tuples_a", strconv.Itoa(c.TuplesA)},
		{"tuples_ap", strconv.Itoa(c.TuplesAP)},
		{"tuples_al", strconv.Itoa(c.TuplesAL)},
	}
	return writeCSV(dir, "table1.csv", []string{"feature", "distinct"}, rows)
}

// CSVNameForTable maps an experiment name to its CSV file name.
func CSVNameForTable(experiment string) string {
	return fmt.Sprintf("%s.csv", experiment)
}
