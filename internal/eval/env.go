package eval

import (
	"tipsy/internal/core"
	"tipsy/internal/dataset"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/netsim"
	"tipsy/internal/pipeline"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

// EnvConfig parameterizes an experiment environment.
type EnvConfig struct {
	Seed       int64
	TrainDays  int
	TestDays   int
	TopoCfg    topology.GenConfig
	TrafficCfg traffic.Config
	SimCfg     netsim.Config
}

// DefaultEnvConfig is the full-scale environment the experiment
// harness uses: the paper's 3 weeks of training and 1 week of
// testing.
func DefaultEnvConfig(seed int64) EnvConfig {
	cfg := EnvConfig{
		Seed:       seed,
		TrainDays:  21,
		TestDays:   7,
		TopoCfg:    topology.DefaultGenConfig(seed),
		TrafficCfg: traffic.DefaultConfig(seed + 10),
		SimCfg:     netsim.DefaultConfig(seed + 20),
	}
	cfg.SimCfg.HorizonHours = wan.Hour((cfg.TrainDays + cfg.TestDays) * 24)
	return cfg
}

// SmallEnvConfig is a scaled-down environment for unit tests.
func SmallEnvConfig(seed int64) EnvConfig {
	cfg := EnvConfig{
		Seed:       seed,
		TrainDays:  8,
		TestDays:   3,
		TopoCfg:    topology.TestGenConfig(seed),
		TrafficCfg: traffic.TestConfig(seed + 10),
		SimCfg:     netsim.DefaultConfig(seed + 20),
	}
	cfg.TrafficCfg.NFlows = 3000
	cfg.SimCfg.HorizonHours = wan.Hour((cfg.TrainDays + cfg.TestDays) * 24)
	// More outages per link-year so short test windows still contain
	// enough outage events to evaluate against.
	cfg.SimCfg.OutagesPerLinkYear = 10
	return cfg
}

// Env is a fully built experiment environment: the simulated WAN,
// aggregated telemetry, train/test windows, inferred outages, and the
// per-flow top training links.
type Env struct {
	Cfg      EnvConfig
	Sim      *netsim.Sim
	Metros   *geo.DB
	Graph    *topology.Graph
	Workload *traffic.Workload

	TrainFrom, TrainTo wan.Hour
	TestFrom, TestTo   wan.Hour
	Train, Test        []features.Record

	TrainOut, TestOut *dataset.OutageIndex
	TopTrain          map[features.FlowFeatures]wan.LinkID
}

// Build generates the topology and workload, simulates the full
// horizon, aggregates the telemetry through the pipeline, and
// prepares the train/test split exactly as §5.1.1 describes.
func Build(cfg EnvConfig) *Env {
	metros := geo.World()
	g := topology.Generate(cfg.TopoCfg, metros)
	w := traffic.Generate(cfg.TrafficCfg, g, metros)
	sim := netsim.New(cfg.SimCfg, g, metros, w)

	env := &Env{
		Cfg: cfg, Sim: sim, Metros: metros, Graph: g, Workload: w,
		TrainFrom: 0,
		TrainTo:   wan.Hour(cfg.TrainDays * 24),
		TestFrom:  wan.Hour(cfg.TrainDays * 24),
		TestTo:    wan.Hour((cfg.TrainDays + cfg.TestDays) * 24),
	}
	agg := pipeline.NewAggregator(sim.GeoIP(), sim.DstMetadata)
	sim.Run(netsim.RunOptions{From: env.TrainFrom, To: env.TestTo, Sink: agg})
	all := agg.Records()
	env.SplitAt(all, env.TrainTo)
	return env
}

// SplitAt (re)derives the train/test state from aggregated records
// with the boundary at hour split. It is exposed so the appendix
// experiments (varying training-window lengths, sliding windows) can
// re-slice one simulated horizon many times without re-simulating.
func (e *Env) SplitAt(all []features.Record, split wan.Hour) {
	e.TrainTo, e.TestFrom = split, split
	e.Train = dataset.Window(all, e.TrainFrom, e.TrainTo)
	e.Test = dataset.Window(all, e.TestFrom, e.TestTo)
	opts := dataset.DefaultInferOptions()
	e.TrainOut = dataset.NewOutageIndex(dataset.InferOutages(e.Train, e.TrainFrom, e.TrainTo, opts))
	e.TestOut = dataset.NewOutageIndex(dataset.InferOutages(e.Test, e.TestFrom, e.TestTo, opts))
	e.TopTrain = dataset.TopLinks(e.Train)
}

// Records re-aggregates by running the simulator over [from, to);
// used by appendix experiments that need horizons beyond the standard
// split. The simulator's state (drift, outages) is deterministic in
// the hour, so re-running different windows is consistent.
func (e *Env) Records(from, to wan.Hour) []features.Record {
	agg := pipeline.NewAggregator(e.Sim.GeoIP(), e.Sim.DstMetadata)
	e.Sim.Run(netsim.RunOptions{From: from, To: to, Sink: agg})
	return agg.Records()
}

// Hist trains a Historical model for the feature set on the training
// window.
func (e *Env) Hist(set features.Set) *core.Historical {
	return core.TrainHistorical(set, e.Train, core.DefaultHistOpts())
}

// StandardModels trains the Table 2 model set on the training window:
// Hist_A, Hist_AP, Hist_AL, Hist_AL+G, Hist_AP/AL/A, Hist_AL/AP/A.
func (e *Env) StandardModels() []core.Predictor {
	hA := e.Hist(features.SetA)
	hAP := e.Hist(features.SetAP)
	hAL := e.Hist(features.SetAL)
	return []core.Predictor{
		hA, hAP, hAL,
		core.NewGeoCompletion(hAL, e.Sim, e.Metros),
		core.NewEnsemble(hAP, hAL, hA),
		core.NewEnsemble(hAL, hAP, hA),
	}
}

// Oracle builds the restricted oracle for a feature set from the
// testing records.
func (e *Env) Oracle(set features.Set) *core.Oracle {
	return core.NewOracle(set, e.Test)
}

// TestExclude is the availability prior for the test window: a link
// is excluded while telemetry says it was down.
func (e *Env) TestExclude(l wan.LinkID, h wan.Hour) bool { return e.TestOut.Down(l, h) }
