// Package eval implements TIPSY's evaluation methodology (§5 of the
// paper): the byte-weighted top-k prediction accuracy metric, the
// train/test environment builder over the simulated WAN, and one
// harness per table and figure of the paper's evaluation.
package eval

import (
	"sort"

	"tipsy/internal/core"
	"tipsy/internal/features"
	"tipsy/internal/wan"
)

// Group is one evaluation unit: a flow aggregate with its actual
// per-link byte distribution over the selected hours.
type Group struct {
	Flow  features.FlowFeatures
	Hour  wan.Hour // earliest selected hour (informational)
	Links map[wan.LinkID]float64
	Total float64
	hours []wan.Hour
}

// Options controls an accuracy computation.
type Options struct {
	// Ks are the top-k values to report; 0 means unrestricted.
	Ks []int
	// Exclude marks links unavailable at an hour — the prior the
	// paper gives models during outage evaluation. A link is excluded
	// from a flow's prediction when it is down for the majority of
	// the flow's selected hours.
	Exclude func(l wan.LinkID, h wan.Hour) bool
	// Select restricts which flow-hours count, e.g. "only hours when
	// the flow's top trained link was down". Nil selects everything.
	Select func(f features.FlowFeatures, h wan.Hour) bool
	// GroupBy optionally coarsens the evaluation unit. The paper
	// evaluates each oracle at its own tuple granularity ("we
	// calculate the accuracy of the oracle for each of the three
	// definitions of tuples"), while trained models are scored at
	// full flow granularity. Nil means full granularity.
	GroupBy func(features.FlowFeatures) features.FlowFeatures
}

// BuildGroups buckets records into evaluation units under the given
// options, in deterministic order.
func BuildGroups(recs []features.Record, opts Options) []Group {
	byFlow := make(map[features.FlowFeatures]*Group)
	var order []features.FlowFeatures
	hourSeen := make(map[features.FlowFeatures]map[wan.Hour]bool)
	for _, r := range recs {
		if opts.Select != nil && !opts.Select(r.Flow, r.Hour) {
			continue
		}
		key := r.Flow
		if opts.GroupBy != nil {
			key = opts.GroupBy(r.Flow)
		}
		g := byFlow[key]
		if g == nil {
			g = &Group{Flow: key, Hour: r.Hour, Links: make(map[wan.LinkID]float64, 2)}
			byFlow[key] = g
			hourSeen[key] = make(map[wan.Hour]bool, 8)
			order = append(order, key)
		}
		g.Links[r.Link] += r.Bytes
		g.Total += r.Bytes
		if r.Hour < g.Hour {
			g.Hour = r.Hour
		}
		hourSeen[key][r.Hour] = true
	}
	sort.Slice(order, func(i, j int) bool { return lessFlow(order[i], order[j]) })
	out := make([]Group, len(order))
	for i, key := range order {
		g := byFlow[key]
		for h := range hourSeen[key] {
			g.hours = append(g.hours, h)
		}
		sort.Slice(g.hours, func(a, b int) bool { return g.hours[a] < g.hours[b] })
		out[i] = *g
	}
	return out
}

// GroupByFlowHour buckets records into per-(flow, hour) groups; the
// risk analysis uses this finer unit.
func GroupByFlowHour(recs []features.Record) []Group {
	type key struct {
		flow features.FlowFeatures
		hour wan.Hour
	}
	byKey := make(map[key]*Group)
	var order []key
	for _, r := range recs {
		k := key{r.Flow, r.Hour}
		g := byKey[k]
		if g == nil {
			g = &Group{Flow: r.Flow, Hour: r.Hour, Links: make(map[wan.LinkID]float64, 2)}
			byKey[k] = g
			order = append(order, k)
		}
		g.Links[r.Link] += r.Bytes
		g.Total += r.Bytes
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.hour != b.hour {
			return a.hour < b.hour
		}
		return lessFlow(a.flow, b.flow)
	})
	out := make([]Group, len(order))
	for i, k := range order {
		out[i] = *byKey[k]
	}
	return out
}

func lessFlow(a, b features.FlowFeatures) bool {
	if a.AS != b.AS {
		return a.AS < b.AS
	}
	if a.Prefix != b.Prefix {
		return a.Prefix < b.Prefix
	}
	if a.Loc != b.Loc {
		return a.Loc < b.Loc
	}
	if a.Region != b.Region {
		return a.Region < b.Region
	}
	return a.Type < b.Type
}

// Accuracy computes the paper's §5.1.2 metric over aggregated test
// records: for each flow aggregate the model predicts up to k links
// with byte fractions; the credited bytes are Σ min(predicted bytes,
// actual bytes) over the predicted links, and accuracy is total
// credited over total actual. To score 100% a model must name
// exactly the links that received traffic and the bytes each received
// — three correct guesses alone are not enough.
func Accuracy(model core.Predictor, recs []features.Record, opts Options) map[int]float64 {
	groups := BuildGroups(recs, opts)
	maxK := 0
	unrestricted := false
	for _, k := range opts.Ks {
		if k == 0 {
			unrestricted = true
		}
		if k > maxK {
			maxK = k
		}
	}
	credited := make(map[int]float64, len(opts.Ks))
	var total float64
	for gi := range groups {
		g := &groups[gi]
		total += g.Total
		q := core.Query{Flow: g.Flow}
		if !unrestricted {
			q.K = maxK
		}
		if opts.Exclude != nil {
			q.Exclude = majorityDown(opts.Exclude, g.hours)
		}
		preds := model.Predict(q)
		if len(preds) == 0 {
			continue
		}
		for _, k := range opts.Ks {
			credited[k] += credit(preds, k, g)
		}
	}
	out := make(map[int]float64, len(opts.Ks))
	for _, k := range opts.Ks {
		if total > 0 {
			out[k] = credited[k] / total
		}
	}
	return out
}

// majorityDown adapts an hourly exclusion to a flow aggregate: a link
// is unavailable for the aggregate when it is down in the majority of
// the aggregate's selected hours. Results are memoized per link.
func majorityDown(exclude func(wan.LinkID, wan.Hour) bool, hours []wan.Hour) func(wan.LinkID) bool {
	memo := make(map[wan.LinkID]bool, 4)
	return func(l wan.LinkID) bool {
		if v, ok := memo[l]; ok {
			return v
		}
		down := 0
		for _, h := range hours {
			if exclude(l, h) {
				down++
			}
		}
		v := down*2 > len(hours)
		memo[l] = v
		return v
	}
}

// credit scores one group at one k: the prediction list is truncated
// to k and the overlap with the actual byte distribution credited.
// Fractions are taken as the model stated them — a model that says
// "60% of this flow arrives on L1" earns at most 60% of the flow on
// L1 even when queried at k=1 — which keeps accuracy monotone in k.
func credit(preds []core.Prediction, k int, g *Group) float64 {
	return CreditBytes(preds, k, g.Links, g.Total)
}

// CreditBytes is the §5.1.2 credit computation shared by this offline
// harness and the online quality monitor: given a prediction list, a
// top-k cutoff, and the actual per-link byte distribution of the
// group (with its byte total), it returns the credited bytes
// Σ min(predicted bytes, actual bytes) over the first k predictions.
// Accuracy is credited bytes over total actual bytes; keeping this as
// the single implementation guarantees offline and online accuracy
// agree by construction.
func CreditBytes(preds []core.Prediction, k int, links map[wan.LinkID]float64, total float64) float64 {
	n := len(preds)
	if k > 0 && n > k {
		n = k
	}
	var c float64
	for _, p := range preds[:n] {
		c += minF(p.Frac*total, links[p.Link])
	}
	return c
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
