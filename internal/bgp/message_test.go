package bgp

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestOpenRoundTrip(t *testing.T) {
	o := &Open{Version: 4, AS: 65001, HoldTime: 90, BGPID: V4(10, 0, 0, 1), OptParam: []byte{1, 2, 3}}
	msg := o.Marshal()
	got, err := Unmarshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	back, ok := got.(*Open)
	if !ok {
		t.Fatalf("decoded %T, want *Open", got)
	}
	if !reflect.DeepEqual(o, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, o)
	}
}

func TestOpenASTrans(t *testing.T) {
	o := &Open{Version: 4, AS: 4200000000, HoldTime: 180, BGPID: 1}
	got, err := Unmarshal(o.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back := got.(*Open); back.AS != 23456 {
		t.Errorf("4-octet ASN should encode as AS_TRANS in the 2-octet field, got %d", back.AS)
	}
}

func TestKeepaliveRoundTrip(t *testing.T) {
	msg := Keepalive{}.Marshal()
	if len(msg) != HeaderLen {
		t.Fatalf("KEEPALIVE is %d bytes, want %d", len(msg), HeaderLen)
	}
	got, err := Unmarshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.(Keepalive); !ok {
		t.Fatalf("decoded %T, want Keepalive", got)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := &Notification{Code: 6, Subcode: 2, Data: []byte("admin shutdown")}
	got, err := Unmarshal(n.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, n) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func sampleUpdate() *Update {
	return &Update{
		Withdrawn: []Prefix{MakePrefix(V4(100, 64, 0, 0), 10)},
		Attrs: PathAttrs{
			Origin:       OriginIGP,
			ASPath:       []ASN{65001, 4200000123, 174},
			NextHop:      V4(192, 0, 2, 1),
			MED:          20,
			HasMED:       true,
			LocalPref:    300,
			HasLocalPref: true,
			Communities:  []uint32{0xfde80001, 0x00010002},
		},
		NLRI: []Prefix{
			MakePrefix(V4(198, 51, 100, 0), 24),
			MakePrefix(V4(203, 0, 0, 0), 8),
		},
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := sampleUpdate()
	msg := u.Marshal()
	got, err := Unmarshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	back, ok := got.(*Update)
	if !ok {
		t.Fatalf("decoded %T, want *Update", got)
	}
	if !reflect.DeepEqual(u, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, u)
	}
}

func TestWithdrawOnlyUpdate(t *testing.T) {
	u := &Update{Withdrawn: []Prefix{MakePrefix(V4(10, 0, 0, 0), 10), MakePrefix(V4(10, 64, 0, 0), 10)}}
	got, err := Unmarshal(u.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	back := got.(*Update)
	if len(back.NLRI) != 0 || len(back.Withdrawn) != 2 {
		t.Errorf("want pure withdrawal, got %+v", back)
	}
	// A withdraw-only UPDATE carries no path attributes at all.
	if back.Attrs.ASPath != nil {
		t.Error("withdraw-only UPDATE should have no attributes")
	}
}

func TestUnmarshalRejectsBadMarker(t *testing.T) {
	msg := Keepalive{}.Marshal()
	msg[3] = 0
	if _, err := Unmarshal(msg); err != ErrBadMarker {
		t.Errorf("err = %v, want ErrBadMarker", err)
	}
}

func TestUnmarshalRejectsBadLength(t *testing.T) {
	msg := Keepalive{}.Marshal()
	msg[16], msg[17] = 0, 5 // claims 5 bytes, below the header minimum
	if _, err := Unmarshal(msg); err != ErrBadLength {
		t.Errorf("err = %v, want ErrBadLength", err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	msg := sampleUpdate().Marshal()
	for cut := 1; cut < len(msg); cut += 7 {
		if _, err := Unmarshal(msg[:cut]); err == nil {
			t.Errorf("truncation at %d bytes decoded without error", cut)
		}
	}
}

func TestUpdateRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		u := &Update{}
		for i, n := 0, rng.Intn(4); i < n; i++ {
			u.Withdrawn = append(u.Withdrawn, MakePrefix(rng.Uint32(), uint8(rng.Intn(33))))
		}
		for i, n := 0, rng.Intn(5); i < n; i++ {
			u.NLRI = append(u.NLRI, MakePrefix(rng.Uint32(), uint8(rng.Intn(33))))
		}
		if len(u.NLRI) > 0 {
			u.Attrs = PathAttrs{
				Origin:  uint8(rng.Intn(3)),
				NextHop: rng.Uint32(),
			}
			for i, n := 0, 1+rng.Intn(6); i < n; i++ {
				u.Attrs.ASPath = append(u.Attrs.ASPath, ASN(rng.Uint32()))
			}
		}
		got, err := Unmarshal(u.Marshal())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, u)
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReadMessage(t *testing.T) {
	var stream bytes.Buffer
	u := sampleUpdate()
	stream.Write(u.Marshal())
	stream.Write(Keepalive{}.Marshal())

	first, err := ReadMessage(&stream)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(first)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, u) {
		t.Error("first framed message mismatch")
	}
	second, err := ReadMessage(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mustUnmarshal(t, second).(Keepalive); !ok {
		t.Error("second framed message should be KEEPALIVE")
	}
}

func mustUnmarshal(t *testing.T, buf []byte) any {
	t.Helper()
	m, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWireLen(t *testing.T) {
	msg := sampleUpdate().Marshal()
	if got := WireLen(msg); got != len(msg) {
		t.Errorf("WireLen = %d, want %d", got, len(msg))
	}
	if got := WireLen(msg[:10]); got != 0 {
		t.Errorf("WireLen of short buffer = %d, want 0", got)
	}
}

func TestExtendedLengthAttribute(t *testing.T) {
	// An AS path long enough to force the extended-length attribute flag.
	u := &Update{
		Attrs: PathAttrs{Origin: OriginIGP, NextHop: 1},
		NLRI:  []Prefix{MakePrefix(V4(10, 0, 0, 0), 8)},
	}
	for i := 0; i < 100; i++ {
		u.Attrs.ASPath = append(u.Attrs.ASPath, ASN(i+1))
	}
	got, err := Unmarshal(u.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, u) {
		t.Error("extended-length attribute round trip mismatch")
	}
}
