// Package bgp implements the subset of the Border Gateway Protocol
// (RFC 4271) that TIPSY's substrate needs: the message wire format
// (OPEN, UPDATE, KEEPALIVE, NOTIFICATION), path attributes, prefix
// encoding (NLRI), per-peer Adj-RIB-In bookkeeping, and the BGP
// decision process with Gao-Rexford business-relationship preferences
// and a hot-potato tie-break hook.
//
// The package is self-contained and uses four-octet AS numbers
// throughout (RFC 6793 behaviour, without the AS_TRANS transition
// machinery, since both ends of every simulated session are 4-octet
// capable).
package bgp

import (
	"errors"
	"fmt"
)

// ASN is a four-octet autonomous system number.
type ASN uint32

// String renders the ASN in the canonical asplain form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Prefix is an IPv4 prefix in CIDR form. Addr holds the network
// address in host byte order with all bits below Len zeroed.
type Prefix struct {
	Addr uint32
	Len  uint8
}

var (
	errPrefixLen   = errors.New("bgp: prefix length exceeds 32")
	errPrefixShort = errors.New("bgp: truncated prefix encoding")
)

// Mask returns the network mask implied by the prefix length.
func Mask(length uint8) uint32 {
	if length == 0 {
		return 0
	}
	return ^uint32(0) << (32 - length)
}

// MakePrefix builds a Prefix from an address and length, zeroing the
// host bits so that two spellings of the same network compare equal.
func MakePrefix(addr uint32, length uint8) Prefix {
	return Prefix{Addr: addr & Mask(length), Len: length}
}

// V4 packs four dotted-quad octets into a host-order IPv4 address.
func V4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip uint32) bool {
	return ip&Mask(p.Len) == p.Addr
}

// ContainsPrefix reports whether q is equal to or more specific than p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Len >= p.Len && p.Contains(q.Addr)
}

// Slash24 returns the enclosing /24 network address of ip. TIPSY uses
// the /24 of the source address as its prefix feature (§3.2 of the
// paper): /24 is the widely accepted limit on routable prefix length.
func Slash24(ip uint32) uint32 { return ip &^ 0xff }

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		byte(p.Addr>>24), byte(p.Addr>>16), byte(p.Addr>>8), byte(p.Addr), p.Len)
}

// FormatIP renders a host-order IPv4 address in dotted-quad form.
func FormatIP(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// appendPrefix appends the RFC 4271 §4.3 NLRI encoding of p:
// a one-octet length in bits followed by the minimum number of octets
// needed to hold that many bits.
func appendPrefix(dst []byte, p Prefix) []byte {
	dst = append(dst, p.Len)
	n := (int(p.Len) + 7) / 8
	for i := 0; i < n; i++ {
		dst = append(dst, byte(p.Addr>>(24-8*i)))
	}
	return dst
}

// decodePrefix decodes one NLRI-encoded prefix from buf, returning the
// prefix and the number of bytes consumed.
func decodePrefix(buf []byte) (Prefix, int, error) {
	if len(buf) < 1 {
		return Prefix{}, 0, errPrefixShort
	}
	length := buf[0]
	if length > 32 {
		return Prefix{}, 0, errPrefixLen
	}
	n := (int(length) + 7) / 8
	if len(buf) < 1+n {
		return Prefix{}, 0, errPrefixShort
	}
	var addr uint32
	for i := 0; i < n; i++ {
		addr |= uint32(buf[1+i]) << (24 - 8*i)
	}
	return MakePrefix(addr, length), 1 + n, nil
}

// prefixWireLen returns the encoded size of p in bytes.
func prefixWireLen(p Prefix) int { return 1 + (int(p.Len)+7)/8 }
