package bgp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Session is a minimal BGP speaker over a byte stream: OPEN exchange,
// KEEPALIVE heartbeats, and framed UPDATE/NOTIFICATION transport. It
// implements just enough of the RFC 4271 FSM (Idle → OpenSent →
// OpenConfirm → Established) for the substrate's injection path — the
// congestion mitigation system speaks real BGP to the edge routers
// when it injects withdrawals — and for tests to exercise the wire
// format over actual sockets.
type Session struct {
	conn     net.Conn
	localAS  ASN
	localID  uint32
	holdTime uint16

	mu sync.Mutex
	//tipsy:guardedby mu
	peerOpen *Open
	//tipsy:guardedby mu
	state SessionState
	//tipsy:guardedby mu
	closed bool
}

// SessionState is the subset of RFC 4271 §8 states the speaker moves
// through.
type SessionState uint8

const (
	// StateIdle is the initial state.
	StateIdle SessionState = iota
	// StateOpenSent means our OPEN is out, theirs is pending.
	StateOpenSent
	// StateEstablished means OPENs and confirming KEEPALIVEs crossed.
	StateEstablished
	// StateClosed means the session is over.
	StateClosed
)

// String implements fmt.Stringer.
func (s SessionState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateOpenSent:
		return "open-sent"
	case StateEstablished:
		return "established"
	case StateClosed:
		return "closed"
	}
	return "unknown"
}

// ErrNotEstablished is returned when sending on a session that has
// not completed the handshake.
var ErrNotEstablished = errors.New("bgp: session not established")

// NewSession wraps a connection. Call Establish to run the handshake;
// both ends may call it concurrently (the exchange is symmetric).
func NewSession(conn net.Conn, localAS ASN, localID uint32, holdTime uint16) *Session {
	return &Session{conn: conn, localAS: localAS, localID: localID, holdTime: holdTime}
}

// Establish performs the OPEN/KEEPALIVE handshake and moves the
// session to Established.
func (s *Session) Establish() error {
	s.mu.Lock()
	if st := s.state; st != StateIdle {
		s.mu.Unlock()
		return fmt.Errorf("bgp: establish from state %v", st)
	}
	s.state = StateOpenSent
	s.mu.Unlock()

	// Both ends write their OPEN and confirming KEEPALIVE while
	// reading the peer's: writes run on a separate goroutine so the
	// symmetric exchange cannot deadlock on an unbuffered transport.
	open := &Open{Version: 4, AS: s.localAS, HoldTime: s.holdTime, BGPID: s.localID}
	wrote := make(chan error, 1)
	go func() {
		if _, err := s.conn.Write(open.Marshal()); err != nil {
			wrote <- err
			return
		}
		_, err := s.conn.Write(Keepalive{}.Marshal())
		wrote <- err
	}()
	msg, err := s.recv()
	if err != nil {
		return s.fail(err)
	}
	peerOpen, ok := msg.(*Open)
	if !ok {
		return s.fail(fmt.Errorf("bgp: expected OPEN, got %T", msg))
	}
	if peerOpen.Version != 4 {
		<-wrote
		s.Notify(2, 1, nil) // OPEN Message Error / Unsupported Version
		return s.fail(fmt.Errorf("bgp: peer version %d", peerOpen.Version))
	}
	// Wait for the peer's confirming KEEPALIVE.
	msg, err = s.recv()
	if err != nil {
		return s.fail(err)
	}
	if _, ok := msg.(Keepalive); !ok {
		return s.fail(fmt.Errorf("bgp: expected KEEPALIVE, got %T", msg))
	}
	if err := <-wrote; err != nil {
		return s.fail(err)
	}
	s.mu.Lock()
	s.peerOpen = peerOpen
	s.state = StateEstablished
	s.mu.Unlock()
	return nil
}

func (s *Session) fail(err error) error {
	s.mu.Lock()
	s.state = StateClosed
	s.mu.Unlock()
	return err
}

// recv reads and decodes one framed message.
func (s *Session) recv() (any, error) {
	raw, err := ReadMessage(s.conn)
	if err != nil {
		return nil, err
	}
	return Unmarshal(raw)
}

// State reports the session state.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// PeerOpen returns the OPEN received from the peer, once established.
func (s *Session) PeerOpen() *Open {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peerOpen
}

// SendUpdate transmits an UPDATE on an established session.
func (s *Session) SendUpdate(u *Update) error {
	if s.State() != StateEstablished {
		return ErrNotEstablished
	}
	_, err := s.conn.Write(u.Marshal())
	return err
}

// SendKeepalive transmits a KEEPALIVE heartbeat.
func (s *Session) SendKeepalive() error {
	if s.State() != StateEstablished {
		return ErrNotEstablished
	}
	_, err := s.conn.Write(Keepalive{}.Marshal())
	return err
}

// Notify sends a NOTIFICATION; per RFC 4271 the session closes after.
func (s *Session) Notify(code, subcode uint8, data []byte) error {
	_, err := s.conn.Write((&Notification{Code: code, Subcode: subcode, Data: data}).Marshal())
	s.Close()
	return err
}

// Recv reads the next message on an established session: *Update,
// Keepalive, or *Notification (after which the session is closed).
// SetDeadline on the underlying connection controls blocking.
func (s *Session) Recv() (any, error) {
	if s.State() != StateEstablished {
		return nil, ErrNotEstablished
	}
	msg, err := s.recv()
	if err != nil {
		if errors.Is(err, io.EOF) {
			s.Close()
		}
		return nil, err
	}
	if n, ok := msg.(*Notification); ok {
		s.Close()
		return n, nil
	}
	return msg, nil
}

// RunKeepalives sends heartbeats every interval until the session
// closes; run it in its own goroutine.
func (s *Session) RunKeepalives(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for range t.C {
		if s.SendKeepalive() != nil {
			return
		}
	}
}

// Close tears the session down.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.state = StateClosed
	s.mu.Unlock()
	return s.conn.Close()
}
