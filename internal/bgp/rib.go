package bgp

import (
	"sort"
)

// Relationship classifies how a route was learned, following the
// Gao-Rexford model: routes from customers are preferred over routes
// from peers, which are preferred over routes from providers, because
// customer routes earn revenue while provider routes cost it.
type Relationship uint8

const (
	// RelCustomer marks a route learned from a customer AS.
	RelCustomer Relationship = iota
	// RelPeer marks a route learned from a settlement-free peer.
	RelPeer
	// RelProvider marks a route learned from a transit provider.
	RelProvider
	// RelOrigin marks a locally originated route.
	RelOrigin
)

// String implements fmt.Stringer.
func (r Relationship) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	case RelOrigin:
		return "origin"
	}
	return "unknown"
}

// LocalPref returns the conventional LOCAL_PREF encoding of the
// relationship preference (higher is better).
func (r Relationship) LocalPref() uint32 {
	switch r {
	case RelOrigin:
		return 400
	case RelCustomer:
		return 300
	case RelPeer:
		return 200
	default:
		return 100
	}
}

// ExportTo implements the Gao-Rexford export rule: a route is exported
// to a neighbor of class to iff the route was learned from a customer
// (or originated locally), or the neighbor is a customer.
func (r Relationship) ExportTo(to Relationship) bool {
	return r == RelCustomer || r == RelOrigin || to == RelCustomer
}

// Route is a path to a destination prefix as held in a RIB.
type Route struct {
	Prefix  Prefix
	Peer    ASN   // neighbor the route was learned from (0 for origin)
	ASPath  []ASN // path excluding the local AS
	NextHop uint32
	MED     uint32
	Rel     Relationship
	// IGPCost is the hot-potato input: the intradomain cost from the
	// deciding router to the route's exit point. In the substrate it is
	// derived from great-circle metro distance.
	IGPCost uint32
	// TieBreak is the final deterministic discriminator (lowest wins);
	// it stands in for the neighbor BGP identifier.
	TieBreak uint32
}

// Better reports whether a should be preferred over b by the BGP
// decision process used in the substrate:
//
//  1. higher LOCAL_PREF (relationship class)
//  2. shorter AS_PATH
//  3. lower MED (compared regardless of neighbor, as many large
//     networks configure always-compare-med)
//  4. lower IGP cost to the exit (hot potato)
//  5. lowest tie-break identifier
func (a *Route) Better(b *Route) bool {
	if a.Rel.LocalPref() != b.Rel.LocalPref() {
		return a.Rel.LocalPref() > b.Rel.LocalPref()
	}
	if len(a.ASPath) != len(b.ASPath) {
		return len(a.ASPath) < len(b.ASPath)
	}
	if a.MED != b.MED {
		return a.MED < b.MED
	}
	if a.IGPCost != b.IGPCost {
		return a.IGPCost < b.IGPCost
	}
	return a.TieBreak < b.TieBreak
}

// HasLoop reports whether as appears in the route's AS path, which
// would make importing the route a forwarding loop.
func (r *Route) HasLoop(as ASN) bool {
	for _, hop := range r.ASPath {
		if hop == as {
			return true
		}
	}
	return false
}

// RIB is a routing information base holding, per destination prefix,
// every candidate route (the union of Adj-RIB-In across peers) and
// exposing best-path selection. The zero value is ready to use.
type RIB struct {
	routes map[Prefix][]*Route
}

// Add installs or replaces the route from (peer, prefix). A RIB keeps
// at most one route per (prefix, peer, next-hop) triple, mirroring the
// per-session Adj-RIB-In of RFC 4271 §3.2 with multi-session peers
// distinguished by next hop.
func (r *RIB) Add(rt *Route) {
	if r.routes == nil {
		r.routes = make(map[Prefix][]*Route)
	}
	list := r.routes[rt.Prefix]
	for i, old := range list {
		if old.Peer == rt.Peer && old.NextHop == rt.NextHop {
			list[i] = rt
			return
		}
	}
	r.routes[rt.Prefix] = append(list, rt)
}

// Withdraw removes the route for prefix learned from (peer, nextHop)
// and reports whether a route was removed.
func (r *RIB) Withdraw(prefix Prefix, peer ASN, nextHop uint32) bool {
	list := r.routes[prefix]
	for i, rt := range list {
		if rt.Peer == peer && rt.NextHop == nextHop {
			list[i] = list[len(list)-1]
			r.routes[prefix] = list[:len(list)-1]
			if len(r.routes[prefix]) == 0 {
				delete(r.routes, prefix)
			}
			return true
		}
	}
	return false
}

// WithdrawPeer removes every route learned from peer (session reset)
// and returns the affected prefixes.
func (r *RIB) WithdrawPeer(peer ASN) []Prefix {
	var affected []Prefix
	for p, list := range r.routes {
		kept := list[:0]
		for _, rt := range list {
			if rt.Peer != peer {
				kept = append(kept, rt)
			}
		}
		if len(kept) != len(list) {
			affected = append(affected, p)
		}
		if len(kept) == 0 {
			delete(r.routes, p)
		} else {
			r.routes[p] = kept
		}
	}
	return affected
}

// Best returns the best route for prefix, or nil if none is known.
func (r *RIB) Best(prefix Prefix) *Route {
	var best *Route
	for _, rt := range r.routes[prefix] {
		if best == nil || rt.Better(best) {
			best = rt
		}
	}
	return best
}

// Candidates returns all routes for prefix ordered best-first. The
// returned slice is freshly allocated.
func (r *RIB) Candidates(prefix Prefix) []*Route {
	list := r.routes[prefix]
	out := make([]*Route, len(list))
	copy(out, list)
	sort.Slice(out, func(i, j int) bool { return out[i].Better(out[j]) })
	return out
}

// Lookup performs longest-prefix-match for ip over every installed
// prefix and returns the best route of the most specific covering
// prefix, or nil.
func (r *RIB) Lookup(ip uint32) *Route {
	var bestPfx Prefix
	found := false
	for p := range r.routes {
		if p.Contains(ip) && (!found || p.Len > bestPfx.Len) {
			bestPfx, found = p, true
		}
	}
	if !found {
		return nil
	}
	return r.Best(bestPfx)
}

// Prefixes returns every prefix with at least one route, in
// deterministic (sorted) order.
func (r *RIB) Prefixes() []Prefix {
	out := make([]Prefix, 0, len(r.routes))
	for p := range r.routes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Len < out[j].Len
	})
	return out
}

// Len reports the number of prefixes with at least one route.
func (r *RIB) Len() int { return len(r.routes) }
