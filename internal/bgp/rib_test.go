package bgp

import (
	"math/rand"
	"testing"
)

func rt(prefix Prefix, peer ASN, rel Relationship, pathLen int, igp, tie uint32) *Route {
	path := make([]ASN, pathLen)
	for i := range path {
		path[i] = ASN(1000 + i)
	}
	return &Route{Prefix: prefix, Peer: peer, NextHop: uint32(peer), ASPath: path, Rel: rel, IGPCost: igp, TieBreak: tie}
}

var pfx = MakePrefix(V4(100, 0, 0, 0), 10)

func TestDecisionRelationshipDominates(t *testing.T) {
	cust := rt(pfx, 1, RelCustomer, 5, 9, 9)
	peer := rt(pfx, 2, RelPeer, 1, 0, 0)
	prov := rt(pfx, 3, RelProvider, 1, 0, 0)
	if !cust.Better(peer) || !cust.Better(prov) || !peer.Better(prov) {
		t.Error("customer > peer > provider ordering violated")
	}
}

func TestDecisionPathLength(t *testing.T) {
	short := rt(pfx, 1, RelPeer, 2, 9, 9)
	long := rt(pfx, 2, RelPeer, 3, 0, 0)
	if !short.Better(long) {
		t.Error("shorter AS path should win within a relationship class")
	}
}

func TestDecisionMED(t *testing.T) {
	low := rt(pfx, 1, RelPeer, 2, 9, 9)
	low.MED = 10
	high := rt(pfx, 2, RelPeer, 2, 0, 0)
	high.MED = 20
	if !low.Better(high) {
		t.Error("lower MED should win")
	}
}

func TestDecisionHotPotato(t *testing.T) {
	near := rt(pfx, 1, RelPeer, 2, 100, 9)
	far := rt(pfx, 2, RelPeer, 2, 5000, 0)
	if !near.Better(far) {
		t.Error("lower IGP cost (hot potato) should win")
	}
}

func TestDecisionTieBreak(t *testing.T) {
	a := rt(pfx, 1, RelPeer, 2, 100, 1)
	b := rt(pfx, 2, RelPeer, 2, 100, 2)
	if !a.Better(b) || b.Better(a) {
		t.Error("tie break must be a strict total order")
	}
}

func TestDecisionTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	routes := make([]*Route, 50)
	for i := range routes {
		routes[i] = rt(pfx, ASN(i), Relationship(rng.Intn(3)), rng.Intn(4), uint32(rng.Intn(3)), uint32(i))
	}
	// Antisymmetry: for distinct tie-breaks exactly one direction wins.
	for i, a := range routes {
		for j, b := range routes {
			if i == j {
				continue
			}
			if a.Better(b) == b.Better(a) {
				t.Fatalf("Better not antisymmetric for %d,%d", i, j)
			}
		}
	}
	// Transitivity spot check.
	for n := 0; n < 2000; n++ {
		a, b, c := routes[rng.Intn(50)], routes[rng.Intn(50)], routes[rng.Intn(50)]
		if a.Better(b) && b.Better(c) && !a.Better(c) {
			t.Fatal("Better not transitive")
		}
	}
}

func TestExportRule(t *testing.T) {
	cases := []struct {
		from, to Relationship
		want     bool
	}{
		{RelCustomer, RelProvider, true}, // customer routes go everywhere
		{RelCustomer, RelPeer, true},
		{RelCustomer, RelCustomer, true},
		{RelOrigin, RelPeer, true},   // own routes go everywhere
		{RelPeer, RelCustomer, true}, // everything goes to customers
		{RelPeer, RelPeer, false},    // no peer-to-peer transit
		{RelPeer, RelProvider, false},
		{RelProvider, RelPeer, false}, // no provider-to-peer transit
		{RelProvider, RelProvider, false},
		{RelProvider, RelCustomer, true},
	}
	for _, c := range cases {
		if got := c.from.ExportTo(c.to); got != c.want {
			t.Errorf("ExportTo(%v -> %v) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestRIBAddWithdraw(t *testing.T) {
	var rib RIB
	a := rt(pfx, 1, RelPeer, 2, 0, 1)
	b := rt(pfx, 2, RelCustomer, 4, 0, 2)
	rib.Add(a)
	rib.Add(b)
	if rib.Len() != 1 {
		t.Fatalf("Len = %d, want 1 prefix", rib.Len())
	}
	if best := rib.Best(pfx); best != b {
		t.Errorf("best route should be the customer route, got %+v", best)
	}
	if !rib.Withdraw(pfx, 2, uint32(2)) {
		t.Fatal("withdraw of existing route failed")
	}
	if best := rib.Best(pfx); best != a {
		t.Error("after withdrawal the peer route should be best")
	}
	if rib.Withdraw(pfx, 2, uint32(2)) {
		t.Error("double withdrawal should report false")
	}
	rib.Withdraw(pfx, 1, uint32(1))
	if rib.Best(pfx) != nil {
		t.Error("prefix with no routes should have nil best")
	}
	if rib.Len() != 0 {
		t.Error("empty prefix entry should be removed")
	}
}

func TestRIBReplaceSamePeer(t *testing.T) {
	var rib RIB
	rib.Add(rt(pfx, 1, RelPeer, 5, 0, 1))
	rib.Add(rt(pfx, 1, RelPeer, 2, 0, 1)) // implicit replace, same peer+nexthop
	if got := len(rib.Candidates(pfx)); got != 1 {
		t.Fatalf("same-session re-announcement should replace, have %d routes", got)
	}
	if got := rib.Best(pfx); len(got.ASPath) != 2 {
		t.Error("replacement did not take effect")
	}
}

func TestRIBCandidatesSorted(t *testing.T) {
	var rib RIB
	for i := 0; i < 10; i++ {
		rib.Add(rt(pfx, ASN(i+1), Relationship(i%3), i%4, uint32(i%2), uint32(i)))
	}
	cands := rib.Candidates(pfx)
	for i := 1; i < len(cands); i++ {
		if cands[i].Better(cands[i-1]) {
			t.Fatalf("candidates not sorted best-first at %d", i)
		}
	}
}

func TestRIBWithdrawPeer(t *testing.T) {
	var rib RIB
	p2 := MakePrefix(V4(200, 0, 0, 0), 8)
	rib.Add(rt(pfx, 1, RelPeer, 1, 0, 1))
	rib.Add(rt(p2, 1, RelPeer, 1, 0, 1))
	rib.Add(rt(p2, 2, RelPeer, 1, 0, 2))
	affected := rib.WithdrawPeer(1)
	if len(affected) != 2 {
		t.Fatalf("session reset should affect 2 prefixes, got %d", len(affected))
	}
	if rib.Best(pfx) != nil {
		t.Error("pfx should have lost its only route")
	}
	if rib.Best(p2) == nil {
		t.Error("p2 should retain the route from peer 2")
	}
}

func TestRIBLookupLongestMatch(t *testing.T) {
	var rib RIB
	wide := rt(MakePrefix(V4(10, 0, 0, 0), 8), 1, RelPeer, 1, 0, 1)
	narrow := rt(MakePrefix(V4(10, 9, 0, 0), 16), 2, RelPeer, 1, 0, 2)
	rib.Add(wide)
	rib.Add(narrow)
	if got := rib.Lookup(V4(10, 9, 1, 1)); got != narrow {
		t.Error("lookup should prefer the /16")
	}
	if got := rib.Lookup(V4(10, 200, 1, 1)); got != wide {
		t.Error("lookup should fall back to the /8")
	}
	if got := rib.Lookup(V4(11, 0, 0, 1)); got != nil {
		t.Error("lookup with no covering prefix should be nil")
	}
}

func TestRIBHasLoop(t *testing.T) {
	r := rt(pfx, 1, RelPeer, 3, 0, 1)
	if !r.HasLoop(1001) {
		t.Error("1001 is on the path")
	}
	if r.HasLoop(9999) {
		t.Error("9999 is not on the path")
	}
}

func TestRIBPrefixesDeterministic(t *testing.T) {
	var rib RIB
	for i := 0; i < 20; i++ {
		rib.Add(rt(MakePrefix(uint32(i)<<24, 8), 1, RelPeer, 1, 0, 1))
	}
	a := rib.Prefixes()
	b := rib.Prefixes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Prefixes() ordering not deterministic")
		}
		if i > 0 && a[i].Addr < a[i-1].Addr {
			t.Fatal("Prefixes() not sorted")
		}
	}
}
