package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Message type codes, RFC 4271 §4.1.
const (
	TypeOpen         = 1
	TypeUpdate       = 2
	TypeNotification = 3
	TypeKeepalive    = 4
)

// Wire-format size limits, RFC 4271 §4.
const (
	HeaderLen     = 19
	MaxMessageLen = 4096
)

// Path attribute type codes, RFC 4271 §5 and RFC 1997.
const (
	AttrOrigin      = 1
	AttrASPath      = 2
	AttrNextHop     = 3
	AttrMED         = 4
	AttrLocalPref   = 5
	AttrCommunities = 8
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

// ORIGIN values.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// AS_PATH segment types.
const (
	ASSet      = 1
	ASSequence = 2
)

var (
	// ErrTruncated reports a message shorter than its framing claims.
	ErrTruncated = errors.New("bgp: truncated message")
	// ErrBadMarker reports a header whose 16-byte marker is not all ones.
	ErrBadMarker = errors.New("bgp: header marker is not all ones")
	// ErrBadLength reports a framing length outside [19, 4096].
	ErrBadLength = errors.New("bgp: message length out of range")
)

// Open is a BGP OPEN message (RFC 4271 §4.2). Optional parameters are
// carried opaquely; the simulated sessions negotiate nothing beyond
// 4-octet ASNs, which both ends assume.
type Open struct {
	Version  uint8
	AS       ASN // sender's ASN; also encoded in the My-AS field, clamped to AS_TRANS semantics omitted
	HoldTime uint16
	BGPID    uint32
	OptParam []byte
}

// Keepalive is a BGP KEEPALIVE message; it has no body.
type Keepalive struct{}

// Notification is a BGP NOTIFICATION message (RFC 4271 §4.5).
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Update is a BGP UPDATE message (RFC 4271 §4.3): withdrawn routes,
// path attributes, and announced NLRI.
type Update struct {
	Withdrawn []Prefix
	Attrs     PathAttrs
	NLRI      []Prefix
}

// PathAttrs is the decoded set of path attributes TIPSY's substrate
// uses. Presence flags disambiguate zero values.
type PathAttrs struct {
	Origin       uint8
	ASPath       []ASN // single AS_SEQUENCE; sets are not generated
	NextHop      uint32
	MED          uint32
	LocalPref    uint32
	Communities  []uint32
	HasMED       bool
	HasLocalPref bool
}

// appendHeader appends the 19-byte common header.
func appendHeader(dst []byte, msgType uint8, bodyLen int) []byte {
	for i := 0; i < 16; i++ {
		dst = append(dst, 0xff)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(HeaderLen+bodyLen))
	return append(dst, msgType)
}

// Marshal encodes the OPEN message including the common header.
func (o *Open) Marshal() []byte {
	body := make([]byte, 0, 10+len(o.OptParam))
	body = append(body, o.Version)
	myAS := uint16(23456) // AS_TRANS when the ASN does not fit in 2 octets
	if o.AS <= 0xffff {
		myAS = uint16(o.AS)
	}
	body = binary.BigEndian.AppendUint16(body, myAS)
	body = binary.BigEndian.AppendUint16(body, o.HoldTime)
	body = binary.BigEndian.AppendUint32(body, o.BGPID)
	body = append(body, byte(len(o.OptParam)))
	body = append(body, o.OptParam...)
	return append(appendHeader(nil, TypeOpen, len(body)), body...)
}

// Marshal encodes the KEEPALIVE message.
func (Keepalive) Marshal() []byte { return appendHeader(nil, TypeKeepalive, 0) }

// Marshal encodes the NOTIFICATION message.
func (n *Notification) Marshal() []byte {
	body := append([]byte{n.Code, n.Subcode}, n.Data...)
	return append(appendHeader(nil, TypeNotification, len(body)), body...)
}

// Marshal encodes the UPDATE message including the common header.
func (u *Update) Marshal() []byte {
	var withdrawn []byte
	for _, p := range u.Withdrawn {
		withdrawn = appendPrefix(withdrawn, p)
	}
	var attrs []byte
	if len(u.NLRI) > 0 {
		attrs = u.Attrs.marshal()
	}
	var nlri []byte
	for _, p := range u.NLRI {
		nlri = appendPrefix(nlri, p)
	}
	bodyLen := 2 + len(withdrawn) + 2 + len(attrs) + len(nlri)
	msg := appendHeader(make([]byte, 0, HeaderLen+bodyLen), TypeUpdate, bodyLen)
	msg = binary.BigEndian.AppendUint16(msg, uint16(len(withdrawn)))
	msg = append(msg, withdrawn...)
	msg = binary.BigEndian.AppendUint16(msg, uint16(len(attrs)))
	msg = append(msg, attrs...)
	return append(msg, nlri...)
}

// marshal encodes the path attributes in ascending type order.
func (a *PathAttrs) marshal() []byte {
	var out []byte
	appendAttr := func(typ uint8, val []byte) {
		flags := byte(flagTransitive)
		if typ == AttrMED {
			flags = flagOptional
		}
		if typ == AttrCommunities {
			flags = flagOptional | flagTransitive
		}
		if len(val) > 255 {
			out = append(out, flags|flagExtLen, typ)
			out = binary.BigEndian.AppendUint16(out, uint16(len(val)))
		} else {
			out = append(out, flags, typ, byte(len(val)))
		}
		out = append(out, val...)
	}
	appendAttr(AttrOrigin, []byte{a.Origin})
	path := make([]byte, 0, 2+4*len(a.ASPath))
	if len(a.ASPath) > 0 {
		path = append(path, ASSequence, byte(len(a.ASPath)))
		for _, as := range a.ASPath {
			path = binary.BigEndian.AppendUint32(path, uint32(as))
		}
	}
	appendAttr(AttrASPath, path)
	nh := binary.BigEndian.AppendUint32(nil, a.NextHop)
	appendAttr(AttrNextHop, nh)
	if a.HasMED {
		appendAttr(AttrMED, binary.BigEndian.AppendUint32(nil, a.MED))
	}
	if a.HasLocalPref {
		appendAttr(AttrLocalPref, binary.BigEndian.AppendUint32(nil, a.LocalPref))
	}
	if len(a.Communities) > 0 {
		val := make([]byte, 0, 4*len(a.Communities))
		for _, c := range a.Communities {
			val = binary.BigEndian.AppendUint32(val, c)
		}
		appendAttr(AttrCommunities, val)
	}
	return out
}

// parseAttrs decodes a path attribute block.
func parseAttrs(buf []byte) (PathAttrs, error) {
	var a PathAttrs
	for len(buf) > 0 {
		if len(buf) < 3 {
			return a, ErrTruncated
		}
		flags, typ := buf[0], buf[1]
		var alen, off int
		if flags&flagExtLen != 0 {
			if len(buf) < 4 {
				return a, ErrTruncated
			}
			alen = int(binary.BigEndian.Uint16(buf[2:4]))
			off = 4
		} else {
			alen = int(buf[2])
			off = 3
		}
		if len(buf) < off+alen {
			return a, ErrTruncated
		}
		val := buf[off : off+alen]
		switch typ {
		case AttrOrigin:
			if alen != 1 {
				return a, fmt.Errorf("bgp: ORIGIN length %d", alen)
			}
			a.Origin = val[0]
		case AttrASPath:
			for len(val) > 0 {
				if len(val) < 2 {
					return a, ErrTruncated
				}
				segType, count := val[0], int(val[1])
				if len(val) < 2+4*count {
					return a, ErrTruncated
				}
				for i := 0; i < count; i++ {
					as := ASN(binary.BigEndian.Uint32(val[2+4*i:]))
					if segType == ASSequence || segType == ASSet {
						a.ASPath = append(a.ASPath, as)
					}
				}
				val = val[2+4*count:]
			}
		case AttrNextHop:
			if alen != 4 {
				return a, fmt.Errorf("bgp: NEXT_HOP length %d", alen)
			}
			a.NextHop = binary.BigEndian.Uint32(val)
		case AttrMED:
			if alen != 4 {
				return a, fmt.Errorf("bgp: MED length %d", alen)
			}
			a.MED = binary.BigEndian.Uint32(val)
			a.HasMED = true
		case AttrLocalPref:
			if alen != 4 {
				return a, fmt.Errorf("bgp: LOCAL_PREF length %d", alen)
			}
			a.LocalPref = binary.BigEndian.Uint32(val)
			a.HasLocalPref = true
		case AttrCommunities:
			if alen%4 != 0 {
				return a, fmt.Errorf("bgp: COMMUNITIES length %d", alen)
			}
			for i := 0; i < alen; i += 4 {
				a.Communities = append(a.Communities, binary.BigEndian.Uint32(val[i:]))
			}
		default:
			// Unknown attributes are skipped; the substrate never
			// re-advertises messages it did not originate, so
			// transitive preservation does not apply.
		}
		buf = buf[off+alen:]
	}
	return a, nil
}

// Unmarshal decodes one complete BGP message (header included) and
// returns the typed message: *Open, *Update, *Notification, or
// Keepalive.
func Unmarshal(buf []byte) (any, error) {
	if len(buf) < HeaderLen {
		return nil, ErrTruncated
	}
	for i := 0; i < 16; i++ {
		if buf[i] != 0xff {
			return nil, ErrBadMarker
		}
	}
	length := int(binary.BigEndian.Uint16(buf[16:18]))
	if length < HeaderLen || length > MaxMessageLen {
		return nil, ErrBadLength
	}
	if len(buf) < length {
		return nil, ErrTruncated
	}
	body := buf[HeaderLen:length]
	switch buf[18] {
	case TypeOpen:
		if len(body) < 10 {
			return nil, ErrTruncated
		}
		o := &Open{
			Version:  body[0],
			AS:       ASN(binary.BigEndian.Uint16(body[1:3])),
			HoldTime: binary.BigEndian.Uint16(body[3:5]),
			BGPID:    binary.BigEndian.Uint32(body[5:9]),
		}
		optLen := int(body[9])
		if len(body) < 10+optLen {
			return nil, ErrTruncated
		}
		if optLen > 0 {
			o.OptParam = append([]byte(nil), body[10:10+optLen]...)
		}
		return o, nil
	case TypeKeepalive:
		if len(body) != 0 {
			return nil, fmt.Errorf("bgp: KEEPALIVE with %d body bytes", len(body))
		}
		return Keepalive{}, nil
	case TypeNotification:
		if len(body) < 2 {
			return nil, ErrTruncated
		}
		return &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
	case TypeUpdate:
		return unmarshalUpdate(body)
	default:
		return nil, fmt.Errorf("bgp: unknown message type %d", buf[18])
	}
}

func unmarshalUpdate(body []byte) (*Update, error) {
	if len(body) < 2 {
		return nil, ErrTruncated
	}
	u := &Update{}
	wlen := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	if len(body) < wlen {
		return nil, ErrTruncated
	}
	wd := body[:wlen]
	for len(wd) > 0 {
		p, n, err := decodePrefix(wd)
		if err != nil {
			return nil, err
		}
		u.Withdrawn = append(u.Withdrawn, p)
		wd = wd[n:]
	}
	body = body[wlen:]
	if len(body) < 2 {
		return nil, ErrTruncated
	}
	alen := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	if len(body) < alen {
		return nil, ErrTruncated
	}
	if alen > 0 {
		attrs, err := parseAttrs(body[:alen])
		if err != nil {
			return nil, err
		}
		u.Attrs = attrs
	}
	body = body[alen:]
	for len(body) > 0 {
		p, n, err := decodePrefix(body)
		if err != nil {
			return nil, err
		}
		u.NLRI = append(u.NLRI, p)
		body = body[n:]
	}
	return u, nil
}

// WireLen reports the full framed length of the next message in buf,
// or 0 if the header is incomplete.
func WireLen(buf []byte) int {
	if len(buf) < HeaderLen {
		return 0
	}
	return int(binary.BigEndian.Uint16(buf[16:18]))
}

// ReadMessage reads exactly one framed BGP message from r.
func ReadMessage(r io.Reader) ([]byte, error) {
	hdr := make([]byte, HeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	length := int(binary.BigEndian.Uint16(hdr[16:18]))
	if length < HeaderLen || length > MaxMessageLen {
		return nil, ErrBadLength
	}
	msg := make([]byte, length)
	copy(msg, hdr)
	if _, err := io.ReadFull(r, msg[HeaderLen:]); err != nil {
		return nil, err
	}
	return msg, nil
}
