package bgp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		len  uint8
		want uint32
	}{
		{0, 0x00000000},
		{1, 0x80000000},
		{8, 0xff000000},
		{10, 0xffc00000},
		{24, 0xffffff00},
		{32, 0xffffffff},
	}
	for _, c := range cases {
		if got := Mask(c.len); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.len, got, c.want)
		}
	}
}

func TestMakePrefixZeroesHostBits(t *testing.T) {
	p := MakePrefix(V4(10, 1, 2, 3), 16)
	if p.Addr != V4(10, 1, 0, 0) {
		t.Errorf("host bits not cleared: %s", p)
	}
	q := MakePrefix(V4(10, 1, 255, 255), 16)
	if p != q {
		t.Errorf("two spellings of the same network differ: %v vs %v", p, q)
	}
}

func TestPrefixContains(t *testing.T) {
	p := MakePrefix(V4(192, 168, 0, 0), 16)
	if !p.Contains(V4(192, 168, 42, 7)) {
		t.Error("should contain inside address")
	}
	if p.Contains(V4(192, 169, 0, 0)) {
		t.Error("should not contain outside address")
	}
	all := MakePrefix(0, 0)
	if !all.Contains(V4(1, 2, 3, 4)) {
		t.Error("default route should contain everything")
	}
}

func TestContainsPrefix(t *testing.T) {
	p := MakePrefix(V4(10, 0, 0, 0), 8)
	sub := MakePrefix(V4(10, 5, 0, 0), 16)
	if !p.ContainsPrefix(sub) {
		t.Error("10/8 should contain 10.5/16")
	}
	if sub.ContainsPrefix(p) {
		t.Error("10.5/16 should not contain 10/8")
	}
	if !p.ContainsPrefix(p) {
		t.Error("a prefix contains itself")
	}
}

func TestSlash24(t *testing.T) {
	if got := Slash24(V4(203, 0, 113, 77)); got != V4(203, 0, 113, 0) {
		t.Errorf("Slash24 = %s", FormatIP(got))
	}
}

func TestPrefixString(t *testing.T) {
	p := MakePrefix(V4(198, 51, 100, 0), 24)
	if got := p.String(); got != "198.51.100.0/24" {
		t.Errorf("String() = %q", got)
	}
}

func TestPrefixWireRoundTrip(t *testing.T) {
	cases := []Prefix{
		MakePrefix(0, 0),
		MakePrefix(V4(10, 0, 0, 0), 8),
		MakePrefix(V4(172, 16, 0, 0), 12),
		MakePrefix(V4(192, 0, 2, 0), 24),
		MakePrefix(V4(192, 0, 2, 128), 25),
		MakePrefix(V4(192, 0, 2, 255), 32),
	}
	for _, p := range cases {
		buf := appendPrefix(nil, p)
		if len(buf) != prefixWireLen(p) {
			t.Errorf("%s: wire len %d, want %d", p, len(buf), prefixWireLen(p))
		}
		got, n, err := decodePrefix(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", p, err)
		}
		if n != len(buf) || got != p {
			t.Errorf("%s: round trip gave %s (consumed %d of %d)", p, got, n, len(buf))
		}
	}
}

func TestPrefixWireRoundTripProperty(t *testing.T) {
	f := func(addr uint32, rawLen uint8) bool {
		p := MakePrefix(addr, rawLen%33)
		buf := appendPrefix(nil, p)
		got, n, err := decodePrefix(buf)
		return err == nil && n == len(buf) && got == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodePrefixErrors(t *testing.T) {
	if _, _, err := decodePrefix(nil); err == nil {
		t.Error("empty buffer should fail")
	}
	if _, _, err := decodePrefix([]byte{33}); err == nil {
		t.Error("length 33 should fail")
	}
	if _, _, err := decodePrefix([]byte{24, 10, 0}); err == nil {
		t.Error("truncated body should fail")
	}
}

func TestMaskContainsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		addr := rng.Uint32()
		l := uint8(rng.Intn(33))
		p := MakePrefix(addr, l)
		if !p.Contains(addr) {
			t.Fatalf("prefix %s does not contain its own seed address %s", p, FormatIP(addr))
		}
	}
}
