package bgp

import (
	"net"
	"reflect"
	"strings"
	"testing"
	"time"
)

// pipePair returns two connected sessions over an in-memory pipe.
func pipePair(t *testing.T) (*Session, *Session) {
	t.Helper()
	a, b := net.Pipe()
	sa := NewSession(a, 64500, 1, 90)
	sb := NewSession(b, 64496, 2, 90)
	errc := make(chan error, 2)
	go func() { errc <- sa.Establish() }()
	go func() { errc <- sb.Establish() }()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("establish: %v", err)
		}
	}
	t.Cleanup(func() { sa.Close(); sb.Close() })
	return sa, sb
}

func TestSessionHandshake(t *testing.T) {
	sa, sb := pipePair(t)
	if sa.State() != StateEstablished || sb.State() != StateEstablished {
		t.Fatalf("states: %v / %v", sa.State(), sb.State())
	}
	if sa.PeerOpen().AS != 64496 || sb.PeerOpen().AS != 64500 {
		t.Errorf("peer identities wrong: %v / %v", sa.PeerOpen().AS, sb.PeerOpen().AS)
	}
}

func TestSessionUpdateTransport(t *testing.T) {
	sa, sb := pipePair(t)
	want := &Update{
		Withdrawn: []Prefix{MakePrefix(V4(40, 3, 0, 0), 16)},
	}
	done := make(chan any, 1)
	go func() {
		msg, err := sb.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- msg
	}()
	if err := sa.SendUpdate(want); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if err, ok := got.(error); ok {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("update mismatch: %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("update never arrived")
	}
}

func TestSessionKeepalive(t *testing.T) {
	sa, sb := pipePair(t)
	go sa.SendKeepalive()
	msg, err := sb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(Keepalive); !ok {
		t.Fatalf("got %T", msg)
	}
}

func TestSessionNotificationCloses(t *testing.T) {
	sa, sb := pipePair(t)
	go sa.Notify(6, 2, nil) // Cease / Administrative Shutdown
	msg, err := sb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	n, ok := msg.(*Notification)
	if !ok || n.Code != 6 {
		t.Fatalf("got %T %+v", msg, msg)
	}
	if sb.State() != StateClosed {
		t.Error("receiver should close after NOTIFICATION")
	}
	// The sender closes right after its write completes; allow the
	// goroutine a moment, polling on a bounded iteration budget (~2s)
	// rather than the wall clock.
	for i := 0; i < 400 && sa.State() != StateClosed; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if sa.State() != StateClosed {
		t.Error("sender should close after NOTIFICATION")
	}
	if err := sb.SendUpdate(&Update{}); err != ErrNotEstablished {
		t.Errorf("send on closed session: %v", err)
	}
}

func TestSessionSendBeforeEstablish(t *testing.T) {
	a, _ := net.Pipe()
	s := NewSession(a, 1, 1, 90)
	if err := s.SendUpdate(&Update{}); err != ErrNotEstablished {
		t.Errorf("err = %v, want ErrNotEstablished", err)
	}
	if err := s.SendKeepalive(); err != ErrNotEstablished {
		t.Errorf("err = %v, want ErrNotEstablished", err)
	}
	if _, err := s.Recv(); err != ErrNotEstablished {
		t.Errorf("err = %v, want ErrNotEstablished", err)
	}
}

func TestSessionOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type result struct {
		upd *Update
		err error
	}
	done := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- result{nil, err}
			return
		}
		s := NewSession(conn, 64496, 9, 90)
		if err := s.Establish(); err != nil {
			done <- result{nil, err}
			return
		}
		msg, err := s.Recv()
		if err != nil {
			done <- result{nil, err}
			return
		}
		done <- result{msg.(*Update), nil}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(conn, 64500, 8, 90)
	if err := s.Establish(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := &Update{Withdrawn: []Prefix{MakePrefix(V4(40, 0, 0, 0), 10)}}
	if err := s.SendUpdate(want); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if !reflect.DeepEqual(r.upd, want) {
		t.Errorf("TCP update mismatch: %+v", r.upd)
	}
}

// TestSessionEstablishStateRace polls State() on both ends while the
// handshake runs, then re-establishes: Establish once read s.state
// for its error message after dropping the lock, and this pins the
// locked re-read under the race detector.
func TestSessionEstablishStateRace(t *testing.T) {
	a, b := net.Pipe()
	sa := NewSession(a, 64500, 1, 90)
	sb := NewSession(b, 64496, 2, 90)
	stop := make(chan struct{})
	aux := make(chan struct{})
	go func() {
		defer close(aux)
		for {
			select {
			case <-stop:
				return
			default:
				_ = sa.State()
				_ = sb.State()
			}
		}
	}()
	errc := make(chan error, 2)
	go func() { errc <- sa.Establish() }()
	go func() { errc <- sb.Establish() }()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("establish: %v", err)
		}
	}
	close(stop)
	<-aux
	err := sa.Establish()
	if err == nil || !strings.Contains(err.Error(), "establish from state established") {
		t.Fatalf("re-establish error = %v, want 'establish from state established'", err)
	}
}
