// Package core implements TIPSY's statistical-classification models
// (§3.3 of the paper): the Historical models Hist_A, Hist_AP and
// Hist_AL, their sequential ensembles, the geographic-distance
// completion Hist_AL+G, the Naïve Bayes models of Appendix A, and the
// restricted oracle used as the accuracy ceiling. All models support
// byte-weighted training, top-k prediction, and exclusion of
// unavailable links (the prior the evaluation passes for links in
// outage or prefixes under withdrawal).
package core

import (
	"tipsy/internal/features"
	"tipsy/internal/wan"
)

// Prediction is one predicted ingress link with the fraction of the
// flow's bytes expected to arrive on it. Fractions in a prediction
// list sum to 1.
type Prediction struct {
	Link wan.LinkID
	Frac float64
}

// Query is one prediction request: which links will this flow's bytes
// ingress on, excluding links the caller knows to be unavailable?
type Query struct {
	Flow features.FlowFeatures
	// K caps how many links to return (the paper's k knob; the
	// headline metric uses k=3). K <= 0 means unrestricted.
	K int
	// Exclude, if non-nil, marks links that cannot be predicted:
	// links in outage, or links the queried prefix was withdrawn
	// from. Models answer with the next most likely links.
	Exclude func(wan.LinkID) bool
}

func (q *Query) excluded(l wan.LinkID) bool {
	return q.Exclude != nil && q.Exclude(l)
}

// Predictor is a trained ingress prediction model.
type Predictor interface {
	// Name identifies the model in tables, e.g. "Hist_AL+G".
	Name() string
	// Predict returns up to q.K predicted links ordered by predicted
	// byte fraction, fractions renormalized to sum to 1. An empty
	// result means the model has no prediction for this flow.
	Predict(q Query) []Prediction
}

// topK normalizes the fractions over the whole surviving prediction
// list (the flow's bytes must land somewhere among the links the
// model still considers possible) and then truncates to k WITHOUT
// renormalizing: each retained entry keeps its meaning of "this
// fraction of the flow's bytes arrives here", so accuracy is
// monotone in k. k <= 0 keeps everything.
func topK(preds []Prediction, k int) []Prediction {
	var sum float64
	for _, p := range preds {
		sum += p.Frac
	}
	if sum > 0 {
		for i := range preds {
			preds[i].Frac /= sum
		}
	}
	if k > 0 && len(preds) > k {
		preds = preds[:k]
	}
	return preds
}
