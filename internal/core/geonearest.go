package core

import (
	"sort"

	"tipsy/internal/geo"
	"tipsy/internal/wan"
)

// GeoNearest is a training-free predictor: rank the WAN's peering
// links by geographic distance from the flow's source location and
// bet on the nearest ones, preferring the source AS's own links at
// equal distance. It knows nothing about observed traffic, so its
// accuracy is far below the historical models — it exists as the
// last rung of a degraded serving ladder, answering when no trained
// model can (features missing from training, models lost, or a
// process serving before its first retrain completes).
type GeoNearest struct {
	links  wan.Directory
	metros *geo.DB
}

// NewGeoNearest builds the fallback over the WAN's link directory.
func NewGeoNearest(links wan.Directory, metros *geo.DB) *GeoNearest {
	return &GeoNearest{links: links, metros: metros}
}

// Name implements Predictor.
func (g *GeoNearest) Name() string { return "GeoNearest" }

// Predict implements Predictor. Candidates are every non-excluded
// link, ordered by (not direct-peer, distance, ID) — the source AS's
// own interconnects first, then anyone else's nearby ones, mirroring
// the hot-potato intuition that traffic enters close to where it
// originates. Fractions decay geometrically down the ranking.
func (g *GeoNearest) Predict(q Query) []Prediction {
	type cand struct {
		id      wan.LinkID
		foreign bool // not a link of the flow's own AS
		d       float64
	}
	var cands []cand
	for _, id := range g.links.Links() {
		if q.excluded(id) {
			continue
		}
		l, ok := g.links.Link(id)
		if !ok {
			continue
		}
		cands = append(cands, cand{
			id:      id,
			foreign: l.PeerAS != q.Flow.AS,
			d:       g.metros.Distance(q.Flow.Loc, l.Metro),
		})
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].foreign != cands[j].foreign {
			return !cands[i].foreign
		}
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	// Only the head of the ranking means anything; keep it short even
	// for unrestricted queries so fractions stay non-degenerate.
	max := q.K
	if max <= 0 || max > 16 {
		max = 16
	}
	if len(cands) > max {
		cands = cands[:max]
	}
	preds := make([]Prediction, len(cands))
	w := 1.0
	for i, c := range cands {
		preds[i] = Prediction{Link: c.id, Frac: w}
		w *= 0.5
	}
	return topK(preds, q.K)
}
