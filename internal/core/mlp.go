package core

import (
	"math"
	"math/rand"
	"sort"

	"tipsy/internal/features"
	"tipsy/internal/wan"
)

// MLP is the neural-network baseline the paper evaluated and rejected
// (§3.3: "after testing several techniques including DNNs (of
// different depths and widths), we converged on two types of simple
// statistical classification models"). It is a feed-forward network
// over hashed categorical features with a softmax over peering links,
// trained with byte-weighted SGD. It exists so the model-selection
// claim is reproducible: compare its accuracy, training cost, and
// prediction cost against the Historical models (see
// BenchmarkBaselineMLP).
type MLP struct {
	set     features.Set
	opts    MLPOpts
	links   []wan.LinkID
	linkIdx map[wan.LinkID]int

	// w1 is [nDims*buckets][hidden] stored flat; each sample
	// activates exactly one bucket per feature dimension, so the
	// forward pass is sparse.
	w1 []float64
	b1 []float64
	// w2 is [hidden][classes] stored flat.
	w2    []float64
	b2    []float64
	nDims int
}

// MLPOpts tunes the baseline.
type MLPOpts struct {
	Hidden      int
	Epochs      int
	LearnRate   float64
	HashBuckets int // per feature dimension
	Seed        int64
}

// DefaultMLPOpts returns a small configuration that trains in
// reasonable time on one core.
func DefaultMLPOpts() MLPOpts {
	return MLPOpts{Hidden: 48, Epochs: 3, LearnRate: 0.005, HashBuckets: 512, Seed: 1}
}

// TrainMLP fits the baseline on the records.
func TrainMLP(set features.Set, recs []features.Record, opts MLPOpts) *MLP {
	if opts.Hidden <= 0 {
		opts = DefaultMLPOpts()
	}
	dims := dimsFor(set)
	m := &MLP{
		set: set, opts: opts, nDims: len(dims),
		linkIdx: make(map[wan.LinkID]int),
	}
	for _, r := range recs {
		if _, ok := m.linkIdx[r.Link]; !ok {
			m.linkIdx[r.Link] = len(m.links)
			m.links = append(m.links, r.Link)
		}
	}
	classes := len(m.links)
	if classes == 0 {
		return m
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	in := m.nDims * opts.HashBuckets
	m.w1 = make([]float64, in*opts.Hidden)
	m.b1 = make([]float64, opts.Hidden)
	m.w2 = make([]float64, opts.Hidden*classes)
	m.b2 = make([]float64, classes)
	scale1 := math.Sqrt(2 / float64(m.nDims))
	scale2 := math.Sqrt(2 / float64(opts.Hidden))
	for i := range m.w1 {
		m.w1[i] = rng.NormFloat64() * scale1
	}
	for i := range m.w2 {
		m.w2[i] = rng.NormFloat64() * scale2
	}

	// Byte weighting: heavy-tailed volumes would give most samples a
	// near-zero weight and elephants a destabilizing one, so weights
	// are square-rooted relative to the mean and clipped.
	var totalBytes float64
	for _, r := range recs {
		totalBytes += r.Bytes
	}
	meanBytes := totalBytes / float64(len(recs))

	order := rng.Perm(len(recs))
	hidden := make([]float64, opts.Hidden)
	probs := make([]float64, classes)
	buckets := make([]int, m.nDims)
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		lr := opts.LearnRate / (1 + float64(epoch))
		for _, idx := range order {
			r := &recs[idx]
			y := m.linkIdx[r.Link]
			wgt := math.Sqrt(r.Bytes / meanBytes)
			if wgt > 2 {
				wgt = 2
			}
			if wgt < 0.05 {
				wgt = 0.05
			}
			m.buckets(r.Flow, buckets)
			m.forward(buckets, hidden, probs)
			// Backprop: softmax cross-entropy.
			for c := 0; c < classes; c++ {
				delta := probs[c]
				if c == y {
					delta -= 1
				}
				delta *= wgt * lr
				if delta == 0 {
					continue
				}
				m.b2[c] -= delta
				for h := 0; h < opts.Hidden; h++ {
					if hidden[h] > 0 {
						m.w2[h*classes+c] -= delta * hidden[h]
					}
				}
			}
			// Hidden layer gradient.
			for h := 0; h < opts.Hidden; h++ {
				if hidden[h] <= 0 { // ReLU gate
					continue
				}
				var g float64
				for c := 0; c < classes; c++ {
					delta := probs[c]
					if c == y {
						delta -= 1
					}
					g += delta * m.w2[h*classes+c]
				}
				g *= wgt * lr
				if g == 0 {
					continue
				}
				m.b1[h] -= g
				for d, bkt := range buckets {
					m.w1[(d*opts.HashBuckets+bkt)*opts.Hidden+h] -= g
				}
			}
		}
	}
	return m
}

// buckets hashes the flow's feature values into per-dimension
// buckets.
func (m *MLP) buckets(f features.FlowFeatures, out []int) {
	for i, d := range dimsFor(m.set) {
		v := dimValue(d, f)
		h := v * 0x9e3779b97f4a7c15
		h ^= h >> 29
		out[i] = int(h % uint64(m.opts.HashBuckets))
	}
}

// forward computes hidden activations and softmax probabilities.
func (m *MLP) forward(buckets []int, hidden, probs []float64) {
	classes := len(m.links)
	copy(hidden, m.b1)
	for d, bkt := range buckets {
		base := (d*m.opts.HashBuckets + bkt) * m.opts.Hidden
		for h := 0; h < m.opts.Hidden; h++ {
			hidden[h] += m.w1[base+h]
		}
	}
	for h := range hidden {
		if hidden[h] < 0 {
			hidden[h] = 0
		}
	}
	copy(probs, m.b2)
	for h := 0; h < m.opts.Hidden; h++ {
		if hidden[h] == 0 {
			continue
		}
		a := hidden[h]
		row := m.w2[h*classes : (h+1)*classes]
		for c := 0; c < classes; c++ {
			probs[c] += a * row[c]
		}
	}
	// Softmax in place.
	maxV := math.Inf(-1)
	for _, v := range probs {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for c := range probs {
		probs[c] = math.Exp(probs[c] - maxV)
		sum += probs[c]
	}
	for c := range probs {
		probs[c] /= sum
	}
}

// Name implements Predictor.
func (m *MLP) Name() string { return "MLP_" + m.set.String() }

// Predict implements Predictor.
func (m *MLP) Predict(q Query) []Prediction {
	classes := len(m.links)
	if classes == 0 {
		return nil
	}
	buckets := make([]int, m.nDims)
	hidden := make([]float64, m.opts.Hidden)
	probs := make([]float64, classes)
	m.buckets(q.Flow, buckets)
	m.forward(buckets, hidden, probs)
	preds := make([]Prediction, 0, classes)
	for c, p := range probs {
		l := m.links[c]
		if q.excluded(l) {
			continue
		}
		preds = append(preds, Prediction{Link: l, Frac: p})
	}
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].Frac != preds[j].Frac {
			return preds[i].Frac > preds[j].Frac
		}
		return preds[i].Link < preds[j].Link
	})
	return topK(preds, q.K)
}

// NumParameters reports the network size.
func (m *MLP) NumParameters() int {
	return len(m.w1) + len(m.b1) + len(m.w2) + len(m.b2)
}
