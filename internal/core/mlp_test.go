package core

import (
	"testing"

	"tipsy/internal/features"
	"tipsy/internal/wan"
)

// mlpTrainSet builds a cleanly separable mapping: flows from AS i go
// to link i.
func mlpTrainSet(n int) []features.Record {
	var recs []features.Record
	for i := 0; i < n; i++ {
		f := flow(uint32(100+i), uint32(0x0b000000+i*256), uint16(1+i%8), uint16(1+i%4), uint8(1+i%3))
		for rep := 0; rep < 20; rep++ {
			recs = append(recs, rec(f, wan.LinkID(i+1), 1000))
		}
	}
	return recs
}

func TestMLPLearnsSeparableMapping(t *testing.T) {
	recs := mlpTrainSet(6)
	m := TrainMLP(features.SetAP, recs, DefaultMLPOpts())
	if m.Name() != "MLP_AP" {
		t.Errorf("Name = %q", m.Name())
	}
	correct := 0
	for i := 0; i < 6; i++ {
		f := flow(uint32(100+i), uint32(0x0b000000+i*256), uint16(1+i%8), uint16(1+i%4), uint8(1+i%3))
		preds := m.Predict(Query{Flow: f, K: 1})
		if len(preds) == 1 && preds[0].Link == wan.LinkID(i+1) {
			correct++
		}
	}
	if correct < 5 {
		t.Errorf("MLP learned only %d/6 separable mappings", correct)
	}
}

func TestMLPPredictionsNormalized(t *testing.T) {
	m := TrainMLP(features.SetAP, mlpTrainSet(4), DefaultMLPOpts())
	f := flow(100, 0x0b000000, 1, 1, 1)
	preds := m.Predict(Query{Flow: f, K: 3})
	checkNormalized(t, preds)
	if len(preds) != 3 {
		t.Fatalf("want 3 predictions, got %d", len(preds))
	}
}

func TestMLPExclusion(t *testing.T) {
	m := TrainMLP(features.SetAP, mlpTrainSet(4), DefaultMLPOpts())
	f := flow(100, 0x0b000000, 1, 1, 1)
	preds := m.Predict(Query{Flow: f, K: 4, Exclude: func(l wan.LinkID) bool { return l == 1 }})
	for _, p := range preds {
		if p.Link == 1 {
			t.Fatal("excluded link predicted")
		}
	}
}

func TestMLPDeterministic(t *testing.T) {
	recs := mlpTrainSet(4)
	a := TrainMLP(features.SetAP, recs, DefaultMLPOpts())
	b := TrainMLP(features.SetAP, recs, DefaultMLPOpts())
	f := flow(101, 0x0b000100, 2, 2, 2)
	pa := a.Predict(Query{Flow: f, K: 4})
	pb := b.Predict(Query{Flow: f, K: 4})
	if len(pa) != len(pb) {
		t.Fatal("prediction counts differ")
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed produced different networks")
		}
	}
}

func TestMLPEmptyTraining(t *testing.T) {
	m := TrainMLP(features.SetA, nil, DefaultMLPOpts())
	if preds := m.Predict(Query{Flow: flow(1, 0, 1, 1, 1), K: 3}); preds != nil {
		t.Errorf("untrained MLP should predict nothing, got %+v", preds)
	}
}

func TestMLPParameterCount(t *testing.T) {
	opts := DefaultMLPOpts()
	m := TrainMLP(features.SetA, mlpTrainSet(3), opts)
	// 3 dims (A set has AS, region, type) x buckets x hidden + hidden
	// + hidden x 3 classes + 3.
	want := 3*opts.HashBuckets*opts.Hidden + opts.Hidden + opts.Hidden*3 + 3
	if got := m.NumParameters(); got != want {
		t.Errorf("NumParameters = %d, want %d", got, want)
	}
}
