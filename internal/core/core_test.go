package core

import (
	"math"
	"testing"

	"tipsy/internal/bgp"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/wan"
)

func flow(as uint32, prefix uint32, loc, region uint16, typ uint8) features.FlowFeatures {
	return features.FlowFeatures{
		AS: bgp.ASN(as), Prefix: prefix, Loc: geo.MetroID(loc),
		Region: wan.Region(region), Type: wan.ServiceType(typ),
	}
}

func rec(f features.FlowFeatures, link wan.LinkID, bytes float64) features.Record {
	return features.Record{Flow: f, Link: link, Bytes: bytes}
}

func checkNormalized(t *testing.T, preds []Prediction) {
	t.Helper()
	var sum float64
	for i, p := range preds {
		sum += p.Frac
		if i > 0 && p.Frac > preds[i-1].Frac+1e-12 {
			t.Fatalf("predictions not sorted by fraction at %d", i)
		}
	}
	// Fractions are normalized over the full surviving list and then
	// truncated at k, so the sum is at most 1 (exactly 1 when nothing
	// was truncated).
	if len(preds) > 0 && sum > 1+1e-9 {
		t.Fatalf("fractions sum to %f > 1", sum)
	}
	if len(preds) > 0 && sum <= 0 {
		t.Fatalf("fractions sum to %f", sum)
	}
}

func TestHistoricalBasics(t *testing.T) {
	f := flow(64496, 0x0b000100, 3, 9, 1)
	recs := []features.Record{
		rec(f, 1, 700),
		rec(f, 2, 200),
		rec(f, 3, 100),
	}
	h := TrainHistorical(features.SetAP, recs, DefaultHistOpts())
	if h.Name() != "Hist_AP" {
		t.Errorf("Name = %q", h.Name())
	}
	preds := h.Predict(Query{Flow: f, K: 3})
	checkNormalized(t, preds)
	if len(preds) != 3 || preds[0].Link != 1 {
		t.Fatalf("wrong ranking: %+v", preds)
	}
	if math.Abs(preds[0].Frac-0.7) > 1e-9 {
		t.Errorf("top fraction %f, want 0.7", preds[0].Frac)
	}
}

func TestHistoricalByteWeighting(t *testing.T) {
	// Many small observations on link 1 vs one huge on link 2: byte
	// weighting must rank link 2 first despite fewer samples.
	f := flow(1, 0, 1, 1, 1)
	var recs []features.Record
	for i := 0; i < 50; i++ {
		recs = append(recs, rec(f, 1, 10))
	}
	recs = append(recs, rec(f, 2, 10000))
	h := TrainHistorical(features.SetA, recs, DefaultHistOpts())
	preds := h.Predict(Query{Flow: f, K: 1})
	if preds[0].Link != 2 {
		t.Errorf("byte weighting broken: top link %d", preds[0].Link)
	}
}

func TestHistoricalNoTransferLearning(t *testing.T) {
	seen := flow(1, 100, 1, 1, 1)
	unseen := flow(2, 100, 1, 1, 1) // different AS
	h := TrainHistorical(features.SetA, []features.Record{rec(seen, 1, 10)}, DefaultHistOpts())
	if preds := h.Predict(Query{Flow: unseen, K: 3}); preds != nil {
		t.Errorf("unseen tuple must have no prediction, got %+v", preds)
	}
}

func TestHistoricalProjectionMergesFlows(t *testing.T) {
	// Two flows with different prefixes but the same A-projection
	// merge under Hist_A and stay separate under Hist_AP.
	f1 := flow(1, 100, 1, 1, 1)
	f2 := flow(1, 200, 1, 1, 1)
	recs := []features.Record{rec(f1, 1, 100), rec(f2, 2, 300)}
	a := TrainHistorical(features.SetA, recs, DefaultHistOpts())
	ap := TrainHistorical(features.SetAP, recs, DefaultHistOpts())
	if a.NumTuples() != 1 || ap.NumTuples() != 2 {
		t.Fatalf("tuples: A=%d AP=%d", a.NumTuples(), ap.NumTuples())
	}
	preds := a.Predict(Query{Flow: f1, K: 2})
	if len(preds) != 2 || preds[0].Link != 2 {
		t.Errorf("merged aggregate should rank link 2 first: %+v", preds)
	}
	if preds := ap.Predict(Query{Flow: f1, K: 2}); len(preds) != 1 || preds[0].Link != 1 {
		t.Errorf("AP should keep flows separate: %+v", preds)
	}
}

func TestHistoricalExclusionRenormalizes(t *testing.T) {
	f := flow(1, 0, 1, 1, 1)
	recs := []features.Record{rec(f, 1, 600), rec(f, 2, 300), rec(f, 3, 100)}
	h := TrainHistorical(features.SetA, recs, DefaultHistOpts())
	preds := h.Predict(Query{Flow: f, K: 3, Exclude: func(l wan.LinkID) bool { return l == 1 }})
	checkNormalized(t, preds)
	if len(preds) != 2 || preds[0].Link != 2 {
		t.Fatalf("exclusion should promote link 2: %+v", preds)
	}
	if math.Abs(preds[0].Frac-0.75) > 1e-9 {
		t.Errorf("renormalized fraction %f, want 0.75", preds[0].Frac)
	}
	if all := h.Predict(Query{Flow: f, K: 3, Exclude: func(wan.LinkID) bool { return true }}); len(all) != 0 {
		t.Error("excluding everything should yield no prediction")
	}
}

func TestHistoricalMaxLinksCap(t *testing.T) {
	f := flow(1, 0, 1, 1, 1)
	var recs []features.Record
	for l := 1; l <= 30; l++ {
		recs = append(recs, rec(f, wan.LinkID(l), float64(1000-l)))
	}
	h := TrainHistorical(features.SetA, recs, HistOpts{MaxLinksPerTuple: 5})
	if h.NumEntries() != 5 {
		t.Errorf("cap not applied: %d entries", h.NumEntries())
	}
	preds := h.Predict(Query{Flow: f})
	if len(preds) != 5 || preds[0].Link != 1 {
		t.Errorf("capped model should keep the heaviest links: %+v", preds)
	}
}

func TestHistoricalTopKZeroMeansUnrestricted(t *testing.T) {
	f := flow(1, 0, 1, 1, 1)
	var recs []features.Record
	for l := 1; l <= 10; l++ {
		recs = append(recs, rec(f, wan.LinkID(l), 10))
	}
	h := TrainHistorical(features.SetA, recs, DefaultHistOpts())
	if got := len(h.Predict(Query{Flow: f})); got != 10 {
		t.Errorf("K=0 should return all stored links, got %d", got)
	}
	if got := len(h.Predict(Query{Flow: f, K: 4})); got != 4 {
		t.Errorf("K=4 should truncate, got %d", got)
	}
}

func TestEnsembleFallback(t *testing.T) {
	fAP := flow(1, 100, 1, 1, 1)
	fOnlyA := flow(2, 0, 0, 1, 1) // AP projection unseen, A seen
	ap := TrainHistorical(features.SetAP, []features.Record{rec(fAP, 1, 10)}, DefaultHistOpts())
	a := TrainHistorical(features.SetA, []features.Record{
		rec(fAP, 1, 10),
		rec(fOnlyA, 7, 10),
	}, DefaultHistOpts())
	e := NewEnsemble(ap, a)
	if e.Name() != "Hist_AP/A" {
		t.Errorf("Name = %q", e.Name())
	}
	if preds := e.Predict(Query{Flow: fAP, K: 1}); len(preds) == 0 || preds[0].Link != 1 {
		t.Errorf("specific model should answer: %+v", preds)
	}
	if preds := e.Predict(Query{Flow: fOnlyA, K: 1}); len(preds) == 0 || preds[0].Link != 7 {
		t.Errorf("fallback model should answer: %+v", preds)
	}
	novel := flow(99, 0, 0, 9, 9)
	if preds := e.Predict(Query{Flow: novel}); preds != nil {
		t.Errorf("fully novel flow should have no prediction: %+v", preds)
	}
}

// staticDir is a test wan.Directory.
type staticDir struct {
	links map[wan.LinkID]wan.Link
}

func (d *staticDir) Link(id wan.LinkID) (wan.Link, bool) {
	l, ok := d.links[id]
	return l, ok
}
func (d *staticDir) LinksOfAS(as bgp.ASN) []wan.LinkID {
	var out []wan.LinkID
	for id := wan.LinkID(1); int(id) <= len(d.links); id++ {
		if d.links[id].PeerAS == as {
			out = append(out, id)
		}
	}
	return out
}
func (d *staticDir) Links() []wan.LinkID {
	out := make([]wan.LinkID, 0, len(d.links))
	for id := wan.LinkID(1); int(id) <= len(d.links); id++ {
		out = append(out, id)
	}
	return out
}

func geoTestSetup(t *testing.T) (*GeoCompletion, features.FlowFeatures, *staticDir) {
	t.Helper()
	metros := geo.World()
	// Peer AS 5 has links in metros 1, 2, 3; another AS has link 4.
	dir := &staticDir{links: map[wan.LinkID]wan.Link{
		1: {ID: 1, Metro: 1, PeerAS: 5},
		2: {ID: 2, Metro: 2, PeerAS: 5},
		3: {ID: 3, Metro: 40, PeerAS: 5},
		4: {ID: 4, Metro: 1, PeerAS: 6},
	}}
	f := flow(5, 0, 1, 1, 1)
	inner := TrainHistorical(features.SetAL, []features.Record{rec(f, 1, 100)}, DefaultHistOpts())
	return NewGeoCompletion(inner, dir, metros), f, dir
}

func TestGeoCompletionNoDilutionWhenConfident(t *testing.T) {
	// When the surviving trained links cover the tuple's full byte
	// mass, the completion must not dilute them: AL+G behaves exactly
	// like AL on traffic the model already knows (the paper's Table 4
	// shows AL+G ≈ AL overall).
	g, f, _ := geoTestSetup(t)
	if g.Name() != "Hist_AL+G" {
		t.Errorf("Name = %q", g.Name())
	}
	preds := g.Predict(Query{Flow: f, K: 3})
	checkNormalized(t, preds)
	if len(preds) != 1 || preds[0].Link != 1 || preds[0].Frac != 1.0 {
		t.Fatalf("confident prediction should be untouched: %+v", preds)
	}
}

func TestGeoCompletionSpendsMissingMass(t *testing.T) {
	// The flow was seen on links 1 (70%) and 2 (30%); link 2 is
	// excluded. The destroyed 30% goes to the peer's other links
	// ranked by distance from the anchor (metro 1): link 4 is another
	// AS and must never appear.
	metros := geo.World()
	dir := &staticDir{links: map[wan.LinkID]wan.Link{
		1: {ID: 1, Metro: 1, PeerAS: 5},
		2: {ID: 2, Metro: 2, PeerAS: 5},
		3: {ID: 3, Metro: 40, PeerAS: 5},
		4: {ID: 4, Metro: 1, PeerAS: 6},
	}}
	f := flow(5, 0, 1, 1, 1)
	inner := TrainHistorical(features.SetAL, []features.Record{
		rec(f, 1, 700), rec(f, 2, 300),
	}, DefaultHistOpts())
	g := NewGeoCompletion(inner, dir, metros)
	preds := g.Predict(Query{Flow: f, K: 3, Exclude: func(l wan.LinkID) bool { return l == 2 }})
	checkNormalized(t, preds)
	if len(preds) != 2 {
		t.Fatalf("want survivor + completion, got %+v", preds)
	}
	if preds[0].Link != 1 {
		t.Errorf("surviving trained link must lead: %+v", preds)
	}
	if preds[1].Link != 3 {
		t.Errorf("completion should add the peer's other link: %+v", preds)
	}
	if preds[1].Frac >= preds[0].Frac {
		t.Error("completion outweighs real observation")
	}
	for _, p := range preds {
		if l, _ := dir.Link(p.Link); l.PeerAS != 5 {
			t.Errorf("completion crossed to another peer: link %d", p.Link)
		}
	}
}

func TestGeoCompletionUnderExclusion(t *testing.T) {
	// The unseen-outage case: the only observed link is excluded. The
	// anchor is found with exclusions lifted, and the nearest other
	// link of the same peer becomes the top prediction.
	g, f, _ := geoTestSetup(t)
	preds := g.Predict(Query{Flow: f, K: 3, Exclude: func(l wan.LinkID) bool { return l == 1 }})
	checkNormalized(t, preds)
	if len(preds) == 0 || preds[0].Link != 2 {
		t.Fatalf("hot-potato alternate should lead: %+v", preds)
	}
	for _, p := range preds {
		if p.Link == 1 {
			t.Error("excluded link predicted")
		}
	}
}

func TestGeoCompletionNoAnchor(t *testing.T) {
	g, _, _ := geoTestSetup(t)
	novel := flow(77, 0, 2, 1, 1)
	if preds := g.Predict(Query{Flow: novel, K: 3}); preds != nil {
		t.Errorf("no anchor should mean no prediction: %+v", preds)
	}
}

func TestNaiveBayesTransferLearning(t *testing.T) {
	// NB can predict for a tuple it never saw, from feature values it
	// did see; the Historical model cannot.
	f1 := flow(1, 0, 10, 1, 1)
	f2 := flow(2, 0, 20, 2, 2)
	unseen := flow(1, 0, 10, 2, 2) // AS/loc from f1, dest from f2
	recs := []features.Record{rec(f1, 1, 1000), rec(f2, 2, 1000)}
	nb := TrainNaiveBayes(features.SetAL, recs, DefaultNBOpts())
	if nb.Name() != "NB_AL" {
		t.Errorf("Name = %q", nb.Name())
	}
	hist := TrainHistorical(features.SetAL, recs, DefaultHistOpts())
	if hist.Predict(Query{Flow: unseen, K: 1}) != nil {
		t.Fatal("historical model should not predict the unseen tuple")
	}
	preds := nb.Predict(Query{Flow: unseen, K: 2})
	if len(preds) == 0 {
		t.Fatal("NB should predict the unseen tuple")
	}
	checkNormalized(t, preds)
}

func TestNaiveBayesPrefersMatchingLink(t *testing.T) {
	f1 := flow(1, 0, 10, 1, 1)
	f2 := flow(2, 0, 20, 2, 2)
	recs := []features.Record{rec(f1, 1, 1000), rec(f2, 2, 1000)}
	nb := TrainNaiveBayes(features.SetAL, recs, DefaultNBOpts())
	if preds := nb.Predict(Query{Flow: f1, K: 1}); preds[0].Link != 1 {
		t.Errorf("f1 should map to link 1: %+v", preds)
	}
	if preds := nb.Predict(Query{Flow: f2, K: 1}); preds[0].Link != 2 {
		t.Errorf("f2 should map to link 2: %+v", preds)
	}
}

func TestNaiveBayesExclusion(t *testing.T) {
	f1 := flow(1, 0, 10, 1, 1)
	recs := []features.Record{rec(f1, 1, 900), rec(f1, 2, 100)}
	nb := TrainNaiveBayes(features.SetAL, recs, DefaultNBOpts())
	preds := nb.Predict(Query{Flow: f1, K: 2, Exclude: func(l wan.LinkID) bool { return l == 1 }})
	if len(preds) == 0 || preds[0].Link != 2 {
		t.Errorf("exclusion should promote link 2: %+v", preds)
	}
}

func TestNaiveBayesPriorWeighting(t *testing.T) {
	// With an uninformative flow, the class prior (byte mass) decides.
	busy := flow(1, 0, 1, 1, 1)
	recs := []features.Record{rec(busy, 1, 9000), rec(busy, 2, 1000)}
	nb := TrainNaiveBayes(features.SetA, recs, DefaultNBOpts())
	preds := nb.Predict(Query{Flow: busy, K: 2})
	if preds[0].Link != 1 || preds[0].Frac <= preds[1].Frac {
		t.Errorf("prior weighting broken: %+v", preds)
	}
}

func TestNaiveBayesSizeAccounting(t *testing.T) {
	f1 := flow(1, 0, 10, 1, 1)
	f2 := flow(2, 0, 20, 2, 2)
	nb := TrainNaiveBayes(features.SetAL, []features.Record{rec(f1, 1, 1), rec(f2, 2, 1)}, DefaultNBOpts())
	if nb.NumClasses() != 2 {
		t.Errorf("NumClasses = %d", nb.NumClasses())
	}
	// 4 dims × 2 values × 1 link each.
	if nb.NumParameters() != 8 {
		t.Errorf("NumParameters = %d", nb.NumParameters())
	}
}

func TestOraclePerfectUnrestricted(t *testing.T) {
	f := flow(1, 100, 1, 1, 1)
	recs := []features.Record{rec(f, 1, 600), rec(f, 2, 400)}
	o := NewOracle(features.SetAP, recs)
	if o.Name() != "Oracle_AP" {
		t.Errorf("Name = %q", o.Name())
	}
	preds := o.Predict(Query{Flow: f})
	if len(preds) != 2 || math.Abs(preds[0].Frac-0.6) > 1e-9 {
		t.Errorf("oracle should reproduce the test distribution exactly: %+v", preds)
	}
}
