package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"tipsy/internal/features"
	"tipsy/internal/wan"
)

// Snapshot load errors. ErrBadSnapshot means the bytes were never a
// snapshot (wrong magic); ErrCorruptSnapshot means a snapshot that was
// damaged in storage or cut short by a crash mid-write.
var (
	ErrBadSnapshot     = errors.New("core: not a model snapshot")
	ErrCorruptSnapshot = errors.New("core: corrupt model snapshot")
)

// Snapshots are framed so a loader can tell a truncated or damaged
// file from a valid one before handing bytes to gob: an 8-byte magic
// (distinct per snapshot kind — gob alone cannot tell a model from a
// checkpoint, since it matches struct fields by name), the payload
// length, and a CRC-32 of the payload.
const (
	modelMagic       = "TIPSYML1"
	checkpointMagic  = "TIPSYCK1"
	frameHeaderLen   = 8 + 8 + 4
	maxSnapshotBytes = 1 << 32 // sanity cap against garbage length fields
)

// BundleManifestMagic frames diagnostic-bundle manifests (see
// internal/bundle), exported alongside WriteFramed/ReadFramed so the
// bundle writer reuses this file's framing and checksum discipline
// rather than inventing a second format.
const BundleManifestMagic = "TIPSYBN1"

// WriteFramed writes payload under this package's snapshot framing:
// the 8-byte magic, the payload length, and a CRC-32 of the payload,
// followed by the payload itself.
func WriteFramed(w io.Writer, magic string, payload []byte) error {
	if len(magic) != 8 {
		return fmt.Errorf("core: frame magic must be 8 bytes, got %d", len(magic))
	}
	return writeFrame(w, magic, payload)
}

// ReadFramed reads a frame written by WriteFramed, verifying magic,
// length, and checksum; errors wrap ErrBadSnapshot (wrong magic) or
// ErrCorruptSnapshot (truncation, checksum mismatch).
func ReadFramed(r io.Reader, magic string) ([]byte, error) {
	if len(magic) != 8 {
		return nil, fmt.Errorf("core: frame magic must be 8 bytes, got %d", len(magic))
	}
	return readFrame(r, magic)
}

func writeFrame(w io.Writer, magic string, payload []byte) error {
	hdr := make([]byte, 0, frameHeaderLen)
	hdr = append(hdr, magic...)
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(len(payload)))
	hdr = binary.BigEndian.AppendUint32(hdr, crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader, magic string) ([]byte, error) {
	hdr := make([]byte, frameHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
	}
	if string(hdr[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	n := binary.BigEndian.Uint64(hdr[8:16])
	if n > maxSnapshotBytes {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorruptSnapshot, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrCorruptSnapshot, err)
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[16:20]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptSnapshot)
	}
	return payload, nil
}

// writeFileAtomic writes via a temp file in the destination directory
// and renames it into place, so a crash mid-write leaves either the
// old file or the new one — never a torn snapshot at the final path.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// histSnapshot is the serialized form of a Historical model.
type histSnapshot struct {
	Version int
	Set     features.Set
	Table   map[features.Tuple][]Prediction
}

const snapshotVersion = 1

func (h *Historical) snapshot() histSnapshot {
	return histSnapshot{Version: snapshotVersion, Set: h.set, Table: h.table}
}

func restoreHistorical(snap histSnapshot) (*Historical, error) {
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported model version %d", snap.Version)
	}
	return &Historical{set: snap.Set, table: snap.Table}, nil
}

// Save writes the model to w in a self-describing binary form, so a
// daily-retrained model can be produced by one process (or machine)
// and served by another. The frame carries a checksum, so a loader
// can reject torn or damaged snapshots instead of serving from them.
func (h *Historical) Save(w io.Writer) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h.snapshot()); err != nil {
		return err
	}
	return writeFrame(w, modelMagic, buf.Bytes())
}

// SaveFile atomically writes the model to path: the bytes land in a
// temp file first and are renamed into place, so a crash mid-write
// never leaves a torn file where a serving process would look.
func (h *Historical) SaveFile(path string) error {
	return writeFileAtomic(path, h.Save)
}

// LoadHistorical reads a model previously written with Save. It
// rejects truncated or damaged input with a descriptive error rather
// than returning a silently incomplete model.
func LoadHistorical(r io.Reader) (*Historical, error) {
	payload, err := readFrame(r, modelMagic)
	if err != nil {
		return nil, fmt.Errorf("core: load historical: %w", err)
	}
	var snap histSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: load historical: %w: %v", ErrCorruptSnapshot, err)
	}
	return restoreHistorical(snap)
}

// LoadHistoricalFile reads a model from a file written by SaveFile.
func LoadHistoricalFile(path string) (*Historical, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadHistorical(f)
}

// Checkpoint is a restartable serving state: the set of Historical
// models a daemon had trained, stamped with the simulated hour the
// training window ended at, so a restarted process knows how stale
// the recovered models are.
type Checkpoint struct {
	TrainedAt wan.Hour
	Models    []*Historical
}

type checkpointSnapshot struct {
	Version   int
	TrainedAt int32
	Models    []histSnapshot
}

// Save writes the checkpoint in the same framed, checksummed form as
// a single model snapshot.
func (c *Checkpoint) Save(w io.Writer) error {
	snap := checkpointSnapshot{Version: snapshotVersion, TrainedAt: int32(c.TrainedAt)}
	for _, m := range c.Models {
		snap.Models = append(snap.Models, m.snapshot())
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return err
	}
	return writeFrame(w, checkpointMagic, buf.Bytes())
}

// SaveFile atomically writes the checkpoint to path.
func (c *Checkpoint) SaveFile(path string) error {
	return writeFileAtomic(path, c.Save)
}

// LoadCheckpoint reads a checkpoint previously written with Save,
// rejecting truncated or damaged input.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	payload, err := readFrame(r, checkpointMagic)
	if err != nil {
		return nil, fmt.Errorf("core: load checkpoint: %w", err)
	}
	var snap checkpointSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: load checkpoint: %w: %v", ErrCorruptSnapshot, err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported checkpoint version %d", snap.Version)
	}
	c := &Checkpoint{TrainedAt: wan.Hour(snap.TrainedAt)}
	for _, ms := range snap.Models {
		m, err := restoreHistorical(ms)
		if err != nil {
			return nil, err
		}
		c.Models = append(c.Models, m)
	}
	return c, nil
}

// LoadCheckpointFile reads a checkpoint from a file written by
// SaveFile.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCheckpoint(f)
}
