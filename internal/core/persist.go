package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"tipsy/internal/features"
)

// histSnapshot is the serialized form of a Historical model.
type histSnapshot struct {
	Version int
	Set     features.Set
	Table   map[features.Tuple][]Prediction
}

const snapshotVersion = 1

// Save writes the model to w in a self-describing binary form, so a
// daily-retrained model can be produced by one process (or machine)
// and served by another.
func (h *Historical) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(histSnapshot{
		Version: snapshotVersion,
		Set:     h.set,
		Table:   h.table,
	})
}

// LoadHistorical reads a model previously written with Save.
func LoadHistorical(r io.Reader) (*Historical, error) {
	var snap histSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: load historical: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported model version %d", snap.Version)
	}
	return &Historical{set: snap.Set, table: snap.Table}, nil
}
