package core

import (
	"fmt"
	"sort"

	"tipsy/internal/features"
	"tipsy/internal/wan"
)

// HistOpts tunes Historical training.
type HistOpts struct {
	// MaxLinksPerTuple caps how many ranked links are retained per
	// flow tuple. Training beyond the operationally useful rank is
	// "computationally inefficient and unnecessary" (§5.1.2); the
	// default keeps 16, comfortably above the paper's k=3 target.
	MaxLinksPerTuple int
}

// DefaultHistOpts returns the standard training options.
func DefaultHistOpts() HistOpts { return HistOpts{MaxLinksPerTuple: 16} }

// Historical is the paper's Historical model (§3.3.1): for each flow
// tuple it remembers which ingress links carried the tuple's bytes in
// training and with what byte fractions — p(l|f) = B(f,l)/B(f) — and
// predicts the top-k links by that probability. There is deliberately
// no transfer learning between tuples: a link never seen for a tuple
// is never predicted for it.
type Historical struct {
	set   features.Set
	table map[features.Tuple][]Prediction // sorted by Frac descending
}

// TrainHistorical builds a Historical model over the given feature
// set in one pass: group bytes by (tuple, link), rank links per tuple
// by byte volume, keep the top MaxLinksPerTuple. Training samples are
// weighted by traffic volume, which makes large flows dominate their
// aggregate, suppresses stray packets, and yields per-link byte
// fractions directly.
func TrainHistorical(set features.Set, recs []features.Record, opts HistOpts) *Historical {
	if opts.MaxLinksPerTuple <= 0 {
		opts.MaxLinksPerTuple = DefaultHistOpts().MaxLinksPerTuple
	}
	counts := make(map[features.Tuple]map[wan.LinkID]float64)
	for i := range recs {
		r := &recs[i]
		if r.Bytes <= 0 {
			continue
		}
		t := set.Project(r.Flow)
		m := counts[t]
		if m == nil {
			m = make(map[wan.LinkID]float64, 4)
			counts[t] = m
		}
		m[r.Link] += r.Bytes
	}
	h := &Historical{set: set, table: make(map[features.Tuple][]Prediction, len(counts))}
	for t, m := range counts {
		var total float64
		preds := make([]Prediction, 0, len(m))
		for l, b := range m {
			total += b
			preds = append(preds, Prediction{Link: l, Frac: b})
		}
		sort.Slice(preds, func(i, j int) bool {
			if preds[i].Frac != preds[j].Frac {
				return preds[i].Frac > preds[j].Frac
			}
			return preds[i].Link < preds[j].Link
		})
		if len(preds) > opts.MaxLinksPerTuple {
			preds = preds[:opts.MaxLinksPerTuple]
		}
		for i := range preds {
			preds[i].Frac /= total
		}
		h.table[t] = preds
	}
	return h
}

// Name implements Predictor.
func (h *Historical) Name() string { return "Hist_" + h.set.String() }

// Set returns the feature set the model was trained over.
func (h *Historical) Set() features.Set { return h.set }

// Predict implements Predictor: a table lookup followed by exclusion
// filtering and top-k truncation. Lookup is O(1) in the number of
// training points (Table 3).
func (h *Historical) Predict(q Query) []Prediction {
	stored, ok := h.table[h.set.Project(q.Flow)]
	if !ok {
		return nil
	}
	preds := make([]Prediction, 0, len(stored))
	for _, p := range stored {
		if q.excluded(p.Link) {
			continue
		}
		preds = append(preds, p)
	}
	return topK(preds, q.K)
}

// PredictRaw is Predict without top-k truncation or renormalization:
// the surviving (non-excluded) links keep their trained byte
// fractions p(l|f) = B(f,l)/B(f). The sum of the returned fractions
// is the share of the tuple's training bytes still routable — a
// confidence signal the geographic completion uses to decide how much
// probability mass to spend on alternates.
func (h *Historical) PredictRaw(q Query) []Prediction {
	stored, ok := h.table[h.set.Project(q.Flow)]
	if !ok {
		return nil
	}
	preds := make([]Prediction, 0, len(stored))
	for _, p := range stored {
		if q.excluded(p.Link) {
			continue
		}
		preds = append(preds, p)
	}
	return preds
}

// NumTuples reports how many distinct flow tuples the model holds;
// model size is linear in this count (Table 3).
func (h *Historical) NumTuples() int { return len(h.table) }

// NumEntries reports the total number of (tuple, link) entries.
func (h *Historical) NumEntries() int {
	n := 0
	for _, preds := range h.table {
		n += len(preds)
	}
	return n
}

// String summarizes the model.
func (h *Historical) String() string {
	return fmt.Sprintf("%s{tuples: %d, entries: %d}", h.Name(), h.NumTuples(), h.NumEntries())
}
