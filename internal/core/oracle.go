package core

import "tipsy/internal/features"

// Oracle is the paper's restricted oracle (§5.1.2): it has perfect
// knowledge of the testing data — exactly which link received how
// many bytes for every flow tuple — but is limited to k predictions
// per flow. It is the accuracy ceiling for a model at a given feature
// granularity: Oracle_A cannot tell apart flows that collide in the A
// projection even with perfect knowledge.
//
// Structurally it is a Historical model trained on the test records
// themselves.
type Oracle struct {
	*Historical
}

// NewOracle builds the oracle for a feature set from the testing
// records.
func NewOracle(set features.Set, testRecs []features.Record) *Oracle {
	return &Oracle{Historical: TrainHistorical(set, testRecs, HistOpts{MaxLinksPerTuple: 1 << 20})}
}

// Name implements Predictor.
func (o *Oracle) Name() string { return "Oracle_" + o.Set().String() }
