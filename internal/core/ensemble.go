package core

import "strings"

// Ensemble is the paper's sequential model composition (§3.3.1,
// "A/B means sequential composition"): the first component that has
// any prediction for a flow answers, so the most specific model wins
// and less specific models contribute transfer learning for tuples
// the specific ones never saw.
type Ensemble struct {
	models []Predictor
}

// NewEnsemble composes models in fallback order, most specific first
// — e.g. Hist_AP, Hist_AL, Hist_A for the paper's Hist_AP/AL/A.
func NewEnsemble(models ...Predictor) *Ensemble {
	return &Ensemble{models: models}
}

// Name implements Predictor, deriving the paper's slash notation from
// the components: Historical components contribute their feature-set
// suffix, anything else its full name.
func (e *Ensemble) Name() string {
	parts := make([]string, 0, len(e.models))
	allHist := true
	for _, m := range e.models {
		name := m.Name()
		if suffix, ok := strings.CutPrefix(name, "Hist_"); ok {
			parts = append(parts, suffix)
		} else {
			parts = append(parts, name)
			allHist = false
		}
	}
	if allHist {
		return "Hist_" + strings.Join(parts, "/")
	}
	return strings.Join(parts, "/")
}

// Predict implements Predictor: the first component with a non-empty
// answer wins.
func (e *Ensemble) Predict(q Query) []Prediction {
	for _, m := range e.models {
		if preds := m.Predict(q); len(preds) > 0 {
			return preds
		}
	}
	return nil
}

// Components returns the composed models in fallback order.
func (e *Ensemble) Components() []Predictor { return e.models }
