package core

import (
	"bytes"
	"errors"
	"testing"
)

func TestFramedRoundTrip(t *testing.T) {
	payload := []byte(`{"version":1,"entries":[]}`)
	var buf bytes.Buffer
	if err := WriteFramed(&buf, BundleManifestMagic, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFramed(bytes.NewReader(buf.Bytes()), BundleManifestMagic)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}
}

func TestFramedRejectsCorruption(t *testing.T) {
	payload := []byte("hello framed world")
	var buf bytes.Buffer
	if err := WriteFramed(&buf, BundleManifestMagic, payload); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a payload byte: checksum must catch it.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-1] ^= 0xff
	if _, err := ReadFramed(bytes.NewReader(flipped), BundleManifestMagic); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("corrupt payload: err %v, want ErrCorruptSnapshot", err)
	}

	// Wrong magic: refused before any payload read.
	if _, err := ReadFramed(bytes.NewReader(raw), checkpointMagic); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("wrong magic: err %v, want ErrBadSnapshot", err)
	}

	// Truncated frame.
	if _, err := ReadFramed(bytes.NewReader(raw[:len(raw)-3]), BundleManifestMagic); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestFramedMagicLength(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFramed(&buf, "short", nil); err == nil {
		t.Fatal("short magic accepted on write")
	}
	if _, err := ReadFramed(&buf, "toolongmagicvalue"); err == nil {
		t.Fatal("long magic accepted on read")
	}
}
