package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tipsy/internal/features"
	"tipsy/internal/wan"
)

func TestHistoricalSaveLoad(t *testing.T) {
	f1 := flow(64496, 0x0b000100, 3, 9, 1)
	f2 := flow(174, 0x0b000200, 5, 9, 2)
	recs := []features.Record{
		rec(f1, 1, 700), rec(f1, 2, 300), rec(f2, 9, 50),
	}
	orig := TrainHistorical(features.SetAP, recs, DefaultHistOpts())

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadHistorical(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != orig.Name() || back.NumTuples() != orig.NumTuples() {
		t.Fatalf("metadata mismatch: %s/%d vs %s/%d",
			back.Name(), back.NumTuples(), orig.Name(), orig.NumTuples())
	}
	for _, f := range []features.FlowFeatures{f1, f2} {
		a := orig.Predict(Query{Flow: f, K: 3})
		b := back.Predict(Query{Flow: f, K: 3})
		if !reflect.DeepEqual(a, b) {
			t.Errorf("predictions diverge after round trip: %+v vs %+v", a, b)
		}
	}
	// Exclusions behave identically too.
	excl := func(l wan.LinkID) bool { return l == 1 }
	a := orig.Predict(Query{Flow: f1, K: 3, Exclude: excl})
	b := back.Predict(Query{Flow: f1, K: 3, Exclude: excl})
	if !reflect.DeepEqual(a, b) {
		t.Error("excluded predictions diverge after round trip")
	}
}

func TestLoadHistoricalRejectsGarbage(t *testing.T) {
	if _, err := LoadHistorical(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage should not load")
	}
	// Longer garbage that could swallow a whole frame header.
	junk := bytes.Repeat([]byte{0xA5}, 4096)
	if _, err := LoadHistorical(bytes.NewReader(junk)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("err = %v, want ErrBadSnapshot", err)
	}
}

func savedModel(t *testing.T) (*Historical, []byte) {
	t.Helper()
	f1 := flow(64496, 0x0b000100, 3, 9, 1)
	recs := []features.Record{rec(f1, 1, 700), rec(f1, 2, 300)}
	h := TrainHistorical(features.SetAP, recs, DefaultHistOpts())
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return h, buf.Bytes()
}

func TestLoadHistoricalRejectsTruncation(t *testing.T) {
	// Every proper prefix of a valid snapshot must fail descriptively —
	// the shape a crash mid-write (without atomic rename) would leave.
	_, full := savedModel(t)
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := LoadHistorical(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d loaded successfully", cut, len(full))
		}
	}
}

func TestLoadHistoricalRejectsBitrot(t *testing.T) {
	_, full := savedModel(t)
	// Flip one payload byte: the checksum must catch it.
	rotten := append([]byte(nil), full...)
	rotten[len(rotten)-3] ^= 0x40
	if _, err := LoadHistorical(bytes.NewReader(rotten)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Errorf("err = %v, want ErrCorruptSnapshot", err)
	}
}

func TestSaveFileAtomicRoundTrip(t *testing.T) {
	h, _ := savedModel(t)
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := h.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second save: rename must replace in place.
	if err := h.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadHistoricalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTuples() != h.NumTuples() {
		t.Errorf("tuples = %d, want %d", back.NumTuples(), h.NumTuples())
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want just the model", len(entries))
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	f1 := flow(64496, 0x0b000100, 3, 9, 1)
	f2 := flow(174, 0x0b000200, 5, 9, 2)
	recs := []features.Record{rec(f1, 1, 700), rec(f1, 2, 300), rec(f2, 9, 50)}
	ck := &Checkpoint{
		TrainedAt: 96,
		Models: []*Historical{
			TrainHistorical(features.SetAP, recs, DefaultHistOpts()),
			TrainHistorical(features.SetA, recs, DefaultHistOpts()),
		},
	}
	path := filepath.Join(t.TempDir(), "ck.bin")
	if err := ck.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.TrainedAt != 96 || len(back.Models) != 2 {
		t.Fatalf("checkpoint metadata: trainedAt=%d models=%d", back.TrainedAt, len(back.Models))
	}
	for i, m := range back.Models {
		if m.Name() != ck.Models[i].Name() {
			t.Errorf("model %d is %s, want %s", i, m.Name(), ck.Models[i].Name())
		}
		a := ck.Models[i].Predict(Query{Flow: f1, K: 3})
		b := m.Predict(Query{Flow: f1, K: 3})
		if !reflect.DeepEqual(a, b) {
			t.Errorf("model %d predictions diverge after checkpoint round trip", i)
		}
	}
}

func TestLoadCheckpointRejectsModelSnapshot(t *testing.T) {
	// A plain model file is framed identically; the gob payload must
	// still refuse to masquerade as a checkpoint.
	_, raw := savedModel(t)
	if _, err := LoadCheckpoint(bytes.NewReader(raw)); err == nil {
		t.Error("model snapshot loaded as a checkpoint")
	}
}
