package core

import (
	"bytes"
	"reflect"
	"testing"

	"tipsy/internal/features"
	"tipsy/internal/wan"
)

func TestHistoricalSaveLoad(t *testing.T) {
	f1 := flow(64496, 0x0b000100, 3, 9, 1)
	f2 := flow(174, 0x0b000200, 5, 9, 2)
	recs := []features.Record{
		rec(f1, 1, 700), rec(f1, 2, 300), rec(f2, 9, 50),
	}
	orig := TrainHistorical(features.SetAP, recs, DefaultHistOpts())

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadHistorical(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != orig.Name() || back.NumTuples() != orig.NumTuples() {
		t.Fatalf("metadata mismatch: %s/%d vs %s/%d",
			back.Name(), back.NumTuples(), orig.Name(), orig.NumTuples())
	}
	for _, f := range []features.FlowFeatures{f1, f2} {
		a := orig.Predict(Query{Flow: f, K: 3})
		b := back.Predict(Query{Flow: f, K: 3})
		if !reflect.DeepEqual(a, b) {
			t.Errorf("predictions diverge after round trip: %+v vs %+v", a, b)
		}
	}
	// Exclusions behave identically too.
	excl := func(l wan.LinkID) bool { return l == 1 }
	a := orig.Predict(Query{Flow: f1, K: 3, Exclude: excl})
	b := back.Predict(Query{Flow: f1, K: 3, Exclude: excl})
	if !reflect.DeepEqual(a, b) {
		t.Error("excluded predictions diverge after round trip")
	}
}

func TestLoadHistoricalRejectsGarbage(t *testing.T) {
	if _, err := LoadHistorical(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage should not load")
	}
}
