package core

import (
	"reflect"
	"testing"

	"tipsy/internal/geo"
	"tipsy/internal/wan"
)

func geoNearestSetup() (*GeoNearest, *staticDir) {
	metros := geo.World()
	dir := &staticDir{links: map[wan.LinkID]wan.Link{
		1: {ID: 1, Metro: 1, PeerAS: 5},
		2: {ID: 2, Metro: 2, PeerAS: 5},
		3: {ID: 3, Metro: 40, PeerAS: 5},
		4: {ID: 4, Metro: 1, PeerAS: 6},
	}}
	return NewGeoNearest(dir, metros), dir
}

func TestGeoNearestPrefersOwnNearbyLinks(t *testing.T) {
	g, _ := geoNearestSetup()
	if g.Name() != "GeoNearest" {
		t.Errorf("Name = %q", g.Name())
	}
	// AS 5, located at metro 1: its own link in metro 1 ranks first,
	// the other AS's co-located link comes after all of AS 5's.
	f := flow(5, 0, 1, 1, 1)
	preds := g.Predict(Query{Flow: f, K: 4})
	checkNormalized(t, preds)
	if len(preds) != 4 {
		t.Fatalf("got %d predictions, want 4", len(preds))
	}
	if preds[0].Link != 1 {
		t.Errorf("nearest own link should rank first: %+v", preds)
	}
	if preds[3].Link != 4 {
		t.Errorf("foreign link should rank last: %+v", preds)
	}
}

func TestGeoNearestHonoursExclusions(t *testing.T) {
	g, _ := geoNearestSetup()
	f := flow(5, 0, 1, 1, 1)
	preds := g.Predict(Query{Flow: f, K: 3, Exclude: func(l wan.LinkID) bool { return l == 1 }})
	checkNormalized(t, preds)
	for _, p := range preds {
		if p.Link == 1 {
			t.Fatalf("excluded link predicted: %+v", preds)
		}
	}
	if len(preds) == 0 {
		t.Fatal("fallback must still answer with the excluded link gone")
	}
}

func TestGeoNearestAlwaysAnswersAndIsDeterministic(t *testing.T) {
	g, _ := geoNearestSetup()
	// A flow from an AS with no links of its own, at an arbitrary
	// metro: the fallback must still produce a ranking, and the same
	// query must produce the same answer.
	f := flow(999, 0, 17, 2, 0)
	a := g.Predict(Query{Flow: f, K: 3})
	b := g.Predict(Query{Flow: f, K: 3})
	if len(a) == 0 {
		t.Fatal("no answer for a model-less flow")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GeoNearest not deterministic")
	}
}
