package core

import (
	"math"
	"sort"

	"tipsy/internal/features"
	"tipsy/internal/wan"
)

// NBOpts tunes Naïve Bayes training.
type NBOpts struct {
	// Alpha is the additive (Laplace) smoothing weight.
	Alpha float64
	// CandidateCap bounds how many top-scoring links a prediction
	// considers when converting log-scores to fractions.
	CandidateCap int
}

// DefaultNBOpts returns the standard options.
func DefaultNBOpts() NBOpts { return NBOpts{Alpha: 1, CandidateCap: 16} }

// nbDim identifies one feature dimension of the classifier.
type nbDim uint8

const (
	dimAS nbDim = iota
	dimPrefix
	dimLoc
	dimRegion
	dimType
)

func dimsFor(set features.Set) []nbDim {
	switch set {
	case features.SetAP:
		return []nbDim{dimAS, dimPrefix, dimRegion, dimType}
	case features.SetAL:
		return []nbDim{dimAS, dimLoc, dimRegion, dimType}
	default:
		return []nbDim{dimAS, dimRegion, dimType}
	}
}

func dimValue(d nbDim, f features.FlowFeatures) uint64 {
	switch d {
	case dimAS:
		return uint64(f.AS)
	case dimPrefix:
		return uint64(f.Prefix)
	case dimLoc:
		return uint64(f.Loc)
	case dimRegion:
		return uint64(f.Region)
	default:
		return uint64(f.Type)
	}
}

// NaiveBayes is the Appendix A classifier: p(l|f) ∝ p(l)·Π p(f_i|l)
// with byte-weighted counts and Laplace smoothing. Unlike the
// Historical model it can predict for tuples never seen in training,
// as long as the individual feature values were seen — its transfer
// learning advantage, paid for with O(l log l) prediction cost and a
// much larger model (Table 11).
type NaiveBayes struct {
	set   features.Set
	opts  NBOpts
	dims  []nbDim
	links []wan.LinkID // classes, ascending

	logPrior map[wan.LinkID]float64
	// cond[d][value][link] = bytes of feature value seen on link.
	cond map[nbDim]map[uint64]map[wan.LinkID]float64
	// byLink[d][link] = total bytes on link (denominator per dim).
	byLink map[wan.LinkID]float64
	// vocab[d] = number of distinct values of dimension d.
	vocab map[nbDim]int
}

// TrainNaiveBayes builds the classifier in one pass over the records.
func TrainNaiveBayes(set features.Set, recs []features.Record, opts NBOpts) *NaiveBayes {
	if opts.Alpha <= 0 {
		opts.Alpha = DefaultNBOpts().Alpha
	}
	if opts.CandidateCap <= 0 {
		opts.CandidateCap = DefaultNBOpts().CandidateCap
	}
	nb := &NaiveBayes{
		set:      set,
		opts:     opts,
		dims:     dimsFor(set),
		logPrior: make(map[wan.LinkID]float64),
		cond:     make(map[nbDim]map[uint64]map[wan.LinkID]float64),
		byLink:   make(map[wan.LinkID]float64),
		vocab:    make(map[nbDim]int),
	}
	for _, d := range nb.dims {
		nb.cond[d] = make(map[uint64]map[wan.LinkID]float64)
	}
	var total float64
	for i := range recs {
		r := &recs[i]
		if r.Bytes <= 0 {
			continue
		}
		total += r.Bytes
		nb.byLink[r.Link] += r.Bytes
		for _, d := range nb.dims {
			v := dimValue(d, r.Flow)
			m := nb.cond[d][v]
			if m == nil {
				m = make(map[wan.LinkID]float64, 2)
				nb.cond[d][v] = m
			}
			m[r.Link] += r.Bytes
		}
	}
	for l, b := range nb.byLink {
		nb.links = append(nb.links, l)
		nb.logPrior[l] = math.Log(b / total)
	}
	sort.Slice(nb.links, func(i, j int) bool { return nb.links[i] < nb.links[j] })
	for _, d := range nb.dims {
		nb.vocab[d] = len(nb.cond[d])
	}
	return nb
}

// Name implements Predictor.
func (nb *NaiveBayes) Name() string { return "NB_" + nb.set.String() }

// Set returns the feature set the model was trained over.
func (nb *NaiveBayes) Set() features.Set { return nb.set }

// Predict implements Predictor: score every class (link), rank, and
// exp-normalize the top scores into byte fractions.
func (nb *NaiveBayes) Predict(q Query) []Prediction {
	type scored struct {
		link  wan.LinkID
		score float64
	}
	cands := make([]scored, 0, len(nb.links))
	for _, l := range nb.links {
		if q.excluded(l) {
			continue
		}
		s := nb.logPrior[l]
		denomBase := nb.byLink[l]
		usable := true
		for _, d := range nb.dims {
			v := dimValue(d, q.Flow)
			vocab := float64(nb.vocab[d])
			if vocab == 0 {
				usable = false
				break
			}
			num := nb.opts.Alpha
			if m, ok := nb.cond[d][v]; ok {
				num += m[l]
			}
			s += math.Log(num / (denomBase + nb.opts.Alpha*vocab))
		}
		if usable {
			cands = append(cands, scored{l, s})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].link < cands[j].link
	})
	if len(cands) > nb.opts.CandidateCap {
		cands = cands[:nb.opts.CandidateCap]
	}
	// Softmax over the retained scores gives the predicted fractions.
	maxS := cands[0].score
	var sum float64
	preds := make([]Prediction, len(cands))
	for i, c := range cands {
		w := math.Exp(c.score - maxS)
		preds[i] = Prediction{Link: c.link, Frac: w}
		sum += w
	}
	for i := range preds {
		preds[i].Frac /= sum
	}
	return topK(preds, q.K)
}

// NumClasses reports how many links (classes) the model scores.
func (nb *NaiveBayes) NumClasses() int { return len(nb.links) }

// NumParameters reports the total conditional-table entries, the
// dominant term of the Table 11 size analysis.
func (nb *NaiveBayes) NumParameters() int {
	n := 0
	for _, d := range nb.dims {
		for _, m := range nb.cond[d] {
			n += len(m)
		}
	}
	return n
}
