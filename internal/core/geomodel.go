package core

import (
	"sort"

	"tipsy/internal/geo"
	"tipsy/internal/wan"
)

// GeoCompletion implements the paper's Hist_AL+G strategy (§3.3.1,
// "Geographic distance of peering"): when the underlying Historical
// model has fewer than k usable links for a flow — typically because
// its known links are excluded by an outage or withdrawal — take the
// peering AS and ingress location of the best match (ignoring
// exclusions), rank that AS's other peering links by geographic
// distance to it, and complete the prediction list with them. This
// captures hot-potato routing: after a withdrawal, the neighbor
// usually re-routes to its nearest remaining interconnect.
type GeoCompletion struct {
	inner  *Historical
	links  wan.Directory
	metros *geo.DB
}

// NewGeoCompletion wraps a Historical model (the paper evaluates it
// over Hist_AL) with geographic completion using the WAN's link
// directory.
func NewGeoCompletion(inner *Historical, links wan.Directory, metros *geo.DB) *GeoCompletion {
	return &GeoCompletion{inner: inner, links: links, metros: metros}
}

// Name implements Predictor.
func (g *GeoCompletion) Name() string { return g.inner.Name() + "+G" }

// Predict implements Predictor. The completion spends exactly the
// probability mass the exclusions destroyed: if the surviving trained
// links still cover the tuple's byte mass, the geographic alternates
// receive (almost) nothing and the model behaves like the inner one;
// if the dominant links are gone, the nearest other interconnects of
// the same peer AS inherit the missing mass, geometrically weighted
// by distance rank.
func (g *GeoCompletion) Predict(q Query) []Prediction {
	raw := g.inner.PredictRaw(q)
	surviving := 0.0
	for _, p := range raw {
		surviving += p.Frac
	}
	missing := 1 - surviving
	if missing <= 1e-9 || (q.K > 0 && len(raw) >= q.K) {
		return topK(raw, q.K)
	}

	// Anchor on the best match with exclusions lifted: the link the
	// flow would have used, whose peer AS and location seed the
	// geographic ranking.
	anchorQ := q
	anchorQ.Exclude = nil
	anchorQ.K = 1
	anchor := g.inner.Predict(anchorQ)
	if len(anchor) == 0 {
		return topK(raw, q.K)
	}
	anchorLink, ok := g.links.Link(anchor[0].Link)
	if !ok {
		return topK(raw, q.K)
	}

	have := make(map[wan.LinkID]bool, len(raw))
	for _, p := range raw {
		have[p.Link] = true
	}
	type cand struct {
		id wan.LinkID
		d  float64
	}
	var cands []cand
	for _, id := range g.links.LinksOfAS(anchorLink.PeerAS) {
		if id == anchorLink.ID || have[id] || q.excluded(id) {
			continue
		}
		l, ok := g.links.Link(id)
		if !ok {
			continue
		}
		cands = append(cands, cand{id, g.metros.Distance(anchorLink.Metro, l.Metro)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})

	// Surviving trained links keep their relative ranking — the
	// completion is strictly a tail, "used to complete the list of
	// interfaces returned" (§3.3.1). Completion links receive a
	// geometrically decaying share of the destroyed mass, capped so
	// they never displace or badly dilute real observations; with no
	// survivors at all, the geographically nearest alternate is the
	// best single hot-potato guess and dominates.
	if surviving > 0 {
		for i := range raw {
			raw[i].Frac /= surviving
		}
	}
	// The completion spends mass proportional to what the exclusions
	// destroyed, but never shoves aside real observations: with no
	// usable survivors the nearest alternate is a full-size hot-potato
	// bet (where the paper's +G earns its keep on unseen withdrawals,
	// Table 7); with survivors present the completion stays a tail
	// below them (where the paper's +G tracks plain AL, Tables 4/6).
	var w float64
	if len(raw) == 0 || surviving < 0.005 {
		w = 0.55
	} else {
		w = minF(minF(0.25*missing, 0.5*raw[len(raw)-1].Frac), 0.10)
	}
	for _, c := range cands {
		raw = append(raw, Prediction{Link: c.id, Frac: w})
		w *= 0.45
	}
	return topK(raw, q.K)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
