package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tipsy/internal/bgp"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/wan"
)

// randomRecords builds a random but well-formed training set.
func randomRecords(rng *rand.Rand, n int) []features.Record {
	recs := make([]features.Record, n)
	for i := range recs {
		recs[i] = features.Record{
			Hour: wan.Hour(rng.Intn(100)),
			Flow: features.FlowFeatures{
				AS:     bgp.ASN(1 + rng.Intn(8)),
				Prefix: uint32(rng.Intn(16)) << 8,
				Loc:    geo.MetroID(1 + rng.Intn(5)),
				Region: wan.Region(1 + rng.Intn(4)),
				Type:   wan.ServiceType(1 + rng.Intn(3)),
			},
			Link:  wan.LinkID(1 + rng.Intn(12)),
			Bytes: float64(1 + rng.Intn(1_000_000)),
		}
	}
	return recs
}

// TestHistoricalInvariantsProperty checks, over random training sets
// and queries, the Historical model's structural guarantees: sorted
// descending fractions, total mass at most 1 (exactly 1 when nothing
// is truncated or excluded), no excluded links, and per-tuple
// fractions equal to the trained byte ratios.
func TestHistoricalInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	check := func() bool {
		recs := randomRecords(rng, 50+rng.Intn(200))
		set := features.Set(rng.Intn(3))
		h := TrainHistorical(set, recs, DefaultHistOpts())

		// Reference byte counts per tuple.
		ref := map[features.Tuple]map[wan.LinkID]float64{}
		tot := map[features.Tuple]float64{}
		for _, r := range recs {
			tu := set.Project(r.Flow)
			if ref[tu] == nil {
				ref[tu] = map[wan.LinkID]float64{}
			}
			ref[tu][r.Link] += r.Bytes
			tot[tu] += r.Bytes
		}

		for i := 0; i < 20; i++ {
			r := recs[rng.Intn(len(recs))]
			k := rng.Intn(5)
			excl := wan.LinkID(1 + rng.Intn(12))
			var exclude func(wan.LinkID) bool
			if rng.Intn(2) == 0 {
				exclude = func(l wan.LinkID) bool { return l == excl }
			}
			preds := h.Predict(Query{Flow: r.Flow, K: k, Exclude: exclude})
			var sum float64
			for j, p := range preds {
				sum += p.Frac
				if j > 0 && p.Frac > preds[j-1].Frac+1e-12 {
					return false // not sorted
				}
				if exclude != nil && p.Link == excl {
					return false // excluded link predicted
				}
				if p.Frac <= 0 {
					return false
				}
			}
			if sum > 1+1e-9 {
				return false
			}
			// Without exclusion or truncation, fractions must match
			// the byte ratios exactly.
			tu := set.Project(r.Flow)
			if exclude == nil && k == 0 && len(ref[tu]) <= DefaultHistOpts().MaxLinksPerTuple {
				for _, p := range preds {
					want := ref[tu][p.Link] / tot[tu]
					if math.Abs(p.Frac-want) > 1e-9 {
						return false
					}
				}
				if math.Abs(sum-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return check() }, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEnsembleFirstNonEmptyProperty: the ensemble's answer is always
// exactly the first component's non-empty answer.
func TestEnsembleFirstNonEmptyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func() bool {
		recsA := randomRecords(rng, 60)
		recsB := randomRecords(rng, 60)
		m1 := TrainHistorical(features.SetAP, recsA, DefaultHistOpts())
		m2 := TrainHistorical(features.SetA, recsB, DefaultHistOpts())
		e := NewEnsemble(m1, m2)
		for i := 0; i < 30; i++ {
			q := Query{Flow: randomRecords(rng, 1)[0].Flow, K: 3}
			got := e.Predict(q)
			want := m1.Predict(q)
			if len(want) == 0 {
				want = m2.Predict(q)
			}
			if len(got) != len(want) {
				return false
			}
			for j := range got {
				if got[j] != want[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return check() }, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEnsemblePermutationInvarianceProperty: training is an order-free
// aggregation, so permuting the training records must not change any
// ensemble prediction. This holds exactly (not just approximately)
// because per-tuple byte totals are sums of integer-valued float64s,
// accumulated per tuple — no ordering-dependent rounding survives.
func TestEnsemblePermutationInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	trainEnsemble := func(recs []features.Record) *Ensemble {
		return NewEnsemble(
			TrainHistorical(features.SetAP, recs, DefaultHistOpts()),
			TrainHistorical(features.SetAL, recs, DefaultHistOpts()),
			TrainHistorical(features.SetA, recs, DefaultHistOpts()),
		)
	}
	check := func() bool {
		recs := randomRecords(rng, 50+rng.Intn(150))
		shuffled := append([]features.Record(nil), recs...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		a, b := trainEnsemble(recs), trainEnsemble(shuffled)
		for i := 0; i < 30; i++ {
			q := Query{Flow: recs[rng.Intn(len(recs))].Flow, K: 1 + rng.Intn(4)}
			pa, pb := a.Predict(q), b.Predict(q)
			if len(pa) != len(pb) {
				return false
			}
			for j := range pa {
				if pa[j] != pb[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return check() }, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestHistoricalTopKProperty: for every k, the top-k prediction list
// is sorted by descending fraction, has at most k entries, total mass
// at most 1, and its link set is a prefix-consistent subset: top-k
// links are always a subset of top-(k+1) links.
func TestHistoricalTopKProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	check := func() bool {
		recs := randomRecords(rng, 60+rng.Intn(120))
		set := features.Set(rng.Intn(3))
		h := TrainHistorical(set, recs, DefaultHistOpts())
		for i := 0; i < 20; i++ {
			flow := recs[rng.Intn(len(recs))].Flow
			var prev []Prediction
			for k := 1; k <= 6; k++ {
				preds := h.Predict(Query{Flow: flow, K: k})
				if len(preds) > k {
					return false
				}
				var sum float64
				for j, p := range preds {
					sum += p.Frac
					if p.Frac <= 0 {
						return false
					}
					if j > 0 && p.Frac > preds[j-1].Frac+1e-12 {
						return false // not sorted descending
					}
				}
				if sum > 1+1e-9 {
					return false
				}
				// Prefix consistency: the k-1 list is literally the
				// head of the k list.
				for j := range prev {
					if preds[j].Link != prev[j].Link {
						return false
					}
				}
				prev = preds
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return check() }, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestNaiveBayesInvariantsProperty: NB predictions are sorted, sum to
// at most 1, and never include excluded links.
func TestNaiveBayesInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	check := func() bool {
		recs := randomRecords(rng, 80)
		nb := TrainNaiveBayes(features.SetAL, recs, DefaultNBOpts())
		for i := 0; i < 20; i++ {
			r := recs[rng.Intn(len(recs))]
			excl := wan.LinkID(1 + rng.Intn(12))
			preds := nb.Predict(Query{Flow: r.Flow, K: 3,
				Exclude: func(l wan.LinkID) bool { return l == excl }})
			var sum float64
			for j, p := range preds {
				sum += p.Frac
				if p.Link == excl || p.Frac <= 0 {
					return false
				}
				if j > 0 && p.Frac > preds[j-1].Frac+1e-12 {
					return false
				}
			}
			if sum > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return check() }, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
