package cms

import (
	"strings"
	"testing"

	"tipsy/internal/core"
	"tipsy/internal/eval"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/netsim"
	"tipsy/internal/pipeline"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

// scenario builds a small simulated WAN with one engineered
// congestion incident: the busiest link is inflated past the CMS
// trigger threshold at hour congestStart.
type scenario struct {
	sim   *netsim.Sim
	w     *traffic.Workload
	tipsy core.Predictor
	hot   wan.LinkID
	start wan.Hour
}

func buildScenario(t *testing.T, seed int64) *scenario {
	t.Helper()
	metros := geo.World()
	g := topology.Generate(topology.TestGenConfig(seed), metros)
	w := traffic.Generate(traffic.TestConfig(seed), g, metros)
	cfg := netsim.DefaultConfig(seed)
	cfg.OutagesPerLinkYear = 0 // isolate the engineered incident
	cfg.Workers = 4
	sim := netsim.New(cfg, g, metros, w)

	// Train TIPSY on 3 days of normal traffic.
	agg := pipeline.NewAggregator(sim.GeoIP(), sim.DstMetadata)
	sim.Run(netsim.RunOptions{From: 0, To: 72, Sink: agg})
	train := agg.Records()
	if len(train) == 0 {
		t.Fatal("no training records")
	}
	hAL := core.TrainHistorical(features.SetAL, train, core.DefaultHistOpts())
	hAP := core.TrainHistorical(features.SetAP, train, core.DefaultHistOpts())
	hA := core.TrainHistorical(features.SetA, train, core.DefaultHistOpts())
	model := core.NewEnsemble(hAP, hAL, hA)

	// Pick the busiest link and push it over threshold from hour 72.
	var hot wan.LinkID
	var best float64
	for _, id := range sim.Links() {
		var sum float64
		for h := wan.Hour(48); h < 72; h++ {
			sum += sim.LinkBytes(h, id)
		}
		if sum > best {
			best, hot = sum, id
		}
	}
	if hot == 0 {
		t.Fatal("no traffic-bearing link")
	}
	scale := sim.InflateToUtilization(hot, 0.92, 72, 76)
	if scale <= 1 {
		t.Fatal("inflation had no effect")
	}
	return &scenario{sim: sim, w: w, tipsy: model, hot: hot, start: 72}
}

func runWithCMS(t *testing.T, sc *scenario, blind bool, hours wan.Hour) *CMS {
	t.Helper()
	cfg := DefaultConfig(sc.w.Anycast)
	cfg.Blind = blind
	c := New(cfg, sc.sim, sc.tipsy, sc.sim.GeoIP(), sc.sim.DstMetadata)
	sc.sim.Run(netsim.RunOptions{
		From: sc.start, To: sc.start + hours,
		Sink:      c,
		OnHourEnd: c.Step,
	})
	return c
}

func hotUtil(sc *scenario, h wan.Hour) float64 {
	l, _ := sc.sim.Link(sc.hot)
	return l.Utilization(sc.sim.LinkBytes(h, sc.hot), 3600)
}

func TestCMSDetectsAndMitigates(t *testing.T) {
	sc := buildScenario(t, 31)
	c := runWithCMS(t, sc, false, 6)

	events := c.Events()
	if len(events) == 0 {
		t.Fatal("no congestion event detected")
	}
	found := false
	for _, ev := range events {
		if ev.Link == sc.hot {
			found = true
			if ev.Util < 0.85 {
				t.Errorf("event recorded at %.2f utilization, below threshold", ev.Util)
			}
		}
	}
	if !found {
		t.Fatalf("no event on the congested link %d: %+v", sc.hot, events)
	}
	if len(c.Active()) == 0 {
		t.Fatal("no withdrawal issued")
	}
	// Utilization on the hot link must come down after a few control
	// cycles (mitigation issued at hour end takes effect the next
	// hour, and the CMS keeps withdrawing while the link stays hot).
	minAfter := 10.0
	for h := sc.start + 1; h < sc.start+6; h++ {
		if u := hotUtil(sc, h); u < minAfter {
			minAfter = u
		}
	}
	if minAfter >= 0.85 {
		t.Errorf("link never left congestion after mitigation: best %.2f", minAfter)
	}
	if !strings.Contains(c.Summary(), "tipsy") {
		t.Errorf("summary: %s", c.Summary())
	}
}

func TestCMSSafetyAvoidsOverloadingTargets(t *testing.T) {
	sc := buildScenario(t, 32)
	c := runWithCMS(t, sc, false, 6)
	// Every link TIPSY predicted to absorb shifted traffic must stay
	// under the trigger threshold afterwards (the whole point of
	// consulting TIPSY before withdrawing).
	for _, ev := range c.Events() {
		if ev.Link != sc.hot || len(ev.Withdrawn) == 0 {
			continue
		}
		for target := range ev.Predicted {
			l, _ := sc.sim.Link(target)
			u := l.Utilization(sc.sim.LinkBytes(ev.Hour+1, target), 3600)
			if u >= 0.95 {
				t.Errorf("predicted target link %d at %.2f utilization after shift", target, u)
			}
		}
	}
}

func TestCMSBlindStillWithdraws(t *testing.T) {
	sc := buildScenario(t, 33)
	c := runWithCMS(t, sc, true, 5)
	if len(c.Active()) == 0 {
		t.Fatal("blind mode should withdraw without safety checks")
	}
	if !strings.Contains(c.Summary(), "blind") {
		t.Errorf("summary: %s", c.Summary())
	}
	deferred := 0
	for _, ev := range c.Events() {
		deferred += ev.Deferred
	}
	if deferred != 0 {
		t.Error("blind mode must not defer withdrawals")
	}
}

func TestCMSReannouncesWhenCalm(t *testing.T) {
	sc := buildScenario(t, 34)
	cfg := DefaultConfig(sc.w.Anycast)
	cfg.CalmHours = 1
	c := New(cfg, sc.sim, sc.tipsy, sc.sim.GeoIP(), sc.sim.DstMetadata)

	inflated := sc.sim.FlowsVia(sc.hot, sc.start)
	h := sc.start
	sc.sim.Run(netsim.RunOptions{
		From: h, To: h + 2, Sink: c, OnHourEnd: c.Step,
	})
	if len(c.Active()) == 0 {
		t.Skip("no withdrawal issued in this scenario")
	}
	// The incident subsides: scale the inflated flows back down hard.
	sc.sim.ScaleFlows(inflated, 0.05)
	sc.sim.Run(netsim.RunOptions{
		From: h + 2, To: h + 8, Sink: c, OnHourEnd: c.Step,
	})
	re := 0
	for _, w := range c.Active() {
		if w.Reannounced {
			re++
			if sc.sim.IsWithdrawn(w.Link, w.Prefix) {
				t.Error("re-announced prefix still withdrawn in the network")
			}
		}
	}
	if re == 0 {
		t.Error("no withdrawal was re-announced after the incident subsided")
	}
}

func TestCMSHonorsEnvAccuracy(t *testing.T) {
	// Sanity: the predictor handed to CMS in the scenario has real
	// skill on the scenario's own traffic.
	sc := buildScenario(t, 35)
	agg := pipeline.NewAggregator(sc.sim.GeoIP(), sc.sim.DstMetadata)
	sc.sim.Run(netsim.RunOptions{From: sc.start, To: sc.start + 4, Sink: agg})
	recs := agg.Records()
	acc := eval.Accuracy(sc.tipsy, recs, eval.Options{Ks: []int{3}})
	if acc[3] < 0.5 {
		t.Errorf("scenario predictor top-3 accuracy only %.0f%%", acc[3]*100)
	}
}
