// Package cms implements the congestion mitigation system of §4.4:
// it monitors ingress peering-link utilization, and when a link stays
// above threshold it selects the fewest destination prefixes (top by
// traffic volume) whose withdrawal brings utilization back down,
// asks TIPSY where each prefix's traffic would shift, checks the
// predicted shifts against the other links' spare capacity, injects
// BGP withdrawals for the safe choices, and re-announces once traffic
// calms down. A "blind" mode reproduces the pre-TIPSY behaviour the
// paper describes — withdraw and hope — which is the baseline that
// produces cascading congestion like the §2 incident.
package cms

import (
	"fmt"
	"sort"
	"sync"

	"tipsy/internal/bgp"
	"tipsy/internal/core"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/ipfix"
	"tipsy/internal/wan"
)

// Network is the control surface the CMS drives: link metadata,
// utilization ground truth, and BGP announcement control. The
// simulator implements it.
type Network interface {
	wan.Directory
	Withdraw(link wan.LinkID, prefix bgp.Prefix)
	Announce(link wan.LinkID, prefix bgp.Prefix)
	IsWithdrawn(link wan.LinkID, prefix bgp.Prefix) bool
	LinkBytes(h wan.Hour, link wan.LinkID) float64
}

// Config tunes the mitigation behaviour.
type Config struct {
	// UtilThreshold triggers mitigation; the paper uses 85%
	// utilization sustained for at least 4 minutes. At the
	// substrate's hourly granularity one hot hour triggers.
	UtilThreshold float64
	// TargetUtil is the utilization mitigation aims to get back
	// under, and the level shifted traffic must not push other links
	// beyond for a withdrawal to be considered safe.
	TargetUtil float64
	// ReannounceBelow re-announces a withdrawn prefix once the
	// congested link has stayed under this utilization.
	ReannounceBelow float64
	// CalmHours is how many consecutive calm hours precede
	// re-announcement.
	CalmHours int
	// MaxWithdrawalsPerEvent bounds how many prefixes one congestion
	// event may withdraw.
	MaxWithdrawalsPerEvent int
	// Blind disables TIPSY safety checks: withdraw top prefixes by
	// volume without predicting where traffic lands (the pre-TIPSY
	// baseline).
	Blind bool
	// Anycast lists the prefixes announced by the WAN, at the
	// granularity the CMS withdraws (it does not de-aggregate, §4.4).
	Anycast []bgp.Prefix
}

// DefaultConfig matches §4.4.
func DefaultConfig(anycast []bgp.Prefix) Config {
	return Config{
		UtilThreshold:          0.85,
		TargetUtil:             0.80,
		ReannounceBelow:        0.60,
		CalmHours:              2,
		MaxWithdrawalsPerEvent: 4,
		Anycast:                anycast,
	}
}

// Withdrawal is one active mitigation action.
type Withdrawal struct {
	Link          wan.LinkID
	Prefix        bgp.Prefix
	IssuedAt      wan.Hour
	calmRun       int
	Reannounced   bool
	ReannouncedAt wan.Hour
}

// Event records one congestion detection and what was done about it.
type Event struct {
	Hour      wan.Hour
	Link      wan.LinkID
	Util      float64
	Withdrawn []bgp.Prefix
	// Deferred counts prefixes TIPSY deemed unsafe to shift.
	Deferred int
	// Predicted maps target links to the extra bytes TIPSY expected
	// them to absorb from this event's withdrawals.
	Predicted map[wan.LinkID]float64
}

// CMS is the mitigation engine. Feed it flow records during each hour
// (it is a netsim.RecordSink) and call Step at hour end.
type CMS struct {
	//tipsy:nolock set in New and read-only afterwards
	cfg Config
	//tipsy:nolock set in New and read-only afterwards
	net Network
	//tipsy:nolock set in New and read-only afterwards
	tipsy core.Predictor
	//tipsy:nolock set in New and read-only afterwards
	geoip *geo.GeoIP
	//tipsy:nolock set in New and read-only afterwards
	meta func(uint32) (wan.Region, wan.ServiceType, bool)

	mu sync.Mutex
	// traffic[link][prefixIdx][flow] = bytes in the current hour
	traffic map[wan.LinkID]map[int]map[features.FlowFeatures]float64
	active  []*Withdrawal
	events  []Event
	hot     map[wan.LinkID]int // consecutive hot hours
}

// New creates a CMS over the network using the given trained
// predictor for what-if queries.
func New(cfg Config, net Network, tipsy core.Predictor, geoip *geo.GeoIP,
	meta func(uint32) (wan.Region, wan.ServiceType, bool)) *CMS {
	if cfg.MaxWithdrawalsPerEvent <= 0 {
		cfg.MaxWithdrawalsPerEvent = 4
	}
	return &CMS{
		cfg: cfg, net: net, tipsy: tipsy, geoip: geoip, meta: meta,
		traffic: make(map[wan.LinkID]map[int]map[features.FlowFeatures]float64),
		hot:     make(map[wan.LinkID]int),
	}
}

// Record implements the telemetry sink: the CMS identifies, in the
// IPFIX data, which flows arrive on which link for which announced
// prefix (§4.4).
func (c *CMS) Record(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) {
	pi := c.prefixIndex(rec.DstAddr)
	if pi < 0 {
		return
	}
	region, svc, ok := c.meta(rec.DstAddr)
	if !ok {
		return
	}
	prefix := bgp.Slash24(rec.SrcAddr)
	flow := features.FlowFeatures{
		AS: bgp.ASN(rec.SrcAS), Prefix: prefix, Loc: c.geoip.Lookup(prefix),
		Region: region, Type: svc,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	byPfx := c.traffic[link]
	if byPfx == nil {
		byPfx = make(map[int]map[features.FlowFeatures]float64)
		c.traffic[link] = byPfx
	}
	flows := byPfx[pi]
	if flows == nil {
		flows = make(map[features.FlowFeatures]float64)
		byPfx[pi] = flows
	}
	flows[flow] += float64(rec.Octets)
}

func (c *CMS) prefixIndex(dst uint32) int {
	for i, p := range c.cfg.Anycast {
		if p.Contains(dst) {
			return i
		}
	}
	return -1
}

func (c *CMS) util(h wan.Hour, link wan.LinkID) float64 {
	l, ok := c.net.Link(link)
	if !ok {
		return 0
	}
	return l.Utilization(c.net.LinkBytes(h, link), 3600)
}

// Step runs one control cycle at the end of hour h: re-announce calm
// withdrawals, detect congested links, and mitigate them. It then
// resets the per-hour traffic view.
func (c *CMS) Step(h wan.Hour) {
	c.mu.Lock()
	defer c.mu.Unlock()

	// Re-announcement: once the congested link has calmed, restore
	// the prefix at its original location.
	for _, w := range c.active {
		if w.Reannounced {
			continue
		}
		if c.util(h, w.Link) < c.cfg.ReannounceBelow {
			w.calmRun++
		} else {
			w.calmRun = 0
		}
		if w.calmRun >= c.cfg.CalmHours {
			c.net.Announce(w.Link, w.Prefix)
			w.Reannounced = true
			w.ReannouncedAt = h
		}
	}

	// Detection: links above threshold this hour.
	var congested []wan.LinkID
	for _, id := range c.net.Links() {
		if c.util(h, id) >= c.cfg.UtilThreshold {
			c.hot[id]++
			congested = append(congested, id)
		} else {
			c.hot[id] = 0
		}
	}
	sort.Slice(congested, func(i, j int) bool {
		return c.util(h, congested[i]) > c.util(h, congested[j])
	})
	for _, link := range congested {
		c.mitigate(h, link)
	}

	// The per-hour traffic view is consumed.
	c.traffic = make(map[wan.LinkID]map[int]map[features.FlowFeatures]float64)
}

// mitigate withdraws enough safe prefixes from the congested link to
// bring projected utilization under target.
func (c *CMS) mitigate(h wan.Hour, link wan.LinkID) {
	l, ok := c.net.Link(link)
	if !ok {
		return
	}
	ev := Event{Hour: h, Link: link, Util: c.util(h, link), Predicted: make(map[wan.LinkID]float64)}
	byPfx := c.traffic[link]

	// Rank this link's prefixes by the volume they carry: the paper
	// withdraws the fewest, largest prefixes that restore headroom.
	type pfxVol struct {
		idx   int
		bytes float64
	}
	var pfxs []pfxVol
	for pi, flows := range byPfx {
		var sum float64
		for _, b := range flows {
			sum += b
		}
		pfxs = append(pfxs, pfxVol{pi, sum})
	}
	sort.Slice(pfxs, func(i, j int) bool {
		if pfxs[i].bytes != pfxs[j].bytes {
			return pfxs[i].bytes > pfxs[j].bytes
		}
		return pfxs[i].idx < pfxs[j].idx
	})

	linkBytes := c.net.LinkBytes(h, link)
	needBytes := linkBytes - c.cfg.TargetUtil*l.Capacity*3600/8
	shiftedSoFar := 0.0
	// Track projected extra load per target link across this event's
	// withdrawals so successive withdrawals don't jointly overload a
	// target that each alone would not.
	projected := make(map[wan.LinkID]float64)

	for _, pv := range pfxs {
		if shiftedSoFar >= needBytes || len(ev.Withdrawn) >= c.cfg.MaxWithdrawalsPerEvent {
			break
		}
		prefix := c.cfg.Anycast[pv.idx]
		if c.net.IsWithdrawn(link, prefix) {
			continue
		}
		safe := true
		shift := make(map[wan.LinkID]float64)
		if !c.cfg.Blind {
			for flow, bytes := range byPfx[pv.idx] {
				preds := c.tipsy.Predict(core.Query{
					Flow: flow, K: 3,
					Exclude: func(t wan.LinkID) bool {
						return t == link || c.net.IsWithdrawn(t, prefix)
					},
				})
				for _, p := range preds {
					shift[p.Link] += p.Frac * bytes
				}
			}
			for target, extra := range shift {
				tl, ok := c.net.Link(target)
				if !ok {
					continue
				}
				newBytes := c.net.LinkBytes(h, target) + projected[target] + extra
				if tl.Utilization(newBytes, 3600) >= c.cfg.TargetUtil {
					safe = false
					break
				}
			}
		}
		if !safe {
			ev.Deferred++
			continue
		}
		c.net.Withdraw(link, prefix)
		c.active = append(c.active, &Withdrawal{Link: link, Prefix: prefix, IssuedAt: h})
		ev.Withdrawn = append(ev.Withdrawn, prefix)
		shiftedSoFar += pv.bytes
		for target, extra := range shift {
			projected[target] += extra
			ev.Predicted[target] += extra
		}
	}
	c.events = append(c.events, ev)
}

// Events returns every congestion event handled so far.
func (c *CMS) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Active returns the withdrawals issued so far, including those
// already re-announced.
func (c *CMS) Active() []Withdrawal {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Withdrawal, len(c.active))
	for i, w := range c.active {
		out[i] = *w
	}
	return out
}

// Summary renders a short operator-facing report.
func (c *CMS) Summary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	withdrawals, deferred := 0, 0
	for _, ev := range c.events {
		withdrawals += len(ev.Withdrawn)
		deferred += ev.Deferred
	}
	mode := "tipsy"
	if c.cfg.Blind {
		mode = "blind"
	}
	return fmt.Sprintf("cms[%s]: %d congestion events, %d withdrawals, %d deferred as unsafe, %d active",
		mode, len(c.events), withdrawals, deferred, len(c.active))
}
