// Package monitor is TIPSY's online prediction-quality subsystem: it
// joins the predictions the serving daemon hands out against the
// ground truth later telemetry reveals (the aggregation pipeline
// always knew the actual ingress link of every flow aggregate — this
// package finally feeds it back), keeps deterministic sliding windows
// of top-1/top-3 byte-weighted accuracy sliced by metro, peer kind,
// and fallback-ladder rung, scores drift against a baseline frozen at
// the last retrain, and raises hysteresis alarms for the failure
// modes the paper documents: accuracy collapse after prefix
// withdrawals, slow routing-policy drift, and a broken telemetry
// feedback loop.
//
// The monitor is clocked entirely by simulated hours (wan.Hour) fed
// through AdvanceTo — never the wall clock — so seeded runs produce
// byte-identical quality reports, and the accuracy arithmetic is
// eval.CreditBytes, the same single implementation the offline
// harness uses: offline and online accuracy agree by construction.
package monitor

import (
	"fmt"
	"sort"
	"sync"

	"tipsy/internal/core"
	"tipsy/internal/eval"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/obsv"
	"tipsy/internal/wan"
)

// Config holds the monitor's thresholds and window geometry.
type Config struct {
	// WindowHours is the sliding accuracy window length.
	WindowHours int
	// JoinHorizonHours is how long a recorded prediction remains
	// joinable against incoming truth; past it the prediction is
	// evicted (and counted if it never joined).
	JoinHorizonHours int
	// MinGroups is the minimum number of joined groups a window (or
	// baseline) needs before accuracy alarms may evaluate — below it
	// the sample is too thin to alarm on.
	MinGroups int64
	// AccuracyFloor is the top-3 accuracy below which the window is
	// alarmed (the small env trains to ~0.89 top-3).
	AccuracyFloor float64
	// DriftThreshold is how far window top-3 accuracy may sink below
	// the frozen baseline before the drift alarm breaches.
	DriftThreshold float64
	// CollapseDrop is how far post-withdrawal top-3 accuracy may sink
	// below the baseline before the post-withdrawal alarm breaches.
	CollapseDrop float64
	// StarvationHours is how many hours may pass without a single
	// truth join, while predictions are outstanding, before the
	// starvation alarm breaches.
	StarvationHours int
	// FireAfter/ClearAfter are the alarm hysteresis: consecutive
	// breached evaluations to fire, consecutive clear ones to clear.
	FireAfter, ClearAfter int
	// LinkMeta, when set, resolves a link to its landing metro and
	// peer kind for the per-slice windows. Nil disables those slices.
	LinkMeta func(wan.LinkID) (geo.MetroID, string)
	// OnAlarm, when set, is invoked once per alarm transition into the
	// firing state, from the AdvanceTo caller's goroutine after the
	// monitor's lock is released — so the hook may call Quality,
	// AlarmFiring, or anything else on the monitor. tipsyd uses it to
	// write diagnostic bundles.
	OnAlarm func(AlarmStatus)
}

// DefaultConfig returns thresholds calibrated for the small simulated
// environment (top-3 accuracy ~0.89 when healthy).
func DefaultConfig() Config {
	return Config{
		WindowHours:      48,
		JoinHorizonHours: 24,
		MinGroups:        20,
		AccuracyFloor:    0.60,
		DriftThreshold:   0.15,
		CollapseDrop:     0.20,
		StarvationHours:  6,
		FireAfter:        2,
		ClearAfter:       2,
	}
}

// pending is one served prediction awaiting ground truth.
type pending struct {
	madeAt wan.Hour
	rung   string
	preds  []core.Prediction
	joined bool
}

// joinGroup is one (hour, flow) join in progress: the prediction
// pinned at first truth arrival plus the actual byte distribution.
type joinGroup struct {
	rung  string
	preds []core.Prediction
	links map[wan.LinkID]float64
	total float64
}

// metrics are the monitor's registry-backed series.
type metrics struct {
	predictions *obsv.Counter
	truthRecs   *obsv.Counter
	truthLate   *obsv.Counter
	unmatched   *obsv.Counter
	joins       *obsv.Counter
	expired     *obsv.Counter
	transitions *obsv.Counter

	top1     *obsv.Gauge
	top3     *obsv.Gauge
	drift    *obsv.Gauge
	pendingG *obsv.Gauge
	alarms   map[string]*obsv.Gauge
}

func newMetrics(reg *obsv.Registry) metrics {
	m := metrics{
		predictions: reg.Counter("monitor_predictions_total"),
		truthRecs:   reg.Counter("monitor_truth_records_total"),
		truthLate:   reg.Counter("monitor_truth_late_total"),
		unmatched:   reg.Counter("monitor_truth_unmatched_total"),
		joins:       reg.Counter("monitor_joins_total"),
		expired:     reg.Counter("monitor_predictions_expired_total"),
		transitions: reg.Counter("monitor_alarm_transitions_total"),
		top1:        reg.Gauge("monitor_window_top1_permille"),
		top3:        reg.Gauge("monitor_window_top3_permille"),
		drift:       reg.Gauge("monitor_drift_permille"),
		pendingG:    reg.Gauge("monitor_pending_predictions"),
		alarms:      make(map[string]*obsv.Gauge, 4),
	}
	for _, name := range alarmNames {
		m.alarms[name] = reg.Gauge("monitor_alarm_" + name)
	}
	return m
}

var alarmNames = []string{
	AlarmAccuracyFloor, AlarmDrift, AlarmPostWithdrawal, AlarmJoinStarvation,
}

// Monitor is the online quality evaluator. Safe for concurrent use;
// all state advances deterministically with the simulated clock.
type Monitor struct {
	//tipsy:nolock set in New and read-only afterwards; AdvanceTo
	// reads cfg.OnAlarm outside mu by design so the hook can lock
	// the monitor back
	cfg Config

	mu  sync.Mutex
	met metrics
	//tipsy:guardedby mu
	head wan.Hour // next hour to close; all hours below are final

	//tipsy:guardedby mu
	pending map[features.FlowFeatures]*pending
	//tipsy:guardedby mu
	open map[wan.Hour]map[features.FlowFeatures]*joinGroup
	//tipsy:guardedby mu
	ring []bucket

	//tipsy:guardedby mu
	baseline totals
	//tipsy:guardedby mu
	baselineAt wan.Hour
	//tipsy:guardedby mu
	hasBaseline bool
	//tipsy:guardedby mu
	lastJoin wan.Hour // last hour that joined any group
	//tipsy:guardedby mu
	sawActivity bool // a prediction was ever recorded
	//tipsy:guardedby mu
	withdrawalAt wan.Hour // -1 when the post-withdrawal watch is disarmed
	//tipsy:guardedby mu
	post cell // joined quality since withdrawalAt

	//tipsy:guardedby mu
	alarmList []*alarm
	//tipsy:guardedby mu
	alarmByN map[string]*alarm
	// fired queues newly-firing alarm statuses under mu; AdvanceTo
	// drains it to cfg.OnAlarm after unlocking.
	//tipsy:guardedby mu
	fired []AlarmStatus
}

// New builds a monitor publishing its gauges and counters on reg.
func New(cfg Config, reg *obsv.Registry) *Monitor {
	if cfg.WindowHours <= 0 {
		cfg.WindowHours = DefaultConfig().WindowHours
	}
	if cfg.JoinHorizonHours <= 0 {
		cfg.JoinHorizonHours = DefaultConfig().JoinHorizonHours
	}
	if cfg.FireAfter <= 0 {
		cfg.FireAfter = 1
	}
	if cfg.ClearAfter <= 0 {
		cfg.ClearAfter = 1
	}
	m := &Monitor{
		cfg:          cfg,
		met:          newMetrics(reg),
		pending:      make(map[features.FlowFeatures]*pending),
		open:         make(map[wan.Hour]map[features.FlowFeatures]*joinGroup),
		ring:         make([]bucket, cfg.WindowHours),
		withdrawalAt: -1,
		alarmByN:     make(map[string]*alarm, 4),
	}
	for i := range m.ring {
		m.ring[i].hour = -1
	}
	for _, name := range alarmNames {
		a := &alarm{name: name, fireAfter: cfg.FireAfter, clearAfter: cfg.ClearAfter}
		m.alarmList = append(m.alarmList, a)
		m.alarmByN[name] = a
	}
	return m
}

// RecordPrediction registers a prediction served at simulated hour h
// for the given flow by the named fallback-ladder rung. An empty
// prediction list is recorded too: a flow the ladder could not answer
// that then carries traffic is a quality miss, not a non-event. A
// newer prediction for the same flow replaces the older one.
func (m *Monitor) RecordPrediction(h wan.Hour, flow features.FlowFeatures, rung string, preds []core.Prediction) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met.predictions.Inc()
	if !m.sawActivity {
		m.sawActivity = true
		m.lastJoin = h // starvation counts from the first prediction
	}
	cp := make([]core.Prediction, len(preds))
	copy(cp, preds)
	m.pending[flow] = &pending{madeAt: h, rung: rung, preds: cp}
	m.met.pendingG.Set(int64(len(m.pending)))
}

// ObserveTruth ingests one ground-truth record (implements
// pipeline.TruthSink). Truth joins a prediction when it falls inside
// the prediction's join horizon: strictly after the hour the
// prediction was made — a model may not be graded on the hour it
// trained through — and at most JoinHorizonHours later.
func (m *Monitor) ObserveTruth(rec features.Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met.truthRecs.Inc()
	if rec.Hour < m.head {
		m.met.truthLate.Inc()
		return
	}
	p := m.pending[rec.Flow]
	if p == nil || rec.Hour <= p.madeAt || rec.Hour > p.madeAt+wan.Hour(m.cfg.JoinHorizonHours) {
		m.met.unmatched.Inc()
		return
	}
	hg := m.open[rec.Hour]
	if hg == nil {
		hg = make(map[features.FlowFeatures]*joinGroup)
		m.open[rec.Hour] = hg
	}
	g := hg[rec.Flow]
	if g == nil {
		// Pin the prediction as it stood when this (hour, flow)
		// group first saw truth, so a mid-hour replacement cannot
		// split one group across two predictions.
		g = &joinGroup{rung: p.rung, preds: p.preds, links: make(map[wan.LinkID]float64, 2)}
		hg[rec.Flow] = g
		p.joined = true
	}
	g.links[rec.Link] += rec.Bytes
	g.total += rec.Bytes
}

// AdvanceTo declares that all ground truth for hours below h has been
// delivered: every open hour before h is finalized in order — joins
// are scored, windows updated, gauges refreshed, and alarms evaluated
// once per closed hour.
func (m *Monitor) AdvanceTo(h wan.Hour) {
	m.mu.Lock()
	for ; m.head < h; m.head++ {
		m.closeHour(m.head)
	}
	fired := m.fired
	m.fired = nil
	m.mu.Unlock()
	// Deliver hook calls outside the lock: the hook is free to read
	// the monitor back (Quality locks m.mu).
	if m.cfg.OnAlarm != nil {
		for _, st := range fired {
			m.cfg.OnAlarm(st)
		}
	}
}

// closeHour finalizes hour h. Callers hold m.mu.
func (m *Monitor) closeHour(h wan.Hour) {
	groups := m.open[h]
	delete(m.open, h)

	b := &m.ring[int(h)%m.cfg.WindowHours]
	b.reset(h)

	// Score joins in deterministic flow order: float accumulation
	// order must not depend on map iteration.
	flows := make([]features.FlowFeatures, 0, len(groups))
	for f := range groups {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return lessFlow(flows[i], flows[j]) })
	for _, f := range flows {
		g := groups[f]
		c := cell{
			groups: 1,
			bytes:  g.total,
			cred1:  eval.CreditBytes(g.preds, 1, g.links, g.total),
			cred3:  eval.CreditBytes(g.preds, 3, g.links, g.total),
		}
		b.overall.add(c)
		addSlice(&b.byRung, g.rung, c)
		if m.cfg.LinkMeta != nil {
			metro, kind := m.cfg.LinkMeta(dominantLink(g.links))
			addSlice(&b.byMetro, metro, c)
			addSlice(&b.byKind, kind, c)
		}
		if m.withdrawalAt >= 0 && h > m.withdrawalAt {
			m.post.add(c)
		}
	}
	if len(groups) > 0 {
		m.met.joins.Add(uint64(len(groups)))
		m.lastJoin = h
	}

	// Evict predictions whose join horizon has fully passed.
	for f, p := range m.pending {
		if p.madeAt+wan.Hour(m.cfg.JoinHorizonHours) < h {
			delete(m.pending, f)
			if !p.joined {
				m.met.expired.Inc()
			}
		}
	}
	m.met.pendingG.Set(int64(len(m.pending)))

	cur := m.windowTotals(h)
	m.met.top1.Set(permille(cur.overall.top1()))
	m.met.top3.Set(permille(cur.overall.top3()))
	drift := m.driftScore(cur)
	m.met.drift.Set(permille(drift))
	m.evaluateAlarms(h, cur, drift)
}

// driftScore is how far the window's top-3 accuracy has sunk below
// the frozen baseline; 0 when either side lacks a sample (or the
// model improved). Callers hold m.mu.
func (m *Monitor) driftScore(cur totals) float64 {
	if !m.hasBaseline ||
		m.baseline.overall.groups < m.cfg.MinGroups ||
		cur.overall.groups < m.cfg.MinGroups {
		return 0
	}
	d := m.baseline.overall.top3() - cur.overall.top3()
	if d < 0 {
		return 0
	}
	return d
}

// evaluateAlarms runs every alarm's hourly evaluation. Callers hold
// m.mu.
func (m *Monitor) evaluateAlarms(h wan.Hour, cur totals, drift float64) {
	baseOK := m.hasBaseline && m.baseline.overall.groups >= m.cfg.MinGroups

	floorBreach := cur.overall.groups >= m.cfg.MinGroups &&
		cur.overall.top3() < m.cfg.AccuracyFloor
	m.observe(m.alarmByN[AlarmAccuracyFloor], h, floorBreach, fmt.Sprintf(
		"window top-3 accuracy %.3f below floor %.2f over %d groups",
		cur.overall.top3(), m.cfg.AccuracyFloor, cur.overall.groups))

	driftBreach := drift > m.cfg.DriftThreshold
	m.observe(m.alarmByN[AlarmDrift], h, driftBreach, fmt.Sprintf(
		"window top-3 accuracy %.3f drifted %.3f below baseline %.3f (frozen at hour %d)",
		cur.overall.top3(), drift, m.baseline.overall.top3(), m.baselineAt))

	postBreach := baseOK && m.withdrawalAt >= 0 &&
		m.post.groups >= m.cfg.MinGroups &&
		m.baseline.overall.top3()-m.post.top3() > m.cfg.CollapseDrop
	m.observe(m.alarmByN[AlarmPostWithdrawal], h, postBreach, fmt.Sprintf(
		"top-3 accuracy since withdrawal at hour %d is %.3f, %.3f below baseline %.3f",
		m.withdrawalAt, m.post.top3(), m.baseline.overall.top3()-m.post.top3(),
		m.baseline.overall.top3()))

	starved := len(m.pending) > 0 && m.sawActivity &&
		h-m.lastJoin > wan.Hour(m.cfg.StarvationHours)
	m.observe(m.alarmByN[AlarmJoinStarvation], h, starved, fmt.Sprintf(
		"no ground-truth join for %d hours with %d predictions outstanding",
		h-m.lastJoin, len(m.pending)))
}

func (m *Monitor) observe(a *alarm, h wan.Hour, breached bool, reason string) {
	if a.observe(h, breached, reason) {
		m.met.transitions.Inc()
		if a.firing && m.cfg.OnAlarm != nil {
			m.fired = append(m.fired, a.status())
		}
	}
	v := int64(0)
	if a.firing {
		v = 1
	}
	m.met.alarms[a.name].Set(v)
}

// FreezeBaseline snapshots the current window as the drift baseline —
// call it when (re)training completes, at simulated hour h. It also
// disarms the post-withdrawal watch: the fresh model has seen the
// post-withdrawal world, so the collapse comparison starts over.
func (m *Monitor) FreezeBaseline(h wan.Hour) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.baseline = m.windowTotals(m.head - 1)
	m.baselineAt = h
	m.hasBaseline = true
	m.withdrawalAt = -1
	m.post = cell{}
}

// NoteWithdrawal arms the post-withdrawal collapse watch: joined
// quality for hours after h is compared against the frozen baseline
// until the next FreezeBaseline. A later withdrawal restarts the
// watch.
func (m *Monitor) NoteWithdrawal(h wan.Hour) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.withdrawalAt = h
	m.post = cell{}
}

// AlarmFiring reports whether the named alarm is currently firing.
func (m *Monitor) AlarmFiring(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	a := m.alarmByN[name]
	return a != nil && a.firing
}

// Degraded reports whether any model-quality alarm (floor, drift,
// post-withdrawal) is firing — the /healthz degradation signal. The
// starvation alarm is excluded: it means quality is unobservable, not
// that serving is known-bad.
func (m *Monitor) Degraded() (bool, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, name := range []string{AlarmAccuracyFloor, AlarmPostWithdrawal, AlarmDrift} {
		if a := m.alarmByN[name]; a.firing {
			return true, fmt.Sprintf("quality alarm %s: %s", a.name, a.reason)
		}
	}
	return false, ""
}

func addSlice[K comparable](mp *map[K]cell, k K, c cell) {
	if *mp == nil {
		*mp = make(map[K]cell, 4)
	}
	e := (*mp)[k]
	e.add(c)
	(*mp)[k] = e
}

// dominantLink picks the link that carried the most of a group's
// bytes (lowest ID on ties) — the link whose metro and peer kind the
// group is sliced under.
func dominantLink(links map[wan.LinkID]float64) wan.LinkID {
	var best wan.LinkID
	var bestBytes float64
	for l, b := range links {
		if b > bestBytes || (b == bestBytes && (best == 0 || l < best)) {
			best, bestBytes = l, b
		}
	}
	return best
}

func lessFlow(a, b features.FlowFeatures) bool {
	if a.AS != b.AS {
		return a.AS < b.AS
	}
	if a.Prefix != b.Prefix {
		return a.Prefix < b.Prefix
	}
	if a.Loc != b.Loc {
		return a.Loc < b.Loc
	}
	if a.Region != b.Region {
		return a.Region < b.Region
	}
	return a.Type < b.Type
}

func permille(v float64) int64 {
	return int64(v*1000 + 0.5)
}
