package monitor

import (
	"sort"

	"tipsy/internal/geo"
	"tipsy/internal/wan"
)

// cell accumulates joined quality over some slice of traffic: how
// many (hour, flow) groups joined, the actual bytes they carried, and
// the bytes credited to the served predictions at top-1 and top-3.
type cell struct {
	groups int64
	bytes  float64
	cred1  float64
	cred3  float64
}

func (c *cell) add(o cell) {
	c.groups += o.groups
	c.bytes += o.bytes
	c.cred1 += o.cred1
	c.cred3 += o.cred3
}

// top1 and top3 are byte-weighted accuracy — the same ratio
// eval.Accuracy reports offline.
func (c cell) top1() float64 {
	if c.bytes <= 0 {
		return 0
	}
	return c.cred1 / c.bytes
}

func (c cell) top3() float64 {
	if c.bytes <= 0 {
		return 0
	}
	return c.cred3 / c.bytes
}

// bucket is one simulated hour of joined quality, sliced three ways.
// Buckets live in a ring indexed by hour modulo the window length;
// writing a new hour into a slot evicts the hour WindowHours earlier.
type bucket struct {
	hour    wan.Hour // -1 while the slot has never been written
	overall cell
	byMetro map[geo.MetroID]cell
	byKind  map[string]cell
	byRung  map[string]cell
}

func (b *bucket) reset(h wan.Hour) {
	b.hour = h
	b.overall = cell{}
	b.byMetro = nil
	b.byKind = nil
	b.byRung = nil
}

// totals is the sum of the live buckets of a window (or a frozen
// snapshot of one, used as the drift baseline).
type totals struct {
	overall cell
	byMetro map[geo.MetroID]cell
	byKind  map[string]cell
	byRung  map[string]cell
}

func newTotals() totals {
	return totals{
		byMetro: make(map[geo.MetroID]cell),
		byKind:  make(map[string]cell),
		byRung:  make(map[string]cell),
	}
}

func (t *totals) addBucket(b *bucket) {
	t.overall.add(b.overall)
	for k, c := range b.byMetro {
		e := t.byMetro[k]
		e.add(c)
		t.byMetro[k] = e
	}
	for k, c := range b.byKind {
		e := t.byKind[k]
		e.add(c)
		t.byKind[k] = e
	}
	for k, c := range b.byRung {
		e := t.byRung[k]
		e.add(c)
		t.byRung[k] = e
	}
}

// windowTotals sums the buckets covering hours (h-WindowHours, h].
// Slots still holding older hours (not yet overwritten) are skipped,
// so eviction is by hour arithmetic, not by slot reuse.
func (m *Monitor) windowTotals(h wan.Hour) totals {
	t := newTotals()
	lo := h - wan.Hour(m.cfg.WindowHours)
	for i := range m.ring {
		b := &m.ring[i]
		if b.hour < 0 || b.hour <= lo || b.hour > h {
			continue
		}
		t.addBucket(b)
	}
	return t
}

// SliceQuality is one slice's joined accuracy in a report.
type SliceQuality struct {
	Key    string  `json:"key"`
	Groups int64   `json:"groups"`
	Bytes  float64 `json:"bytes"`
	Top1   float64 `json:"top1"`
	Top3   float64 `json:"top3"`
}

func sliceReport[K comparable](cells map[K]cell, keyOf func(K) string) []SliceQuality {
	out := make([]SliceQuality, 0, len(cells))
	for k, c := range cells {
		out = append(out, SliceQuality{
			Key: keyOf(k), Groups: c.groups, Bytes: c.bytes,
			Top1: c.top1(), Top3: c.top3(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
