package monitor

import (
	"fmt"

	"tipsy/internal/geo"
	"tipsy/internal/wan"
)

// WindowQuality summarizes one accuracy window (sliding, baseline, or
// post-withdrawal) for the quality report.
type WindowQuality struct {
	Groups int64   `json:"groups"`
	Bytes  float64 `json:"bytes"`
	Top1   float64 `json:"top1"`
	Top3   float64 `json:"top3"`
}

func windowQuality(c cell) WindowQuality {
	return WindowQuality{Groups: c.groups, Bytes: c.bytes, Top1: c.top1(), Top3: c.top3()}
}

// QualityReport is the /debug/quality payload: everything in it is a
// pure function of the simulated-hour history the monitor consumed,
// so seeded runs produce byte-identical reports.
type QualityReport struct {
	// Hour is the last closed simulated hour (-1 before any close).
	Hour        wan.Hour      `json:"hour"`
	WindowHours int           `json:"window_hours"`
	Window      WindowQuality `json:"window"`

	BaselineAt wan.Hour      `json:"baseline_at_hour"` // -1 when never frozen
	Baseline   WindowQuality `json:"baseline"`
	DriftScore float64       `json:"drift_score"`

	// WithdrawalAt is the hour of the armed post-withdrawal watch, -1
	// when disarmed; PostWithdrawal covers joins strictly after it.
	WithdrawalAt   wan.Hour      `json:"withdrawal_at_hour"`
	PostWithdrawal WindowQuality `json:"post_withdrawal"`

	ByMetro    []SliceQuality `json:"by_metro,omitempty"`
	ByPeerKind []SliceQuality `json:"by_peer_kind,omitempty"`
	ByRung     []SliceQuality `json:"by_rung,omitempty"`

	Alarms []AlarmStatus `json:"alarms"`

	PendingPredictions int   `json:"pending_predictions"`
	PredictionsTotal   int64 `json:"predictions_total"`
	JoinsTotal         int64 `json:"joins_total"`
	TruthRecordsTotal  int64 `json:"truth_records_total"`
	TruthUnmatched     int64 `json:"truth_unmatched_total"`
	ExpiredUnjoined    int64 `json:"predictions_expired_total"`
}

// Quality builds the current quality report.
func (m *Monitor) Quality() QualityReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.head - 1
	cur := m.windowTotals(h)
	r := QualityReport{
		Hour:         h,
		WindowHours:  m.cfg.WindowHours,
		Window:       windowQuality(cur.overall),
		BaselineAt:   -1,
		WithdrawalAt: m.withdrawalAt,
		DriftScore:   m.driftScore(cur),
		ByMetro: sliceReport(cur.byMetro, func(id geo.MetroID) string {
			return fmt.Sprintf("metro_%d", id)
		}),
		ByPeerKind:         sliceReport(cur.byKind, func(s string) string { return s }),
		ByRung:             sliceReport(cur.byRung, func(s string) string { return s }),
		PendingPredictions: len(m.pending),
		PredictionsTotal:   int64(m.met.predictions.Value()),
		JoinsTotal:         int64(m.met.joins.Value()),
		TruthRecordsTotal:  int64(m.met.truthRecs.Value()),
		TruthUnmatched:     int64(m.met.unmatched.Value()),
		ExpiredUnjoined:    int64(m.met.expired.Value()),
	}
	if m.hasBaseline {
		r.BaselineAt = m.baselineAt
		r.Baseline = windowQuality(m.baseline.overall)
	}
	if m.withdrawalAt >= 0 {
		r.PostWithdrawal = windowQuality(m.post)
	}
	for _, a := range m.alarmList {
		r.Alarms = append(r.Alarms, a.status())
	}
	return r
}
