package monitor

import (
	"encoding/json"
	"reflect"
	"testing"

	"tipsy/internal/bgp"
	"tipsy/internal/core"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/obsv"
	"tipsy/internal/wan"
)

// testConfig is a tight geometry that makes every transition cheap to
// drive: 4-hour window, 1-group sample floor, 2/2 hysteresis.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.WindowHours = 4
	cfg.JoinHorizonHours = 24
	cfg.MinGroups = 1
	cfg.AccuracyFloor = 0.6
	cfg.DriftThreshold = 0.15
	cfg.CollapseDrop = 0.2
	cfg.StarvationHours = 3
	cfg.FireAfter = 2
	cfg.ClearAfter = 2
	return cfg
}

func newTestMonitor(cfg Config) (*Monitor, *obsv.Registry) {
	reg := obsv.NewRegistry()
	return New(cfg, reg), reg
}

func flowN(i int) features.FlowFeatures {
	return features.FlowFeatures{AS: bgp.ASN(100 + i), Region: 1, Type: 1}
}

func predict(l wan.LinkID) []core.Prediction {
	return []core.Prediction{{Link: l, Frac: 1}}
}

// feed records a prediction at madeAt and delivers truth for it at
// hour h on the given link — a correct join when the truth link
// matches the predicted one.
func feed(m *Monitor, f features.FlowFeatures, madeAt, h wan.Hour, predicted, actual wan.LinkID, bytes float64) {
	m.RecordPrediction(madeAt, f, "ensemble", predict(predicted))
	m.ObserveTruth(features.Record{Hour: h, Flow: f, Link: actual, Bytes: bytes})
}

func TestJoinScoresAccuracy(t *testing.T) {
	m, _ := newTestMonitor(testConfig())
	// A correct prediction and a wrong one in the same hour.
	feed(m, flowN(1), 0, 1, 7, 7, 100) // credit 100
	feed(m, flowN(2), 0, 1, 8, 9, 300) // credit 0
	m.AdvanceTo(2)

	q := m.Quality()
	if q.Hour != 1 || q.Window.Groups != 2 {
		t.Fatalf("window: %+v", q.Window)
	}
	if q.Window.Bytes != 400 {
		t.Errorf("window bytes = %v, want 400", q.Window.Bytes)
	}
	if want := 0.25; q.Window.Top1 != want || q.Window.Top3 != want {
		t.Errorf("accuracy top1=%v top3=%v, want %v", q.Window.Top1, q.Window.Top3, want)
	}
}

func TestJoinHonoursHorizonAndOrdering(t *testing.T) {
	m, reg := newTestMonitor(testConfig())
	f := flowN(1)
	m.RecordPrediction(5, f, "ensemble", predict(7))

	// Truth at the prediction hour itself must not join (the model may
	// not be graded on the hour it was trained through)...
	m.ObserveTruth(features.Record{Hour: 5, Flow: f, Link: 7, Bytes: 10})
	// ...nor truth beyond the join horizon...
	m.ObserveTruth(features.Record{Hour: 5 + 25, Flow: f, Link: 7, Bytes: 10})
	// ...nor truth for a flow never predicted.
	m.ObserveTruth(features.Record{Hour: 6, Flow: flowN(9), Link: 7, Bytes: 10})

	m.AdvanceTo(7)
	if got := reg.Counter("monitor_truth_unmatched_total").Value(); got != 3 {
		t.Errorf("unmatched = %d, want 3", got)
	}
	if got := reg.Counter("monitor_joins_total").Value(); got != 0 {
		t.Errorf("joins = %d, want 0", got)
	}

	// Late truth (hour already closed) is dropped and counted.
	m.ObserveTruth(features.Record{Hour: 6, Flow: f, Link: 7, Bytes: 10})
	if got := reg.Counter("monitor_truth_late_total").Value(); got != 1 {
		t.Errorf("late = %d, want 1", got)
	}
}

// TestWindowEvictionAtRingBoundary drives joins across more hours
// than the window holds and checks the oldest hour falls out of the
// totals exactly when the window slides past it — including the slot
// whose ring index wraps.
func TestWindowEvictionAtRingBoundary(t *testing.T) {
	cfg := testConfig() // WindowHours = 4
	m, _ := newTestMonitor(cfg)

	// Hour 1: a wrong prediction (0 credit). Hours 2-4: correct ones.
	feed(m, flowN(1), 0, 1, 7, 9, 100)
	for h := wan.Hour(2); h <= 4; h++ {
		feed(m, flowN(int(h)), h-1, h, 7, 7, 100)
	}
	m.AdvanceTo(5)
	q := m.Quality()
	// Window covers hours 1-4: 3 of 4 groups correct.
	if q.Window.Groups != 4 || q.Window.Top1 != 0.75 {
		t.Fatalf("pre-eviction window = %+v", q.Window)
	}

	// Hour 5 lands in ring slot 5%4 = 1, the slot hour 1 occupied: the
	// bad hour is evicted both by hour arithmetic and by slot reuse.
	feed(m, flowN(5), 4, 5, 7, 7, 100)
	m.AdvanceTo(6)
	q = m.Quality()
	if q.Window.Groups != 4 || q.Window.Top1 != 1.0 {
		t.Errorf("post-eviction window = %+v, want 4 groups at accuracy 1.0", q.Window)
	}

	// An idle stretch longer than the window empties it: stale slots
	// must not leak old hours back in.
	m.AdvanceTo(20)
	q = m.Quality()
	if q.Window.Groups != 0 {
		t.Errorf("idle window still holds %d groups", q.Window.Groups)
	}
}

// TestAlarmHysteresis pins the fire → hold → clear contract: two
// breached hours to fire, a single clean hour does not clear, two
// consecutive clean hours do.
func TestAlarmHysteresis(t *testing.T) {
	cfg := testConfig()
	cfg.WindowHours = 1 // each hour stands alone: precise control
	m, _ := newTestMonitor(cfg)

	bad := func(h wan.Hour) { feed(m, flowN(int(h)), h-1, h, 7, 9, 100) }
	good := func(h wan.Hour) { feed(m, flowN(int(h)), h-1, h, 7, 7, 100) }

	bad(1)
	m.AdvanceTo(2)
	if m.AlarmFiring(AlarmAccuracyFloor) {
		t.Fatal("alarm fired after a single breached hour (FireAfter=2)")
	}
	bad(2)
	m.AdvanceTo(3)
	if !m.AlarmFiring(AlarmAccuracyFloor) {
		t.Fatal("alarm did not fire after two breached hours")
	}
	good(3)
	m.AdvanceTo(4)
	if !m.AlarmFiring(AlarmAccuracyFloor) {
		t.Fatal("alarm cleared after a single clean hour (ClearAfter=2)")
	}
	bad(4) // breach again: the clear streak must reset
	m.AdvanceTo(5)
	good(5)
	good2 := func(h wan.Hour) { feed(m, flowN(1000+int(h)), h-1, h, 7, 7, 100) }
	good2(6)
	m.AdvanceTo(7)
	if m.AlarmFiring(AlarmAccuracyFloor) {
		t.Fatal("alarm still firing after two consecutive clean hours")
	}

	// The gauge tracks the state machine.
	if got, _ := m.Degraded(); got {
		t.Error("Degraded after alarm cleared")
	}
}

func TestDriftAndPostWithdrawalLifecycle(t *testing.T) {
	cfg := testConfig()
	cfg.MinGroups = 2
	m, reg := newTestMonitor(cfg)

	// Healthy hours 1-2 build the window; freeze the baseline (the
	// "last retrain" snapshot).
	for h := wan.Hour(1); h <= 2; h++ {
		feed(m, flowN(int(h)), h-1, h, 7, 7, 100)
		feed(m, flowN(100+int(h)), h-1, h, 8, 8, 100)
	}
	m.AdvanceTo(3)
	m.FreezeBaseline(3)
	if q := m.Quality(); q.BaselineAt != 3 || q.Baseline.Top3 != 1.0 {
		t.Fatalf("baseline: %+v at %d", q.Baseline, q.BaselineAt)
	}

	// A withdrawal shifts traffic; the stale model keeps predicting
	// the old links, so joins after it collapse.
	m.NoteWithdrawal(3)
	for h := wan.Hour(4); h <= 5; h++ {
		feed(m, flowN(int(h)), h-1, h, 7, 9, 100)
		feed(m, flowN(100+int(h)), h-1, h, 8, 9, 100)
	}
	m.AdvanceTo(6)
	if !m.AlarmFiring(AlarmPostWithdrawal) {
		t.Fatal("post-withdrawal alarm not firing after collapse")
	}
	if !m.AlarmFiring(AlarmDrift) {
		t.Fatal("drift alarm not firing after collapse")
	}
	if v := reg.Gauge("monitor_alarm_post_withdrawal").Value(); v != 1 {
		t.Errorf("post_withdrawal gauge = %d, want 1", v)
	}
	if deg, reason := m.Degraded(); !deg || reason == "" {
		t.Errorf("Degraded = %v %q during collapse", deg, reason)
	}

	// Retrain: baseline refreezes on the collapsed window and the
	// withdrawal watch disarms; healthy joins then clear everything.
	m.FreezeBaseline(6)
	if q := m.Quality(); q.WithdrawalAt != -1 {
		t.Errorf("withdrawal watch still armed after retrain: %d", q.WithdrawalAt)
	}
	for h := wan.Hour(6); h <= 9; h++ {
		feed(m, flowN(int(h)), h-1, h, 7, 7, 100)
		feed(m, flowN(100+int(h)), h-1, h, 8, 8, 100)
	}
	m.AdvanceTo(10)
	for _, name := range []string{AlarmPostWithdrawal, AlarmDrift, AlarmAccuracyFloor} {
		if m.AlarmFiring(name) {
			t.Errorf("alarm %s still firing after recovery", name)
		}
	}
}

func TestJoinStarvation(t *testing.T) {
	cfg := testConfig()
	cfg.JoinHorizonHours = 100 // keep the prediction outstanding
	m, _ := newTestMonitor(cfg)

	m.RecordPrediction(0, flowN(1), "ensemble", predict(7))
	// StarvationHours=3, FireAfter=2: hours 4 and 5 breach.
	m.AdvanceTo(6)
	if !m.AlarmFiring(AlarmJoinStarvation) {
		t.Fatal("starvation alarm not firing with truth feed dark")
	}
	// Starvation alone must not mark serving degraded.
	if deg, _ := m.Degraded(); deg {
		t.Error("starvation marked serving degraded")
	}

	// Truth resumes: joins flow again and the alarm clears.
	for h := wan.Hour(6); h <= 8; h++ {
		feed(m, flowN(int(h)), h-1, h, 7, 7, 50)
	}
	m.AdvanceTo(9)
	if m.AlarmFiring(AlarmJoinStarvation) {
		t.Error("starvation alarm still firing after joins resumed")
	}
}

func TestSlicesAndRungAttribution(t *testing.T) {
	cfg := testConfig()
	cfg.LinkMeta = func(l wan.LinkID) (geo.MetroID, string) {
		if l < 10 {
			return 1, "tier1"
		}
		return 2, "access"
	}
	m, _ := newTestMonitor(cfg)

	m.RecordPrediction(0, flowN(1), "ensemble", predict(7))
	m.RecordPrediction(0, flowN(2), "geo", predict(12))
	m.ObserveTruth(features.Record{Hour: 1, Flow: flowN(1), Link: 7, Bytes: 100})
	m.ObserveTruth(features.Record{Hour: 1, Flow: flowN(2), Link: 12, Bytes: 50})
	m.ObserveTruth(features.Record{Hour: 1, Flow: flowN(2), Link: 13, Bytes: 10})
	m.AdvanceTo(2)

	q := m.Quality()
	if len(q.ByRung) != 2 || q.ByRung[0].Key != "ensemble" || q.ByRung[1].Key != "geo" {
		t.Fatalf("by_rung: %+v", q.ByRung)
	}
	if q.ByRung[0].Top1 != 1.0 {
		t.Errorf("ensemble rung top1 = %v", q.ByRung[0].Top1)
	}
	// flow 2's dominant link is 12 -> metro 2 / access.
	if len(q.ByMetro) != 2 || q.ByMetro[0].Key != "metro_1" || q.ByMetro[1].Key != "metro_2" {
		t.Fatalf("by_metro: %+v", q.ByMetro)
	}
	if q.ByMetro[1].Bytes != 60 {
		t.Errorf("metro_2 bytes = %v, want 60", q.ByMetro[1].Bytes)
	}
	if len(q.ByPeerKind) != 2 || q.ByPeerKind[0].Key != "access" || q.ByPeerKind[1].Key != "tier1" {
		t.Fatalf("by_peer_kind: %+v", q.ByPeerKind)
	}
}

func TestEmptyPredictionIsAMiss(t *testing.T) {
	m, _ := newTestMonitor(testConfig())
	m.RecordPrediction(0, flowN(1), "none", nil)
	m.ObserveTruth(features.Record{Hour: 1, Flow: flowN(1), Link: 7, Bytes: 100})
	m.AdvanceTo(2)
	q := m.Quality()
	if q.Window.Groups != 1 || q.Window.Top3 != 0 {
		t.Errorf("unanswered flow must score 0: %+v", q.Window)
	}
	if len(q.ByRung) != 1 || q.ByRung[0].Key != "none" {
		t.Errorf("by_rung: %+v", q.ByRung)
	}
}

func TestPredictionExpiry(t *testing.T) {
	cfg := testConfig()
	cfg.JoinHorizonHours = 2
	m, reg := newTestMonitor(cfg)
	m.RecordPrediction(0, flowN(1), "ensemble", predict(7))
	m.AdvanceTo(4) // horizon 0+2 < 3: evicted while closing hour 3
	if got := reg.Counter("monitor_predictions_expired_total").Value(); got != 1 {
		t.Errorf("expired = %d, want 1", got)
	}
	if q := m.Quality(); q.PendingPredictions != 0 {
		t.Errorf("pending = %d after expiry", q.PendingPredictions)
	}
}

// TestQualityReportDeterministic runs the same scripted history twice
// and requires byte-identical JSON — the property the golden endpoint
// test and the bench trajectory lean on.
func TestQualityReportDeterministic(t *testing.T) {
	script := func() []byte {
		cfg := testConfig()
		cfg.LinkMeta = func(l wan.LinkID) (geo.MetroID, string) { return geo.MetroID(l % 3), "kind" }
		m, _ := newTestMonitor(cfg)
		for h := wan.Hour(1); h <= 6; h++ {
			for i := 0; i < 5; i++ {
				actual := wan.LinkID(7 + i%2)
				feed(m, flowN(i), h-1, h, 7, actual, float64(50+10*i))
			}
			m.AdvanceTo(h + 1)
			if h == 3 {
				m.FreezeBaseline(h)
				m.NoteWithdrawal(h)
			}
		}
		buf, err := json.Marshal(m.Quality())
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := script(), script()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-script reports differ:\n%s\n---\n%s", a, b)
	}
}
