package monitor

import (
	"strings"
	"testing"
)

// TestOnAlarmFiresOncePerTransition drives the join-starvation alarm
// through fire → clear → fire and checks the hook sees exactly the
// two transitions into firing — not one call per breached hour.
func TestOnAlarmFiresOncePerTransition(t *testing.T) {
	cfg := testConfig()
	cfg.StarvationHours = 1
	cfg.FireAfter = 1
	cfg.ClearAfter = 1

	var fired []AlarmStatus
	var m *Monitor
	cfg.OnAlarm = func(st AlarmStatus) {
		// The hook runs outside the monitor's lock: reading the
		// monitor back must not deadlock (tipsyd's bundle writer
		// snapshots Quality from exactly this position).
		_ = m.Quality()
		fired = append(fired, st)
	}
	m, _ = newTestMonitor(cfg)

	// Outstanding prediction, no truth: starvation breaches once
	// head-lastJoin exceeds StarvationHours.
	m.RecordPrediction(0, flowN(1), "ensemble", predict(7))
	m.AdvanceTo(4)

	if len(fired) != 1 {
		t.Fatalf("hook calls after starvation = %d, want 1: %+v", len(fired), fired)
	}
	st := fired[0]
	if st.Name != AlarmJoinStarvation || !st.Firing {
		t.Fatalf("fired %+v, want firing join_starvation", st)
	}
	if !strings.Contains(st.Reason, "predictions outstanding") {
		t.Errorf("reason %q", st.Reason)
	}
	if !m.AlarmFiring(AlarmJoinStarvation) {
		t.Fatal("alarm not firing after hook delivery")
	}

	// A join clears it; going dark again re-fires, and the hook sees
	// the second transition as a fresh call.
	feed(m, flowN(1), 4, 5, 7, 7, 100)
	m.AdvanceTo(6)
	if m.AlarmFiring(AlarmJoinStarvation) {
		t.Fatal("alarm still firing after a join")
	}
	m.RecordPrediction(6, flowN(2), "ensemble", predict(8))
	m.AdvanceTo(10)
	if len(fired) != 2 {
		t.Fatalf("hook calls after re-fire = %d, want 2: %+v", len(fired), fired)
	}
	if fired[1].Since <= fired[0].Since {
		t.Errorf("second firing Since %d not after first %d", fired[1].Since, fired[0].Since)
	}
}

// TestOnAlarmNilHookSafe: alarms still transition with no hook set.
func TestOnAlarmNilHookSafe(t *testing.T) {
	cfg := testConfig()
	cfg.StarvationHours = 1
	cfg.FireAfter = 1
	m, _ := newTestMonitor(cfg)
	m.RecordPrediction(0, flowN(1), "ensemble", predict(7))
	m.AdvanceTo(4)
	if !m.AlarmFiring(AlarmJoinStarvation) {
		t.Fatal("starvation alarm did not fire without a hook")
	}
}
