package monitor

import "tipsy/internal/wan"

// Alarm names. Each surfaces as a 0/1 gauge monitor_alarm_<name> on
// the registry and as an entry in the /debug/quality report.
const (
	// AlarmAccuracyFloor fires when the sliding window's top-3
	// accuracy sinks below the configured floor.
	AlarmAccuracyFloor = "accuracy_floor"
	// AlarmDrift fires when the window's top-3 accuracy falls more
	// than DriftThreshold below the baseline frozen at last retrain —
	// the slow routing-policy-drift failure mode.
	AlarmDrift = "drift"
	// AlarmPostWithdrawal fires when accuracy over the hours after a
	// noted prefix withdrawal collapses relative to the baseline — the
	// paper's headline failure mode (§5: accuracy collapses after
	// prefix withdrawals until the next retrain).
	AlarmPostWithdrawal = "post_withdrawal"
	// AlarmJoinStarvation fires when predictions are outstanding but
	// no ground truth has joined for StarvationHours — the telemetry
	// feedback loop is broken, so quality is unobservable.
	AlarmJoinStarvation = "join_starvation"
)

// alarm is one threshold alarm with hysteresis: the breach condition
// must hold for fireAfter consecutive hourly evaluations to fire, and
// must be clear for clearAfter consecutive evaluations to clear, so a
// single noisy hour neither raises nor silences it.
type alarm struct {
	name       string
	fireAfter  int
	clearAfter int

	breaches int // consecutive breached evaluations
	oks      int // consecutive clear evaluations
	firing   bool
	since    wan.Hour // hour the alarm started firing
	reason   string   // latest breach description
}

// observe feeds one hourly evaluation into the state machine and
// reports whether the firing state transitioned.
func (a *alarm) observe(h wan.Hour, breached bool, reason string) bool {
	if breached {
		a.breaches++
		a.oks = 0
		a.reason = reason
		if !a.firing && a.breaches >= a.fireAfter {
			a.firing = true
			a.since = h
			return true
		}
		return false
	}
	a.oks++
	a.breaches = 0
	if a.firing && a.oks >= a.clearAfter {
		a.firing = false
		a.reason = ""
		return true
	}
	return false
}

// AlarmStatus is one alarm's externally visible state.
type AlarmStatus struct {
	Name   string   `json:"name"`
	Firing bool     `json:"firing"`
	Since  wan.Hour `json:"since_hour"` // meaningful only while firing
	Reason string   `json:"reason,omitempty"`
}

func (a *alarm) status() AlarmStatus {
	s := AlarmStatus{Name: a.name, Firing: a.firing}
	if a.firing {
		s.Since = a.since
		s.Reason = a.reason
	}
	return s
}
