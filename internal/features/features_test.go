package features

import (
	"testing"
	"testing/quick"

	"tipsy/internal/bgp"
	"tipsy/internal/geo"
	"tipsy/internal/wan"
)

func TestProjectZeroesUnusedFeatures(t *testing.T) {
	f := FlowFeatures{AS: 64496, Prefix: 0x0b000100, Loc: 7, Region: 3, Type: 2}
	a := SetA.Project(f)
	if a.Prefix != 0 || a.Loc != 0 {
		t.Errorf("SetA should drop prefix and loc: %+v", a)
	}
	if a.AS != f.AS || a.Region != f.Region || a.Type != f.Type {
		t.Errorf("SetA lost shared features: %+v", a)
	}
	ap := SetAP.Project(f)
	if ap.Prefix != f.Prefix || ap.Loc != 0 {
		t.Errorf("SetAP wrong: %+v", ap)
	}
	al := SetAL.Project(f)
	if al.Loc != f.Loc || al.Prefix != 0 {
		t.Errorf("SetAL wrong: %+v", al)
	}
}

func TestProjectIsDeterministicAndComparable(t *testing.T) {
	fn := func(as uint32, prefix uint32, loc uint16, region uint16, typ uint8) bool {
		f := FlowFeatures{AS: bgp.ASN(as), Prefix: prefix &^ 0xff,
			Loc: geo.MetroID(loc), Region: wan.Region(region), Type: wan.ServiceType(typ)}
		for _, s := range []Set{SetA, SetAP, SetAL} {
			if s.Project(f) != s.Project(f) {
				return false
			}
		}
		// Two flows identical under a projection must map to the same tuple.
		g := f
		g.Prefix = prefix&^0xff + 0 // same
		return SetA.Project(f) == SetA.Project(g)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestSetStrings(t *testing.T) {
	if SetA.String() != "A" || SetAP.String() != "AP" || SetAL.String() != "AL" {
		t.Error("feature set names must match the paper")
	}
}

func TestDict(t *testing.T) {
	var d Dict
	a := d.Code(1000)
	b := d.Code(2000)
	if a == b {
		t.Fatal("distinct values share a code")
	}
	if got := d.Code(1000); got != a {
		t.Fatal("re-coding the same value changed the code")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if v, ok := d.Value(a); !ok || v != 1000 {
		t.Fatal("reverse lookup broken")
	}
	if _, ok := d.Value(99); ok {
		t.Fatal("unknown code should not resolve")
	}
	if _, ok := d.Lookup(3000); ok {
		t.Fatal("Lookup must not allocate codes")
	}
	if d.Len() != 2 {
		t.Fatal("Lookup allocated a code")
	}
}

func TestDictDense(t *testing.T) {
	var d Dict
	for i := 0; i < 1000; i++ {
		if c := d.Code(uint64(i * 7919)); c != uint32(i) {
			t.Fatalf("codes not dense: value %d got code %d", i, c)
		}
	}
}

func TestCardinalities(t *testing.T) {
	recs := []Record{
		{Flow: FlowFeatures{AS: 1, Prefix: 100, Loc: 1, Region: 1, Type: 1}, Link: 1, Bytes: 10},
		{Flow: FlowFeatures{AS: 1, Prefix: 200, Loc: 1, Region: 1, Type: 1}, Link: 2, Bytes: 10},
		{Flow: FlowFeatures{AS: 2, Prefix: 300, Loc: 2, Region: 2, Type: 1}, Link: 1, Bytes: 10},
	}
	c := Cardinalities(recs)
	if c.AS != 2 || c.Prefix != 3 || c.Loc != 2 || c.Region != 2 || c.Type != 1 {
		t.Errorf("feature cardinalities wrong: %+v", c)
	}
	// Two records share the A and AL tuples (same AS, loc, dest) but
	// differ in prefix.
	if c.TuplesA != 2 || c.TuplesAL != 2 || c.TuplesAP != 3 {
		t.Errorf("tuple cardinalities wrong: %+v", c)
	}
}

func TestTupleString(t *testing.T) {
	tu := Tuple{AS: 64496, Prefix: 0x0b000100, Region: 9, Type: 1}
	s := tu.String()
	if s == "" {
		t.Fatal("empty tuple string")
	}
	al := Tuple{AS: 64496, Loc: 5, Region: 9, Type: 1}
	if al.String() == s {
		t.Fatal("different tuples render identically")
	}
}
