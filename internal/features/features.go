// Package features implements TIPSY's feature engineering (§3.2 of
// the paper): flow aggregates described by source AS, source /24
// prefix, source location, destination region, and destination type;
// the three feature-set projections A, AP, and AL the models train
// over; ordinal (dictionary) encoding used to compress aggregated
// data; and the cardinality accounting behind Table 1.
package features

import (
	"fmt"

	"tipsy/internal/bgp"
	"tipsy/internal/geo"
	"tipsy/internal/wan"
)

// FlowFeatures is the full feature vector of one flow aggregate.
type FlowFeatures struct {
	AS     bgp.ASN
	Prefix uint32 // /24 base of the source address
	Loc    geo.MetroID
	Region wan.Region
	Type   wan.ServiceType
}

// Record is one aggregated observation: during Hour, Bytes of the
// flow aggregate Flow ingressed on Link. Records are what the
// aggregation pipeline produces and what models train on.
type Record struct {
	Hour  wan.Hour
	Flow  FlowFeatures
	Link  wan.LinkID
	Bytes float64
}

// Set selects which features a model uses. The paper always includes
// source AS and both destination features, and explores adding source
// prefix (AP) or source location (AL); APL is equivalent to AP
// because each /24 has exactly one location (Table 1).
type Set uint8

const (
	// SetA uses source AS + destination region and type.
	SetA Set = iota
	// SetAP adds the source /24 prefix.
	SetAP
	// SetAL adds the source location instead of the prefix.
	SetAL
)

// String implements fmt.Stringer using the paper's names.
func (s Set) String() string {
	switch s {
	case SetA:
		return "A"
	case SetAP:
		return "AP"
	case SetAL:
		return "AL"
	}
	return fmt.Sprintf("Set(%d)", uint8(s))
}

// Tuple is a flow aggregate projected onto a feature set: the unit a
// model keys its learned state by. Fields outside the set are zero,
// so Tuples are directly comparable and usable as map keys.
type Tuple struct {
	AS     bgp.ASN
	Prefix uint32
	Loc    geo.MetroID
	Region wan.Region
	Type   wan.ServiceType
}

// Project returns the flow's tuple under the feature set.
func (s Set) Project(f FlowFeatures) Tuple {
	t := Tuple{AS: f.AS, Region: f.Region, Type: f.Type}
	switch s {
	case SetAP:
		t.Prefix = f.Prefix
	case SetAL:
		t.Loc = f.Loc
	}
	return t
}

// String renders the tuple compactly for operator-facing output.
func (t Tuple) String() string {
	out := fmt.Sprintf("%v", t.AS)
	if t.Prefix != 0 {
		out += fmt.Sprintf(" %s/24", bgp.FormatIP(t.Prefix))
	}
	if t.Loc != 0 {
		out += fmt.Sprintf(" loc%d", t.Loc)
	}
	return out + fmt.Sprintf(" ->r%d/%v", t.Region, t.Type)
}

// Dict ordinally encodes sparse 64-bit feature values into dense
// 32-bit codes, the "simple dictionary (i.e., ordinal encoding)" of
// §4.2. The zero value is ready to use.
type Dict struct {
	fwd map[uint64]uint32
	rev []uint64
}

// Code returns the dense code for v, allocating one if new.
func (d *Dict) Code(v uint64) uint32 {
	if d.fwd == nil {
		d.fwd = make(map[uint64]uint32)
	}
	if c, ok := d.fwd[v]; ok {
		return c
	}
	c := uint32(len(d.rev))
	d.fwd[v] = c
	d.rev = append(d.rev, v)
	return c
}

// Lookup returns the dense code for v without allocating.
func (d *Dict) Lookup(v uint64) (uint32, bool) {
	c, ok := d.fwd[v]
	return c, ok
}

// Value returns the original value for a code.
func (d *Dict) Value(c uint32) (uint64, bool) {
	if int(c) >= len(d.rev) {
		return 0, false
	}
	return d.rev[c], true
}

// Len reports the number of distinct values seen.
func (d *Dict) Len() int { return len(d.rev) }

// Cardinality is the Table 1 accounting: distinct values per feature
// and distinct tuples per feature set.
type Cardinality struct {
	AS, Prefix, Loc, Region, Type int
	TuplesA, TuplesAP, TuplesAL   int
}

// Cardinalities scans records and counts distinct feature values and
// tuples.
func Cardinalities(recs []Record) Cardinality {
	var as, prefix, loc, region, typ Dict
	tA := make(map[Tuple]struct{})
	tAP := make(map[Tuple]struct{})
	tAL := make(map[Tuple]struct{})
	for _, r := range recs {
		as.Code(uint64(r.Flow.AS))
		prefix.Code(uint64(r.Flow.Prefix))
		loc.Code(uint64(r.Flow.Loc))
		region.Code(uint64(r.Flow.Region))
		typ.Code(uint64(r.Flow.Type))
		tA[SetA.Project(r.Flow)] = struct{}{}
		tAP[SetAP.Project(r.Flow)] = struct{}{}
		tAL[SetAL.Project(r.Flow)] = struct{}{}
	}
	return Cardinality{
		AS: as.Len(), Prefix: prefix.Len(), Loc: loc.Len(),
		Region: region.Len(), Type: typ.Len(),
		TuplesA: len(tA), TuplesAP: len(tAP), TuplesAL: len(tAL),
	}
}
