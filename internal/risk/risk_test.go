package risk

import (
	"strings"
	"testing"

	"tipsy/internal/bgp"
	"tipsy/internal/core"
	"tipsy/internal/features"
	"tipsy/internal/wan"
)

// staticDir is a minimal wan.Directory for unit tests.
type staticDir struct{ links map[wan.LinkID]wan.Link }

func (d *staticDir) Link(id wan.LinkID) (wan.Link, bool) { l, ok := d.links[id]; return l, ok }
func (d *staticDir) LinksOfAS(as bgp.ASN) []wan.LinkID {
	var out []wan.LinkID
	for id := wan.LinkID(1); int(id) <= len(d.links); id++ {
		if d.links[id].PeerAS == as {
			out = append(out, id)
		}
	}
	return out
}
func (d *staticDir) Links() []wan.LinkID {
	out := make([]wan.LinkID, 0, len(d.links))
	for id := wan.LinkID(1); int(id) <= len(d.links); id++ {
		out = append(out, id)
	}
	return out
}

// gbph converts a utilization fraction of a 10G link into bytes/hour.
func gbph(util float64) float64 { return util * 10e9 * 3600 / 8 }

func testSetup() (*staticDir, core.Predictor, []features.Record) {
	dir := &staticDir{links: map[wan.LinkID]wan.Link{
		1: {ID: 1, Metro: 1, PeerAS: 5, Capacity: 10e9, Router: "sea01-er1"},
		2: {ID: 2, Metro: 1, PeerAS: 5, Capacity: 10e9, Router: "sea01-er2"},
		3: {ID: 3, Metro: 2, PeerAS: 6, Capacity: 10e9, Router: "sjc02-er1"},
	}}
	f1 := features.FlowFeatures{AS: 5, Prefix: 100, Loc: 1, Region: 1, Type: 1}
	f2 := features.FlowFeatures{AS: 6, Prefix: 200, Loc: 2, Region: 1, Type: 1}
	// Training: f1 arrives on links 1 and 2 (so the model knows link 2
	// is f1's alternate); f2 lives on link 3.
	train := []features.Record{
		{Hour: 0, Flow: f1, Link: 1, Bytes: gbph(0.5)},
		{Hour: 0, Flow: f1, Link: 2, Bytes: gbph(0.1)},
		{Hour: 0, Flow: f2, Link: 3, Bytes: gbph(0.2)},
	}
	model := core.TrainHistorical(features.SetAP, train, core.DefaultHistOpts())
	// Test window: link 1 carries 60% on f1, link 2 idles at 30%,
	// link 3 at 20%. If link 1 fails, its 60% lands on link 2
	// (30% + 60% = 90% >= 70%): link 2 is at risk from link 1.
	var test []features.Record
	for h := wan.Hour(0); h < 5; h++ {
		test = append(test,
			features.Record{Hour: h, Flow: f1, Link: 1, Bytes: gbph(0.6)},
			features.Record{Hour: h, Flow: f1, Link: 2, Bytes: gbph(0.3)},
			features.Record{Hour: h, Flow: f2, Link: 3, Bytes: gbph(0.2)},
		)
	}
	return dir, model, test
}

func TestAtRiskFindsInducedOverload(t *testing.T) {
	dir, model, test := testSetup()
	rows := AtRisk(dir, model, test, DefaultOptions())
	if len(rows) == 0 {
		t.Fatal("no at-risk links found")
	}
	found := false
	for _, r := range rows {
		if r.Link == 2 && r.Affecting == 1 {
			found = true
			if r.PredictedHours != 5 {
				t.Errorf("predicted hot hours = %d, want 5", r.PredictedHours)
			}
			if r.TypicalHours != 0 {
				t.Errorf("typical hot hours = %d, want 0 (operationally surprising case)", r.TypicalHours)
			}
		}
		if r.Link == 3 {
			t.Errorf("link 3 should not be at risk: %+v", r)
		}
	}
	if !found {
		t.Fatalf("expected (link 2 at risk from link 1), got %+v", rows)
	}
}

func TestAtRiskIgnoresAlreadyHotHours(t *testing.T) {
	dir, model, test := testSetup()
	// Make link 2 already hot in every hour: no NEW hot hours can be
	// induced, so no finding for it.
	for i := range test {
		if test[i].Link == 2 {
			test[i].Bytes = gbph(0.75)
		}
	}
	rows := AtRisk(dir, model, test, DefaultOptions())
	for _, r := range rows {
		if r.Link == 2 && r.Affecting == 1 && r.PredictedHours > 0 {
			t.Errorf("already-hot hours must not count as induced: %+v", r)
		}
	}
}

func TestAtRiskThresholdKnob(t *testing.T) {
	dir, model, test := testSetup()
	// At a 95% threshold the 90% projected load is no longer a risk.
	rows := AtRisk(dir, model, test, Options{UtilThreshold: 0.95})
	for _, r := range rows {
		if r.Link == 2 && r.Affecting == 1 {
			t.Errorf("no risk expected at 95%% threshold: %+v", r)
		}
	}
}

func TestAtRiskDeterministicOrder(t *testing.T) {
	dir, model, test := testSetup()
	a := AtRisk(dir, model, test, DefaultOptions())
	b := AtRisk(dir, model, test, DefaultOptions())
	if len(a) != len(b) {
		t.Fatal("row counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across runs", i)
		}
	}
}

func TestFormat(t *testing.T) {
	dir, model, test := testSetup()
	rows := AtRisk(dir, model, test, DefaultOptions())
	out := Format(rows, dir, 5)
	if !strings.Contains(out, "sea01-er2") || !strings.Contains(out, "sea01-er1") {
		t.Errorf("formatted table missing routers:\n%s", out)
	}
	if empty := Format(nil, dir, 5); !strings.Contains(empty, "no links at risk") {
		t.Errorf("empty table: %s", empty)
	}
}
