// Package risk implements Appendix C of the paper: using TIPSY to
// identify peering links at risk of overload should some other
// peering link fail (Algorithm 1). Operators use this for capacity
// planning — provisioning link B before the outage of link A pushes
// it over the edge takes weeks of lead time.
package risk

import (
	"fmt"
	"sort"
	"strings"

	"tipsy/internal/core"
	"tipsy/internal/eval"
	"tipsy/internal/features"
	"tipsy/internal/wan"
)

// Options tunes the at-risk analysis.
type Options struct {
	// UtilThreshold is the average hourly utilization considered
	// "exceedingly high" — the paper uses 70%, because bursty traffic
	// at 70% hourly average already queues and drops.
	UtilThreshold float64
	// MaxAffecting bounds how many hypothetical single-link outages
	// are simulated per hour (all links carrying traffic if <= 0).
	MaxAffecting int
}

// DefaultOptions matches the paper's Algorithm 1 parameters.
func DefaultOptions() Options { return Options{UtilThreshold: 0.70} }

// Row is one finding: if Affecting fails, Link spends PredictedHours
// additional hours above the utilization threshold during the
// analysis window, versus TypicalHours normally.
type Row struct {
	Link           wan.LinkID
	Affecting      wan.LinkID
	TypicalHours   int
	PredictedHours int
}

// AtRisk runs Algorithm 1 over a window of aggregated test records:
// for every hour and every link A carrying traffic, predict — with
// the given model — where each flow that ingressed on A would arrive
// if A were down, add the shifted bytes to the other links' actual
// loads, and report (link, affecting-link) pairs whose predicted
// utilization crosses the threshold in hours where it otherwise would
// not.
func AtRisk(dir wan.Directory, model core.Predictor, recs []features.Record, opts Options) []Row {
	if opts.UtilThreshold <= 0 {
		opts.UtilThreshold = DefaultOptions().UtilThreshold
	}
	groups := eval.GroupByFlowHour(recs)

	// Actual per-link per-hour loads.
	type hourLoad map[wan.LinkID]float64
	actual := make(map[wan.Hour]hourLoad)
	hoursSet := make(map[wan.Hour]bool)
	for gi := range groups {
		g := &groups[gi]
		hl := actual[g.Hour]
		if hl == nil {
			hl = make(hourLoad)
			actual[g.Hour] = hl
		}
		for l, b := range g.Links {
			hl[l] += b
		}
		hoursSet[g.Hour] = true
	}
	var hours []wan.Hour
	for h := range hoursSet {
		hours = append(hours, h)
	}
	sort.Slice(hours, func(i, j int) bool { return hours[i] < hours[j] })

	util := func(l wan.LinkID, bytes float64) float64 {
		link, ok := dir.Link(l)
		if !ok {
			return 0
		}
		return link.Utilization(bytes, 3600)
	}

	typical := make(map[wan.LinkID]int)
	for _, h := range hours {
		for l, b := range actual[h] {
			if util(l, b) >= opts.UtilThreshold {
				typical[l]++
			}
		}
	}

	// Group flows per hour by the link they ingressed on so each
	// hypothetical outage of A shifts exactly A's flows.
	byHourLink := make(map[wan.Hour]map[wan.LinkID][]*eval.Group)
	for gi := range groups {
		g := &groups[gi]
		m := byHourLink[g.Hour]
		if m == nil {
			m = make(map[wan.LinkID][]*eval.Group)
			byHourLink[g.Hour] = m
		}
		for l := range g.Links {
			m[l] = append(m[l], g)
		}
	}

	extra := make(map[[2]wan.LinkID]int) // [affected, affecting] -> hours
	for _, h := range hours {
		perLink := byHourLink[h]
		var as []wan.LinkID
		for a := range perLink {
			as = append(as, a)
		}
		sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
		if opts.MaxAffecting > 0 && len(as) > opts.MaxAffecting {
			as = as[:opts.MaxAffecting]
		}
		for _, a := range as {
			shifted := make(map[wan.LinkID]float64)
			for _, g := range perLink[a] {
				moved := g.Links[a]
				if moved <= 0 {
					continue
				}
				preds := model.Predict(core.Query{
					Flow: g.Flow, K: 3,
					Exclude: func(l wan.LinkID) bool { return l == a },
				})
				for _, p := range preds {
					shifted[p.Link] += moved * p.Frac
				}
			}
			for b, add := range shifted {
				if b == a {
					continue
				}
				base := actual[h][b]
				if util(b, base) < opts.UtilThreshold && util(b, base+add) >= opts.UtilThreshold {
					extra[[2]wan.LinkID{b, a}]++
				}
			}
		}
	}

	rows := make([]Row, 0, len(extra))
	for k, n := range extra {
		rows = append(rows, Row{Link: k[0], Affecting: k[1], TypicalHours: typical[k[0]], PredictedHours: n})
	}
	// Sort by impact: most additional hot hours first, then fewest
	// typical hours (the operationally surprising cases).
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].PredictedHours != rows[j].PredictedHours {
			return rows[i].PredictedHours > rows[j].PredictedHours
		}
		if rows[i].TypicalHours != rows[j].TypicalHours {
			return rows[i].TypicalHours < rows[j].TypicalHours
		}
		if rows[i].Link != rows[j].Link {
			return rows[i].Link < rows[j].Link
		}
		return rows[i].Affecting < rows[j].Affecting
	})
	return rows
}

// Format renders findings in the layout of the paper's Table 12.
func Format(rows []Row, dir wan.Directory, limit int) string {
	var b strings.Builder
	b.WriteString("Table 12: peering links at risk of overload on individual link outage\n")
	fmt.Fprintf(&b, "%-14s %-9s %6s %8s %10s | %-14s %-9s %6s\n",
		"Router", "Peer", "BW", ">70%typ", ">70%pred", "Affecting", "Peer", "BW")
	n := 0
	for _, r := range rows {
		if limit > 0 && n >= limit {
			break
		}
		l, ok1 := dir.Link(r.Link)
		a, ok2 := dir.Link(r.Affecting)
		if !ok1 || !ok2 {
			continue
		}
		fmt.Fprintf(&b, "%-14s %-9v %5.0fG %8d %10d | %-14s %-9v %5.0fG\n",
			l.Router, l.PeerAS, l.Capacity/1e9, r.TypicalHours, r.PredictedHours,
			a.Router, a.PeerAS, a.Capacity/1e9)
		n++
	}
	if n == 0 {
		b.WriteString("(no links at risk in this window)\n")
	}
	return b.String()
}
