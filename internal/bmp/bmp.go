// Package bmp implements the BGP Monitoring Protocol (RFC 7854)
// subset TIPSY's substrate uses: message framing for Initiation,
// Termination, Peer Up, Peer Down, and Route Monitoring messages, and
// a monitoring station that maintains a route view.
//
// As in the paper (§4.1), BMP data is used for debugging and
// non-operational analysis such as the AS-distance CDFs (Figures 2
// and 3) — it never feeds model training or execution.
package bmp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tipsy/internal/bgp"
)

// Version is the BMP protocol version (RFC 7854 §4.1).
const Version = 3

// Message types, RFC 7854 §4.
const (
	TypeRouteMonitoring  = 0
	TypeStatisticsReport = 1
	TypePeerDown         = 2
	TypePeerUp           = 3
	TypeInitiation       = 4
	TypeTermination      = 5
)

// Initiation/Termination information TLV types.
const (
	TLVString   = 0
	TLVSysDescr = 1
	TLVSysName  = 2
	// TLVReason is the Termination reason TLV.
	TLVReason = 1
)

// Header sizes.
const (
	commonHeaderLen  = 6
	perPeerHeaderLen = 42
)

// Peer Down reason codes (RFC 7854 §4.9).
const (
	ReasonLocalNotification    = 1
	ReasonLocalNoNotification  = 2
	ReasonRemoteNotification   = 3
	ReasonRemoteNoNotification = 4
)

// Errors returned by Decode.
var (
	ErrShort      = errors.New("bmp: truncated message")
	ErrBadVersion = errors.New("bmp: unsupported version")
)

// PeerHeader is the per-peer header present on peer-scoped messages.
type PeerHeader struct {
	Type          uint8
	Flags         uint8
	Distinguisher uint64
	// Address is the peer's IPv4 address (the substrate is
	// IPv4-only); it occupies the low 4 bytes of the 16-byte wire
	// field per RFC 7854 with the V flag clear.
	Address        uint32
	AS             bgp.ASN
	BGPID          uint32
	Timestamp      uint32 // seconds (simulated)
	TimestampMicro uint32
}

// RouteMonitoring carries one BGP UPDATE as seen on a monitored
// session.
type RouteMonitoring struct {
	Peer   PeerHeader
	Update *bgp.Update
}

// PeerUp announces a monitored session coming up.
type PeerUp struct {
	Peer       PeerHeader
	LocalAddr  uint32
	LocalPort  uint16
	RemotePort uint16
	SentOpen   *bgp.Open
	RecvOpen   *bgp.Open
}

// PeerDown announces a monitored session going down.
type PeerDown struct {
	Peer   PeerHeader
	Reason uint8
	Data   []byte
}

// Initiation announces a router starting to send BMP.
type Initiation struct {
	SysName  string
	SysDescr string
}

// Termination announces a router stopping BMP.
type Termination struct {
	Reason uint16
}

func appendCommonHeader(dst []byte, msgType uint8, bodyLen int) []byte {
	dst = append(dst, Version)
	dst = binary.BigEndian.AppendUint32(dst, uint32(commonHeaderLen+bodyLen))
	return append(dst, msgType)
}

func (p *PeerHeader) marshal(dst []byte) []byte {
	dst = append(dst, p.Type, p.Flags)
	dst = binary.BigEndian.AppendUint64(dst, p.Distinguisher)
	dst = append(dst, make([]byte, 12)...) // high 12 bytes of the address field
	dst = binary.BigEndian.AppendUint32(dst, p.Address)
	dst = binary.BigEndian.AppendUint32(dst, uint32(p.AS))
	dst = binary.BigEndian.AppendUint32(dst, p.BGPID)
	dst = binary.BigEndian.AppendUint32(dst, p.Timestamp)
	return binary.BigEndian.AppendUint32(dst, p.TimestampMicro)
}

func parsePeerHeader(buf []byte) (PeerHeader, error) {
	if len(buf) < perPeerHeaderLen {
		return PeerHeader{}, ErrShort
	}
	return PeerHeader{
		Type:           buf[0],
		Flags:          buf[1],
		Distinguisher:  binary.BigEndian.Uint64(buf[2:10]),
		Address:        binary.BigEndian.Uint32(buf[22:26]),
		AS:             bgp.ASN(binary.BigEndian.Uint32(buf[26:30])),
		BGPID:          binary.BigEndian.Uint32(buf[30:34]),
		Timestamp:      binary.BigEndian.Uint32(buf[34:38]),
		TimestampMicro: binary.BigEndian.Uint32(buf[38:42]),
	}, nil
}

// Marshal encodes the Route Monitoring message.
func (m *RouteMonitoring) Marshal() []byte {
	pdu := m.Update.Marshal()
	out := appendCommonHeader(make([]byte, 0, commonHeaderLen+perPeerHeaderLen+len(pdu)),
		TypeRouteMonitoring, perPeerHeaderLen+len(pdu))
	out = m.Peer.marshal(out)
	return append(out, pdu...)
}

// Marshal encodes the Peer Up message.
func (m *PeerUp) Marshal() []byte {
	sent := m.SentOpen.Marshal()
	recv := m.RecvOpen.Marshal()
	bodyLen := perPeerHeaderLen + 20 + len(sent) + len(recv)
	out := appendCommonHeader(make([]byte, 0, commonHeaderLen+bodyLen), TypePeerUp, bodyLen)
	out = m.Peer.marshal(out)
	out = append(out, make([]byte, 12)...)
	out = binary.BigEndian.AppendUint32(out, m.LocalAddr)
	out = binary.BigEndian.AppendUint16(out, m.LocalPort)
	out = binary.BigEndian.AppendUint16(out, m.RemotePort)
	out = append(out, sent...)
	return append(out, recv...)
}

// Marshal encodes the Peer Down message.
func (m *PeerDown) Marshal() []byte {
	bodyLen := perPeerHeaderLen + 1 + len(m.Data)
	out := appendCommonHeader(make([]byte, 0, commonHeaderLen+bodyLen), TypePeerDown, bodyLen)
	out = m.Peer.marshal(out)
	out = append(out, m.Reason)
	return append(out, m.Data...)
}

func appendTLV(dst []byte, typ uint16, val []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, typ)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(val)))
	return append(dst, val...)
}

// Marshal encodes the Initiation message.
func (m *Initiation) Marshal() []byte {
	var body []byte
	body = appendTLV(body, TLVSysDescr, []byte(m.SysDescr))
	body = appendTLV(body, TLVSysName, []byte(m.SysName))
	out := appendCommonHeader(make([]byte, 0, commonHeaderLen+len(body)), TypeInitiation, len(body))
	return append(out, body...)
}

// Marshal encodes the Termination message.
func (m *Termination) Marshal() []byte {
	var body []byte
	body = appendTLV(body, TLVReason, binary.BigEndian.AppendUint16(nil, m.Reason))
	out := appendCommonHeader(make([]byte, 0, commonHeaderLen+len(body)), TypeTermination, len(body))
	return append(out, body...)
}

// WireLen reports the framed length of the next BMP message, or 0 if
// the header is incomplete.
func WireLen(buf []byte) int {
	if len(buf) < commonHeaderLen {
		return 0
	}
	return int(binary.BigEndian.Uint32(buf[1:5]))
}

// Decode parses one framed BMP message, returning *RouteMonitoring,
// *PeerUp, *PeerDown, *Initiation, or *Termination.
func Decode(buf []byte) (any, error) {
	if len(buf) < commonHeaderLen {
		return nil, ErrShort
	}
	if buf[0] != Version {
		return nil, ErrBadVersion
	}
	length := int(binary.BigEndian.Uint32(buf[1:5]))
	if length < commonHeaderLen || length > len(buf) {
		return nil, ErrShort
	}
	msgType := buf[5]
	body := buf[commonHeaderLen:length]
	switch msgType {
	case TypeRouteMonitoring:
		peer, err := parsePeerHeader(body)
		if err != nil {
			return nil, err
		}
		pdu, err := bgp.Unmarshal(body[perPeerHeaderLen:])
		if err != nil {
			return nil, fmt.Errorf("bmp: inner PDU: %w", err)
		}
		upd, ok := pdu.(*bgp.Update)
		if !ok {
			return nil, fmt.Errorf("bmp: route monitoring carries %T, want UPDATE", pdu)
		}
		return &RouteMonitoring{Peer: peer, Update: upd}, nil
	case TypePeerUp:
		peer, err := parsePeerHeader(body)
		if err != nil {
			return nil, err
		}
		rest := body[perPeerHeaderLen:]
		if len(rest) < 20 {
			return nil, ErrShort
		}
		up := &PeerUp{
			Peer:       peer,
			LocalAddr:  binary.BigEndian.Uint32(rest[12:16]),
			LocalPort:  binary.BigEndian.Uint16(rest[16:18]),
			RemotePort: binary.BigEndian.Uint16(rest[18:20]),
		}
		rest = rest[20:]
		n := bgp.WireLen(rest)
		if n == 0 || n > len(rest) {
			return nil, ErrShort
		}
		sent, err := bgp.Unmarshal(rest[:n])
		if err != nil {
			return nil, err
		}
		rest = rest[n:]
		n = bgp.WireLen(rest)
		if n == 0 || n > len(rest) {
			return nil, ErrShort
		}
		recv, err := bgp.Unmarshal(rest[:n])
		if err != nil {
			return nil, err
		}
		var ok bool
		if up.SentOpen, ok = sent.(*bgp.Open); !ok {
			return nil, fmt.Errorf("bmp: peer up sent PDU is %T", sent)
		}
		if up.RecvOpen, ok = recv.(*bgp.Open); !ok {
			return nil, fmt.Errorf("bmp: peer up recv PDU is %T", recv)
		}
		return up, nil
	case TypePeerDown:
		peer, err := parsePeerHeader(body)
		if err != nil {
			return nil, err
		}
		rest := body[perPeerHeaderLen:]
		if len(rest) < 1 {
			return nil, ErrShort
		}
		return &PeerDown{Peer: peer, Reason: rest[0], Data: append([]byte(nil), rest[1:]...)}, nil
	case TypeInitiation:
		m := &Initiation{}
		if err := walkTLVs(body, func(typ uint16, val []byte) {
			switch typ {
			case TLVSysDescr:
				m.SysDescr = string(val)
			case TLVSysName:
				m.SysName = string(val)
			}
		}); err != nil {
			return nil, err
		}
		return m, nil
	case TypeTermination:
		m := &Termination{}
		if err := walkTLVs(body, func(typ uint16, val []byte) {
			if typ == TLVReason && len(val) == 2 {
				m.Reason = binary.BigEndian.Uint16(val)
			}
		}); err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, fmt.Errorf("bmp: unknown message type %d", msgType)
	}
}

func walkTLVs(body []byte, fn func(typ uint16, val []byte)) error {
	for len(body) > 0 {
		if len(body) < 4 {
			return ErrShort
		}
		typ := binary.BigEndian.Uint16(body[0:2])
		vlen := int(binary.BigEndian.Uint16(body[2:4]))
		if len(body) < 4+vlen {
			return ErrShort
		}
		fn(typ, body[4:4+vlen])
		body = body[4+vlen:]
	}
	return nil
}
