package bmp

import (
	"bytes"
	"reflect"
	"testing"

	"tipsy/internal/bgp"
)

func samplePeer() PeerHeader {
	return PeerHeader{
		Type:      0,
		Flags:     0,
		Address:   bgp.V4(203, 0, 113, 9),
		AS:        64496,
		BGPID:     bgp.V4(203, 0, 113, 9),
		Timestamp: 7200,
	}
}

func sampleRM() *RouteMonitoring {
	return &RouteMonitoring{
		Peer: samplePeer(),
		Update: &bgp.Update{
			Attrs: bgp.PathAttrs{
				Origin:  bgp.OriginIGP,
				ASPath:  []bgp.ASN{64496, 174},
				NextHop: bgp.V4(203, 0, 113, 9),
			},
			NLRI: []bgp.Prefix{bgp.MakePrefix(bgp.V4(100, 64, 0, 0), 10)},
		},
	}
}

func TestRouteMonitoringRoundTrip(t *testing.T) {
	m := sampleRM()
	got, err := Decode(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	back, ok := got.(*RouteMonitoring)
	if !ok {
		t.Fatalf("decoded %T", got)
	}
	if !reflect.DeepEqual(back, m) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, m)
	}
}

func TestPeerUpRoundTrip(t *testing.T) {
	m := &PeerUp{
		Peer:       samplePeer(),
		LocalAddr:  bgp.V4(198, 51, 100, 1),
		LocalPort:  179,
		RemotePort: 40123,
		SentOpen:   &bgp.Open{Version: 4, AS: 64500, HoldTime: 90, BGPID: 1},
		RecvOpen:   &bgp.Open{Version: 4, AS: 64496, HoldTime: 90, BGPID: 2},
	}
	got, err := Decode(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestPeerDownRoundTrip(t *testing.T) {
	m := &PeerDown{Peer: samplePeer(), Reason: ReasonRemoteNoNotification, Data: []byte{}}
	got, err := Decode(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	back := got.(*PeerDown)
	if back.Reason != m.Reason || back.Peer != m.Peer {
		t.Errorf("round trip mismatch: %+v", back)
	}
}

func TestInitiationTerminationRoundTrip(t *testing.T) {
	ini := &Initiation{SysName: "fra01-er2", SysDescr: "edge router"}
	got, err := Decode(ini.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ini) {
		t.Errorf("initiation mismatch: %+v", got)
	}
	term := &Termination{Reason: 1}
	got, err = Decode(term.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, term) {
		t.Errorf("termination mismatch: %+v", got)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	msg := (&Initiation{}).Marshal()
	msg[0] = 2
	if _, err := Decode(msg); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	msg := sampleRM().Marshal()
	for cut := 1; cut < len(msg); cut += 5 {
		if _, err := Decode(msg[:cut]); err == nil {
			t.Errorf("truncation at %d decoded without error", cut)
		}
	}
}

func TestStationLifecycle(t *testing.T) {
	st := NewStation()
	const router = 7
	if err := st.Handle(router, (&Initiation{SysName: "r1"}).Marshal()); err != nil {
		t.Fatal(err)
	}
	peer := samplePeer()
	up := &PeerUp{
		Peer: peer, LocalAddr: 1, LocalPort: 179, RemotePort: 1000,
		SentOpen: &bgp.Open{Version: 4, AS: 64500, BGPID: 1},
		RecvOpen: &bgp.Open{Version: 4, AS: peer.AS, BGPID: 2},
	}
	if err := st.Handle(router, up.Marshal()); err != nil {
		t.Fatal(err)
	}
	key := SessionKey{router, peer.AS, peer.Address}
	if !st.SessionUp(key) {
		t.Fatal("session should be up")
	}

	rm := sampleRM()
	if err := st.Handle(router, rm.Marshal()); err != nil {
		t.Fatal(err)
	}
	pfx := rm.Update.NLRI[0]
	if path := st.Routes(key, pfx); len(path) != 2 || path[0] != 64496 {
		t.Errorf("route view wrong: %v", path)
	}

	// Withdraw the prefix.
	wd := &RouteMonitoring{Peer: peer, Update: &bgp.Update{Withdrawn: []bgp.Prefix{pfx}}}
	if err := st.Handle(router, wd.Marshal()); err != nil {
		t.Fatal(err)
	}
	if st.Routes(key, pfx) != nil {
		t.Error("withdrawn prefix still present")
	}

	down := &PeerDown{Peer: peer, Reason: ReasonLocalNotification}
	if err := st.Handle(router, down.Marshal()); err != nil {
		t.Fatal(err)
	}
	if st.SessionUp(key) {
		t.Error("session should be down")
	}
	if s := st.Stats(); s.Monitored != 2 || s.PeerUps != 1 || s.PeerDowns != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestStationToleratesMidStreamJoin(t *testing.T) {
	st := NewStation()
	// Route Monitoring without a prior Peer Up must not error.
	if err := st.Handle(1, sampleRM().Marshal()); err != nil {
		t.Fatal(err)
	}
	if st.NumSessions() != 1 {
		t.Error("implicit session should be created")
	}
}

func TestStationReadStream(t *testing.T) {
	var buf bytes.Buffer
	buf.Write((&Initiation{SysName: "r9"}).Marshal())
	buf.Write(sampleRM().Marshal())
	buf.Write(sampleRM().Marshal())
	st := NewStation()
	if err := st.ReadStream(9, &buf); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Monitored != 2 {
		t.Errorf("monitored = %d, want 2", s.Monitored)
	}
}

func TestStationQuarantinesCorruptMessage(t *testing.T) {
	st := NewStation()
	good := sampleRM().Marshal()
	bad := append([]byte(nil), good...)
	bad[0] = 99 // impossible BMP version
	if err := st.Handle(1, bad); err == nil {
		t.Error("corrupt message should return an error")
	}
	if err := st.Handle(1, good); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Quarantined != 1 || s.Monitored != 1 {
		t.Errorf("stats after quarantine = %+v", s)
	}
}

func TestStationReadStreamSurvivesCorruptMessage(t *testing.T) {
	// A correctly-framed message with a corrupt body is quarantined
	// and the stream keeps going.
	good := sampleRM().Marshal()
	bad := append([]byte(nil), good...)
	bad[5] = 200 // unknown message type; framing (version, length) intact
	var buf bytes.Buffer
	buf.Write(good)
	buf.Write(bad)
	buf.Write(good)
	st := NewStation()
	if err := st.ReadStream(3, &buf); err != nil {
		t.Fatalf("stream aborted on a quarantinable message: %v", err)
	}
	s := st.Stats()
	if s.Monitored != 2 || s.Quarantined != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestStationRebootstrapsOnPeerUpAfterDown(t *testing.T) {
	st := NewStation()
	peer := samplePeer()
	key := SessionKey{5, peer.AS, peer.Address}
	up := &PeerUp{
		Peer: peer, LocalAddr: 1, LocalPort: 179, RemotePort: 1000,
		SentOpen: &bgp.Open{Version: 4, AS: 64500, BGPID: 1},
		RecvOpen: &bgp.Open{Version: 4, AS: peer.AS, BGPID: 2},
	}
	rm := sampleRM()
	pfx := rm.Update.NLRI[0]

	st.Handle(5, up.Marshal())
	st.Handle(5, rm.Marshal())
	if st.Routes(key, pfx) == nil {
		t.Fatal("route not learned")
	}
	// Session drops mid-stream: state must be discarded.
	st.Handle(5, (&PeerDown{Peer: peer, Reason: ReasonRemoteNoNotification}).Marshal())
	if st.SessionUp(key) || st.Routes(key, pfx) != nil {
		t.Fatal("down session kept stale RIB state")
	}
	// Recovery: the next Peer Up re-bootstraps and the re-announced
	// routes rebuild the view.
	st.Handle(5, up.Marshal())
	if !st.SessionUp(key) {
		t.Fatal("session should be up after recovery")
	}
	if st.Routes(key, pfx) != nil {
		t.Fatal("re-bootstrap must start from an empty RIB")
	}
	st.Handle(5, rm.Marshal())
	if len(st.Routes(key, pfx)) != 2 {
		t.Error("re-announced route not learned after re-bootstrap")
	}
	if s := st.Stats(); s.Resyncs != 1 {
		t.Errorf("resyncs = %d, want 1", s.Resyncs)
	}
}

func TestWireLen(t *testing.T) {
	msg := sampleRM().Marshal()
	if got := WireLen(msg); got != len(msg) {
		t.Errorf("WireLen = %d, want %d", got, len(msg))
	}
	if WireLen(msg[:3]) != 0 {
		t.Error("short header should report 0")
	}
}
