package bmp

import (
	"io"
	"sync"

	"tipsy/internal/bgp"
	"tipsy/internal/obsv"
)

// SessionKey identifies one monitored BGP session at the station.
type SessionKey struct {
	RouterID uint32 // BMP sender (edge router)
	PeerAS   bgp.ASN
	PeerAddr uint32
}

// StationStats counts what the station has processed. Quarantined
// counts messages that failed to decode (corruption on the transport);
// Resyncs counts Peer Ups that re-bootstrapped an already-known
// session after a session-down, discarding any stale RIB state.
type StationStats struct {
	Monitored   uint64
	PeerUps     uint64
	PeerDowns   uint64
	Quarantined uint64
	Resyncs     uint64
}

// stationMetrics are the station's registry-backed counters.
type stationMetrics struct {
	monitored   *obsv.Counter
	peerUps     *obsv.Counter
	peerDowns   *obsv.Counter
	quarantined *obsv.Counter
	resyncs     *obsv.Counter
}

func newStationMetrics(reg *obsv.Registry) stationMetrics {
	return stationMetrics{
		monitored:   reg.Counter("bmp_monitored_total"),
		peerUps:     reg.Counter("bmp_peer_ups_total"),
		peerDowns:   reg.Counter("bmp_peer_downs_total"),
		quarantined: reg.Counter("bmp_quarantined_total"),
		resyncs:     reg.Counter("bmp_resyncs_total"),
	}
}

// Station is a BMP monitoring station: it consumes BMP messages from
// many routers and maintains the set of advertisements currently held
// on each monitored session. This is the data-lake view the paper's
// "BMP data listeners" provide for topology analysis.
type Station struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	routers map[uint32]string // router id -> sysname
	//tipsy:guardedby mu
	sessions map[SessionKey]*sessionState
	m        stationMetrics
}

type sessionState struct {
	up     bool
	routes map[bgp.Prefix][]bgp.ASN // prefix -> AS path last advertised
}

// NewStation creates an empty station with a private metrics registry.
func NewStation() *Station {
	return NewStationOn(obsv.NewRegistry())
}

// NewStationOn creates a station whose counters live in reg under the
// bmp_ prefix.
func NewStationOn(reg *obsv.Registry) *Station {
	return &Station{
		routers:  make(map[uint32]string),
		sessions: make(map[SessionKey]*sessionState),
		m:        newStationMetrics(reg),
	}
}

// Handle processes one framed BMP message from the given router. A
// message that fails to decode is quarantined — counted and reported,
// but it does not poison the session state already held, so the caller
// may keep feeding subsequent messages.
func (s *Station) Handle(routerID uint32, buf []byte) error {
	msg, err := Decode(buf)
	if err != nil {
		s.m.quarantined.Inc()
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch m := msg.(type) {
	case *Initiation:
		s.routers[routerID] = m.SysName
	case *Termination:
		delete(s.routers, routerID)
	case *PeerUp:
		key := SessionKey{routerID, m.Peer.AS, m.Peer.Address}
		if _, known := s.sessions[key]; known {
			// The session went down mid-stream (or the Peer Up is a
			// retransmission): re-bootstrap — drop whatever RIB state
			// survived and rebuild from the announcements that follow.
			s.m.resyncs.Inc()
		}
		s.sessions[key] = &sessionState{up: true, routes: make(map[bgp.Prefix][]bgp.ASN)}
		s.m.peerUps.Inc()
	case *PeerDown:
		key := SessionKey{routerID, m.Peer.AS, m.Peer.Address}
		if st, ok := s.sessions[key]; ok {
			st.up = false
			st.routes = make(map[bgp.Prefix][]bgp.ASN)
		}
		s.m.peerDowns.Inc()
	case *RouteMonitoring:
		key := SessionKey{routerID, m.Peer.AS, m.Peer.Address}
		st, ok := s.sessions[key]
		if !ok {
			// RFC 7854 requires Peer Up before Route Monitoring, but a
			// station must tolerate joining mid-stream.
			st = &sessionState{up: true, routes: make(map[bgp.Prefix][]bgp.ASN)}
			s.sessions[key] = st
		}
		for _, p := range m.Update.Withdrawn {
			delete(st.routes, p)
		}
		for _, p := range m.Update.NLRI {
			st.routes[p] = append([]bgp.ASN(nil), m.Update.Attrs.ASPath...)
		}
		s.m.monitored.Inc()
	}
	return nil
}

// ReadStream consumes framed BMP messages from r until EOF. A message
// that frames correctly but fails to decode is quarantined and the
// stream continues; only framing loss (an unparseable length header,
// after which message boundaries are unrecoverable) or a read error
// aborts.
func (s *Station) ReadStream(routerID uint32, r io.Reader) error {
	hdr := make([]byte, commonHeaderLen)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		total := WireLen(hdr)
		if total < commonHeaderLen {
			return ErrShort
		}
		msg := make([]byte, total)
		copy(msg, hdr)
		if _, err := io.ReadFull(r, msg[commonHeaderLen:]); err != nil {
			return err
		}
		// Decode failures are already counted in stats.Quarantined by
		// Handle; the stream itself is still framed, so keep reading.
		_ = s.Handle(routerID, msg)
	}
}

// Routes returns the AS path currently advertised for prefix on the
// given session, or nil.
func (s *Station) Routes(key SessionKey, prefix bgp.Prefix) []bgp.ASN {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sessions[key]
	if !ok {
		return nil
	}
	return st.routes[prefix]
}

// SessionUp reports whether the session is currently up.
func (s *Station) SessionUp(key SessionKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sessions[key]
	return ok && st.up
}

// Stats returns a snapshot of the station's counters, read from the
// registry metrics.
func (s *Station) Stats() StationStats {
	return StationStats{
		Monitored:   s.m.monitored.Value(),
		PeerUps:     s.m.peerUps.Value(),
		PeerDowns:   s.m.peerDowns.Value(),
		Quarantined: s.m.quarantined.Value(),
		Resyncs:     s.m.resyncs.Value(),
	}
}

// NumSessions reports how many sessions the station has seen.
func (s *Station) NumSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}
