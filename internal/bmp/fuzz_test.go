package bmp

import (
	"bytes"
	"testing"

	"tipsy/internal/bgp"
)

// fuzzSeeds marshals one of each BMP message type plus the quarantine
// classes: truncated frames, corrupted versions, and lying lengths.
func fuzzSeeds() [][]byte {
	peer := PeerHeader{
		Type: 0, Flags: 0, Address: 0x0a000001,
		AS: 64501, BGPID: 0x01010101, Timestamp: 1000,
	}
	up := &PeerUp{
		Peer: peer, LocalAddr: 0x0a0000fe, LocalPort: 179, RemotePort: 33000,
		SentOpen: &bgp.Open{Version: 4, AS: 64500, HoldTime: 90, BGPID: 2},
		RecvOpen: &bgp.Open{Version: 4, AS: 64501, HoldTime: 90, BGPID: 3},
	}
	mon := &RouteMonitoring{
		Peer: peer,
		Update: &bgp.Update{
			Withdrawn: []bgp.Prefix{bgp.MakePrefix(0x0c000000, 24)},
			NLRI:      []bgp.Prefix{bgp.MakePrefix(0x0b000000, 24)},
			Attrs: bgp.PathAttrs{
				Origin: 0, ASPath: []bgp.ASN{64501, 64502}, NextHop: 0x0a000001,
				Communities: []uint32{0xfde80001},
			},
		},
	}
	seeds := [][]byte{
		(&Initiation{SysName: "edge-1", SysDescr: "tipsy edge"}).Marshal(),
		up.Marshal(),
		mon.Marshal(),
		(&PeerDown{Peer: peer, Reason: ReasonRemoteNotification}).Marshal(),
		(&Termination{Reason: 1}).Marshal(),
	}
	full := append([]byte(nil), seeds[2]...)
	// Truncations around the header boundaries.
	for _, n := range []int{0, 1, commonHeaderLen - 1, commonHeaderLen, commonHeaderLen + perPeerHeaderLen - 1} {
		if n <= len(full) {
			seeds = append(seeds, full[:n])
		}
	}
	// Wrong version byte.
	bad := append([]byte(nil), full...)
	bad[0] = 9
	seeds = append(seeds, bad)
	// Length field larger and smaller than the buffer.
	long := append([]byte(nil), full...)
	long[1], long[2], long[3], long[4] = 0xff, 0xff, 0xff, 0xff
	seeds = append(seeds, long)
	short := append([]byte(nil), full...)
	short[1], short[2], short[3], short[4] = 0, 0, 0, commonHeaderLen
	seeds = append(seeds, short)
	seeds = append(seeds, []byte("garbage"), bytes.Repeat([]byte{0xaa}, 80))
	return seeds
}

// FuzzBMPDecode drives Decode and the monitoring station over
// arbitrary bytes. Malformed messages must error (the station
// quarantines them) — never panic, and never corrupt session state so
// badly that subsequent valid messages stop working.
func FuzzBMPDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	valid := (&Initiation{SysName: "after", SysDescr: "still works"}).Marshal()
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = WireLen(data)
		_, _ = Decode(data)

		s := NewStation()
		_ = s.Handle(1, data)
		// A quarantined message must not poison the station: a valid
		// message right after still processes.
		if err := s.Handle(1, valid); err != nil {
			t.Fatalf("valid message rejected after fuzz input: %v", err)
		}
		if s.Stats().Quarantined > 1 {
			t.Fatalf("valid message quarantined")
		}
	})
}
