// Package geo provides the geographic substrate TIPSY's AL models and
// the AL+G geographic-distance completion rely on: a database of world
// metropolitan areas, great-circle distance, and a Geo-IP service
// mapping source prefixes to metros.
//
// The paper uses a proprietary Microsoft geolocation database; §5.3.1
// observes that metro-level precision is sufficient for learning
// hot-potato behaviour. This package therefore works at metro
// granularity and lets callers inject a configurable error rate to
// model Geo-IP imprecision.
package geo

import (
	"fmt"
	"math"
)

// MetroID identifies a metropolitan area. IDs start at 1 so the zero
// value can mean "unknown/unused" in feature tuples.
type MetroID uint16

// Metro is one metropolitan area.
type Metro struct {
	ID      MetroID
	Name    string
	Country string
	Lat     float64 // degrees north
	Lon     float64 // degrees east
}

// Coord is a point on the globe.
type Coord struct {
	Lat float64
	Lon float64
}

// Coord returns the metro's coordinates.
func (m Metro) Coord() Coord { return Coord{m.Lat, m.Lon} }

// earthRadiusKm is the mean Earth radius used for great-circle math.
const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle (haversine) distance between two
// coordinates in kilometres.
func DistanceKm(a, b Coord) float64 {
	const degToRad = math.Pi / 180
	lat1, lat2 := a.Lat*degToRad, b.Lat*degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(s)))
}

// DB is an immutable metro database.
type DB struct {
	metros []Metro // index = MetroID-1
	// dist precomputes all pairwise great-circle distances
	// (dist[(a-1)*n + b-1]); with 64 metros the table is 32KB and
	// turns the haversine on the simulator's resolution hot path into
	// a load. Entries hold exactly what DistanceKm returns.
	dist []float64
}

// World returns the built-in database of major world metros where
// large WANs commonly peer.
func World() *DB {
	db := &DB{metros: make([]Metro, len(worldMetros))}
	copy(db.metros, worldMetros[:])
	for i := range db.metros {
		db.metros[i].ID = MetroID(i + 1)
	}
	n := len(db.metros)
	db.dist = make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			db.dist[i*n+j] = DistanceKm(db.metros[i].Coord(), db.metros[j].Coord())
		}
	}
	return db
}

// Len reports the number of metros.
func (db *DB) Len() int { return len(db.metros) }

// Metro returns the metro with the given ID.
func (db *DB) Metro(id MetroID) (Metro, bool) {
	if id == 0 || int(id) > len(db.metros) {
		return Metro{}, false
	}
	return db.metros[id-1], true
}

// MustMetro is Metro but panics on an unknown ID; for use with IDs the
// program itself produced.
func (db *DB) MustMetro(id MetroID) Metro {
	m, ok := db.Metro(id)
	if !ok {
		panic(fmt.Sprintf("geo: unknown metro id %d", id))
	}
	return m
}

// All returns every metro in ID order. The caller must not modify the
// returned slice.
func (db *DB) All() []Metro { return db.metros }

// Distance returns the great-circle distance between two metros in km.
func (db *DB) Distance(a, b MetroID) float64 {
	n := len(db.metros)
	if a == 0 || b == 0 || int(a) > n || int(b) > n {
		return math.Inf(1)
	}
	if db.dist != nil {
		return db.dist[(int(a)-1)*n+int(b)-1]
	}
	return DistanceKm(db.metros[a-1].Coord(), db.metros[b-1].Coord())
}

// Nearest returns, from candidates, the metro closest to origin. With
// an empty candidate list it returns 0.
func (db *DB) Nearest(origin MetroID, candidates []MetroID) MetroID {
	best := MetroID(0)
	bestD := math.Inf(1)
	for _, c := range candidates {
		if d := db.Distance(origin, c); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// RankByDistance returns candidates ordered by increasing distance
// from origin, using insertion order as a deterministic tie-break.
func (db *DB) RankByDistance(origin MetroID, candidates []MetroID) []MetroID {
	type cd struct {
		id MetroID
		d  float64
	}
	ranked := make([]cd, len(candidates))
	for i, c := range candidates {
		ranked[i] = cd{c, db.Distance(origin, c)}
	}
	// Stable insertion sort: candidate lists are short.
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0 && ranked[j].d < ranked[j-1].d; j-- {
			ranked[j], ranked[j-1] = ranked[j-1], ranked[j]
		}
	}
	out := make([]MetroID, len(ranked))
	for i, r := range ranked {
		out[i] = r.id
	}
	return out
}

// worldMetros lists 64 major metros. Coordinates are approximate city
// centers; metro-level precision is all the models need.
var worldMetros = [...]Metro{
	{Name: "Seattle", Country: "US", Lat: 47.61, Lon: -122.33},
	{Name: "San Jose", Country: "US", Lat: 37.34, Lon: -121.89},
	{Name: "Los Angeles", Country: "US", Lat: 34.05, Lon: -118.24},
	{Name: "Phoenix", Country: "US", Lat: 33.45, Lon: -112.07},
	{Name: "Denver", Country: "US", Lat: 39.74, Lon: -104.99},
	{Name: "Dallas", Country: "US", Lat: 32.78, Lon: -96.80},
	{Name: "Houston", Country: "US", Lat: 29.76, Lon: -95.37},
	{Name: "Chicago", Country: "US", Lat: 41.88, Lon: -87.63},
	{Name: "Atlanta", Country: "US", Lat: 33.75, Lon: -84.39},
	{Name: "Miami", Country: "US", Lat: 25.76, Lon: -80.19},
	{Name: "Ashburn", Country: "US", Lat: 39.04, Lon: -77.49},
	{Name: "New York", Country: "US", Lat: 40.71, Lon: -74.01},
	{Name: "Boston", Country: "US", Lat: 42.36, Lon: -71.06},
	{Name: "Toronto", Country: "CA", Lat: 43.65, Lon: -79.38},
	{Name: "Montreal", Country: "CA", Lat: 45.50, Lon: -73.57},
	{Name: "Vancouver", Country: "CA", Lat: 49.28, Lon: -123.12},
	{Name: "Mexico City", Country: "MX", Lat: 19.43, Lon: -99.13},
	{Name: "Sao Paulo", Country: "BR", Lat: -23.55, Lon: -46.63},
	{Name: "Rio de Janeiro", Country: "BR", Lat: -22.91, Lon: -43.17},
	{Name: "Buenos Aires", Country: "AR", Lat: -34.60, Lon: -58.38},
	{Name: "Santiago", Country: "CL", Lat: -33.45, Lon: -70.67},
	{Name: "Bogota", Country: "CO", Lat: 4.71, Lon: -74.07},
	{Name: "London", Country: "GB", Lat: 51.51, Lon: -0.13},
	{Name: "Manchester", Country: "GB", Lat: 53.48, Lon: -2.24},
	{Name: "Dublin", Country: "IE", Lat: 53.35, Lon: -6.26},
	{Name: "Paris", Country: "FR", Lat: 48.86, Lon: 2.35},
	{Name: "Marseille", Country: "FR", Lat: 43.30, Lon: 5.37},
	{Name: "Amsterdam", Country: "NL", Lat: 52.37, Lon: 4.90},
	{Name: "Brussels", Country: "BE", Lat: 50.85, Lon: 4.35},
	{Name: "Frankfurt", Country: "DE", Lat: 50.11, Lon: 8.68},
	{Name: "Berlin", Country: "DE", Lat: 52.52, Lon: 13.41},
	{Name: "Munich", Country: "DE", Lat: 48.14, Lon: 11.58},
	{Name: "Zurich", Country: "CH", Lat: 47.38, Lon: 8.54},
	{Name: "Milan", Country: "IT", Lat: 45.46, Lon: 9.19},
	{Name: "Rome", Country: "IT", Lat: 41.90, Lon: 12.50},
	{Name: "Madrid", Country: "ES", Lat: 40.42, Lon: -3.70},
	{Name: "Barcelona", Country: "ES", Lat: 41.39, Lon: 2.17},
	{Name: "Lisbon", Country: "PT", Lat: 38.72, Lon: -9.14},
	{Name: "Stockholm", Country: "SE", Lat: 59.33, Lon: 18.07},
	{Name: "Oslo", Country: "NO", Lat: 59.91, Lon: 10.75},
	{Name: "Copenhagen", Country: "DK", Lat: 55.68, Lon: 12.57},
	{Name: "Helsinki", Country: "FI", Lat: 60.17, Lon: 24.94},
	{Name: "Warsaw", Country: "PL", Lat: 52.23, Lon: 21.01},
	{Name: "Vienna", Country: "AT", Lat: 48.21, Lon: 16.37},
	{Name: "Prague", Country: "CZ", Lat: 50.08, Lon: 14.44},
	{Name: "Istanbul", Country: "TR", Lat: 41.01, Lon: 28.98},
	{Name: "Tel Aviv", Country: "IL", Lat: 32.09, Lon: 34.78},
	{Name: "Dubai", Country: "AE", Lat: 25.20, Lon: 55.27},
	{Name: "Johannesburg", Country: "ZA", Lat: -26.20, Lon: 28.05},
	{Name: "Cape Town", Country: "ZA", Lat: -33.92, Lon: 18.42},
	{Name: "Lagos", Country: "NG", Lat: 6.52, Lon: 3.38},
	{Name: "Nairobi", Country: "KE", Lat: -1.29, Lon: 36.82},
	{Name: "Mumbai", Country: "IN", Lat: 19.08, Lon: 72.88},
	{Name: "Chennai", Country: "IN", Lat: 13.08, Lon: 80.27},
	{Name: "Delhi", Country: "IN", Lat: 28.70, Lon: 77.10},
	{Name: "Singapore", Country: "SG", Lat: 1.35, Lon: 103.82},
	{Name: "Jakarta", Country: "ID", Lat: -6.21, Lon: 106.85},
	{Name: "Hong Kong", Country: "HK", Lat: 22.32, Lon: 114.17},
	{Name: "Taipei", Country: "TW", Lat: 25.03, Lon: 121.57},
	{Name: "Seoul", Country: "KR", Lat: 37.57, Lon: 126.98},
	{Name: "Tokyo", Country: "JP", Lat: 35.68, Lon: 139.69},
	{Name: "Osaka", Country: "JP", Lat: 34.69, Lon: 135.50},
	{Name: "Sydney", Country: "AU", Lat: -33.87, Lon: 151.21},
	{Name: "Melbourne", Country: "AU", Lat: -37.81, Lon: 144.96},
}
