package geo

import (
	"math/rand"
	"sync"
)

// GeoIP maps /24 source prefixes to metros. It stands in for the
// paper's proprietary geolocation database. Assignments are stored
// explicitly (the simulator registers the true metro when it mints a
// prefix), and a configurable error rate substitutes a nearby metro to
// model database imprecision (cf. Poese et al., "IP geolocation
// databases: unreliable?").
type GeoIP struct {
	db      *DB
	errRate float64
	rng     *rand.Rand

	mu sync.RWMutex
	//tipsy:guardedby mu
	entries map[uint32]MetroID // /24 base address -> reported metro
}

// NewGeoIP creates a Geo-IP database over db. errRate is the fraction
// of registrations that get recorded against a neighbouring metro
// instead of the true one; seed makes the error process deterministic.
func NewGeoIP(db *DB, errRate float64, seed int64) *GeoIP {
	return &GeoIP{
		db:      db,
		errRate: errRate,
		rng:     rand.New(rand.NewSource(seed)),
		entries: make(map[uint32]MetroID),
	}
}

// Register records the true metro of a /24 prefix. With probability
// errRate the stored entry is perturbed to one of the few nearest
// metros, simulating Geo-IP error at registration time so lookups stay
// deterministic. The paper's pipeline has exactly one location per /24
// (Table 1), which Register preserves: re-registration overwrites.
func (g *GeoIP) Register(slash24 uint32, truth MetroID) {
	recorded := truth
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.errRate > 0 && g.rng.Float64() < g.errRate {
		recorded = g.nearbyLocked(truth)
	}
	g.entries[slash24] = recorded
}

// nearbyLocked picks one of the three metros nearest to m (excluding
// m itself).
func (g *GeoIP) nearbyLocked(m MetroID) MetroID {
	type cd struct {
		id MetroID
		d  float64
	}
	var best [3]cd
	n := 0
	for _, cand := range g.db.All() {
		if cand.ID == m {
			continue
		}
		d := g.db.Distance(m, cand.ID)
		if n < 3 {
			best[n] = cd{cand.ID, d}
			n++
			continue
		}
		worst := 0
		for i := 1; i < 3; i++ {
			if best[i].d > best[worst].d {
				worst = i
			}
		}
		if d < best[worst].d {
			best[worst] = cd{cand.ID, d}
		}
	}
	if n == 0 {
		return m
	}
	return best[g.rng.Intn(n)].id
}

// Lookup returns the recorded metro for the /24 containing the given
// base address, or 0 if unknown.
func (g *GeoIP) Lookup(slash24 uint32) MetroID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.entries[slash24]
}

// Len reports how many /24 prefixes are registered.
func (g *GeoIP) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entries)
}

// Entries returns a copy of the database contents, for export.
func (g *GeoIP) Entries() map[uint32]MetroID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[uint32]MetroID, len(g.entries))
	for k, v := range g.entries {
		out[k] = v
	}
	return out
}

// NewGeoIPFromEntries rebuilds a database from exported entries; the
// error process is disabled since entries are already final.
func NewGeoIPFromEntries(db *DB, entries map[uint32]MetroID) *GeoIP {
	g := NewGeoIP(db, 0, 0)
	g.mu.Lock()
	defer g.mu.Unlock()
	for k, v := range entries {
		g.entries[k] = v
	}
	return g
}
