package geo

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestWorldDB(t *testing.T) {
	db := World()
	if db.Len() < 60 {
		t.Fatalf("world db has %d metros, want >= 60", db.Len())
	}
	seen := map[string]bool{}
	for _, m := range db.All() {
		if m.ID == 0 {
			t.Error("metro ID 0 is reserved for unknown")
		}
		if seen[m.Name] {
			t.Errorf("duplicate metro %q", m.Name)
		}
		seen[m.Name] = true
		if m.Lat < -90 || m.Lat > 90 || m.Lon < -180 || m.Lon > 180 {
			t.Errorf("%s: coordinates out of range", m.Name)
		}
	}
	if _, ok := db.Metro(0); ok {
		t.Error("Metro(0) should not resolve")
	}
	if _, ok := db.Metro(MetroID(db.Len() + 1)); ok {
		t.Error("out-of-range ID should not resolve")
	}
}

func metroByName(t *testing.T, db *DB, name string) Metro {
	t.Helper()
	for _, m := range db.All() {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("metro %q not found", name)
	return Metro{}
}

func TestDistanceKnownPairs(t *testing.T) {
	db := World()
	cases := []struct {
		a, b    string
		km, tol float64
	}{
		{"London", "New York", 5570, 120},
		{"Tokyo", "Seoul", 1160, 80},
		{"Sydney", "Melbourne", 714, 60},
		{"Seattle", "San Jose", 1090, 80},
	}
	for _, c := range cases {
		a, b := metroByName(t, db, c.a), metroByName(t, db, c.b)
		got := DistanceKm(a.Coord(), b.Coord())
		if math.Abs(got-c.km) > c.tol {
			t.Errorf("%s-%s: %.0f km, want %.0f±%.0f", c.a, c.b, got, c.km, c.tol)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{math.Mod(lat1, 90), math.Mod(lon1, 180)}
		b := Coord{math.Mod(lat2, 90), math.Mod(lon2, 180)}
		dab, dba := DistanceKm(a, b), DistanceKm(b, a)
		if math.IsNaN(dab) || dab < 0 {
			return false
		}
		if math.Abs(dab-dba) > 1e-6 { // symmetry
			return false
		}
		if DistanceKm(a, a) > 1e-6 { // identity
			return false
		}
		return dab <= math.Pi*earthRadiusKm+1 // bounded by half circumference
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestNearest(t *testing.T) {
	db := World()
	london := metroByName(t, db, "London").ID
	paris := metroByName(t, db, "Paris").ID
	tokyo := metroByName(t, db, "Tokyo").ID
	ams := metroByName(t, db, "Amsterdam").ID
	got := db.Nearest(london, []MetroID{tokyo, paris, ams})
	if got != paris {
		t.Errorf("nearest to London should be Paris, got %v", db.MustMetro(got).Name)
	}
	if db.Nearest(london, nil) != 0 {
		t.Error("nearest over empty candidates should be 0")
	}
}

func TestRankByDistance(t *testing.T) {
	db := World()
	origin := metroByName(t, db, "Frankfurt").ID
	cands := []MetroID{
		metroByName(t, db, "Tokyo").ID,
		metroByName(t, db, "Munich").ID,
		metroByName(t, db, "New York").ID,
		metroByName(t, db, "Paris").ID,
	}
	ranked := db.RankByDistance(origin, cands)
	if len(ranked) != len(cands) {
		t.Fatal("rank changed candidate count")
	}
	for i := 1; i < len(ranked); i++ {
		if db.Distance(origin, ranked[i]) < db.Distance(origin, ranked[i-1]) {
			t.Fatal("not sorted by distance")
		}
	}
	if db.MustMetro(ranked[0]).Name != "Munich" {
		t.Errorf("closest to Frankfurt should be Munich, got %s", db.MustMetro(ranked[0]).Name)
	}
}

func TestGeoIPExact(t *testing.T) {
	db := World()
	g := NewGeoIP(db, 0, 1)
	g.Register(0x0a000000, 5)
	if got := g.Lookup(0x0a000000); got != 5 {
		t.Errorf("Lookup = %d, want 5", got)
	}
	if got := g.Lookup(0x0b000000); got != 0 {
		t.Errorf("unknown prefix should return 0, got %d", got)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestGeoIPErrorInjection(t *testing.T) {
	db := World()
	g := NewGeoIP(db, 1.0, 7) // always err
	truth := metroByName(t, db, "Frankfurt").ID
	errors := 0
	for i := 0; i < 200; i++ {
		base := uint32(i) << 8
		g.Register(base, truth)
		got := g.Lookup(base)
		if got == 0 {
			t.Fatal("registered prefix must resolve")
		}
		if got != truth {
			errors++
			// The recorded metro must be geographically near the truth.
			if d := db.Distance(truth, got); d > 1500 {
				t.Errorf("error perturbation went %0.f km away", d)
			}
		}
	}
	if errors != 200 {
		t.Errorf("errRate=1.0 should always perturb, got %d/200", errors)
	}

	g2 := NewGeoIP(db, 0.0, 7)
	for i := 0; i < 200; i++ {
		base := uint32(i) << 8
		g2.Register(base, truth)
		if g2.Lookup(base) != truth {
			t.Fatal("errRate=0 must never perturb")
		}
	}
}

func TestGeoIPOneLocationPerPrefix(t *testing.T) {
	// Table 1 of the paper: there is only one source location per /24.
	g := NewGeoIP(World(), 0, 1)
	g.Register(42<<8, 3)
	g.Register(42<<8, 9)
	if got := g.Lookup(42 << 8); got != 9 {
		t.Errorf("re-registration should overwrite, got %d", got)
	}
	if g.Len() != 1 {
		t.Errorf("still one entry expected, got %d", g.Len())
	}
}

// TestGeoIPConcurrentRegisterLookup exercises the entries map from
// concurrent writers and readers, including a rebuild via
// NewGeoIPFromEntries (whose copy loop once wrote the map without the
// lock): the guardedby lint pins the discipline statically, this pins
// it under the race detector.
func TestGeoIPConcurrentRegisterLookup(t *testing.T) {
	db := World()
	g := NewGeoIP(db, 0, 1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				g.Register(uint32(w<<16|i)<<8, MetroID(1+(i%db.Len())))
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		_ = g.Lookup(uint32(i) << 8)
		_ = g.Len()
	}
	wg.Wait()
	rebuilt := NewGeoIPFromEntries(db, g.Entries())
	if rebuilt.Len() != g.Len() {
		t.Fatalf("rebuilt Len = %d, want %d", rebuilt.Len(), g.Len())
	}
	if got, want := rebuilt.Lookup(uint32(1)<<8), g.Lookup(uint32(1)<<8); got != want {
		t.Fatalf("rebuilt Lookup = %v, want %v", got, want)
	}
}
