package obsv

import (
	"fmt"
	"strings"
	"time"
)

// StageSpan is one completed stage of a Trace. (The full span model —
// trace/span IDs, parent links, attributes — lives in span.go; a
// StageSpan is just a named duration on the single-request stage
// tracer below.)
type StageSpan struct {
	Stage string
	Ns    int64
}

// Trace is a lightweight single-request tracer for the prediction
// path: the caller marks stage boundaries (feature-encode → ensemble
// → fallback ladder) and the trace records how long each stage took.
// It is allocation-light (one slice), not safe for concurrent use —
// one Trace belongs to one request — and publishes into a Registry's
// histograms so per-stage latency distributions accumulate across
// requests.
type Trace struct {
	clock func() int64 // monotonic-enough nanosecond clock
	start int64
	last  int64
	spans []StageSpan
}

// NewTrace starts a trace on the wall clock. Callers that own an
// injected clock (tipsyd does) should prefer NewTraceClock so every
// timestamp in the process comes from one swappable source.
//
//tipsy:clocksource
func NewTrace() *Trace {
	return NewTraceClock(func() int64 { return time.Now().UnixNano() })
}

// NewTraceClock starts a trace on an injected nanosecond clock —
// deterministic tests pin timings with this.
func NewTraceClock(clock func() int64) *Trace {
	now := clock()
	return &Trace{clock: clock, start: now, last: now}
}

// Mark closes the current stage under the given name. Stages are
// contiguous: the next stage starts where this one ended.
func (t *Trace) Mark(stage string) {
	now := t.clock()
	t.spans = append(t.spans, StageSpan{Stage: stage, Ns: now - t.last})
	t.last = now
}

// Spans returns the completed stages in order.
func (t *Trace) Spans() []StageSpan { return t.spans }

// TotalNs returns the time from trace start to the last mark.
func (t *Trace) TotalNs() int64 { return t.last - t.start }

// Publish records each stage's duration into the registry histogram
// <prefix>_<stage>_ns and the total into <prefix>_total_ns.
func (t *Trace) Publish(r *Registry, prefix string) {
	for _, s := range t.spans {
		r.Histogram(prefix + "_" + s.Stage + "_ns").Observe(s.Ns)
	}
	r.Histogram(prefix + "_total_ns").Observe(t.TotalNs())
}

// String renders the trace as "stage=1.2ms stage2=340µs (total 1.5ms)"
// for log lines.
func (t *Trace) String() string {
	var b strings.Builder
	for i, s := range t.spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", s.Stage, time.Duration(s.Ns))
	}
	fmt.Fprintf(&b, " (total %v)", time.Duration(t.TotalNs()))
	return b.String()
}
