package obsv

import (
	"fmt"
	"net/http"
)

// Cross-process propagation uses the W3C Trace Context wire format:
//
//	traceparent: 00-<32 hex trace id>-<16 hex span id>-<2 hex flags>
//
// Flag bit 0 is "sampled". We emit version 00 and accept any
// non-reserved version with the version-00 field layout; uppercase
// hex and zero trace/span IDs are invalid per the spec.

// TraceparentHeader is the HTTP header carrying the span context.
const TraceparentHeader = "traceparent"

const traceparentLen = 55 // "00-" + 32 + "-" + 16 + "-" + 2

// Traceparent renders the context in wire form.
func (sc SpanContext) Traceparent() string {
	flags := 0
	if sc.Sampled {
		flags = 1
	}
	return fmt.Sprintf("00-%s-%s-%02x", sc.Trace.String(), sc.Span.String(), flags)
}

// ParseTraceparent parses a traceparent value. ok is false for
// malformed input, the reserved version ff, or zero trace/span IDs.
func ParseTraceparent(s string) (sc SpanContext, ok bool) {
	if len(s) != traceparentLen || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	ver, ok := parseHex(s[0:2])
	if !ok || ver == 0xff {
		return SpanContext{}, false
	}
	hi, ok1 := parseHex(s[3:19])
	lo, ok2 := parseHex(s[19:35])
	span, ok3 := parseHex(s[36:52])
	flags, ok4 := parseHex(s[53:55])
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return SpanContext{}, false
	}
	trace := TraceID{Hi: hi, Lo: lo}
	if trace.IsZero() || span == 0 {
		return SpanContext{}, false
	}
	return SpanContext{Trace: trace, Span: SpanID(span), Sampled: flags&1 != 0}, true
}

// ParseTraceID parses a bare 32-hex-digit trace ID (the /debug/trace
// query form).
func ParseTraceID(s string) (TraceID, bool) {
	if len(s) != 32 {
		return TraceID{}, false
	}
	hi, ok1 := parseHex(s[:16])
	lo, ok2 := parseHex(s[16:])
	if !ok1 || !ok2 {
		return TraceID{}, false
	}
	return TraceID{Hi: hi, Lo: lo}, true
}

// parseHex decodes lowercase hex only — the spec treats uppercase as
// invalid, and strconv would accept it.
func parseHex(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// InjectTraceparent writes sc into h — called on every outbound hop
// (and on responses, so callers can correlate their request with the
// server's flight recorder).
func InjectTraceparent(h http.Header, sc SpanContext) {
	if sc.Trace.IsZero() {
		return
	}
	h.Set(TraceparentHeader, sc.Traceparent())
}

// ExtractTraceparent reads a span context from h.
func ExtractTraceparent(h http.Header) (SpanContext, bool) {
	return ParseTraceparent(h.Get(TraceparentHeader))
}
