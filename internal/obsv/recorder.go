package obsv

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Recorder is the flight recorder: a fixed-size, lock-sharded ring of
// finished SpanRecords. It always holds the most recent spans; when a
// shard's ring is full the oldest record in that shard is overwritten
// (counted in Evicted). Add is O(1) with one short critical section;
// Snapshot copies everything out under the shard locks and sorts, so
// it is for dumps and debugging, not hot paths.
type Recorder struct {
	shards  [recShardCount]recShard
	evicted atomic.Uint64
}

const recShardCount = 8

type recShard struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	buf []SpanRecord
	//tipsy:guardedby mu
	n uint64 // spans ever added to this shard; n % len(buf) is the write slot
}

// NewRecorder builds a recorder holding roughly capacity records
// (rounded up to a multiple of the shard count, minimum one slot per
// shard).
func NewRecorder(capacity int) *Recorder {
	per := (capacity + recShardCount - 1) / recShardCount
	if per < 1 {
		per = 1
	}
	r := &Recorder{}
	for i := range r.shards {
		r.shards[i].buf = make([]SpanRecord, per)
	}
	return r
}

// Cap returns the total record capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	sh := &r.shards[0]
	sh.mu.Lock()
	per := len(sh.buf)
	sh.mu.Unlock()
	return recShardCount * per
}

// add files one finished record. Span IDs are a process sequence, so
// id % shards round-robins writers across the locks.
func (r *Recorder) add(rec *SpanRecord) {
	if r == nil {
		return
	}
	sh := &r.shards[uint64(rec.ID)%recShardCount]
	sh.mu.Lock()
	if sh.n >= uint64(len(sh.buf)) {
		r.evicted.Add(1)
	}
	sh.buf[sh.n%uint64(len(sh.buf))] = *rec
	sh.n++
	sh.mu.Unlock()
}

// Len returns how many records are currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		if sh.n < uint64(len(sh.buf)) {
			n += int(sh.n)
		} else {
			n += len(sh.buf)
		}
		sh.mu.Unlock()
	}
	return n
}

// Evicted returns how many records have been overwritten since start.
func (r *Recorder) Evicted() uint64 {
	if r == nil {
		return 0
	}
	return r.evicted.Load()
}

// Snapshot copies out every held record, sorted by (Start, Trace, ID)
// so dumps of a deterministic run are byte-stable regardless of shard
// interleaving.
func (r *Recorder) Snapshot() []SpanRecord {
	if r == nil {
		return nil
	}
	out := make([]SpanRecord, 0, r.Cap())
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n := uint64(len(sh.buf))
		if sh.n < n {
			n = sh.n
		}
		out = append(out, sh.buf[:n]...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Trace != b.Trace {
			if a.Trace.Hi != b.Trace.Hi {
				return a.Trace.Hi < b.Trace.Hi
			}
			return a.Trace.Lo < b.Trace.Lo
		}
		return a.ID < b.ID
	})
	return out
}

// TraceSpans returns the held records belonging to one trace, in
// Snapshot order.
func (r *Recorder) TraceSpans(id TraceID) []SpanRecord {
	all := r.Snapshot()
	out := all[:0]
	for _, rec := range all {
		if rec.Trace == id {
			out = append(out, rec)
		}
	}
	return out
}
