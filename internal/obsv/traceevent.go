package obsv

import (
	"encoding/json"
	"io"
)

// traceEvent is one Chrome trace_event entry: a complete ("X") slice
// with microsecond timestamp and duration, the format Perfetto and
// chrome://tracing load directly.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	Ts   float64 `json:"ts"`  // microseconds from the earliest trace start
	Dur  float64 `json:"dur"` // microseconds
}

// WriteTraceEvents renders the traces as a Chrome trace_event JSON
// array for Perfetto / chrome://tracing. Each trace becomes one
// thread lane (tid 1, 2, ...); its spans are contiguous complete
// events, offset so every trace starts relative to the earliest start
// among them — concurrent request traces line up on a shared
// timeline. Traces with no completed spans are skipped.
func WriteTraceEvents(w io.Writer, traces ...*Trace) error {
	var events []traceEvent
	var base int64
	haveBase := false
	for _, t := range traces {
		if len(t.spans) == 0 {
			continue
		}
		if !haveBase || t.start < base {
			base = t.start
			haveBase = true
		}
	}
	tid := 0
	for _, t := range traces {
		if len(t.spans) == 0 {
			continue
		}
		tid++
		offset := t.start - base
		for _, s := range t.spans {
			events = append(events, traceEvent{
				Name: s.Stage,
				Cat:  "tipsy",
				Ph:   "X",
				PID:  1,
				TID:  tid,
				Ts:   float64(offset) / 1e3,
				Dur:  float64(s.Ns) / 1e3,
			})
			offset += s.Ns
		}
	}
	if events == nil {
		events = []traceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(events)
}

// WriteSpanTraceEvents renders flight-recorder span records as a
// Chrome trace_event JSON array: each trace becomes one thread lane
// (tid assigned in first-appearance order of the records, which are
// expected in Snapshot order), spans are complete ("X") events, and
// span events become instants ("i"). Timestamps are microseconds
// relative to the earliest span start, so dumps of a fake-clock run
// are deterministic.
func WriteSpanTraceEvents(w io.Writer, recs []SpanRecord) error {
	events := []traceEvent{}
	var base int64
	for i := range recs {
		if i == 0 || recs[i].Start < base {
			base = recs[i].Start
		}
	}
	tids := make(map[TraceID]int, len(recs))
	for i := range recs {
		rec := &recs[i]
		tid, ok := tids[rec.Trace]
		if !ok {
			tid = len(tids) + 1
			tids[rec.Trace] = tid
		}
		events = append(events, traceEvent{
			Name: rec.Name,
			Cat:  "tipsy",
			Ph:   "X",
			PID:  1,
			TID:  tid,
			Ts:   float64(rec.Start-base) / 1e3,
			Dur:  float64(rec.End-rec.Start) / 1e3,
		})
		for _, e := range rec.Events[:rec.NEvents] {
			events = append(events, traceEvent{
				Name: e.Name,
				Cat:  "tipsy",
				Ph:   "i",
				PID:  1,
				TID:  tid,
				Ts:   float64(e.At-base) / 1e3,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(events)
}
