package obsv

import (
	"bytes"
	"encoding/json"
	"testing"
)

// stepClock returns a fake nanosecond clock starting at base that
// advances by step on every reading.
func stepClock(base, step int64) func() int64 {
	now := base - step
	return func() int64 {
		now += step
		return now
	}
}

func TestWriteTraceEvents(t *testing.T) {
	// Trace A starts at t=0 with two 1ms stages; trace B starts 500µs
	// later with one 2ms stage.
	a := NewTraceClock(stepClock(0, 1_000_000))
	a.Mark("encode")
	a.Mark("predict")
	b := NewTraceClock(stepClock(500_000, 2_000_000))
	b.Mark("retrain")

	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3:\n%s", len(events), buf.String())
	}

	check := func(i int, name string, tid, ts, dur float64) {
		t.Helper()
		e := events[i]
		if e["name"] != name || e["tid"] != tid || e["ts"] != ts || e["dur"] != dur {
			t.Errorf("event %d = %v, want name=%s tid=%v ts=%v dur=%v", i, e, name, tid, ts, dur)
		}
		if e["ph"] != "X" || e["cat"] != "tipsy" || e["pid"] != 1.0 {
			t.Errorf("event %d envelope = %v", i, e)
		}
	}
	// Trace A's spans are contiguous from the shared origin; trace B is
	// offset by its later start.
	check(0, "encode", 1, 0, 1000)
	check(1, "predict", 1, 1000, 1000)
	check(2, "retrain", 2, 500, 2000)
}

func TestWriteTraceEventsEmpty(t *testing.T) {
	var buf bytes.Buffer
	empty := NewTraceClock(func() int64 { return 0 })
	if err := WriteTraceEvents(&buf, empty); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 0 {
		t.Errorf("span-less trace produced events: %v", events)
	}
}
