package obsv

import (
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeBridgeSample(t *testing.T) {
	reg := NewRegistry()
	b := NewRuntimeBridge(reg)
	b.Sample()
	if v := reg.Gauge("runtime_goroutines").Value(); v < 1 {
		t.Errorf("goroutines gauge %d, want >= 1", v)
	}
	if v := reg.Gauge("runtime_heap_bytes").Value(); v <= 0 {
		t.Errorf("heap gauge %d, want > 0", v)
	}

	// Force GC cycles between samples: the pause histogram observes
	// the cumulative bucket-count delta, so new pauses must appear.
	before := reg.Histogram("runtime_gc_pause_ns").Count()
	for i := 0; i < 3; i++ {
		runtime.GC()
	}
	b.Sample()
	if after := reg.Histogram("runtime_gc_pause_ns").Count(); after <= before {
		t.Errorf("gc pause count %d -> %d, want growth after forced GCs", before, after)
	}
	if v := reg.Gauge("runtime_gc_cycles").Value(); v < 3 {
		t.Errorf("gc cycles gauge %d, want >= 3", v)
	}

	// Re-sampling without new GC work must not double-count pauses.
	mid := reg.Histogram("runtime_gc_pause_ns").Count()
	b.Sample()
	// A concurrent GC could add one; a full re-observation would add
	// hundreds. Allow slack of a couple of pauses.
	if after := reg.Histogram("runtime_gc_pause_ns").Count(); after > mid+4 {
		t.Errorf("gc pause count jumped %d -> %d on an idle re-sample (cumulative counts re-observed?)", mid, after)
	}
}

func TestRuntimeBridgeInExposition(t *testing.T) {
	reg := NewRegistry()
	b := NewRuntimeBridge(reg)
	b.Sample()
	var sb strings.Builder
	reg.WriteText(&sb)
	for _, want := range []string{"runtime_heap_bytes", "runtime_goroutines", "runtime_gc_pause_ns", "runtime_sched_latency_ns"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

func TestSetInfoExposition(t *testing.T) {
	reg := NewRegistry()
	reg.SetInfo("tipsy_build_info", `go_version="go1.22",seed="1"`)
	// Re-setting the same info is allowed (e.g. config reload).
	reg.SetInfo("tipsy_build_info", `go_version="go1.22",seed="2"`)
	var sb strings.Builder
	reg.WriteText(&sb)
	want := `tipsy_build_info{go_version="go1.22",seed="2"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, sb.String())
	}
	// Infos stay out of Snapshot so deterministic compares (tipsybench
	// metrics) are unaffected by build identity.
	if _, ok := reg.Snapshot().Scalars()["tipsy_build_info"]; ok {
		t.Error("info leaked into Snapshot scalars")
	}
}

func TestSetInfoNameCollisionPanics(t *testing.T) {
	reg := NewRegistry()
	reg.SetInfo("thing", `a="b"`)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic registering counter over an info name")
		}
	}()
	reg.Counter("thing")
}

func TestLogRingTail(t *testing.T) {
	l := NewLogRing(0) // clamps to 1 KiB
	if got := l.Tail(); len(got) != 0 {
		t.Fatalf("empty ring tail %q", got)
	}
	l.Write([]byte("line one\n"))
	l.Write([]byte("line two\n"))
	if got := string(l.Tail()); got != "line one\nline two\n" {
		t.Fatalf("tail %q", got)
	}
}

func TestLogRingWraps(t *testing.T) {
	l := NewLogRing(1024)
	const lineText = "log line with some padding to force the ring around xxxxxxxxxx\n"
	for i := 0; i < 100; i++ {
		line := []byte(lineText)
		line[0] = byte('a' + i%26)
		l.Write(line)
	}
	got := l.Tail()
	if len(got) == 0 || len(got) > 1024 {
		t.Fatalf("tail length %d", len(got))
	}
	// After wrapping, the tail starts at a line boundary (the torn
	// first line is trimmed) and ends with the final write.
	if got[len(got)-1] != '\n' {
		t.Errorf("tail does not end at a line boundary")
	}
	lines := strings.Split(strings.TrimRight(string(got), "\n"), "\n")
	for i, ln := range lines {
		if len(ln) != len(lineText)-1 {
			t.Errorf("line %d torn: %q", i, ln)
		}
	}
}

func TestLogRingOversizedWrite(t *testing.T) {
	l := NewLogRing(1024)
	big := strings.Repeat("x", 2000) + "\nend\n"
	l.Write([]byte(big))
	got := string(l.Tail())
	if !strings.HasSuffix(got, "end\n") {
		t.Fatalf("oversized write lost its tail: %q", got)
	}
	if len(got) > 1024 {
		t.Fatalf("tail %d bytes exceeds capacity", len(got))
	}
}
