package obsv

import (
	"strings"
	"testing"
)

// fakeClock is a deterministic nanosecond clock for trace tests.
type fakeClock struct{ now int64 }

func (f *fakeClock) tick(ns int64) { f.now += ns }
func (f *fakeClock) read() int64   { return f.now }

func TestTraceStages(t *testing.T) {
	clk := &fakeClock{now: 1000}
	tr := NewTraceClock(clk.read)
	clk.tick(50)
	tr.Mark("feature_encode")
	clk.tick(200)
	tr.Mark("ensemble")
	clk.tick(30)
	tr.Mark("fallback")

	spans := tr.Spans()
	want := []StageSpan{{"feature_encode", 50}, {"ensemble", 200}, {"fallback", 30}}
	if len(spans) != len(want) {
		t.Fatalf("got %d spans, want %d", len(spans), len(want))
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Errorf("span %d = %+v, want %+v", i, spans[i], want[i])
		}
	}
	if tr.TotalNs() != 280 {
		t.Errorf("total = %d, want 280", tr.TotalNs())
	}
	if s := tr.String(); !strings.Contains(s, "ensemble=200ns") || !strings.Contains(s, "total 280ns") {
		t.Errorf("String() = %q", s)
	}
}

func TestTracePublish(t *testing.T) {
	r := NewRegistry()
	clk := &fakeClock{}
	for i := 0; i < 3; i++ {
		tr := NewTraceClock(clk.read)
		clk.tick(100)
		tr.Mark("encode")
		clk.tick(900)
		tr.Mark("predict")
		tr.Publish(r, "tipsyd_predict")
	}
	if c := r.Histogram("tipsyd_predict_encode_ns").Count(); c != 3 {
		t.Errorf("encode histogram count = %d, want 3", c)
	}
	if s := r.Histogram("tipsyd_predict_predict_ns").Sum(); s != 2700 {
		t.Errorf("predict histogram sum = %d, want 2700", s)
	}
	if s := r.Histogram("tipsyd_predict_total_ns").Sum(); s != 3000 {
		t.Errorf("total histogram sum = %d, want 3000", s)
	}
}
