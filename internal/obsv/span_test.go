package obsv

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// counterClock is a monotonically ticking fake clock: every read
// advances by one, so span dumps from a seeded run are byte-stable.
// Atomic because the tracer's clock contract is concurrent use.
type counterClock struct{ n atomic.Int64 }

func (c *counterClock) read() int64 { return c.n.Add(1) }

func newTestTracer(capacity int, every uint64) (*Tracer, *Recorder, *counterClock) {
	clk := &counterClock{}
	rec := NewRecorder(capacity)
	return NewTracer(rec, TracerOptions{Clock: clk.read, SampleEvery: every}), rec, clk
}

func TestSpanLifecycleDeterministic(t *testing.T) {
	tr, rec, _ := newTestTracer(64, 1)
	root := tr.StartRoot("cycle")
	root.SetInt("day", 3)
	child := tr.StartChild(root, "ingest")
	child.Event("checkpoint_write")
	child.SetStr("rung", "ensemble")
	child.End()
	root.End()

	recs := rec.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	r0, r1 := recs[0], recs[1] // sorted by start: root first
	if r0.Name != "cycle" || r1.Name != "ingest" {
		t.Fatalf("names %q, %q", r0.Name, r1.Name)
	}
	if r0.Parent != 0 {
		t.Errorf("root parent = %d, want 0", r0.Parent)
	}
	if r1.Parent != r0.ID {
		t.Errorf("child parent = %d, want %d", r1.Parent, r0.ID)
	}
	if r1.Trace != r0.Trace {
		t.Errorf("child trace %v != root trace %v", r1.Trace, r0.Trace)
	}
	// The first clock read is the root's start; trace IDs derive from
	// clock + sequence, so the whole dump is reproducible.
	if r0.Start != 1 || (r0.Trace != TraceID{Hi: 1, Lo: 1}) {
		t.Errorf("root start %d trace %v; want start 1, trace {1 1}", r0.Start, r0.Trace)
	}
	if r1.NEvents != 1 || r1.Events[0].Name != "checkpoint_write" {
		t.Errorf("child events %v", r1.Events[:r1.NEvents])
	}
	if r1.NAttrs != 1 || !r1.Attrs[0].IsStr || r1.Attrs[0].Str != "ensemble" {
		t.Errorf("child attrs %v", r1.Attrs[:r1.NAttrs])
	}
	if r0.End <= r0.Start || r1.End <= r1.Start {
		t.Errorf("non-positive durations: root %d..%d child %d..%d", r0.Start, r0.End, r1.Start, r1.End)
	}
}

func TestSpanStatusError(t *testing.T) {
	tr, rec, _ := newTestTracer(8, 1)
	sp := tr.StartRoot("retrain")
	sp.Error("checkpoint write failed")
	sp.End()
	recs := rec.Snapshot()
	if recs[0].Status != StatusError || recs[0].Note != "checkpoint write failed" {
		t.Fatalf("status %v note %q", recs[0].Status, recs[0].Note)
	}
}

func TestSampling(t *testing.T) {
	tr, rec, _ := newTestTracer(64, 3)
	var sampled int
	for i := 0; i < 9; i++ {
		sp := tr.StartRoot("r")
		if sp != nil {
			sampled++
			// Children and propagated contexts inherit the decision.
			if tr.StartChild(sp, "c") == nil {
				t.Fatal("child of sampled root is nil")
			}
		} else if tr.StartChild(sp, "c") != nil {
			t.Fatal("child of unsampled root is sampled")
		}
		sp.End()
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 roots, want 3 (every 3rd, first always)", sampled)
	}
	// 3 roots + 3 children ended... children of sampled roots were not
	// ended above; only roots recorded plus the children leak — End the
	// count check on roots alone via names.
	for _, r := range rec.Snapshot() {
		if r.Name == "r" && r.End == 0 {
			t.Errorf("unfinished root recorded: %+v", r)
		}
	}
}

func TestStartFromNeverInventsRoot(t *testing.T) {
	tr, _, _ := newTestTracer(8, 1)
	if sp := tr.StartFrom(SpanContext{}, "x"); sp != nil {
		t.Fatal("StartFrom(zero) made a span")
	}
	if sp := tr.StartFrom(SpanContext{Trace: TraceID{Hi: 1, Lo: 2}, Span: 3}, "x"); sp != nil {
		t.Fatal("StartFrom(unsampled) made a span")
	}
	sc := SpanContext{Trace: TraceID{Hi: 1, Lo: 2}, Span: 3, Sampled: true}
	sp := tr.StartFrom(sc, "x")
	if sp == nil {
		t.Fatal("StartFrom(sampled) returned nil")
	}
	if got := sp.Context().Trace; got != sc.Trace {
		t.Fatalf("trace %v, want %v", got, sc.Trace)
	}
	rm := tr.StartRemote(sc, "y")
	rm.End()
	sp.End()
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	sp := tr.StartRoot("x")
	if sp != nil {
		t.Fatal("nil tracer made a span")
	}
	// Every method on a nil span is a no-op.
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.Event("e")
	sp.Error("boom")
	sp.End()
	if sc := sp.Context(); sc.Sampled || !sc.Trace.IsZero() {
		t.Fatalf("nil span context %+v not zero", sc)
	}
	if tr.StartChild(nil, "c") != nil || tr.StartFrom(SpanContext{}, "f") != nil {
		t.Fatal("nil tracer starts must return nil")
	}
}

func TestAttrEventOverflowDrops(t *testing.T) {
	tr, rec, _ := newTestTracer(8, 1)
	sp := tr.StartRoot("overflow")
	for i := 0; i < maxSpanAttrs+2; i++ {
		sp.SetInt("k", int64(i))
	}
	for i := 0; i < maxSpanEvents+3; i++ {
		sp.Event("e")
	}
	sp.End()
	r := rec.Snapshot()[0]
	if r.NAttrs != maxSpanAttrs || r.NEvents != maxSpanEvents {
		t.Fatalf("nattrs %d nevents %d", r.NAttrs, r.NEvents)
	}
	if r.Dropped != 5 {
		t.Fatalf("dropped %d, want 5", r.Dropped)
	}
}

// TestUnsampledPathZeroAlloc pins the PR's core performance contract:
// with tracing disabled (nil tracer) or a root unsampled, the whole
// span API costs zero allocations.
func TestUnsampledPathZeroAlloc(t *testing.T) {
	var off *Tracer
	if n := testing.AllocsPerRun(200, func() {
		sp := off.StartRoot("x")
		sp.SetInt("k", 1)
		c := off.StartChild(sp, "c")
		c.Event("e")
		c.End()
		sp.End()
	}); n != 0 {
		t.Fatalf("disabled tracer: %v allocs/op, want 0", n)
	}

	tr, _, _ := newTestTracer(8, 1<<30) // sample ~never after the first
	tr.StartRoot("prime").End()
	if n := testing.AllocsPerRun(200, func() {
		sp := tr.StartRoot("x")
		sp.SetStr("k", "v")
		sp.End()
	}); n != 0 {
		t.Fatalf("unsampled root: %v allocs/op, want 0", n)
	}
}

// TestSampledSteadyStateZeroAlloc proves the pool works: after warmup
// the sampled path recycles spans instead of allocating.
func TestSampledSteadyStateZeroAlloc(t *testing.T) {
	tr, _, _ := newTestTracer(64, 1)
	for i := 0; i < 100; i++ {
		tr.StartRoot("warm").End()
	}
	if n := testing.AllocsPerRun(500, func() {
		sp := tr.StartRoot("x")
		sp.SetInt("k", 1)
		sp.End()
	}); n != 0 {
		t.Fatalf("sampled steady state: %v allocs/op, want 0", n)
	}
}

func TestRecorderEvictionAtCapacityBoundary(t *testing.T) {
	rec := NewRecorder(recShardCount) // exactly one slot per shard
	if rec.Cap() != recShardCount {
		t.Fatalf("cap %d, want %d", rec.Cap(), recShardCount)
	}
	// IDs 1..8 round-robin one record into each shard: full, nothing
	// evicted yet.
	for id := 1; id <= recShardCount; id++ {
		rec.add(&SpanRecord{ID: SpanID(id), Name: "first", Start: int64(id)})
	}
	if rec.Len() != recShardCount || rec.Evicted() != 0 {
		t.Fatalf("at boundary: len %d evicted %d", rec.Len(), rec.Evicted())
	}
	// One more record into shard 1 overwrites its only slot.
	rec.add(&SpanRecord{ID: SpanID(recShardCount + 1), Name: "second", Start: 100})
	if rec.Len() != recShardCount {
		t.Fatalf("after wrap: len %d, want %d", rec.Len(), recShardCount)
	}
	if rec.Evicted() != 1 {
		t.Fatalf("evicted %d, want 1", rec.Evicted())
	}
	var names []string
	for _, r := range rec.Snapshot() {
		if r.ID == SpanID(1) {
			t.Errorf("evicted record %d still present", r.ID)
		}
		names = append(names, r.Name)
	}
	if strings.Count(strings.Join(names, ","), "second") != 1 {
		t.Errorf("overwriting record missing: %v", names)
	}
}

func TestRecorderMinimumCapacity(t *testing.T) {
	rec := NewRecorder(0)
	if rec.Cap() != recShardCount {
		t.Fatalf("cap %d, want one slot per shard", rec.Cap())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	tr, rec, _ := newTestTracer(128, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.StartRoot("g")
				c := tr.StartChild(sp, "c")
				c.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := rec.Len(); got != rec.Cap() {
		t.Fatalf("len %d, want full ring %d", got, rec.Cap())
	}
	if rec.Evicted() == 0 {
		t.Fatal("expected evictions after 3200 spans through a 128-slot ring")
	}
	recs := rec.Snapshot()
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Start {
			t.Fatal("snapshot not sorted by start")
		}
	}
}

func TestTraceSpansFilters(t *testing.T) {
	tr, rec, _ := newTestTracer(64, 1)
	a := tr.StartRoot("a")
	ac := tr.StartChild(a, "a_child")
	b := tr.StartRoot("b")
	ac.End()
	a.End()
	b.End()
	trace := a.Context() // safe: Context was read before End in real code
	_ = trace
	all := rec.Snapshot()
	var aTrace TraceID
	for _, r := range all {
		if r.Name == "a" {
			aTrace = r.Trace
		}
	}
	got := rec.TraceSpans(aTrace)
	if len(got) != 2 {
		t.Fatalf("trace filter returned %d spans, want 2", len(got))
	}
	for _, r := range got {
		if r.Trace != aTrace {
			t.Fatalf("foreign trace %v in filter", r.Trace)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: TraceID{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}, Span: 0x1a2b3c4d5e6f7081, Sampled: true}
	wire := sc.Traceparent()
	want := "00-0123456789abcdeffedcba9876543210-1a2b3c4d5e6f7081-01"
	if wire != want {
		t.Fatalf("wire %q, want %q", wire, want)
	}
	back, ok := ParseTraceparent(wire)
	if !ok || back != sc {
		t.Fatalf("round trip: %+v ok=%v", back, ok)
	}
	unsampled := SpanContext{Trace: sc.Trace, Span: sc.Span}
	back, ok = ParseTraceparent(unsampled.Traceparent())
	if !ok || back.Sampled {
		t.Fatalf("unsampled round trip: %+v ok=%v", back, ok)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-0123456789abcdeffedcba9876543210-1a2b3c4d5e6f7081-01"
	bad := []string{
		"",
		valid[:54],             // short
		valid + "0",            // long
		strings.ToUpper(valid), // uppercase hex is invalid per spec
		"ff" + valid[2:],       // reserved version
		"00-00000000000000000000000000000000-1a2b3c4d5e6f7081-01", // zero trace
		"00-0123456789abcdeffedcba9876543210-0000000000000000-01", // zero span
		strings.Replace(valid, "-", "_", 1),                       // wrong separator
		strings.Replace(valid, "a", "g", 1),                       // non-hex digit
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestParseTraceID(t *testing.T) {
	id, ok := ParseTraceID("0123456789abcdeffedcba9876543210")
	if !ok || (id != TraceID{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}) {
		t.Fatalf("got %v ok=%v", id, ok)
	}
	for _, s := range []string{"", "123", strings.Repeat("g", 32), strings.Repeat("A", 32)} {
		if _, ok := ParseTraceID(s); ok {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestInjectExtractHeader(t *testing.T) {
	h := make(map[string][]string)
	InjectTraceparent(h, SpanContext{}) // zero context: no header
	if len(h) != 0 {
		t.Fatal("zero context wrote a header")
	}
	sc := SpanContext{Trace: TraceID{Hi: 1, Lo: 2}, Span: 3, Sampled: true}
	InjectTraceparent(h, sc)
	got, ok := ExtractTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("extract: %+v ok=%v", got, ok)
	}
}

// TestSpanDumpGolden pins the JSON span-dump format for a seeded
// two-span trace: deterministic clock, deterministic IDs, byte-stable
// output.
func TestSpanDumpGolden(t *testing.T) {
	tr, rec, _ := newTestTracer(16, 1)
	root := tr.StartRoot("predict")
	root.SetInt("flows", 2)
	child := tr.StartChild(root, "feature_encode")
	child.Event("demote_ensemble")
	child.Error("bad address")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteSpansJSON(&buf, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "trace": "00000000000000010000000000000001",
    "span": "0000000000000001",
    "name": "predict",
    "start_ns": 1,
    "dur_ns": 4,
    "status": "ok",
    "attrs": {
      "flows": 2
    }
  },
  {
    "trace": "00000000000000010000000000000001",
    "span": "0000000000000002",
    "parent": "0000000000000001",
    "name": "feature_encode",
    "start_ns": 2,
    "dur_ns": 2,
    "status": "error",
    "note": "bad address",
    "events": [
      {
        "name": "demote_ensemble",
        "at_ns": 3
      }
    ]
  }
]
`
	if got := buf.String(); got != want {
		t.Errorf("span dump mismatch:\n--- got\n%s--- want\n%s", got, want)
	}
}

// TestRecorderConcurrentCapAndAdds hammers add from several
// goroutines while polling the read-side accessors: Cap once read
// shard 0's buffer length without its lock, and this pins the locked
// read under the race detector.
func TestRecorderConcurrentCapAndAdds(t *testing.T) {
	r := NewRecorder(32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				rec := SpanRecord{ID: SpanID(uint64(w*500 + i)), Start: int64(i)}
				r.add(&rec)
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		if got := r.Cap(); got != 32 {
			t.Fatalf("Cap = %d, want 32", got)
		}
		_ = r.Len()
		_ = r.Evicted()
		_ = r.Snapshot()
	}
	wg.Wait()
	if got := r.Len(); got != 32 {
		t.Fatalf("Len after fill = %d, want 32", got)
	}
	if got := r.Cap(); got != 32 {
		t.Fatalf("Cap after fill = %d, want 32", got)
	}
}
