package obsv

import (
	"encoding/json"
	"io"
)

// spanJSON is the dump form of one SpanRecord: hex IDs matching the
// traceparent wire format, attributes as a JSON object (encoding/json
// sorts the keys, so dumps of deterministic runs are byte-stable).
type spanJSON struct {
	Trace   string          `json:"trace"`
	Span    string          `json:"span"`
	Parent  string          `json:"parent,omitempty"`
	Name    string          `json:"name"`
	Remote  bool            `json:"remote,omitempty"`
	StartNs int64           `json:"start_ns"`
	DurNs   int64           `json:"dur_ns"`
	Status  string          `json:"status"`
	Note    string          `json:"note,omitempty"`
	Dropped uint8           `json:"dropped,omitempty"`
	Attrs   map[string]any  `json:"attrs,omitempty"`
	Events  []spanEventJSON `json:"events,omitempty"`
}

type spanEventJSON struct {
	Name string `json:"name"`
	AtNs int64  `json:"at_ns"`
}

// WriteSpansJSON renders records (typically a Recorder snapshot) as
// indented JSON — the goldenable flight-recorder dump format served
// by /debug/trace and written into diagnostic bundles.
func WriteSpansJSON(w io.Writer, recs []SpanRecord) error {
	out := make([]spanJSON, len(recs))
	for i := range recs {
		rec := &recs[i]
		sj := spanJSON{
			Trace:   rec.Trace.String(),
			Span:    rec.ID.String(),
			Name:    rec.Name,
			Remote:  rec.Remote,
			StartNs: rec.Start,
			DurNs:   rec.End - rec.Start,
			Status:  rec.Status.String(),
			Note:    rec.Note,
			Dropped: rec.Dropped,
		}
		if rec.Parent != 0 {
			sj.Parent = rec.Parent.String()
		}
		if rec.NAttrs > 0 {
			sj.Attrs = make(map[string]any, rec.NAttrs)
			for _, a := range rec.Attrs[:rec.NAttrs] {
				if a.IsStr {
					sj.Attrs[a.Key] = a.Str
				} else {
					sj.Attrs[a.Key] = a.Int
				}
			}
		}
		for _, e := range rec.Events[:rec.NEvents] {
			sj.Events = append(sj.Events, spanEventJSON{Name: e.Name, AtNs: e.At})
		}
		out[i] = sj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
