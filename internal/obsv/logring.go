package obsv

import (
	"bytes"
	"sync"
)

// LogRing is a fixed-size circular io.Writer: tee slog's output into
// one and Tail returns the most recent bytes, so a diagnostic bundle
// can include the log lines leading up to an incident without keeping
// unbounded history. Writes never block beyond the mutex and never
// allocate; old bytes are silently overwritten.
type LogRing struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	buf []byte
	//tipsy:guardedby mu
	w int // next write offset
	//tipsy:guardedby mu
	full bool
}

// NewLogRing builds a ring holding the last capacity bytes (minimum
// 1 KiB).
func NewLogRing(capacity int) *LogRing {
	if capacity < 1024 {
		capacity = 1024
	}
	return &LogRing{buf: make([]byte, capacity)}
}

// Write implements io.Writer; it always succeeds.
func (l *LogRing) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(p)
	if n == 0 {
		return 0, nil
	}
	if n >= len(l.buf) {
		// One write larger than the whole ring: keep its tail.
		copy(l.buf, p[n-len(l.buf):])
		l.w, l.full = 0, true
		return n, nil
	}
	c := copy(l.buf[l.w:], p)
	if c < n {
		copy(l.buf, p[c:])
	}
	l.w += n
	if l.w >= len(l.buf) {
		l.w -= len(l.buf)
		l.full = true
	}
	return n, nil
}

// Tail returns a copy of the buffered bytes, oldest first. Once the
// ring has wrapped, the (usually torn) first line is trimmed so the
// result starts at a line boundary.
func (l *LogRing) Tail() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		out := make([]byte, l.w)
		copy(out, l.buf[:l.w])
		return out
	}
	out := make([]byte, 0, len(l.buf))
	out = append(out, l.buf[l.w:]...)
	out = append(out, l.buf[:l.w]...)
	if i := bytes.IndexByte(out, '\n'); i >= 0 && i+1 < len(out) {
		out = out[i+1:]
	}
	return out
}
