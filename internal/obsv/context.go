package obsv

import "context"

type spanCtxKeyType struct{}

// spanCtxKey is a pointer, not a struct value: ctx.Value takes an
// interface, and a pointer-shaped key keeps the lookup boxing-free on
// hot request paths (handlePredict sits under an allocation budget).
var spanCtxKey = &spanCtxKeyType{}

// ContextWithSpan returns ctx carrying s. A nil span returns ctx
// unchanged, so unsampled requests add no context layer.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey, s)
}

// SpanFromContext returns the span carried by ctx, or nil — and nil
// composes: every Span method and Tracer.StartChild accept it.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey).(*Span)
	return s
}
