package obsv

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("x_total") != c {
		t.Error("second lookup returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 46, 47}, {1 << 60, HistBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.v); got != tc.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	h := NewRegistry().Histogram("h_ns")
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 106 {
		t.Errorf("count=%d sum=%d, want 4/106", s.Count, s.Sum)
	}
	if s.Buckets[1] != 1 || s.Buckets[2] != 2 || s.Buckets[7] != 1 {
		t.Errorf("buckets = %v", s.Buckets[:8])
	}
}

// TestSnapshotDeterministicOrder pins the goldenability contract:
// registration order never affects snapshot or text order.
func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func(names []string) string {
		r := NewRegistry()
		for i, n := range names {
			r.Counter(n).Add(uint64(i + 1))
		}
		var buf bytes.Buffer
		r.WriteText(&buf)
		return buf.String()
	}
	a := build([]string{"b_total", "a_total", "c_total"})
	// Same metrics, reversed registration order, same values.
	r := NewRegistry()
	r.Counter("c_total").Add(3)
	r.Counter("a_total").Add(2)
	r.Counter("b_total").Add(1)
	var buf bytes.Buffer
	r.WriteText(&buf)
	b := buf.String()
	_ = a
	if !strings.Contains(b, "a_total 2\n") {
		t.Fatalf("text output missing a_total:\n%s", b)
	}
	if ia, ib, ic := strings.Index(b, "a_total"), strings.Index(b, "b_total"), strings.Index(b, "c_total"); !(ia < ib && ib < ic) {
		t.Errorf("metrics not in sorted order:\n%s", b)
	}
}

func TestWriteTextHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	h.Observe(1) // bucket 1, le=1
	h.Observe(3) // bucket 2, le=3
	h.Observe(3)
	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{le="1"} 1`,
		`lat_ns_bucket{le="3"} 3`,
		`lat_ns_bucket{le="+Inf"} 3`,
		"lat_ns_sum 7",
		"lat_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

// TestConcurrentWritesDuringSnapshot hammers every metric kind from
// many goroutines while snapshotting concurrently — the -race proof
// that /metrics can be scraped mid-ingest. Final totals must balance.
func TestConcurrentWritesDuringSnapshot(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers run for the whole write phase.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snapshot()
				for _, c := range s.Counters {
					if c.Value < 0 {
						t.Error("negative counter in snapshot")
						return
					}
				}
				var buf bytes.Buffer
				r.WriteText(&buf)
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			c := r.Counter("hits_total")
			g := r.Gauge("depth")
			h := r.Histogram("lat_ns")
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i%1000 + 1))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if v := r.Counter("hits_total").Value(); v != workers*perW {
		t.Errorf("hits_total = %d, want %d", v, workers*perW)
	}
	if v := r.Gauge("depth").Value(); v != workers*perW {
		t.Errorf("depth = %d, want %d", v, workers*perW)
	}
	if h := r.Histogram("lat_ns").Snapshot(); h.Count != workers*perW {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*perW)
	}
}
