package obsv

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the span half of the tracing subsystem: real
// parent/child spans with trace IDs, attributes, events, and status,
// recorded into the flight recorder (recorder.go) and propagated
// across process boundaries as W3C traceparent (propagate.go).
//
// Two properties shape every line here:
//
//   - Determinism. IDs come from an injectable clock plus a
//     per-process sequence, so a seeded run with a fake clock produces
//     byte-identical span dumps (goldenable).
//   - Zero-alloc off switch. A nil *Tracer, an unsampled root, or a
//     nil *Span make every method a nil-check-and-return. Sampled
//     spans are pooled. The tracing calls sit inside functions under
//     the //tipsy:hotpath allocation budget, so nothing in this file
//     may box, convert strings, or allocate in a loop.

// TraceID identifies one end-to-end trace (a request, an ingest
// cycle). The zero value means "no trace".
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether t is the absent trace ID.
func (t TraceID) IsZero() bool { return t.Hi == 0 && t.Lo == 0 }

// String renders the ID as 32 lowercase hex digits — the traceparent
// wire form.
func (t TraceID) String() string {
	var b [32]byte
	hex64(t.Hi, b[:16])
	hex64(t.Lo, b[16:])
	return string(b[:])
}

// SpanID identifies one span within the process. IDs are a process
// sequence, so span 0 never exists and parent==0 marks a root.
type SpanID uint64

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string {
	var b [16]byte
	hex64(uint64(id), b[:])
	return string(b[:])
}

const hexDigits = "0123456789abcdef"

func hex64(v uint64, dst []byte) {
	for i := len(dst) - 1; i >= 0; i-- {
		dst[i] = hexDigits[v&0xF]
		v >>= 4
	}
}

// SpanContext is the propagatable slice of a span: enough to parent a
// child in another goroutine, subsystem, or process. The zero value
// (or Sampled=false) parents nothing — StartFrom on it returns nil.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// SpanStatus is the terminal status of a span.
type SpanStatus uint8

const (
	StatusOK SpanStatus = iota
	StatusError
)

func (s SpanStatus) String() string {
	if s == StatusError {
		return "error"
	}
	return "ok"
}

// Attr is one span attribute: a key with either a string or an int64
// value. Fixed-shape (no interface) so attaching one never boxes.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// SpanEvent is a point-in-time marker inside a span (quarantine,
// rung demotion, checkpoint write).
type SpanEvent struct {
	Name string
	At   int64 // clock nanoseconds
}

// Capacity of the inline attribute/event arrays. Overflow increments
// Dropped instead of allocating — spans on hot paths must stay flat.
const (
	maxSpanAttrs  = 4
	maxSpanEvents = 6
)

// SpanRecord is the flat, copyable record of one finished span. This
// is what the flight recorder stores: fixed size, no pointers beyond
// the interned strings, safe to memcpy into a ring slot.
type SpanRecord struct {
	Trace   TraceID
	ID      SpanID
	Parent  SpanID
	Name    string
	Start   int64 // clock nanoseconds
	End     int64
	Status  SpanStatus
	Note    string // status detail, set by Error
	Remote  bool   // parented by a traceparent from another process
	NAttrs  uint8
	NEvents uint8
	Dropped uint8 // attrs+events discarded after the inline arrays filled
	Attrs   [maxSpanAttrs]Attr
	Events  [maxSpanEvents]SpanEvent
}

// Span is a live span. A nil *Span is the universal "not recording"
// value — every method nil-checks, so call sites never branch on
// sampling themselves.
type Span struct {
	t   *Tracer
	rec SpanRecord
}

// TracerOptions configures NewTracer.
type TracerOptions struct {
	// Clock supplies nanosecond timestamps for every span start, end,
	// and event. Nil means the wall clock; tests and tipsyd inject
	// their own so dumps are deterministic.
	Clock func() int64
	// SampleEvery records every Nth root trace (children follow their
	// root's decision). 0 and 1 both mean "record every trace".
	SampleEvery uint64
}

// Tracer mints spans and hands finished records to a Recorder. A nil
// *Tracer is fully disabled: every Start* returns nil at the cost of
// one comparison, with zero allocations.
type Tracer struct {
	clock       func() int64
	sampleEvery uint64
	rec         *Recorder
	seq         atomic.Uint64 // span ID sequence, process-wide per tracer
	roots       atomic.Uint64 // root counter driving the sampling decision
	pool        sync.Pool     // *Span, so sampled spans recycle instead of allocating
}

// wallNanos is the default span clock.
//
//tipsy:clocksource
func wallNanos() int64 { return time.Now().UnixNano() }

// NewTracer builds a tracer recording into rec (which may be nil:
// spans then run their lifecycle but records go nowhere — mainly
// useful in benchmarks).
func NewTracer(rec *Recorder, opts TracerOptions) *Tracer {
	clock := opts.Clock
	if clock == nil {
		clock = wallNanos
	}
	every := opts.SampleEvery
	if every == 0 {
		every = 1
	}
	t := &Tracer{clock: clock, sampleEvery: every, rec: rec}
	t.pool.New = func() any { return new(Span) }
	return t
}

// Enabled reports whether the tracer records anything at all.
func (t *Tracer) Enabled() bool { return t != nil }

// StartRoot begins a new trace, applying the sampling policy: the
// first root is always sampled, then every sampleEvery-th after it.
// Unsampled roots return nil, which children inherit for free.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	n := t.roots.Add(1)
	if (n-1)%t.sampleEvery != 0 {
		return nil
	}
	return t.start(name, TraceID{}, 0, false)
}

// StartChild begins a span under parent. A nil parent yields a nil
// span — an unsampled trace stays unsampled all the way down.
func (t *Tracer) StartChild(parent *Span, name string) *Span {
	if t == nil || parent == nil {
		return nil
	}
	return t.start(name, parent.rec.Trace, parent.rec.ID, false)
}

// StartFrom begins a span under a propagated context — how subsystems
// that only hold a SpanContext (the aggregator, the collector) attach
// their work to the caller's trace. Zero or unsampled contexts yield
// nil; StartFrom never invents a new root.
func (t *Tracer) StartFrom(sc SpanContext, name string) *Span {
	if t == nil || !sc.Sampled || sc.Trace.IsZero() {
		return nil
	}
	return t.start(name, sc.Trace, sc.Span, false)
}

// StartRemote is StartFrom for contexts that crossed a process
// boundary (extracted from a traceparent header): the span is marked
// Remote so dumps show where the trace entered this process.
func (t *Tracer) StartRemote(sc SpanContext, name string) *Span {
	if t == nil || !sc.Sampled || sc.Trace.IsZero() {
		return nil
	}
	return t.start(name, sc.Trace, sc.Span, true)
}

func (t *Tracer) start(name string, trace TraceID, parent SpanID, remote bool) *Span {
	s := t.pool.Get().(*Span)
	id := SpanID(t.seq.Add(1))
	now := t.clock()
	if trace.IsZero() {
		// Root: derive the trace ID from the clock and the span
		// sequence — unique per process, reproducible under a fake
		// clock.
		trace = TraceID{Hi: uint64(now), Lo: uint64(id)}
	}
	s.t = t
	s.rec = SpanRecord{Trace: trace, ID: id, Parent: parent, Name: name, Start: now, Remote: remote}
	return s
}

// Context returns the span's propagatable context; nil spans return
// the zero (unsampled) context, so propagation composes without
// branches.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.rec.Trace, Span: s.rec.ID, Sampled: true}
}

// SetInt attaches an integer attribute. Past maxSpanAttrs the
// attribute is dropped (counted), never allocated.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	if s.rec.NAttrs == maxSpanAttrs {
		s.rec.Dropped++
		return
	}
	s.rec.Attrs[s.rec.NAttrs] = Attr{Key: key, Int: v}
	s.rec.NAttrs++
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	if s.rec.NAttrs == maxSpanAttrs {
		s.rec.Dropped++
		return
	}
	s.rec.Attrs[s.rec.NAttrs] = Attr{Key: key, Str: v, IsStr: true}
	s.rec.NAttrs++
}

// Event records a point-in-time marker at the current clock.
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	if s.rec.NEvents == maxSpanEvents {
		s.rec.Dropped++
		return
	}
	s.rec.Events[s.rec.NEvents] = SpanEvent{Name: name, At: s.t.clock()}
	s.rec.NEvents++
}

// Error marks the span failed with a short note.
func (s *Span) Error(note string) {
	if s == nil {
		return
	}
	s.rec.Status = StatusError
	s.rec.Note = note
}

// End stamps the end time, hands the record to the flight recorder,
// and recycles the span. The span must not be used after End.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	s.rec.End = t.clock()
	t.rec.add(&s.rec)
	s.t = nil
	t.pool.Put(s)
}
