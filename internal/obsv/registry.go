// Package obsv is TIPSY's observability substrate: a dependency-free
// metrics registry (counters, gauges, histograms with fixed log-scale
// buckets) and a lightweight prediction-path tracer. Every layer of
// the system — ingest, pipeline, serving — registers its counters
// here instead of keeping ad-hoc struct fields, so one snapshot shows
// the whole system and one /metrics endpoint exports it.
//
// Design constraints, in order:
//
//   - Race-safe: hot paths (the collector, the aggregator) bump
//     counters under concurrent load, so every metric is atomic and a
//     snapshot never blocks writers for long.
//   - Deterministic: snapshots and the text exposition iterate metrics
//     in sorted name order, so seeded runs produce goldenable output.
//   - Dependency-free: stdlib only, usable from any package without
//     import cycles.
//
// Metric names follow <subsystem>_<what>[_<unit>][_total] in snake
// case: counters end in _total, histograms carry their unit (_ns,
// _bytes), gauges are bare. Names are label-free; a variant belongs
// in the name (tipsyd_fallback_geo_total), keeping the registry flat
// and the text format trivially diffable.
package obsv

import (
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the fixed number of histogram buckets. Bucket i
// counts observations v with 2^(i-1) <= v < 2^i (bucket 0 counts
// v <= 0 and v = 1 lands in bucket 1), so the buckets cover the full
// useful range of nanosecond timings and byte sizes: 2^47 ns is about
// 39 hours.
const HistBuckets = 48

// Histogram counts observations into fixed base-2 log-scale buckets.
// The fixed layout keeps Observe allocation-free and snapshots
// goldenable: two histograms are always bucket-compatible.
type Histogram struct {
	counts [HistBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// Observe records one value (e.g. nanoseconds or bytes).
func (h *Histogram) Observe(v int64) {
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveN records n observations of the same value in one shot —
// how the runtime/metrics bridge replays bucket-count deltas without
// n separate atomic round trips.
func (h *Histogram) ObserveN(v int64, n uint64) {
	if n == 0 {
		return
	}
	h.counts[bucketIndex(v)].Add(n)
	h.count.Add(n)
	h.sum.Add(v * int64(n))
}

// Count returns how many observations the histogram holds.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistogramSnapshot is a consistent-enough copy of a histogram: each
// field is read atomically, so concurrent Observes may skew count vs
// buckets by in-flight observations but never corrupt either.
type HistogramSnapshot struct {
	Count   uint64
	Sum     int64
	Buckets [HistBuckets]uint64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. Get-or-create lookups (Counter, Gauge, Histogram) are
// cheap enough for setup paths but hot paths should hold on to the
// returned pointer.
type Registry struct {
	mu sync.RWMutex
	//tipsy:guardedby mu
	counters map[string]*Counter
	//tipsy:guardedby mu
	gauges map[string]*Gauge
	//tipsy:guardedby mu
	histograms map[string]*Histogram
	//tipsy:guardedby mu
	infos map[string]string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		infos:      make(map[string]string),
	}
}

// Counter returns the named counter, creating it on first use. A name
// already registered as a different metric kind panics: that is a
// programming error, not an operational condition.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	r.checkFreeLocked(name, "counter")
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	r.checkFreeLocked(name, "gauge")
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.histograms[name]; h != nil {
		return h
	}
	r.checkFreeLocked(name, "histogram")
	h = &Histogram{}
	r.histograms[name] = h
	return h
}

// checkFreeLocked panics if name is already registered as another
// metric kind. Callers hold r.mu.
func (r *Registry) checkFreeLocked(name, kind string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obsv: %q already registered as a counter, requested as %s", name, kind))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obsv: %q already registered as a gauge, requested as %s", name, kind))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("obsv: %q already registered as a histogram, requested as %s", name, kind))
	}
	// Concatenation, not Sprintf: this function sits in the hot-path
	// closure (via Registry.Histogram) and Sprintf args would grow the
	// allocation budget's boxing count.
	if _, ok := r.infos[name]; ok {
		panic("obsv: " + name + " already registered as an info, requested as " + kind)
	}
}

// SetInfo registers a build-info-style metric: a constant-1 gauge
// whose payload is its label string (e.g. `version="v3",seed="17"`),
// the Prometheus idiom for exposing versions on /metrics. Infos
// appear only in the text exposition — Snapshot and Scalars exclude
// them, so label churn (toolchain upgrades) never shows up in
// tipsybench's deterministic metric comparison. Re-setting an info
// replaces its labels.
func (r *Registry) SetInfo(name, labels string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.infos[name]; !ok {
		r.checkFreeLocked(name, "info")
	}
	r.infos[name] = labels
}

// NamedValue is one scalar metric in a snapshot.
type NamedValue struct {
	Name  string
	Value int64
}

// NamedHistogram is one histogram in a snapshot.
type NamedHistogram struct {
	Name string
	Hist HistogramSnapshot
}

// Snapshot is a point-in-time copy of every registered metric, each
// section sorted by name. Counters are reported as int64 for JSON
// friendliness; they are far from overflowing in practice.
type Snapshot struct {
	Counters   []NamedValue
	Gauges     []NamedValue
	Histograms []NamedHistogram
}

// Snapshot copies every metric. Iteration order is deterministic
// (sorted by name), so snapshots of seeded runs are goldenable.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedValue{name, int64(c.Value())})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedValue{name, g.Value()})
	}
	for name, h := range r.histograms {
		s.Histograms = append(s.Histograms, NamedHistogram{name, h.Snapshot()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Scalars flattens the snapshot's counters and gauges into one map —
// the deterministic fields tipsybench records per run.
func (s Snapshot) Scalars() map[string]int64 {
	out := make(map[string]int64, len(s.Counters)+len(s.Gauges))
	for _, c := range s.Counters {
		out[c.Name] = c.Value
	}
	for _, g := range s.Gauges {
		out[g.Name] = g.Value
	}
	return out
}

// WriteText writes the Prometheus-style text exposition of the whole
// registry: deterministic order, counters and gauges one line each,
// histograms as cumulative le-labelled buckets (empty leading and
// trailing buckets elided) plus _sum and _count.
func (r *Registry) WriteText(w io.Writer) {
	s := r.Snapshot()
	for _, c := range s.Counters {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.Name, g.Name, g.Value)
	}
	r.mu.RLock()
	infoNames := make([]string, 0, len(r.infos))
	for name := range r.infos {
		infoNames = append(infoNames, name)
	}
	sort.Strings(infoNames)
	for _, name := range infoNames {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s{%s} 1\n", name, name, r.infos[name])
	}
	r.mu.RUnlock()
	for _, nh := range s.Histograms {
		fmt.Fprintf(w, "# TYPE %s histogram\n", nh.Name)
		lo, hi := 0, HistBuckets
		for lo < hi && nh.Hist.Buckets[lo] == 0 {
			lo++
		}
		for hi > lo && nh.Hist.Buckets[hi-1] == 0 {
			hi--
		}
		var cum uint64
		for i := lo; i < hi; i++ {
			cum += nh.Hist.Buckets[i]
			// Bucket i's inclusive upper bound is 2^i - 1.
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", nh.Name, uint64(1)<<uint(i)-1, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", nh.Name, nh.Hist.Count)
		fmt.Fprintf(w, "%s_sum %d\n", nh.Name, nh.Hist.Sum)
		fmt.Fprintf(w, "%s_count %d\n", nh.Name, nh.Hist.Count)
	}
}

// Handler serves the text exposition — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
