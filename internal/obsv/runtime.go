package obsv

import (
	"math"
	"runtime/metrics"
	"sync"
)

// RuntimeBridge samples the Go runtime's own metrics into a Registry:
// heap and goroutine gauges, the GC cycle count, and the GC pause and
// scheduler latency distributions as registry histograms. The runtime
// exposes the distributions as cumulative float64 histograms, so each
// Sample observes the per-bucket count delta since the previous
// Sample at the bucket's upper bound (in nanoseconds) — cheap, and
// accurate to within a bucket width, which is all a log-scale
// histogram preserves anyway.
//
// Sample is pull-driven: tipsyd calls it on each /metrics scrape and
// before writing a diagnostic bundle, so idle processes pay nothing.
type RuntimeBridge struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	samples []metrics.Sample

	heapBytes  *Gauge
	goroutines *Gauge
	gcCycles   *Gauge
	gcPause    *Histogram
	schedLat   *Histogram

	prevPause []uint64
	prevSched []uint64
}

const (
	sampleHeapBytes  = "/memory/classes/heap/objects:bytes"
	sampleGoroutines = "/sched/goroutines:goroutines"
	sampleGCCycles   = "/gc/cycles/total:gc-cycles"
	sampleGCPause    = "/gc/pauses:seconds"
	sampleSchedLat   = "/sched/latencies:seconds"
)

// NewRuntimeBridge registers the runtime metrics in reg and returns
// the bridge. Call Sample to refresh the values.
func NewRuntimeBridge(reg *Registry) *RuntimeBridge {
	return &RuntimeBridge{
		samples: []metrics.Sample{
			{Name: sampleHeapBytes},
			{Name: sampleGoroutines},
			{Name: sampleGCCycles},
			{Name: sampleGCPause},
			{Name: sampleSchedLat},
		},
		heapBytes:  reg.Gauge("runtime_heap_bytes"),
		goroutines: reg.Gauge("runtime_goroutines"),
		gcCycles:   reg.Gauge("runtime_gc_cycles"),
		gcPause:    reg.Histogram("runtime_gc_pause_ns"),
		schedLat:   reg.Histogram("runtime_sched_latency_ns"),
	}
}

// Sample reads the runtime metrics and updates the registry.
func (b *RuntimeBridge) Sample() {
	b.mu.Lock()
	defer b.mu.Unlock()
	metrics.Read(b.samples)
	for i := range b.samples {
		s := &b.samples[i]
		switch s.Name {
		case sampleHeapBytes:
			if s.Value.Kind() == metrics.KindUint64 {
				b.heapBytes.Set(int64(s.Value.Uint64()))
			}
		case sampleGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				b.goroutines.Set(int64(s.Value.Uint64()))
			}
		case sampleGCCycles:
			if s.Value.Kind() == metrics.KindUint64 {
				b.gcCycles.Set(int64(s.Value.Uint64()))
			}
		case sampleGCPause:
			b.prevPause = observeHistDelta(b.gcPause, s, b.prevPause)
		case sampleSchedLat:
			b.prevSched = observeHistDelta(b.schedLat, s, b.prevSched)
		}
	}
}

// observeHistDelta replays the growth of a cumulative runtime
// histogram into h, observing each bucket's new count at the bucket's
// finite bound in nanoseconds. Returns the updated previous-counts
// slice.
func observeHistDelta(h *Histogram, s *metrics.Sample, prev []uint64) []uint64 {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return prev
	}
	fh := s.Value.Float64Histogram()
	if fh == nil || len(fh.Buckets) != len(fh.Counts)+1 {
		return prev
	}
	if len(prev) != len(fh.Counts) {
		prev = make([]uint64, len(fh.Counts))
	}
	for i, c := range fh.Counts {
		d := c - prev[i]
		prev[i] = c
		if d == 0 {
			continue
		}
		// Prefer the bucket's upper bound; the +Inf tail falls back to
		// its lower bound, and a -Inf lower bound clamps to zero.
		sec := fh.Buckets[i+1]
		if math.IsInf(sec, 1) {
			sec = fh.Buckets[i]
		}
		if math.IsInf(sec, -1) || sec < 0 {
			sec = 0
		}
		h.ObserveN(int64(sec*1e9), d)
	}
	return prev
}
