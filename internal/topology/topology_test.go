package topology

import (
	"testing"

	"tipsy/internal/bgp"
	"tipsy/internal/geo"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g := Generate(TestGenConfig(1), geo.World())
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	return g
}

func TestGenerateDeterministic(t *testing.T) {
	m := geo.World()
	a := Generate(TestGenConfig(42), m)
	b := Generate(TestGenConfig(42), m)
	if a.Len() != b.Len() {
		t.Fatal("same seed produced different AS counts")
	}
	for _, asn := range a.ASNs() {
		ea, eb := a.Edges(asn), b.Edges(asn)
		if len(ea) != len(eb) {
			t.Fatalf("%v: edge count differs between runs", asn)
		}
		for i := range ea {
			if ea[i].Neighbor != eb[i].Neighbor || ea[i].Rel != eb[i].Rel {
				t.Fatalf("%v: edge %d differs between runs", asn, i)
			}
		}
	}
	c := Generate(TestGenConfig(43), m)
	diff := false
	for _, asn := range a.ASNs() {
		if len(a.Edges(asn)) != len(c.Edges(asn)) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical edge structure (suspicious)")
	}
}

func TestGeneratePopulation(t *testing.T) {
	cfg := TestGenConfig(7)
	g := Generate(cfg, geo.World())
	counts := map[Kind]int{}
	for _, asn := range g.ASNs() {
		a, _ := g.AS(asn)
		counts[a.Kind]++
	}
	want := map[Kind]int{
		KindCloud: 1, KindTier1: cfg.NTier1, KindTier2: cfg.NTier2,
		KindAccess: cfg.NAccess, KindCDN: cfg.NCDN, KindEnterprise: cfg.NEnterprise,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("%v: %d ASes, want %d", k, counts[k], n)
		}
	}
}

func TestEdgeSymmetry(t *testing.T) {
	g := testGraph(t)
	for _, asn := range g.ASNs() {
		for _, e := range g.Edges(asn) {
			back, ok := g.Edge(e.Neighbor, asn)
			if !ok {
				t.Fatalf("edge %v->%v has no reverse", asn, e.Neighbor)
			}
			switch e.Rel {
			case bgp.RelProvider:
				if back.Rel != bgp.RelCustomer {
					t.Fatalf("%v sees %v as provider but reverse is %v", asn, e.Neighbor, back.Rel)
				}
			case bgp.RelPeer:
				if back.Rel != bgp.RelPeer {
					t.Fatalf("peer edge not symmetric")
				}
			}
		}
	}
}

func TestTier1Clique(t *testing.T) {
	g := testGraph(t)
	var tier1 []bgp.ASN
	for _, asn := range g.ASNs() {
		if a, _ := g.AS(asn); a.Kind == KindTier1 {
			tier1 = append(tier1, asn)
		}
	}
	for i, a := range tier1 {
		for _, b := range tier1[i+1:] {
			e, ok := g.Edge(a, b)
			if !ok || e.Rel != bgp.RelPeer {
				t.Fatalf("tier1 %v and %v not peering", a, b)
			}
		}
		e, ok := g.Edge(a, g.Cloud())
		if !ok || e.Rel != bgp.RelPeer {
			t.Fatalf("tier1 %v does not peer with the cloud", a)
		}
	}
}

func TestDistancesToCloud(t *testing.T) {
	g := testGraph(t)
	dist := g.DistancesToCloud()
	for _, asn := range g.ASNs() {
		if asn == g.Cloud() {
			continue
		}
		d, ok := dist[asn]
		if !ok {
			t.Fatalf("%v unreachable", asn)
		}
		if d < 1 || d > 6 {
			t.Errorf("%v at implausible distance %d", asn, d)
		}
		if g.HasEdge(asn, g.Cloud()) && d != 1 {
			t.Errorf("direct neighbor %v at distance %d", asn, d)
		}
	}
	// Monotonic consistency: distance(X) <= 1 + min provider distance.
	for _, asn := range g.ASNs() {
		if asn == g.Cloud() {
			continue
		}
		for _, p := range g.Providers(asn) {
			if pd, ok := dist[p]; ok && dist[asn] > pd+1 {
				t.Errorf("%v: distance %d but provider %v at %d", asn, dist[asn], p, pd)
			}
		}
	}
}

func TestNextHopsToCloud(t *testing.T) {
	g := testGraph(t)
	dist := g.DistancesToCloud()
	for _, asn := range g.ASNs() {
		if asn == g.Cloud() {
			continue
		}
		hops := g.NextHopsToCloud(asn, dist)
		if len(hops) == 0 {
			t.Fatalf("%v has no next hop toward the cloud", asn)
		}
		if dist[asn] == 1 {
			if len(hops) != 1 || hops[0] != g.Cloud() {
				t.Fatalf("direct neighbor %v should forward straight to the cloud", asn)
			}
			continue
		}
		for _, h := range hops {
			if dist[h] != dist[asn]-1 {
				t.Errorf("%v next hop %v is not strictly closer", asn, h)
			}
			if e, _ := g.Edge(asn, h); e.Rel != bgp.RelProvider {
				t.Errorf("%v forwards cloud-bound traffic to non-provider %v", asn, h)
			}
		}
	}
}

func TestCDNIslands(t *testing.T) {
	g := testGraph(t)
	foundMulti := false
	for _, asn := range g.ASNs() {
		a, _ := g.AS(asn)
		if a.Kind != KindCDN {
			continue
		}
		if len(a.Islands) > 1 {
			foundMulti = true
		}
		covered := 0
		for i, isl := range a.Islands {
			covered += len(isl)
			for _, m := range isl {
				if a.Island(m) != i {
					t.Errorf("%v: Island(%d) lookup inconsistent", asn, m)
				}
			}
		}
		if covered != len(a.Metros) {
			t.Errorf("%v: islands don't partition presence", asn)
		}
	}
	if !foundMulti {
		t.Error("no CDN with multiple islands; fragmentation not modelled")
	}
}

func TestIslandLookupMiss(t *testing.T) {
	g := testGraph(t)
	a, _ := g.AS(g.Cloud())
	if a.Island(0) != -1 {
		t.Error("Island of absent metro should be -1")
	}
}

func TestInterconnectMetrosNonEmpty(t *testing.T) {
	g := testGraph(t)
	for _, asn := range g.ASNs() {
		for _, e := range g.Edges(asn) {
			if len(e.Metros) == 0 {
				t.Fatalf("edge %v-%v has no interconnection metro", asn, e.Neighbor)
			}
		}
	}
}

func TestCloudHasWidePeering(t *testing.T) {
	g := testGraph(t)
	n := len(g.Edges(g.Cloud()))
	if n < 20 {
		t.Errorf("cloud has only %d neighbors; expected a wide peering surface", n)
	}
	for _, e := range g.Edges(g.Cloud()) {
		if e.Rel != bgp.RelPeer {
			t.Errorf("cloud relationship with %v is %v; the WAN is transit-free", e.Neighbor, e.Rel)
		}
	}
}

func TestRelationshipQueries(t *testing.T) {
	g := New(1)
	g.AddAS(&AS{ASN: 1, Kind: KindCloud, Metros: []geo.MetroID{1}})
	g.AddAS(&AS{ASN: 2, Kind: KindTier1, Metros: []geo.MetroID{1}})
	g.AddAS(&AS{ASN: 3, Kind: KindAccess, Metros: []geo.MetroID{1}})
	g.Connect(2, 1, bgp.RelPeer, []geo.MetroID{1})
	g.Connect(3, 2, bgp.RelProvider, []geo.MetroID{1})
	if got := g.Providers(3); len(got) != 1 || got[0] != 2 {
		t.Errorf("Providers(3) = %v", got)
	}
	if got := g.Customers(2); len(got) != 1 || got[0] != 3 {
		t.Errorf("Customers(2) = %v", got)
	}
	if got := g.Peers(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("Peers(2) = %v", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := New(1)
	g.AddAS(&AS{ASN: 1, Kind: KindCloud, Metros: []geo.MetroID{1}})
	g.AddAS(&AS{ASN: 2, Kind: KindAccess, Metros: []geo.MetroID{1}})
	// Inject a raw asymmetric edge behind the API's back.
	g.edges[1] = append(g.edges[1], Edge{Neighbor: 2, Rel: bgp.RelPeer, Metros: []geo.MetroID{1}})
	if err := g.Validate(); err == nil {
		t.Error("Validate should flag asymmetric edges")
	}
}

func TestAddASPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddAS should panic")
		}
	}()
	g := New(1)
	g.AddAS(&AS{ASN: 5, Metros: []geo.MetroID{1}})
	g.AddAS(&AS{ASN: 5, Metros: []geo.MetroID{1}})
}
