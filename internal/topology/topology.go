// Package topology models the AS-level Internet that traffic crosses
// before it ingresses the WAN: autonomous systems with geographic
// presence, Gao-Rexford business relationships (customer / peer /
// provider), and valley-free reachability analysis.
//
// The real AS topology is only partially observable (§2 of the paper:
// "lack of visibility"); this package generates a synthetic Internet
// with the structural properties the paper leans on — a flat core
// where most bytes originate one AS hop from the cloud, dense tier-1
// interconnection, regional tier-2 transit, eyeball/access networks,
// CDNs with isolated geographic islands that lack a global backbone,
// and a long tail of enterprise stubs.
package topology

import (
	"fmt"
	"sort"

	"tipsy/internal/bgp"
	"tipsy/internal/geo"
)

// Kind classifies an AS by its role in the Internet hierarchy.
type Kind uint8

const (
	// KindCloud is the WAN under study (exactly one per graph).
	KindCloud Kind = iota
	// KindTier1 is a transit-free backbone network.
	KindTier1
	// KindTier2 is a regional transit provider.
	KindTier2
	// KindAccess is an eyeball / access network.
	KindAccess
	// KindCDN is a content network with fragmented geographic islands.
	KindCDN
	// KindEnterprise is a stub enterprise network.
	KindEnterprise
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCloud:
		return "cloud"
	case KindTier1:
		return "tier1"
	case KindTier2:
		return "tier2"
	case KindAccess:
		return "access"
	case KindCDN:
		return "cdn"
	case KindEnterprise:
		return "enterprise"
	}
	return "unknown"
}

// AS is one autonomous system.
type AS struct {
	ASN    bgp.ASN
	Kind   Kind
	Metros []geo.MetroID // geographic presence, ascending
	// Islands partitions Metros into backbone-connected groups. For
	// most ASes there is a single island. CDNs get several: the paper
	// observes that large CDNs have isolated pockets that can only
	// reach the WAN through public transit because they lack a global
	// backbone.
	Islands [][]geo.MetroID
	// Weight scales how much traffic the AS originates.
	Weight float64
}

// Island returns the index of the island containing metro, or -1.
func (a *AS) Island(metro geo.MetroID) int {
	for i, isl := range a.Islands {
		for _, m := range isl {
			if m == metro {
				return i
			}
		}
	}
	return -1
}

// Edge is a relationship between two ASes as seen from one side.
type Edge struct {
	// Neighbor is the AS on the far side.
	Neighbor bgp.ASN
	// Rel is what the neighbor is to the local AS: routes learned
	// from the neighbor carry this relationship class.
	Rel bgp.Relationship
	// Metros lists the interconnection metros, ascending.
	Metros []geo.MetroID
}

// Graph is an AS-level topology. Construct with New or Generate.
type Graph struct {
	cloud bgp.ASN
	ases  map[bgp.ASN]*AS
	edges map[bgp.ASN][]Edge
	order []bgp.ASN // deterministic iteration order
}

// New creates an empty graph whose WAN under study is cloud.
func New(cloud bgp.ASN) *Graph {
	return &Graph{
		cloud: cloud,
		ases:  make(map[bgp.ASN]*AS),
		edges: make(map[bgp.ASN][]Edge),
	}
}

// Cloud returns the ASN of the WAN under study.
func (g *Graph) Cloud() bgp.ASN { return g.cloud }

// AddAS inserts an AS. It panics on duplicates: graph construction is
// programmatic and a duplicate is a bug, not an input error.
func (g *Graph) AddAS(a *AS) {
	if _, dup := g.ases[a.ASN]; dup {
		panic(fmt.Sprintf("topology: duplicate %v", a.ASN))
	}
	if len(a.Islands) == 0 && len(a.Metros) > 0 {
		a.Islands = [][]geo.MetroID{a.Metros}
	}
	g.ases[a.ASN] = a
	g.order = append(g.order, a.ASN)
}

// AS returns the AS with the given ASN.
func (g *Graph) AS(asn bgp.ASN) (*AS, bool) {
	a, ok := g.ases[asn]
	return a, ok
}

// Len reports the number of ASes, including the cloud.
func (g *Graph) Len() int { return len(g.ases) }

// ASNs returns every ASN in insertion order. Callers must not modify
// the returned slice.
func (g *Graph) ASNs() []bgp.ASN { return g.order }

// Connect records a relationship between a and b interconnecting at
// the given metros. rel is what b is to a (e.g. RelProvider means b
// provides transit to a); the reverse edge is derived automatically.
func (g *Graph) Connect(a, b bgp.ASN, rel bgp.Relationship, metros []geo.MetroID) {
	if _, ok := g.ases[a]; !ok {
		panic(fmt.Sprintf("topology: connect unknown %v", a))
	}
	if _, ok := g.ases[b]; !ok {
		panic(fmt.Sprintf("topology: connect unknown %v", b))
	}
	ms := append([]geo.MetroID(nil), metros...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	g.edges[a] = append(g.edges[a], Edge{Neighbor: b, Rel: rel, Metros: ms})
	g.edges[b] = append(g.edges[b], Edge{Neighbor: a, Rel: reverse(rel), Metros: ms})
}

func reverse(rel bgp.Relationship) bgp.Relationship {
	switch rel {
	case bgp.RelProvider:
		return bgp.RelCustomer
	case bgp.RelCustomer:
		return bgp.RelProvider
	default:
		return rel
	}
}

// Edges returns the relationships of asn. Callers must not modify the
// returned slice.
func (g *Graph) Edges(asn bgp.ASN) []Edge { return g.edges[asn] }

// Edge returns the edge from a to b, if any.
func (g *Graph) Edge(a, b bgp.ASN) (Edge, bool) {
	for _, e := range g.edges[a] {
		if e.Neighbor == b {
			return e, true
		}
	}
	return Edge{}, false
}

// Providers returns the ASNs providing transit to asn.
func (g *Graph) Providers(asn bgp.ASN) []bgp.ASN { return g.neighborsByRel(asn, bgp.RelProvider) }

// Customers returns the transit customers of asn.
func (g *Graph) Customers(asn bgp.ASN) []bgp.ASN { return g.neighborsByRel(asn, bgp.RelCustomer) }

// Peers returns the settlement-free peers of asn.
func (g *Graph) Peers(asn bgp.ASN) []bgp.ASN { return g.neighborsByRel(asn, bgp.RelPeer) }

func (g *Graph) neighborsByRel(asn bgp.ASN, rel bgp.Relationship) []bgp.ASN {
	var out []bgp.ASN
	for _, e := range g.edges[asn] {
		if e.Rel == rel {
			out = append(out, e.Neighbor)
		}
	}
	return out
}

// HasEdge reports whether a and b are directly connected.
func (g *Graph) HasEdge(a, b bgp.ASN) bool {
	_, ok := g.Edge(a, b)
	return ok
}

// DistancesToCloud computes, for every AS, the minimum AS-hop distance
// of a valley-free path along which the cloud's BGP advertisements can
// actually have propagated to that AS.
//
// The cloud peers with (never buys transit from) its neighbors, so its
// routes propagate from each direct neighbor strictly down that
// neighbor's customer cone (peer- and provider-learned routes are only
// exported to customers). The forwarding path from a source is
// therefore an uphill provider chain ending at a direct neighbor:
// distance(direct neighbor) = 1, and distance(X) = 1 + min over
// providers of X. The result map does not contain the cloud itself.
// ASes with no valley-free path to the cloud are absent.
func (g *Graph) DistancesToCloud() map[bgp.ASN]int {
	dist := make(map[bgp.ASN]int, len(g.ases))
	var frontier []bgp.ASN
	for _, e := range g.edges[g.cloud] {
		dist[e.Neighbor] = 1
		frontier = append(frontier, e.Neighbor)
	}
	// BFS down customer cones: a provider at distance d makes each of
	// its customers reachable at d+1.
	for len(frontier) > 0 {
		var next []bgp.ASN
		for _, p := range frontier {
			d := dist[p]
			for _, e := range g.edges[p] {
				if e.Rel != bgp.RelCustomer {
					continue // only descend provider->customer edges
				}
				if _, seen := dist[e.Neighbor]; !seen {
					dist[e.Neighbor] = d + 1
					next = append(next, e.Neighbor)
				}
			}
		}
		frontier = next
	}
	return dist
}

// NextHopsToCloud returns, for the given AS, the neighbor ASes it can
// legitimately forward cloud-bound traffic to along a shortest
// valley-free path: the cloud itself if directly connected, otherwise
// every provider whose distance is exactly one less. dist must come
// from DistancesToCloud.
func (g *Graph) NextHopsToCloud(asn bgp.ASN, dist map[bgp.ASN]int) []bgp.ASN {
	d, ok := dist[asn]
	if !ok {
		return nil
	}
	if d == 1 {
		return []bgp.ASN{g.cloud}
	}
	var out []bgp.ASN
	for _, e := range g.edges[asn] {
		if e.Rel != bgp.RelProvider {
			continue
		}
		if pd, ok := dist[e.Neighbor]; ok && pd == d-1 {
			out = append(out, e.Neighbor)
		}
	}
	return out
}

// Validate checks structural invariants: edge symmetry, relationship
// consistency, island partitioning, and that every non-cloud AS can
// reach the cloud. It returns the first problem found.
func (g *Graph) Validate() error {
	for asn, edges := range g.edges {
		seen := map[bgp.ASN]bool{}
		for _, e := range edges {
			if seen[e.Neighbor] {
				return fmt.Errorf("duplicate edge %v-%v", asn, e.Neighbor)
			}
			seen[e.Neighbor] = true
			back, ok := g.Edge(e.Neighbor, asn)
			if !ok {
				return fmt.Errorf("asymmetric edge %v-%v", asn, e.Neighbor)
			}
			if back.Rel != reverse(e.Rel) {
				return fmt.Errorf("inconsistent relationship %v-%v: %v vs %v",
					asn, e.Neighbor, e.Rel, back.Rel)
			}
		}
	}
	for asn, a := range g.ases {
		n := 0
		for _, isl := range a.Islands {
			n += len(isl)
		}
		if n != len(a.Metros) {
			return fmt.Errorf("%v: islands cover %d metros, presence has %d", asn, n, len(a.Metros))
		}
	}
	dist := g.DistancesToCloud()
	for asn := range g.ases {
		if asn == g.cloud {
			continue
		}
		if _, ok := dist[asn]; !ok {
			return fmt.Errorf("%v cannot reach the cloud valley-free", asn)
		}
	}
	return nil
}
