package topology

import (
	"math"
	"math/rand"
	"sort"

	"tipsy/internal/bgp"
	"tipsy/internal/geo"
)

// GenConfig parameterizes synthetic Internet generation. The defaults
// (see DefaultGenConfig) produce a scaled-down Internet with the same
// structural mix the paper describes for the Azure WAN's neighborhood.
type GenConfig struct {
	Seed int64
	// CloudASN is the ASN of the WAN under study.
	CloudASN bgp.ASN
	// Population sizes per AS kind.
	NTier1, NTier2, NAccess, NCDN, NEnterprise int
	// CloudMetroFraction is the share of world metros where the cloud
	// has edge sites.
	CloudMetroFraction float64
	// DirectPeeringProb is, per kind, the probability that an AS of
	// that kind peers directly with the cloud.
	Tier2DirectProb, AccessDirectProb, EnterpriseDirectProb float64
}

// DefaultGenConfig returns the standard scaled-down Internet used by
// the experiment harness.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{
		Seed:                 seed,
		CloudASN:             64500,
		NTier1:               8,
		NTier2:               90,
		NAccess:              550,
		NCDN:                 25,
		NEnterprise:          900,
		CloudMetroFraction:   0.8,
		Tier2DirectProb:      0.7,
		AccessDirectProb:     0.4,
		EnterpriseDirectProb: 0.03,
	}
}

// TestGenConfig returns a small topology for unit tests.
func TestGenConfig(seed int64) GenConfig {
	return GenConfig{
		Seed:                 seed,
		CloudASN:             64500,
		NTier1:               4,
		NTier2:               12,
		NAccess:              40,
		NCDN:                 4,
		NEnterprise:          60,
		CloudMetroFraction:   0.7,
		Tier2DirectProb:      0.7,
		AccessDirectProb:     0.4,
		EnterpriseDirectProb: 0.05,
	}
}

// Generate builds a synthetic Internet around the cloud WAN. The same
// config always yields the same graph.
func Generate(cfg GenConfig, metros *geo.DB) *Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := New(cfg.CloudASN)
	all := metros.All()

	// Cloud presence: a large share of world metros.
	cloudMetros := sampleMetros(rng, all, int(math.Round(float64(len(all))*cfg.CloudMetroFraction)))
	g.AddAS(&AS{ASN: cfg.CloudASN, Kind: KindCloud, Metros: cloudMetros})

	// Tier-1 backbones: global presence, full peer clique, peer with
	// the cloud everywhere both are present.
	tier1 := make([]bgp.ASN, cfg.NTier1)
	for i := range tier1 {
		asn := bgp.ASN(100 + i)
		tier1[i] = asn
		presence := sampleMetros(rng, all, len(all)*3/5)
		g.AddAS(&AS{ASN: asn, Kind: KindTier1, Metros: presence, Weight: 1 + rng.Float64()})
	}
	for i, a := range tier1 {
		for _, b := range tier1[i+1:] {
			g.Connect(a, b, bgp.RelPeer, commonOrNearest(metros, g, a, b, rng))
		}
		g.Connect(a, cfg.CloudASN, bgp.RelPeer, commonOrNearest(metros, g, a, cfg.CloudASN, rng))
	}

	// Tier-2 regional transit: clustered presence, 2-3 tier-1
	// providers, regional tier-2 peering, often direct cloud peering.
	tier2 := make([]bgp.ASN, cfg.NTier2)
	for i := range tier2 {
		asn := bgp.ASN(1000 + i)
		tier2[i] = asn
		home := all[rng.Intn(len(all))].ID
		presence := nearestCluster(metros, home, 2+rng.Intn(7))
		g.AddAS(&AS{ASN: asn, Kind: KindTier2, Metros: presence, Weight: 0.5 + rng.Float64()})
		for _, p := range pickDistinct(rng, tier1, 2+rng.Intn(2)) {
			g.Connect(asn, p, bgp.RelProvider, commonOrNearest(metros, g, asn, p, rng))
		}
		if rng.Float64() < cfg.Tier2DirectProb {
			g.Connect(asn, cfg.CloudASN, bgp.RelPeer, commonOrNearest(metros, g, asn, cfg.CloudASN, rng))
		}
	}
	// Regional tier-2 peer mesh: connect tier-2s whose presence overlaps.
	for i, a := range tier2 {
		for _, b := range tier2[i+1:] {
			if len(commonMetros(g, a, b)) > 0 && rng.Float64() < 0.25 {
				g.Connect(a, b, bgp.RelPeer, commonMetros(g, a, b))
			}
		}
	}

	// CDNs: wide presence fragmented into continental islands without
	// a connecting backbone; direct cloud peering plus island-local
	// transit from tier-1s/tier-2s.
	cdn := make([]bgp.ASN, cfg.NCDN)
	for i := range cdn {
		asn := bgp.ASN(5000 + i)
		cdn[i] = asn
		presence := sampleMetros(rng, all, 12+rng.Intn(18))
		a := &AS{ASN: asn, Kind: KindCDN, Metros: presence, Weight: 2 + 3*rng.Float64()}
		a.Islands = splitIslands(metros, presence, 2+rng.Intn(3), rng)
		g.AddAS(a)
		g.Connect(asn, cfg.CloudASN, bgp.RelPeer, commonOrNearest(metros, g, asn, cfg.CloudASN, rng))
		for _, p := range pickDistinct(rng, tier1, 1+rng.Intn(2)) {
			g.Connect(asn, p, bgp.RelProvider, commonOrNearest(metros, g, asn, p, rng))
		}
	}

	// Access / eyeball networks: local presence, tier-2 (sometimes
	// tier-1) transit, frequent direct cloud peering.
	access := make([]bgp.ASN, cfg.NAccess)
	for i := range access {
		asn := bgp.ASN(10000 + i)
		access[i] = asn
		home := all[rng.Intn(len(all))].ID
		presence := nearestCluster(metros, home, 1+rng.Intn(4))
		g.AddAS(&AS{ASN: asn, Kind: KindAccess, Metros: presence, Weight: 0.8 + 2*rng.Float64()})
		nprov := 1 + rng.Intn(3)
		for _, p := range pickDistinct(rng, tier2, nprov) {
			g.Connect(asn, p, bgp.RelProvider, commonOrNearest(metros, g, asn, p, rng))
		}
		if rng.Float64() < 0.15 {
			p := tier1[rng.Intn(len(tier1))]
			if !g.HasEdge(asn, p) {
				g.Connect(asn, p, bgp.RelProvider, commonOrNearest(metros, g, asn, p, rng))
			}
		}
		if rng.Float64() < cfg.AccessDirectProb {
			g.Connect(asn, cfg.CloudASN, bgp.RelPeer, commonOrNearest(metros, g, asn, cfg.CloudASN, rng))
		}
	}

	// Enterprise stubs: single metro, access/tier-2 transit, rare
	// direct peering (e.g. large enterprises with private peering).
	for i := 0; i < cfg.NEnterprise; i++ {
		asn := bgp.ASN(100000 + i)
		home := all[rng.Intn(len(all))].ID
		g.AddAS(&AS{ASN: asn, Kind: KindEnterprise, Metros: []geo.MetroID{home},
			Weight: 0.2 + 1.5*rng.Float64()})
		var pool []bgp.ASN
		if rng.Float64() < 0.6 {
			pool = access
		} else {
			pool = tier2
		}
		for _, p := range pickDistinct(rng, pool, 1+rng.Intn(2)) {
			g.Connect(asn, p, bgp.RelProvider, commonOrNearest(metros, g, asn, p, rng))
		}
		if rng.Float64() < cfg.EnterpriseDirectProb {
			g.Connect(asn, cfg.CloudASN, bgp.RelPeer, commonOrNearest(metros, g, asn, cfg.CloudASN, rng))
		}
	}

	return g
}

// sampleMetros picks n distinct metros uniformly, returned ascending.
func sampleMetros(rng *rand.Rand, all []geo.Metro, n int) []geo.MetroID {
	if n > len(all) {
		n = len(all)
	}
	perm := rng.Perm(len(all))
	out := make([]geo.MetroID, n)
	for i := 0; i < n; i++ {
		out[i] = all[perm[i]].ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// nearestCluster returns home plus its n-1 nearest metros, ascending.
func nearestCluster(metros *geo.DB, home geo.MetroID, n int) []geo.MetroID {
	all := metros.All()
	cands := make([]geo.MetroID, 0, len(all))
	for _, m := range all {
		if m.ID != home {
			cands = append(cands, m.ID)
		}
	}
	ranked := metros.RankByDistance(home, cands)
	out := append([]geo.MetroID{home}, ranked[:min(n-1, len(ranked))]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// commonMetros returns the metros where both ASes are present.
func commonMetros(g *Graph, a, b bgp.ASN) []geo.MetroID {
	asA, _ := g.AS(a)
	asB, _ := g.AS(b)
	inB := make(map[geo.MetroID]bool, len(asB.Metros))
	for _, m := range asB.Metros {
		inB[m] = true
	}
	var out []geo.MetroID
	for _, m := range asA.Metros {
		if inB[m] {
			out = append(out, m)
		}
	}
	return out
}

// commonOrNearest returns the interconnection metros for an edge: a
// subsample of the common presence if any, otherwise the single metro
// of b nearest to a's presence (a remote interconnect). Subsampling
// reflects reality — two networks present in the same thirty cities
// interconnect in a handful of them — and it is what makes traffic
// from direct peers sometimes arrive over third-party links: an AS
// far from any of its own interconnects hands off to transit instead.
func commonOrNearest(metros *geo.DB, g *Graph, a, b bgp.ASN, rng *rand.Rand) []geo.MetroID {
	if c := commonMetros(g, a, b); len(c) > 0 {
		kept := c[:0]
		for _, m := range c {
			if rng.Float64() < 0.6 {
				kept = append(kept, m)
			}
		}
		if len(kept) == 0 {
			kept = append(kept, c[rng.Intn(len(c))])
		}
		return kept
	}
	asA, _ := g.AS(a)
	asB, _ := g.AS(b)
	if len(asA.Metros) == 0 || len(asB.Metros) == 0 {
		return nil
	}
	origin := asA.Metros[rng.Intn(len(asA.Metros))]
	return []geo.MetroID{metros.Nearest(origin, asB.Metros)}
}

// splitIslands partitions presence into k geographic islands by
// clustering around k randomly chosen anchors.
func splitIslands(metros *geo.DB, presence []geo.MetroID, k int, rng *rand.Rand) [][]geo.MetroID {
	if k > len(presence) {
		k = len(presence)
	}
	anchors := make([]geo.MetroID, k)
	perm := rng.Perm(len(presence))
	for i := 0; i < k; i++ {
		anchors[i] = presence[perm[i]]
	}
	islands := make([][]geo.MetroID, k)
	for _, m := range presence {
		best, bestD := 0, math.Inf(1)
		for i, a := range anchors {
			if d := metros.Distance(m, a); d < bestD {
				best, bestD = i, d
			}
		}
		islands[best] = append(islands[best], m)
	}
	out := islands[:0]
	for _, isl := range islands {
		if len(isl) > 0 {
			out = append(out, isl)
		}
	}
	return out
}

// pickDistinct picks up to n distinct elements from pool.
func pickDistinct(rng *rand.Rand, pool []bgp.ASN, n int) []bgp.ASN {
	if n > len(pool) {
		n = len(pool)
	}
	perm := rng.Perm(len(pool))
	out := make([]bgp.ASN, n)
	for i := 0; i < n; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
