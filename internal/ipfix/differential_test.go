package ipfix

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// This file holds the differential harness that locks the compiled
// decode path to the reference path. Decode (and decodeFlowReference)
// re-derive everything from template metadata per call; DecodeInto
// (and CompiledTemplate.DecodeFlow) run precompiled per-template
// plans. The two implementations share no decoding logic, so
// agreement over generated, adversarial, and fuzz-corpus inputs is
// strong evidence the compiled path is faithful.

// diffRNG is a tiny deterministic generator (splitmix64) so the chaos
// variants are reproducible run to run.
type diffRNG uint64

func (r *diffRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *diffRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// diffTemplates are the template shapes the generator exercises: the
// standard layout, permutations, reduced-size counters, unknown and
// enterprise fields, and a zero-length degenerate.
func diffTemplates() []Template {
	std := FlowTemplate()
	permuted := Template{ID: 300, Fields: []FieldSpec{
		{ID: IEFlowEndSeconds, Length: 4},
		{ID: IEOctetDeltaCount, Length: 8},
		{ID: IESourceIPv4Address, Length: 4},
		{ID: IEIngressInterface, Length: 4},
		{ID: IEBgpSourceAsNumber, Length: 4},
		{ID: IEPacketDeltaCount, Length: 8},
		{ID: IEDestinationIPv4, Length: 4},
		{ID: IEFlowStartSeconds, Length: 4},
	}}
	reduced := Template{ID: 301, Fields: []FieldSpec{
		{ID: IESourceIPv4Address, Length: 4},
		{ID: IEOctetDeltaCount, Length: 4}, // reduced-size encoding
		{ID: IEPacketDeltaCount, Length: 2},
		{ID: IEIngressInterface, Length: 4},
	}}
	withUnknown := Template{ID: 302, Fields: []FieldSpec{
		{ID: IESourceIPv4Address, Length: 4},
		{ID: 999, Length: 6}, // unknown IE: skipped, offset advances
		{ID: IEDestinationIPv4, Length: 4},
		{ID: IESamplingInterval, Length: 4}, // known IE outside the flow schema
		{ID: IEOctetDeltaCount, Length: 8},
	}}
	enterprise := Template{ID: 303, Fields: []FieldSpec{
		{ID: IESourceIPv4Address, Length: 4},
		{ID: IEOctetDeltaCount, Length: 8, Enterprise: 4242},
		{ID: IEDestinationIPv4, Length: 4},
	}}
	oversize := Template{ID: 304, Fields: []FieldSpec{
		{ID: IEOctetDeltaCount, Length: 12}, // longer than 8: big-endian tail
		{ID: IESourceIPv4Address, Length: 4},
	}}
	empty := Template{ID: 305}
	return []Template{std, permuted, reduced, withUnknown, enterprise, oversize, empty}
}

// diffStream builds one generated message stream: template sets (plain
// and options), data sets in and out of template order, padding, and
// multi-record sets.
func diffStream(rng *diffRNG) [][]byte {
	tmpls := diffTemplates()
	recordFor := func(t Template) []byte {
		n := (&t).RecordLen()
		rec := make([]byte, n)
		for i := range rec {
			rec[i] = byte(rng.next())
		}
		return rec
	}
	dataSet := func(t Template, nrec, pad int) []byte {
		var recs [][]byte
		for i := 0; i < nrec; i++ {
			recs = append(recs, recordFor(t))
		}
		if pad > 0 {
			recs = append(recs, make([]byte, pad))
		}
		return marshalDataSet(t.ID, recs)
	}
	var msgs [][]byte
	seq := uint32(0)
	add := func(sets ...[]byte) {
		msgs = append(msgs, marshalMessage(1000+uint32(len(msgs)), seq, 7, sets))
		seq += 100
	}

	// Data before template: unknown sets surface via Message.Unknown.
	add(dataSet(tmpls[1], 2, 0))
	// Templates announced two ways — plain set with several templates,
	// and an options template set.
	add(marshalTemplateSet(tmpls[:2]), marshalOptionsTemplateSet(tmpls[2]))
	add(marshalTemplateSet(tmpls[3:6]))
	// Template and dependent data in one message, template first.
	add(marshalTemplateSet([]Template{tmpls[6]}))
	// Data sets over every template, varying record counts and padding.
	for _, t := range tmpls {
		if (&t).RecordLen() == 0 {
			continue
		}
		add(dataSet(t, 1+rng.intn(4), rng.intn(3)))
	}
	// One big multi-set message.
	add(dataSet(tmpls[0], 3, 1), dataSet(tmpls[2], 2, 0), dataSet(tmpls[4], 1, 2))
	// Data set for a template nobody announced.
	add(dataSet(Template{ID: 400, Fields: []FieldSpec{{ID: 1, Length: 4}}}, 2, 0))
	return msgs
}

// runDifferential feeds one buffer through both decode paths with
// synchronized template state and asserts equivalent outcomes: same
// accept/reject, and on accept identical headers, templates, records,
// unknown sets, and — for every record — bit-identical flow decodes.
func runDifferential(t *testing.T, buf []byte, ref map[uint16]Template, tt *TemplateTable) {
	t.Helper()
	msg := GetMessage()
	defer PutMessage(msg)
	slowMsg, slowErr := Decode(buf, ref)
	fastErr := DecodeInto(msg, buf, tt)
	if (slowErr != nil) != (fastErr != nil) {
		t.Fatalf("decode disagreement: reference err=%v, compiled err=%v\nbuf=%x", slowErr, fastErr, buf)
	}
	if slowErr != nil {
		return
	}
	if slowMsg.Header != msg.Header {
		t.Fatalf("header mismatch: reference %+v, compiled %+v", slowMsg.Header, msg.Header)
	}
	// Element-wise: the pooled message reuses slice headers, so an
	// empty-vs-nil difference is not a real divergence.
	if len(slowMsg.Templates) != len(msg.Templates) {
		t.Fatalf("template count mismatch: reference %d, compiled %d", len(slowMsg.Templates), len(msg.Templates))
	}
	for i := range slowMsg.Templates {
		if !reflect.DeepEqual(slowMsg.Templates[i], msg.Templates[i]) {
			t.Fatalf("template %d mismatch:\nreference %+v\ncompiled  %+v", i, slowMsg.Templates[i], msg.Templates[i])
		}
	}
	if len(slowMsg.Records) != len(msg.Records) {
		t.Fatalf("record count mismatch: reference %d, compiled %d", len(slowMsg.Records), len(msg.Records))
	}
	for i := range slowMsg.Records {
		sr, fr := slowMsg.Records[i], msg.Records[i]
		if sr.TemplateID != fr.TemplateID || !bytes.Equal(sr.Data, fr.Data) {
			t.Fatalf("record %d mismatch: reference {%d %x}, compiled {%d %x}",
				i, sr.TemplateID, sr.Data, fr.TemplateID, fr.Data)
		}
		// Flow-decode differential on the raw record bytes.
		tmpl, ok := ref[sr.TemplateID]
		if !ok {
			t.Fatalf("record %d references template %d missing from reference state", i, sr.TemplateID)
		}
		ct := tt.Get(fr.TemplateID)
		if ct == nil {
			t.Fatalf("record %d references template %d missing from compiled table", i, fr.TemplateID)
		}
		var want, got FlowRecord
		wantOK := decodeFlowReference(tmpl, sr.Data, &want)
		gotOK := ct.DecodeFlow(fr.Data, &got)
		if wantOK != gotOK {
			t.Fatalf("flow decode disagreement on template %d: reference ok=%v, compiled ok=%v", sr.TemplateID, wantOK, gotOK)
		}
		if wantOK && want != got {
			t.Fatalf("flow record mismatch on template %d:\nreference %+v\ncompiled  %+v", sr.TemplateID, want, got)
		}
	}
	if len(slowMsg.Unknown) != len(msg.Unknown) {
		t.Fatalf("unknown set count mismatch: reference %d, compiled %d", len(slowMsg.Unknown), len(msg.Unknown))
	}
	for i := range slowMsg.Unknown {
		su, fu := slowMsg.Unknown[i], msg.Unknown[i]
		if su.SetID != fu.SetID || !bytes.Equal(su.Body, fu.Body) {
			t.Fatalf("unknown set %d mismatch: reference {%d %x}, compiled {%d %x}",
				i, su.SetID, su.Body, fu.SetID, fu.Body)
		}
	}
}

// TestDifferentialDecode drives generated streams — valid, reordered,
// and chaos-corrupted — through both paths.
func TestDifferentialDecode(t *testing.T) {
	for seed := 0; seed < 8; seed++ {
		rng := diffRNG(seed * 7919)
		msgs := diffStream(&rng)
		ref := make(map[uint16]Template)
		tt := NewTemplateTable()
		for _, m := range msgs {
			runDifferential(t, m, ref, tt)
		}

		// Chaos variants: corrupt bytes and truncate. Template state
		// is rebuilt per variant so a corrupted template set cannot
		// leak into the next comparison's baseline.
		for _, m := range msgs {
			for v := 0; v < 6; v++ {
				mut := append([]byte(nil), m...)
				for flips := 1 + rng.intn(4); flips > 0; flips-- {
					mut[rng.intn(len(mut))] ^= byte(1 + rng.intn(255))
				}
				if rng.intn(3) == 0 {
					mut = mut[:rng.intn(len(mut)+1)]
				}
				runDifferential(t, mut, make(map[uint16]Template), NewTemplateTable())
			}
		}
	}
}

// TestDifferentialDecodeFuzzCorpus replays the fuzz seed corpus — the
// same inputs FuzzIPFIXDecode starts from — through the differential
// oracle, with and without pre-known flow template state.
func TestDifferentialDecodeFuzzCorpus(t *testing.T) {
	for i, seed := range fuzzSeeds() {
		t.Run(fmt.Sprintf("seed%02d", i), func(t *testing.T) {
			runDifferential(t, seed, make(map[uint16]Template), NewTemplateTable())

			ref := map[uint16]Template{FlowTemplateID: FlowTemplate()}
			tt := NewTemplateTable()
			tt.Register(FlowTemplate())
			runDifferential(t, seed, ref, tt)
		})
	}
}

// TestDifferentialCollectorBatch holds the two collector entry points
// to identical output: the same stream through HandleMessage and
// HandleMessageBatch must produce the same records in the same order
// and the same counter decomposition.
func TestDifferentialCollectorBatch(t *testing.T) {
	var buf bytes.Buffer
	e := NewExporter(&buf, 9)
	for i := 0; i < 257; i++ {
		rec := FlowRecord{
			SrcAddr: 0x0a000000 + uint32(i), DstAddr: 0x0b000001,
			Octets: uint64(1000 + i), Packets: 2, Ingress: uint32(1 + i%5),
			SrcAS: 64500, StartSecs: uint32(i * 14), EndSecs: uint32(i*14 + 10),
		}
		if err := e.Export(&rec, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(9999); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	type emitted struct {
		domain uint32
		rec    FlowRecord
	}
	var single, batched []emitted
	cs, cb := NewCollector(), NewCollector()
	for off := 0; off < len(stream); {
		n := WireLen(stream[off:])
		if n <= 0 || off+n > len(stream) {
			t.Fatalf("bad frame at %d", off)
		}
		msg := stream[off : off+n]
		off += n
		if err := cs.HandleMessage(msg, func(domain uint32, rec FlowRecord) {
			single = append(single, emitted{domain, rec})
		}); err != nil {
			t.Fatal(err)
		}
		if err := cb.HandleMessageBatch(msg, func(domain uint32, recs []FlowRecord) {
			for _, rec := range recs {
				batched = append(batched, emitted{domain, rec})
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(single) == 0 {
		t.Fatal("no records decoded")
	}
	if !reflect.DeepEqual(single, batched) {
		t.Fatalf("HandleMessage and HandleMessageBatch diverged: %d vs %d records", len(single), len(batched))
	}
	if cs.Stats() != cb.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", cs.Stats(), cb.Stats())
	}
}
