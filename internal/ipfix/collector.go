package ipfix

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"

	"tipsy/internal/obsv"
)

// maxPendingSets bounds, per observation domain, how many data sets
// the collector buffers while waiting for their template. Overflow
// evicts the oldest buffered set.
const maxPendingSets = 256

// maxTrackedGaps bounds, per observation domain, how many sequence
// gaps the collector remembers for reorder/loss disambiguation.
const maxTrackedGaps = 64

// CollectorStats is a snapshot of the collector's counters.
type CollectorStats struct {
	// Messages is the number of messages decoded successfully.
	Messages uint64
	// Records is the number of flow records handed to the callback.
	Records uint64
	// Lost is the net count of data records presumed lost to
	// sequence gaps: gaps opened minus gaps later back-filled by
	// reordered arrivals.
	Lost uint64
	// Reordered counts messages whose sequence number was behind the
	// expected one — late, duplicated, or re-transmitted traffic that
	// a naive counter would have booked as a ~2^32 record loss.
	Reordered uint64
	// Quarantined counts malformed inputs: messages that failed to
	// decode and individual records that failed to unmarshal. They
	// are counted and skipped, never fatal.
	Quarantined uint64
	// Buffered counts data sets parked because their template had
	// not arrived yet; Replayed counts the ones decoded after the
	// template showed up. Evicted counts sets dropped when the
	// pending buffer overflowed.
	Buffered, Replayed, Evicted uint64
}

// seqGap is a half-open range [start, start+count) of sequence
// numbers whose records were presumed lost.
type seqGap struct {
	start uint32
	count uint32
}

// domainState is the collector's per-observation-domain decode state.
type domainState struct {
	templates map[uint16]Template
	haveSeq   bool
	nextSeq   uint32   // sequence number expected on the next message
	gaps      []seqGap // open loss gaps, oldest first
	pending   []RawSet // data sets awaiting their template
	sampling  uint32   // announced sampling interval
}

// collectorMetrics are the collector's registry-backed counters. Lost
// is kept as two monotonic counters (gaps opened, gaps back-filled) so
// the exported metrics never decrease; the net loss is derived in
// Stats.
type collectorMetrics struct {
	messages    *obsv.Counter
	records     *obsv.Counter
	seqLost     *obsv.Counter
	seqRefilled *obsv.Counter
	reordered   *obsv.Counter
	quarantined *obsv.Counter
	buffered    *obsv.Counter
	replayed    *obsv.Counter
	evicted     *obsv.Counter
}

func newCollectorMetrics(reg *obsv.Registry) collectorMetrics {
	return collectorMetrics{
		messages:    reg.Counter("ipfix_messages_total"),
		records:     reg.Counter("ipfix_records_total"),
		seqLost:     reg.Counter("ipfix_seq_gap_lost_total"),
		seqRefilled: reg.Counter("ipfix_seq_gap_refilled_total"),
		reordered:   reg.Counter("ipfix_reordered_total"),
		quarantined: reg.Counter("ipfix_quarantined_total"),
		buffered:    reg.Counter("ipfix_pending_buffered_total"),
		replayed:    reg.Counter("ipfix_pending_replayed_total"),
		evicted:     reg.Counter("ipfix_pending_evicted_total"),
	}
}

// Collector is an IPFIX collecting process. It consumes framed
// messages (one or many exporters can share it if their domains
// differ), tracks templates per observation domain, and hands decoded
// flow records to a callback. It is the receiving end of the paper's
// "distributed collectors that consolidate the flow data", and it is
// built to survive a faulty transport: malformed messages are
// quarantined (counted, never fatal), data sets that overtake their
// template are buffered and replayed when the template arrives, and
// reordered messages are distinguished from genuine loss.
type Collector struct {
	mu      sync.Mutex
	domains map[uint32]*domainState
	m       collectorMetrics
}

// NewCollector creates an empty collector with a private metrics
// registry.
func NewCollector() *Collector {
	return NewCollectorOn(obsv.NewRegistry())
}

// NewCollectorOn creates a collector whose counters live in reg under
// the ipfix_ prefix, so /metrics exports them alongside every other
// subsystem's.
func NewCollectorOn(reg *obsv.Registry) *Collector {
	return &Collector{
		domains: make(map[uint32]*domainState),
		m:       newCollectorMetrics(reg),
	}
}

// domain returns (creating if needed) the state for one observation
// domain. Callers hold c.mu.
func (c *Collector) domain(id uint32) *domainState {
	d := c.domains[id]
	if d == nil {
		d = &domainState{templates: make(map[uint16]Template)}
		c.domains[id] = d
	}
	return d
}

// HandleMessage decodes one framed message and invokes fn for each
// flow record in it. A malformed message is quarantined: the error is
// returned for observability, but the collector remains consistent
// and the next message is processed normally.
//
//tipsy:hotpath
func (c *Collector) HandleMessage(buf []byte, fn func(domain uint32, rec FlowRecord)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(buf) < msgHeaderLen {
		c.m.quarantined.Inc()
		return ErrShortMessage
	}
	// Peek the domain to select the template table.
	id := uint32(buf[12])<<24 | uint32(buf[13])<<16 | uint32(buf[14])<<8 | uint32(buf[15])
	d := c.domain(id)
	msg, err := Decode(buf, d.templates)
	if err != nil {
		c.m.quarantined.Inc()
		return err
	}
	c.accountSequence(d, msg)
	c.m.messages.Inc()
	for _, dr := range msg.Records {
		c.processRecord(d, id, dr, fn)
	}
	for _, raw := range msg.Unknown {
		c.bufferPending(d, raw)
	}
	if len(msg.Templates) > 0 {
		c.replayPending(d, id, fn)
	}
	return nil
}

// accountSequence updates loss/reorder accounting for one decoded
// message. RFC 7011 sequence numbers count exported data records; the
// naive uint32 subtraction would book a reordered (backward) message
// as a ~2^32 record loss, so the signed 32-bit difference is used:
// it classifies backward jumps as reorders and handles genuine
// wraparound at 2^32 transparently.
func (c *Collector) accountSequence(d *domainState, msg *Message) {
	n := uint32(len(msg.Records))
	seq := msg.Header.Sequence
	if !d.haveSeq {
		d.haveSeq = true
		d.nextSeq = seq + n
		return
	}
	switch diff := int32(seq - d.nextSeq); {
	case diff > 0:
		// Records [nextSeq, seq) never arrived — presumed lost until
		// a reordered message back-fills the gap.
		c.m.seqLost.Add(uint64(diff))
		d.gaps = append(d.gaps, seqGap{start: d.nextSeq, count: uint32(diff)})
		if len(d.gaps) > maxTrackedGaps {
			d.gaps = d.gaps[len(d.gaps)-maxTrackedGaps:]
		}
		d.nextSeq = seq + n
	case diff < 0:
		// A message from the past: reordered, duplicated, or
		// retransmitted. If it covers an open gap, those records were
		// never lost after all.
		c.m.reordered.Inc()
		c.refillGaps(d, seq, n)
		if int32(seq+n-d.nextSeq) > 0 {
			d.nextSeq = seq + n
		}
	default:
		d.nextSeq = seq + n
	}
}

// refillGaps subtracts the arrived range [seq, seq+n) from the open
// loss gaps, crediting Lost back for records that were merely late.
func (c *Collector) refillGaps(d *domainState, seq, n uint32) {
	if n == 0 {
		return
	}
	var kept []seqGap
	for _, g := range d.gaps {
		// Overlap of [seq, seq+n) with [g.start, g.start+g.count),
		// computed as signed offsets relative to g.start so sequence
		// wraparound cancels out.
		lo := int64(int32(seq - g.start))
		hi := lo + int64(n)
		if hi <= 0 || lo >= int64(g.count) {
			kept = append(kept, g) // no overlap
			continue
		}
		if lo < 0 {
			lo = 0
		}
		if hi > int64(g.count) {
			hi = int64(g.count)
		}
		covered := uint32(hi - lo)
		c.m.seqRefilled.Add(uint64(covered))
		// The gap may split into a head and a tail remainder.
		if lo > 0 {
			kept = append(kept, seqGap{start: g.start, count: uint32(lo)})
		}
		if uint32(hi) < g.count {
			kept = append(kept, seqGap{start: g.start + uint32(hi), count: g.count - uint32(hi)})
		}
	}
	d.gaps = kept
}

// processRecord dispatches one decoded data record: sampling options
// records update the domain's announced interval, flow records are
// unmarshalled and handed to the callback, and records that fail to
// unmarshal are quarantined.
func (c *Collector) processRecord(d *domainState, id uint32, dr DataRecord, fn func(uint32, FlowRecord)) {
	if dr.TemplateID == SamplingTemplateID && len(dr.Data) == 4 {
		d.sampling = uint32(dr.Data[0])<<24 | uint32(dr.Data[1])<<16 |
			uint32(dr.Data[2])<<8 | uint32(dr.Data[3])
		return
	}
	if dr.TemplateID != FlowTemplateID {
		return
	}
	rec, err := UnmarshalFlowRecord(dr.Data)
	if err != nil {
		c.m.quarantined.Inc()
		return
	}
	c.m.records.Inc()
	fn(id, rec)
}

// bufferPending parks a data set whose template has not arrived,
// bounded by maxPendingSets per domain.
func (c *Collector) bufferPending(d *domainState, raw RawSet) {
	body := append([]byte(nil), raw.Body...) // Body aliases the message buffer
	d.pending = append(d.pending, RawSet{SetID: raw.SetID, Body: body})
	c.m.buffered.Inc()
	if len(d.pending) > maxPendingSets {
		d.pending = d.pending[1:]
		c.m.evicted.Inc()
	}
}

// replayPending re-decodes buffered data sets after new templates
// arrived — the resync point for sets that overtook their template.
func (c *Collector) replayPending(d *domainState, id uint32, fn func(uint32, FlowRecord)) {
	var still []RawSet
	for _, raw := range d.pending {
		t, ok := d.templates[raw.SetID]
		if !ok {
			still = append(still, raw)
			continue
		}
		c.m.replayed.Inc()
		rl := t.RecordLen()
		if rl == 0 {
			c.m.quarantined.Inc()
			continue
		}
		body := raw.Body
		for len(body) >= rl {
			c.processRecord(d, id, DataRecord{TemplateID: raw.SetID, Data: body[:rl]}, fn)
			body = body[rl:]
		}
	}
	d.pending = still
}

// ReadStream consumes a stream of back-to-back framed messages from r
// until EOF, invoking fn per record. It is used when collectors are
// attached to routers over TCP. Per-message decode failures are
// quarantined and the stream continues — only a framing failure,
// after which message boundaries are unrecoverable, aborts.
func (c *Collector) ReadStream(r io.Reader, fn func(domain uint32, rec FlowRecord)) error {
	hdr := make([]byte, 4)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		total := WireLen(hdr)
		if total < msgHeaderLen {
			return fmt.Errorf("%w: stream framing lost", ErrShortMessage)
		}
		msg := make([]byte, total)
		copy(msg, hdr)
		if _, err := io.ReadFull(r, msg[4:]); err != nil {
			return err
		}
		// Quarantined messages are counted inside HandleMessage; the
		// stream itself is still framed, so keep reading.
		_ = c.HandleMessage(msg, fn)
	}
}

// SamplingInterval returns the sampling interval a domain announced
// via its options record, or 0 if none seen.
func (c *Collector) SamplingInterval(domain uint32) uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d := c.domains[domain]; d != nil {
		return d.sampling
	}
	return 0
}

// PendingSets reports how many data sets a domain has parked waiting
// for their template.
func (c *Collector) PendingSets(domain uint32) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d := c.domains[domain]; d != nil {
		return len(d.pending)
	}
	return 0
}

// Stats returns a snapshot of the collector's counters, read from the
// registry metrics. Lost is the net figure: gaps opened minus gaps
// back-filled by reordered arrivals.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CollectorStats{
		Messages:    c.m.messages.Value(),
		Records:     c.m.records.Value(),
		Lost:        c.m.seqLost.Value() - c.m.seqRefilled.Value(),
		Reordered:   c.m.reordered.Value(),
		Quarantined: c.m.quarantined.Value(),
		Buffered:    c.m.buffered.Value(),
		Replayed:    c.m.replayed.Value(),
		Evicted:     c.m.evicted.Value(),
	}
}

// Sampler models the edge routers' random packet sampling: each
// packet is independently selected with probability 1/Interval. The
// exporter scales counts back up by the interval, so sampled flows
// report estimated totals, and flows small relative to the interval
// are often missed entirely — exactly the bias the paper accepts
// because TIPSY's use cases concern large traffic volumes.
type Sampler struct {
	Interval uint32 // e.g. 4096 for 1-out-of-4096
	rng      *rand.Rand
	mu       sync.Mutex
}

// NewSampler creates a sampler with the given interval; interval <= 1
// disables sampling. The seed makes the process reproducible.
func NewSampler(interval uint32, seed int64) *Sampler {
	return &Sampler{Interval: interval, rng: rand.New(rand.NewSource(seed))}
}

// Sample draws how many of the flow's packets the router observes and
// returns scaled-up (octets, packets) estimates, or (0, 0, false) if
// the flow is missed entirely. Binomial sampling is approximated by a
// Poisson draw when packet counts are large, which is accurate for
// p = 1/4096.
func (s *Sampler) Sample(octets, packets uint64) (uint64, uint64, bool) {
	if s.Interval <= 1 {
		return octets, packets, octets > 0
	}
	if packets == 0 {
		return 0, 0, false
	}
	s.mu.Lock()
	observed := poisson(s.rng, float64(packets)/float64(s.Interval))
	s.mu.Unlock()
	if observed == 0 {
		return 0, 0, false
	}
	scale := float64(observed) * float64(s.Interval)
	bytesPerPkt := float64(octets) / float64(packets)
	return uint64(scale * bytesPerPkt), observed * uint64(s.Interval), true
}

// poisson draws from Poisson(lambda) — Knuth's method for small
// lambda, normal approximation above.
func poisson(rng *rand.Rand, lambda float64) uint64 {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return uint64(v + 0.5)
	}
	l := math.Exp(-lambda)
	var k uint64
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
