package ipfix

import (
	"io"
	"math"
	"math/rand"
	"sync"
)

// Collector is an IPFIX collecting process. It consumes framed
// messages (one or many exporters can share it if their domains
// differ), tracks templates per observation domain, and hands decoded
// flow records to a callback. It is the receiving end of the paper's
// "distributed collectors that consolidate the flow data".
type Collector struct {
	mu        sync.Mutex
	templates map[uint32]map[uint16]Template // domain -> template id -> template
	// Stats
	messages uint64
	records  uint64
	lost     uint64 // sequence gaps observed
	lastSeq  map[uint32]uint32
	haveSeq  map[uint32]bool
	sampling map[uint32]uint32 // domain -> announced sampling interval
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{
		templates: make(map[uint32]map[uint16]Template),
		lastSeq:   make(map[uint32]uint32),
		haveSeq:   make(map[uint32]bool),
		sampling:  make(map[uint32]uint32),
	}
}

// HandleMessage decodes one framed message and invokes fn for each
// flow record in it.
func (c *Collector) HandleMessage(buf []byte, fn func(domain uint32, rec FlowRecord)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Peek the domain to select the template table.
	if len(buf) < msgHeaderLen {
		return ErrShortMessage
	}
	domain := uint32(buf[12])<<24 | uint32(buf[13])<<16 | uint32(buf[14])<<8 | uint32(buf[15])
	tmpl := c.templates[domain]
	if tmpl == nil {
		tmpl = make(map[uint16]Template)
		c.templates[domain] = tmpl
	}
	msg, err := Decode(buf, tmpl)
	if err != nil {
		return err
	}
	if c.haveSeq[domain] && msg.Header.Sequence != c.lastSeq[domain] {
		// RFC 7011 sequence numbers count exported data records;
		// a gap means loss in transit.
		c.lost += uint64(msg.Header.Sequence - c.lastSeq[domain])
	}
	c.lastSeq[domain] = msg.Header.Sequence + uint32(len(msg.Records))
	c.haveSeq[domain] = true
	c.messages++
	for _, dr := range msg.Records {
		if dr.TemplateID == SamplingTemplateID && len(dr.Data) == 4 {
			c.sampling[domain] = uint32(dr.Data[0])<<24 | uint32(dr.Data[1])<<16 |
				uint32(dr.Data[2])<<8 | uint32(dr.Data[3])
			continue
		}
		if dr.TemplateID != FlowTemplateID {
			continue
		}
		rec, err := UnmarshalFlowRecord(dr.Data)
		if err != nil {
			return err
		}
		c.records++
		fn(domain, rec)
	}
	return nil
}

// ReadStream consumes a stream of back-to-back framed messages from r
// until EOF, invoking fn per record. It is used when collectors are
// attached to routers over TCP.
func (c *Collector) ReadStream(r io.Reader, fn func(domain uint32, rec FlowRecord)) error {
	hdr := make([]byte, 4)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		total := WireLen(hdr)
		if total < msgHeaderLen {
			return ErrShortMessage
		}
		msg := make([]byte, total)
		copy(msg, hdr)
		if _, err := io.ReadFull(r, msg[4:]); err != nil {
			return err
		}
		if err := c.HandleMessage(msg, fn); err != nil {
			return err
		}
	}
}

// SamplingInterval returns the sampling interval a domain announced
// via its options record, or 0 if none seen.
func (c *Collector) SamplingInterval(domain uint32) uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sampling[domain]
}

// Stats reports messages and records decoded and records lost to
// sequence gaps.
func (c *Collector) Stats() (messages, records, lost uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.messages, c.records, c.lost
}

// Sampler models the edge routers' random packet sampling: each
// packet is independently selected with probability 1/Interval. The
// exporter scales counts back up by the interval, so sampled flows
// report estimated totals, and flows small relative to the interval
// are often missed entirely — exactly the bias the paper accepts
// because TIPSY's use cases concern large traffic volumes.
type Sampler struct {
	Interval uint32 // e.g. 4096 for 1-out-of-4096
	rng      *rand.Rand
	mu       sync.Mutex
}

// NewSampler creates a sampler with the given interval; interval <= 1
// disables sampling. The seed makes the process reproducible.
func NewSampler(interval uint32, seed int64) *Sampler {
	return &Sampler{Interval: interval, rng: rand.New(rand.NewSource(seed))}
}

// Sample draws how many of the flow's packets the router observes and
// returns scaled-up (octets, packets) estimates, or (0, 0, false) if
// the flow is missed entirely. Binomial sampling is approximated by a
// Poisson draw when packet counts are large, which is accurate for
// p = 1/4096.
func (s *Sampler) Sample(octets, packets uint64) (uint64, uint64, bool) {
	if s.Interval <= 1 {
		return octets, packets, octets > 0
	}
	if packets == 0 {
		return 0, 0, false
	}
	s.mu.Lock()
	observed := poisson(s.rng, float64(packets)/float64(s.Interval))
	s.mu.Unlock()
	if observed == 0 {
		return 0, 0, false
	}
	scale := float64(observed) * float64(s.Interval)
	bytesPerPkt := float64(octets) / float64(packets)
	return uint64(scale * bytesPerPkt), observed * uint64(s.Interval), true
}

// poisson draws from Poisson(lambda) — Knuth's method for small
// lambda, normal approximation above.
func poisson(rng *rand.Rand, lambda float64) uint64 {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return uint64(v + 0.5)
	}
	l := math.Exp(-lambda)
	var k uint64
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
