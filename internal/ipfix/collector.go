package ipfix

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"

	"tipsy/internal/obsv"
)

// maxPendingSets bounds, per observation domain, how many data sets
// the collector buffers while waiting for their template. Overflow
// evicts the oldest buffered set.
const maxPendingSets = 256

// maxTrackedGaps bounds, per observation domain, how many sequence
// gaps the collector remembers for reorder/loss disambiguation.
const maxTrackedGaps = 64

// CollectorStats is a snapshot of the collector's counters.
type CollectorStats struct {
	// Messages is the number of messages decoded successfully.
	Messages uint64
	// Records is the number of flow records handed to the callback.
	Records uint64
	// Lost is the net count of data records presumed lost to
	// sequence gaps: gaps opened minus gaps later back-filled by
	// reordered arrivals.
	Lost uint64
	// Reordered counts messages whose sequence number was behind the
	// expected one — late, duplicated, or re-transmitted traffic that
	// a naive counter would have booked as a ~2^32 record loss.
	Reordered uint64
	// Quarantined counts malformed inputs: messages that failed to
	// decode and individual records that failed to unmarshal. They
	// are counted and skipped, never fatal.
	Quarantined uint64
	// Buffered counts data sets parked because their template had
	// not arrived yet; Replayed counts the ones decoded after the
	// template showed up. Evicted counts sets dropped when the
	// pending buffer overflowed.
	Buffered, Replayed, Evicted uint64
}

// seqGap is a half-open range [start, start+count) of sequence
// numbers whose records were presumed lost.
type seqGap struct {
	start uint32
	count uint32
}

// domainState is the collector's per-observation-domain decode state.
type domainState struct {
	table      *TemplateTable
	haveSeq    bool
	nextSeq    uint32   // sequence number expected on the next message
	gaps       []seqGap // open loss gaps, oldest first
	gapScratch []seqGap // refillGaps work area, swapped with gaps
	pending    []RawSet // data sets awaiting their template
	sampling   uint32   // announced sampling interval
}

// collectorMetrics are the collector's registry-backed counters. Lost
// is kept as two monotonic counters (gaps opened, gaps back-filled) so
// the exported metrics never decrease; the net loss is derived in
// Stats.
type collectorMetrics struct {
	messages    *obsv.Counter
	records     *obsv.Counter
	seqLost     *obsv.Counter
	seqRefilled *obsv.Counter
	reordered   *obsv.Counter
	quarantined *obsv.Counter
	buffered    *obsv.Counter
	replayed    *obsv.Counter
	evicted     *obsv.Counter
}

func newCollectorMetrics(reg *obsv.Registry) collectorMetrics {
	return collectorMetrics{
		messages:    reg.Counter("ipfix_messages_total"),
		records:     reg.Counter("ipfix_records_total"),
		seqLost:     reg.Counter("ipfix_seq_gap_lost_total"),
		seqRefilled: reg.Counter("ipfix_seq_gap_refilled_total"),
		reordered:   reg.Counter("ipfix_reordered_total"),
		quarantined: reg.Counter("ipfix_quarantined_total"),
		buffered:    reg.Counter("ipfix_pending_buffered_total"),
		replayed:    reg.Counter("ipfix_pending_replayed_total"),
		evicted:     reg.Counter("ipfix_pending_evicted_total"),
	}
}

// Collector is an IPFIX collecting process. It consumes framed
// messages (one or many exporters can share it if their domains
// differ), tracks templates per observation domain, and hands decoded
// flow records to a callback. It is the receiving end of the paper's
// "distributed collectors that consolidate the flow data", and it is
// built to survive a faulty transport: malformed messages are
// quarantined (counted, never fatal), data sets that overtake their
// template are buffered and replayed when the template arrives, and
// reordered messages are distinguished from genuine loss.
type Collector struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	domains map[uint32]*domainState
	m       collectorMetrics
	// batch accumulates the flow records of the message being handled
	// (direct and replayed), reused across messages under mu. Handing
	// the whole slice to a batch consumer amortizes downstream lock
	// traffic over the ~64 records a message carries.
	//tipsy:guardedby mu
	batch []FlowRecord
	// tracer + traceCtx attach incident marks (quarantine, template
	// buffering) to the ingest trace. Nil tracer / zero context — the
	// default — emits nothing.
	//tipsy:nolock set via SetTrace before ingest begins, constant after
	tracer *obsv.Tracer
	//tipsy:nolock set via SetTrace before ingest begins, constant after
	traceCtx obsv.SpanContext
}

// NewCollector creates an empty collector with a private metrics
// registry.
func NewCollector() *Collector {
	return NewCollectorOn(obsv.NewRegistry())
}

// NewCollectorOn creates a collector whose counters live in reg under
// the ipfix_ prefix, so /metrics exports them alongside every other
// subsystem's.
func NewCollectorOn(reg *obsv.Registry) *Collector {
	return &Collector{
		domains: make(map[uint32]*domainState),
		m:       newCollectorMetrics(reg),
	}
}

// SetTrace attaches the collector's incident marks to the given
// trace context. Call before ingest; nil tracer disables them.
func (c *Collector) SetTrace(t *obsv.Tracer, sc obsv.SpanContext) {
	c.mu.Lock()
	c.tracer = t
	c.traceCtx = sc
	c.mu.Unlock()
}

// mark files a zero-duration incident span — how quarantines and
// template-resync events show up on the ingest trace timeline.
// Untraced collectors pay two nil checks.
func (c *Collector) mark(name string) {
	sp := c.tracer.StartFrom(c.traceCtx, name)
	sp.End()
}

// domain returns (creating if needed) the state for one observation
// domain. Callers hold c.mu.
func (c *Collector) domain(id uint32) *domainState {
	d := c.domains[id]
	if d == nil {
		d = &domainState{table: NewTemplateTable()}
		c.domains[id] = d
	}
	return d
}

// HandleMessage decodes one framed message and invokes fn for each
// flow record in it. A malformed message is quarantined: the error is
// returned for observability, but the collector remains consistent
// and the next message is processed normally.
//
//tipsy:hotpath
func (c *Collector) HandleMessage(buf []byte, fn func(domain uint32, rec FlowRecord)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, err := c.handleLocked(buf)
	if err != nil {
		return err
	}
	for i := range c.batch {
		fn(id, c.batch[i])
	}
	return nil
}

// HandleMessageBatch is HandleMessage with a batched hand-off: fn is
// invoked at most once, with every flow record the message produced
// (direct and replayed). The slice is owned by the collector and only
// valid for the duration of the callback.
//
//tipsy:hotpath
func (c *Collector) HandleMessageBatch(buf []byte, fn func(domain uint32, recs []FlowRecord)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, err := c.handleLocked(buf)
	if err != nil {
		return err
	}
	if len(c.batch) > 0 {
		fn(id, c.batch)
	}
	return nil
}

// handleLocked decodes one framed message into the pooled Message and
// collects its flow records into c.batch. Callers hold c.mu and emit
// c.batch on a nil error.
func (c *Collector) handleLocked(buf []byte) (uint32, error) {
	c.batch = c.batch[:0]
	if len(buf) < msgHeaderLen {
		c.m.quarantined.Inc()
		c.mark("ipfix_quarantine")
		return 0, ErrShortMessage
	}
	// Peek the domain to select the template table.
	id := binary.BigEndian.Uint32(buf[12:16])
	d := c.domain(id)
	msg := GetMessage()
	if err := DecodeInto(msg, buf, d.table); err != nil {
		PutMessage(msg)
		c.m.quarantined.Inc()
		c.mark("ipfix_quarantine")
		return 0, err
	}
	c.accountSequence(d, msg)
	c.m.messages.Inc()
	// Data sets arrive as runs of records sharing one template, so
	// the compiled-template lookup is cached across the run.
	lastID := uint16(0)
	var lastCT *CompiledTemplate
	for i := range msg.Records {
		dr := &msg.Records[i]
		if dr.TemplateID != lastID || lastCT == nil {
			lastID = dr.TemplateID
			lastCT = d.table.Get(lastID)
		}
		c.processOne(d, dr.TemplateID, dr.Data, lastCT)
	}
	for i := range msg.Unknown {
		c.bufferPending(d, msg.Unknown[i])
	}
	hadTemplates := len(msg.Templates) > 0
	PutMessage(msg)
	if hadTemplates {
		c.replayPending(d)
	}
	return id, nil
}

// accountSequence updates loss/reorder accounting for one decoded
// message. RFC 7011 sequence numbers count exported data records; the
// naive uint32 subtraction would book a reordered (backward) message
// as a ~2^32 record loss, so the signed 32-bit difference is used:
// it classifies backward jumps as reorders and handles genuine
// wraparound at 2^32 transparently.
func (c *Collector) accountSequence(d *domainState, msg *Message) {
	n := uint32(len(msg.Records))
	seq := msg.Header.Sequence
	if !d.haveSeq {
		d.haveSeq = true
		d.nextSeq = seq + n
		return
	}
	switch diff := int32(seq - d.nextSeq); {
	case diff > 0:
		// Records [nextSeq, seq) never arrived — presumed lost until
		// a reordered message back-fills the gap.
		c.m.seqLost.Add(uint64(diff))
		d.gaps = append(d.gaps, seqGap{start: d.nextSeq, count: uint32(diff)})
		if len(d.gaps) > maxTrackedGaps {
			// Copy down instead of reslicing forward so the backing
			// array keeps its capacity — the gap list must reach a
			// steady state with no per-message allocation.
			kept := copy(d.gaps, d.gaps[len(d.gaps)-maxTrackedGaps:])
			d.gaps = d.gaps[:kept]
		}
		d.nextSeq = seq + n
	case diff < 0:
		// A message from the past: reordered, duplicated, or
		// retransmitted. If it covers an open gap, those records were
		// never lost after all.
		c.m.reordered.Inc()
		c.refillGaps(d, seq, n)
		if int32(seq+n-d.nextSeq) > 0 {
			d.nextSeq = seq + n
		}
	default:
		d.nextSeq = seq + n
	}
}

// refillGaps subtracts the arrived range [seq, seq+n) from the open
// loss gaps, crediting Lost back for records that were merely late.
// The surviving gaps are written by index into a scratch slice that
// is swapped with the live list, so steady-state refills allocate
// nothing. One arrival interval splits at most one gap into head and
// tail, so the output never exceeds len(gaps)+1 entries.
func (c *Collector) refillGaps(d *domainState, seq, n uint32) {
	if n == 0 || len(d.gaps) == 0 {
		return
	}
	if cap(d.gapScratch) < len(d.gaps)+1 {
		d.gapScratch = make([]seqGap, maxTrackedGaps+1)
	}
	kept := d.gapScratch[:cap(d.gapScratch)]
	w := 0
	for _, g := range d.gaps {
		// Overlap of [seq, seq+n) with [g.start, g.start+g.count),
		// computed as signed offsets relative to g.start so sequence
		// wraparound cancels out.
		lo := int64(int32(seq - g.start))
		hi := lo + int64(n)
		if hi <= 0 || lo >= int64(g.count) {
			kept[w] = g // no overlap
			w++
			continue
		}
		if lo < 0 {
			lo = 0
		}
		if hi > int64(g.count) {
			hi = int64(g.count)
		}
		covered := uint32(hi - lo)
		c.m.seqRefilled.Add(uint64(covered))
		// The gap may split into a head and a tail remainder.
		if lo > 0 {
			kept[w].start = g.start
			kept[w].count = uint32(lo)
			w++
		}
		if uint32(hi) < g.count {
			kept[w].start = g.start + uint32(hi)
			kept[w].count = g.count - uint32(hi)
			w++
		}
	}
	d.gaps, d.gapScratch = kept[:w], d.gaps
}

// processOne dispatches one data record: sampling options records
// update the domain's announced interval, flow records decode through
// the compiled template straight into c.batch, and records whose
// template cannot describe a flow record are quarantined.
func (c *Collector) processOne(d *domainState, tid uint16, data []byte, ct *CompiledTemplate) {
	if tid == SamplingTemplateID && len(data) == 4 {
		d.sampling = binary.BigEndian.Uint32(data[0:4])
		return
	}
	if tid != FlowTemplateID {
		return
	}
	if ct == nil || ct.recLen != flowRecordLen {
		c.m.quarantined.Inc()
		c.mark("ipfix_quarantine")
		return
	}
	n := len(c.batch)
	c.batch = append(c.batch, FlowRecord{})
	if !ct.DecodeFlow(data, &c.batch[n]) {
		c.batch = c.batch[:n]
		c.m.quarantined.Inc()
		c.mark("ipfix_quarantine")
		return
	}
	c.m.records.Inc()
}

// bufferPending parks a data set whose template has not arrived,
// bounded by maxPendingSets per domain.
func (c *Collector) bufferPending(d *domainState, raw RawSet) {
	body := append([]byte(nil), raw.Body...) // Body aliases the message buffer
	d.pending = append(d.pending, RawSet{SetID: raw.SetID, Body: body})
	c.m.buffered.Inc()
	c.mark("ipfix_template_buffered")
	if len(d.pending) > maxPendingSets {
		// Copy down (keeping the backing array) rather than reslice
		// forward, and drop the evicted body reference.
		kept := copy(d.pending, d.pending[1:])
		d.pending[kept].SetID = 0
		d.pending[kept].Body = nil
		d.pending = d.pending[:kept]
		c.m.evicted.Inc()
		c.mark("ipfix_pending_evicted")
	}
}

// replayPending re-decodes buffered data sets after new templates
// arrived — the resync point for sets that overtook their template.
// Sets still missing a template are compacted in place (w never
// passes i, so the two-pointer walk is safe) and the dropped tail is
// cleared so replayed bodies don't pin their buffers.
func (c *Collector) replayPending(d *domainState) {
	w := 0
	for i := range d.pending {
		raw := d.pending[i]
		ct := d.table.Get(raw.SetID)
		if ct == nil {
			d.pending[w] = raw
			w++
			continue
		}
		c.m.replayed.Inc()
		c.mark("ipfix_template_replayed")
		rl := ct.recLen
		if rl == 0 {
			c.m.quarantined.Inc()
			c.mark("ipfix_quarantine")
			continue
		}
		body := raw.Body
		for len(body) >= rl {
			c.processOne(d, raw.SetID, body[:rl], ct)
			body = body[rl:]
		}
	}
	clear(d.pending[w:])
	d.pending = d.pending[:w]
}

// ReadStream consumes a stream of back-to-back framed messages from r
// until EOF, invoking fn per record. It is used when collectors are
// attached to routers over TCP. Per-message decode failures are
// quarantined and the stream continues — only a framing failure,
// after which message boundaries are unrecoverable, aborts.
func (c *Collector) ReadStream(r io.Reader, fn func(domain uint32, rec FlowRecord)) error {
	return c.readStream(r, func(buf []byte) { _ = c.HandleMessage(buf, fn) })
}

// ReadStreamBatch is ReadStream with the batched hand-off: fn is
// invoked once per message that produced records, with the whole
// record batch. The slice is only valid during the callback.
func (c *Collector) ReadStreamBatch(r io.Reader, fn func(domain uint32, recs []FlowRecord)) error {
	return c.readStream(r, func(buf []byte) { _ = c.HandleMessageBatch(buf, fn) })
}

// readStream frames messages out of r into a buffer reused across
// messages (handle must not retain it) and feeds each to handle.
// Quarantined messages are counted inside HandleMessage; the stream
// itself is still framed, so reading continues.
func (c *Collector) readStream(r io.Reader, handle func(buf []byte)) error {
	var hdr [4]byte
	var msg []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		total := WireLen(hdr[:])
		if total < msgHeaderLen {
			return fmt.Errorf("%w: stream framing lost", ErrShortMessage)
		}
		if cap(msg) < total {
			msg = make([]byte, total)
		}
		msg = msg[:total]
		copy(msg, hdr[:])
		if _, err := io.ReadFull(r, msg[4:]); err != nil {
			return err
		}
		handle(msg)
	}
}

// SamplingInterval returns the sampling interval a domain announced
// via its options record, or 0 if none seen.
func (c *Collector) SamplingInterval(domain uint32) uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d := c.domains[domain]; d != nil {
		return d.sampling
	}
	return 0
}

// PendingSets reports how many data sets a domain has parked waiting
// for their template.
func (c *Collector) PendingSets(domain uint32) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d := c.domains[domain]; d != nil {
		return len(d.pending)
	}
	return 0
}

// Stats returns a snapshot of the collector's counters, read from the
// registry metrics. Lost is the net figure: gaps opened minus gaps
// back-filled by reordered arrivals.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CollectorStats{
		Messages:    c.m.messages.Value(),
		Records:     c.m.records.Value(),
		Lost:        c.m.seqLost.Value() - c.m.seqRefilled.Value(),
		Reordered:   c.m.reordered.Value(),
		Quarantined: c.m.quarantined.Value(),
		Buffered:    c.m.buffered.Value(),
		Replayed:    c.m.replayed.Value(),
		Evicted:     c.m.evicted.Value(),
	}
}

// Sampler models the edge routers' random packet sampling: each
// packet is independently selected with probability 1/Interval. The
// exporter scales counts back up by the interval, so sampled flows
// report estimated totals, and flows small relative to the interval
// are often missed entirely — exactly the bias the paper accepts
// because TIPSY's use cases concern large traffic volumes.
type Sampler struct {
	//tipsy:nolock configured before use and never written afterwards
	Interval uint32 // e.g. 4096 for 1-out-of-4096
	//tipsy:guardedby mu
	rng *rand.Rand
	mu  sync.Mutex
}

// NewSampler creates a sampler with the given interval; interval <= 1
// disables sampling. The seed makes the process reproducible.
func NewSampler(interval uint32, seed int64) *Sampler {
	return &Sampler{Interval: interval, rng: rand.New(rand.NewSource(seed))}
}

// Sample draws how many of the flow's packets the router observes and
// returns scaled-up (octets, packets) estimates, or (0, 0, false) if
// the flow is missed entirely. Binomial sampling is approximated by a
// Poisson draw when packet counts are large, which is accurate for
// p = 1/4096.
func (s *Sampler) Sample(octets, packets uint64) (uint64, uint64, bool) {
	if s.Interval <= 1 {
		return octets, packets, octets > 0
	}
	if packets == 0 {
		return 0, 0, false
	}
	s.mu.Lock()
	observed := poisson(s.rng, float64(packets)/float64(s.Interval))
	s.mu.Unlock()
	if observed == 0 {
		return 0, 0, false
	}
	scale := float64(observed) * float64(s.Interval)
	bytesPerPkt := float64(octets) / float64(packets)
	return uint64(scale * bytesPerPkt), observed * uint64(s.Interval), true
}

// poisson draws from Poisson(lambda) — Knuth's method for small
// lambda, normal approximation above.
func poisson(rng *rand.Rand, lambda float64) uint64 {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return uint64(v + 0.5)
	}
	l := math.Exp(-lambda)
	var k uint64
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
