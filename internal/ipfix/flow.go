package ipfix

import (
	"encoding/binary"
	"errors"
)

// FlowTemplateID is the template ID of the TIPSY flow record schema.
const FlowTemplateID = 256

// FlowTemplate describes the flow record schema the edge routers
// export: the IPFIX fields §4.1 of the paper calls out as the
// important ones — source address, source ASN, destination address,
// timestamps, and byte/packet counts scaled by the sampling rate —
// plus the ingress interface identifying the peering link.
func FlowTemplate() Template {
	return Template{
		ID: FlowTemplateID,
		Fields: []FieldSpec{
			{ID: IESourceIPv4Address, Length: 4},
			{ID: IEDestinationIPv4, Length: 4},
			{ID: IEOctetDeltaCount, Length: 8},
			{ID: IEPacketDeltaCount, Length: 8},
			{ID: IEIngressInterface, Length: 4},
			{ID: IEBgpSourceAsNumber, Length: 4},
			{ID: IEFlowStartSeconds, Length: 4},
			{ID: IEFlowEndSeconds, Length: 4},
		},
	}
}

// flowRecordLen is the fixed wire size of one flow record.
const flowRecordLen = 4 + 4 + 8 + 8 + 4 + 4 + 4 + 4

// FlowRecord is one decoded flow observation. Octets and Packets are
// already scaled up by the exporter's sampling interval, matching the
// paper's "number of bytes scaled up by the sampling rate".
type FlowRecord struct {
	SrcAddr   uint32
	DstAddr   uint32
	Octets    uint64
	Packets   uint64
	Ingress   uint32 // peering link / ifIndex the flow arrived on
	SrcAS     uint32
	StartSecs uint32
	EndSecs   uint32
}

// Marshal encodes the record per FlowTemplate.
func (r *FlowRecord) Marshal() []byte {
	out := make([]byte, 0, flowRecordLen)
	out = binary.BigEndian.AppendUint32(out, r.SrcAddr)
	out = binary.BigEndian.AppendUint32(out, r.DstAddr)
	out = binary.BigEndian.AppendUint64(out, r.Octets)
	out = binary.BigEndian.AppendUint64(out, r.Packets)
	out = binary.BigEndian.AppendUint32(out, r.Ingress)
	out = binary.BigEndian.AppendUint32(out, r.SrcAS)
	out = binary.BigEndian.AppendUint32(out, r.StartSecs)
	return binary.BigEndian.AppendUint32(out, r.EndSecs)
}

// errBadFlowRecordLen keeps length failures off the allocation path:
// the collector hits this once per quarantined record, and an
// fmt.Errorf here would box two ints per call.
var errBadFlowRecordLen = errors.New("ipfix: flow record has wrong length")

// UnmarshalFlowRecord decodes a data record produced with
// FlowTemplate.
func UnmarshalFlowRecord(data []byte) (FlowRecord, error) {
	if len(data) != flowRecordLen {
		return FlowRecord{}, errBadFlowRecordLen
	}
	return FlowRecord{
		SrcAddr:   binary.BigEndian.Uint32(data[0:4]),
		DstAddr:   binary.BigEndian.Uint32(data[4:8]),
		Octets:    binary.BigEndian.Uint64(data[8:16]),
		Packets:   binary.BigEndian.Uint64(data[16:24]),
		Ingress:   binary.BigEndian.Uint32(data[24:28]),
		SrcAS:     binary.BigEndian.Uint32(data[28:32]),
		StartSecs: binary.BigEndian.Uint32(data[32:36]),
		EndSecs:   binary.BigEndian.Uint32(data[36:40]),
	}, nil
}
