package ipfix

import "encoding/binary"

// SamplingTemplateID is the options template describing the exporting
// process's packet sampling configuration. The paper's pipeline needs
// the sampling rate to scale counts; carrying it in-band as an
// options record (RFC 7011 §3.4.2.2) is how real exporters announce
// it.
const SamplingTemplateID = 257

// samplingTemplate describes one options record: the observation
// domain's sampling interval.
func samplingTemplate() Template {
	return Template{
		ID: SamplingTemplateID,
		Fields: []FieldSpec{
			{ID: IESamplingInterval, Length: 4},
		},
	}
}

// marshalOptionsTemplateSet encodes an options template set
// (RFC 7011 §3.4.2): set ID 3, with a scope field count. The sampling
// template scopes its single field to the observation domain, so the
// scope field count is 0 fields + the IE itself as non-scope; for the
// substrate's fixed-schema decoding we keep the template layout
// identical to a data template with a scope count of 1.
func marshalOptionsTemplateSet(t Template) []byte {
	body := make([]byte, 0, 16)
	body = binary.BigEndian.AppendUint16(body, t.ID)
	body = binary.BigEndian.AppendUint16(body, uint16(len(t.Fields)))
	body = binary.BigEndian.AppendUint16(body, 1) // scope field count
	for _, f := range t.Fields {
		body = binary.BigEndian.AppendUint16(body, f.ID)
		body = binary.BigEndian.AppendUint16(body, f.Length)
	}
	set := make([]byte, 0, setHeaderLen+len(body))
	set = binary.BigEndian.AppendUint16(set, SetIDOptionsTemplate)
	set = binary.BigEndian.AppendUint16(set, uint16(setHeaderLen+len(body)))
	return append(set, body...)
}

// AnnounceSampling emits an options template and data record stating
// the exporter's sampling interval. Exporters call it once at
// start-up (and the substrate's collectors surface it via
// Collector.SamplingInterval).
func (e *Exporter) AnnounceSampling(interval uint32, exportTime uint32) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := samplingTemplate()
	data := binary.BigEndian.AppendUint32(nil, interval)
	sets := [][]byte{
		marshalOptionsTemplateSet(t),
		marshalDataSet(t.ID, [][]byte{data}),
	}
	msg := marshalMessage(exportTime, e.seq, e.domain, sets)
	e.seq++ // the options record counts toward the sequence
	_, err := e.w.Write(msg)
	return err
}
