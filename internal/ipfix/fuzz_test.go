package ipfix

import (
	"bytes"
	"testing"
)

// fuzzSeeds builds a corpus in the shape the collector actually sees:
// real exporter frames (template + data sets), plus the quarantine
// classes — truncated, version-corrupted, length-corrupted, and junk.
func fuzzSeeds() [][]byte {
	var buf bytes.Buffer
	e := NewExporter(&buf, 7)
	for i := 0; i < 3; i++ {
		rec := FlowRecord{
			SrcAddr: 0x0a000001 + uint32(i), DstAddr: 0x0b000001,
			Octets: 1500, Packets: 2, Ingress: 3, SrcAS: 64500,
			StartSecs: 100, EndSecs: 160,
		}
		e.Export(&rec, 1000)
	}
	e.Flush(1001)
	stream := buf.Bytes()

	var seeds [][]byte
	// Each framed message on the stream is its own seed.
	for off := 0; off < len(stream); {
		n := WireLen(stream[off:])
		if n <= 0 || off+n > len(stream) {
			break
		}
		seeds = append(seeds, stream[off:off+n])
		off += n
	}
	if len(seeds) == 0 {
		panic("exporter produced no frames")
	}
	first := seeds[0]
	// Truncations at interesting boundaries.
	for _, n := range []int{0, 1, msgHeaderLen - 1, msgHeaderLen, msgHeaderLen + setHeaderLen - 1} {
		if n <= len(first) {
			seeds = append(seeds, first[:n])
		}
	}
	// Bad version.
	bad := append([]byte(nil), first...)
	bad[0], bad[1] = 0xff, 0xfe
	seeds = append(seeds, bad)
	// Header length lies beyond the buffer.
	long := append([]byte(nil), first...)
	long[2], long[3] = 0xff, 0xff
	seeds = append(seeds, long)
	// Header length lies short (mid-set).
	short := append([]byte(nil), first...)
	short[2], short[3] = 0, msgHeaderLen+2
	seeds = append(seeds, short)
	// Junk.
	seeds = append(seeds, []byte("not ipfix at all"), bytes.Repeat([]byte{0}, 64))
	return seeds
}

// FuzzIPFIXDecode drives the decoder and the full collector over
// arbitrary bytes. The contract under test: malformed input is
// quarantined (an error return, a counter bump) — never a panic, and
// never an accepted record that violates the template length.
func FuzzIPFIXDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if n := WireLen(data); n < 0 {
			t.Fatalf("WireLen = %d, want >= 0", n)
		}

		// Bare decoder, with and without the flow template known. Each
		// state also runs the compiled path through the differential
		// oracle: reference and compiled decoders must agree on every
		// input the fuzzer invents.
		known := map[uint16]Template{FlowTemplateID: FlowTemplate()}
		for _, tmpl := range []map[uint16]Template{nil, known} {
			ref := make(map[uint16]Template, len(tmpl))
			tt := NewTemplateTable()
			for _, mt := range tmpl {
				ref[mt.ID] = mt
				tt.Register(mt)
			}
			runDifferential(t, data, ref, tt)

			msg, err := Decode(data, tmpl)
			if err != nil {
				continue
			}
			recLen := 0
			if tmpl != nil {
				ft := known[FlowTemplateID]
				recLen = ft.RecordLen()
			}
			for _, dr := range msg.Records {
				if dr.TemplateID == FlowTemplateID && recLen > 0 && len(dr.Data) != recLen {
					t.Fatalf("accepted flow record of %d bytes, template says %d", len(dr.Data), recLen)
				}
			}
		}

		// Full collector path: template learning, sequence accounting,
		// pending-set buffering. Must never panic; errors quarantine.
		c := NewCollector()
		_ = c.HandleMessage(data, func(domain uint32, rec FlowRecord) {})
		c.Stats() // counter decomposition stays readable
	})
}
