package ipfix

import (
	"io"
	"sync"
)

// maxMessageLen bounds emitted message size so messages fit a typical
// path MTU with headroom.
const maxMessageLen = 1400

// templateResendEvery re-announces templates once per this many
// messages, as collectors may start listening mid-stream (RFC 7011
// §8 recommends periodic retransmission over unreliable transports).
const templateResendEvery = 32

// Exporter is an IPFIX exporting process for one observation domain
// (one edge router in the substrate). It batches flow records into
// framed messages on an io.Writer, manages template (re)transmission,
// and maintains the per-stream sequence number, which counts data
// records per RFC 7011 §3.1.
//
// An Exporter is safe for concurrent use.
type Exporter struct {
	w        io.Writer
	domain   uint32
	template Template

	mu sync.Mutex
	//tipsy:guardedby mu
	seq uint32
	//tipsy:guardedby mu
	msgsSinceStart int
	//tipsy:guardedby mu
	pending [][]byte
	//tipsy:guardedby mu
	pendLen int
	//tipsy:guardedby mu
	tmplLen int // wire size of the template set, for budgeting
}

// NewExporter creates an exporter for the given observation domain
// writing framed IPFIX messages to w using the flow template.
func NewExporter(w io.Writer, domain uint32) *Exporter {
	t := FlowTemplate()
	return &Exporter{w: w, domain: domain, template: t,
		tmplLen: len(marshalTemplateSet([]Template{t}))}
}

// Export queues one flow record, flushing a message if the batch is
// full. exportTime is the simulated export timestamp in seconds.
func (e *Exporter) Export(rec *FlowRecord, exportTime uint32) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	enc := rec.Marshal()
	e.pending = append(e.pending, enc)
	e.pendLen += len(enc)
	// Budget for the worst case: header, a re-announced template set,
	// the data set header, and one more record.
	if msgHeaderLen+e.tmplLen+setHeaderLen+e.pendLen >= maxMessageLen-flowRecordLen {
		return e.flushLocked(exportTime)
	}
	return nil
}

// Flush writes any batched records immediately.
func (e *Exporter) Flush(exportTime uint32) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flushLocked(exportTime)
}

func (e *Exporter) flushLocked(exportTime uint32) error {
	if len(e.pending) == 0 {
		return nil
	}
	var sets [][]byte
	if e.msgsSinceStart%templateResendEvery == 0 {
		sets = append(sets, marshalTemplateSet([]Template{e.template}))
	}
	sets = append(sets, marshalDataSet(e.template.ID, e.pending))
	msg := marshalMessage(exportTime, e.seq, e.domain, sets)
	e.seq += uint32(len(e.pending))
	e.msgsSinceStart++
	e.pending = e.pending[:0]
	e.pendLen = 0
	_, err := e.w.Write(msg)
	return err
}

// Sequence returns the current data-record sequence number.
func (e *Exporter) Sequence() uint32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seq
}
