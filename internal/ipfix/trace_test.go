package ipfix

import (
	"sync/atomic"
	"testing"

	"tipsy/internal/obsv"
)

func TestCollectorMarksQuarantineOnTrace(t *testing.T) {
	var tick atomic.Int64
	rec := obsv.NewRecorder(64)
	tr := obsv.NewTracer(rec, obsv.TracerOptions{Clock: func() int64 { return tick.Add(1) }})

	col := NewCollector()
	root := tr.StartRoot("ingest")
	col.SetTrace(tr, root.Context())

	fn := func(uint32, FlowRecord) {}
	if err := col.HandleMessage([]byte{1, 2, 3}, fn); err == nil {
		t.Fatal("short datagram accepted")
	}
	garbage := make([]byte, 64)
	garbage[1] = 0xff // bogus version
	if err := col.HandleMessage(garbage, fn); err == nil {
		t.Fatal("garbage datagram accepted")
	}
	root.End()

	var marks int
	for _, r := range rec.Snapshot() {
		if r.Name != "ipfix_quarantine" {
			continue
		}
		marks++
		if r.Trace != root.Context().Trace {
			t.Errorf("quarantine mark on trace %v, want %v", r.Trace, root.Context().Trace)
		}
		if r.Parent != obsv.SpanID(root.Context().Span) {
			t.Errorf("quarantine mark parented by %d, want ingest root %d",
				r.Parent, root.Context().Span)
		}
	}
	if marks != 2 {
		t.Fatalf("quarantine marks = %d, want 2", marks)
	}
}

func TestCollectorUntracedQuarantineIsSilent(t *testing.T) {
	rec := obsv.NewRecorder(64)
	tr := obsv.NewTracer(rec, obsv.TracerOptions{})

	col := NewCollector()
	col.SetTrace(tr, obsv.SpanContext{}) // zero context: no live cycle
	if err := col.HandleMessage([]byte{1, 2, 3}, func(uint32, FlowRecord) {}); err == nil {
		t.Fatal("short datagram accepted")
	}
	if n := rec.Len(); n != 0 {
		t.Fatalf("untraced collector recorded %d spans", n)
	}
	if st := col.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantine still counted in stats: %+v", st)
	}
}
