package ipfix

import "testing"

// BenchmarkIPFIXDecode measures the steady-state per-message decode
// cost on a 64-record data set with the template already learned —
// the shape HandleMessage sees once a stream is warmed up. It is the
// dynamic counterpart of the tipsylint hotpath tier's static budget
// for Decode: the static tier counts sites, this pins what they cost.
//
// Baseline (2026-08-08, linux/amd64, go1.22 toolchain era):
//
//	BenchmarkIPFIXDecode   ~1930 ns/op   4728 B/op   14 allocs/op
//
// i.e. ~74 B and ~0.22 allocs per flow record. The planned zero-alloc
// refactor should drive allocs/op toward the slice headers alone;
// regressions show up here and in the budget ratchet.
func BenchmarkIPFIXDecode(b *testing.B) {
	msg := benchMessage()
	templates := map[uint16]Template{}
	if _, err := Decode(msg, templates); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(msg, templates); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMessage builds the 64-record warmed-template message both
// decode benchmarks share.
func benchMessage() []byte {
	tmpl := FlowTemplate()
	recs := make([][]byte, 64)
	for i := range recs {
		rec := FlowRecord{
			SrcAddr: 0x0b000000 | uint32(i),
			DstAddr: 40 << 24,
			Octets:  uint64(1000 + i),
			SrcAS:   64496,
		}
		recs[i] = rec.Marshal()
	}
	return marshalMessage(100, 0, 7, [][]byte{
		marshalTemplateSet([]Template{tmpl}),
		marshalDataSet(tmpl.ID, recs),
	})
}

// BenchmarkDecodeInto measures the compiled decode path over the same
// 64-record message as BenchmarkIPFIXDecode: template-compiled set
// walking into a pooled, reused Message. Steady state is allocation-
// free (TestDecodeIntoSteadyStateZeroAlloc pins exactly that), so
// ns/op here is pure decode work.
func BenchmarkDecodeInto(b *testing.B) {
	buf := benchMessage()
	tt := NewTemplateTable()
	msg := GetMessage()
	defer PutMessage(msg)
	if err := DecodeInto(msg, buf, tt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(msg, buf, tt); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodeIntoSteadyStateZeroAlloc pins the tentpole claim: once the
// template is compiled and the message's internal slices have grown to
// the message shape, DecodeInto performs zero heap allocations — not
// per record, zero for the whole 64-record message.
func TestDecodeIntoSteadyStateZeroAlloc(t *testing.T) {
	buf := benchMessage()
	tt := NewTemplateTable()
	msg := GetMessage()
	defer PutMessage(msg)
	if err := DecodeInto(msg, buf, tt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeInto(msg, buf, tt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecodeInto allocates %.1f times per 64-record message, want 0", allocs)
	}
	if len(msg.Records) != 64 {
		t.Fatalf("decoded %d records, want 64", len(msg.Records))
	}
}
