package ipfix

import "testing"

// BenchmarkIPFIXDecode measures the steady-state per-message decode
// cost on a 64-record data set with the template already learned —
// the shape HandleMessage sees once a stream is warmed up. It is the
// dynamic counterpart of the tipsylint hotpath tier's static budget
// for Decode: the static tier counts sites, this pins what they cost.
//
// Baseline (2026-08-08, linux/amd64, go1.22 toolchain era):
//
//	BenchmarkIPFIXDecode   ~1930 ns/op   4728 B/op   14 allocs/op
//
// i.e. ~74 B and ~0.22 allocs per flow record. The planned zero-alloc
// refactor should drive allocs/op toward the slice headers alone;
// regressions show up here and in the budget ratchet.
func BenchmarkIPFIXDecode(b *testing.B) {
	tmpl := FlowTemplate()
	recs := make([][]byte, 64)
	for i := range recs {
		rec := FlowRecord{
			SrcAddr: 0x0b000000 | uint32(i),
			DstAddr: 40 << 24,
			Octets:  uint64(1000 + i),
			SrcAS:   64496,
		}
		recs[i] = rec.Marshal()
	}
	msg := marshalMessage(100, 0, 7, [][]byte{
		marshalTemplateSet([]Template{tmpl}),
		marshalDataSet(tmpl.ID, recs),
	})
	templates := map[uint16]Template{}
	if _, err := Decode(msg, templates); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(msg, templates); err != nil {
			b.Fatal(err)
		}
	}
}
