package ipfix

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleRecord(i uint32) *FlowRecord {
	return &FlowRecord{
		SrcAddr:   0x0a000000 + i,
		DstAddr:   0xc0000200 + i,
		Octets:    uint64(1000+i) * 4096,
		Packets:   uint64(1+i) * 4096,
		Ingress:   100 + i,
		SrcAS:     64512 + i,
		StartSecs: 3600,
		EndSecs:   7200,
	}
}

func TestFlowRecordRoundTrip(t *testing.T) {
	r := sampleRecord(7)
	got, err := UnmarshalFlowRecord(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != *r {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, *r)
	}
}

func TestFlowRecordRoundTripProperty(t *testing.T) {
	f := func(src, dst, ing, as, st, en uint32, oct, pkt uint64) bool {
		r := FlowRecord{src, dst, oct, pkt, ing, as, st, en}
		got, err := UnmarshalFlowRecord(r.Marshal())
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFlowRecordBadLength(t *testing.T) {
	if _, err := UnmarshalFlowRecord(make([]byte, flowRecordLen-1)); err == nil {
		t.Error("short record should fail")
	}
}

func TestTemplateRecordLen(t *testing.T) {
	tmpl := FlowTemplate()
	if got := tmpl.RecordLen(); got != flowRecordLen {
		t.Errorf("RecordLen = %d, want %d", got, flowRecordLen)
	}
}

func TestExporterCollectorRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	exp := NewExporter(&buf, 42)
	want := make([]FlowRecord, 100)
	for i := range want {
		want[i] = *sampleRecord(uint32(i))
		if err := exp.Export(&want[i], 1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Flush(1000); err != nil {
		t.Fatal(err)
	}
	if exp.Sequence() != 100 {
		t.Errorf("sequence = %d, want 100", exp.Sequence())
	}

	col := NewCollector()
	var got []FlowRecord
	err := col.ReadStream(&buf, func(domain uint32, rec FlowRecord) {
		if domain != 42 {
			t.Errorf("domain = %d, want 42", domain)
		}
		got = append(got, rec)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	st := col.Stats()
	if st.Records != 100 || st.Lost != 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.Messages < 2 {
		t.Errorf("100 records should span multiple messages under the MTU cap, got %d", st.Messages)
	}
}

func TestMessagesRespectSizeCap(t *testing.T) {
	var msgs [][]byte
	w := writerFunc(func(p []byte) (int, error) {
		msgs = append(msgs, append([]byte(nil), p...))
		return len(p), nil
	})
	exp := NewExporter(w, 1)
	for i := 0; i < 500; i++ {
		if err := exp.Export(sampleRecord(uint32(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	exp.Flush(0)
	for i, m := range msgs {
		if len(m) > maxMessageLen {
			t.Errorf("message %d is %d bytes, exceeds cap %d", i, len(m), maxMessageLen)
		}
		if got := WireLen(m); got != len(m) {
			t.Errorf("message %d: header length %d != actual %d", i, got, len(m))
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestCollectorDetectsLoss(t *testing.T) {
	var msgs [][]byte
	w := writerFunc(func(p []byte) (int, error) {
		msgs = append(msgs, append([]byte(nil), p...))
		return len(p), nil
	})
	exp := NewExporter(w, 9)
	for i := 0; i < 400; i++ {
		exp.Export(sampleRecord(uint32(i)), 0)
	}
	exp.Flush(0)
	if len(msgs) < 3 {
		t.Skip("need at least 3 messages to drop the middle one")
	}
	col := NewCollector()
	n := 0
	// Drop the second message to create a sequence gap. Templates are
	// carried in message 0, so decoding still works.
	for i, m := range msgs {
		if i == 1 {
			continue
		}
		if err := col.HandleMessage(m, func(uint32, FlowRecord) { n++ }); err != nil {
			t.Fatal(err)
		}
	}
	if st := col.Stats(); st.Lost == 0 {
		t.Error("dropped message should register as sequence loss")
	}
}

func TestCollectorBuffersDataBeforeTemplate(t *testing.T) {
	// A data set arriving before its template is parked, not fatal,
	// and replays once the template set shows up.
	rec := sampleRecord(0)
	data := marshalMessage(0, 0, 5, [][]byte{
		marshalDataSet(FlowTemplateID, [][]byte{rec.Marshal()}),
	})
	col := NewCollector()
	var got []FlowRecord
	fn := func(_ uint32, r FlowRecord) { got = append(got, r) }
	if err := col.HandleMessage(data, fn); err != nil {
		t.Fatalf("data before template should not be fatal: %v", err)
	}
	if len(got) != 0 || col.PendingSets(5) != 1 {
		t.Fatalf("expected 1 buffered set and no records, got %d records, %d pending",
			len(got), col.PendingSets(5))
	}
	tmplMsg := marshalMessage(0, 1, 5, [][]byte{
		marshalTemplateSet([]Template{FlowTemplate()}),
	})
	if err := col.HandleMessage(tmplMsg, fn); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != *rec {
		t.Fatalf("buffered set not replayed after template resync: %+v", got)
	}
	st := col.Stats()
	if st.Buffered != 1 || st.Replayed != 1 || col.PendingSets(5) != 0 {
		t.Errorf("stats after resync: %+v, pending %d", st, col.PendingSets(5))
	}
}

func TestCollectorReorderIsNotLoss(t *testing.T) {
	// Exported messages delivered out of order: a backward sequence
	// jump must count as a reorder, and a late message must refill
	// the gap its absence opened — not wrap into a ~2^32 loss.
	var msgs [][]byte
	w := writerFunc(func(p []byte) (int, error) {
		msgs = append(msgs, append([]byte(nil), p...))
		return len(p), nil
	})
	exp := NewExporter(w, 9)
	for i := 0; i < 400; i++ {
		exp.Export(sampleRecord(uint32(i)), 0)
	}
	exp.Flush(0)
	if len(msgs) < 3 {
		t.Skip("need at least 3 messages to swap a pair")
	}
	col := NewCollector()
	n := 0
	// Deliver message 2 before message 1.
	order := []int{0, 2, 1}
	for i := 3; i < len(msgs); i++ {
		order = append(order, i)
	}
	for _, i := range order {
		if err := col.HandleMessage(msgs[i], func(uint32, FlowRecord) { n++ }); err != nil {
			t.Fatal(err)
		}
	}
	st := col.Stats()
	if st.Reordered != 1 {
		t.Errorf("reordered = %d, want 1", st.Reordered)
	}
	if st.Lost != 0 {
		t.Errorf("lost = %d; the late message should have refilled the gap", st.Lost)
	}
	if n != 400 {
		t.Errorf("decoded %d of 400 records", n)
	}
}

func TestCollectorDuplicateDoesNotRefill(t *testing.T) {
	var msgs [][]byte
	w := writerFunc(func(p []byte) (int, error) {
		msgs = append(msgs, append([]byte(nil), p...))
		return len(p), nil
	})
	exp := NewExporter(w, 9)
	for i := 0; i < 400; i++ {
		exp.Export(sampleRecord(uint32(i)), 0)
	}
	exp.Flush(0)
	if len(msgs) < 3 {
		t.Skip("need at least 3 messages")
	}
	col := NewCollector()
	fn := func(uint32, FlowRecord) {}
	// Drop message 1 (a real gap), then duplicate message 2: the
	// duplicate must not be credited against the dropped records.
	col.HandleMessage(msgs[0], fn)
	col.HandleMessage(msgs[2], fn)
	lostAfterGap := col.Stats().Lost
	if lostAfterGap == 0 {
		t.Fatal("gap not detected")
	}
	col.HandleMessage(msgs[2], fn)
	st := col.Stats()
	if st.Lost != lostAfterGap {
		t.Errorf("duplicate changed lost from %d to %d", lostAfterGap, st.Lost)
	}
	if st.Reordered != 1 {
		t.Errorf("duplicate should count as reordered, got %d", st.Reordered)
	}
}

func TestCollectorSequenceWraparound(t *testing.T) {
	// An exporter whose sequence crosses 2^32 must not register a
	// catastrophic loss at the wrap point.
	near := ^uint32(0) - 3 // 4294967292
	col := NewCollector()
	fn := func(uint32, FlowRecord) {}
	recs := [][]byte{sampleRecord(0).Marshal(), sampleRecord(1).Marshal()}
	tmpl := marshalTemplateSet([]Template{FlowTemplate()})
	// seq near wrap with 2 records, then the continuation past 0.
	m1 := marshalMessage(0, near, 6, [][]byte{tmpl, marshalDataSet(FlowTemplateID, recs)})
	m2 := marshalMessage(0, near+2, 6, [][]byte{marshalDataSet(FlowTemplateID, recs)})
	m3 := marshalMessage(0, near+4, 6, [][]byte{marshalDataSet(FlowTemplateID, recs)}) // seq 0: past the wrap
	if near+4 != 0 {
		t.Fatal("test arithmetic wrong")
	}
	for _, m := range [][]byte{m1, m2, m3} {
		if err := col.HandleMessage(m, fn); err != nil {
			t.Fatal(err)
		}
	}
	st := col.Stats()
	if st.Lost != 0 || st.Reordered != 0 {
		t.Errorf("wraparound misaccounted: %+v", st)
	}
}

func TestCollectorQuarantinesMalformed(t *testing.T) {
	var buf bytes.Buffer
	exp := NewExporter(&buf, 3)
	for i := 0; i < 20; i++ { // few enough to stay in one framed message
		exp.Export(sampleRecord(uint32(i)), 0)
	}
	exp.Flush(0)
	col := NewCollector()
	n := 0
	fn := func(uint32, FlowRecord) { n++ }
	// A hopelessly short message and one with a corrupted version
	// field are quarantined; a good message then processes normally.
	if err := col.HandleMessage([]byte{1, 2, 3}, fn); err == nil {
		t.Error("short message should return an error")
	}
	good := buf.Bytes()
	bad := append([]byte(nil), good...)
	bad[0] = 0xFF
	if err := col.HandleMessage(bad, fn); err == nil {
		t.Error("bad version should return an error")
	}
	if err := col.HandleMessage(good, fn); err != nil {
		t.Fatal(err)
	}
	st := col.Stats()
	if st.Quarantined != 2 {
		t.Errorf("quarantined = %d, want 2", st.Quarantined)
	}
	if n != 20 || st.Records != 20 {
		t.Errorf("good message not processed after quarantines: n=%d stats=%+v", n, st)
	}
}

func TestReadStreamSurvivesQuarantinedMessage(t *testing.T) {
	// A stream with one undecodable (but correctly framed) message in
	// the middle keeps going; only framing loss aborts.
	var m1, m2 bytes.Buffer
	exp1 := NewExporter(&m1, 4)
	exp1.Export(sampleRecord(1), 0)
	exp1.Flush(0)
	exp2 := NewExporter(&m2, 4)
	exp2.Export(sampleRecord(2), 0)
	exp2.Flush(0)

	var stream bytes.Buffer
	stream.Write(m1.Bytes())
	// Build a framed message whose body is garbage: valid version and
	// length, unparseable template set inside.
	garbage := marshalMessage(0, 9, 4, [][]byte{{0, 2, 0, 7, 1, 2, 3}})
	stream.Write(garbage)
	stream.Write(m2.Bytes())

	col := NewCollector()
	n := 0
	if err := col.ReadStream(&stream, func(uint32, FlowRecord) { n++ }); err != nil {
		t.Fatalf("stream aborted on a quarantinable message: %v", err)
	}
	if n != 2 {
		t.Errorf("decoded %d of 2 good records", n)
	}
	if st := col.Stats(); st.Quarantined == 0 {
		t.Error("garbage message not quarantined")
	}
}

func TestCollectorPendingBufferBounded(t *testing.T) {
	col := NewCollector()
	fn := func(uint32, FlowRecord) {}
	rec := sampleRecord(0).Marshal()
	for i := 0; i < maxPendingSets+10; i++ {
		msg := marshalMessage(0, uint32(i), 7, [][]byte{marshalDataSet(FlowTemplateID, [][]byte{rec})})
		col.HandleMessage(msg, fn)
	}
	if got := col.PendingSets(7); got != maxPendingSets {
		t.Errorf("pending = %d, want capped at %d", got, maxPendingSets)
	}
	if st := col.Stats(); st.Evicted != 10 {
		t.Errorf("evicted = %d, want 10", st.Evicted)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	msg := marshalMessage(0, 0, 1, nil)
	msg[0], msg[1] = 0, 9 // NetFlow v9, not IPFIX
	if _, err := Decode(msg, map[uint16]Template{}); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	var buf bytes.Buffer
	exp := NewExporter(&buf, 1)
	exp.Export(sampleRecord(1), 0)
	exp.Flush(0)
	msg := buf.Bytes()
	for cut := 1; cut < len(msg); cut += 11 {
		_, err := Decode(msg[:cut], map[uint16]Template{})
		if err == nil && cut < msgHeaderLen {
			t.Errorf("truncation at %d decoded", cut)
		}
	}
}

func TestTemplatePeriodicResend(t *testing.T) {
	var msgs [][]byte
	w := writerFunc(func(p []byte) (int, error) {
		msgs = append(msgs, append([]byte(nil), p...))
		return len(p), nil
	})
	exp := NewExporter(w, 1)
	for m := 0; m < templateResendEvery+1; m++ {
		for i := 0; i < 40; i++ { // enough to force one flush per batch
			exp.Export(sampleRecord(uint32(i)), 0)
		}
		exp.Flush(0)
	}
	// A collector that starts listening after the first message must
	// eventually recover once the template is re-announced.
	col := NewCollector()
	recovered := 0
	for _, m := range msgs[1:] {
		if err := col.HandleMessage(m, func(uint32, FlowRecord) { recovered++ }); err == nil && recovered > 0 {
			break
		}
	}
	if recovered == 0 {
		t.Error("late-joining collector never recovered a template")
	}
}

func TestSamplerDisabled(t *testing.T) {
	s := NewSampler(1, 1)
	o, p, ok := s.Sample(1000, 10)
	if !ok || o != 1000 || p != 10 {
		t.Errorf("interval 1 should pass through, got %d %d %v", o, p, ok)
	}
}

func TestSamplerUnbiased(t *testing.T) {
	s := NewSampler(4096, 99)
	const trials = 3000
	const octets, packets = 1 << 24, 40960 // 10 expected samples per flow
	var sum float64
	missed := 0
	for i := 0; i < trials; i++ {
		o, _, ok := s.Sample(octets, packets)
		if !ok {
			missed++
			continue
		}
		sum += float64(o)
	}
	mean := sum / trials
	if math.Abs(mean-octets)/octets > 0.05 {
		t.Errorf("sampling biased: mean %.0f vs true %d", mean, octets)
	}
	if missed > trials/100 {
		t.Errorf("flow with 10 expected samples missed too often: %d/%d", missed, trials)
	}
}

func TestSamplerMissesSmallFlows(t *testing.T) {
	s := NewSampler(4096, 5)
	missed := 0
	for i := 0; i < 1000; i++ {
		if _, _, ok := s.Sample(1500, 1); !ok {
			missed++
		}
	}
	if missed < 900 {
		t.Errorf("single-packet flows should nearly always be missed at 1/4096, missed %d/1000", missed)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, lambda := range []float64{0.5, 5, 50, 500} {
		var sum, sum2 float64
		const n = 20000
		for i := 0; i < n; i++ {
			v := float64(poisson(rng, lambda))
			sum += v
			sum2 += v * v
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		if math.Abs(mean-lambda)/lambda > 0.05 {
			t.Errorf("lambda=%v: mean %.2f", lambda, mean)
		}
		if math.Abs(variance-lambda)/lambda > 0.15 {
			t.Errorf("lambda=%v: variance %.2f", lambda, variance)
		}
	}
}
