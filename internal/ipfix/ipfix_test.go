package ipfix

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleRecord(i uint32) *FlowRecord {
	return &FlowRecord{
		SrcAddr:   0x0a000000 + i,
		DstAddr:   0xc0000200 + i,
		Octets:    uint64(1000+i) * 4096,
		Packets:   uint64(1+i) * 4096,
		Ingress:   100 + i,
		SrcAS:     64512 + i,
		StartSecs: 3600,
		EndSecs:   7200,
	}
}

func TestFlowRecordRoundTrip(t *testing.T) {
	r := sampleRecord(7)
	got, err := UnmarshalFlowRecord(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != *r {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, *r)
	}
}

func TestFlowRecordRoundTripProperty(t *testing.T) {
	f := func(src, dst, ing, as, st, en uint32, oct, pkt uint64) bool {
		r := FlowRecord{src, dst, oct, pkt, ing, as, st, en}
		got, err := UnmarshalFlowRecord(r.Marshal())
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFlowRecordBadLength(t *testing.T) {
	if _, err := UnmarshalFlowRecord(make([]byte, flowRecordLen-1)); err == nil {
		t.Error("short record should fail")
	}
}

func TestTemplateRecordLen(t *testing.T) {
	tmpl := FlowTemplate()
	if got := tmpl.RecordLen(); got != flowRecordLen {
		t.Errorf("RecordLen = %d, want %d", got, flowRecordLen)
	}
}

func TestExporterCollectorRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	exp := NewExporter(&buf, 42)
	want := make([]FlowRecord, 100)
	for i := range want {
		want[i] = *sampleRecord(uint32(i))
		if err := exp.Export(&want[i], 1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Flush(1000); err != nil {
		t.Fatal(err)
	}
	if exp.Sequence() != 100 {
		t.Errorf("sequence = %d, want 100", exp.Sequence())
	}

	col := NewCollector()
	var got []FlowRecord
	err := col.ReadStream(&buf, func(domain uint32, rec FlowRecord) {
		if domain != 42 {
			t.Errorf("domain = %d, want 42", domain)
		}
		got = append(got, rec)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	msgs, recs, lost := col.Stats()
	if recs != 100 || lost != 0 {
		t.Errorf("stats: msgs=%d recs=%d lost=%d", msgs, recs, lost)
	}
	if msgs < 2 {
		t.Errorf("100 records should span multiple messages under the MTU cap, got %d", msgs)
	}
}

func TestMessagesRespectSizeCap(t *testing.T) {
	var msgs [][]byte
	w := writerFunc(func(p []byte) (int, error) {
		msgs = append(msgs, append([]byte(nil), p...))
		return len(p), nil
	})
	exp := NewExporter(w, 1)
	for i := 0; i < 500; i++ {
		if err := exp.Export(sampleRecord(uint32(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	exp.Flush(0)
	for i, m := range msgs {
		if len(m) > maxMessageLen {
			t.Errorf("message %d is %d bytes, exceeds cap %d", i, len(m), maxMessageLen)
		}
		if got := WireLen(m); got != len(m) {
			t.Errorf("message %d: header length %d != actual %d", i, got, len(m))
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestCollectorDetectsLoss(t *testing.T) {
	var msgs [][]byte
	w := writerFunc(func(p []byte) (int, error) {
		msgs = append(msgs, append([]byte(nil), p...))
		return len(p), nil
	})
	exp := NewExporter(w, 9)
	for i := 0; i < 400; i++ {
		exp.Export(sampleRecord(uint32(i)), 0)
	}
	exp.Flush(0)
	if len(msgs) < 3 {
		t.Skip("need at least 3 messages to drop the middle one")
	}
	col := NewCollector()
	n := 0
	// Drop the second message to create a sequence gap. Templates are
	// carried in message 0, so decoding still works.
	for i, m := range msgs {
		if i == 1 {
			continue
		}
		if err := col.HandleMessage(m, func(uint32, FlowRecord) { n++ }); err != nil {
			t.Fatal(err)
		}
	}
	_, _, lost := col.Stats()
	if lost == 0 {
		t.Error("dropped message should register as sequence loss")
	}
}

func TestCollectorUnknownTemplate(t *testing.T) {
	// A data set arriving before any template must fail cleanly.
	set := marshalDataSet(FlowTemplateID, [][]byte{sampleRecord(0).Marshal()})
	msg := marshalMessage(0, 0, 5, [][]byte{set})
	col := NewCollector()
	if err := col.HandleMessage(msg, func(uint32, FlowRecord) {}); err == nil {
		t.Error("data without template should error")
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	msg := marshalMessage(0, 0, 1, nil)
	msg[0], msg[1] = 0, 9 // NetFlow v9, not IPFIX
	if _, err := Decode(msg, map[uint16]Template{}); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	var buf bytes.Buffer
	exp := NewExporter(&buf, 1)
	exp.Export(sampleRecord(1), 0)
	exp.Flush(0)
	msg := buf.Bytes()
	for cut := 1; cut < len(msg); cut += 11 {
		_, err := Decode(msg[:cut], map[uint16]Template{})
		if err == nil && cut < msgHeaderLen {
			t.Errorf("truncation at %d decoded", cut)
		}
	}
}

func TestTemplatePeriodicResend(t *testing.T) {
	var msgs [][]byte
	w := writerFunc(func(p []byte) (int, error) {
		msgs = append(msgs, append([]byte(nil), p...))
		return len(p), nil
	})
	exp := NewExporter(w, 1)
	for m := 0; m < templateResendEvery+1; m++ {
		for i := 0; i < 40; i++ { // enough to force one flush per batch
			exp.Export(sampleRecord(uint32(i)), 0)
		}
		exp.Flush(0)
	}
	// A collector that starts listening after the first message must
	// eventually recover once the template is re-announced.
	col := NewCollector()
	recovered := 0
	for _, m := range msgs[1:] {
		if err := col.HandleMessage(m, func(uint32, FlowRecord) { recovered++ }); err == nil && recovered > 0 {
			break
		}
	}
	if recovered == 0 {
		t.Error("late-joining collector never recovered a template")
	}
}

func TestSamplerDisabled(t *testing.T) {
	s := NewSampler(1, 1)
	o, p, ok := s.Sample(1000, 10)
	if !ok || o != 1000 || p != 10 {
		t.Errorf("interval 1 should pass through, got %d %d %v", o, p, ok)
	}
}

func TestSamplerUnbiased(t *testing.T) {
	s := NewSampler(4096, 99)
	const trials = 3000
	const octets, packets = 1 << 24, 40960 // 10 expected samples per flow
	var sum float64
	missed := 0
	for i := 0; i < trials; i++ {
		o, _, ok := s.Sample(octets, packets)
		if !ok {
			missed++
			continue
		}
		sum += float64(o)
	}
	mean := sum / trials
	if math.Abs(mean-octets)/octets > 0.05 {
		t.Errorf("sampling biased: mean %.0f vs true %d", mean, octets)
	}
	if missed > trials/100 {
		t.Errorf("flow with 10 expected samples missed too often: %d/%d", missed, trials)
	}
}

func TestSamplerMissesSmallFlows(t *testing.T) {
	s := NewSampler(4096, 5)
	missed := 0
	for i := 0; i < 1000; i++ {
		if _, _, ok := s.Sample(1500, 1); !ok {
			missed++
		}
	}
	if missed < 900 {
		t.Errorf("single-packet flows should nearly always be missed at 1/4096, missed %d/1000", missed)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, lambda := range []float64{0.5, 5, 50, 500} {
		var sum, sum2 float64
		const n = 20000
		for i := 0; i < n; i++ {
			v := float64(poisson(rng, lambda))
			sum += v
			sum2 += v * v
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		if math.Abs(mean-lambda)/lambda > 0.05 {
			t.Errorf("lambda=%v: mean %.2f", lambda, mean)
		}
		if math.Abs(variance-lambda)/lambda > 0.15 {
			t.Errorf("lambda=%v: variance %.2f", lambda, variance)
		}
	}
}
