package ipfix

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tipsy/internal/obsv"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// splitFrames cuts an exporter byte stream into framed messages.
func splitFrames(t *testing.T, stream []byte) [][]byte {
	t.Helper()
	var frames [][]byte
	for off := 0; off < len(stream); {
		n := WireLen(stream[off:])
		if n <= 0 || off+n > len(stream) {
			t.Fatalf("bad frame at offset %d", off)
		}
		frames = append(frames, stream[off:off+n])
		off += n
	}
	return frames
}

// TestMetricsGolden locks in the /metrics text exposition for a fully
// deterministic collector run that exercises every counter class:
// clean delivery, a sequence gap, a reordered refill, and a
// quarantined message. The registry's sorted iteration order is what
// makes this goldenable at all.
//
// Regenerate with: go test ./internal/ipfix -run TestMetricsGolden -update
func TestMetricsGolden(t *testing.T) {
	reg := obsv.NewRegistry()
	c := NewCollectorOn(reg)

	// A deterministic stream: 4 messages of 5 flow records each.
	var buf bytes.Buffer
	e := NewExporter(&buf, 42)
	for i := 0; i < 20; i++ {
		rec := FlowRecord{
			SrcAddr: 0x0a000000 + uint32(i), DstAddr: 0x0b000001,
			Octets: uint64(1000 + i), Packets: 2, Ingress: 3,
			SrcAS: 64500, StartSecs: uint32(100 + i), EndSecs: uint32(160 + i),
		}
		if err := e.Export(&rec, uint32(1000+i)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%5 == 0 {
			if err := e.Flush(uint32(1000 + i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	frames := splitFrames(t, buf.Bytes())
	if len(frames) != 4 {
		t.Fatalf("got %d frames, want 4", len(frames))
	}

	sink := func(domain uint32, rec FlowRecord) {}
	// Deliver 0, skip 1 (a sequence gap opens), deliver 2 and 3, then
	// deliver 1 late: reordered, and the gap refills.
	for _, i := range []int{0, 2, 3, 1} {
		if err := c.HandleMessage(frames[i], sink); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	// One corrupted message: quarantined, nothing else moves.
	bad := append([]byte(nil), frames[0]...)
	bad[0], bad[1] = 0xff, 0xfe
	if err := c.HandleMessage(bad, sink); err == nil {
		t.Fatal("corrupted message accepted")
	}

	var out bytes.Buffer
	reg.WriteText(&out)

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("metrics text drifted from golden:\n--- got ---\n%s--- want ---\n%s", out.Bytes(), want)
	}

	// Cross-check the golden against the stats decomposition: the net
	// loss visible to callers is lost minus refilled.
	st := c.Stats()
	if st.Lost != 0 {
		t.Errorf("net Lost = %d after full refill, want 0", st.Lost)
	}
	if st.Quarantined != 1 || st.Reordered != 1 {
		t.Errorf("stats = %+v", st)
	}
}
