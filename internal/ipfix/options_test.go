package ipfix

import (
	"bytes"
	"testing"
)

func TestAnnounceSamplingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	exp := NewExporter(&buf, 77)
	if err := exp.AnnounceSampling(4096, 100); err != nil {
		t.Fatal(err)
	}
	// Follow with ordinary flow records on the same stream.
	exp.Export(sampleRecord(1), 100)
	exp.Flush(100)

	col := NewCollector()
	n := 0
	if err := col.ReadStream(&buf, func(domain uint32, rec FlowRecord) { n++ }); err != nil {
		t.Fatal(err)
	}
	if got := col.SamplingInterval(77); got != 4096 {
		t.Errorf("SamplingInterval = %d, want 4096", got)
	}
	if got := col.SamplingInterval(99); got != 0 {
		t.Errorf("unknown domain should report 0, got %d", got)
	}
	if n != 1 {
		t.Errorf("flow records decoded = %d, want 1", n)
	}
	// The options record must not register as loss.
	if st := col.Stats(); st.Lost != 0 {
		t.Errorf("lost = %d after options announcement", st.Lost)
	}
}

func TestOptionsTemplateParse(t *testing.T) {
	set := marshalOptionsTemplateSet(samplingTemplate())
	msg := marshalMessage(0, 0, 5, [][]byte{set})
	tmpl := map[uint16]Template{}
	decoded, err := Decode(msg, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded.Templates) != 1 || decoded.Templates[0].ID != SamplingTemplateID {
		t.Fatalf("options template not registered: %+v", decoded.Templates)
	}
	st := tmpl[SamplingTemplateID]
	if st.RecordLen() != 4 {
		t.Errorf("record length %d, want 4", st.RecordLen())
	}
}
