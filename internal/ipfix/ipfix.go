// Package ipfix implements the IP Flow Information Export protocol
// (RFC 7011) subset used by TIPSY's data collection: message framing,
// template sets, data sets, an exporter with template management and
// sequence numbering, a collector that decodes the byte stream, and
// the random packet sampling process used at the WAN's edge routers
// (the paper samples 1 out of every 4096 packets).
package ipfix

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the IPFIX protocol version number (RFC 7011 §3.1).
const Version = 10

// Wire constants.
const (
	msgHeaderLen = 16
	setHeaderLen = 4
	// SetIDTemplate is the set ID of a template set.
	SetIDTemplate = 2
	// SetIDOptionsTemplate is the set ID of an options template set.
	SetIDOptionsTemplate = 3
	// MinDataSetID is the first set ID usable for data sets.
	MinDataSetID = 256
)

// Information Element identifiers from the IANA IPFIX registry, the
// fields §4.1 of the paper names as important.
const (
	IEOctetDeltaCount   = 1   // 8 bytes
	IEPacketDeltaCount  = 2   // 8 bytes
	IESourceIPv4Address = 8   // 4 bytes
	IEIngressInterface  = 10  // 4 bytes
	IEDestinationIPv4   = 12  // 4 bytes
	IEBgpSourceAsNumber = 16  // 4 bytes
	IEFlowStartSeconds  = 150 // 4 bytes
	IEFlowEndSeconds    = 151 // 4 bytes
	IESamplingInterval  = 34  // 4 bytes
)

// Errors returned by the decoder.
var (
	ErrShortMessage = errors.New("ipfix: truncated message")
	ErrBadVersion   = errors.New("ipfix: unsupported version")
)

// FieldSpec describes one field of a template record.
type FieldSpec struct {
	ID         uint16 // information element identifier
	Length     uint16 // fixed length in bytes (variable-length not used)
	Enterprise uint32 // 0 for IANA IEs
}

// Template is an IPFIX template record.
type Template struct {
	ID     uint16
	Fields []FieldSpec
}

// RecordLen returns the fixed byte length of one data record described
// by the template.
func (t *Template) RecordLen() int {
	n := 0
	for _, f := range t.Fields {
		n += int(f.Length)
	}
	return n
}

// MessageHeader is the decoded 16-byte IPFIX message header.
type MessageHeader struct {
	Length     uint16
	ExportTime uint32 // seconds; the substrate uses simulated seconds
	Sequence   uint32 // data records sent before this message
	DomainID   uint32 // observation domain (per exporting router)
}

// Message is one decoded IPFIX message.
type Message struct {
	Header    MessageHeader
	Templates []Template
	// Records holds raw data records paired with the template that
	// describes them.
	Records []DataRecord
	// Unknown holds data sets that referenced templates the decoder
	// does not know — they arrived before their template.
	Unknown []RawSet
}

// DataRecord is one raw data record with its template.
type DataRecord struct {
	TemplateID uint16
	Data       []byte
}

// RawSet is a data set whose template the decoder has not seen yet.
// Over an unreliable transport a data set legitimately overtakes the
// template set describing it, so the decoder hands the raw body back
// instead of failing; the collector buffers it until the template
// arrives (RFC 7011 §8 template management).
type RawSet struct {
	SetID uint16
	Body  []byte
}

// marshalMessage frames a full IPFIX message from pre-encoded sets.
func marshalMessage(exportTime, seq, domain uint32, sets [][]byte) []byte {
	total := msgHeaderLen
	for _, s := range sets {
		total += len(s)
	}
	out := make([]byte, 0, total)
	out = binary.BigEndian.AppendUint16(out, Version)
	out = binary.BigEndian.AppendUint16(out, uint16(total))
	out = binary.BigEndian.AppendUint32(out, exportTime)
	out = binary.BigEndian.AppendUint32(out, seq)
	out = binary.BigEndian.AppendUint32(out, domain)
	for _, s := range sets {
		out = append(out, s...)
	}
	return out
}

// marshalTemplateSet encodes a template set containing the given
// templates.
func marshalTemplateSet(templates []Template) []byte {
	body := make([]byte, 0, 64)
	for _, t := range templates {
		body = binary.BigEndian.AppendUint16(body, t.ID)
		body = binary.BigEndian.AppendUint16(body, uint16(len(t.Fields)))
		for _, f := range t.Fields {
			id := f.ID
			if f.Enterprise != 0 {
				id |= 0x8000
			}
			body = binary.BigEndian.AppendUint16(body, id)
			body = binary.BigEndian.AppendUint16(body, f.Length)
			if f.Enterprise != 0 {
				body = binary.BigEndian.AppendUint32(body, f.Enterprise)
			}
		}
	}
	set := make([]byte, 0, setHeaderLen+len(body))
	set = binary.BigEndian.AppendUint16(set, SetIDTemplate)
	set = binary.BigEndian.AppendUint16(set, uint16(setHeaderLen+len(body)))
	return append(set, body...)
}

// marshalDataSet encodes a data set of fixed-size records.
func marshalDataSet(templateID uint16, records [][]byte) []byte {
	n := setHeaderLen
	for _, r := range records {
		n += len(r)
	}
	set := make([]byte, 0, n)
	set = binary.BigEndian.AppendUint16(set, templateID)
	set = binary.BigEndian.AppendUint16(set, uint16(n))
	for _, r := range records {
		set = append(set, r...)
	}
	return set
}

// Decode parses one IPFIX message. templates resolves previously seen
// template IDs for this observation domain and is updated with any
// templates carried in the message (RFC 7011 §8 template management).
//
// Decode is the reference slow path: it allocates a fresh Message and
// re-walks template metadata per set. The collector's hot path uses
// DecodeInto with a compiled TemplateTable instead; the differential
// harness in differential_test.go holds the two bit-for-bit equal.
func Decode(buf []byte, templates map[uint16]Template) (*Message, error) {
	if templates == nil {
		// A caller with no template state (one-shot decode) still
		// learns templates for the duration of this message, so data
		// sets following their template in the same message decode.
		templates = make(map[uint16]Template)
	}
	if len(buf) < msgHeaderLen {
		return nil, ErrShortMessage
	}
	if binary.BigEndian.Uint16(buf[0:2]) != Version {
		return nil, ErrBadVersion
	}
	msg := &Message{Header: MessageHeader{
		Length:     binary.BigEndian.Uint16(buf[2:4]),
		ExportTime: binary.BigEndian.Uint32(buf[4:8]),
		Sequence:   binary.BigEndian.Uint32(buf[8:12]),
		DomainID:   binary.BigEndian.Uint32(buf[12:16]),
	}}
	if int(msg.Header.Length) > len(buf) || msg.Header.Length < msgHeaderLen {
		return nil, ErrShortMessage
	}
	rest := buf[msgHeaderLen:msg.Header.Length]
	for len(rest) > 0 {
		if len(rest) < setHeaderLen {
			return nil, ErrShortMessage
		}
		setID := binary.BigEndian.Uint16(rest[0:2])
		setLen := int(binary.BigEndian.Uint16(rest[2:4]))
		if setLen < setHeaderLen || setLen > len(rest) {
			return nil, ErrShortMessage
		}
		body := rest[setHeaderLen:setLen]
		switch {
		case setID == SetIDTemplate:
			ts, err := parseTemplates(body)
			if err != nil {
				return nil, err
			}
			for _, t := range ts {
				templates[t.ID] = t
				msg.Templates = append(msg.Templates, t)
			}
		case setID == SetIDOptionsTemplate:
			ts, err := parseOptionsTemplates(body)
			if err != nil {
				return nil, err
			}
			for _, t := range ts {
				templates[t.ID] = t
				msg.Templates = append(msg.Templates, t)
			}
		case setID >= MinDataSetID:
			t, ok := templates[setID]
			if !ok {
				msg.Unknown = append(msg.Unknown, RawSet{SetID: setID, Body: body})
				break
			}
			rl := t.RecordLen()
			if rl == 0 {
				return nil, fmt.Errorf("ipfix: zero-length template %d", setID)
			}
			for len(body) >= rl {
				msg.Records = append(msg.Records, DataRecord{
					TemplateID: setID,
					Data:       body[:rl],
				})
				body = body[rl:]
			}
			// Remaining bytes shorter than a record are padding
			// (RFC 7011 §3.3.1).
		default:
			// Reserved sets are skipped.
		}
		rest = rest[setLen:]
	}
	return msg, nil
}

func parseTemplates(body []byte) ([]Template, error) {
	var out []Template
	for len(body) > 0 {
		if len(body) < 4 {
			return nil, ErrShortMessage
		}
		t := Template{ID: binary.BigEndian.Uint16(body[0:2])}
		count := int(binary.BigEndian.Uint16(body[2:4]))
		body = body[4:]
		for i := 0; i < count; i++ {
			if len(body) < 4 {
				return nil, ErrShortMessage
			}
			f := FieldSpec{
				ID:     binary.BigEndian.Uint16(body[0:2]) & 0x7fff,
				Length: binary.BigEndian.Uint16(body[2:4]),
			}
			enterprise := body[0]&0x80 != 0
			body = body[4:]
			if enterprise {
				if len(body) < 4 {
					return nil, ErrShortMessage
				}
				f.Enterprise = binary.BigEndian.Uint32(body[0:4])
				body = body[4:]
			}
			t.Fields = append(t.Fields, f)
		}
		out = append(out, t)
	}
	return out, nil
}

// parseOptionsTemplates decodes an options template set body
// (RFC 7011 §3.4.2.2): template ID, total field count, scope field
// count, then the field specifiers. Scope and non-scope fields decode
// identically for fixed-length records, so the distinction is not
// retained.
func parseOptionsTemplates(body []byte) ([]Template, error) {
	var out []Template
	for len(body) > 0 {
		if len(body) < 6 {
			return nil, ErrShortMessage
		}
		t := Template{ID: binary.BigEndian.Uint16(body[0:2])}
		count := int(binary.BigEndian.Uint16(body[2:4]))
		body = body[6:] // skip the scope field count
		for i := 0; i < count; i++ {
			if len(body) < 4 {
				return nil, ErrShortMessage
			}
			t.Fields = append(t.Fields, FieldSpec{
				ID:     binary.BigEndian.Uint16(body[0:2]) & 0x7fff,
				Length: binary.BigEndian.Uint16(body[2:4]),
			})
			body = body[4:]
		}
		out = append(out, t)
	}
	return out, nil
}

// WireLen reports the framed length of the next IPFIX message in buf,
// or 0 if the header is incomplete or the version is wrong.
func WireLen(buf []byte) int {
	if len(buf) < 4 || binary.BigEndian.Uint16(buf[0:2]) != Version {
		return 0
	}
	return int(binary.BigEndian.Uint16(buf[2:4]))
}
