package ipfix

import (
	"sync"
	"testing"
)

// exportStream renders n sampled records for one observation domain
// into the framed messages its exporter would emit.
func exportStream(t *testing.T, domain uint32, n int) [][]byte {
	t.Helper()
	var msgs [][]byte
	w := writerFunc(func(p []byte) (int, error) {
		msgs = append(msgs, append([]byte(nil), p...))
		return len(p), nil
	})
	exp := NewExporter(w, domain)
	for i := 0; i < n; i++ {
		if err := exp.Export(sampleRecord(uint32(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Flush(0); err != nil {
		t.Fatal(err)
	}
	return msgs
}

// TestCollectorConcurrentDomainsMatchSerial hammers HandleMessage from
// one goroutine per observation domain — the deployment shape of a
// collector fronting many edge routers — and requires per-domain
// record counts and the global counters to match a serial run over the
// same streams. Under -race this also proves the collector's internal
// locking is sound.
func TestCollectorConcurrentDomainsMatchSerial(t *testing.T) {
	const domains, perDomain = 8, 300
	streams := make([][][]byte, domains)
	for d := 0; d < domains; d++ {
		streams[d] = exportStream(t, uint32(100+d), perDomain)
	}

	serial := NewCollector()
	serialCounts := make([]int, domains)
	for d, msgs := range streams {
		for _, m := range msgs {
			if err := serial.HandleMessage(m, func(uint32, FlowRecord) { serialCounts[d]++ }); err != nil {
				t.Fatal(err)
			}
		}
	}

	conc := NewCollector()
	concCounts := make([]int, domains)
	var wg sync.WaitGroup
	errs := make(chan error, domains)
	for d := 0; d < domains; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for _, m := range streams[d] {
				// Per-domain message order is preserved, as a TCP
				// transport would; only cross-domain order interleaves.
				if err := conc.HandleMessage(m, func(uint32, FlowRecord) { concCounts[d]++ }); err != nil {
					errs <- err
					return
				}
			}
		}(d)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for d := 0; d < domains; d++ {
		if serialCounts[d] != perDomain {
			t.Fatalf("serial run domain %d decoded %d of %d records", d, serialCounts[d], perDomain)
		}
		if concCounts[d] != serialCounts[d] {
			t.Errorf("domain %d: concurrent decoded %d records, serial %d", d, concCounts[d], serialCounts[d])
		}
	}
	// Sequence accounting is per-domain, so global counters must not
	// depend on cross-domain interleaving.
	if ss, cs := serial.Stats(), conc.Stats(); ss != cs {
		t.Errorf("stats diverge:\n serial     %+v\n concurrent %+v", ss, cs)
	}
}
