package ipfix

import (
	"encoding/binary"
	"errors"
	"slices"
	"sync"
)

// This file is the template-compiled decode path. The classic Decode
// re-interprets template field specifiers record by record; here the
// interpretation happens once, at template registration: each template
// compiles to a flat (offset, length, destination) op table, and the
// per-record work collapses to a handful of bounds-checked loads. The
// DecodeInto entry point appends into caller-owned message buffers so
// steady-state decode (data-only messages, templates already learned)
// performs zero heap allocations per record.

// errZeroLenTemplate mirrors Decode's zero-length-template failure
// without the fmt.Errorf interface boxing on the hot path.
var errZeroLenTemplate = errors.New("ipfix: zero-length template")

// fieldKind selects the FlowRecord field a template field feeds.
type fieldKind uint8

const (
	kindSrcAddr fieldKind = iota
	kindDstAddr
	kindOctets
	kindPackets
	kindIngress
	kindSrcAS
	kindStart
	kindEnd
)

// flowOp is one compiled field decoder: read n big-endian bytes at
// offset off and store them into the field selected by kind.
type flowOp struct {
	off  uint16
	n    uint16
	kind fieldKind
}

// CompiledTemplate pairs a template with its precompiled decode plan.
type CompiledTemplate struct {
	tmpl   Template
	recLen int
	ops    []flowOp
	// std marks the canonical FlowTemplate layout, which decodes via
	// fixed offsets with no op-table walk at all.
	std bool
}

// Template returns the template this plan was compiled from.
func (ct *CompiledTemplate) Template() Template { return ct.tmpl }

// RecordLen returns the fixed byte length of one data record.
func (ct *CompiledTemplate) RecordLen() int { return ct.recLen }

// kindForIE maps an IANA information element to the FlowRecord field
// it feeds; ok is false for elements the flow schema does not carry.
func kindForIE(id uint16) (fieldKind, bool) {
	switch id {
	case IESourceIPv4Address:
		return kindSrcAddr, true
	case IEDestinationIPv4:
		return kindDstAddr, true
	case IEOctetDeltaCount:
		return kindOctets, true
	case IEPacketDeltaCount:
		return kindPackets, true
	case IEIngressInterface:
		return kindIngress, true
	case IEBgpSourceAsNumber:
		return kindSrcAS, true
	case IEFlowStartSeconds:
		return kindStart, true
	case IEFlowEndSeconds:
		return kindEnd, true
	}
	return 0, false
}

// compileTemplate builds the decode plan: one pass over the field
// specifiers accumulating offsets, keeping an op only for the fields
// the flow schema consumes (enterprise-specific and unknown IANA
// fields are skipped but still advance the offset).
func compileTemplate(t Template) *CompiledTemplate {
	ct := &CompiledTemplate{tmpl: t, recLen: t.RecordLen()}
	ops := make([]flowOp, len(t.Fields))
	w := 0
	off := 0
	for _, f := range t.Fields {
		if f.Enterprise == 0 {
			if kind, ok := kindForIE(f.ID); ok {
				ops[w].off = uint16(off)
				ops[w].n = f.Length
				ops[w].kind = kind
				w++
			}
		}
		off += int(f.Length)
	}
	ct.ops = ops[:w]
	ct.std = isStdFlowLayout(t)
	return ct
}

// isStdFlowLayout reports whether t is field-for-field the canonical
// FlowTemplate, enabling the fixed-offset fast path.
func isStdFlowLayout(t Template) bool {
	std := FlowTemplate()
	if len(t.Fields) != len(std.Fields) {
		return false
	}
	for i, f := range t.Fields {
		if f != std.Fields[i] {
			return false
		}
	}
	return true
}

// beTail reads up to the last 8 bytes of b as a big-endian integer —
// the reduced-size encoding rule (RFC 7011 §6.2): the value is
// right-aligned, so an oversized field keeps its least-significant
// bytes.
func beTail(b []byte) uint64 {
	if len(b) > 8 {
		b = b[len(b)-8:]
	}
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v
}

// DecodeFlow decodes one data record described by this template into
// r, returning false when the record is shorter than the template's
// record length (the caller quarantines). The standard layout decodes
// with fixed offsets; other layouts walk the compiled op table.
func (ct *CompiledTemplate) DecodeFlow(data []byte, r *FlowRecord) bool {
	if ct.recLen == 0 || len(data) < ct.recLen {
		return false
	}
	if ct.std {
		r.SrcAddr = binary.BigEndian.Uint32(data[0:4])
		r.DstAddr = binary.BigEndian.Uint32(data[4:8])
		r.Octets = binary.BigEndian.Uint64(data[8:16])
		r.Packets = binary.BigEndian.Uint64(data[16:24])
		r.Ingress = binary.BigEndian.Uint32(data[24:28])
		r.SrcAS = binary.BigEndian.Uint32(data[28:32])
		r.StartSecs = binary.BigEndian.Uint32(data[32:36])
		r.EndSecs = binary.BigEndian.Uint32(data[36:40])
		return true
	}
	*r = FlowRecord{}
	for _, op := range ct.ops {
		v := beTail(data[op.off : int(op.off)+int(op.n)])
		switch op.kind {
		case kindSrcAddr:
			r.SrcAddr = uint32(v)
		case kindDstAddr:
			r.DstAddr = uint32(v)
		case kindOctets:
			r.Octets = v
		case kindPackets:
			r.Packets = v
		case kindIngress:
			r.Ingress = uint32(v)
		case kindSrcAS:
			r.SrcAS = uint32(v)
		case kindStart:
			r.StartSecs = uint32(v)
		case kindEnd:
			r.EndSecs = uint32(v)
		}
	}
	return true
}

// decodeFlowReference is the pre-compilation reference decoder: it
// re-interprets the template's field specifiers with a per-field
// switch on every record — exactly the work compileTemplate hoists to
// registration time. It is retained as the oracle for the
// differential harness and the fuzz cross-check; the compiled path
// must match it bit for bit on every input.
func decodeFlowReference(t Template, data []byte, r *FlowRecord) bool {
	rl := t.RecordLen()
	if rl == 0 || len(data) < rl {
		return false
	}
	*r = FlowRecord{}
	off := 0
	for _, f := range t.Fields {
		n := int(f.Length)
		val := data[off : off+n]
		if f.Enterprise == 0 {
			switch f.ID {
			case IESourceIPv4Address:
				r.SrcAddr = uint32(beTail(val))
			case IEDestinationIPv4:
				r.DstAddr = uint32(beTail(val))
			case IEOctetDeltaCount:
				r.Octets = beTail(val)
			case IEPacketDeltaCount:
				r.Packets = beTail(val)
			case IEIngressInterface:
				r.Ingress = uint32(beTail(val))
			case IEBgpSourceAsNumber:
				r.SrcAS = uint32(beTail(val))
			case IEFlowStartSeconds:
				r.StartSecs = uint32(beTail(val))
			case IEFlowEndSeconds:
				r.EndSecs = uint32(beTail(val))
			}
		}
		off += n
	}
	return true
}

// TemplateTable holds the compiled templates of one observation
// domain. Not safe for concurrent use; the collector serializes
// access under its own lock.
type TemplateTable struct {
	byID map[uint16]*CompiledTemplate
}

// NewTemplateTable returns an empty table.
func NewTemplateTable() *TemplateTable {
	return &TemplateTable{byID: make(map[uint16]*CompiledTemplate)}
}

// Register compiles t and installs it, replacing any previous
// template with the same ID (RFC 7011 §8).
func (tt *TemplateTable) Register(t Template) *CompiledTemplate {
	ct := compileTemplate(t)
	tt.byID[t.ID] = ct
	return ct
}

// Get returns the compiled template for id, or nil.
func (tt *TemplateTable) Get(id uint16) *CompiledTemplate { return tt.byID[id] }

// Len reports how many templates the table holds.
func (tt *TemplateTable) Len() int { return len(tt.byID) }

// messagePool recycles Message values so per-message decode state
// costs nothing in steady state. PutMessage clears the element
// storage (record data aliases network buffers; holding it would pin
// those buffers) but keeps the backing arrays.
var messagePool = sync.Pool{New: func() any { return new(Message) }}

// GetMessage takes a reusable Message from the pool.
func GetMessage() *Message { return messagePool.Get().(*Message) }

// PutMessage returns m to the pool. The caller must not retain m or
// any slice of it.
func PutMessage(m *Message) {
	clear(m.Templates)
	clear(m.Records)
	clear(m.Unknown)
	m.Templates = m.Templates[:0]
	m.Records = m.Records[:0]
	m.Unknown = m.Unknown[:0]
	messagePool.Put(m)
}

// DecodeInto parses one IPFIX message into msg, reusing msg's backing
// arrays; record Data and Unknown bodies alias buf and are only valid
// until the caller reuses it. Templates carried by the message are
// compiled into tt. A nil tt decodes one-shot, learning templates for
// the duration of the message only. The error contract matches
// Decode.
//
//tipsy:hotpath
func DecodeInto(msg *Message, buf []byte, tt *TemplateTable) error {
	msg.Templates = msg.Templates[:0]
	msg.Records = msg.Records[:0]
	msg.Unknown = msg.Unknown[:0]
	if tt == nil {
		tt = NewTemplateTable()
	}
	if len(buf) < msgHeaderLen {
		return ErrShortMessage
	}
	if binary.BigEndian.Uint16(buf[0:2]) != Version {
		return ErrBadVersion
	}
	msg.Header.Length = binary.BigEndian.Uint16(buf[2:4])
	msg.Header.ExportTime = binary.BigEndian.Uint32(buf[4:8])
	msg.Header.Sequence = binary.BigEndian.Uint32(buf[8:12])
	msg.Header.DomainID = binary.BigEndian.Uint32(buf[12:16])
	if int(msg.Header.Length) > len(buf) || msg.Header.Length < msgHeaderLen {
		return ErrShortMessage
	}
	rest := buf[msgHeaderLen:msg.Header.Length]
	for len(rest) > 0 {
		if len(rest) < setHeaderLen {
			return ErrShortMessage
		}
		setID := binary.BigEndian.Uint16(rest[0:2])
		setLen := int(binary.BigEndian.Uint16(rest[2:4]))
		if setLen < setHeaderLen || setLen > len(rest) {
			return ErrShortMessage
		}
		body := rest[setHeaderLen:setLen]
		switch {
		case setID == SetIDTemplate:
			var err error
			msg.Templates, err = tt.registerSet(msg.Templates, body, false)
			if err != nil {
				return err
			}
		case setID == SetIDOptionsTemplate:
			var err error
			msg.Templates, err = tt.registerSet(msg.Templates, body, true)
			if err != nil {
				return err
			}
		case setID >= MinDataSetID:
			ct := tt.byID[setID]
			if ct == nil {
				msg.Unknown = append(msg.Unknown, RawSet{SetID: setID, Body: body})
				break
			}
			if ct.recLen == 0 {
				return errZeroLenTemplate
			}
			// Fixed-size records; a remainder shorter than one record
			// is padding (RFC 7011 §3.3.1). Grow once, fill by index —
			// no per-record allocation once the buffer is warm.
			rl := ct.recLen
			n := len(body) / rl
			base := len(msg.Records)
			msg.Records = slices.Grow(msg.Records, n)[:base+n]
			for i := 0; i < n; i++ {
				msg.Records[base+i].TemplateID = setID
				msg.Records[base+i].Data = body[i*rl : (i+1)*rl]
			}
		default:
			// Reserved sets are skipped.
		}
		rest = rest[setLen:]
	}
	return nil
}

// registerSet parses one (options) template set body, compiles and
// registers each template, and appends the parsed templates to dst.
// The wire grammar matches parseTemplates / parseOptionsTemplates
// exactly, including the quirk that options-template parsing does not
// consume enterprise numbers. Parsing is two-pass — validate and
// count, then fill — so a malformed set registers nothing and the
// steady-state path stays free of per-field allocation.
func (tt *TemplateTable) registerSet(dst []Template, body []byte, options bool) ([]Template, error) {
	nTemplates, nFields, err := scanTemplateSet(body, options)
	if err != nil {
		return dst, err
	}
	var fields []FieldSpec // allocated only if a template is new or changed
	base := len(dst)
	dst = slices.Grow(dst, nTemplates)[:base+nTemplates]
	hdr := 4
	if options {
		hdr = 6
	}
	fw := 0
	for ti := 0; ti < nTemplates; ti++ {
		id := binary.BigEndian.Uint16(body[0:2])
		count := int(binary.BigEndian.Uint16(body[2:4]))
		body = body[hdr:]
		// Exporters refresh templates periodically (RFC 7011 §8.1); a
		// re-announcement identical to the registered template reuses
		// the existing compilation and allocates nothing.
		if ct := tt.byID[id]; ct != nil && len(ct.tmpl.Fields) == count {
			if n, same := matchFieldSpecs(ct.tmpl.Fields, body, options); same {
				body = body[n:]
				dst[base+ti] = ct.tmpl
				continue
			}
		}
		if fields == nil {
			fields = make([]FieldSpec, nFields)
		}
		f0 := fw
		for i := 0; i < count; i++ {
			fields[fw].ID = binary.BigEndian.Uint16(body[0:2]) & 0x7fff
			fields[fw].Length = binary.BigEndian.Uint16(body[2:4])
			enterprise := !options && body[0]&0x80 != 0
			body = body[4:]
			if enterprise {
				fields[fw].Enterprise = binary.BigEndian.Uint32(body[0:4])
				body = body[4:]
			}
			fw++
		}
		dst[base+ti].ID = id
		if fw > f0 {
			dst[base+ti].Fields = fields[f0:fw:fw]
		} else {
			// Keep nil (not empty) so the parsed template compares
			// equal to the reference parser's output.
			dst[base+ti].Fields = nil
		}
		tt.Register(dst[base+ti])
	}
	return dst, nil
}

// matchFieldSpecs reports whether the wire field specifiers at the
// start of body encode exactly specs, and how many bytes they span.
// The caller has already validated the body (scanTemplateSet) and
// matched the field count.
func matchFieldSpecs(specs []FieldSpec, body []byte, options bool) (n int, same bool) {
	for i := range specs {
		id := binary.BigEndian.Uint16(body[n:]) & 0x7fff
		length := binary.BigEndian.Uint16(body[n+2:])
		enterprise := uint32(0)
		wantEnt := !options && body[n]&0x80 != 0
		n += 4
		if wantEnt {
			enterprise = binary.BigEndian.Uint32(body[n:])
			n += 4
		}
		if specs[i].ID != id || specs[i].Length != length || specs[i].Enterprise != enterprise {
			return 0, false
		}
	}
	return n, true
}

// scanTemplateSet validates the set body and counts templates and
// total field specifiers, without allocating or mutating anything.
func scanTemplateSet(body []byte, options bool) (nTemplates, nFields int, err error) {
	hdr := 4
	if options {
		hdr = 6
	}
	for len(body) > 0 {
		if len(body) < hdr {
			return 0, 0, ErrShortMessage
		}
		count := int(binary.BigEndian.Uint16(body[2:4]))
		body = body[hdr:]
		for i := 0; i < count; i++ {
			if len(body) < 4 {
				return 0, 0, ErrShortMessage
			}
			enterprise := !options && body[0]&0x80 != 0
			body = body[4:]
			if enterprise {
				if len(body) < 4 {
					return 0, 0, ErrShortMessage
				}
				body = body[4:]
			}
			nFields++
		}
		nTemplates++
	}
	return nTemplates, nFields, nil
}
