package analysis

import (
	"strings"
	"testing"

	"tipsy/internal/bgp"
	"tipsy/internal/core"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/wan"
)

// metroID looks a metro up by name.
func metroID(t *testing.T, db *geo.DB, name string) geo.MetroID {
	t.Helper()
	for _, m := range db.All() {
		if m.Name == name {
			return m.ID
		}
	}
	t.Fatalf("metro %q missing", name)
	return 0
}

func setup(t *testing.T) (*wan.Table, *geo.DB, *core.Historical, features.FlowFeatures, geo.MetroID, geo.MetroID) {
	t.Helper()
	metros := geo.World()
	seattle := metroID(t, metros, "Seattle")
	tokyo := metroID(t, metros, "Tokyo")
	dir := wan.NewTable([]wan.Link{
		{ID: 1, Router: "sea-er1", Metro: seattle, PeerAS: 10, Capacity: 100e9},
		{ID: 2, Router: "tok-er1", Metro: tokyo, PeerAS: 20, Capacity: 100e9},
		{ID: 3, Router: "sea-er2", Metro: seattle, PeerAS: 10, Capacity: 100e9},
	})
	// A US flow that always arrives in Seattle.
	flow := features.FlowFeatures{AS: 10, Prefix: 0x0b000100, Loc: seattle, Region: 1, Type: 1}
	train := []features.Record{
		{Hour: 0, Flow: flow, Link: 1, Bytes: 1e9},
		{Hour: 1, Flow: flow, Link: 3, Bytes: 2e8},
	}
	model := core.TrainHistorical(features.SetAP, train, core.DefaultHistOpts())
	return dir, metros, model, flow, seattle, tokyo
}

func TestFindSuspiciousFlagsImplausibleArrival(t *testing.T) {
	dir, metros, model, flow, _, _ := setup(t)
	// Observed: the "Seattle" flow shows up in Tokyo with real volume.
	obs := []features.Record{
		{Hour: 100, Flow: flow, Link: 2, Bytes: 5e8},
		{Hour: 100, Flow: flow, Link: 1, Bytes: 1e9}, // normal arrival too
	}
	got := FindSuspicious(model, obs, dir, metros, DefaultSuspiciousOptions())
	if len(got) != 1 {
		t.Fatalf("want exactly the Tokyo arrival flagged, got %+v", got)
	}
	s := got[0]
	if s.Link != 2 || s.Likelihood != 0 {
		t.Errorf("flagged wrong arrival: %+v", s)
	}
	if s.DistanceKm < 5000 {
		t.Errorf("Seattle->Tokyo distance %f km implausible", s.DistanceKm)
	}
	out := FormatSuspicious(got, dir, 5)
	if !strings.Contains(out, "tok-er1") {
		t.Errorf("format missing router: %s", out)
	}
}

func TestFindSuspiciousIgnoresTrickles(t *testing.T) {
	dir, metros, model, flow, _, _ := setup(t)
	obs := []features.Record{{Hour: 100, Flow: flow, Link: 2, Bytes: 10}} // stray packet
	if got := FindSuspicious(model, obs, dir, metros, DefaultSuspiciousOptions()); len(got) != 0 {
		t.Errorf("stray packet flagged: %+v", got)
	}
}

func TestFindSuspiciousIgnoresUnknownTuples(t *testing.T) {
	dir, metros, model, _, seattle, _ := setup(t)
	novel := features.FlowFeatures{AS: 999, Prefix: 0x0b00ff00, Loc: seattle, Region: 1, Type: 1}
	obs := []features.Record{{Hour: 100, Flow: novel, Link: 2, Bytes: 1e9}}
	if got := FindSuspicious(model, obs, dir, metros, DefaultSuspiciousOptions()); len(got) != 0 {
		t.Errorf("novel tuple flagged (new != suspicious): %+v", got)
	}
}

func TestFindSuspiciousGeographicFilter(t *testing.T) {
	dir, metros, model, flow, _, _ := setup(t)
	// Arrival on the parallel Seattle link (same metro) is unlikely by
	// the model but geographically fine — with the distance filter on,
	// it must not be flagged.
	obs := []features.Record{{Hour: 100, Flow: flow, Link: 3, Bytes: 5e8}}
	opts := DefaultSuspiciousOptions()
	opts.MaxLikelihood = 0.5 // link 3 carries ~17% in training: below this
	if got := FindSuspicious(model, obs, dir, metros, opts); len(got) != 0 {
		t.Errorf("same-metro arrival flagged despite distance filter: %+v", got)
	}
	opts.MinDistanceKm = 0
	if got := FindSuspicious(model, obs, dir, metros, opts); len(got) != 1 {
		t.Errorf("with the filter off the unlikely arrival should flag: %+v", got)
	}
}

func TestDePeeringCandidates(t *testing.T) {
	metros := geo.World()
	seattle := metroID(t, metros, "Seattle")
	dir := wan.NewTable([]wan.Link{
		{ID: 1, Router: "a", Metro: seattle, PeerAS: 10},
		{ID: 2, Router: "b", Metro: seattle, PeerAS: 20},
		{ID: 3, Router: "c", Metro: seattle, PeerAS: 30},
	})
	// Flow X rides peer 10 but was also seen on peer 20's link:
	// peer 10 is redirectable. Flow Y exists only on peer 30.
	fx := features.FlowFeatures{AS: 100, Prefix: 0x0b000100, Loc: seattle, Region: 1, Type: 1}
	fy := features.FlowFeatures{AS: 200, Prefix: 0x0b000200, Loc: seattle, Region: 1, Type: 1}
	recs := []features.Record{
		{Hour: 0, Flow: fx, Link: 1, Bytes: 8e8},
		{Hour: 1, Flow: fx, Link: 2, Bytes: 2e8},
		{Hour: 0, Flow: fy, Link: 3, Bytes: 9e8},
	}
	model := core.TrainHistorical(features.SetAP, recs, core.DefaultHistOpts())
	cands := DePeeringCandidates(model, recs, dir, 1.0)
	if len(cands) != 3 {
		t.Fatalf("want 3 peers, got %+v", cands)
	}
	byPeer := map[bgp.ASN]DePeeringCandidate{}
	for _, c := range cands {
		byPeer[c.Peer] = c
	}
	if byPeer[10].Redirectable < 0.99 {
		t.Errorf("peer 10 fully redirectable, got %.2f", byPeer[10].Redirectable)
	}
	if byPeer[30].Redirectable > 0.01 {
		t.Errorf("peer 30 irreplaceable, got %.2f", byPeer[30].Redirectable)
	}
	if cands[len(cands)-1].Peer != 30 {
		t.Errorf("the irreplaceable peer should rank least dispensable: %+v", cands)
	}
}

func TestDePeeringSkipsMajorPeers(t *testing.T) {
	metros := geo.World()
	seattle := metroID(t, metros, "Seattle")
	dir := wan.NewTable([]wan.Link{
		{ID: 1, Metro: seattle, PeerAS: 10},
		{ID: 2, Metro: seattle, PeerAS: 20},
	})
	f := features.FlowFeatures{AS: 100, Prefix: 0x0b000100, Loc: seattle, Region: 1, Type: 1}
	recs := []features.Record{
		{Hour: 0, Flow: f, Link: 1, Bytes: 9e9},
		{Hour: 0, Flow: f, Link: 2, Bytes: 1e8},
	}
	model := core.TrainHistorical(features.SetAP, recs, core.DefaultHistOpts())
	cands := DePeeringCandidates(model, recs, dir, 0.5)
	for _, c := range cands {
		if c.Peer == 10 {
			t.Errorf("peer carrying 99%% of bytes must be skipped: %+v", c)
		}
	}
}
