// Package analysis implements the additional operational uses of
// TIPSY sketched in the paper's conclusions (§8): flagging suspicious
// ingress traffic — flows arriving on peering links where it is
// exceedingly unlikely they would arrive, e.g. spoofed sources that
// claim to be a US national lab yet enter on another continent — and
// identifying de-peering candidates, peers whose links add little
// value because the traffic they carry would be predicted to arrive
// elsewhere anyway.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"tipsy/internal/bgp"
	"tipsy/internal/core"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/wan"
)

// Suspicious is one flagged observation: traffic for a known flow
// tuple arrived on a link the model considers (nearly) impossible.
type Suspicious struct {
	Flow  features.FlowFeatures
	Link  wan.LinkID
	Bytes float64
	// Likelihood is the model's probability mass for this link at
	// the time of observation (0 when the link is absent entirely).
	Likelihood float64
	// DistanceKm is how far the arrival link is from the flow's
	// registered source location — the "national lab arriving
	// overseas" signal.
	DistanceKm float64
}

// SuspiciousOptions tunes detection.
type SuspiciousOptions struct {
	// MaxLikelihood flags arrivals whose predicted probability on the
	// observed link is at or below this value.
	MaxLikelihood float64
	// MinBytes ignores trickles (stray packets are expected and
	// byte-weighting exists to suppress them, §3.3).
	MinBytes float64
	// MinDistanceKm additionally requires the arrival to be
	// geographically implausible. 0 disables the geographic filter.
	MinDistanceKm float64
}

// DefaultSuspiciousOptions returns conservative detection thresholds.
func DefaultSuspiciousOptions() SuspiciousOptions {
	return SuspiciousOptions{MaxLikelihood: 0.001, MinBytes: 1e6, MinDistanceKm: 3000}
}

// FindSuspicious scans observed records against a trained model and
// returns the flagged arrivals, most anomalous (largest, least
// likely) first. Only tuples the model knows can be judged — a flow
// never seen in training is new, not suspicious.
func FindSuspicious(model core.Predictor, recs []features.Record,
	dir wan.Directory, metros *geo.DB, opts SuspiciousOptions) []Suspicious {
	type key struct {
		flow features.FlowFeatures
		link wan.LinkID
	}
	bytes := make(map[key]float64)
	for _, r := range recs {
		bytes[key{r.Flow, r.Link}] += r.Bytes
	}
	var out []Suspicious
	for k, b := range bytes {
		if b < opts.MinBytes {
			continue
		}
		preds := model.Predict(core.Query{Flow: k.flow})
		if len(preds) == 0 {
			continue // unknown tuple: cannot judge
		}
		likelihood := 0.0
		for _, p := range preds {
			if p.Link == k.link {
				likelihood = p.Frac
				break
			}
		}
		if likelihood > opts.MaxLikelihood {
			continue
		}
		dist := 0.0
		if l, ok := dir.Link(k.link); ok && k.flow.Loc != 0 {
			dist = metros.Distance(k.flow.Loc, l.Metro)
		}
		if opts.MinDistanceKm > 0 && dist < opts.MinDistanceKm {
			continue
		}
		out = append(out, Suspicious{
			Flow: k.flow, Link: k.link, Bytes: b,
			Likelihood: likelihood, DistanceKm: dist,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return lessFlowLink(out[i], out[j])
	})
	return out
}

func lessFlowLink(a, b Suspicious) bool {
	if a.Flow.AS != b.Flow.AS {
		return a.Flow.AS < b.Flow.AS
	}
	if a.Flow.Prefix != b.Flow.Prefix {
		return a.Flow.Prefix < b.Flow.Prefix
	}
	return a.Link < b.Link
}

// DePeeringCandidate summarizes one peer AS's value: how much of the
// traffic currently on its links would, per the model, still arrive
// (on other links) if the peering were removed.
type DePeeringCandidate struct {
	Peer  bgp.ASN
	Links int
	// Bytes carried on the peer's links in the analyzed window.
	Bytes float64
	// Redirectable is the fraction of those bytes the model predicts
	// would land on other ASes' links with the peering gone.
	Redirectable float64
}

// DePeeringCandidates ranks peers by how dispensable their links are:
// low traffic and high redirectability means de-peering would save
// operational overhead at little cost (§8). Peers carrying more than
// maxShare of total bytes are skipped outright.
func DePeeringCandidates(model core.Predictor, recs []features.Record,
	dir wan.Directory, maxShare float64) []DePeeringCandidate {
	linkPeer := make(map[wan.LinkID]bgp.ASN)
	peerLinks := make(map[bgp.ASN]map[wan.LinkID]bool)
	for _, id := range dir.Links() {
		l, _ := dir.Link(id)
		linkPeer[id] = l.PeerAS
		if peerLinks[l.PeerAS] == nil {
			peerLinks[l.PeerAS] = map[wan.LinkID]bool{}
		}
		peerLinks[l.PeerAS][id] = true
	}
	var total float64
	peerBytes := make(map[bgp.ASN]float64)
	type key struct {
		flow features.FlowFeatures
		peer bgp.ASN
	}
	flowBytes := make(map[key]float64)
	for _, r := range recs {
		total += r.Bytes
		peer := linkPeer[r.Link]
		peerBytes[peer] += r.Bytes
		flowBytes[key{r.Flow, peer}] += r.Bytes
	}

	redirectable := make(map[bgp.ASN]float64)
	for k, b := range flowBytes {
		mine := peerLinks[k.peer]
		preds := model.Predict(core.Query{
			Flow: k.flow, K: 3,
			Exclude: func(l wan.LinkID) bool { return mine[l] },
		})
		frac := 0.0
		for _, p := range preds {
			frac += p.Frac
		}
		if frac > 1 {
			frac = 1
		}
		redirectable[k.peer] += b * frac
	}

	var out []DePeeringCandidate
	for peer, b := range peerBytes {
		if total > 0 && b/total > maxShare {
			continue
		}
		red := 0.0
		if b > 0 {
			red = redirectable[peer] / b
		}
		out = append(out, DePeeringCandidate{
			Peer: peer, Links: len(peerLinks[peer]), Bytes: b, Redirectable: red,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		// Most dispensable first: high redirectability, low volume.
		si := out[i].Redirectable - out[i].Bytes/(total+1)
		sj := out[j].Redirectable - out[j].Bytes/(total+1)
		if si != sj {
			return si > sj
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

// FormatSuspicious renders flagged arrivals for operators.
func FormatSuspicious(items []Suspicious, dir wan.Directory, limit int) string {
	var b strings.Builder
	b.WriteString("suspicious ingress (candidates for DoS scrubbing):\n")
	if len(items) == 0 {
		b.WriteString("  (none)\n")
		return b.String()
	}
	for i, s := range items {
		if limit > 0 && i >= limit {
			break
		}
		router := "?"
		if l, ok := dir.Link(s.Link); ok {
			router = l.Router
		}
		fmt.Fprintf(&b, "  %v %s/24 -> link %d (%s): %.2e bytes, likelihood %.4f, %.0f km off\n",
			s.Flow.AS, bgp.FormatIP(s.Flow.Prefix), s.Link, router, s.Bytes, s.Likelihood, s.DistanceKm)
	}
	return b.String()
}
