package lint

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file implements the hot-path allocation ratchet. The committed
// file .tipsy-allocbudget.json at the module root records, per hot
// function and per allocation category, how many sites the tree is
// allowed to contain. The hotpath rule fails when a count grows; the
// file is regenerated with `tipsylint -update-budget`, and because
// check.sh diffs the regenerated file against the committed one, a
// count can only ever move by committing the new file — shrinking is
// a reviewed win, growing is a build break.

// BudgetFilename is the ratchet file's name at the module root.
const BudgetFilename = ".tipsy-allocbudget.json"

const budgetComment = "hot-path allocation ratchet: per-function allocation-site counts may shrink, never grow; regenerate with `go run ./cmd/tipsylint -rules hotpath -update-budget ./...`"

// Budget is the parsed ratchet file. Budgets maps function identity
// (see FuncID) to category (see the Cat* constants) to the allowed
// site count.
type Budget struct {
	Version int                       `json:"version"`
	Comment string                    `json:"comment"`
	Budgets map[string]map[string]int `json:"budgets"`
}

// NewBudget returns an empty budget: every count ratchets from zero.
func NewBudget() *Budget {
	return &Budget{Version: 1, Comment: budgetComment, Budgets: map[string]map[string]int{}}
}

// Get returns the allowed count for (function, category); absent
// entries are zero.
func (b *Budget) Get(id, category string) int { return b.Budgets[id][category] }

// LoadBudget reads the ratchet file. A missing file is an empty
// budget, not an error — a fresh tree ratchets from zero.
func LoadBudget(path string) (*Budget, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return NewBudget(), nil
	}
	if err != nil {
		return nil, err
	}
	b := NewBudget()
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Budgets == nil {
		b.Budgets = map[string]map[string]int{}
	}
	return b, nil
}

// BudgetFromReport folds a hot-path analysis into the budget that
// exactly matches the tree.
func BudgetFromReport(rep *HotReport) *Budget {
	b := NewBudget()
	for id, counts := range rep.Counts() {
		b.Budgets[id] = counts
	}
	return b
}

// Marshal renders the budget deterministically — encoding/json sorts
// map keys, and the trailing newline makes -update-budget idempotent
// byte for byte.
func (b *Budget) Marshal() []byte {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		panic(err) // a map[string]map[string]int cannot fail to encode
	}
	return append(out, '\n')
}

// BudgetDelta is one divergence between the committed budget and the
// tree as analyzed.
type BudgetDelta struct {
	ID       string
	Category string
	Budgeted int
	Observed int
	// Kind: "grown" (observed exceeds budget — the ratchet violation),
	// "shrunk" (the tree improved; lock it in), "new" (a hot
	// function/category with no entry), "stale" (an entry whose
	// function is gone or no longer hot). All four fail the gate: the
	// committed file must match the tree exactly.
	Kind string
}

// DiffBudget compares the committed budget against an analysis of the
// tree. pkgLoaded filters the stale check to functions whose package
// was actually analyzed — linting a package subset must not condemn
// entries for packages outside the run; nil means everything was.
func DiffBudget(b *Budget, rep *HotReport, pkgLoaded func(pkgPath string) bool) []BudgetDelta {
	counts := rep.Counts()
	var out []BudgetDelta
	for _, id := range sortedKeySet(b.Budgets) {
		if _, hot := rep.Funcs[id]; !hot {
			if pkgLoaded != nil && !pkgLoaded(funcPkgPath(id)) {
				continue
			}
			for _, cat := range sortedKeySet(b.Budgets[id]) {
				out = append(out, BudgetDelta{ID: id, Category: cat, Budgeted: b.Budgets[id][cat], Kind: "stale"})
			}
			continue
		}
		for _, cat := range sortedKeySet(b.Budgets[id]) {
			bud, obs := b.Budgets[id][cat], counts[id][cat]
			switch {
			case obs > bud:
				out = append(out, BudgetDelta{ID: id, Category: cat, Budgeted: bud, Observed: obs, Kind: "grown"})
			case obs < bud:
				out = append(out, BudgetDelta{ID: id, Category: cat, Budgeted: bud, Observed: obs, Kind: "shrunk"})
			}
		}
	}
	for _, id := range sortedKeySet(counts) {
		for _, cat := range sortedKeySet(counts[id]) {
			if _, ok := b.Budgets[id][cat]; !ok {
				out = append(out, BudgetDelta{ID: id, Category: cat, Observed: counts[id][cat], Kind: "new"})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, c := out[i], out[j]
		if a.ID != c.ID {
			return a.ID < c.ID
		}
		if a.Category != c.Category {
			return a.Category < c.Category
		}
		return a.Kind < c.Kind
	})
	return out
}

// BudgetDiagnostics runs the hot-path analysis over pkgs and renders
// every budget divergence as a diagnostic anchored at the budget file
// itself, so drift that has no source position (stale or shrunk
// entries) still reaches text, JSON, and SARIF output. The deep-rule
// driver cannot carry these — it drops positions outside the loaded
// packages — so the CLI appends them after Run.
func BudgetDiagnostics(pkgs []*Package, path string) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	budget, err := LoadBudget(path)
	if err != nil {
		return nil, err
	}
	loaded := map[string]bool{}
	for _, p := range pkgs {
		if p.Types != nil {
			loaded[p.Types.Path()] = true
		}
	}
	rep := AnalyzeHotpaths(NewProgram(pkgs))
	if len(rep.Roots) == 0 {
		// No annotated root is in the loaded set, so the hot closure is
		// unknowable here: a subset run (say, one package) must not
		// condemn entries as stale just because the roots that make
		// them hot were not loaded. The full-module run in check.sh
		// still diffs everything.
		return nil, nil
	}
	var diags []Diagnostic
	for _, d := range DiffBudget(budget, rep, func(pp string) bool { return loaded[pp] }) {
		var msg string
		switch d.Kind {
		case "grown":
			msg = fmt.Sprintf("allocation budget exceeded: %s %s %d -> %d; the ratchet only shrinks — eliminate the new allocation", d.ID, d.Category, d.Budgeted, d.Observed)
		case "shrunk":
			msg = fmt.Sprintf("allocation budget for %s %s shrank %d -> %d; lock in the win with -update-budget", d.ID, d.Category, d.Budgeted, d.Observed)
		case "new":
			msg = fmt.Sprintf("hot function %s has %d %s site(s) but no budget entry; record it with -update-budget", d.ID, d.Observed, d.Category)
		case "stale":
			msg = fmt.Sprintf("budget entry %s (%s) is stale: the function is gone or no longer hot; drop it with -update-budget", d.ID, d.Category)
		}
		diags = append(diags, Diagnostic{
			Pos:     token.Position{Filename: path, Line: 1, Column: 1},
			Rule:    "hotpath",
			Message: msg,
		})
	}
	return diags, nil
}

// funcPkgPath extracts the import path from a function identity:
// "tipsy/internal/wan.Table.Lookup" -> "tipsy/internal/wan".
func funcPkgPath(id string) string {
	slash := strings.LastIndex(id, "/")
	if dot := strings.Index(id[slash+1:], "."); dot >= 0 {
		return id[:slash+1+dot]
	}
	return id
}

// defaultBudgetPath derives the module root's ratchet file from any
// loaded package: Dir minus the module-relative suffix. In-memory
// fixture packages (Dir ".") resolve to a path that does not exist,
// which LoadBudget treats as the empty budget.
func defaultBudgetPath(prog *Program) string {
	p := prog.Pkgs[0]
	root := p.Dir
	if p.Rel != "." && p.Rel != "" {
		suffix := string(filepath.Separator) + filepath.FromSlash(p.Rel)
		root = strings.TrimSuffix(p.Dir, suffix)
	}
	return filepath.Join(root, BudgetFilename)
}

// sortedKeySet returns m's keys sorted.
func sortedKeySet[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
