package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The guardedby rule is the deep tier's race lint: a GUARDED_BY-style
// static analysis in the spirit of Clang's thread-safety annotations.
// For every struct that carries a sync.Mutex/RWMutex field it walks
// each function's CFG computing which locks are provably held at each
// point (Lock→Unlock spans, defer mu.Unlock() spanning early returns,
// RLock read-only spans, merged by intersection at joins), classifies
// every sibling-field access as inside or outside the critical
// section, and then:
//
//   - infers a guard when a large majority (≥3:1, at least two locked
//     sites) of a field's accesses hold one particular mutex, and
//     flags the minority that do not;
//   - honours explicit annotations: `//tipsy:guardedby mu` on a field
//     pins the guard regardless of the access ratio, and
//     `//tipsy:nolock <reason>` opts a deliberately lock-free field
//     out (atomics that predate sync/atomic types, set-before-start
//     configuration). The reason is mandatory — a bare nolock is void
//     and reported, the same contract as //lint:ignore;
//   - flags writes performed under only an RLock;
//   - treats accesses inside an escaping closure as outside the
//     creating function's critical section (the closure may run after
//     the lock is released — escape.go decides which literals leave);
//   - exempts sync/atomic-typed fields, `&s.f` arguments to
//     sync/atomic calls, self-synchronized field types (sync.*,
//     channels), and constructor bodies — accesses through a value the
//     function itself allocated, recognized by the provenance engine's
//     TagAlloc tags, are pre-publication initialization;
//   - closes over the call graph: an unexported method whose every
//     in-module call site holds the guard on the same receiver counts
//     as locked at entry, so private fooLocked() helpers do not
//     false-positive.

// Guard annotation directives. Both go in the field's doc or trailing
// line comment inside the struct type declaration:
//
//	mu sync.Mutex
//	//tipsy:guardedby mu
//	counts map[key]uint64
//	//tipsy:nolock set before Start and never written afterwards
//	cfg Config
const (
	GuardedByDirective = "//tipsy:guardedby"
	NolockDirective    = "//tipsy:nolock"

	// GuardedBySkipDirective opts one function out of the analysis
	// entirely (the analogue of Clang's NO_THREAD_SAFETY_ANALYSIS).
	// It is for guard disciplines the dataflow cannot see — the
	// canonical case is an atomic multi-shard snapshot that acquires
	// every shard lock in a loop before touching any shard. The
	// reason is mandatory; a bare directive is void and reported.
	GuardedBySkipDirective = "//tipsy:guardedby-skip"
)

// Lock modes, ordered so a write lock subsumes a read lock.
const (
	gbNone = iota
	gbRead
	gbWrite
)

// gbField is one non-mutex field of a guarded struct.
type gbField struct {
	name   string
	pinned string // mutex field named by //tipsy:guardedby; "" = infer
	nolock bool   // //tipsy:nolock with a reason: deliberately lock-free
	exempt bool   // sync/atomic, sync.*, or channel typed: self-synchronized
}

// gbType is one struct with at least one mutex field.
type gbType struct {
	id      string          // stable "pkgpath.Name"
	mutexes map[string]bool // mutex field name -> is RWMutex
	fields  map[string]*gbField
}

// heldKey identifies one held lock: the mutex identity plus the
// printed holder expression, so s.mu and other.mu stay distinct.
type heldKey struct {
	typ, field, expr string
}

// lockState maps held locks to their mode at one program point.
type lockState map[heldKey]int

func cloneLocks(st lockState) lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// intersectLocks narrows dst to the locks held in both states (a lock
// is only "held" at a join if it is held on every incoming path),
// keeping the weaker mode. Reports whether dst changed.
func intersectLocks(dst, src lockState) bool {
	changed := false
	for k, v := range dst {
		sv, ok := src[k]
		if !ok {
			delete(dst, k)
			changed = true
			continue
		}
		if sv < v {
			dst[k] = sv
			changed = true
		}
	}
	return changed
}

// gbAccess is one recorded field access.
type gbAccess struct {
	pos     token.Pos
	typeID  string
	field   string
	write   bool
	held    map[string]int // mutex field -> mode held on this access's base
	fnID    string         // enclosing declared function
	binding string         // receiver/param name the base resolves to, "" otherwise
	inEsc   bool           // inside a closure that escapes its creator
}

// gbObs is one call-site observation of one guarded binding (the
// receiver or a parameter) of an in-module function: which of that
// struct's locks the caller provably held on the argument at the
// call. callerBinding names the caller's own binding when the
// argument is exactly that binding, so entry locks inherit through
// helper chains (applyLocked passing its shard on to joinMiss).
type gbObs struct {
	binding       string
	held          map[string]int
	caller        string
	callerBinding string
}

// gbDiag is a pending diagnostic; emission is sorted for determinism.
type gbDiag struct {
	pos token.Pos
	msg string
}

// gbState carries the analysis across its passes.
type gbState struct {
	prog     *Program
	types    map[string]*gbType
	accesses []*gbAccess
	obs      map[string][]gbObs
	// entry: function ID -> binding name -> locks guaranteed held at
	// entry (the interprocedural closure for fooLocked()-style
	// helpers, via receiver or parameter).
	entry map[string]map[string]map[string]int
	diags []gbDiag
}

func (st *gbState) emit(pos token.Pos, format string, args ...any) {
	st.diags = append(st.diags, gbDiag{pos, fmt.Sprintf(format, args...)})
}

// checkGuardedBy is the rule entry point.
func checkGuardedBy(prog *Program, scope []*Package, report ReportFunc) {
	st := &gbState{prog: prog, obs: map[string][]gbObs{}}
	st.collectTypes()
	if len(st.types) > 0 {
		for _, id := range prog.Graph.Order {
			st.scanFunc(prog.Graph.Nodes[id])
		}
		st.buildEntries()
		st.inferAndFlag()
	}
	sort.Slice(st.diags, func(i, j int) bool {
		if st.diags[i].pos != st.diags[j].pos {
			return st.diags[i].pos < st.diags[j].pos
		}
		return st.diags[i].msg < st.diags[j].msg
	})
	for _, d := range st.diags {
		report(d.pos, "%s", d.msg)
	}
}

// mutexTypeName returns "Mutex"/"RWMutex" when t is the sync type,
// looking through one pointer, else "".
func mutexTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch namedTypeID(t) {
	case "sync.Mutex":
		return "Mutex"
	case "sync.RWMutex":
		return "RWMutex"
	}
	return ""
}

// selfSyncedType reports whether values of t synchronize themselves:
// sync/atomic types, the other sync package primitives (WaitGroup,
// Once, Map, Cond, Pool), and channels.
func selfSyncedType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "sync/atomic" || pkg.Path() == "sync"
}

// collectTypes indexes every mutex-bearing struct declared in a
// non-test file, parsing the per-field directives, and reports
// malformed directives.
func (st *gbState) collectTypes() {
	st.types = map[string]*gbType{}
	for _, p := range st.prog.Pkgs {
		for _, f := range p.Files {
			if p.IsTestFile(f.Pos()) {
				continue
			}
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					stru, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					st.collectStruct(p, ts, stru)
				}
			}
		}
	}
}

func (st *gbState) collectStruct(p *Package, ts *ast.TypeSpec, stru *ast.StructType) {
	obj := p.Info.Defs[ts.Name]
	if obj == nil {
		return
	}
	id := namedTypeID(obj.Type())
	if id == "" {
		return
	}
	gt := &gbType{id: id, mutexes: map[string]bool{}, fields: map[string]*gbField{}}
	type pendingDirective struct {
		pos    token.Pos
		field  string
		guard  string // for guardedby; "" for nolock
		nolock bool
		reason string
	}
	var directives []pendingDirective
	for _, field := range stru.Fields.List {
		if len(field.Names) == 0 {
			continue // embedded: cannot be annotated, promoted accesses are skipped
		}
		var comments []*ast.Comment
		if field.Doc != nil {
			comments = append(comments, field.Doc.List...)
		}
		if field.Comment != nil {
			comments = append(comments, field.Comment.List...)
		}
		var pinned, reason string
		var pinnedPos, nolockPos token.Pos
		nolock := false
		for _, c := range comments {
			if rest, ok := strings.CutPrefix(c.Text, GuardedByDirective); ok && (rest == "" || rest[0] == ' ') {
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					pinned = fields[0]
				}
				pinnedPos = c.Pos()
			}
			if rest, ok := strings.CutPrefix(c.Text, NolockDirective); ok && (rest == "" || rest[0] == ' ') {
				nolock = true
				reason = strings.TrimSpace(rest)
				nolockPos = c.Pos()
			}
		}
		for _, name := range field.Names {
			v, ok := p.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if mutexTypeName(v.Type()) != "" {
				gt.mutexes[name.Name] = mutexTypeName(v.Type()) == "RWMutex"
				continue
			}
			gf := &gbField{name: name.Name, exempt: selfSyncedType(v.Type())}
			if pinned != "" || pinnedPos != token.NoPos {
				directives = append(directives, pendingDirective{pos: pinnedPos, field: name.Name, guard: pinned})
				gf.pinned = pinned
			}
			if nolock {
				if reason == "" {
					directives = append(directives, pendingDirective{pos: nolockPos, field: name.Name, nolock: true})
				} else {
					gf.nolock = true
				}
			}
			gt.fields[name.Name] = gf
		}
	}
	if len(gt.mutexes) == 0 {
		// Not a guarded struct; a guardedby directive here is a mistake.
		for _, d := range directives {
			if !d.nolock {
				st.emit(d.pos, "%s on %s.%s: %s has no mutex field",
					GuardedByDirective, trimModule(id), d.field, trimModule(id))
			}
		}
		return
	}
	for _, d := range directives {
		switch {
		case d.nolock:
			st.emit(d.pos, "%s on %s.%s needs a reason; a bare directive is void — say why lock-free access is safe",
				NolockDirective, trimModule(id), d.field)
		case d.guard == "":
			st.emit(d.pos, "%s on %s.%s needs the guarding mutex field name",
				GuardedByDirective, trimModule(id), d.field)
		case !gt.mutexes[d.guard] && gt.mutexes[d.guard] == false:
			if _, ok := gt.mutexes[d.guard]; !ok {
				st.emit(d.pos, "%s on %s.%s names no mutex field %q in %s",
					GuardedByDirective, trimModule(id), d.field, d.guard, trimModule(id))
				gt.fields[d.field].pinned = ""
			}
		}
	}
	st.types[id] = gt
}

// gbHooks instantiates the provenance engine for constructor
// detection: a composite literal of a guarded type carries a TagAlloc
// identity, and nothing else taints — call results are unknown.
type gbHooks struct {
	pkg   *Package
	types map[string]*gbType
}

func (gbHooks) EvalCall(call *ast.CallExpr, recv tagSet, args []tagSet) []tagSet {
	return nil
}

func (gbHooks) RangeTags(rs *ast.RangeStmt, xTags tagSet, isMap bool) (key, val tagSet) {
	return nil, nil
}

func (gbHooks) CleanseArgs(call *ast.CallExpr) []ast.Expr { return nil }

func (h gbHooks) CompositeLitTags(lit *ast.CompositeLit) tagSet {
	if t := h.pkg.Info.TypeOf(lit); t != nil && h.containsGuarded(t, 0) {
		return singleton(Tag{Kind: TagAlloc, Site: lit.Pos()})
	}
	return nil
}

// containsGuarded reports whether t is a guarded struct or embeds one
// by value (struct field, array element) — fresh storage for the
// outer value is fresh storage for the guarded struct inside it.
// Pointers stop the walk: a fresh wrapper can point at shared state.
func (h gbHooks) containsGuarded(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	if h.types[namedTypeID(t)] != nil {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if h.containsGuarded(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return h.containsGuarded(u.Elem(), depth+1)
	}
	return false
}

// mentionsGuarded is the cheap prefilter: only bodies that select on a
// guarded type (field access, method call, or mu.Lock itself) pay for
// the full analysis.
func (st *gbState) mentionsGuarded(n *FuncNode) bool {
	found := false
	guarded := func(x ast.Expr) bool {
		t := n.Pkg.Info.TypeOf(x)
		return t != nil && st.types[namedTypeID(t)] != nil
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if found {
			return false
		}
		switch x := node.(type) {
		case *ast.SelectorExpr:
			if guarded(x.X) {
				found = true
				return false
			}
		case *ast.Ident:
			// A bare guarded binding matters too: a function whose only
			// involvement is forwarding a locked struct to a helper
			// still feeds the interprocedural entry-lock fixpoint.
			if guarded(x) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// zeroLocals collects local variables declared `var x T` (zero value,
// guarded struct value type) anywhere in the body: like composite
// literals, they are fresh unshared storage.
func (st *gbState) zeroLocals(p *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(node ast.Node) bool {
		ds, ok := node.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := ds.Decl.(*ast.GenDecl)
		if !ok {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := p.Info.Defs[name]
				if obj == nil {
					continue
				}
				if _, isPtr := obj.Type().(*types.Pointer); isPtr {
					continue
				}
				if st.types[namedTypeID(obj.Type())] != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// gbWalk carries the per-function scan state.
type gbWalk struct {
	st   *gbState
	pkg  *Package
	fnID string
	// bindings maps the declared function's receiver and parameter
	// objects of guarded type to their identifier names — the units
	// the interprocedural entry-lock fixpoint reasons about.
	bindings map[types.Object]string
	esc      map[token.Pos]bool
	zeros    map[types.Object]bool

	// Per-scope (reset for each closure body):
	pv      *provenance
	inEsc   bool
	handled map[*ast.SelectorExpr]bool
	atomics map[ast.Expr]bool // &x.f args of sync/atomic calls
	// syncLits are function literals passed to callees known to
	// invoke them synchronously (sort.Slice comparators and the
	// like): they run inside the caller's critical section, so the
	// hotpath-style "passed = escaped" verdict does not apply.
	syncLits map[*ast.FuncLit]bool
	lits     []gbLitWork
}

type gbLitWork struct {
	lit      *ast.FuncLit
	captured env
	locks    lockState
	inEsc    bool
}

// scanFunc analyzes one declared function: provenance for the
// constructor exemption, escape analysis for its closures, and the
// lock-state walk that records accesses and call observations.
func (st *gbState) scanFunc(n *FuncNode) {
	if n.Pkg.IsTestFile(n.Decl.Pos()) {
		return
	}
	if skip, pos, reason := gbSkipDirective(n.Decl); skip {
		if reason == "" {
			st.emit(pos, "%s on %s needs a reason; a bare directive is void — say what lock discipline the analysis cannot see",
				GuardedBySkipDirective, trimModule(n.ID))
		}
		return
	}
	if !st.mentionsGuarded(n) {
		return
	}
	hooks := gbHooks{pkg: n.Pkg, types: st.types}
	w := &gbWalk{
		st:       st,
		pkg:      n.Pkg,
		fnID:     n.ID,
		bindings: st.guardedBindings(n),
		zeros:    st.zeroLocals(n.Pkg, n.Decl.Body),
		esc:      map[token.Pos]bool{},
	}
	hasLit := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			hasLit = true
			return false
		}
		return true
	})
	if hasLit {
		w.esc = escapingClosures(n.Pkg, n.Decl)
	}
	w.pv = analyzeFunc(n.Pkg, n.Decl, hooks)
	w.scanScope(n.Decl.Body, lockState{}, false)
	for len(w.lits) > 0 {
		work := w.lits[0]
		w.lits = w.lits[1:]
		w.pv = analyzeFuncLit(n.Pkg, work.lit, work.captured, hooks)
		w.scanScope(work.lit.Body, work.locks, work.inEsc)
	}
}

// gbSkipDirective reports whether fd's doc comment carries
// //tipsy:guardedby-skip, with the directive position and reason.
func gbSkipDirective(fd *ast.FuncDecl) (bool, token.Pos, string) {
	if fd.Doc == nil {
		return false, token.NoPos, ""
	}
	for _, c := range fd.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, GuardedBySkipDirective); ok && (rest == "" || rest[0] == ' ') {
			return true, c.Pos(), strings.TrimSpace(rest)
		}
	}
	return false, token.NoPos, ""
}

// guardedBindings maps n's receiver and parameter objects whose type
// is (a pointer to) a guarded struct to their identifier names.
func (st *gbState) guardedBindings(n *FuncNode) map[types.Object]string {
	out := map[types.Object]string{}
	add := func(names []*ast.Ident) {
		for _, name := range names {
			obj := n.Pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			if st.types[namedTypeID(obj.Type())] != nil {
				out[obj] = name.Name
			}
		}
	}
	if n.Decl.Recv != nil && len(n.Decl.Recv.List) > 0 {
		add(n.Decl.Recv.List[0].Names)
	}
	for _, field := range n.Decl.Type.Params.List {
		add(field.Names)
	}
	return out
}

// scanScope runs the lock-state dataflow over one body (a declared
// function or a closure) and replays it, recording accesses with the
// state in force at each statement.
func (w *gbWalk) scanScope(body *ast.BlockStmt, entry lockState, inEsc bool) {
	w.inEsc = inEsc
	w.handled = map[*ast.SelectorExpr]bool{}
	w.atomics = map[ast.Expr]bool{}
	w.syncLits = map[*ast.FuncLit]bool{}

	cfg := BuildCFG(body)
	in := make([]lockState, len(cfg.Blocks))
	in[cfg.Entry.Index] = cloneLocks(entry)
	order := cfg.RPO()
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, b := range order {
			e := in[b.Index]
			if e == nil {
				continue
			}
			out := cloneLocks(e)
			for _, s := range b.Stmts {
				w.transfer(s, out)
			}
			for _, succ := range b.Succs {
				if in[succ.Index] == nil {
					in[succ.Index] = cloneLocks(out)
					changed = true
				} else if intersectLocks(in[succ.Index], out) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Replay: provenance env per statement, then record with the lock
	// state immediately before each statement.
	envAt := map[ast.Stmt]env{}
	w.pv.visit(func(s ast.Stmt, e env) { envAt[s] = e.clone() })
	for _, b := range cfg.Blocks {
		e := in[b.Index]
		if e == nil {
			continue
		}
		cur := cloneLocks(e)
		for _, s := range b.Stmts {
			w.record(s, cur, envAt[s])
			w.transfer(s, cur)
		}
	}
}

// transfer applies one statement's lock acquisitions and releases.
// Deferred unlocks are skipped: the lock stays held through every
// later statement and early return, which is exactly what leaving the
// state untouched models.
func (w *gbWalk) transfer(s ast.Stmt, st lockState) {
	var deferred map[*ast.CallExpr]bool
	inspectShallow(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if deferred == nil {
				deferred = map[*ast.CallExpr]bool{}
			}
			deferred[n.Call] = true
		case *ast.CallExpr:
			if deferred[n] {
				return true
			}
			if id, expr, read, ok := lockedMutex(w.pkg, n, "Lock", "RLock"); ok {
				kind := gbWrite
				if read {
					kind = gbRead
				}
				st[heldKey{id.Type, id.Field, expr}] = kind
				return true
			}
			if id, expr, _, ok := lockedMutex(w.pkg, n, "Unlock", "RUnlock"); ok {
				delete(st, heldKey{id.Type, id.Field, expr})
			}
		}
		return true
	})
}

// record walks the parts of s evaluated at s (headers only for
// control statements — bodies live in their own blocks), classifying
// field accesses as reads or writes.
func (w *gbWalk) record(s ast.Stmt, st lockState, e env) {
	switch s := s.(type) {
	case nil:
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			w.recordWrite(lhs, st, e)
		}
		for _, rhs := range s.Rhs {
			w.recordExpr(rhs, st, e)
		}
	case *ast.IncDecStmt:
		w.recordWrite(s.X, st, e)
	case *ast.IfStmt:
		w.record(s.Init, st, e)
		w.recordExpr(s.Cond, st, e)
	case *ast.ForStmt:
		w.record(s.Init, st, e)
		w.recordExpr(s.Cond, st, e)
		w.record(s.Post, st, e)
	case *ast.RangeStmt:
		w.recordExpr(s.X, st, e)
	case *ast.SwitchStmt:
		w.record(s.Init, st, e)
		w.recordExpr(s.Tag, st, e)
	case *ast.TypeSwitchStmt:
		w.record(s.Init, st, e)
		w.record(s.Assign, st, e)
	case *ast.LabeledStmt:
		w.record(s.Stmt, st, e)
	case *ast.DeferStmt:
		w.recordExpr(s.Call, st, e)
	case *ast.GoStmt:
		w.recordExpr(s.Call, st, e)
	case *ast.ExprStmt:
		w.recordExpr(s.X, st, e)
	case *ast.SendStmt:
		w.recordExpr(s.Chan, st, e)
		w.recordExpr(s.Value, st, e)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.recordExpr(r, st, e)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					w.recordExpr(v, st, e)
				}
			}
		}
	}
}

// recordWrite classifies the left side of an assignment: a stored
// field is a write, an indexed field (s.m[k] = v) mutates the
// container, a write through a dereferenced pointer reads the field.
func (w *gbWalk) recordWrite(lhs ast.Expr, st lockState, e env) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		w.recordAccess(l, true, st, e)
		w.handled[l] = true
		w.recordExpr(l.X, st, e)
	case *ast.IndexExpr:
		if sel, ok := ast.Unparen(l.X).(*ast.SelectorExpr); ok {
			w.recordAccess(sel, true, st, e)
			w.handled[sel] = true
			w.recordExpr(sel.X, st, e)
		} else {
			w.recordExpr(l.X, st, e)
		}
		w.recordExpr(l.Index, st, e)
	case *ast.StarExpr:
		w.recordExpr(l.X, st, e)
	case *ast.Ident:
		// Local rebinding: not a field access.
	default:
		w.recordExpr(lhs, st, e)
	}
}

// recordExpr scans one read-context expression tree. Function
// literals are queued for their own scope walk; &x.f arguments to
// sync/atomic calls are exempt; a bare &x.f elsewhere counts as a
// write (the address can be stored and mutated later).
func (w *gbWalk) recordExpr(x ast.Expr, st lockState, e env) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.queueLit(n, st, e)
			return false
		case *ast.CallExpr:
			if gbSyncCallee(w.pkg, n) {
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						w.syncLits[lit] = true
					}
				}
			}
			w.noteCall(n, st, e)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					if !w.atomics[n] {
						w.recordAccess(sel, true, st, e)
					}
					w.handled[sel] = true
				}
			}
		case *ast.SelectorExpr:
			if !w.handled[n] {
				w.recordAccess(n, false, st, e)
			}
		}
		return true
	})
}

// queueLit schedules a function literal's body: an escaping literal
// starts with no locks held (it may run after every Unlock), a
// non-escaping one inherits the state where it is created.
func (w *gbWalk) queueLit(lit *ast.FuncLit, st lockState, e env) {
	escapes := w.inEsc || (w.esc[lit.Pos()] && !w.syncLits[lit])
	entry := lockState{}
	if !escapes {
		entry = cloneLocks(st)
	}
	w.lits = append(w.lits, gbLitWork{lit: lit, captured: e.clone(), locks: entry, inEsc: escapes})
}

// noteCall marks atomic-call arguments exempt and records the lock
// state at calls to in-module functions, one observation per guarded
// binding (receiver and parameters), feeding the interprocedural
// entry-lock fixpoint.
func (w *gbWalk) noteCall(call *ast.CallExpr, st lockState, e env) {
	var fn *types.Func
	var recvArg ast.Expr
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ = w.pkg.Info.Uses[f.Sel].(*types.Func)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
			for _, arg := range call.Args {
				if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
					w.atomics[u] = true
				}
			}
			return
		}
		recvArg = f.X
	case *ast.Ident:
		fn, _ = w.pkg.Info.Uses[f].(*types.Func)
	}
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	calleeID := FuncID(fn)
	node := w.st.prog.Graph.Nodes[calleeID]
	if node == nil {
		return
	}
	if sig.Recv() != nil && recvArg != nil {
		w.observe(calleeID, receiverIdent(node.Decl), sig.Recv().Type(), recvArg, st)
	}
	i := 0
	for _, field := range node.Decl.Type.Params.List {
		for _, name := range field.Names {
			if i < len(call.Args) {
				if obj := node.Pkg.Info.Defs[name]; obj != nil {
					w.observe(calleeID, name.Name, obj.Type(), call.Args[i], st)
				}
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
}

// observe files one call-site observation: the locks held on argExpr,
// which the callee sees as its binding named binding.
func (w *gbWalk) observe(calleeID, binding string, bindType types.Type, argExpr ast.Expr, st lockState) {
	typeID := namedTypeID(bindType)
	if binding == "" || w.st.types[typeID] == nil {
		return
	}
	expr := types.ExprString(argExpr)
	held := map[string]int{}
	for k, v := range st {
		if k.typ == typeID && k.expr == expr {
			held[k.field] = v
		}
	}
	callerBinding := ""
	if !w.inEsc {
		if id, ok := ast.Unparen(argExpr).(*ast.Ident); ok {
			obj := w.pkg.Info.Uses[id]
			if obj == nil {
				obj = w.pkg.Info.Defs[id]
			}
			if obj != nil && namedTypeID(obj.Type()) == typeID {
				callerBinding = w.bindings[obj]
			}
		}
	}
	w.st.obs[calleeID] = append(w.st.obs[calleeID], gbObs{
		binding: binding, held: held, caller: w.fnID, callerBinding: callerBinding,
	})
}

// gbSyncCallee reports whether call's target is known to invoke its
// function-literal arguments synchronously, before returning: the
// sort and slices comparator/visitor helpers. (A conservative
// allowlist — anything else passed a closure is treated as escaping.)
func gbSyncCallee(p *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	return false
}

// recordAccess records one field access if it is on a guarded struct
// and not exempt.
func (w *gbWalk) recordAccess(sel *ast.SelectorExpr, write bool, st lockState, e env) {
	v, ok := w.pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return
	}
	baseT := w.pkg.Info.TypeOf(sel.X)
	if baseT == nil {
		return
	}
	typeID := namedTypeID(baseT)
	gt := w.st.types[typeID]
	if gt == nil {
		return
	}
	gf := gt.fields[sel.Sel.Name]
	if gf == nil || gf.nolock || gf.exempt {
		return
	}
	// Constructor exemption: the base is storage this function itself
	// allocated (and did not receive from a caller), so the struct is
	// not yet shared.
	tags := w.pv.eval(sel.X, e)
	if tags.has(TagAlloc) && !tags.has(TagParam) {
		return
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		obj := w.pkg.Info.Uses[id]
		if obj == nil {
			obj = w.pkg.Info.Defs[id]
		}
		if obj != nil && w.zeros[obj] {
			return
		}
	}
	base := types.ExprString(sel.X)
	held := map[string]int{}
	for k, v := range st {
		if k.typ == typeID && k.expr == base {
			held[k.field] = v
		}
	}
	binding := ""
	if !w.inEsc {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			obj := w.pkg.Info.Uses[id]
			if obj == nil {
				obj = w.pkg.Info.Defs[id]
			}
			if obj != nil {
				binding = w.bindings[obj]
			}
		}
	}
	w.st.accesses = append(w.st.accesses, &gbAccess{
		pos:     sel.Sel.Pos(),
		typeID:  typeID,
		field:   sel.Sel.Name,
		write:   write,
		held:    held,
		fnID:    w.fnID,
		binding: binding,
		inEsc:   w.inEsc,
	})
}

// buildEntries computes the interprocedural closure: for each
// unexported function and each of its guarded bindings (receiver or
// parameter), a guard held by every in-module call site on the
// corresponding argument counts as held at entry. The fixpoint starts
// optimistic (everything held) and narrows by intersection over the
// observations, inheriting the caller's own entry locks when the
// argument is the caller's binding, so mutually recursive locked
// helpers converge. Exported functions never qualify: external
// callers are invisible, so no lock can be assumed.
func (st *gbState) buildEntries() {
	st.entry = map[string]map[string]map[string]int{}
	type slot struct{ fn, binding, typeID string }
	var slots []slot
	for _, id := range st.prog.Graph.Order {
		n := st.prog.Graph.Nodes[id]
		if token.IsExported(n.Obj.Name()) || len(st.obs[id]) == 0 {
			continue
		}
		// Which bindings does this callee have, and of what type?
		bindType := map[string]string{}
		for obj, name := range st.guardedBindings(n) {
			bindType[name] = namedTypeID(obj.Type())
		}
		seen := map[string]bool{}
		for _, o := range st.obs[id] {
			typeID, ok := bindType[o.binding]
			if !ok || seen[o.binding] {
				continue
			}
			seen[o.binding] = true
			gt := st.types[typeID]
			all := map[string]int{}
			for m := range gt.mutexes {
				all[m] = gbWrite
			}
			if st.entry[id] == nil {
				st.entry[id] = map[string]map[string]int{}
			}
			st.entry[id][o.binding] = all
			slots = append(slots, slot{fn: id, binding: o.binding, typeID: typeID})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, sl := range slots {
			var next map[string]int
			for _, o := range st.obs[sl.fn] {
				if o.binding != sl.binding {
					continue
				}
				eff := map[string]int{}
				for f, k := range o.held {
					eff[f] = k
				}
				if o.callerBinding != "" {
					for f, k := range st.entry[o.caller][o.callerBinding] {
						if k > eff[f] {
							eff[f] = k
						}
					}
				}
				if next == nil {
					next = eff
					continue
				}
				for f, k := range next {
					ek, ok := eff[f]
					if !ok {
						delete(next, f)
					} else if ek < k {
						next[f] = ek
					}
				}
			}
			cur := st.entry[sl.fn][sl.binding]
			same := len(cur) == len(next)
			if same {
				for f, k := range cur {
					if next[f] != k {
						same = false
						break
					}
				}
			}
			if !same {
				st.entry[sl.fn][sl.binding] = next
				changed = true
			}
		}
	}
}

// inferAndFlag finalizes each access's lock set with the
// interprocedural entries, infers or reads off each field's guard,
// and emits the findings.
func (st *gbState) inferAndFlag() {
	type fieldKey struct{ typ, field string }
	groups := map[fieldKey][]*gbAccess{}
	var keys []fieldKey
	for _, a := range st.accesses {
		if a.binding != "" {
			for f, k := range st.entry[a.fnID][a.binding] {
				if k > a.held[f] {
					a.held[f] = k
				}
			}
		}
		k := fieldKey{a.typeID, a.field}
		if _, seen := groups[k]; !seen {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], a)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].typ != keys[j].typ {
			return keys[i].typ < keys[j].typ
		}
		return keys[i].field < keys[j].field
	})
	for _, k := range keys {
		gt := st.types[k.typ]
		gf := gt.fields[k.field]
		accesses := groups[k]
		guard := gf.pinned
		why := fmt.Sprintf("%s %s", GuardedByDirective, guard)
		if guard == "" {
			var mutexes []string
			for m := range gt.mutexes {
				mutexes = append(mutexes, m)
			}
			sort.Strings(mutexes)
			best, bestN := "", 0
			for _, m := range mutexes {
				n := 0
				for _, a := range accesses {
					if a.held[m] >= gbRead {
						n++
					}
				}
				if n > bestN {
					best, bestN = m, n
				}
			}
			// Large-majority inference: at least two locked accesses
			// and at least 3 locked for every unlocked one.
			if bestN >= 2 && bestN*4 >= len(accesses)*3 {
				guard = best
				why = fmt.Sprintf("inferred from %d/%d locked accesses", bestN, len(accesses))
			}
		}
		if guard == "" {
			continue
		}
		name := trimModule(k.typ) + "." + k.field
		for _, a := range accesses {
			mode := a.held[guard]
			switch {
			case mode == gbNone:
				kind := "read of"
				if a.write {
					kind = "write to"
				}
				suffix := ""
				if a.inEsc {
					suffix = " [escaping closure: the creating function's critical section does not cover this]"
				}
				st.emit(a.pos,
					"unguarded %s %s (guard %s, %s); hold %s here, or annotate the field %s <reason> if lock-free access is intended%s",
					kind, name, guard, why, guard, NolockDirective, suffix)
			case mode == gbRead && a.write:
				st.emit(a.pos,
					"write to %s under %s.RLock(); a read lock admits concurrent readers — upgrade this section to %s.Lock()",
					name, guard, guard)
			}
		}
	}
}
