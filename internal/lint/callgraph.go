package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the intra-module call graph the deep-tier rules
// walk. Nodes are the module's declared functions and methods; edges
// are static calls plus interface calls resolved to every in-module
// implementer of the interface. Because each analysis package is
// type-checked in its own universe (see load.go), functions are keyed
// by a stable string identity — import path, receiver type, name —
// rather than by *types.Func pointer, so a call in package B to a
// function of package A lands on the same node whichever type-check
// produced the object.

// FuncNode is one declared function or method in the module.
type FuncNode struct {
	ID   string // stable identity, e.g. "tipsy/internal/wan.Table.Lookup"
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Sites are this function's outgoing call sites in source order.
	Sites []*CallSite
}

// CallSite is one call expression inside a FuncNode body.
type CallSite struct {
	Call *ast.CallExpr
	// Callees are the in-module targets: one for a static call, any
	// number for an interface call (every in-module implementer).
	// Empty for calls that leave the module or cannot be resolved.
	Callees []*FuncNode
	// External names an out-of-module target ("sort.Strings",
	// "(*encoding/json.Encoder).Encode") when the call leaves the
	// module; "" otherwise.
	External string
	// Interface marks a call dispatched through an interface method.
	Interface bool
	// SameRecv marks a method call whose receiver expression is the
	// enclosing method's own receiver identifier — the case where a
	// non-reentrant lock deadlocks for sure.
	SameRecv bool
}

// CallGraph is the module-wide call graph.
type CallGraph struct {
	// Nodes maps stable identity to node. Order holds the IDs sorted,
	// for deterministic iteration.
	Nodes map[string]*FuncNode
	Order []string
}

// FuncID computes the stable identity of fn: import path, dot,
// receiver type name (for methods), dot, function name. Generic
// instantiations collapse onto their origin declaration.
func FuncID(fn *types.Func) string {
	fn = fn.Origin()
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			return path + "." + name + "." + fn.Name()
		}
	}
	return path + "." + fn.Name()
}

// recvTypeName returns the bare name of the receiver's named type,
// looking through one pointer, or "" for unnamed receivers.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return recvTypeName(types.Unalias(t))
	}
	return ""
}

// externalName renders an out-of-module callee for sink
// classification: "pkgpath.Func" for package functions,
// "pkgpath.Type.Method" for methods.
func externalName(fn *types.Func) string {
	return FuncID(fn)
}

// buildCallGraph indexes every declared function in pkgs and resolves
// each call site. Interface calls resolve to the in-module named
// types whose method sets implement the interface.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: map[string]*FuncNode{}}

	// Pass 1: index declarations.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				id := FuncID(obj)
				// Keep the first declaration per identity: an analysis
				// package and its _test twin never collide, but a
				// malformed tree might; first wins deterministically
				// because pkgs arrive in sorted directory order.
				if _, dup := g.Nodes[id]; dup {
					continue
				}
				g.Nodes[id] = &FuncNode{ID: id, Obj: obj, Decl: fd, Pkg: p}
			}
		}
	}
	g.Order = make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		g.Order = append(g.Order, id)
	}
	sort.Strings(g.Order)

	// Method-set index for interface resolution: method name -> nodes
	// declared with that name, tried against the interface below.
	byMethodName := map[string][]*FuncNode{}
	for _, id := range g.Order {
		n := g.Nodes[id]
		if n.Decl.Recv != nil {
			byMethodName[n.Obj.Name()] = append(byMethodName[n.Obj.Name()], n)
		}
	}

	// Pass 2: resolve call sites.
	for _, id := range g.Order {
		n := g.Nodes[id]
		recvName := receiverIdent(n.Decl)
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			site := resolveCall(g, n.Pkg, call, recvName, byMethodName)
			if site != nil {
				n.Sites = append(n.Sites, site)
			}
			return true
		})
	}
	return g
}

// receiverIdent returns the name of fd's receiver identifier, or "".
func receiverIdent(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// resolveCall classifies one call expression. Calls to builtins,
// conversions, and func-typed values return nil — the graph is
// deliberately conservative about indirect calls.
func resolveCall(g *CallGraph, p *Package, call *ast.CallExpr, recvName string, byMethodName map[string][]*FuncNode) *CallSite {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	var sel *ast.SelectorExpr
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id, sel = f.Sel, f
	default:
		return nil
	}
	obj, ok := p.Info.Uses[id]
	if !ok {
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil // builtin, conversion, or func-typed variable
	}
	site := &CallSite{Call: call}
	if sel != nil && recvName != "" {
		if rid, ok := sel.X.(*ast.Ident); ok && rid.Name == recvName {
			site.SameRecv = true
		}
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		if iface, ok := recv.Type().Underlying().(*types.Interface); ok {
			// Interface dispatch: every in-module type whose method
			// set implements the interface is a possible target.
			site.Interface = true
			site.Callees = implementers(iface, fn.Name(), byMethodName)
			if len(site.Callees) == 0 {
				site.External = externalName(fn)
			}
			return site
		}
	}
	if target, ok := g.Nodes[FuncID(fn)]; ok {
		site.Callees = []*FuncNode{target}
	} else {
		site.External = externalName(fn)
	}
	return site
}

// implementers returns the in-module methods named name whose
// receiver type implements iface, in deterministic ID order.
func implementers(iface *types.Interface, name string, byMethodName map[string][]*FuncNode) []*FuncNode {
	var out []*FuncNode
	for _, cand := range byMethodName[name] {
		recv := cand.Obj.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		t := recv.Type()
		// Both the value and pointer method sets count; Implements
		// wants the pointer form for pointer-receiver methods.
		if types.Implements(t, iface) || types.Implements(types.NewPointer(deref(t)), iface) {
			out = append(out, cand)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// CalleeNames is a debugging helper: the sorted in-module callee IDs
// of fn, one hop out.
func (g *CallGraph) CalleeNames(id string) []string {
	n := g.Nodes[id]
	if n == nil {
		return nil
	}
	seen := map[string]bool{}
	for _, s := range n.Sites {
		for _, c := range s.Callees {
			seen[c.ID] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// posLess orders positions for deterministic reporting.
func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}

// trimModule strips the module path prefix from an identity for
// human-readable diagnostics: "tipsy/internal/wan.Table.Lookup" ->
// "wan.Table.Lookup".
func trimModule(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}
