package lint

import (
	"sync"
	"testing"
)

// TestConcurrentFullTierIsDeterministic loads the whole module (the
// parallel parse stage runs under the race detector here) and then
// executes the complete rule set — syntactic and deep tiers — twice
// concurrently over the shared package slice. The two outputs must be
// byte-identical: every ordering decision in the analyzers (call
// graph traversal, lock-set iteration, finding emission) is required
// to be deterministic, and no rule may mutate shared package state.
func TestConcurrentFullTierIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow; skipped in -short")
	}
	l := loader(t)
	dirs, err := ExpandPatterns(l.ModuleRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadDirs(dirs, 4)
	if err != nil {
		t.Fatal(err)
	}

	var out [2]string
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = format(Run(pkgs, Rules()))
		}(i)
	}
	wg.Wait()

	if out[0] != out[1] {
		t.Errorf("two concurrent runs disagree:\n--- first\n%s--- second\n%s", out[0], out[1])
	}
	if out[0] != "" {
		t.Errorf("repository is not lint-clean:\n%s", out[0])
	}
}
