package lint

import (
	"go/ast"
	"go/token"
)

// This file is the hotpath tier's closure-escape pass. A function
// literal whose value stays inside its creating function — an
// immediately-invoked literal, or one held in a local and only ever
// called — can live on the stack. One whose value LEAVES the function
// forces a heap allocation for the closure object and every captured
// variable: returned, stored into a field, slice, map, or pointer
// target, sent on a channel, passed to another function, deferred, or
// launched as a goroutine. The pass reuses the deep tier's provenance
// engine: every literal gets a TagAlloc identity tag at creation
// (funcLitTagger hook) and the tag is followed through locals,
// assignments, and wrapper calls to the escape points.

// escapeHooks instantiates the provenance engine for closure
// tracking. Calls pass tags through: a closure returned by a helper,
// or wrapped and returned, keeps its identity.
type escapeHooks struct{}

func (escapeHooks) EvalCall(call *ast.CallExpr, recv tagSet, args []tagSet) []tagSet {
	return []tagSet{union(append(args, recv)...)}
}

func (escapeHooks) RangeTags(rs *ast.RangeStmt, xTags tagSet, isMap bool) (key, val tagSet) {
	// Ranging over a container of closures yields the closures.
	return nil, xTags
}

func (escapeHooks) CleanseArgs(call *ast.CallExpr) []ast.Expr { return nil }

func (escapeHooks) FuncLitTags(lit *ast.FuncLit) tagSet {
	return singleton(Tag{Kind: TagAlloc, Site: lit.Pos()})
}

// escapingClosures reports, for every function literal in fd's body
// (nested literals included), whether its value escapes the function
// that creates it. Keys are the literals' positions.
func escapingClosures(pkg *Package, fd *ast.FuncDecl) map[token.Pos]bool {
	out := map[token.Pos]bool{}
	if fd.Body == nil {
		return out
	}
	scanEscapes(pkg, analyzeFunc(pkg, fd, escapeHooks{}), out)
	return out
}

// scanEscapes replays one analyzed body and marks every TagAlloc tag
// that reaches an escape point. Nested literals are analyzed with the
// environment captured where they appear, so a closure leaked from
// inside another closure is still caught.
func scanEscapes(pkg *Package, pv *provenance, out map[token.Pos]bool) {
	mark := func(tags tagSet) {
		for t := range tags {
			if t.Kind == TagAlloc {
				out[t.Site] = true
			}
		}
	}
	type litWork struct {
		lit *ast.FuncLit
		e   env
	}
	var lits []litWork
	pv.visit(func(s ast.Stmt, e env) {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				mark(pv.eval(res, e))
			}
		case *ast.SendStmt:
			mark(pv.eval(s.Value, e))
		case *ast.AssignStmt:
			// A store through a field, element, or pointer target makes
			// the value reachable beyond the frame.
			for i, lhs := range s.Lhs {
				if i >= len(s.Rhs) {
					break
				}
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					mark(pv.eval(s.Rhs[i], e))
				}
			}
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				out[lit.Pos()] = true
			} else {
				mark(pv.eval(s.Call.Fun, e))
			}
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				out[lit.Pos()] = true
			} else {
				mark(pv.eval(s.Call.Fun, e))
			}
		}
		inspectShallow(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case nil:
				return true
			case *ast.FuncLit:
				lits = append(lits, litWork{n, e.clone()})
				return false
			case *ast.CallExpr:
				// Passing a closure as an argument hands the value to
				// the callee; invoking a closure directly does not.
				if tv, ok := pkg.Info.Types[ast.Unparen(n.Fun)]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				for _, a := range n.Args {
					mark(pv.eval(a, e))
				}
			}
			return true
		})
	})
	for _, w := range lits {
		scanEscapes(pkg, analyzeFuncLit(pkg, w.lit, w.e, escapeHooks{}), out)
	}
}
