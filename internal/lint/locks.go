package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkLocks enforces two mutex conventions. First, a method on a
// struct that contains a sync.Mutex/RWMutex must use a pointer
// receiver — a value receiver silently copies the lock, so the method
// synchronises against a private copy nobody else sees. Second, a
// Lock()/RLock() must be released on every return path: either by an
// immediate defer, or by an explicit Unlock textually preceding each
// later return.
func checkLocks(p *Package, report ReportFunc) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkValueReceiver(p, fd, report)
		}
		// Each function body, literal or declared, is its own
		// lock-discipline scope.
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockPaths(p, fn.Body, report)
				}
			case *ast.FuncLit:
				checkLockPaths(p, fn.Body, report)
			}
			return true
		})
	}
}

func checkValueReceiver(p *Package, fd *ast.FuncDecl, report ReportFunc) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	tv, ok := p.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return
	}
	if field := mutexField(tv.Type, map[types.Type]bool{}); field != "" {
		report(fd.Pos(), "method %s has a value receiver but %s contains a mutex (%s); use a pointer receiver so the lock is shared",
			fd.Name.Name, types.TypeString(tv.Type, types.RelativeTo(p.Types)), field)
	}
}

// mutexField returns the path of the first sync.Mutex/RWMutex found
// in t's struct fields (following nested and embedded value structs),
// or "".
func mutexField(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isSyncMutex(f.Type()) {
			return f.Name()
		}
		if inner := mutexField(f.Type(), seen); inner != "" {
			return f.Name() + "." + inner
		}
	}
	return ""
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockEvent is one mutex-related statement inside a function body.
type lockEvent struct {
	pos     token.Pos
	recv    string // printed receiver expression, e.g. "s.mu"
	read    bool   // RLock/RUnlock flavor
	kind    int    // evLock, evUnlock, evDefer, evReturn
	display string
}

const (
	evLock = iota
	evUnlock
	evDefer
	evReturn
)

// checkLockPaths walks one function body (nested literals excluded)
// and flags Lock calls that some return path exits without releasing.
func checkLockPaths(p *Package, body *ast.BlockStmt, report ReportFunc) {
	var events []lockEvent
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own scope
		case *ast.ReturnStmt:
			events = append(events, lockEvent{pos: n.Pos(), kind: evReturn})
		case *ast.DeferStmt:
			if recv, read, isUnlock := mutexCall(p, n.Call, "Unlock", "RUnlock"); isUnlock {
				events = append(events, lockEvent{pos: n.Pos(), recv: recv, read: read, kind: evDefer})
			}
		case *ast.CallExpr:
			if recv, read, isLock := mutexCall(p, n, "Lock", "RLock"); isLock {
				name := "Lock"
				if read {
					name = "RLock"
				}
				events = append(events, lockEvent{pos: n.Pos(), recv: recv, read: read, kind: evLock, display: recv + "." + name})
			} else if recv, read, isUnlock := mutexCall(p, n, "Unlock", "RUnlock"); isUnlock {
				events = append(events, lockEvent{pos: n.Pos(), recv: recv, read: read, kind: evUnlock})
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	for i, lock := range events {
		if lock.kind != evLock {
			continue
		}
		// A matching defer anywhere in the function releases every
		// path from here on.
		deferred := false
		for _, e := range events {
			if e.kind == evDefer && e.recv == lock.recv && e.read == lock.read {
				deferred = true
				break
			}
		}
		if deferred {
			continue
		}
		// Without a defer, every later return must be preceded (since
		// the lock, textually) by an explicit unlock; a function that
		// falls off its end needs at least one.
		released, returns := false, 0
		for _, e := range events[i+1:] {
			switch {
			case e.kind == evUnlock && e.recv == lock.recv && e.read == lock.read:
				released = true
			case e.kind == evLock && e.recv == lock.recv && e.read == lock.read:
				// Re-acquired: later returns are that lock's problem.
			case e.kind == evReturn:
				returns++
				if !released {
					report(lock.pos, "%s() can reach the return at line %d still held; release with defer %s.%s()",
						lock.display, p.Fset.Position(e.pos).Line, lock.recv, unlockName(lock.read))
					return
				}
			}
		}
		if returns == 0 && !released {
			report(lock.pos, "%s() is never released in this function; add defer %s.%s()",
				lock.display, lock.recv, unlockName(lock.read))
		}
	}
}

func unlockName(read bool) string {
	if read {
		return "RUnlock"
	}
	return "Unlock"
}

// mutexCall reports whether call invokes one of the two named methods
// on a sync.Mutex/RWMutex, returning the printed receiver expression
// and whether it is the reader flavor.
func mutexCall(p *Package, call *ast.CallExpr, writeName, readName string) (recv string, read bool, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	name := sel.Sel.Name
	if name != writeName && name != readName {
		return "", false, false
	}
	obj, found := p.Info.Uses[sel.Sel]
	if !found {
		return "", false, false
	}
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	return types.ExprString(sel.X), name == readName, true
}
