package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package ready for analysis.
// In-package test files are checked together with the package proper;
// an external foo_test package becomes a second Package for the same
// directory.
type Package struct {
	Name     string // package clause name, e.g. "netsim"
	Dir      string // directory holding the sources
	Rel      string // module-relative slash path, e.g. "internal/netsim"
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
	TypeErrs []error // non-fatal type-checker complaints
}

// IsTestFile reports whether the file containing pos is a _test.go
// file.
func (p *Package) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Loader parses and type-checks packages inside one module without
// shelling out to the go tool: module-internal import paths are
// mapped straight onto directories, and the standard library is
// type-checked from GOROOT source.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string // absolute path of the directory holding go.mod
	ModulePath string // module path from go.mod, e.g. "tipsy"

	std types.Importer
	//tipsy:nolock type-checking is sequential; only the parse stage is parallel
	cache map[string]*types.Package
	//tipsy:nolock type-checking is sequential; only the parse stage is parallel
	busy map[string]bool
	// stdCache memoizes GOROOT type-checks in front of the source
	// importer, so a standard-library package costs one check per
	// loader no matter how many module packages import it.
	//tipsy:nolock type-checking is sequential; only the parse stage is parallel
	stdCache map[string]*types.Package

	// parsed caches each file's AST by path so a file read both as a
	// dependency (test-free Import) and for analysis (LoadDir with
	// tests) is parsed exactly once. mu guards it during the parallel
	// parse stage of LoadDirs; type-checking itself stays sequential.
	mu sync.Mutex
	//tipsy:guardedby mu
	parsed map[string]*ast.File
	//tipsy:guardedby mu
	parseErrs map[string]error
}

// NewLoader locates the enclosing module of dir and returns a loader
// for it.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*types.Package{},
		busy:       map[string]bool{},
		stdCache:   map[string]*types.Package{},
		parsed:     map[string]*ast.File{},
		parseErrs:  map[string]error{},
	}, nil
}

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Import implements types.Importer. Module-internal paths resolve to
// directories under ModuleRoot; everything else defers to the GOROOT
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	rel, ok := strings.CutPrefix(path, l.ModulePath+"/")
	if !ok {
		if path == l.ModulePath {
			rel = "."
		} else {
			if pkg, ok := l.stdCache[path]; ok {
				return pkg, nil
			}
			pkg, err := l.std.Import(path)
			if err == nil {
				l.stdCache[path] = pkg
			}
			return pkg, err
		}
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	files, _, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// goFilePaths lists the Go source files of dir in directory order
// (stable: os.ReadDir sorts by name).
func goFilePaths(dir string, withTests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !withTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		paths = append(paths, filepath.Join(dir, name))
	}
	return paths, nil
}

// parseFile parses path once per loader, returning the cached AST on
// every later request. Safe for concurrent use.
func (l *Loader) parseFile(path string) (*ast.File, error) {
	l.mu.Lock()
	if f, ok := l.parsed[path]; ok {
		err := l.parseErrs[path]
		l.mu.Unlock()
		return f, err
	}
	l.mu.Unlock()
	f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.parsed[path]; ok {
		// Lost a parse race; keep the first result so every consumer
		// sees one AST.
		return prev, l.parseErrs[path]
	}
	l.parsed[path], l.parseErrs[path] = f, err
	return f, err
}

// parseDir parses the Go files of dir, split into the primary
// package's files (plus in-package tests when withTests is set) and
// the files of an external _test package.
func (l *Loader) parseDir(dir string, withTests bool) (main, xtest []*ast.File, err error) {
	paths, err := goFilePaths(dir, withTests)
	if err != nil {
		return nil, nil, err
	}
	for _, path := range paths {
		f, err := l.parseFile(path)
		if err != nil {
			return nil, nil, err
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			xtest = append(xtest, f)
		} else {
			main = append(main, f)
		}
	}
	return main, xtest, nil
}

// LoadDir parses and type-checks the package in dir (tests included)
// and returns one Package per package clause found there.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	main, xtest, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	var out []*Package
	for _, files := range [][]*ast.File{main, xtest} {
		if len(files) == 0 {
			continue
		}
		out = append(out, l.check(files, dir, rel))
	}
	return out, nil
}

// LoadDirs loads every directory, parallelizing the parse stage with
// a bounded worker pool and then type-checking sequentially in the
// given directory order — so the returned packages (and therefore all
// diagnostics) are deterministic regardless of worker scheduling.
// workers <= 0 means GOMAXPROCS. Parsing is where the fan-out pays:
// each file is read and parsed exactly once into the shared cache,
// and the dependency-closure walk during type-checking then hits that
// cache instead of re-parsing.
func (l *Loader) LoadDirs(dirs []string, workers int) ([]*Package, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Stage 1: collect every file path, then parse with the pool.
	var paths []string
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		ps, err := goFilePaths(abs, true)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", dir, err)
		}
		paths = append(paths, ps...)
	}
	jobs := make(chan string)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for path := range jobs {
				if _, err := l.parseFile(path); err != nil && errs[w] == nil {
					errs[w] = err
				}
			}
		}(w)
	}
	for _, path := range paths {
		jobs <- path
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Stage 2: type-check in input order. Sequential on purpose —
	// go/types and the source importer are not concurrency-safe, and
	// the shared import cache means each dependency is checked once
	// anyway.
	var out []*Package
	for _, dir := range dirs {
		ps, err := l.LoadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", dir, err)
		}
		out = append(out, ps...)
	}
	return out, nil
}

// LoadSource type-checks a single in-memory file as its own package —
// the entry point the analyzer tests use for inline fixtures.
func (l *Loader) LoadSource(filename, src string) (*Package, error) {
	f, err := parser.ParseFile(l.Fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return l.check([]*ast.File{f}, ".", "."), nil
}

func (l *Loader) check(files []*ast.File, dir, rel string) *Package {
	p := &Package{
		Name: files[0].Name.Name,
		Dir:  dir,
		Rel:  rel,
		Fset: l.Fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrs = append(p.TypeErrs, err) },
	}
	// Check under the full import path so objects here and objects
	// reached through the import cache agree on Pkg().Path() — the
	// deep tier keys its call graph on that identity.
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + rel
	}
	if strings.HasSuffix(p.Name, "_test") {
		// External test packages import the package under test, so
		// they cannot share its path.
		path += "_test"
	}
	// The returned package is usable even when checking reported
	// errors; rules degrade gracefully on missing type info.
	p.Types, _ = conf.Check(path, l.Fset, files, p.Info)
	p.Files = files
	return p
}

// ExpandPatterns resolves command-line package patterns (a directory,
// or a "dir/..." wildcard) into the list of directories containing Go
// files. testdata, vendor, and hidden directories are skipped.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base, recursive = rest, true
			if base == "" || base == "." {
				base = root
			}
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
