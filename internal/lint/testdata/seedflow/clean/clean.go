// Package fixture seeds every generator from configuration, a
// parameter, or a constant — the shapes seedflow accepts.
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// Config carries the run's seed.
type Config struct {
	Seed int64
}

// FromParam seeds directly from a parameter.
func FromParam(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// FromConfig seeds from a config field.
func FromConfig(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed))
}

// derive is a pure helper over its parameter; the result stays
// parameter-derived.
func derive(seed int64, stream int64) int64 {
	return seed ^ stream*0x9e3779b9
}

// Derived seeds a per-stream generator from the base seed.
func Derived(cfg Config, stream int64) rand.Source {
	return rand.NewSource(derive(cfg.Seed, stream))
}

// Fixed seeds from a constant — replayable by definition.
func Fixed() rand.Source {
	return rand.NewSource(42)
}

// V2 seeds the v2 generators from parameters.
func V2(a, b uint64) *randv2.Rand {
	return randv2.New(randv2.NewPCG(a, b))
}

// ClosureClean captures a parameter-derived seed.
func ClosureClean(seed int64) func() *rand.Rand {
	return func() *rand.Rand {
		return rand.New(rand.NewSource(seed))
	}
}
