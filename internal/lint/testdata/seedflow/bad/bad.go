// Package fixture launders nondeterministic seeds in every way the
// seedflow rule must see through: locals, arithmetic, in-module
// helpers, process identity, entropy, and closures.
package fixture

import (
	crand "crypto/rand"
	"math/big"
	"math/rand"
	"os"
	"time"
)

// Local launders the wall clock through a local variable, which the
// purely syntactic determinism check cannot follow.
func Local() *rand.Rand {
	seed := time.Now().UnixNano()
	return rand.New(rand.NewSource(seed))
}

// clockSeed hides the wall clock behind a helper.
func clockSeed() int64 {
	return time.Now().UnixNano()
}

// Helper seeds from the helper's return value.
func Helper() rand.Source {
	return rand.NewSource(clockSeed())
}

// mix is an innocent-looking pure helper; nondeterminism in its
// argument flows straight through.
func mix(a int64) int64 {
	return a*2654435761 + 11400714819323198485>>32
}

// Mixed hashes the clock first — still the clock.
func Mixed() rand.Source {
	return rand.NewSource(mix(time.Now().Unix()))
}

// Pid seeds from process identity.
func Pid() rand.Source {
	return rand.NewSource(int64(os.Getpid()))
}

// Entropy seeds from crypto/rand, defeating replay entirely.
func Entropy() rand.Source {
	v, _ := crand.Int(crand.Reader, big.NewInt(1<<30))
	return rand.NewSource(v.Int64())
}

// Closure captures a tainted seed and constructs inside a literal.
func Closure() func() *rand.Rand {
	seed := time.Now().UnixNano()
	return func() *rand.Rand {
		return rand.New(rand.NewSource(seed))
	}
}
