// Package fixture contains every violation class the guardedby rule
// hunts: minority unguarded accesses against an inferred guard, an
// explicit //tipsy:guardedby pin overriding the access ratio, a write
// performed under only a read lock, a guarded access escaping into a
// goroutine closure, a locked helper poisoned by one lock-free call
// site, and malformed annotations.
package fixture

import "sync"

// Counter demonstrates majority inference: three of four accesses to
// n hold mu, so mu is inferred as n's guard and the lock-free read in
// Peek is flagged.
type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Dec() {
	c.mu.Lock()
	c.n--
	c.mu.Unlock()
}

func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Peek reads n without mu: the unguarded minority.
func (c *Counter) Peek() int {
	return c.n
}

// Gauge demonstrates the annotation override: only half of v's
// accesses are locked — far below the inference threshold — but the
// //tipsy:guardedby pin makes mu the guard regardless, so the
// lock-free write in Reset is flagged.
type Gauge struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	v int
}

func (g *Gauge) Set(v int) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

func (g *Gauge) Reset() {
	g.v = 0
}

// Table demonstrates RLock-write detection: Put mutates the map while
// holding only the read lock, which admits concurrent readers.
type Table struct {
	mu sync.RWMutex
	//tipsy:guardedby mu
	m map[string]int
}

func (t *Table) Get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func (t *Table) Put(k string, v int) {
	t.mu.RLock()
	t.m[k] = v
	t.mu.RUnlock()
}

// Job demonstrates closure escape: the goroutine body may run long
// after Start's deferred unlock, so the critical section around the
// go statement does not cover the write inside it.
type Job struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	state int
}

func (j *Job) Start() {
	j.mu.Lock()
	defer j.mu.Unlock()
	go func() {
		j.state++
	}()
}

// Queue demonstrates the cross-method closure's failure mode: Push
// calls pushLocked under mu but PushFast does not, so the
// intersection over call sites is empty and the helper's accesses are
// unguarded.
type Queue struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	items []int
}

func (q *Queue) Push(v int) {
	q.mu.Lock()
	q.pushLocked(v)
	q.mu.Unlock()
}

func (q *Queue) PushFast(v int) {
	q.pushLocked(v)
}

func (q *Queue) pushLocked(v int) {
	q.items = append(q.items, v)
}

// Config demonstrates the malformed annotations: a bare
// //tipsy:nolock is void, and //tipsy:guardedby must name a mutex
// field that exists.
type Config struct {
	mu sync.Mutex
	//tipsy:nolock
	flag bool
	//tipsy:guardedby
	level int
	//tipsy:guardedby lock
	depth int
}

func (c *Config) Flag() bool { return c.flag }
