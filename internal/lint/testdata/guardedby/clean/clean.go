// Package fixture exercises every guard discipline the guardedby
// rule must stay silent on: deferred unlocks spanning early returns,
// read locks for reads and write locks for writes, sync/atomic and
// reasoned //tipsy:nolock exemptions, constructor and zero-value
// initialization, locked helpers called only under the lock,
// synchronous sort comparators inside the critical section, and the
// //tipsy:guardedby-skip escape for an all-shards snapshot.
package fixture

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter locks every access to n; hits is an atomic and name is
// set-before-start configuration, both legitimately lock-free.
type Counter struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	n    int
	hits atomic.Int64
	//tipsy:nolock set before any goroutine starts and never written afterwards
	name string
}

// NewCounter initializes pre-publication state: the struct is not yet
// shared, so no lock is needed.
func NewCounter(name string, start int) *Counter {
	c := &Counter{name: name}
	c.n = start
	return c
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits.Add(1)
	c.incLocked()
}

// Add's deferred unlock spans the early return.
func (c *Counter) Add(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v == 0 {
		return
	}
	c.n += v
}

// incLocked is only ever called under mu, so the interprocedural
// closure treats the lock as held at entry.
func (c *Counter) incLocked() {
	c.n++
}

func (c *Counter) Name() string { return c.name }

func (c *Counter) Hits() int64 { return c.hits.Load() }

// Board takes the read lock for reads and the write lock for writes;
// the sort comparator runs synchronously inside Record's critical
// section.
type Board struct {
	mu sync.RWMutex
	//tipsy:guardedby mu
	scores []int
}

func (b *Board) Top() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(b.scores) == 0 {
		return 0
	}
	return b.scores[0]
}

func (b *Board) Record(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.scores = append(b.scores, v)
	sort.Slice(b.scores, func(i, j int) bool { return b.scores[i] > b.scores[j] })
}

// Rebuild fills a zero-value local: fresh unshared storage needs no
// lock until it is published.
func Rebuild(scores []int) *Board {
	var b Board
	b.scores = append(b.scores, scores...)
	return &b
}

// TotalScores takes every board's lock before touching any board — a
// quantified critical section the must-hold dataflow cannot see.
//
//tipsy:guardedby-skip all boards are locked in the first loop before any scores access below
func TotalScores(boards []*Board) int {
	for _, b := range boards {
		b.mu.RLock()
	}
	total := 0
	for _, b := range boards {
		total += len(b.scores)
	}
	for _, b := range boards {
		b.mu.RUnlock()
	}
	return total
}
