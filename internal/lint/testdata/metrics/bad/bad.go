// Package fixture hoards event counters as bare struct integers,
// invisible to /metrics and impossible to scrape.
package fixture

// receiver tracks its own counters instead of using the registry.
type receiver struct {
	msgCount    uint64
	bytesTotal  uint64
	dropped     int
	quarantined uint32
	state       []byte
}

// Bump is only here so the fields are used.
func (r *receiver) Bump(n int) {
	r.msgCount++
	r.bytesTotal += uint64(n)
	r.dropped++
	r.quarantined++
	r.state = append(r.state, 0)
}
