// Package fixture keeps counters off bare struct fields: live
// counters would be registry-backed, and only the sanctioned
// snapshot types return plain integers to callers.
package fixture

// ReceiverStats is a read-side snapshot: exempt by the *Stats naming
// convention.
type ReceiverStats struct {
	MsgCount    uint64
	Dropped     uint64
	Quarantined uint64
}

// seqGap is sized state, not an event counter: a bare "count" does
// not trip the rule.
type seqGap struct {
	start uint32
	count uint32
}

// receiver holds only non-counter state.
type receiver struct {
	sampling uint32
	gaps     []seqGap
	pending  [][]byte
}

// Snapshot drains into the exempt snapshot type.
func (r *receiver) Snapshot() ReceiverStats {
	return ReceiverStats{MsgCount: uint64(len(r.pending)), Dropped: 0, Quarantined: uint64(r.gaps[0].count)}
}
