// Package fixture logs through the legacy log package: unlevelled,
// unstructured, invisible to the -log-level / -log-json flags.
package fixture

import "log"

func serve(addr string) {
	log.Printf("listening on %s", addr)
	if addr == "" {
		log.Fatal("no listen address")
	}
	log.Println("serving")
}
