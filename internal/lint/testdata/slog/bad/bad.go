// Package fixture logs through the legacy log package: unlevelled,
// unstructured, invisible to the -log-level / -log-json flags.
package fixture

import (
	"fmt"
	"log"
)

func serve(addr string) {
	log.Printf("listening on %s", addr)
	if addr == "" {
		log.Fatal("no listen address")
	}
	log.Println("serving")
}

// report writes ad-hoc diagnostics straight to stdout, bypassing the
// log level and JSON flags entirely.
func report(n int) {
	fmt.Printf("processed %d\n", n)
	fmt.Println("done")
	fmt.Print("bye")
}
