// Package fixture logs through log/slog. The local value named log
// proves the rule identifies the stdlib package by type resolution,
// not by identifier spelling.
package fixture

import (
	"fmt"
	"io"
	"log/slog"
)

type prefixLogger struct{}

func (prefixLogger) Printf(string, ...any) {}

func serve(addr string) {
	logger := slog.Default().With("component", "serve")
	logger.Info("listening", "addr", addr)

	var log prefixLogger
	log.Printf("not the stdlib logger")
}

// render is formatting, not printing: the Sprintf/Fprintf families
// stay legal, as does writing to an explicit writer.
func render(w io.Writer, n int) string {
	fmt.Fprintf(w, "processed %d\n", n)
	return fmt.Sprintf("%d", n)
}
