// Package fixture violates every determinism convention: wall-clock
// reads, the process-global RNG, and a time-seeded generator.
package fixture

import (
	"math/rand"
	"time"
)

// Jitter draws from the global generator and stamps with the wall
// clock.
func Jitter() (int, time.Time) {
	n := rand.Intn(100)
	return n, time.Now()
}

// NewRNG seeds from the clock, so no two runs replay.
func NewRNG() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// Shuffle uses the global Shuffle.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
