// Package fixture follows the seeded-substrate conventions: every
// random draw comes from an injected *rand.Rand built from an
// explicit seed, and timestamps derive from simulated hours.
package fixture

import "math/rand"

// Config carries the explicit seed.
type Config struct{ Seed int64 }

// NewRNG builds the sanctioned generator.
func NewRNG(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed))
}

// Jitter draws from the injected generator.
func Jitter(rng *rand.Rand) int {
	return rng.Intn(100)
}

// Stamp derives a timestamp from the simulated hour, not the clock.
func Stamp(hour uint32) uint32 {
	return hour * 3600
}
