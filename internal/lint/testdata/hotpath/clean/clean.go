// Package clean holds hot functions written to the zero-allocation
// discipline the tier enforces: caller-provided buffers, no per-item
// conversions, closures that never leave their frame.
package clean

import "encoding/binary"

//tipsy:hotpath
func sum(xs []uint64) uint64 {
	var total uint64
	for _, x := range xs {
		total += x
	}
	return total
}

//tipsy:hotpath
func decodeInto(dst []uint64, wire []byte) int {
	n := 0
	for len(wire) >= 8 && n < len(dst) {
		dst[n] = binary.BigEndian.Uint64(wire) // store into a caller buffer: no allocation
		wire = wire[8:]
		n++
	}
	return n
}

//tipsy:hotpath
func fold(xs []int) int {
	// A closure that is only called locally stays on the stack.
	step := func(acc, x int) int { return acc + x }
	acc := 0
	for _, x := range xs {
		acc = step(acc, x)
	}
	return acc
}

// grow allocates freely but is cold — outside every root's closure —
// so the tier must not flag it.
func grow(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
