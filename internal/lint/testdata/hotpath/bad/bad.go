// Package bad plants at least one violation per hotpath allocation
// category; the golden test pins every diagnostic the tier must
// produce. No budget file covers these identities, so every site is
// over the (zero) budget.
package bad

import (
	"fmt"
	"time"
)

type entry struct {
	key  string
	hits int
}

//tipsy:hotpath
func ingest(frames [][]byte) []string {
	var out []string
	for _, f := range frames {
		out = append(out, decode(f)) // append-loop
	}
	return out
}

// decode is hot via ingest without its own annotation.
func decode(frame []byte) string {
	return string(frame) // string-conv
}

//tipsy:hotpath
func account(counts map[string]int, keys []string) []entry {
	var out []entry
	for _, k := range keys {
		counts[k]++                 // map-insert-loop
		scratch := make([]byte, 16) // alloc-loop (make)
		_ = scratch
		out = append(out, entry{key: k}) // append-loop + alloc-loop (composite)
		started := time.Now()            // time-loop
		defer trace(k, started)          // defer-loop
	}
	return out
}

// trace is hot via account; both Sprintf arguments box.
func trace(k string, t time.Time) {
	_ = fmt.Sprintf("%s@%d", k, t.Unix()) // boxing x2
}

//tipsy:hotpath
func subscribe(reg func(func() int)) {
	n := 0
	tick := func() int { n++; return n } // closure-escape
	reg(tick)
}

// cold carries the same shapes as ingest but no annotation and no hot
// caller: the tier must stay silent on it.
func cold(keys []string) []string {
	var out []string
	for _, k := range keys {
		out = append(out, k)
	}
	return out
}
