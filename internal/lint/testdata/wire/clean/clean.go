// Package fixture follows the wire-encoder conventions: errors are
// propagated, sizes are explicit, and the bytes.Buffer exemption
// applies.
package fixture

import (
	"bytes"
	"encoding/binary"
	"io"
)

// Header is fixed-size throughout.
type Header struct {
	Version uint16
	Length  uint16
}

// EncodeHeader propagates the error.
func EncodeHeader(w io.Writer, h Header) error {
	return binary.Write(w, binary.BigEndian, h)
}

// EncodeCount sizes the count explicitly.
func EncodeCount(w io.Writer, n int) error {
	return binary.Write(w, binary.BigEndian, uint32(n))
}

// Marshal builds the PDU in a bytes.Buffer, whose writes never fail.
func Marshal(h Header, body []byte) []byte {
	var buf bytes.Buffer
	buf.Write([]byte{byte(h.Version >> 8), byte(h.Version)})
	buf.Write(body)
	return buf.Bytes()
}

// Flush checks the writer's error.
func Flush(w io.Writer, buf []byte) error {
	_, err := w.Write(buf)
	return err
}
