// Package fixture violates the wire-encoder conventions: dropped
// write errors and non-fixed-size binary.Write arguments.
package fixture

import (
	"encoding/binary"
	"io"
)

// Header is wire-safe on its own.
type Header struct {
	Version uint16
	Length  uint16
}

// Message mixes in a slice, so binary.Write rejects it at runtime.
type Message struct {
	Header Header
	Body   []byte
}

// EncodeHeader drops the binary.Write error outright.
func EncodeHeader(w io.Writer, h Header) {
	binary.Write(w, binary.BigEndian, h)
}

// EncodeBlank discards the error into the blank identifier.
func EncodeBlank(w io.Writer, h Header) {
	_ = binary.Write(w, binary.BigEndian, h)
}

// EncodeCount passes a bare int, which has no fixed wire size.
func EncodeCount(w io.Writer, n int) error {
	return binary.Write(w, binary.BigEndian, n)
}

// EncodeMessage passes a struct with a slice field.
func EncodeMessage(w io.Writer, m Message) error {
	return binary.Write(w, binary.BigEndian, m)
}

// Flush drops the short-write information from the io.Writer.
func Flush(w io.Writer, buf []byte) {
	w.Write(buf)
}
