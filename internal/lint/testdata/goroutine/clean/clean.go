// Package fixture follows the goroutine conventions: loop variables
// passed as arguments, and every goroutine stoppable or awaitable.
package fixture

import (
	"context"
	"sync"
)

// FanOut passes the loop variable and joins on the WaitGroup.
func FanOut(items []int, wg *sync.WaitGroup) {
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			process(items[i])
		}(i)
	}
}

// Background honours its context.
func Background(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				process(0)
			}
		}
	}()
}

// Pump drains a channel; closing it stops the goroutine.
func Pump(work chan int) {
	go func() {
		for w := range work {
			process(w)
		}
	}()
}

func process(int) {}
