// Package fixture violates the goroutine conventions: a loop-variable
// capture and a background loop nothing can stop.
package fixture

import "sync"

// FanOut captures the loop variable instead of passing it.
func FanOut(items []int, wg *sync.WaitGroup) {
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(items[i])
		}()
	}
}

// Background spins a goroutine with no context, channel, or
// WaitGroup — it can never be stopped or awaited.
func Background() {
	go func() {
		for {
			process(0)
		}
	}()
}

func process(int) {}
