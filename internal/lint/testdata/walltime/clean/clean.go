// Package clean reads every timestamp through an injected clock; the
// single wall-clock entry point is a declared clock source.
package clean

import "time"

type server struct {
	clock func() int64
}

// realClock is the production clock behind server.clock.
//
//tipsy:clocksource
func realClock() int64 { return time.Now().UnixNano() }

func newServer() *server { return &server{clock: realClock} }

func (s *server) observe() int64 {
	start := s.clock()
	return s.clock() - start
}
