// Package bad times its work straight off the wall clock instead of
// the owner's injected clock source.
package bad

import "time"

type server struct {
	clock  func() int64
	lastNs int64
}

// observe stamps a latency with the ambient clock — undumpable under
// a fake clock, so golden trace tests can never cover it.
func (s *server) observe() int64 {
	start := time.Now()
	s.lastNs = time.Since(start).Nanoseconds()
	return time.Now().UnixNano()
}

// stamp hides the violation inside a closure; the directive-less
// enclosing function is still on the hook.
func stamp() func() int64 {
	return func() int64 { return time.Now().UnixNano() }
}
