// Package fixture contains the two deadlock shapes the rule hunts:
// a method re-entering its own mutex through a helper call, and two
// mutexes acquired in opposite orders on different paths.
package fixture

import "sync"

// Store self-deadlocks: Flush takes the lock and then calls Len,
// which takes it again. sync.Mutex is not reentrant.
type Store struct {
	mu    sync.Mutex
	items []string
}

// Len acquires the lock on its own.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Flush calls Len while already holding s.mu.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Len() == 0 {
		return
	}
	s.items = nil
}

// Pool and Queue acquire each other's locks in opposite orders.
type Pool struct {
	mu   sync.Mutex
	free int
}

type Queue struct {
	mu      sync.Mutex
	pending int
}

// Drain locks the pool, then the queue.
func Drain(p *Pool, q *Queue) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pending = 0
	p.free++
}

// Refill locks the queue, then the pool — the opposite order, so the
// two functions can deadlock against each other.
func Refill(p *Pool, q *Queue) {
	q.mu.Lock()
	defer q.mu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free--
	q.pending++
}
