// Package fixture holds locks correctly: helpers are called after
// release, lock-free variants exist for use under the lock, and all
// multi-lock paths agree on one global order.
package fixture

import "sync"

// Store releases before calling its locking helper, and uses a
// lock-free variant while the lock is held.
type Store struct {
	mu    sync.Mutex
	items []string
}

func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lenLocked()
}

// lenLocked must be called with s.mu held.
func (s *Store) lenLocked() int { return len(s.items) }

// Flush uses the locked variant inside the critical section.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lenLocked() == 0 {
		return
	}
	s.items = nil
}

// Report takes the lock only after the helper returned.
func (s *Store) Report() int {
	n := s.Len()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = s.items[:0]
	return n
}

// Pool and Queue are always acquired pool-first.
type Pool struct {
	mu   sync.Mutex
	free int
}

type Queue struct {
	mu      sync.Mutex
	pending int
}

// Drain locks pool, then queue.
func Drain(p *Pool, q *Queue) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pending = 0
	p.free++
}

// Refill keeps the same pool-before-queue order.
func Refill(p *Pool, q *Queue) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q.mu.Lock()
	defer q.mu.Unlock()
	p.free--
	q.pending++
}
