// Package fixture leaks map iteration order into every kind of sink
// the maporder rule knows: returned slices, struct fields, writers,
// encoders, and one-hop helper calls.
package fixture

import (
	"fmt"
	"io"
	"strings"
)

// Keys returns the keys in map order — the caller sees a different
// ordering every run.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Index caches the link list on the struct without ever sorting it.
type Index struct {
	links []string
}

// Rebuild stores a map-ordered slice into a field that outlives the
// function.
func (ix *Index) Rebuild(weights map[string]float64) {
	ix.links = nil
	for l := range weights {
		ix.links = append(ix.links, l)
	}
}

// Dump streams entries straight out of the range loop.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Render appends formatted rows to a builder inside the loop.
func Render(m map[string]string) string {
	var b strings.Builder
	for k, v := range m {
		b.WriteString(k + ":" + v + ";")
	}
	return b.String()
}

// emit is the helper Forward launders its slice through: one call hop
// between the range and the writer.
func emit(w io.Writer, rows []string) {
	for _, r := range rows {
		fmt.Fprintln(w, r)
	}
}

// Forward collects in map order and hands the slice to a helper that
// writes it.
func Forward(w io.Writer, m map[string]bool) {
	var rows []string
	for k := range m {
		rows = append(rows, k)
	}
	emit(w, rows)
}
