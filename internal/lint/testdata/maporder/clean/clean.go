// Package fixture shows the approved shapes: collect-then-sort, sort
// laundering through helpers, and scalar derivations that cannot leak
// an ordering.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

// Keys collects then sorts before returning.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Index caches the link list on the struct, sorted.
type Index struct {
	links []string
}

// Rebuild stores the field in map order but sorts it before the
// function returns — the standard collect-then-sort idiom.
func (ix *Index) Rebuild(weights map[string]float64) {
	ix.links = nil
	for l := range weights {
		ix.links = append(ix.links, l)
	}
	sort.Slice(ix.links, func(i, j int) bool { return ix.links[i] < ix.links[j] })
}

// Dump iterates the sorted key slice, so the output order is fixed.
func Dump(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// orderRows is an in-module helper that sorts its argument in place:
// callers handing it a map-ordered slice end up deterministic.
func orderRows(rows []string) {
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
}

// Forward launders the order through the sorting helper before the
// write.
func Forward(w io.Writer, m map[string]bool) {
	var rows []string
	for k := range m {
		rows = append(rows, k)
	}
	orderRows(rows)
	for _, r := range rows {
		fmt.Fprintln(w, r)
	}
}

// Count derives a scalar from the iteration — order-blind, no
// finding.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
