// Package fixture follows the lock-hygiene conventions: pointer
// receivers on mutex-bearing structs, defer for multi-path functions,
// and explicit unlocks that precede every return.
package fixture

import "sync"

// Counter embeds its lock.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Value releases via defer.
func (c *Counter) Value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Add releases explicitly before its single return path.
func (c *Counter) Add(d int) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

// Transition releases on both paths before returning — the handshake
// pattern, where the critical section must not span the slow work.
func (c *Counter) Transition(want int) bool {
	c.mu.Lock()
	if c.n != want {
		c.mu.Unlock()
		return false
	}
	c.n++
	c.mu.Unlock()
	slowWork()
	return true
}

func slowWork() {}
