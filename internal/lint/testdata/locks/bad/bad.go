// Package fixture violates the lock-hygiene conventions: a value
// receiver copying its mutex, an early return that leaks the lock,
// and a lock that is never released.
package fixture

import "sync"

// Counter embeds its lock.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Value has a value receiver, so it locks a copy of mu.
func (c Counter) Value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Lookup leaks the read lock on the early return.
func (c *Counter) Lookup(want int) bool {
	c.mu.Lock()
	if c.n == want {
		return true
	}
	c.mu.Unlock()
	return false
}

// Seal takes the lock and never gives it back.
func (c *Counter) Seal() {
	c.mu.Lock()
	c.n = -1
}
