package lint

import (
	"strings"
	"testing"
)

// runGuardedBy runs the guardedby rule alone over one in-memory file.
func runGuardedBy(t *testing.T, name, src string) []Diagnostic {
	t.Helper()
	p, err := loader(t).LoadSource(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return Run([]*Package{p}, []Rule{descope(ruleByName(t, "guardedby"))})
}

func messages(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}

func wantNone(t *testing.T, diags []Diagnostic) {
	t.Helper()
	if len(diags) != 0 {
		t.Errorf("expected no diagnostics, got:\n%s", strings.Join(messages(diags), "\n"))
	}
}

func wantOne(t *testing.T, diags []Diagnostic, substr string) {
	t.Helper()
	if len(diags) != 1 || !strings.Contains(diags[0].Message, substr) {
		t.Errorf("expected exactly one diagnostic containing %q, got:\n%s",
			substr, strings.Join(messages(diags), "\n"))
	}
}

// TestGuardedByDeferSpansEarlyReturns proves a deferred unlock keeps
// the lock held across every return path, including ones buried in
// branches, and that a manual unlock before a return correctly ends
// the critical section.
func TestGuardedByDeferSpansEarlyReturns(t *testing.T) {
	wantNone(t, runGuardedBy(t, "gb_defer_clean.go", `package p
import "sync"
type T struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	n int
}
func (t *T) Classify(v int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if v < 0 {
		return -t.n
	}
	if v == 0 {
		return 0
	}
	for i := 0; i < v; i++ {
		t.n++
	}
	return t.n
}
`))

	// After a manual Unlock the critical section is over: the access
	// on the post-unlock return path must be flagged.
	wantOne(t, runGuardedBy(t, "gb_defer_bad.go", `package p
import "sync"
type T struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	n int
}
func (t *T) Leak() int {
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
	return t.n
}
`), "unguarded read of tipsy.T.n")
}

// TestGuardedByClosures pins the closure policy: a goroutine or
// otherwise-escaping closure loses the creating function's critical
// section, while a synchronous sort comparator keeps it.
func TestGuardedByClosures(t *testing.T) {
	diags := runGuardedBy(t, "gb_closure_escape.go", `package p
import "sync"
type T struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	n int
}
func (t *T) Spawn() {
	t.mu.Lock()
	defer t.mu.Unlock()
	go func() { t.n++ }()
}
`)
	wantOne(t, diags, "escaping closure")

	wantNone(t, runGuardedBy(t, "gb_closure_sync.go", `package p
import (
	"sort"
	"sync"
)
type T struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	xs []int
}
func (t *T) Sort() {
	t.mu.Lock()
	defer t.mu.Unlock()
	sort.Slice(t.xs, func(i, j int) bool { return t.xs[i] < t.xs[j] })
}
`))

	// A closure stored for later runs outside the critical section
	// even without a go statement.
	wantOne(t, runGuardedBy(t, "gb_closure_stored.go", `package p
import "sync"
type T struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	n int
}
var hooks []func()
func (t *T) Defer() {
	t.mu.Lock()
	defer t.mu.Unlock()
	hooks = append(hooks, func() { t.n++ })
}
`), "escaping closure")
}

// TestGuardedByRLockWrite pins the read-lock policy: reads under
// RLock are fine, writes under RLock are flagged, and an upgrade to
// the write lock clears it.
func TestGuardedByRLockWrite(t *testing.T) {
	wantNone(t, runGuardedBy(t, "gb_rlock_clean.go", `package p
import "sync"
type T struct {
	mu sync.RWMutex
	//tipsy:guardedby mu
	m map[string]int
}
func (t *T) Get(k string) int { t.mu.RLock(); defer t.mu.RUnlock(); return t.m[k] }
func (t *T) Put(k string, v int) { t.mu.Lock(); defer t.mu.Unlock(); t.m[k] = v }
`))

	wantOne(t, runGuardedBy(t, "gb_rlock_bad.go", `package p
import "sync"
type T struct {
	mu sync.RWMutex
	//tipsy:guardedby mu
	m map[string]int
}
func (t *T) Put(k string, v int) { t.mu.RLock(); t.m[k] = v; t.mu.RUnlock() }
`), "a read lock admits concurrent readers")
}

// TestGuardedByInterprocedural proves entry-lock inference through
// both receiver calls and guarded-struct parameters, and that a
// single lock-free call site poisons the closure.
func TestGuardedByInterprocedural(t *testing.T) {
	wantNone(t, runGuardedBy(t, "gb_inter_recv.go", `package p
import "sync"
type T struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	n int
}
func (t *T) Inc() { t.mu.Lock(); defer t.mu.Unlock(); t.incLocked() }
func (t *T) Add(v int) { t.mu.Lock(); defer t.mu.Unlock(); for i := 0; i < v; i++ { t.incLocked() } }
func (t *T) incLocked() { t.n++ }
`))

	// The shard arrives as a parameter, not the receiver, and the
	// helper chains it on to a second helper.
	wantNone(t, runGuardedBy(t, "gb_inter_param.go", `package p
import "sync"
type shard struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	m map[int]int
}
type agg struct{ shards [4]shard }
func (a *agg) Put(k, v int) {
	s := &a.shards[k%4]
	s.mu.Lock()
	apply(s, k, v)
	s.mu.Unlock()
}
func apply(s *shard, k, v int) { chain(s, k, v) }
func chain(s *shard, k, v int) { s.m[k] = v }
`))

	diags := runGuardedBy(t, "gb_inter_poison.go", `package p
import "sync"
type T struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	n int
}
func (t *T) Inc() { t.mu.Lock(); defer t.mu.Unlock(); t.incLocked() }
func (t *T) Race() { t.incLocked() }
func (t *T) incLocked() { t.n++ }
`)
	wantOne(t, diags, "unguarded write to tipsy.T.n")

	// Exported helpers never inherit entry locks: external callers
	// are invisible to the call-graph closure.
	wantOne(t, runGuardedBy(t, "gb_inter_exported.go", `package p
import "sync"
type T struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	n int
}
func (t *T) Inc() { t.mu.Lock(); defer t.mu.Unlock(); t.IncLocked() }
func (t *T) IncLocked() { t.n++ }
`), "unguarded write to tipsy.T.n")
}

// TestGuardedByExemptions covers the accesses the rule must not
// flag: constructor bodies, zero-value locals, sync/atomic fields and
// atomic calls on &t.f, and reasoned //tipsy:nolock fields.
func TestGuardedByExemptions(t *testing.T) {
	wantNone(t, runGuardedBy(t, "gb_exempt.go", `package p
import (
	"sync"
	"sync/atomic"
)
type T struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	n    int
	hits atomic.Int64
	raw  uint64
	//tipsy:nolock set once at startup, read-only afterwards
	name string
}
func New(name string) *T {
	t := &T{name: name}
	t.n = 1
	t.raw = 2
	return t
}
func Zero() *T {
	var t T
	t.n = 3
	return &t
}
func (t *T) Inc() { t.mu.Lock(); defer t.mu.Unlock(); t.n++ }
func (t *T) Touch() {
	t.hits.Add(1)
	atomic.AddUint64(&t.raw, 1)
}
func (t *T) Name() string { return t.name }
`))
}

// TestGuardedBySkipDirective pins the function-level escape hatch: a
// reasoned //tipsy:guardedby-skip silences the function, a bare one
// is void and reported.
func TestGuardedBySkipDirective(t *testing.T) {
	wantNone(t, runGuardedBy(t, "gb_skip_ok.go", `package p
import "sync"
type T struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	n int
}
func (t *T) Inc() { t.mu.Lock(); defer t.mu.Unlock(); t.n++ }

//tipsy:guardedby-skip all instances are locked in a loop first
func Sum(ts []*T) int {
	for _, t := range ts {
		t.mu.Lock()
	}
	total := 0
	for _, t := range ts {
		total += t.n
	}
	for _, t := range ts {
		t.mu.Unlock()
	}
	return total
}
`))

	diags := runGuardedBy(t, "gb_skip_bare.go", `package p
import "sync"
type T struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	n int
}
func (t *T) Inc() { t.mu.Lock(); defer t.mu.Unlock(); t.n++ }

//tipsy:guardedby-skip
func Sum(ts []*T) int {
	total := 0
	for _, t := range ts {
		total += t.n
	}
	return total
}
`)
	wantOne(t, diags, "needs a reason")
}

// TestGuardedByInferenceThreshold pins the majority rule: three
// locked accesses against one unlocked infer the guard, but an even
// split stays silent — inference must not manufacture guards from
// mixed disciplines.
func TestGuardedByInferenceThreshold(t *testing.T) {
	wantOne(t, runGuardedBy(t, "gb_thresh_fire.go", `package p
import "sync"
type T struct {
	mu sync.Mutex
	n  int
}
func (t *T) A() { t.mu.Lock(); t.n++; t.mu.Unlock() }
func (t *T) B() { t.mu.Lock(); t.n--; t.mu.Unlock() }
func (t *T) C() int { t.mu.Lock(); defer t.mu.Unlock(); return t.n }
func (t *T) D() int { return t.n }
`), "inferred from 3/4 locked accesses")

	wantNone(t, runGuardedBy(t, "gb_thresh_quiet.go", `package p
import "sync"
type T struct {
	mu sync.Mutex
	n  int
}
func (t *T) A() { t.mu.Lock(); t.n++; t.mu.Unlock() }
func (t *T) B() int { return t.n }
`))
}
