package lint

import (
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Suppression is one //lint:ignore directive found in the source.
type Suppression struct {
	Pos    token.Position
	Rule   string
	Reason string // empty when the directive gives none — a violation
}

// CollectSuppressions lists every //lint:ignore directive in pkgs in
// position order, including reasonless ones (which the run loop in
// lint.go treats as void: they silence nothing, but they still clutter
// the tree and are surfaced here so CI can reject them).
func CollectSuppressions(pkgs []*Package) []Suppression {
	var out []Suppression
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					s := Suppression{Pos: p.Fset.Position(c.Pos())}
					if len(fields) > 0 {
						s.Rule = fields[0]
					}
					if len(fields) > 1 {
						s.Reason = strings.Join(fields[1:], " ")
					}
					out = append(out, s)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// WriteSuppressions prints one directive per line and reports whether
// any directive is invalid (missing rule or reason).
func WriteSuppressions(w io.Writer, sups []Suppression) (bad bool) {
	for _, s := range sups {
		switch {
		case s.Rule == "":
			fmt.Fprintf(w, "%s:%d: [?] INVALID: no rule or reason\n", s.Pos.Filename, s.Pos.Line)
			bad = true
		case s.Reason == "":
			fmt.Fprintf(w, "%s:%d: [%s] INVALID: no reason given\n", s.Pos.Filename, s.Pos.Line, s.Rule)
			bad = true
		default:
			fmt.Fprintf(w, "%s:%d: [%s] %s\n", s.Pos.Filename, s.Pos.Line, s.Rule, s.Reason)
		}
	}
	return bad
}
