package lint

import (
	"os"
	"strings"
	"testing"
)

// TestReadmeRuleTableInSync holds README.md's rule table to the
// registry exactly: same rules, same order, same tier, and a contract
// column that is the rule's Doc string verbatim. A rule added,
// renamed, re-tiered, or re-documented without touching the README
// fails here.
func TestReadmeRuleTableInSync(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	type row struct{ name, tier, doc string }
	var rows []row
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cells := strings.Split(line, "|")
		// "| `name` | tier | doc |" splits into 5 cells with empty ends.
		if len(cells) != 5 {
			t.Fatalf("malformed rule-table row (want 3 columns): %q", line)
		}
		rows = append(rows, row{
			name: strings.Trim(strings.TrimSpace(cells[1]), "`"),
			tier: strings.TrimSpace(cells[2]),
			doc:  strings.TrimSpace(cells[3]),
		})
	}
	rules := RulesWithBudget("")
	if len(rows) != len(rules) {
		var got, want []string
		for _, r := range rows {
			got = append(got, r.name)
		}
		for _, r := range rules {
			want = append(want, r.Name)
		}
		t.Fatalf("README rule table has %d rows [%s], registry has %d rules [%s]",
			len(rows), strings.Join(got, ", "), len(rules), strings.Join(want, ", "))
	}
	for i, r := range rules {
		tier := "syntactic"
		if r.DeepCheck != nil {
			tier = "deep"
		}
		if rows[i].name != r.Name {
			t.Errorf("row %d: README names %q, registry names %q (order must match)",
				i, rows[i].name, r.Name)
			continue
		}
		if rows[i].tier != tier {
			t.Errorf("rule %s: README says tier %q, registry says %q", r.Name, rows[i].tier, tier)
		}
		if rows[i].doc != r.Doc {
			t.Errorf("rule %s: README contract drifted from Rule.Doc:\nREADME:   %s\nregistry: %s",
				r.Name, rows[i].doc, r.Doc)
		}
		hasSection := false
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "#") && strings.Contains(line, "`"+r.Name+"`") {
				hasSection = true
				break
			}
		}
		if !hasSection {
			t.Errorf("rule %s: README has no heading mentioning `%s`", r.Name, r.Name)
		}
	}
}
