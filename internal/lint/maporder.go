package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// The maporder rule guards the replay-determinism contract against
// Go's randomized map iteration order. A range over a map is fine on
// its own; it becomes a bug the moment the iteration order reaches
// something order-sensitive — a slice that is returned or emitted, an
// io.Writer, an encoder — without an interposed sort. The provenance
// engine tracks the loop's key/value through locals, appends, string
// formatting, and one in-module call hop; sort.* (and in-module
// helpers that sort their argument) launder the order back to
// deterministic.

// sinkSummary is the memoized one-hop view of an in-module function:
// which parameters it forwards into an order-sensitive sink, and
// which slice parameters it sorts in place.
type sinkSummary struct {
	paramSink  map[int]string // param index -> sink description
	paramSorts map[int]bool
	busy       bool
}

// mapOrderHooks classifies calls for the provenance engine. depth
// limits interprocedural recursion to the one call hop the rule
// promises.
type mapOrderHooks struct {
	prog  *Program
	pkg   *Package
	depth int
}

func (h *mapOrderHooks) EvalCall(call *ast.CallExpr, recv tagSet, args []tagSet) []tagSet {
	fn := calleeFunc(h.pkg, call)
	if fn == nil {
		return []tagSet{union(append(args, recv)...)}
	}
	if _, inModule := h.prog.Graph.Nodes[FuncID(fn)]; inModule {
		// In-module results are treated as clean: a helper that
		// builds an unsorted aggregate from a map gets flagged at its
		// own range statement, so tracking its result here would
		// double-report the same root cause.
		return nil
	}
	// Out-of-module calls pass provenance through: fmt.Sprintf of a
	// map key is still map-iteration data, strings.Join of a
	// map-ordered slice is still map-ordered.
	return []tagSet{union(append(args, recv)...)}
}

func (h *mapOrderHooks) RangeTags(rs *ast.RangeStmt, xTags tagSet, isMap bool) (key, val tagSet) {
	if isMap {
		key = singleton(Tag{Kind: TagMapKey, Site: rs.Pos()})
		val = singleton(Tag{Kind: TagMapVal, Site: rs.Pos()})
		return key, val
	}
	// Ranging over a slice: the index is clean; the element inherits
	// the slice's provenance, with aggregate order turning back into
	// per-element map-iteration tags (iterating an unsorted
	// key slice yields keys in map order).
	var elem tagSet
	for t := range xTags {
		if t.Kind == TagMapOrdered {
			t = Tag{Kind: TagMapVal, Site: t.Site}
		}
		if elem == nil {
			elem = tagSet{}
		}
		elem[t] = struct{}{}
	}
	return nil, elem
}

// sorterArg returns the expression a recognized sorting call orders,
// or nil.
func sorterArg(p *Package, call *ast.CallExpr) ast.Expr {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return nil
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "sort" && (name == "Strings" || name == "Ints" || name == "Float64s" ||
		name == "Slice" || name == "SliceStable" || name == "Sort" || name == "Stable"):
		arg := ast.Unparen(call.Args[0])
		// sort.Sort(byName(keys)): look through the conversion to the
		// underlying slice.
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			if tv, ok := p.Info.Types[conv.Fun]; ok && tv.IsType() {
				return conv.Args[0]
			}
		}
		return arg
	case path == "slices" && strings.HasPrefix(name, "Sort"):
		return ast.Unparen(call.Args[0])
	}
	return nil
}

func (h *mapOrderHooks) CleanseArgs(call *ast.CallExpr) []ast.Expr {
	if arg := sorterArg(h.pkg, call); arg != nil {
		return []ast.Expr{arg}
	}
	if h.depth > 0 {
		return nil
	}
	fn := calleeFunc(h.pkg, call)
	if fn == nil {
		return nil
	}
	node, ok := h.prog.Graph.Nodes[FuncID(fn)]
	if !ok {
		return nil
	}
	sum := h.prog.mapSinkSummary(node)
	var out []ast.Expr
	for i := range call.Args {
		if sum.paramSorts[i] {
			out = append(out, call.Args[i])
		}
	}
	return out
}

// mapSinkSummary computes (and memoizes) the one-hop sink summary of
// node.
func (prog *Program) mapSinkSummary(node *FuncNode) *sinkSummary {
	if sum, ok := prog.sinkSums[node.ID]; ok {
		if sum.busy {
			return &sinkSummary{}
		}
		return sum
	}
	prog.sinkSums[node.ID] = &sinkSummary{busy: true}
	sum := &sinkSummary{paramSink: map[int]string{}, paramSorts: map[int]bool{}}
	hooks := &mapOrderHooks{prog: prog, pkg: node.Pkg, depth: 1}
	pv := analyzeFunc(node.Pkg, node.Decl, hooks)
	pv.visit(func(s ast.Stmt, e env) {
		inspectShallow(s, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if arg := sorterArg(node.Pkg, call); arg != nil {
				for t := range pv.eval(arg, e) {
					if t.Kind == TagParam && t.Index >= 0 {
						sum.paramSorts[t.Index] = true
					}
				}
				return true
			}
			desc, valueArgs := outputSink(prog, node.Pkg, call)
			if desc == "" {
				return true
			}
			for _, a := range valueArgs {
				for t := range pv.eval(a, e) {
					if t.Kind == TagParam && t.Index >= 0 {
						if _, dup := sum.paramSink[t.Index]; !dup {
							sum.paramSink[t.Index] = desc
						}
					}
				}
			}
			return true
		})
	})
	prog.sinkSums[node.ID] = sum
	return sum
}

// outputSink classifies a call as order-sensitive output, returning a
// description and the arguments whose order matters ("" when the call
// is not a sink).
func outputSink(prog *Program, p *Package, call *ast.CallExpr) (string, []ast.Expr) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return "", nil
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "fmt" && (name == "Fprintf" || name == "Fprint" || name == "Fprintln"):
		if len(call.Args) > 1 {
			return "fmt." + name, call.Args[1:]
		}
		return "", nil
	case path == "encoding/binary" && name == "Write":
		if len(call.Args) > 2 {
			return "binary.Write", call.Args[2:]
		}
		return "", nil
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return "", nil
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "EncodeElement":
		return trimModule(FuncID(fn)), call.Args
	}
	return "", nil
}

// mapFinding is one candidate diagnostic, keyed by the range site.
type mapFinding struct {
	sinkDesc string
	sinkLine int
	order    int // arrival order for earliest-sink-wins
}

// checkMapOrder runs the rule over every function in scope containing
// a map range.
func checkMapOrder(prog *Program, scope []*Package, report ReportFunc) {
	for _, p := range scope {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasMapRange(p, fd.Body) {
					continue
				}
				hooks := &mapOrderHooks{prog: prog, pkg: p}
				scanMapOrderBody(prog, p, fd, analyzeFunc(p, fd, hooks), hooks, report)
			}
		}
	}
}

func hasMapRange(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[rs.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				found = true
			}
		}
		return true
	})
	return found
}

// scanMapOrderBody inspects one analyzed body, recording the first
// sink each map range reaches, and recurses into closures.
func scanMapOrderBody(prog *Program, p *Package, fd *ast.FuncDecl, pv *provenance, hooks *mapOrderHooks, report ReportFunc) {
	findings := map[Tag]*mapFinding{}
	record := func(tags tagSet, desc string, line int) {
		for t := range tags {
			switch t.Kind {
			case TagMapKey, TagMapVal, TagMapOrdered:
				site := Tag{Kind: TagMapKey, Site: t.Site} // collapse kinds per range
				if _, dup := findings[site]; !dup {
					findings[site] = &mapFinding{sinkDesc: desc, sinkLine: line, order: len(findings)}
				}
			}
		}
	}
	line := func(n ast.Node) int { return p.Fset.Position(n.Pos()).Line }

	type litWork struct {
		lit *ast.FuncLit
		e   env
	}
	var lits []litWork
	// Field stores are judged at function exit, not at the store site:
	// building a field slice in map order and sorting it two lines
	// later is the standard collect-then-sort idiom. A candidate only
	// becomes a finding if the field is still map-ordered when the
	// function returns.
	type fieldStore struct {
		obj  types.Object
		tag  Tag
		desc string
		line int
	}
	var fieldStores []fieldStore
	pv.visit(func(s ast.Stmt, e env) {
		if ret, ok := s.(*ast.ReturnStmt); ok {
			for _, res := range ret.Results {
				// Only aggregates leak iteration order out of a return:
				// a bool or int computed FROM a map-ordered slice (a
				// sort comparator, a length check) is order-blind.
				if !orderedAggregate(p, res) {
					continue
				}
				for t := range pv.eval(res, e) {
					if t.Kind == TagMapOrdered {
						record(singleton(t), "the return value", line(ret))
					}
				}
			}
		}
		if as, ok := s.(*ast.AssignStmt); ok {
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				sel, isSel := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !isSel {
					continue
				}
				obj := pv.fieldObj(sel)
				if obj == nil {
					continue
				}
				for t := range pv.eval(as.Rhs[i], e) {
					if t.Kind == TagMapOrdered {
						fieldStores = append(fieldStores, fieldStore{
							obj:  obj,
							tag:  t,
							desc: "the struct field " + types.ExprString(sel),
							line: line(as),
						})
					}
				}
			}
		}
		inspectShallow(s, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lits = append(lits, litWork{lit, e.clone()})
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if desc, valueArgs := outputSink(prog, p, call); desc != "" {
				for _, a := range valueArgs {
					record(pv.eval(a, e), desc, line(call))
				}
				return true
			}
			// One call hop: a tainted argument handed to an in-module
			// function that forwards it into a sink.
			fn := calleeFunc(p, call)
			if fn == nil {
				return true
			}
			node, ok := prog.Graph.Nodes[FuncID(fn)]
			if !ok || hooks.depth > 0 {
				return true
			}
			var sum *sinkSummary
			for i, a := range call.Args {
				tags := pv.eval(a, e)
				if !tags.has(TagMapKey) && !tags.has(TagMapVal) && !tags.has(TagMapOrdered) {
					continue
				}
				if sum == nil {
					sum = prog.mapSinkSummary(node)
				}
				if desc, ok := sum.paramSink[i]; ok {
					record(tags, fmt.Sprintf("%s (via %s)", desc, trimModule(node.ID)), line(call))
				}
			}
			return true
		})
	})
	// Resolve field-store candidates against the exit environment: a
	// store whose taint a later sort removed is the collect-then-sort
	// idiom and stays silent.
	if exit := pv.in[pv.cfg.Exit.Index]; exit != nil {
		for _, fs := range fieldStores {
			if _, still := exit[fs.obj][fs.tag]; still {
				record(singleton(fs.tag), fs.desc, fs.line)
			}
		}
	}

	for _, w := range lits {
		if hasMapRangeOrTaint(p, w.lit.Body, w.e) {
			scanMapOrderBody(prog, p, fd, analyzeFuncLit(p, w.lit, w.e, hooks), hooks, report)
		}
	}

	// Emit deterministically: by range position.
	type emit struct {
		t Tag
		f *mapFinding
	}
	var out []emit
	for t, f := range findings {
		out = append(out, emit{t, f})
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j].t.Site < out[i].t.Site {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	for _, e := range out {
		report(e.t.Site,
			"map iteration order reaches %s (line %d) unsorted; collect and sort the keys first so output is deterministic",
			e.f.sinkDesc, e.f.sinkLine)
	}
}

// orderedAggregate reports whether expr's static type can carry an
// element order: slices, arrays, and strings. Scalars derived from a
// map-ordered aggregate do not leak the order themselves.
func orderedAggregate(p *Package, expr ast.Expr) bool {
	// Info.TypeOf, not Info.Types: bare identifiers are recorded in
	// Defs/Uses only.
	t := p.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// hasMapRangeOrTaint decides whether a closure body is worth a
// dataflow pass: it ranges over a map itself, or it captures
// something already map-tainted.
func hasMapRangeOrTaint(p *Package, body *ast.BlockStmt, captured env) bool {
	if hasMapRange(p, body) {
		return true
	}
	for _, tags := range captured {
		if tags.has(TagMapKey) || tags.has(TagMapVal) || tags.has(TagMapOrdered) {
			return true
		}
	}
	return false
}
