package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// The deadlock rule builds the module-wide lock-acquisition graph:
// which lock is held when code that may acquire another lock runs.
// Nodes are (mutex-bearing type, mutex field) pairs — field-level, so
// a type with several independent mutexes (netsim.Sim) does not
// self-collide. Two findings come out of the graph:
//
//   - self-deadlock: a method calls another method on the SAME
//     receiver that (transitively) re-acquires the mutex already
//     held. sync.Mutex and sync.RWMutex are not reentrant, so this
//     hangs with certainty once reached.
//   - lock-order cycle: lock A is held while acquiring lock B on one
//     path and B is held while acquiring A on another. Each such pair
//     can interleave into a deadlock under concurrency.

// lockID identifies one mutex: the named type owning it plus the
// field path, e.g. {"tipsy/internal/obsv.Registry", "mu"}.
type lockID struct {
	Type  string
	Field string
}

func (l lockID) String() string { return trimModule(l.Type) + "." + l.Field }

// lockEdge is one "held A, acquired B" observation.
type lockEdge struct {
	from, to lockID
	pos      token.Pos // the acquisition (or call) site
	fn       string    // enclosing function ID
	via      string    // callee ID when the acquisition is transitive
}

// deadlockState carries the analysis across its passes.
type deadlockState struct {
	prog *Program
	// acquires: function ID -> locks it may take, directly or through
	// in-module calls (fixpoint over the call graph); the Pos is a
	// representative direct-acquisition site.
	acquires map[string]map[lockID]token.Pos
}

// lockedMutex matches a Lock/RLock/Unlock/RUnlock call on expression
// X.field where X has a named struct type — returning the lock's
// identity, the receiver expression, and the flavor.
func lockedMutex(p *Package, call *ast.CallExpr, names ...string) (lockID, string, bool, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockID{}, "", false, false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return lockID{}, "", false, false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockID{}, "", false, false
	}
	read := strings.HasPrefix(sel.Sel.Name, "R")
	// sel.X should itself be a selector: holder.field
	fieldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockID{}, "", false, false
	}
	holderType, ok := p.Info.Types[fieldSel.X]
	if !ok {
		return lockID{}, "", false, false
	}
	name := namedTypeID(holderType.Type)
	if name == "" {
		return lockID{}, "", false, false
	}
	return lockID{Type: name, Field: fieldSel.Sel.Name}, types.ExprString(fieldSel.X), read, true
}

// shortPos renders pos as base-filename:line — stable across
// checkouts, unlike an absolute Position string.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// namedTypeID returns the stable "path.Name" of t's named type,
// looking through pointers, or "".
func namedTypeID(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// directAcquires scans one function body for mutex acquisitions
// (FuncLits excluded — goroutine bodies have their own life cycle).
func directAcquires(n *FuncNode) map[lockID]token.Pos {
	out := map[lockID]token.Pos{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, _, _, ok := lockedMutex(n.Pkg, call, "Lock", "RLock"); ok {
			if _, dup := out[id]; !dup {
				out[id] = call.Pos()
			}
		}
		return true
	})
	return out
}

// buildAcquires computes the transitive lock-acquisition sets with a
// fixpoint over the call graph.
func (st *deadlockState) buildAcquires() {
	st.acquires = map[string]map[lockID]token.Pos{}
	for _, id := range st.prog.Graph.Order {
		st.acquires[id] = directAcquires(st.prog.Graph.Nodes[id])
	}
	for changed := true; changed; {
		changed = false
		for _, id := range st.prog.Graph.Order {
			n := st.prog.Graph.Nodes[id]
			mine := st.acquires[id]
			for _, site := range n.Sites {
				for _, callee := range site.Callees {
					for l := range st.acquires[callee.ID] {
						if _, ok := mine[l]; !ok {
							mine[l] = site.Call.Pos()
							changed = true
						}
					}
				}
			}
		}
	}
}

// heldEvent is one lock-relevant point in a body, in source order.
type heldEvent struct {
	pos  token.Pos
	kind int // hLock, hUnlock, hDeferUnlock, hCall
	lock lockID
	expr string // printed holder expression, e.g. "s" in s.mu.Lock()
	read bool
	site *CallSite
}

const (
	hLock = iota
	hUnlock
	hDeferUnlock
	hCall
)

// scanEvents linearizes one body's lock operations and call sites.
func scanEvents(n *FuncNode) []heldEvent {
	var evs []heldEvent
	sites := map[*ast.CallExpr]*CallSite{}
	for _, s := range n.Sites {
		sites[s.Call] = s
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if id, expr, read, ok := lockedMutex(n.Pkg, node.Call, "Unlock", "RUnlock"); ok {
				evs = append(evs, heldEvent{pos: node.Pos(), kind: hDeferUnlock, lock: id, expr: expr, read: read})
				return false
			}
		case *ast.CallExpr:
			if id, expr, read, ok := lockedMutex(n.Pkg, node, "Lock", "RLock"); ok {
				evs = append(evs, heldEvent{pos: node.Pos(), kind: hLock, lock: id, expr: expr, read: read})
				return true
			}
			if id, expr, read, ok := lockedMutex(n.Pkg, node, "Unlock", "RUnlock"); ok {
				evs = append(evs, heldEvent{pos: node.Pos(), kind: hUnlock, lock: id, expr: expr, read: read})
				return true
			}
			if s, ok := sites[node]; ok {
				evs = append(evs, heldEvent{pos: node.Pos(), kind: hCall, site: s})
			}
		}
		return true
	})
	sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// checkDeadlock is the rule entry point. scope is ignored for graph
// construction (locks are global state) and only gates reporting via
// the driver.
func checkDeadlock(prog *Program, scope []*Package, report ReportFunc) {
	st := &deadlockState{prog: prog}
	st.buildAcquires()

	var edges []lockEdge
	for _, id := range prog.Graph.Order {
		n := prog.Graph.Nodes[id]
		edges = append(edges, st.scanFunc(n, report)...)
	}

	// Lock-order cycles: group edges by unordered pair and flag pairs
	// seen in both directions.
	type pairKey struct{ a, b lockID }
	norm := func(x, y lockID) pairKey {
		if y.Type < x.Type || (y.Type == x.Type && y.Field < x.Field) {
			x, y = y, x
		}
		return pairKey{x, y}
	}
	byPair := map[pairKey][]lockEdge{}
	for _, e := range edges {
		if e.from == e.to {
			continue // same-type different-receiver; handled above
		}
		byPair[norm(e.from, e.to)] = append(byPair[norm(e.from, e.to)], e)
	}
	keys := make([]pairKey, 0, len(byPair))
	for k := range byPair {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.a != b.a {
			return a.a.Type < b.a.Type || (a.a.Type == b.a.Type && a.a.Field < b.a.Field)
		}
		return a.b.Type < b.b.Type || (a.b.Type == b.b.Type && a.b.Field < b.b.Field)
	})
	for _, k := range keys {
		group := byPair[k]
		var fwd, rev *lockEdge
		for i := range group {
			e := &group[i]
			if e.from == k.a && fwd == nil {
				fwd = e
			}
			if e.from == k.b && rev == nil {
				rev = e
			}
		}
		if fwd == nil || rev == nil {
			continue
		}
		first, second := fwd, rev
		if posLess(prog.Fset, second.pos, first.pos) {
			first, second = second, first
		}
		report(first.pos,
			"lock order cycle: %s holds %s while acquiring %s, but %s (at %s) holds %s while acquiring %s; acquire these locks in one global order",
			trimModule(first.fn), first.from, first.to,
			trimModule(second.fn), shortPos(prog.Fset, second.pos), second.from, second.to)
	}
}

// scanFunc walks one function, tracking which locks are held at each
// call/acquisition, emitting self-deadlock findings directly and
// returning cross-lock edges for cycle detection.
func (st *deadlockState) scanFunc(n *FuncNode, report ReportFunc) []lockEdge {
	evs := scanEvents(n)
	if len(evs) == 0 {
		return nil
	}
	var edges []lockEdge
	type held struct {
		lock lockID
		expr string
		read bool
	}
	var stack []held
	release := func(lock lockID, expr string) {
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].lock == lock && stack[i].expr == expr {
				stack = append(stack[:i], stack[i+1:]...)
				return
			}
		}
	}
	recvName := receiverIdent(n.Decl)
	for _, ev := range evs {
		switch ev.kind {
		case hLock:
			// Acquiring while something else is held: ordering edges.
			for _, h := range stack {
				if h.lock != ev.lock {
					edges = append(edges, lockEdge{from: h.lock, to: ev.lock, pos: ev.pos, fn: n.ID})
				}
			}
			stack = append(stack, held{ev.lock, ev.expr, ev.read})
		case hUnlock:
			release(ev.lock, ev.expr)
		case hDeferUnlock:
			// Deferred: held until function end; nothing to do now.
		case hCall:
			if len(stack) == 0 {
				continue
			}
			callees := ev.site.Callees
			for _, callee := range callees {
				acq := st.acquires[callee.ID]
				if len(acq) == 0 {
					continue
				}
				// Deterministic iteration over the acquired set.
				ids := make([]lockID, 0, len(acq))
				for l := range acq {
					ids = append(ids, l)
				}
				sort.Slice(ids, func(i, j int) bool {
					if ids[i].Type != ids[j].Type {
						return ids[i].Type < ids[j].Type
					}
					return ids[i].Field < ids[j].Field
				})
				for _, l := range ids {
					for _, h := range stack {
						if h.lock == l {
							// Re-acquiring a held lock. Certain
							// deadlock when it is the same receiver.
							if ev.site.SameRecv && h.expr == recvName && recvName != "" {
								report(ev.pos,
									"calling %s while %s.%s is held; the callee (re)acquires %s and sync mutexes are not reentrant — this self-deadlocks",
									trimModule(callee.ID), h.expr, l.Field, l)
							}
							continue
						}
						edges = append(edges, lockEdge{from: h.lock, to: l, pos: ev.pos, fn: n.ID, via: callee.ID})
					}
				}
			}
		}
	}
	return edges
}
