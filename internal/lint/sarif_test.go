package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestSARIFGolden pins the SARIF 2.1.0 envelope byte-for-byte: rule
// metadata from the registry (one syntactic rule, one deep rule), one
// result per diagnostic, and the schema/version header code-scanning
// ingestion keys on.
func TestSARIFGolden(t *testing.T) {
	p, err := loader(t).LoadSource("sarif_fixture.go", `package p
import "time"
func f() int64 { return time.Now().Unix() }
`)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := loader(t).LoadSource("sarif_guardedby_fixture.go", `package p
import "sync"
type counter struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	n int
}
func (c *counter) Inc() { c.mu.Lock(); defer c.mu.Unlock(); c.n++ }
func (c *counter) Peek() int { return c.n }
`)
	if err != nil {
		t.Fatal(err)
	}
	rules := []Rule{descope(ruleByName(t, "determinism")), descope(ruleByName(t, "guardedby"))}
	diags := Run([]*Package{p}, rules)
	diags = append(diags, Run([]*Package{gb}, rules)...)
	if len(diags) < 2 {
		t.Fatalf("fixtures produced %d diagnostics, want one per rule", len(diags))
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags, rules); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "sarif", "want.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output drifted from golden:\n--- want\n%s--- got\n%s", want, buf.Bytes())
	}
}

// TestSuppressionInventory covers the -suppressions plumbing: justified
// directives list cleanly, a reasonless directive is flagged invalid.
func TestSuppressionInventory(t *testing.T) {
	p, err := loader(t).LoadSource("sup_fixture.go", `package p
import "time"

//lint:ignore determinism fixture needs the wall clock
func f() int64 { return time.Now().Unix() }

//lint:ignore determinism
func g() int64 { return time.Now().Unix() }
`)
	if err != nil {
		t.Fatal(err)
	}
	sups := CollectSuppressions([]*Package{p})
	if len(sups) != 2 {
		t.Fatalf("got %d suppressions, want 2: %+v", len(sups), sups)
	}
	if sups[0].Reason != "fixture needs the wall clock" {
		t.Errorf("reason not captured: %+v", sups[0])
	}
	if sups[1].Reason != "" {
		t.Errorf("reasonless directive not detected: %+v", sups[1])
	}
	var buf bytes.Buffer
	if bad := WriteSuppressions(&buf, sups); !bad {
		t.Error("WriteSuppressions did not flag the reasonless directive")
	}
	out := buf.String()
	for _, want := range []string{"fixture needs the wall clock", "INVALID: no reason given"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
