package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the deep tier's forward value-provenance engine. It
// runs a union-merge dataflow over the CFG of one function body,
// tracking for every local variable a set of provenance tags: which
// parameter it derives from, whether a nondeterministic source
// (wall clock, entropy, process identity) feeds it, and whether it
// was drawn from — or aggregated in the order of — a map iteration.
// The maporder and seedflow rules instantiate the engine with hooks
// that classify calls; interprocedural precision comes from function
// summaries computed on demand over the call graph.

// TagKind classifies one provenance tag.
type TagKind int

const (
	// TagParam: value derives from the function's parameter Index
	// (receiver is index -1).
	TagParam TagKind = iota
	// TagNondet: value transitively derives from a nondeterministic
	// source; Detail names it ("time.Now", "os.Getpid", ...).
	TagNondet
	// TagMapKey / TagMapVal: value is the key/value drawn by the map
	// range statement at Site.
	TagMapKey
	TagMapVal
	// TagMapOrdered: an aggregate (slice, string) whose element order
	// is the iteration order of the map range at Site.
	TagMapOrdered
	// TagAlloc: value is (or carries) the function literal created at
	// Site. The hotpath tier's escape pass follows these tags to the
	// points where a closure leaves its creating function and must be
	// heap-allocated.
	TagAlloc
)

// Tag is one provenance fact. Tags are comparable and used as set
// keys.
type Tag struct {
	Kind   TagKind
	Index  int       // TagParam
	Site   token.Pos // TagMap*: position of the originating range
	Detail string    // TagNondet
}

// tagSet is a small immutable-by-convention set of tags. The nil set
// means "provably clean".
type tagSet map[Tag]struct{}

func (s tagSet) has(k TagKind) bool {
	for t := range s {
		if t.Kind == k {
			return true
		}
	}
	return false
}

func (s tagSet) pick(k TagKind) (Tag, bool) {
	var out []Tag
	for t := range s {
		if t.Kind == k {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return Tag{}, false
	}
	// Deterministic choice when several tags of one kind are present.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		return a.Detail < b.Detail
	})
	return out[0], true
}

func union(sets ...tagSet) tagSet {
	var out tagSet
	for _, s := range sets {
		for t := range s {
			if out == nil {
				out = tagSet{}
			}
			out[t] = struct{}{}
		}
	}
	return out
}

func singleton(t Tag) tagSet { return tagSet{t: {}} }

// env maps a local variable (or parameter) to its provenance.
type env map[types.Object]tagSet

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// merge unions other into e, reporting whether e changed. Tag sets
// are shared across environments, so the first insertion into an
// entry copies it (copy-on-write).
func (e env) merge(other env) bool {
	changed := false
	for obj, tags := range other {
		cur, copied := e[obj], false
		for t := range tags {
			if _, ok := cur[t]; !ok {
				if !copied {
					fresh := make(tagSet, len(cur)+1)
					for old := range cur {
						fresh[old] = struct{}{}
					}
					cur, copied = fresh, true
				}
				cur[t] = struct{}{}
				changed = true
			}
		}
		if copied {
			e[obj] = cur
		}
	}
	return changed
}

// provHooks parameterizes the engine per rule family.
type provHooks interface {
	// EvalCall returns the provenance of each result of call given
	// the provenance of the receiver (nil for non-methods) and the
	// arguments. A nil slice means "all results clean".
	EvalCall(call *ast.CallExpr, recv tagSet, args []tagSet) []tagSet
	// RangeTags returns the tags bound to the key and value variables
	// of rs. xTags is the provenance of the ranged operand; isMap
	// reports whether the operand's type is a map.
	RangeTags(rs *ast.RangeStmt, xTags tagSet, isMap bool) (key, val tagSet)
	// CleanseArgs returns argument expressions whose map-order tags
	// the call removes — sort.Slice(keys, ...) makes keys
	// deterministic again. Nil when the call cleanses nothing.
	CleanseArgs(call *ast.CallExpr) []ast.Expr
}

// funcLitTagger is an optional provHooks extension: hooks implementing
// it assign provenance to function-literal values themselves (not just
// to calls), so a closure stored in a local keeps an identity tag the
// engine can follow to wherever the value flows.
type funcLitTagger interface {
	FuncLitTags(lit *ast.FuncLit) tagSet
}

// compositeLitTagger is the analogous extension for composite
// literals: hooks implementing it assign provenance to the literal
// value itself. A non-nil result replaces the tags the elements would
// contribute — the hook is asserting the literal's identity, and a
// tagged value stored inside a fresh struct says nothing about the
// struct itself. A nil result falls through to the element union. The
// guardedby tier uses it to tag freshly allocated guarded structs, so
// field stores in constructor bodies are recognizable as
// pre-publication initialization.
type compositeLitTagger interface {
	CompositeLitTags(lit *ast.CompositeLit) tagSet
}

// provenance runs the engine over one declared function and then
// replays the statements in CFG order, calling visit with the
// environment in force immediately BEFORE each statement executes.
type provenance struct {
	pkg   *Package
	hooks provHooks
	cfg   *CFG
	in    []env // per block index
}

// analyzeFunc builds the fixpoint for fd's body. Function literals
// are separate scopes and are not descended into; analyze them with
// analyzeFuncLit, seeding the captured environment.
func analyzeFunc(pkg *Package, fd *ast.FuncDecl, hooks provHooks) *provenance {
	entry := env{}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		for _, name := range fd.Recv.List[0].Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				entry[obj] = singleton(Tag{Kind: TagParam, Index: -1})
			}
		}
	}
	bindParams(pkg, fd.Type, entry)
	return analyzeBody(pkg, fd.Body, entry, hooks)
}

// analyzeFuncLit analyzes a closure body: captured holds the
// environment in force where the literal appears, so free variables
// keep the provenance they had at capture time.
func analyzeFuncLit(pkg *Package, lit *ast.FuncLit, captured env, hooks provHooks) *provenance {
	entry := captured.clone()
	bindParams(pkg, lit.Type, entry)
	return analyzeBody(pkg, lit.Body, entry, hooks)
}

func bindParams(pkg *Package, ftype *ast.FuncType, entry env) {
	idx := 0
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				entry[obj] = singleton(Tag{Kind: TagParam, Index: idx})
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
}

func analyzeBody(pkg *Package, body *ast.BlockStmt, entry env, hooks provHooks) *provenance {
	pv := &provenance{pkg: pkg, hooks: hooks, cfg: BuildCFG(body)}
	pv.in = make([]env, len(pv.cfg.Blocks))
	pv.in[pv.cfg.Entry.Index] = entry

	order := pv.cfg.RPO()
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, b := range order {
			e := pv.in[b.Index]
			if e == nil {
				continue // unreachable so far
			}
			out := e.clone()
			for _, s := range b.Stmts {
				pv.apply(s, out)
			}
			for _, succ := range b.Succs {
				if pv.in[succ.Index] == nil {
					pv.in[succ.Index] = out.clone()
					changed = true
				} else if pv.in[succ.Index].merge(out) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return pv
}

// visit replays every reachable statement once in block order,
// handing the callback the pre-statement environment.
func (pv *provenance) visit(f func(s ast.Stmt, e env)) {
	for _, b := range pv.cfg.Blocks {
		e := pv.in[b.Index]
		if e == nil {
			continue
		}
		cur := e.clone()
		for _, s := range b.Stmts {
			f(s, cur)
			pv.apply(s, cur)
		}
	}
}

// apply is the transfer function of one statement.
func (pv *provenance) apply(s ast.Stmt, e env) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		pv.applyAssign(s, e)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				obj := pv.pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				if i < len(vs.Values) {
					e[obj] = pv.eval(vs.Values[i], e)
				} else {
					delete(e, obj)
				}
			}
		}
	case *ast.RangeStmt:
		isMap := false
		if tv, ok := pv.pkg.Info.Types[s.X]; ok {
			_, isMap = tv.Type.Underlying().(*types.Map)
		}
		keyTags, valTags := pv.hooks.RangeTags(s, pv.eval(s.X, e), isMap)
		bind := func(expr ast.Expr, tags tagSet) {
			id, ok := expr.(*ast.Ident)
			if !ok {
				return
			}
			obj := pv.pkg.Info.Defs[id]
			if obj == nil {
				obj = pv.pkg.Info.Uses[id]
			}
			if obj != nil {
				e[obj] = tags
			}
		}
		if s.Key != nil {
			bind(s.Key, keyTags)
		}
		if s.Value != nil {
			bind(s.Value, valTags)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			pv.apply(s.Init, e)
		}
		pv.eval(s.Cond, e)
	case *ast.ForStmt:
		if s.Init != nil {
			pv.apply(s.Init, e)
		}
		if s.Post != nil {
			pv.apply(s.Post, e)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			pv.apply(s.Init, e)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			pv.apply(s.Init, e)
		}
		pv.apply(s.Assign, e)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			pv.cleanse(call, e)
		}
	case *ast.IncDecStmt, *ast.SendStmt,
		*ast.DeferStmt, *ast.GoStmt, *ast.ReturnStmt:
		// No local rebinding. (Pointer-mediated mutation through
		// calls is out of model.)
	}
}

// cleanse removes map-order tags from the variables a sorting call
// fixes up.
func (pv *provenance) cleanse(call *ast.CallExpr, e env) {
	for _, argExpr := range pv.hooks.CleanseArgs(call) {
		obj := pv.lvalueObj(argExpr)
		if obj == nil {
			continue
		}
		var kept tagSet
		for t := range e[obj] {
			switch t.Kind {
			case TagMapKey, TagMapVal, TagMapOrdered:
				continue
			}
			if kept == nil {
				kept = tagSet{}
			}
			kept[t] = struct{}{}
		}
		e[obj] = kept
	}
}

func (pv *provenance) applyAssign(s *ast.AssignStmt, e env) {
	// Multi-value RHS: a call, map index, or type assertion fanning
	// out into several LHS targets.
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		var results []tagSet
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			results = pv.evalCallResults(call, e, len(s.Lhs))
		} else {
			shared := pv.eval(s.Rhs[0], e)
			results = make([]tagSet, len(s.Lhs))
			for i := range results {
				results[i] = shared
			}
		}
		for i, lhs := range s.Lhs {
			pv.assignTo(lhs, results[i], s.Tok, e)
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		pv.assignTo(lhs, pv.eval(s.Rhs[i], e), s.Tok, e)
	}
}

func (pv *provenance) assignTo(lhs ast.Expr, tags tagSet, tok token.Token, e env) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := pv.pkg.Info.Defs[lhs]
		if obj == nil {
			obj = pv.pkg.Info.Uses[lhs]
		}
		if obj == nil {
			return
		}
		if tok == token.DEFINE || tok == token.ASSIGN {
			e[obj] = tags
		} else {
			e[obj] = union(e[obj], tags) // +=, |=, ...
		}
	case *ast.SelectorExpr:
		// x.f = v: track by the field object. Different instances of
		// the same struct alias onto one entry — a sound
		// over-approximation for taint.
		if obj := pv.fieldObj(lhs); obj != nil {
			if tok == token.DEFINE || tok == token.ASSIGN {
				e[obj] = tags
			} else {
				e[obj] = union(e[obj], tags)
			}
		}
	case *ast.IndexExpr:
		// s[i] = v: a weak update — the container accumulates the
		// element's provenance, aggregation tags included.
		if obj := pv.lvalueObj(lhs.X); obj != nil {
			e[obj] = union(e[obj], aggregated(tags))
		}
	}
}

// fieldObj resolves x.f to the field's *types.Var, or nil for
// package selectors and methods.
func (pv *provenance) fieldObj(sel *ast.SelectorExpr) types.Object {
	if v, ok := pv.pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// lvalueObj resolves the container expression of an indexed store:
// a plain identifier or a field selector.
func (pv *provenance) lvalueObj(x ast.Expr) types.Object {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		if obj := pv.pkg.Info.Uses[x]; obj != nil {
			return obj
		}
		return pv.pkg.Info.Defs[x]
	case *ast.SelectorExpr:
		return pv.fieldObj(x)
	}
	return nil
}

// aggregated converts element-level map-iteration tags into the
// aggregate-order tag: appending a map key to a slice makes the slice
// map-ordered.
func aggregated(tags tagSet) tagSet {
	var out tagSet
	for t := range tags {
		switch t.Kind {
		case TagMapKey, TagMapVal:
			t = Tag{Kind: TagMapOrdered, Site: t.Site}
		}
		if out == nil {
			out = tagSet{}
		}
		out[t] = struct{}{}
	}
	return out
}

// eval computes the provenance of one expression.
func (pv *provenance) eval(expr ast.Expr, e env) tagSet {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := pv.pkg.Info.Uses[x]
		if obj == nil {
			obj = pv.pkg.Info.Defs[x]
		}
		if obj == nil {
			return nil
		}
		return e[obj]
	case *ast.BasicLit:
		return nil
	case *ast.FuncLit:
		if lt, ok := pv.hooks.(funcLitTagger); ok {
			return lt.FuncLitTags(x)
		}
		return nil
	case *ast.BinaryExpr:
		return union(pv.eval(x.X, e), pv.eval(x.Y, e))
	case *ast.UnaryExpr:
		return pv.eval(x.X, e)
	case *ast.StarExpr:
		return pv.eval(x.X, e)
	case *ast.SelectorExpr:
		// Field read: the tracked field entry if one exists, else the
		// provenance of the base — a struct built from a tainted
		// value stays tainted, a field of a parameter stays
		// parameter-derived.
		if obj := pv.fieldObj(x); obj != nil {
			if tags, ok := e[obj]; ok {
				return tags
			}
		}
		return pv.eval(x.X, e)
	case *ast.IndexExpr:
		return union(pv.eval(x.X, e), pv.eval(x.Index, e))
	case *ast.SliceExpr:
		return pv.eval(x.X, e)
	case *ast.TypeAssertExpr:
		return pv.eval(x.X, e)
	case *ast.CompositeLit:
		if ct, ok := pv.hooks.(compositeLitTagger); ok {
			if tags := ct.CompositeLitTags(x); tags != nil {
				// The hook asserts the literal's own identity; element
				// provenance does not dilute it (a parameter stored in
				// a fresh struct does not make the struct shared).
				return tags
			}
		}
		var parts []tagSet
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				parts = append(parts, pv.eval(kv.Value, e))
				continue
			}
			parts = append(parts, pv.eval(el, e))
		}
		return union(parts...)
	case *ast.CallExpr:
		rs := pv.evalCallResults(x, e, 1)
		return rs[0]
	}
	return nil
}

// evalCallResults handles conversions, builtins, and real calls,
// returning want provenance sets (padded with nil).
func (pv *provenance) evalCallResults(call *ast.CallExpr, e env, want int) []tagSet {
	pad := func(first tagSet) []tagSet {
		out := make([]tagSet, want)
		if want > 0 {
			out[0] = first
		}
		return out
	}
	fun := ast.Unparen(call.Fun)
	if tv, ok := pv.pkg.Info.Types[fun]; ok && tv.IsType() {
		// Type conversion: pass-through.
		var parts []tagSet
		for _, a := range call.Args {
			parts = append(parts, pv.eval(a, e))
		}
		return pad(union(parts...))
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pv.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				// append(s, elems...): the result carries the slice's
				// tags plus the elements' tags lifted to aggregate
				// order.
				parts := []tagSet{pv.eval(call.Args[0], e)}
				for _, a := range call.Args[1:] {
					parts = append(parts, aggregated(pv.eval(a, e)))
				}
				return pad(union(parts...))
			case "len", "cap", "make", "new", "clear", "delete", "panic", "print", "println":
				return pad(nil)
			default:
				var parts []tagSet
				for _, a := range call.Args {
					parts = append(parts, pv.eval(a, e))
				}
				return pad(union(parts...))
			}
		}
	}
	args := make([]tagSet, len(call.Args))
	for i, a := range call.Args {
		args[i] = pv.eval(a, e)
	}
	var recvTags tagSet
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if fn, ok := pv.pkg.Info.Uses[sel.Sel].(*types.Func); ok {
			if fn.Type().(*types.Signature).Recv() != nil {
				recvTags = pv.eval(sel.X, e)
			}
		}
	}
	results := pv.hooks.EvalCall(call, recvTags, args)
	out := make([]tagSet, want)
	for i := 0; i < want && i < len(results); i++ {
		out[i] = results[i]
	}
	return out
}

// inspectShallow walks the parts of s the CFG evaluates AT s —
// everything except nested statement bodies, which live in their own
// blocks and are visited with their own environments. Function
// literals are pruned too (separate scopes), but f sees the literal
// node itself so callers can schedule a closure analysis.
func inspectShallow(s ast.Stmt, f func(ast.Node) bool) {
	walk := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return f(n) && false // show the literal, skip its body
			}
			return f(n)
		})
	}
	switch s := s.(type) {
	case *ast.IfStmt:
		walk(s.Init)
		walk(s.Cond)
	case *ast.ForStmt:
		walk(s.Init)
		walk(s.Cond)
		walk(s.Post)
	case *ast.RangeStmt:
		walk(s.X)
	case *ast.SwitchStmt:
		walk(s.Init)
		walk(s.Tag)
	case *ast.TypeSwitchStmt:
		walk(s.Init)
		walk(s.Assign)
	case *ast.SelectStmt:
		// Clause bodies are their own blocks.
	case *ast.LabeledStmt:
		inspectShallow(s.Stmt, f)
	default:
		walk(s)
	}
}
