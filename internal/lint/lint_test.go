package lint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden want.txt files")

// sharedLoader hands every test the same loader so the standard
// library is type-checked from source once, not per subtest.
var sharedLoader = sync.OnceValues(func() (*Loader, error) {
	return NewLoader(".")
})

func loader(t *testing.T) *Loader {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// descope widens a rule to every package so fixtures outside the
// production directories still trigger it.
func descope(r Rule) Rule {
	r.Dirs = nil
	r.TestsEverywhere = false
	return r
}

func ruleByName(t *testing.T, name string) Rule {
	t.Helper()
	for _, r := range Rules() {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no rule %q", name)
	return Rule{}
}

func runOnDir(t *testing.T, dir string, rules ...Rule) []Diagnostic {
	t.Helper()
	pkgs, err := loader(t).LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrs {
			t.Errorf("fixture %s does not type-check: %v", dir, e)
		}
	}
	return Run(pkgs, rules)
}

func format(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
	}
	return b.String()
}

// TestGoldenFixtures proves every rule family fires on its violating
// fixture package with exactly the expected diagnostics, and stays
// silent on the clean one.
func TestGoldenFixtures(t *testing.T) {
	for _, base := range Rules() {
		r := descope(base)
		t.Run(r.Name+"/bad", func(t *testing.T) {
			got := format(runOnDir(t, filepath.Join("testdata", r.Name, "bad"), r))
			if got == "" {
				t.Fatal("rule reported nothing on its violating fixture")
			}
			goldenPath := filepath.Join("testdata", r.Name, "bad", "want.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch (-want +got):\n--- want\n%s--- got\n%s", want, got)
			}
		})
		t.Run(r.Name+"/clean", func(t *testing.T) {
			if got := format(runOnDir(t, filepath.Join("testdata", r.Name, "clean"), r)); got != "" {
				t.Errorf("rule fired on the clean fixture:\n%s", got)
			}
		})
	}
}

// TestDeliberateViolations introduces one fresh violation per rule
// family inline and asserts the analyzer catches it — the regression
// guard that a rule cannot silently go blind.
func TestDeliberateViolations(t *testing.T) {
	cases := []struct {
		rule string
		src  string
		want string // substring of the expected message
	}{
		{"determinism", `package p
import "math/rand"
func f() float64 { return rand.Float64() }
`, "global math/rand.Float64"},
		{"determinism", `package p
import "time"
func f() int64 { return time.Now().Unix() }
`, "time.Now"},
		{"locks", `package p
import "sync"
type T struct{ mu sync.RWMutex }
func (t T) Get() int { return 0 }
`, "value receiver"},
		{"locks", `package p
import "sync"
var mu sync.Mutex
func f(ok bool) int {
	mu.Lock()
	if ok {
		return 1
	}
	mu.Unlock()
	return 0
}
`, "still held"},
		{"wire", `package p
import ("encoding/binary"; "io")
func f(w io.Writer) { binary.Write(w, binary.BigEndian, uint64(1)) }
`, "error discarded"},
		{"wire", `package p
import ("encoding/binary"; "io")
func f(w io.Writer, s string) error { return binary.Write(w, binary.BigEndian, s) }
`, "non-fixed-size"},
		{"goroutine", `package p
func f() { go func() { for {} }() }
`, "no cancellation"},
		{"goroutine", `package p
import "sync"
func f(xs []int, wg *sync.WaitGroup) {
	for _, x := range xs {
		wg.Add(1)
		go func() { defer wg.Done(); _ = x }()
	}
}
`, "captures loop variable x"},
		{"metrics", `package p
type collector struct{ recordCount uint64 }
func (c *collector) inc() { c.recordCount++ }
`, "bare counter field"},
		{"slog", `package p
import "log"
func f() { log.Printf("hello") }
`, "legacy log.Printf"},
		{"walltime", `package p
import "time"
func f() int64 { return time.Now().UnixNano() }
`, "time.Now in clock-injected code"},
		{"maporder", `package p
func f(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`, "the return value"},
		{"deadlock", `package p
import "sync"
type T struct{ mu sync.Mutex; n int }
func (t *T) Get() int { t.mu.Lock(); defer t.mu.Unlock(); return t.n }
func (t *T) Bump() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n = t.Get() + 1
}
`, "not reentrant"},
		{"seedflow", `package p
import ("math/rand"; "time")
func f() *rand.Rand {
	seed := time.Now().UnixNano()
	return rand.New(rand.NewSource(seed))
}
`, "seeded from time.Now"},
		{"hotpath", `package p
//tipsy:hotpath
func f(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
`, "append inside a loop"},
		{"hotpath", `package p
import "fmt"
//tipsy:hotpath
func f(n int) string { return fmt.Sprintf("%d", n) }
`, "boxes into an interface parameter"},
		{"hotpath", `package p
//tipsy:hotpath
func f(sink chan func()) {
	n := 0
	sink <- func() { n++ }
}
`, "closure escapes"},
		{"guardedby", `package p
import "sync"
type T struct{ mu sync.Mutex; n int }
func (t *T) Inc() { t.mu.Lock(); t.n++; t.mu.Unlock() }
func (t *T) Dec() { t.mu.Lock(); t.n--; t.mu.Unlock() }
func (t *T) Get() int { t.mu.Lock(); defer t.mu.Unlock(); return t.n }
func (t *T) Peek() int { return t.n }
`, "unguarded read of tipsy.T.n"},
		{"guardedby", `package p
import "sync"
type T struct {
	mu sync.RWMutex
	//tipsy:guardedby mu
	m map[string]int
}
func (t *T) Put(k string, v int) { t.mu.RLock(); t.m[k] = v; t.mu.RUnlock() }
`, "under mu.RLock()"},
		{"guardedby", `package p
import "sync"
type T struct {
	mu sync.Mutex
	//tipsy:guardedby mu
	n int
}
func (t *T) Go() {
	t.mu.Lock()
	defer t.mu.Unlock()
	go func() { t.n++ }()
}
`, "escaping closure"},
	}
	for i, tc := range cases {
		p, err := loader(t).LoadSource(fmt.Sprintf("deliberate%d.go", i), tc.src)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		diags := Run([]*Package{p}, []Rule{descope(ruleByName(t, tc.rule))})
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("case %d (%s): no diagnostic containing %q; got %v", i, tc.rule, tc.want, diags)
		}
	}
}

// TestSuppression covers the //lint:ignore grammar: a justified
// directive silences the finding on its line and the line below; a
// wrong rule name or a missing reason does not.
func TestSuppression(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		wantDiags int
	}{
		{"same line", `package p
import "time"
func f() int64 { return time.Now().Unix() } //lint:ignore determinism test fixture needs wall clock
`, 0},
		{"line above", `package p
import "time"
//lint:ignore determinism test fixture needs wall clock
func f() int64 { return time.Now().Unix() }
`, 0},
		{"all alias", `package p
import "time"
//lint:ignore all test fixture needs wall clock
func f() int64 { return time.Now().Unix() }
`, 0},
		{"wrong rule", `package p
import "time"
//lint:ignore locks wrong family
func f() int64 { return time.Now().Unix() }
`, 1},
		{"missing reason", `package p
import "time"
//lint:ignore determinism
func f() int64 { return time.Now().Unix() }
`, 1},
		{"not adjacent", `package p
import "time"
//lint:ignore determinism too far away

func f() int64 { return time.Now().Unix() }
`, 1},
	}
	rule := descope(ruleByName(t, "determinism"))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := loader(t).LoadSource(strings.ReplaceAll(tc.name, " ", "_")+".go", tc.src)
			if err != nil {
				t.Fatal(err)
			}
			diags := Run([]*Package{p}, []Rule{rule})
			if len(diags) != tc.wantDiags {
				t.Errorf("got %d diagnostics, want %d: %v", len(diags), tc.wantDiags, diags)
			}
		})
	}
}

// TestScoping checks the package gating: the determinism rule skips
// non-simulation packages except for their test files, and the
// goroutine rule skips test files everywhere.
func TestScoping(t *testing.T) {
	detSrc := `package p
import "time"
func f() int64 { return time.Now().Unix() }
`
	rule := ruleByName(t, "determinism")

	p, err := loader(t).LoadSource("scope_prod.go", detSrc)
	if err != nil {
		t.Fatal(err)
	}
	p.Rel = "internal/ipfix" // encoder package: out of determinism scope
	if diags := Run([]*Package{p}, []Rule{rule}); len(diags) != 0 {
		t.Errorf("determinism fired outside its packages: %v", diags)
	}

	p2, err := loader(t).LoadSource("scope_sim.go", detSrc)
	if err != nil {
		t.Fatal(err)
	}
	p2.Rel = "internal/netsim"
	if diags := Run([]*Package{p2}, []Rule{rule}); len(diags) != 1 {
		t.Errorf("determinism silent inside its packages: %v", diags)
	}

	p3, err := loader(t).LoadSource("scope_test_file_test.go", detSrc)
	if err != nil {
		t.Fatal(err)
	}
	p3.Rel = "internal/ipfix"
	if diags := Run([]*Package{p3}, []Rule{rule}); len(diags) != 1 {
		t.Errorf("determinism must cover test files repo-wide: %v", diags)
	}

	goSrc := `package p
func f() { go func() { for {} }() }
`
	p4, err := loader(t).LoadSource("scope_go_test.go", goSrc)
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{p4}, []Rule{ruleByName(t, "goroutine")}); len(diags) != 0 {
		t.Errorf("goroutine rule should skip test files: %v", diags)
	}
}

// TestJSONOutput pins the machine-readable format.
func TestJSONOutput(t *testing.T) {
	p, err := loader(t).LoadSource("json.go", `package p
import "time"
func f() int64 { return time.Now().Unix() }
`)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{p}, []Rule{descope(ruleByName(t, "determinism"))})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"file": "json.go"`, `"line": 3`, `"rule": "determinism"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %s:\n%s", want, out)
		}
	}
}

// TestExpandPatterns ensures the walker honours ./... and skips
// testdata (the fixtures must never gate the real tree).
func TestExpandPatterns(t *testing.T) {
	l := loader(t)
	dirs, err := ExpandPatterns(l.ModuleRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	foundSelf := false
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("pattern expansion descended into %s", d)
		}
		if filepath.Base(d) == "lint" {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Error("./... did not find internal/lint")
	}
}
