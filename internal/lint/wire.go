package lint

import (
	"go/ast"
	"go/types"
)

// checkWire guards the protocol encoders. A dropped error from
// binary.Write/binary.Read or an io.Writer means a short or failed
// write silently corrupts the byte stream — for IPFIX/BMP/BGP that is
// a malformed PDU the peer may not even detect. A non-fixed-size
// argument to binary.Write (int, string, a struct with a slice) does
// not fail at compile time; it returns an error at runtime, on every
// call.
func checkWire(p *Package, report ReportFunc) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedWrite(p, call, report)
				}
			case *ast.AssignStmt:
				if allBlank(n.Lhs) && len(n.Rhs) == 1 {
					if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
						checkDroppedWrite(p, call, report)
					}
				}
			case *ast.CallExpr:
				checkBinaryWriteArg(p, n, report)
			}
			return true
		})
	}
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// checkDroppedWrite flags a call whose error result is discarded when
// the callee is binary.Write/Read or an io.Writer-shaped Write
// method. *bytes.Buffer and *strings.Builder writes are exempt: both
// document that the returned error is always nil.
func checkDroppedWrite(p *Package, call *ast.CallExpr, report ReportFunc) {
	if pkg, name := calleePkgFunc(p, call); pkg == "encoding/binary" && (name == "Write" || name == "Read") {
		report(call.Pos(), "binary.%s error discarded; a failed %s leaves the stream corrupt", name, name)
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Write" {
		return
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isWriterSignature(sig) {
		return
	}
	if recv := sig.Recv().Type(); isPointerTo(recv, "bytes", "Buffer") || isPointerTo(recv, "strings", "Builder") {
		return
	}
	report(call.Pos(), "%s.Write error discarded; check n and err or the encoded message may be truncated", types.ExprString(sel.X))
}

// isWriterSignature matches func([]byte) (int, error).
func isWriterSignature(sig *types.Signature) bool {
	params, results := sig.Params(), sig.Results()
	if params.Len() != 1 || results.Len() != 2 {
		return false
	}
	slice, ok := params.At(0).Type().Underlying().(*types.Slice)
	if !ok || !isBasicKind(slice.Elem(), types.Byte) {
		return false
	}
	if !isBasicKind(results.At(0).Type(), types.Int) {
		return false
	}
	named, ok := results.At(1).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func isBasicKind(t types.Type, kind types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

func isPointerTo(t types.Type, pkg, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkg && obj.Name() == name
}

// checkBinaryWriteArg verifies the data argument of binary.Write is a
// fixed-size value, a slice of fixed-size values, or a pointer to
// one — the contract encoding/binary only enforces at runtime.
func checkBinaryWriteArg(p *Package, call *ast.CallExpr, report ReportFunc) {
	pkg, name := calleePkgFunc(p, call)
	if pkg != "encoding/binary" || name != "Write" || len(call.Args) != 3 {
		return
	}
	tv, ok := p.Info.Types[call.Args[2]]
	if !ok {
		return
	}
	t := tv.Type
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return // dynamic type unknown; runtime's problem
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		t = u.Elem()
	case *types.Slice:
		t = u.Elem()
	}
	if !fixedSize(t) {
		report(call.Args[2].Pos(), "binary.Write data argument has non-fixed-size type %s; it will error at runtime — use a sized type (e.g. uint32) or an explicit encoder",
			types.TypeString(tv.Type, types.RelativeTo(p.Types)))
	}
}

// fixedSize mirrors encoding/binary's notion of fixed-size data:
// sized booleans/numerics, and arrays/structs composed of them. No
// cycle guard is needed: a type can only recurse through pointers,
// slices, or maps, and those are all non-fixed.
func fixedSize(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Bool,
			types.Int8, types.Int16, types.Int32, types.Int64,
			types.Uint8, types.Uint16, types.Uint32, types.Uint64,
			types.Float32, types.Float64, types.Complex64, types.Complex128:
			return true
		}
		return false
	case *types.Array:
		return fixedSize(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !fixedSize(u.Field(i).Type()) {
				return false
			}
		}
		return true
	}
	return false
}
