package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// WriteSARIF prints the findings as a SARIF 2.1.0 log so editors and
// code-scanning UIs can ingest tipsylint output directly. The format
// is hand-rolled onto plain structs — one run, one result per
// diagnostic, rule metadata from the registry — to keep the tool
// dependency-free.
func WriteSARIF(w io.Writer, diags []Diagnostic, rules []Rule) error {
	type sarifMessage struct {
		Text string `json:"text"`
	}
	type sarifArtifactLocation struct {
		URI string `json:"uri"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
	}
	type sarifPhysicalLocation struct {
		ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
		Region           sarifRegion           `json:"region"`
	}
	type sarifLocation struct {
		PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID    string          `json:"ruleId"`
		Level     string          `json:"level"`
		Message   sarifMessage    `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}
	type sarifRule struct {
		ID               string       `json:"id"`
		ShortDescription sarifMessage `json:"shortDescription"`
	}
	type sarifDriver struct {
		Name           string      `json:"name"`
		InformationURI string      `json:"informationUri,omitempty"`
		Rules          []sarifRule `json:"rules"`
	}
	type sarifTool struct {
		Driver sarifDriver `json:"driver"`
	}
	type sarifRun struct {
		Tool    sarifTool     `json:"tool"`
		Results []sarifResult `json:"results"`
	}
	type sarifLog struct {
		Version string     `json:"version"`
		Schema  string     `json:"$schema"`
		Runs    []sarifRun `json:"runs"`
	}

	ruleMeta := make([]sarifRule, 0, len(rules))
	for _, r := range rules {
		ruleMeta = append(ruleMeta, sarifRule{ID: r.Name, ShortDescription: sarifMessage{Text: r.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "tipsylint", Rules: ruleMeta}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
