package lint

import (
	"go/ast"
	"go/types"
)

// checkSlog enforces the structured-logging migration: instrumented
// packages log through log/slog (levelled, per-component, JSON-ready),
// so any call through the legacy log package — log.Printf, log.Fatal,
// log.New, ... — is flagged, as is bare fmt printing to stdout
// (fmt.Print/Printf/Println), the historical blind spot that let
// ad-hoc diagnostics bypass the logger. Identification is type-based,
// not name-based: a local variable or package named log is fine; only
// selectors resolving to the imported packages are findings. fmt's
// Sprintf/Errorf/Fprintf families stay legal — only the stdout
// printers side-step the logger.
func checkSlog(p *Package, report ReportFunc) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkg.Imported().Path() {
			case "log":
				report(sel.Pos(),
					"legacy log.%s call; instrumented packages log through log/slog with a per-component logger",
					sel.Sel.Name)
			case "fmt":
				switch sel.Sel.Name {
				case "Print", "Printf", "Println":
					report(sel.Pos(),
						"bare fmt.%s to stdout; instrumented packages log through log/slog with a per-component logger",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}
