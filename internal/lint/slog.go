package lint

import (
	"go/ast"
	"go/types"
)

// checkSlog enforces the structured-logging migration: instrumented
// packages log through log/slog (levelled, per-component, JSON-ready),
// so any call through the legacy log package — log.Printf, log.Fatal,
// log.New, ... — is flagged. Identification is type-based, not
// name-based: a local variable or package named log is fine; only
// selectors resolving to the imported "log" package are findings.
func checkSlog(p *Package, report ReportFunc) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok || pkg.Imported().Path() != "log" {
				return true
			}
			report(sel.Pos(),
				"legacy log.%s call; instrumented packages log through log/slog with a per-component logger",
				sel.Sel.Name)
			return true
		})
	}
}
