package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The seedflow rule closes the gap the syntactic determinism check
// leaves open: determinism.go only inspects the argument expression
// of rand.New/rand.NewSource, so a wall-clock seed laundered through
// a local variable or a helper function slips past. This rule runs
// the provenance engine: every seed argument must trace back to a
// configuration/struct field, a function parameter, or a constant —
// never, through any chain of locals and in-module helpers, to
// time.Now, time.Since, crypto/rand, or the process identity.

// seedSummary is the memoized provenance of one function's results,
// expressed over TagParam and TagNondet (clean facts are dropped).
// busy guards recursive summary requests: a cycle resolves to clean,
// keeping the analysis optimistic rather than divergent.
type seedSummary struct {
	tags tagSet
	busy bool
}

// seedHooks classifies calls for the provenance engine.
type seedHooks struct {
	prog *Program
	pkg  *Package
}

// nondetSource names the nondeterministic source a direct call
// represents, or "".
func nondetSource(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "time" && (name == "Now" || name == "Since" || name == "Until"):
		return "time." + name
	case path == "crypto/rand":
		return "crypto/rand." + name
	case path == "os" && (name == "Getpid" || name == "Getppid"):
		return "os." + name
	}
	return ""
}

func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

func (h *seedHooks) EvalCall(call *ast.CallExpr, recv tagSet, args []tagSet) []tagSet {
	fn := calleeFunc(h.pkg, call)
	if fn == nil {
		return []tagSet{union(append(args, recv)...)}
	}
	if src := nondetSource(fn); src != "" {
		return []tagSet{singleton(Tag{Kind: TagNondet, Detail: src})}
	}
	if node, ok := h.prog.Graph.Nodes[FuncID(fn)]; ok {
		// In-module helper: substitute the call's argument provenance
		// into the callee's result summary.
		sum := h.prog.seedResultSummary(node)
		var parts []tagSet
		for t := range sum {
			switch t.Kind {
			case TagNondet:
				parts = append(parts, singleton(t))
			case TagParam:
				if t.Index == -1 {
					parts = append(parts, recv)
				} else if t.Index < len(args) {
					parts = append(parts, args[t.Index])
				}
			}
		}
		return []tagSet{union(parts...)}
	}
	// Out-of-module call: assume a pure function of its operands, so
	// nondeterminism in any operand flows through (hashing a
	// timestamp does not clean it) and clean operands stay clean.
	return []tagSet{union(append(args, recv)...)}
}

func (h *seedHooks) RangeTags(rs *ast.RangeStmt, xTags tagSet, isMap bool) (key, val tagSet) {
	// Seed provenance passes through collections: iterating a slice
	// of nondeterministic seeds yields nondeterministic elements.
	return xTags, xTags
}

func (h *seedHooks) CleanseArgs(call *ast.CallExpr) []ast.Expr { return nil }

// seedResultSummary computes (and memoizes) the union provenance of
// node's results in terms of its own parameters and nondeterministic
// sources.
func (prog *Program) seedResultSummary(node *FuncNode) tagSet {
	if sum, ok := prog.seedSums[node.ID]; ok {
		if sum.busy {
			return nil // recursion: optimistic clean
		}
		return sum.tags
	}
	prog.seedSums[node.ID] = &seedSummary{busy: true}
	pv := analyzeFunc(node.Pkg, node.Decl, &seedHooks{prog: prog, pkg: node.Pkg})
	var parts []tagSet
	pv.visit(func(s ast.Stmt, e env) {
		ret, ok := s.(*ast.ReturnStmt)
		if !ok {
			return
		}
		if len(ret.Results) == 0 {
			// Bare return with named results.
			if node.Decl.Type.Results != nil {
				for _, f := range node.Decl.Type.Results.List {
					for _, name := range f.Names {
						if obj := node.Pkg.Info.Defs[name]; obj != nil {
							parts = append(parts, e[obj])
						}
					}
				}
			}
			return
		}
		for _, res := range ret.Results {
			parts = append(parts, pv.eval(res, e))
		}
	})
	// Keep only the kinds a caller can act on.
	var tags tagSet
	for t := range union(parts...) {
		if t.Kind == TagNondet || t.Kind == TagParam {
			if tags == nil {
				tags = tagSet{}
			}
			tags[t] = struct{}{}
		}
	}
	prog.seedSums[node.ID] = &seedSummary{tags: tags}
	return tags
}

// checkSeedFlow walks every function in scope that constructs a rand
// source and verifies the seed argument's provenance.
func checkSeedFlow(prog *Program, scope []*Package, report ReportFunc) {
	for _, p := range scope {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !mentionsRand(fd) {
					continue
				}
				checkSeedFunc(prog, p, fd, report)
			}
		}
	}
}

// mentionsRand cheaply pre-filters: only bodies that call something
// named New/NewSource/NewPCG/NewChaCha8 are worth a dataflow pass.
func mentionsRand(fd *ast.FuncDecl) bool {
	return mentionsRandBody(fd.Body)
}

func mentionsRandBody(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "New", "NewSource", "NewPCG", "NewChaCha8":
			found = true
		}
		return true
	})
	return found
}

// seedConstructor reports whether call builds a rand source or
// generator from an explicit seed, returning the seed arguments.
func seedConstructor(p *Package, call *ast.CallExpr) ([]ast.Expr, bool) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "math/rand" && name == "NewSource":
		return call.Args, true
	case path == "math/rand" && name == "New":
		// rand.New(rand.NewSource(x)) is covered at the inner call;
		// only a non-constructor argument needs checking here.
		if len(call.Args) == 1 {
			if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
				if ifn := calleeFunc(p, inner); ifn != nil && ifn.Pkg() != nil &&
					ifn.Pkg().Path() == "math/rand" {
					return nil, false
				}
			}
		}
		return call.Args, true
	case path == "math/rand/v2" && (name == "NewPCG" || name == "NewChaCha8"):
		return call.Args, true
	}
	return nil, false
}

func checkSeedFunc(prog *Program, p *Package, fd *ast.FuncDecl, report ReportFunc) {
	hooks := &seedHooks{prog: prog, pkg: p}
	seedScanBody(prog, p, analyzeFunc(p, fd, hooks), hooks, report)
}

// seedScanBody inspects one analyzed body for seed constructors and
// recurses into the closures it creates, carrying the captured
// environment in.
func seedScanBody(prog *Program, p *Package, pv *provenance, hooks *seedHooks, report ReportFunc) {
	type litWork struct {
		lit *ast.FuncLit
		e   env
	}
	var lits []litWork
	pv.visit(func(s ast.Stmt, e env) {
		inspectShallow(s, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lits = append(lits, litWork{lit, e.clone()})
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			seedArgs, ok := seedConstructor(p, call)
			if !ok {
				return true
			}
			for _, arg := range seedArgs {
				tags := pv.eval(arg, e)
				if t, bad := tags.pick(TagNondet); bad {
					report(call.Pos(),
						"%s seeded from %s (transitively); seeds must come from a config field or parameter so runs replay byte-for-byte",
						callName(call), t.Detail)
					break
				}
			}
			return true
		})
	})
	for _, w := range lits {
		if mentionsRandBody(w.lit.Body) {
			seedScanBody(prog, p, analyzeFuncLit(p, w.lit, w.e, hooks), hooks, report)
		}
	}
}

// callName renders the callee for a diagnostic, e.g. "rand.NewSource".
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return strings.TrimSpace("call")
}
