package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkGoroutine reviews every `go func` literal in non-test code.
// Two findings: a body that reads an enclosing loop's variables
// instead of taking them as arguments (scheduling-order dependent and
// a classic pre-1.22 footgun), and a body with no cancellation or
// completion path at all — no context, no channel, no WaitGroup —
// which a long-running daemon can neither stop nor await.
func checkGoroutine(p *Package, report ReportFunc) {
	for _, f := range p.Files {
		var loopVars []types.Object
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			switch n := n.(type) {
			case nil:
				return
			case *ast.ForStmt:
				mark := len(loopVars)
				if init, ok := n.Init.(*ast.AssignStmt); ok {
					for _, lhs := range init.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := p.Info.Defs[id]; obj != nil {
								loopVars = append(loopVars, obj)
							}
						}
					}
				}
				walkChildren(n, walk)
				loopVars = loopVars[:mark]
				return
			case *ast.RangeStmt:
				mark := len(loopVars)
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := p.Info.Defs[id]; obj != nil {
							loopVars = append(loopVars, obj)
						}
					}
				}
				walkChildren(n, walk)
				loopVars = loopVars[:mark]
				return
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					if captured := capturedLoopVar(p, lit, loopVars); captured != "" {
						report(n.Pos(), "goroutine captures loop variable %s; pass it as an argument to the func literal", captured)
					}
					if !hasCancellationPath(p, lit) {
						report(n.Pos(), "goroutine has no cancellation or completion path; thread a context.Context, stop channel, or WaitGroup through it")
					}
				}
			}
			walkChildren(n, walk)
		}
		walk(f)
	}
}

// walkChildren visits n's immediate children with walk.
func walkChildren(n ast.Node, walk func(ast.Node)) {
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n {
			return true
		}
		walk(child)
		return false // walk recurses itself
	})
}

// capturedLoopVar returns the name of an enclosing loop variable the
// literal's body references directly (arguments to the call are
// evaluated in the loop and are fine).
func capturedLoopVar(p *Package, lit *ast.FuncLit, loopVars []types.Object) string {
	if len(loopVars) == 0 {
		return ""
	}
	var captured string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		for _, lv := range loopVars {
			if obj == lv {
				captured = id.Name
				return false
			}
		}
		return true
	})
	return captured
}

// hasCancellationPath reports whether the goroutine body touches any
// mechanism that can stop it or signal its completion: a channel
// operation, a select, a context.Context value, or a sync.WaitGroup.
func hasCancellationPath(p *Package, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			// Ranging over a channel is a receive loop; closing the
			// channel stops it.
			if tv, ok := p.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		case *ast.Ident:
			if obj := p.Info.Uses[n]; obj != nil && isSignalType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSignalType matches channels, context.Context, and sync.WaitGroup
// (by value or pointer).
func isSignalType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "context" && obj.Name() == "Context":
		return true
	case obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup":
		return true
	}
	return false
}
