package lint

import (
	"go/ast"
)

// This file builds a per-function control-flow graph of basic blocks
// straight from the AST. The deep-tier dataflow pass (dataflow.go)
// iterates transfer functions over it to a fixpoint; precision is
// deliberately modest — enough to know which assignments can reach a
// use — because the rules built on top only need value provenance,
// not full SSA.

// Block is one basic block: a maximal run of straight-line statements
// plus the edges out. Control-flow statements (if, for, range,
// switch, select) appear as the last "header" statement of the block
// that evaluates their condition; the dataflow transfer function
// interprets the header's init/condition effects and the CFG supplies
// the branch edges.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block // synthetic; every return and fall-off edge ends here
	Blocks []*Block
}

// cfgBuilder threads the "current block" through the statement walk.
type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// loops is the stack of enclosing break/continue targets.
	loops []loopFrame
	// labels maps label name -> loop frame for labeled break/continue.
	labels map[string]loopFrame
	// nextLabel names the loop/switch about to be pushed; set while
	// lowering a labeled loop statement.
	nextLabel string
}

type loopFrame struct {
	label          string
	brk, continue_ *Block
}

// BuildCFG constructs the CFG for one function body. Function
// literals inside the body are NOT descended into — each literal is
// its own analysis scope.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]loopFrame{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = &Block{Index: -1}
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a statement to the current block, opening a fresh block
// if control already left (dead code after return/branch).
func (b *cfgBuilder) add(s ast.Stmt) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Stmts = append(b.cur.Stmts, s)
}

// startHeader seals the current block and opens a fresh one holding
// only the loop header. Loop headers are back-edge targets, so they
// must not share a block with the straight-line statements before
// them — those would be re-applied on every iteration.
func (b *cfgBuilder) startHeader(s ast.Stmt) {
	if b.cur != nil && len(b.cur.Stmts) > 0 {
		prev := b.cur
		b.cur = b.newBlock()
		b.edge(prev, b.cur)
	}
	b.add(s)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.add(s) // header: Init and Cond effects
		cond := b.cur
		b.cur = nil
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		thenEnd := b.cur
		var elseEnd *Block
		join := b.newBlock()
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			elseEnd = b.cur
		} else {
			b.edge(cond, join)
		}
		if thenEnd != nil {
			b.edge(thenEnd, join)
		}
		if elseEnd != nil {
			b.edge(elseEnd, join)
		}
		b.cur = join

	case *ast.ForStmt:
		b.startHeader(s) // header: Init, Cond, Post effects
		head := b.cur
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after) // condition can be false on entry
		} else {
			// for{}: only break leaves; still edge to after so the
			// dataflow terminates on the conservative side.
			b.edge(head, after)
		}
		b.pushLoop(s, after, head)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head) // back edge
		}
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		b.startHeader(s) // header: X evaluation and Key/Value binding
		head := b.cur
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after) // empty collection
		b.pushLoop(s, after, head)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.add(s) // header: Init/Tag effects
		head := b.cur
		after := b.newBlock()
		var clauses []ast.Stmt
		hasDefault := false
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		b.pushSwitch(s, after)
		for _, c := range clauses {
			var body []ast.Stmt
			switch c := c.(type) {
			case *ast.CaseClause:
				if c.List == nil {
					hasDefault = true
				}
				body = c.Body
			case *ast.CommClause:
				if c.Comm == nil {
					hasDefault = true
					body = c.Body
				} else {
					body = append([]ast.Stmt{c.Comm}, c.Body...)
				}
			}
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			b.stmtList(body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		if !hasDefault || len(clauses) == 0 {
			b.edge(head, after)
		}
		b.popLoop()
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.add(s)
		b.branch(s)
		b.cur = nil

	case *ast.LabeledStmt:
		// Record the label so labeled break/continue resolve, then
		// lower the underlying statement.
		b.pendingLabel(s.Label.Name, s.Stmt)

	case *ast.DeferStmt, *ast.GoStmt:
		// The spawned/deferred call runs outside this straight-line
		// order; keep the statement for its argument-evaluation
		// effects only.
		b.add(s)

	default:
		// Assignments, declarations, expression statements, sends,
		// inc/dec: straight-line.
		b.add(s)
	}
}

// pendingLabel lowers a labeled statement, making the label's
// break/continue targets available while its body builds.
func (b *cfgBuilder) pendingLabel(name string, s ast.Stmt) {
	switch s.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.labels[name] = loopFrame{} // placeholder; filled by push
		b.nextLabel = name
		b.stmt(s)
		delete(b.labels, name)
	default:
		b.stmt(s) // plain labeled statement (goto target): lowered as-is
	}
}

func (b *cfgBuilder) pushLoop(s ast.Stmt, brk, cont *Block) {
	f := loopFrame{label: b.nextLabel, brk: brk, continue_: cont}
	b.nextLabel = ""
	if f.label != "" {
		b.labels[f.label] = f
	}
	b.loops = append(b.loops, f)
}

func (b *cfgBuilder) pushSwitch(s ast.Stmt, brk *Block) {
	f := loopFrame{label: b.nextLabel, brk: brk}
	b.nextLabel = ""
	if f.label != "" {
		b.labels[f.label] = f
	}
	b.loops = append(b.loops, f)
}

func (b *cfgBuilder) popLoop() {
	b.loops = b.loops[:len(b.loops)-1]
}

// branch wires a break/continue/goto/fallthrough edge.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		if f, ok := b.branchFrame(s, true); ok {
			b.edge(b.cur, f.brk)
			return
		}
	case "continue":
		if f, ok := b.branchFrame(s, false); ok && f.continue_ != nil {
			b.edge(b.cur, f.continue_)
			return
		}
	case "fallthrough":
		// The next case body follows; approximate with exit-free
		// fallthrough to the switch join via no extra edge (the case
		// block already edges to after).
		return
	}
	// goto, or a branch we cannot resolve: conservatively edge to
	// exit so the dataflow stays sound for reachability.
	b.edge(b.cur, b.cfg.Exit)
}

// branchFrame finds the loop frame a break/continue targets.
func (b *cfgBuilder) branchFrame(s *ast.BranchStmt, allowSwitch bool) (loopFrame, bool) {
	if s.Label != nil {
		f, ok := b.labels[s.Label.Name]
		return f, ok && f.brk != nil
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := b.loops[i]
		if !allowSwitch && f.continue_ == nil {
			continue // switch frames do not catch bare continue
		}
		return f, true
	}
	return loopFrame{}, false
}

// RPO returns the blocks in reverse post-order from Entry — the
// iteration order under which a forward dataflow converges fastest.
// Unreachable blocks are appended at the end so no statement is
// skipped.
func (c *CFG) RPO() []*Block {
	seen := make([]bool, len(c.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(c.Entry)
	out := make([]*Block, 0, len(c.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for _, b := range c.Blocks {
		if !seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}
