package lint

import (
	"go/ast"
	"go/types"
)

// checkDeterminism enforces the seeded-substrate contract: simulation
// code may not consult the wall clock or the process-global RNG, and
// every *rand.Rand it builds must be seeded from an explicit value,
// not from time or OS entropy. Violations are exactly the calls that
// make two runs with the same seed diverge.
func checkDeterminism(p *Package, report ReportFunc) {
	// rand.New/NewSource/NewZipf take or build explicit sources and
	// are the sanctioned construction path; everything else exported
	// from math/rand is the shared global generator.
	randConstructors := map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := calleePkgFunc(p, call)
			switch {
			case pkg == "time" && name == "Now":
				report(call.Pos(), "time.Now in seeded code; inject a clock or derive timestamps from the simulated hour")
			case (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[name]:
				report(call.Pos(), "global math/rand.%s; draw from an injected seeded *rand.Rand instead", name)
			case pkg == "math/rand" && (name == "New" || name == "NewSource"):
				if bad := nondetSeed(p, call); bad != "" {
					report(call.Pos(), "rand.%s seeded from %s; seed from configuration so runs replay byte-for-byte", name, bad)
				}
			}
			return true
		})
	}
}

// nondetSeed reports the first nondeterministic source feeding a
// rand.New/rand.NewSource argument (time.Now, crypto/rand, or the
// process identity), or "" if the seed expression is clean.
func nondetSeed(p *Package, call *ast.CallExpr) string {
	var bad string
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if bad != "" {
				return false
			}
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch pkg, name := calleePkgFunc(p, inner); {
			case pkg == "time" && name == "Now":
				bad = "time.Now"
			case pkg == "crypto/rand":
				bad = "crypto/rand." + name
			case pkg == "os" && (name == "Getpid" || name == "Getppid"):
				bad = "os." + name
			}
			return true
		})
	}
	return bad
}

// calleePkgFunc resolves a call to a package-level function,
// returning the import path and function name, or "", "" for method
// calls, locals, conversions, and anything unresolved.
func calleePkgFunc(p *Package, call *ast.CallExpr) (pkgPath, name string) {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fn.Sel
	case *ast.Ident:
		id = fn
	default:
		return "", ""
	}
	obj, ok := p.Info.Uses[id]
	if !ok {
		return "", ""
	}
	fnObj, ok := obj.(*types.Func)
	if !ok || fnObj.Pkg() == nil {
		return "", ""
	}
	if recv := fnObj.Type().(*types.Signature).Recv(); recv != nil {
		return "", "" // method, not a package-level function
	}
	return fnObj.Pkg().Path(), fnObj.Name()
}
