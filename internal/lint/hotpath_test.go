package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// hotSrc is a minimal hot tree: one root with one append-loop site
// and one allocation-free helper.
const hotSrc = `package p

//tipsy:hotpath
func ingest(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, bump(x))
	}
	return out
}

func bump(x int) int { return x + 1 }
`

func loadHot(t *testing.T, src string) *Package {
	t.Helper()
	p, err := loader(t).LoadSource("hot.go", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func writeBudget(t *testing.T, b *Budget) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), BudgetFilename)
	if err := os.WriteFile(path, b.Marshal(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func hotpathRule(t *testing.T, budgetPath string) Rule {
	t.Helper()
	for _, r := range RulesWithBudget(budgetPath) {
		if r.Name == "hotpath" {
			return r
		}
	}
	t.Fatal("no hotpath rule")
	return Rule{}
}

// TestHotpathNewFunctionRatchetsFromZero: a hot function with no
// budget entry is over budget immediately — new hot code starts at
// zero allowance.
func TestHotpathNewFunctionRatchetsFromZero(t *testing.T) {
	p := loadHot(t, hotSrc)
	diags := Run([]*Package{p}, []Rule{hotpathRule(t, filepath.Join(t.TempDir(), BudgetFilename))})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "budget 0") {
		t.Fatalf("want one budget-0 finding, got %v", diags)
	}
	rep := AnalyzeHotpaths(NewProgram([]*Package{p}))
	deltas := DiffBudget(NewBudget(), rep, nil)
	if len(deltas) != 1 || deltas[0].Kind != "new" || deltas[0].Observed != 1 {
		t.Fatalf("want one 'new' delta, got %+v", deltas)
	}
}

// TestHotpathBudgetAbsorbsSites: a budget matching the tree silences
// the rule; one lower than the tree (the grown case) does not.
func TestHotpathBudgetAbsorbsSites(t *testing.T) {
	p := loadHot(t, hotSrc)
	rep := AnalyzeHotpaths(NewProgram([]*Package{p}))
	exact := BudgetFromReport(rep)
	if diags := Run([]*Package{p}, []Rule{hotpathRule(t, writeBudget(t, exact))}); len(diags) != 0 {
		t.Fatalf("exact budget still flags: %v", diags)
	}
	if deltas := DiffBudget(exact, rep, nil); len(deltas) != 0 {
		t.Fatalf("exact budget diffs: %+v", deltas)
	}

	tight := NewBudget()
	for id, cats := range exact.Budgets {
		tight.Budgets[id] = map[string]int{}
		for c := range cats {
			tight.Budgets[id][c] = 0
		}
	}
	if diags := Run([]*Package{p}, []Rule{hotpathRule(t, writeBudget(t, tight))}); len(diags) == 0 {
		t.Fatal("grown count over a zero budget not flagged")
	}
	deltas := DiffBudget(tight, rep, nil)
	if len(deltas) != 1 || deltas[0].Kind != "grown" {
		t.Fatalf("want one 'grown' delta, got %+v", deltas)
	}
}

// TestHotpathStaleAndShrunkEntries: entries for deleted (or no longer
// hot) functions and counts above the tree both surface in the diff,
// and the package filter keeps out-of-run packages uncondemned.
func TestHotpathStaleAndShrunkEntries(t *testing.T) {
	p := loadHot(t, hotSrc)
	rep := AnalyzeHotpaths(NewProgram([]*Package{p}))
	b := BudgetFromReport(rep)
	var hotID string
	for id := range b.Budgets {
		hotID = id
	}
	b.Budgets[hotID][CatAppendLoop] = 5 // tree has 1: shrunk
	b.Budgets["tipsy/internal/gone.Deleted"] = map[string]int{CatBoxing: 2}

	deltas := DiffBudget(b, rep, nil)
	if len(deltas) != 2 {
		t.Fatalf("want shrunk+stale, got %+v", deltas)
	}
	kinds := map[string]bool{}
	for _, d := range deltas {
		kinds[d.Kind] = true
	}
	if !kinds["shrunk"] || !kinds["stale"] {
		t.Fatalf("want kinds shrunk and stale, got %+v", deltas)
	}

	// With the deleted function's package outside the analyzed set,
	// the stale judgment is withheld.
	loaded := func(pp string) bool { return pp != "tipsy/internal/gone" }
	for _, d := range DiffBudget(b, rep, loaded) {
		if d.Kind == "stale" {
			t.Fatalf("stale reported for an unloaded package: %+v", d)
		}
	}
}

// TestBudgetMarshalIdempotent: marshal -> load -> marshal is byte
// identical, the property -update-budget's no-diff gate rests on.
func TestBudgetMarshalIdempotent(t *testing.T) {
	p := loadHot(t, hotSrc)
	rep := AnalyzeHotpaths(NewProgram([]*Package{p}))
	first := BudgetFromReport(rep).Marshal()
	path := filepath.Join(t.TempDir(), BudgetFilename)
	if err := os.WriteFile(path, first, 0o644); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if second := reloaded.Marshal(); !bytes.Equal(first, second) {
		t.Errorf("marshal not idempotent:\n--- first\n%s--- second\n%s", first, second)
	}
	if !bytes.HasSuffix(first, []byte("\n")) {
		t.Error("budget file must end with a newline")
	}
}

// TestLoadBudgetMissingFile: an absent ratchet file is the empty
// budget, not an error.
func TestLoadBudgetMissingFile(t *testing.T) {
	b, err := LoadBudget(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Budgets) != 0 {
		t.Errorf("missing file produced entries: %+v", b.Budgets)
	}
	if _, err := LoadBudget(writeCorrupt(t)); err == nil {
		t.Error("corrupt budget file loaded without error")
	}
}

func writeCorrupt(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), BudgetFilename)
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestHotClosureInterfaceDispatch: a hot interface call keeps every
// in-module implementer hot.
func TestHotClosureInterfaceDispatch(t *testing.T) {
	p := loadHot(t, `package p

type sink interface{ drain([]int) }

type slow struct{}

func (slow) drain(xs []int) {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	_ = out
}

//tipsy:hotpath
func pump(s sink, xs []int) { s.drain(xs) }
`)
	rep := AnalyzeHotpaths(NewProgram([]*Package{p}))
	hf := rep.Funcs["tipsy.slow.drain"]
	if hf == nil {
		t.Fatalf("interface implementer not in hot closure: %v", rep.Order)
	}
	if hf.Via != "tipsy.pump" {
		t.Errorf("via = %q, want tipsy.pump", hf.Via)
	}
	if len(hf.Sites) != 1 || hf.Sites[0].Category != CatAppendLoop {
		t.Errorf("implementer sites = %+v", hf.Sites)
	}
}

// TestEscapeAnalysis pins the closure classifier on both sides:
// escaping (returned, stored, passed, via helper) and non-escaping
// (immediately invoked, called locally).
func TestEscapeAnalysis(t *testing.T) {
	p := loadHot(t, `package p

var hooks []func()

func keep(f func()) func() { return f }

//tipsy:hotpath
func leaky() func() {
	n := 0
	a := func() { n++ }        // escapes: returned through a local
	hooks = append(hooks, a)   // and stored globally
	b := keep(func() { n-- })  // escapes: passed to a helper
	_ = b
	return a
}

//tipsy:hotpath
func tight(xs []int) int {
	acc := 0
	add := func(x int) { acc += x } // never leaves the frame
	for _, x := range xs {
		add(x)
	}
	return acc
}
`)
	rep := AnalyzeHotpaths(NewProgram([]*Package{p}))
	count := func(id string) int {
		n := 0
		for _, s := range rep.Funcs[id].Sites {
			if s.Category == CatClosure {
				n++
			}
		}
		return n
	}
	if got := count("tipsy.leaky"); got != 2 {
		t.Errorf("leaky: %d closure-escape sites, want 2: %+v", got, rep.Funcs["tipsy.leaky"].Sites)
	}
	if got := count("tipsy.tight"); got != 0 {
		t.Errorf("tight: local-only closure reported escaping: %+v", rep.Funcs["tipsy.tight"].Sites)
	}
}
