// Package lint is tipsylint's analysis engine: a stdlib-only static
// checker enforcing the repository's determinism, lock-hygiene,
// wire-encoder, goroutine, and metrics conventions. See README.md in
// this directory for the rule catalogue and the suppression syntax.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Rule is one analyzer family. A rule is either syntactic (Check:
// a per-package AST walk) or deep (DeepCheck: runs once over the
// whole loaded module with the call graph and dataflow substrate
// available); exactly one of the two is set.
type Rule struct {
	Name string
	Doc  string
	// Dirs restricts the rule to packages whose module-relative path
	// is, or is under, one of these; nil applies everywhere.
	Dirs []string
	// SkipTests drops findings located in _test.go files.
	SkipTests bool
	// TestsEverywhere extends a Dirs-restricted rule to the _test.go
	// files of every package: test runs must obey the same discipline
	// as the code they pin down.
	TestsEverywhere bool
	Check           func(p *Package, report ReportFunc)
	// DeepCheck is the deep-tier entry point. scope holds the
	// packages the rule's Dirs admit (all packages when Dirs is nil);
	// prog gives the whole-module view for cross-package resolution.
	// Findings are filtered against scope, test-file policy, and
	// suppressions by the driver, so a DeepCheck may over-report.
	DeepCheck func(prog *Program, scope []*Package, report ReportFunc)
}

// Program is the whole-module view handed to deep rules: every loaded
// package, the intra-module call graph, and memoized dataflow
// summaries. All packages must come from one Loader (they share its
// FileSet). A Program is built per Run call and is not written to
// after construction except through its private memo caches, which
// are only touched by the sequential deep-rule pass.
type Program struct {
	Pkgs   []*Package
	Fset   *token.FileSet
	Graph  *CallGraph
	byFile map[string]*Package

	// Memoized per-function summaries, filled lazily by the rules.
	seedSums map[string]*seedSummary
	sinkSums map[string]*sinkSummary
}

// NewProgram indexes pkgs for deep analysis.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:     pkgs,
		Graph:    buildCallGraph(pkgs),
		byFile:   map[string]*Package{},
		seedSums: map[string]*seedSummary{},
		sinkSums: map[string]*sinkSummary{},
	}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			prog.byFile[p.Fset.Position(f.Pos()).Filename] = p
		}
	}
	return prog
}

// pkgOf returns the package owning the file at pos.
func (prog *Program) pkgOf(pos token.Position) *Package {
	return prog.byFile[pos.Filename]
}

// ReportFunc records a finding at pos.
type ReportFunc func(pos token.Pos, format string, args ...any)

// Rules returns the full analyzer set with the repository's package
// scoping and the default budget file (the module root's
// .tipsy-allocbudget.json).
func Rules() []Rule { return RulesWithBudget("") }

// RulesWithBudget is Rules with the hotpath tier's allocation-budget
// file overridden; "" means the default. simDirs are the
// seeded-simulation packages where wall-clock and ambient randomness
// are banned; wireDirs are the protocol encoder packages where
// dropped write errors are banned.
func RulesWithBudget(budgetPath string) []Rule {
	simDirs := []string{
		"internal/netsim", "internal/topology", "internal/traffic",
		"internal/core", "internal/wan",
	}
	wireDirs := []string{"internal/ipfix", "internal/bmp", "internal/bgp"}
	return []Rule{
		{
			Name:            "determinism",
			Doc:             "forbid wall-clock time and ambient randomness in simulation code and in tests",
			Dirs:            simDirs,
			TestsEverywhere: true,
			Check:           checkDeterminism,
		},
		{
			Name:  "locks",
			Doc:   "flag copied mutexes and lock/unlock paths that can leak a held lock",
			Check: checkLocks,
		},
		{
			Name:  "wire",
			Doc:   "flag dropped encoder errors and non-fixed-size binary.Write arguments",
			Dirs:  wireDirs,
			Check: checkWire,
		},
		{
			Name:      "goroutine",
			Doc:       "flag goroutines with captured loop variables or no cancellation path",
			SkipTests: true,
			Check:     checkGoroutine,
		},
		{
			Name:      "metrics",
			Doc:       "flag bare integer counter fields in instrumented packages; counters belong on the obsv registry",
			Dirs:      []string{"internal/ipfix", "internal/bmp", "internal/pipeline", "cmd/tipsyd"},
			SkipTests: true,
			Check:     checkMetrics,
		},
		{
			Name: "slog",
			Doc:  "flag legacy log package calls and bare fmt printing in instrumented packages; they log through log/slog",
			Dirs: []string{
				"cmd/tipsyd", "cmd/tipsybench",
				"internal/monitor", "internal/obsv", "internal/pipeline",
				"internal/chaos",
			},
			SkipTests: true,
			Check:     checkSlog,
		},
		{
			Name: "walltime",
			Doc:  "forbid direct time.Now/time.Since in clock-injected packages; timestamps come through the injected clock, and //tipsy:clocksource marks the sanctioned wall-clock entry points",
			Dirs: []string{
				"cmd/tipsyd", "internal/obsv", "internal/monitor", "internal/pipeline",
			},
			SkipTests: true,
			Check:     checkWalltime,
		},
		{
			Name:      "maporder",
			Doc:       "flag map iterations whose order can reach a slice, writer, encoder, or return value unsorted in deterministic-scope packages",
			Dirs:      simDirs,
			SkipTests: true,
			DeepCheck: checkMapOrder,
		},
		{
			Name:      "deadlock",
			Doc:       "flag lock-order cycles across mutex-bearing types and self-deadlocking method calls",
			SkipTests: true,
			DeepCheck: checkDeadlock,
		},
		{
			Name:      "guardedby",
			Doc:       "infer which mutex guards each struct field from the majority of CFG-proven locked accesses (or a //tipsy:guardedby pin) and flag the unguarded minority, RLock-writes, and escaping-closure accesses",
			SkipTests: true,
			DeepCheck: checkGuardedBy,
		},
		{
			Name:            "seedflow",
			Doc:             "require rand seeds to trace to a config field or parameter, never wall clock, entropy, or process identity — even through helpers",
			Dirs:            simDirs,
			TestsEverywhere: true,
			DeepCheck:       checkSeedFlow,
		},
		{
			Name:      "hotpath",
			Doc:       "budget allocation sites in the //tipsy:hotpath call-graph closure; counts ratchet down via .tipsy-allocbudget.json",
			SkipTests: true,
			DeepCheck: func(prog *Program, scope []*Package, report ReportFunc) {
				checkHotpath(prog, report, budgetPath)
			},
		},
	}
}

func (r Rule) appliesTo(p *Package) bool {
	if r.Dirs == nil {
		return true
	}
	for _, d := range r.Dirs {
		if p.Rel == d || strings.HasPrefix(p.Rel, d+"/") {
			return true
		}
	}
	return false
}

// RuleStat records how long one analysis stage spent. SubstrateStat
// names the deep tier's shared Program construction (call graph +
// package index), which no single rule owns.
type RuleStat struct {
	Name    string
	Elapsed time.Duration
}

// SubstrateStat is the RuleStat name for building the deep-tier
// Program.
const SubstrateStat = "(substrate)"

// Run applies the rules to the packages, honouring per-rule scoping
// and //lint:ignore suppressions, and returns findings sorted by
// position. Syntactic rules walk each package independently; deep
// rules run once over a Program built from the full package set.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	diags, _ := RunStats(pkgs, rules)
	return diags
}

// RunStats is Run, additionally reporting wall time per rule (summed
// over packages for syntactic rules) plus a SubstrateStat entry for
// the deep tier's shared Program build. Stats follow registry order.
func RunStats(pkgs []*Package, rules []Rule) ([]Diagnostic, []RuleStat) {
	elapsed := map[string]time.Duration{}
	var diags []Diagnostic
	for _, p := range pkgs {
		ignores := collectIgnores(p)
		for _, r := range rules {
			if r.Check == nil {
				continue
			}
			inScope := r.appliesTo(p)
			if !inScope && !r.TestsEverywhere {
				continue
			}
			start := time.Now()
			r.Check(p, func(pos token.Pos, format string, args ...any) {
				position := p.Fset.Position(pos)
				isTest := strings.HasSuffix(position.Filename, "_test.go")
				if r.SkipTests && isTest {
					return
				}
				if !inScope && !(r.TestsEverywhere && isTest) {
					return
				}
				if ignores.suppressed(r.Name, position) {
					return
				}
				diags = append(diags, Diagnostic{
					Pos:     position,
					Rule:    r.Name,
					Message: fmt.Sprintf(format, args...),
				})
			})
			elapsed[r.Name] += time.Since(start)
		}
	}
	diags = append(diags, runDeep(pkgs, rules, elapsed)...)
	SortDiagnostics(diags)
	var stats []RuleStat
	for _, r := range rules {
		if d, ok := elapsed[r.Name]; ok {
			stats = append(stats, RuleStat{Name: r.Name, Elapsed: d})
		}
	}
	if d, ok := elapsed[SubstrateStat]; ok {
		stats = append(stats, RuleStat{Name: SubstrateStat, Elapsed: d})
	}
	return diags, stats
}

// SortDiagnostics orders findings by position then rule — the order
// Run returns and the CLI prints. Exported so callers appending
// synthetic diagnostics (the budget drift report) can restore it.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// runDeep builds the Program (once) and runs every deep rule over
// it, applying the same scope, test-file, and suppression policy as
// the syntactic pass. Wall time is accumulated into elapsed per rule,
// with the Program build itself under SubstrateStat.
func runDeep(pkgs []*Package, rules []Rule, elapsed map[string]time.Duration) []Diagnostic {
	var deep []Rule
	for _, r := range rules {
		if r.DeepCheck != nil {
			deep = append(deep, r)
		}
	}
	if len(deep) == 0 || len(pkgs) == 0 {
		return nil
	}
	start := time.Now()
	prog := NewProgram(pkgs)
	elapsed[SubstrateStat] += time.Since(start)
	allIgnores := ignoreSet{}
	for _, p := range pkgs {
		for file, lines := range collectIgnores(p) {
			allIgnores[file] = lines
		}
	}
	var diags []Diagnostic
	for _, r := range deep {
		var scope []*Package
		for _, p := range pkgs {
			if r.appliesTo(p) || r.TestsEverywhere {
				scope = append(scope, p)
			}
		}
		start := time.Now()
		r.DeepCheck(prog, scope, func(pos token.Pos, format string, args ...any) {
			position := prog.Fset.Position(pos)
			owner := prog.pkgOf(position)
			if owner == nil {
				return
			}
			isTest := strings.HasSuffix(position.Filename, "_test.go")
			if r.SkipTests && isTest {
				return
			}
			if !r.appliesTo(owner) && !(r.TestsEverywhere && isTest) {
				return
			}
			if allIgnores.suppressed(r.Name, position) {
				return
			}
			diags = append(diags, Diagnostic{
				Pos:     position,
				Rule:    r.Name,
				Message: fmt.Sprintf(format, args...),
			})
		})
		elapsed[r.Name] += time.Since(start)
	}
	return diags
}

// ignoreSet maps file -> line -> rule names suppressed on that line.
type ignoreSet map[string]map[int][]string

// collectIgnores gathers //lint:ignore <rule> <reason> directives. A
// directive suppresses matching findings on its own line and on the
// line directly below (the usual "comment above the statement"
// placement). The reason is mandatory; a bare rule name is ignored so
// that silencing a finding always costs an explanation.
func collectIgnores(p *Package) ignoreSet {
	set := ignoreSet{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no reason given: directive is void
				}
				pos := p.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					set[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], fields[0])
				lines[pos.Line+1] = append(lines[pos.Line+1], fields[0])
			}
		}
	}
	return set
}

func (s ignoreSet) suppressed(rule string, pos token.Position) bool {
	for _, r := range s[pos.Filename][pos.Line] {
		if r == rule || r == "all" {
			return true
		}
	}
	return false
}

// WriteText prints one finding per line in file:line:col form.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
}

// WriteJSON prints the findings as a JSON array.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	type jsonDiag struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	out := make([]jsonDiag, len(diags))
	for i, d := range diags {
		out[i] = jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
