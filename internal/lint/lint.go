// Package lint is tipsylint's analysis engine: a stdlib-only static
// checker enforcing the repository's determinism, lock-hygiene,
// wire-encoder, goroutine, and metrics conventions. See README.md in
// this directory for the rule catalogue and the suppression syntax.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Rule is one analyzer family.
type Rule struct {
	Name string
	Doc  string
	// Dirs restricts the rule to packages whose module-relative path
	// is, or is under, one of these; nil applies everywhere.
	Dirs []string
	// SkipTests drops findings located in _test.go files.
	SkipTests bool
	// TestsEverywhere extends a Dirs-restricted rule to the _test.go
	// files of every package: test runs must obey the same discipline
	// as the code they pin down.
	TestsEverywhere bool
	Check           func(p *Package, report ReportFunc)
}

// ReportFunc records a finding at pos.
type ReportFunc func(pos token.Pos, format string, args ...any)

// Rules returns the full analyzer set with the repository's package
// scoping. simDirs are the seeded-simulation packages where
// wall-clock and ambient randomness are banned; wireDirs are the
// protocol encoder packages where dropped write errors are banned.
func Rules() []Rule {
	simDirs := []string{
		"internal/netsim", "internal/topology", "internal/traffic",
		"internal/core", "internal/wan",
	}
	wireDirs := []string{"internal/ipfix", "internal/bmp", "internal/bgp"}
	return []Rule{
		{
			Name:            "determinism",
			Doc:             "forbid wall-clock time and ambient randomness in simulation code and in tests",
			Dirs:            simDirs,
			TestsEverywhere: true,
			Check:           checkDeterminism,
		},
		{
			Name:  "locks",
			Doc:   "flag copied mutexes and lock/unlock paths that can leak a held lock",
			Check: checkLocks,
		},
		{
			Name:  "wire",
			Doc:   "flag dropped encoder errors and non-fixed-size binary.Write arguments",
			Dirs:  wireDirs,
			Check: checkWire,
		},
		{
			Name:      "goroutine",
			Doc:       "flag goroutines with captured loop variables or no cancellation path",
			SkipTests: true,
			Check:     checkGoroutine,
		},
		{
			Name:      "metrics",
			Doc:       "flag bare integer counter fields in instrumented packages; counters belong on the obsv registry",
			Dirs:      []string{"internal/ipfix", "internal/bmp", "internal/pipeline", "cmd/tipsyd"},
			SkipTests: true,
			Check:     checkMetrics,
		},
		{
			Name: "slog",
			Doc:  "flag legacy log package calls in instrumented packages; they log through log/slog",
			Dirs: []string{
				"cmd/tipsyd", "cmd/tipsybench",
				"internal/monitor", "internal/obsv", "internal/pipeline",
			},
			SkipTests: true,
			Check:     checkSlog,
		},
	}
}

func (r Rule) appliesTo(p *Package) bool {
	if r.Dirs == nil {
		return true
	}
	for _, d := range r.Dirs {
		if p.Rel == d || strings.HasPrefix(p.Rel, d+"/") {
			return true
		}
	}
	return false
}

// Run applies the rules to the packages, honouring per-rule scoping
// and //lint:ignore suppressions, and returns findings sorted by
// position.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		ignores := collectIgnores(p)
		for _, r := range rules {
			inScope := r.appliesTo(p)
			if !inScope && !r.TestsEverywhere {
				continue
			}
			r.Check(p, func(pos token.Pos, format string, args ...any) {
				position := p.Fset.Position(pos)
				isTest := strings.HasSuffix(position.Filename, "_test.go")
				if r.SkipTests && isTest {
					return
				}
				if !inScope && !(r.TestsEverywhere && isTest) {
					return
				}
				if ignores.suppressed(r.Name, position) {
					return
				}
				diags = append(diags, Diagnostic{
					Pos:     position,
					Rule:    r.Name,
					Message: fmt.Sprintf(format, args...),
				})
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// ignoreSet maps file -> line -> rule names suppressed on that line.
type ignoreSet map[string]map[int][]string

// collectIgnores gathers //lint:ignore <rule> <reason> directives. A
// directive suppresses matching findings on its own line and on the
// line directly below (the usual "comment above the statement"
// placement). The reason is mandatory; a bare rule name is ignored so
// that silencing a finding always costs an explanation.
func collectIgnores(p *Package) ignoreSet {
	set := ignoreSet{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no reason given: directive is void
				}
				pos := p.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					set[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], fields[0])
				lines[pos.Line+1] = append(lines[pos.Line+1], fields[0])
			}
		}
	}
	return set
}

func (s ignoreSet) suppressed(rule string, pos token.Position) bool {
	for _, r := range s[pos.Filename][pos.Line] {
		if r == rule || r == "all" {
			return true
		}
	}
	return false
}

// WriteText prints one finding per line in file:line:col form.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
}

// WriteJSON prints the findings as a JSON array.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	type jsonDiag struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	out := make([]jsonDiag, len(diags))
	for i, d := range diags {
		out[i] = jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
