package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is tipsylint's third, performance-oriented tier. The
// correctness tiers ask "can this go wrong"; this one asks "does this
// allocate on the per-record path". Functions carrying a
// //tipsy:hotpath directive are roots; the tier computes the
// call-graph closure of the roots and statically enumerates every
// allocation site inside it — append growth in loops, make/new and
// composite literals in loop bodies, map inserts in loops,
// string<->[]byte conversions, interface boxing at call sites (the
// fmt and slog argument trap), closures that escape (via the
// provenance engine in escape.go), and defer or time.Now inside
// loops. The counts are gated by the committed ratchet file
// .tipsy-allocbudget.json (budget.go): a site count may shrink, never
// grow, so allocation wins are locked in PR over PR.

// HotpathDirective marks a function as a hot-path root. The directive
// goes in the doc comment, machine-readable like //go:noinline:
//
//	//tipsy:hotpath
//	func Decode(buf []byte) ...
const HotpathDirective = "//tipsy:hotpath"

// Allocation-site categories. Each is budgeted independently per
// function.
const (
	// CatAppendLoop: append inside a loop — amortized growth of the
	// backing array on the per-iteration path.
	CatAppendLoop = "append-loop"
	// CatAllocLoop: make, new, or a composite literal inside a loop.
	CatAllocLoop = "alloc-loop"
	// CatMapInsertLoop: a map store inside a loop — bucket growth and
	// key/value copying per iteration.
	CatMapInsertLoop = "map-insert-loop"
	// CatStringConv: a string<->[]byte conversion; both directions
	// copy the bytes.
	CatStringConv = "string-conv"
	// CatBoxing: a concrete non-pointer-shaped value passed to an
	// interface-typed parameter — fmt/slog variadic args are the
	// classic case.
	CatBoxing = "boxing"
	// CatClosure: a function literal whose value escapes the creating
	// function, heap-allocating the closure and its captures.
	CatClosure = "closure-escape"
	// CatDeferLoop: defer inside a loop — a deferred frame per
	// iteration, all held until return.
	CatDeferLoop = "defer-loop"
	// CatTimeLoop: time.Now/time.Since inside a loop — a clock read
	// per item where one per batch would do.
	CatTimeLoop = "time-loop"
)

// AllocSite is one statically identified allocation (or per-iteration
// cost) inside a hot function.
type AllocSite struct {
	Pos      token.Pos
	Category string
	Desc     string
}

// HotFunc is one function in the hot closure.
type HotFunc struct {
	ID    string
	Via   string // the root whose closure reached it; == ID for roots
	Sites []AllocSite
}

// HotReport is the result of the hot-path analysis over a Program.
type HotReport struct {
	Funcs map[string]*HotFunc
	Order []string // IDs sorted, for deterministic iteration
	Roots []string // annotated root IDs, sorted
}

// AnalyzeHotpaths finds the annotated roots, closes over the call
// graph, and scans every hot function for allocation sites.
func AnalyzeHotpaths(prog *Program) *HotReport {
	rep := &HotReport{Funcs: map[string]*HotFunc{}, Roots: hotRoots(prog)}
	for id, root := range hotClosure(prog, rep.Roots) {
		n := prog.Graph.Nodes[id]
		rep.Funcs[id] = &HotFunc{ID: id, Via: root, Sites: scanAllocs(n.Pkg, n.Decl)}
		rep.Order = append(rep.Order, id)
	}
	sort.Strings(rep.Order)
	return rep
}

// Counts folds the report into per-function, per-category site
// counts, dropping allocation-free functions — the shape the budget
// file persists.
func (r *HotReport) Counts() map[string]map[string]int {
	out := map[string]map[string]int{}
	for id, hf := range r.Funcs {
		if len(hf.Sites) == 0 {
			continue
		}
		m := map[string]int{}
		for _, s := range hf.Sites {
			m[s.Category]++
		}
		out[id] = m
	}
	return out
}

// hotRoots returns the IDs of functions annotated //tipsy:hotpath,
// sorted (Graph.Order is).
func hotRoots(prog *Program) []string {
	var roots []string
	for _, id := range prog.Graph.Order {
		n := prog.Graph.Nodes[id]
		if n.Decl.Doc == nil {
			continue
		}
		for _, c := range n.Decl.Doc.List {
			if c.Text == HotpathDirective || strings.HasPrefix(c.Text, HotpathDirective+" ") {
				roots = append(roots, id)
				break
			}
		}
	}
	return roots
}

// hotClosure computes the set of functions reachable from the roots
// over the call graph, mapping each to the first root (in sorted
// order) that reaches it. Interface call sites contribute every
// in-module implementer, so dynamic dispatch on the hot path keeps
// all its targets hot.
func hotClosure(prog *Program, roots []string) map[string]string {
	via := map[string]string{}
	for _, root := range roots {
		if _, seen := via[root]; seen {
			continue // already inside an earlier root's closure
		}
		via[root] = root
		queue := []string{root}
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			for _, site := range prog.Graph.Nodes[id].Sites {
				for _, callee := range site.Callees {
					if _, seen := via[callee.ID]; !seen {
						via[callee.ID] = root
						queue = append(queue, callee.ID)
					}
				}
			}
		}
	}
	return via
}

// allocScanner walks one hot function body (function literals
// included) tracking whether each expression executes inside a loop.
type allocScanner struct {
	pkg     *Package
	escaped map[token.Pos]bool // escaping closures, by literal position
	sites   []AllocSite
	// compEnd suppresses double counting of nested composite literals:
	// &Msg{Hdr: Hdr{...}} is one allocation, not two.
	compEnd token.Pos
	lits    []litCtx // function literals pending their own walk
}

// litCtx queues a function literal body with the loop context of the
// point where the literal appears: a closure created inside a loop
// allocates per iteration, and so does everything in its body.
type litCtx struct {
	lit    *ast.FuncLit
	inLoop bool
}

// scanAllocs enumerates the allocation sites of one declared
// function, sorted by position.
func scanAllocs(pkg *Package, fd *ast.FuncDecl) []AllocSite {
	if fd.Body == nil {
		return nil
	}
	sc := &allocScanner{pkg: pkg, escaped: escapingClosures(pkg, fd)}
	sc.walkStmt(fd.Body, false)
	for len(sc.lits) > 0 {
		w := sc.lits[0]
		sc.lits = sc.lits[1:]
		sc.walkStmt(w.lit.Body, w.inLoop)
	}
	sort.Slice(sc.sites, func(i, j int) bool { return sc.sites[i].Pos < sc.sites[j].Pos })
	return sc.sites
}

func (sc *allocScanner) add(pos token.Pos, category, desc string) {
	sc.sites = append(sc.sites, AllocSite{Pos: pos, Category: category, Desc: desc})
}

// walkStmt dispatches on statement structure, threading the loop
// context: for/range bodies (and for conditions/posts, evaluated per
// iteration) are in-loop; a range operand or for-init is evaluated
// once and keeps the enclosing context.
func (sc *allocScanner) walkStmt(s ast.Stmt, inLoop bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, t := range s.List {
			sc.walkStmt(t, inLoop)
		}
	case *ast.IfStmt:
		sc.walkStmt(s.Init, inLoop)
		sc.scanExpr(s.Cond, inLoop)
		sc.walkStmt(s.Body, inLoop)
		sc.walkStmt(s.Else, inLoop)
	case *ast.ForStmt:
		sc.walkStmt(s.Init, inLoop)
		sc.scanExpr(s.Cond, true)
		sc.walkStmt(s.Post, true)
		sc.walkStmt(s.Body, true)
	case *ast.RangeStmt:
		sc.scanExpr(s.X, inLoop)
		sc.walkStmt(s.Body, true)
	case *ast.SwitchStmt:
		sc.walkStmt(s.Init, inLoop)
		sc.scanExpr(s.Tag, inLoop)
		sc.walkStmt(s.Body, inLoop)
	case *ast.TypeSwitchStmt:
		sc.walkStmt(s.Init, inLoop)
		sc.walkStmt(s.Assign, inLoop)
		sc.walkStmt(s.Body, inLoop)
	case *ast.SelectStmt:
		sc.walkStmt(s.Body, inLoop)
	case *ast.CaseClause:
		for _, e := range s.List {
			sc.scanExpr(e, inLoop)
		}
		for _, t := range s.Body {
			sc.walkStmt(t, inLoop)
		}
	case *ast.CommClause:
		sc.walkStmt(s.Comm, inLoop)
		for _, t := range s.Body {
			sc.walkStmt(t, inLoop)
		}
	case *ast.LabeledStmt:
		sc.walkStmt(s.Stmt, inLoop)
	case *ast.DeferStmt:
		if inLoop {
			sc.add(s.Pos(), CatDeferLoop, "defer inside a loop pushes a deferred frame per iteration")
		}
		sc.scanExpr(s.Call, inLoop)
	case *ast.GoStmt:
		sc.scanExpr(s.Call, inLoop)
	case *ast.AssignStmt:
		if inLoop {
			for _, lhs := range s.Lhs {
				sc.checkMapStore(ast.Unparen(lhs))
			}
		}
		for _, e := range s.Lhs {
			sc.scanExpr(e, inLoop)
		}
		for _, e := range s.Rhs {
			sc.scanExpr(e, inLoop)
		}
	case *ast.IncDecStmt:
		if inLoop {
			sc.checkMapStore(ast.Unparen(s.X))
		}
		sc.scanExpr(s.X, inLoop)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					sc.scanExpr(v, inLoop)
				}
			}
		}
	case *ast.ExprStmt:
		sc.scanExpr(s.X, inLoop)
	case *ast.SendStmt:
		sc.scanExpr(s.Chan, inLoop)
		sc.scanExpr(s.Value, inLoop)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			sc.scanExpr(e, inLoop)
		}
	}
}

// checkMapStore flags m[k] = v / m[k] += v / m[k]++ when m is a map.
func (sc *allocScanner) checkMapStore(lhs ast.Expr) {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return
	}
	t := sc.pkg.Info.TypeOf(ix.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); isMap {
		sc.add(ix.Pos(), CatMapInsertLoop, "map store inside a loop grows buckets and copies the key per iteration")
	}
}

// scanExpr inspects one expression tree for allocation sites.
// Function literals are queued, not descended: their bodies get their
// own walk with the literal's loop context.
func (sc *allocScanner) scanExpr(e ast.Expr, inLoop bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sc.lits = append(sc.lits, litCtx{n, inLoop})
			if sc.escaped[n.Pos()] {
				sc.add(n.Pos(), CatClosure, "closure escapes its creating function; the closure and its captures are heap-allocated")
			}
			return false
		case *ast.CompositeLit:
			if inLoop && n.Pos() >= sc.compEnd {
				sc.compEnd = n.End()
				sc.add(n.Pos(), CatAllocLoop, "composite literal inside a loop")
			}
		case *ast.CallExpr:
			sc.scanCall(n, inLoop)
		}
		return true
	})
}

// scanCall classifies one call: conversion, builtin, clock read, or a
// real call whose arguments may box into interface parameters.
func (sc *allocScanner) scanCall(call *ast.CallExpr, inLoop bool) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := sc.pkg.Info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			sc.checkStringConv(call, tv.Type)
		}
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := sc.pkg.Info.Uses[id].(*types.Builtin); ok {
			if !inLoop {
				return
			}
			switch b.Name() {
			case "append":
				sc.add(call.Pos(), CatAppendLoop, "append inside a loop can grow the backing array per iteration")
			case "make":
				sc.add(call.Pos(), CatAllocLoop, "make inside a loop")
			case "new":
				sc.add(call.Pos(), CatAllocLoop, "new inside a loop")
			}
			return
		}
	}
	if fn := calleeFunc(sc.pkg, call); fn != nil && fn.Pkg() != nil {
		if inLoop && fn.Pkg().Path() == "time" && (fn.Name() == "Now" || fn.Name() == "Since") {
			sc.add(call.Pos(), CatTimeLoop,
				"time."+fn.Name()+" inside a loop; hoist the clock read out of the per-item path")
		}
	}
	if sig, ok := sc.pkg.Info.TypeOf(fun).(*types.Signature); ok {
		sc.checkBoxing(call, sig)
	}
}

// checkBoxing flags arguments whose concrete, non-pointer-shaped
// static type meets an interface-typed parameter: the value is copied
// to the heap to build the interface word pair. Pointer-shaped values
// (pointers, maps, channels, funcs) and values already held in
// interfaces convert for free.
func (sc *allocScanner) checkBoxing(call *ast.CallExpr, sig *types.Signature) {
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				return // xs... spreads an existing slice; nothing boxes
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			return
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := sc.pkg.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		sc.add(arg.Pos(), CatBoxing, "argument boxes into an interface parameter, copying the value to the heap")
	}
}

// pointerShaped reports whether values of t fit in one pointer word
// and so convert to an interface without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// checkStringConv flags string([]byte) and []byte(string): both copy.
func (sc *allocScanner) checkStringConv(call *ast.CallExpr, target types.Type) {
	src := sc.pkg.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isStringType(target) && isByteSlice(src):
		sc.add(call.Pos(), CatStringConv, "string([]byte) conversion copies the bytes")
	case isByteSlice(target) && isStringType(src):
		sc.add(call.Pos(), CatStringConv, "[]byte(string) conversion copies the bytes")
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// checkHotpath is the rule entry point registered by Rules: it runs
// the analysis and reports every site of a (function, category) pair
// whose observed count exceeds the committed budget. The budget path
// comes from RulesWithBudget; "" resolves to the module root's
// .tipsy-allocbudget.json.
func checkHotpath(prog *Program, report ReportFunc, budgetPath string) {
	rep := AnalyzeHotpaths(prog)
	if budgetPath == "" {
		budgetPath = defaultBudgetPath(prog)
	}
	budget, err := LoadBudget(budgetPath)
	if err != nil {
		// An unreadable budget ratchets from zero; the CLI separately
		// surfaces the load error with exit 2.
		budget = NewBudget()
	}
	for _, id := range rep.Order {
		hf := rep.Funcs[id]
		byCat := map[string][]AllocSite{}
		for _, s := range hf.Sites {
			byCat[s.Category] = append(byCat[s.Category], s)
		}
		cats := make([]string, 0, len(byCat))
		for c := range byCat {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		why := "hotpath root"
		if hf.Via != hf.ID {
			why = "hot via " + trimModule(hf.Via)
		}
		for _, cat := range cats {
			sites := byCat[cat]
			allowed := budget.Get(id, cat)
			if len(sites) <= allowed {
				continue
			}
			for _, s := range sites {
				report(s.Pos, "hot-path allocation in %s (%s): %s [%s: %d site(s), budget %d]; remove the allocation or re-ratchet with -update-budget",
					trimModule(id), why, s.Desc, cat, len(sites), allowed)
			}
		}
	}
}
