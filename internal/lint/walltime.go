package lint

import (
	"go/ast"
	"strings"
)

// checkWalltime enforces the injected-clock contract in instrumented
// packages: span timestamps, per-rung latencies, and quality windows
// must come from the owner's injectable clock so tests can swap in a
// fake and golden byte-identical traces. Direct time.Now / time.Since
// calls are flagged unless the enclosing function is a declared clock
// source — //tipsy:clocksource in its doc comment — which is the one
// sanctioned place per package where the wall clock enters.
func checkWalltime(p *Package, report ReportFunc) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isClockSource(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pkg, name := calleePkgFunc(p, call); pkg == "time" && (name == "Now" || name == "Since") {
					report(call.Pos(), "time.%s in clock-injected code; read the owner's injected clock (or declare the function //tipsy:clocksource)", name)
				}
				return true
			})
		}
	}
}

// isClockSource reports whether the function's doc comment carries the
// //tipsy:clocksource directive. The directive covers the whole body,
// including closures built inside it (NewTrace's default clock).
func isClockSource(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//tipsy:clocksource" {
			return true
		}
	}
	return false
}
