package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkMetrics enforces the observability migration in instrumented
// packages: event counters must live on the obsv registry, not as
// bare integer struct fields that /metrics can never see. A field is
// flagged when it is integer-typed and its name reads as an event
// counter — a mixedCaps name ending in Count/Total, or one of the
// counter words the telemetry substrate actually uses.
//
// Snapshot types are the sanctioned exception: structs whose names
// end in Stats, Snapshot, or Counters are the read-side copies
// returned to callers (CollectorStats, StationStats, ...) and may
// keep plain integers.
func checkMetrics(p *Package, report ReportFunc) {
	counterWords := map[string]bool{
		"dropped": true, "lost": true, "quarantined": true,
		"reordered": true, "resyncs": true, "monitored": true,
		"replayed": true, "evicted": true, "buffered": true,
		"peerups": true, "peerdowns": true, "hits": true, "misses": true,
	}
	isCounterName := func(name string) bool {
		lower := strings.ToLower(name)
		for _, suffix := range []string{"count", "counts", "total", "totals"} {
			// The suffix must qualify a longer name: bare "count" is
			// sized state (a gap's width), not an event counter.
			if strings.HasSuffix(lower, suffix) && len(lower) > len(suffix) {
				return true
			}
		}
		return counterWords[lower]
	}
	exemptStruct := func(name string) bool {
		for _, suffix := range []string{"Stats", "Snapshot", "Counters"} {
			if strings.HasSuffix(name, suffix) {
				return true
			}
		}
		return false
	}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || exemptStruct(ts.Name.Name) {
				return true
			}
			for _, field := range st.Fields.List {
				tv := p.Info.TypeOf(field.Type)
				if tv == nil {
					continue
				}
				basic, ok := tv.Underlying().(*types.Basic)
				if !ok || basic.Info()&types.IsInteger == 0 {
					continue
				}
				for _, name := range field.Names {
					if isCounterName(name.Name) {
						report(name.Pos(),
							"bare counter field %s.%s; back it with an obsv.Counter on the package registry (snapshot structs named *Stats/*Snapshot/*Counters may keep plain integers)",
							ts.Name.Name, name.Name)
					}
				}
			}
			return true
		})
	}
}
