package traffic

import (
	"math"
	"testing"

	"tipsy/internal/geo"
	"tipsy/internal/topology"
	"tipsy/internal/wan"
)

func testWorkload(t *testing.T, seed int64) (*Workload, *topology.Graph, *geo.DB) {
	t.Helper()
	metros := geo.World()
	g := topology.Generate(topology.TestGenConfig(seed), metros)
	w := Generate(TestConfig(seed), g, metros)
	return w, g, metros
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, _ := testWorkload(t, 5)
	b, _, _ := testWorkload(t, 5)
	if len(a.Flows) != len(b.Flows) {
		t.Fatal("flow counts differ")
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("flow %d differs between identical seeds", i)
		}
	}
}

func TestFlowsWellFormed(t *testing.T) {
	w, g, _ := testWorkload(t, 2)
	cfg := TestConfig(2)
	if len(w.Flows) != cfg.NFlows {
		t.Fatalf("generated %d flows, want %d", len(w.Flows), cfg.NFlows)
	}
	regions := map[wan.Region]bool{}
	for _, r := range w.Regions {
		regions[r] = true
	}
	for _, f := range w.Flows {
		src, ok := g.AS(f.SrcAS)
		if !ok {
			t.Fatalf("flow %d: unknown source %v", f.ID, f.SrcAS)
		}
		if src.Kind == topology.KindCloud {
			t.Fatalf("flow %d originates at the cloud", f.ID)
		}
		if src.Island(f.SrcMetro) < 0 {
			t.Errorf("flow %d: source metro %d not in AS presence", f.ID, f.SrcMetro)
		}
		if f.SrcPrefix&0xff != 0 {
			t.Errorf("flow %d: source prefix %x not a /24 base", f.ID, f.SrcPrefix)
		}
		if f.SrcAddr&^uint32(0xff) != f.SrcPrefix {
			t.Errorf("flow %d: source address outside its /24", f.ID)
		}
		if !regions[f.DstRegion] {
			t.Errorf("flow %d: unknown destination region %d", f.ID, f.DstRegion)
		}
		if f.DstType == 0 || int(f.DstType) > cfg.NServiceTypes {
			t.Errorf("flow %d: service type %d out of range", f.ID, f.DstType)
		}
		if f.DstAddr>>24 != CloudAddrBase {
			t.Errorf("flow %d: destination %x outside the cloud /8", f.ID, f.DstAddr)
		}
		if p := w.DstPrefix(&f); p.Len == 0 {
			t.Errorf("flow %d: destination not covered by any anycast prefix", f.ID)
		}
		if f.BaseBps < cfg.MinFlowBps || f.BaseBps > cfg.MaxFlowBps {
			t.Errorf("flow %d: volume %.0f outside [%.0f, %.0f]", f.ID, f.BaseBps, cfg.MinFlowBps, cfg.MaxFlowBps)
		}
	}
}

func TestVolumeHeavyTailed(t *testing.T) {
	w, _, _ := testWorkload(t, 3)
	var total float64
	vols := make([]float64, len(w.Flows))
	for i, f := range w.Flows {
		vols[i] = f.BaseBps
		total += f.BaseBps
	}
	// Top 10% of flows should carry the majority of volume.
	sortDesc(vols)
	topShare := 0.0
	for i := 0; i < len(vols)/10; i++ {
		topShare += vols[i]
	}
	if topShare/total < 0.5 {
		t.Errorf("top 10%% of flows carry only %.0f%% of volume; tail not heavy", 100*topShare/total)
	}
}

func sortDesc(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] > v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestVolumeAtDiurnal(t *testing.T) {
	w, _, metros := testWorkload(t, 4)
	var f *FlowSpec
	for i := range w.Flows {
		if w.Flows[i].LongLived {
			f = &w.Flows[i]
			break
		}
	}
	if f == nil {
		t.Fatal("no long-lived flow in workload")
	}
	// Averaged over jitter, some hours must be clearly busier than
	// others within one day.
	minV, maxV := math.Inf(1), 0.0
	for h := wan.Hour(0); h < 24; h++ {
		var avg float64
		for d := 0; d < 5; d++ { // weekdays only
			b, _ := VolumeAt(f, metros, h+wan.Hour(24*d))
			avg += b
		}
		avg /= 5
		if avg < minV {
			minV = avg
		}
		if avg > maxV {
			maxV = avg
		}
	}
	if maxV/minV < 1.3 {
		t.Errorf("diurnal swing too flat: max/min = %.2f", maxV/minV)
	}
}

func TestVolumeAtWeekend(t *testing.T) {
	w, _, metros := testWorkload(t, 4)
	var f *FlowSpec
	for i := range w.Flows {
		if w.Flows[i].LongLived {
			f = &w.Flows[i]
			break
		}
	}
	var weekday, weekend float64
	for h := 0; h < 24; h++ {
		b1, _ := VolumeAt(f, metros, wan.Hour(h))      // day 0: Monday
		b2, _ := VolumeAt(f, metros, wan.Hour(h+24*5)) // day 5: Saturday
		weekday += b1
		weekend += b2
	}
	if weekend >= weekday {
		t.Errorf("weekend volume (%.0f) should be below weekday (%.0f)", weekend, weekday)
	}
}

func TestVolumeDeterministic(t *testing.T) {
	w, _, metros := testWorkload(t, 4)
	f := &w.Flows[0]
	b1, p1 := VolumeAt(f, metros, 100)
	b2, p2 := VolumeAt(f, metros, 100)
	if b1 != b2 || p1 != p2 {
		t.Error("VolumeAt not deterministic")
	}
}

func TestShortLivedDutyCycle(t *testing.T) {
	w, _, metros := testWorkload(t, 6)
	var f *FlowSpec
	for i := range w.Flows {
		if !w.Flows[i].LongLived {
			f = &w.Flows[i]
			break
		}
	}
	if f == nil {
		t.Skip("no short-lived flow")
	}
	active := 0
	const hours = 500
	for h := wan.Hour(0); h < hours; h++ {
		if b, _ := VolumeAt(f, metros, h); b > 0 {
			active++
		}
	}
	if active == 0 || active == hours {
		t.Errorf("short-lived flow active %d/%d hours; duty cycle broken", active, hours)
	}
}

func TestDirectPeersCarryMostVolume(t *testing.T) {
	// The flat-Internet property (Figure 2): the majority of bytes
	// must originate in ASes that peer directly with the cloud.
	w, g, _ := testWorkload(t, 8)
	var direct, total float64
	for _, f := range w.Flows {
		total += f.BaseBps
		if g.HasEdge(f.SrcAS, g.Cloud()) {
			direct += f.BaseBps
		}
	}
	if direct/total < 0.40 {
		t.Errorf("direct peers carry %.0f%% of volume; want the flat-Internet majority", 100*direct/total)
	}
}

func TestAnycastPrefixesDisjoint(t *testing.T) {
	w, _, _ := testWorkload(t, 9)
	for i, p := range w.Anycast {
		for j, q := range w.Anycast {
			if i != j && p.ContainsPrefix(q) {
				t.Fatalf("anycast prefixes %s and %s overlap", p, q)
			}
		}
	}
}
