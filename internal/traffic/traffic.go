// Package traffic generates the ingress traffic workload: flow
// aggregates from sources across the synthetic Internet toward
// destinations inside the WAN, with heavy-tailed volumes, diurnal and
// weekly modulation, and the enterprise long-lived-flow character the
// paper motivates (IPSec/VPN tunnels, video conferencing, storage and
// AI/ML pipelines that cannot be absorbed by CDN caches).
package traffic

import (
	"math"
	"math/rand"

	"tipsy/internal/bgp"
	"tipsy/internal/geo"
	"tipsy/internal/topology"
	"tipsy/internal/wan"
)

// CloudAddrBase is the first octet of the WAN's address space; every
// destination address lies inside CloudAddrBase/8.
const CloudAddrBase = 40

// SourceAddrBase is the start of the address pool /24 source prefixes
// are minted from.
const SourceAddrBase = 0x0b000000

// Config parameterizes workload generation.
type Config struct {
	Seed int64
	// NFlows is the number of flow aggregates to generate.
	NFlows int
	// NAnycastPrefixes is how many anycast prefixes the WAN announces;
	// destinations hash into them.
	NAnycastPrefixes int
	// AnycastPrefixLen is the announced prefix length (the paper's
	// incidents involve /10 and /24 announcements; the default
	// workload uses /16s).
	AnycastPrefixLen uint8
	// NServiceTypes is the cardinality of the destination-type feature.
	NServiceTypes int
	// ParetoAlpha shapes the flow volume distribution (smaller =
	// heavier tail).
	ParetoAlpha float64
	// MinFlowBps is the volume floor.
	MinFlowBps float64
	// MaxFlowBps caps single-aggregate volume.
	MaxFlowBps float64
	// LongLivedFraction is the share of aggregates that are always-on
	// enterprise flows; the rest duty-cycle on and off.
	LongLivedFraction float64
}

// DefaultConfig returns the workload used by the experiment harness.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:              seed,
		NFlows:            30000,
		NAnycastPrefixes:  48,
		AnycastPrefixLen:  16,
		NServiceTypes:     24,
		ParetoAlpha:       1.15,
		MinFlowBps:        8e7,  // 80 Mbps — aggregates, not single TCP flows
		MaxFlowBps:        4e10, // 40 Gbps per aggregate
		LongLivedFraction: 0.55,
	}
}

// TestConfig returns a small workload for unit tests.
func TestConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.NFlows = 1200
	cfg.NAnycastPrefixes = 8
	cfg.NServiceTypes = 6
	// The test topology has far fewer, smaller links; keep aggregate
	// volumes proportionate.
	cfg.MinFlowBps = 2e7
	cfg.MaxFlowBps = 5e9
	return cfg
}

// FlowSpec is one flow aggregate: the unit TIPSY predicts over, at
// the granularity of source /24 prefix and destination prefix.
type FlowSpec struct {
	ID        int
	SrcAS     bgp.ASN
	SrcPrefix uint32 // /24 network base address
	SrcAddr   uint32 // representative host inside the /24
	SrcMetro  geo.MetroID
	DstRegion wan.Region
	DstType   wan.ServiceType
	DstAddr   uint32
	// BaseBps is the aggregate's base volume in bits per second.
	BaseBps float64
	// AvgPacketBytes sets the byte/packet ratio for sampling.
	AvgPacketBytes float64
	// LongLived marks always-on enterprise aggregates.
	LongLived bool
}

// Workload is the generated traffic description plus the WAN's
// announced anycast prefixes.
type Workload struct {
	Flows    []FlowSpec
	Anycast  []bgp.Prefix
	Regions  []wan.Region
	NumTypes int
}

// DstPrefix returns the announced anycast prefix containing the
// flow's destination.
func (w *Workload) DstPrefix(f *FlowSpec) bgp.Prefix {
	for _, p := range w.Anycast {
		if p.Contains(f.DstAddr) {
			return p
		}
	}
	return bgp.Prefix{}
}

// Generate builds a workload over the given topology. Source ASes are
// drawn weighted by kind and size so that — matching Figure 2 of the
// paper — the bulk of bytes comes from ASes that peer directly with
// the cloud (the flat-Internet effect), with a long tail from deeper
// in the hierarchy.
func Generate(cfg Config, g *topology.Graph, metros *geo.DB) *Workload {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{NumTypes: cfg.NServiceTypes}

	// Announced anycast prefixes: consecutive blocks of the cloud /8.
	step := uint32(1) << (32 - cfg.AnycastPrefixLen)
	for i := 0; i < cfg.NAnycastPrefixes; i++ {
		w.Anycast = append(w.Anycast,
			bgp.MakePrefix(uint32(CloudAddrBase)<<24+uint32(i)*step, cfg.AnycastPrefixLen))
	}

	// WAN regions: the metros where the cloud is present.
	cloudAS, _ := g.AS(g.Cloud())
	w.Regions = append([]wan.Region(nil), cloudAS.Metros...)

	// Build the source-AS sampling distribution.
	type srcAS struct {
		as     *topology.AS
		weight float64
	}
	var sources []srcAS
	var totalW float64
	for _, asn := range g.ASNs() {
		a, _ := g.AS(asn)
		if a.Kind == topology.KindCloud {
			continue
		}
		wgt := a.Weight * kindVolumeFactor(a.Kind)
		// Direct cloud peers originate disproportionate ingress
		// volume: big eyeballs and enterprises peer directly.
		if g.HasEdge(asn, g.Cloud()) {
			wgt *= 3.0
		}
		sources = append(sources, srcAS{a, wgt})
		totalW += wgt
	}
	cum := make([]float64, len(sources))
	acc := 0.0
	for i, s := range sources {
		acc += s.weight
		cum[i] = acc
	}
	pickSource := func() *topology.AS {
		x := rng.Float64() * totalW
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return sources[lo].as
	}

	// Per-AS /24 pools, allocated lazily and deterministically. Each
	// /24 is bound to one metro at mint time, preserving the paper's
	// Table 1 invariant that there is exactly one source location per
	// /24 prefix.
	type prefix24 struct {
		base  uint32
		metro geo.MetroID
	}
	nextChunk := uint32(0)
	pools := make(map[bgp.ASN][]prefix24)
	pool := func(a *topology.AS) []prefix24 {
		if p, ok := pools[a.ASN]; ok {
			return p
		}
		n := 2 + int(a.Weight*3) + len(a.Metros)
		p := make([]prefix24, n)
		for i := range p {
			p[i] = prefix24{
				base:  SourceAddrBase + nextChunk*256,
				metro: a.Metros[rng.Intn(len(a.Metros))],
			}
			nextChunk++
		}
		pools[a.ASN] = p
		return p
	}

	// Per-AS destination affinity: an organization's many sites and
	// prefixes overwhelmingly talk to the same few cloud services in
	// the same few regions. This is what gives the coarser feature
	// sets real aggregates to merge (the paper's A tuples are ~45x
	// fewer than AP tuples, Table 1).
	type dst struct {
		region wan.Region
		svc    wan.ServiceType
	}
	menus := make(map[bgp.ASN][]dst)
	menu := func(a *topology.AS) []dst {
		if m, ok := menus[a.ASN]; ok {
			return m
		}
		n := 1 + rng.Intn(3)
		m := make([]dst, n)
		for i := range m {
			m[i] = dst{
				region: w.Regions[rng.Intn(len(w.Regions))],
				svc:    wan.ServiceType(1 + rng.Intn(cfg.NServiceTypes)),
			}
		}
		menus[a.ASN] = m
		return m
	}

	w.Flows = make([]FlowSpec, 0, cfg.NFlows)
	for i := 0; i < cfg.NFlows; i++ {
		src := pickSource()
		pe := pool(src)[rng.Intn(len(pool(src)))]
		prefix, metro := pe.base, pe.metro
		var region wan.Region
		var svc wan.ServiceType
		if rng.Float64() < 0.9 {
			d := menu(src)[rng.Intn(len(menu(src)))]
			region, svc = d.region, d.svc
		} else {
			// A minority of traffic goes to arbitrary services.
			region = w.Regions[rng.Intn(len(w.Regions))]
			svc = wan.ServiceType(1 + rng.Intn(cfg.NServiceTypes))
		}

		// Destination address: the (region, type) pair hashes to a
		// small set of anycast prefixes, so withdrawing one prefix
		// shifts a coherent service's traffic. The host part is the
		// flow ID, keeping destination addresses collision-free so
		// the metadata join is unambiguous (requires NFlows < 2^(32 -
		// AnycastPrefixLen)).
		pi := int(mix(uint64(region)<<32|uint64(svc)*2654435761+uint64(i%3))) % len(w.Anycast)
		if pi < 0 {
			pi = -pi
		}
		dstBase := w.Anycast[pi]
		dst := dstBase.Addr | uint32(i)&(step-1)

		vol := paretoBps(rng, cfg)
		w.Flows = append(w.Flows, FlowSpec{
			ID:             i,
			SrcAS:          src.ASN,
			SrcPrefix:      prefix,
			SrcAddr:        prefix + uint32(1+rng.Intn(250)),
			SrcMetro:       metro,
			DstRegion:      region,
			DstType:        svc,
			DstAddr:        uint32(dst),
			BaseBps:        vol,
			AvgPacketBytes: 700 + 700*rng.Float64(),
			LongLived:      rng.Float64() < cfg.LongLivedFraction,
		})
	}
	return w
}

func kindVolumeFactor(k topology.Kind) float64 {
	switch k {
	case topology.KindTier1:
		return 0.6 // transit backbones originate little themselves
	case topology.KindTier2:
		return 0.8
	case topology.KindAccess:
		return 2.0 // eyeball uploads, consumer-hosted enterprise
	case topology.KindCDN:
		return 2.5 // log/origin-fill style ingress
	case topology.KindEnterprise:
		return 1.6 // VPN tunnels, storage, AI/ML pipelines
	}
	return 1
}

func paretoBps(rng *rand.Rand, cfg Config) float64 {
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	v := cfg.MinFlowBps * math.Pow(u, -1/cfg.ParetoAlpha)
	if v > cfg.MaxFlowBps {
		v = cfg.MaxFlowBps
	}
	return v
}

// mix is SplitMix64, used for deterministic per-flow hashing.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash exposes the deterministic mixer for other packages that need
// flow-keyed pseudo-randomness (e.g. the simulator's tie-breaking).
func Hash(x uint64) uint64 { return mix(x) }

// tzOffsetHours approximates a metro's UTC offset from its longitude.
func tzOffsetHours(lon float64) int { return int(math.Round(lon / 15)) }

// diurnalCurve tabulates the diurnal modulation for the 24 possible
// local hours; VolumeAt runs once per (flow, hour) and the sine
// dominated its cost. Entries are the exact values the inline
// expression produced.
var diurnalCurve = func() (t [24]float64) {
	for lh := 0; lh < 24; lh++ {
		t[lh] = 0.65 + 0.35*math.Sin(2*math.Pi*float64(lh-8)/24)
	}
	return
}()

// VolumeAt returns the aggregate's volume in bytes for the given
// simulated hour: base rate modulated by the source metro's local
// diurnal cycle, a weekly pattern, deterministic jitter, and — for
// short-lived aggregates — an on/off duty cycle.
func VolumeAt(f *FlowSpec, metros *geo.DB, h wan.Hour) (bytes float64, packets float64) {
	m, ok := metros.Metro(f.SrcMetro)
	if !ok {
		return 0, 0
	}
	localHour := (h.HourOfDay() + tzOffsetHours(m.Lon) + 48) % 24
	// Diurnal: peak at 14:00 local, trough at 02:00.
	diurnal := diurnalCurve[localHour]
	// Weekly: enterprise traffic dips on weekends.
	weekly := 1.0
	if dow := h.DayOfWeek(); dow >= 5 {
		weekly = 0.72
	}
	// Deterministic jitter in [0.85, 1.15].
	j := mix(uint64(f.ID)*1000003 + uint64(h))
	jitter := 0.85 + 0.30*float64(j%1000)/999

	if !f.LongLived {
		// Short-lived aggregates are active ~40% of hours.
		if mix(uint64(f.ID)*31+uint64(h)*7)%100 >= 40 {
			return 0, 0
		}
	}
	bps := f.BaseBps * diurnal * weekly * jitter
	bytes = bps * 3600 / 8
	packets = bytes / f.AvgPacketBytes
	if packets < 1 {
		packets = 1
	}
	return bytes, packets
}
