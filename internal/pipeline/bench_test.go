package pipeline

import (
	"testing"

	"tipsy/internal/geo"
	"tipsy/internal/ipfix"
	"tipsy/internal/wan"
)

// BenchmarkAggregatorRecord measures the per-flow-record ingest cost
// through the aggregation join — metadata lookup, Geo-IP, key build,
// map accumulate — with a steady-state accumulator (24 hot keys, no
// drain). The tipsylint hotpath tier budgets Record's allocation
// sites statically; this pins the dynamic cost per record.
//
// Baseline (2026-08-08, linux/amd64, go1.22 toolchain era):
//
//	BenchmarkAggregatorRecord   ~100 ns/op   0 B/op   0 allocs/op
//
// Record is already allocation-free in steady state (the aggKey is a
// value type and the accumulator map only grows on new keys); keep it
// that way — any alloc showing up here is a regression.
func BenchmarkAggregatorRecord(b *testing.B) {
	g := geo.NewGeoIP(geo.World(), 0, 1)
	g.Register(0x0b000100, 7)
	a := NewAggregator(g, staticMeta(3, 2))
	rec := ipfix.FlowRecord{SrcAddr: 0x0b000105, DstAddr: 40 << 24, Octets: 1000, SrcAS: 64496}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Record(wan.Hour(i%24), 9, &rec)
	}
}

// BenchmarkAggregatorRecordBatch measures batch ingest of a 64-record
// IPFIX-message-sized batch — the collector's hand-off unit. Compared
// with 64 Record calls, the shard locks are taken once per shard per
// batch and the join memo hits on the sorted runs, so per-record cost
// should land well under BenchmarkAggregatorRecord's.
func BenchmarkAggregatorRecordBatch(b *testing.B) {
	g := geo.NewGeoIP(geo.World(), 0, 1)
	for i := uint32(0); i < 16; i++ {
		g.Register(0x0b000000+i<<8, 7)
	}
	a := NewAggregator(g, staticMeta(3, 2))
	recs := make([]ipfix.FlowRecord, 64)
	for i := range recs {
		recs[i] = ipfix.FlowRecord{
			SrcAddr: 0x0b000000 + uint32(i%16)<<8 + 5,
			DstAddr: 40 << 24, Octets: 1000, SrcAS: 64496,
			Ingress: uint32(1 + i%9), StartSecs: uint32(i%24) * 3600,
		}
	}
	a.RecordBatch(recs) // warm the joins and counter maps
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.RecordBatch(recs)
	}
}
