package pipeline

import (
	"testing"

	"tipsy/internal/geo"
	"tipsy/internal/ipfix"
	"tipsy/internal/wan"
)

// BenchmarkAggregatorRecord measures the per-flow-record ingest cost
// through the aggregation join — metadata lookup, Geo-IP, key build,
// map accumulate — with a steady-state accumulator (24 hot keys, no
// drain). The tipsylint hotpath tier budgets Record's allocation
// sites statically; this pins the dynamic cost per record.
//
// Baseline (2026-08-08, linux/amd64, go1.22 toolchain era):
//
//	BenchmarkAggregatorRecord   ~100 ns/op   0 B/op   0 allocs/op
//
// Record is already allocation-free in steady state (the aggKey is a
// value type and the accumulator map only grows on new keys); keep it
// that way — any alloc showing up here is a regression.
func BenchmarkAggregatorRecord(b *testing.B) {
	g := geo.NewGeoIP(geo.World(), 0, 1)
	g.Register(0x0b000100, 7)
	a := NewAggregator(g, staticMeta(3, 2))
	rec := ipfix.FlowRecord{SrcAddr: 0x0b000105, DstAddr: 40 << 24, Octets: 1000, SrcAS: 64496}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Record(wan.Hour(i%24), 9, &rec)
	}
}
