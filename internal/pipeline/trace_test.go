package pipeline

import (
	"sync/atomic"
	"testing"

	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/ipfix"
	"tipsy/internal/obsv"
)

type truthCounter struct{ n int }

func (tc *truthCounter) ObserveTruth(features.Record) { tc.n++ }

func spansByName(recs []obsv.SpanRecord) map[string][]obsv.SpanRecord {
	out := make(map[string][]obsv.SpanRecord)
	for _, r := range recs {
		out[r.Name] = append(out[r.Name], r)
	}
	return out
}

func TestAggregatorSpansAttachToTrace(t *testing.T) {
	var tick atomic.Int64
	rec := obsv.NewRecorder(64)
	tr := obsv.NewTracer(rec, obsv.TracerOptions{Clock: func() int64 { return tick.Add(1) }})

	g := geo.NewGeoIP(geo.World(), 0, 1)
	a := NewAggregator(g, staticMeta(1, 1))
	tc := &truthCounter{}
	a.SetTruthSink(tc)

	root := tr.StartRoot("cycle")
	a.SetTrace(tr, root.Context())

	recs := []ipfix.FlowRecord{
		{SrcAddr: 0x0b000001, DstAddr: 40 << 24, Octets: 100, Ingress: 3, StartSecs: 3600},
		{SrcAddr: 0x0b000002, DstAddr: 40 << 24, Octets: 200, Ingress: 3, StartSecs: 3600},
	}
	a.RecordBatch(recs)
	out := a.Records()
	root.End()

	// Both flows share a /24, link, and hour, so they aggregate to one.
	if len(out) != 1 || tc.n != 1 {
		t.Fatalf("drained %d records, truth saw %d", len(out), tc.n)
	}
	byName := spansByName(rec.Snapshot())
	for _, name := range []string{"cycle", "aggregate_batch", "drain", "truth_join"} {
		got := byName[name]
		if len(got) != 1 {
			t.Fatalf("span %q: %d records, want 1 (have %v)", name, len(got), byName)
		}
		if got[0].Trace != root.Context().Trace {
			t.Errorf("span %q on trace %v, want the cycle root's %v",
				name, got[0].Trace, root.Context().Trace)
		}
	}
	// aggregate_batch counts raw input records; drain counts output.
	if sp := byName["aggregate_batch"][0]; sp.NAttrs != 1 || sp.Attrs[0].Int != 2 {
		t.Errorf("aggregate_batch attrs %+v", sp.Attrs[:sp.NAttrs])
	}
	if sp := byName["drain"][0]; sp.Attrs[0].Int != int64(len(out)) {
		t.Errorf("drain records attr %d, want %d", sp.Attrs[0].Int, len(out))
	}
	// truth_join is a child of drain, not of the root.
	if tj, dr := byName["truth_join"][0], byName["drain"][0]; tj.Parent != dr.ID {
		t.Errorf("truth_join parented by %d, want drain span %d", tj.Parent, dr.ID)
	}
}

func TestAggregatorUntracedEmitsNoSpans(t *testing.T) {
	rec := obsv.NewRecorder(64)
	tr := obsv.NewTracer(rec, obsv.TracerOptions{})

	g := geo.NewGeoIP(geo.World(), 0, 1)
	a := NewAggregator(g, staticMeta(1, 1))
	// No SetTrace at all, then SetTrace with a zero context: both must
	// stay silent — spans only attach to a live ingest cycle.
	a.RecordBatch([]ipfix.FlowRecord{{SrcAddr: 0x0b000001, DstAddr: 40 << 24, Octets: 1}})
	a.SetTrace(tr, obsv.SpanContext{})
	a.RecordBatch([]ipfix.FlowRecord{{SrcAddr: 0x0b000001, DstAddr: 40 << 24, Octets: 1}})
	a.Records()
	if n := rec.Len(); n != 0 {
		t.Fatalf("untraced aggregator recorded %d spans", n)
	}
}
