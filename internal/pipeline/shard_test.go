package pipeline

import (
	"reflect"
	"slices"
	"sync"
	"testing"

	"tipsy/internal/bgp"
	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/ipfix"
	"tipsy/internal/wan"
)

// raceBatchRecord is raceRecord with the hour and link folded into the
// wire fields RecordBatch reads them from, so the same workload can be
// fed through either entry point.
func raceBatchRecord(i int) ipfix.FlowRecord {
	h, l, rec := raceRecord(i)
	rec.StartSecs = uint32(h) * 3600
	rec.Ingress = uint32(l)
	return rec
}

// TestAggregatorShardedDrainMatchesSingleMap locks the sharded drain
// to the seed's single-map semantics: a straight-line reference
// aggregation — one map, no shards, no interning, no packed sort keys
// — must produce byte-identical output, and a registered TruthSink
// must observe exactly that output in that order.
func TestAggregatorShardedDrainMatchesSingleMap(t *testing.T) {
	const n = 5000
	agg := raceAggregator()
	var truth truthCapture
	agg.SetTruthSink(&truth)

	// Reference state: the geoip/meta construction mirrors
	// raceAggregator exactly.
	g := geo.NewGeoIP(geo.World(), 0, 1)
	for i := uint32(0); i < 16; i++ {
		g.Register(0x0b000000+i<<8, geo.MetroID(1+i%5))
	}
	meta := staticMeta(2, 1)
	type aggKey struct {
		h wan.Hour
		f features.FlowFeatures
		l wan.LinkID
	}
	ref := make(map[aggKey]float64)

	for i := 0; i < n; i++ {
		h, l, rec := raceRecord(i)
		agg.Record(h, l, &rec)

		region, svc, ok := meta(rec.DstAddr)
		if !ok {
			continue
		}
		prefix := bgp.Slash24(rec.SrcAddr)
		f := features.FlowFeatures{
			AS:     bgp.ASN(rec.SrcAS),
			Prefix: prefix,
			Loc:    g.Lookup(prefix),
			Region: region,
			Type:   svc,
		}
		// Per-key accumulation order equals stream order on both
		// sides (a key lives on exactly one shard), so the float sums
		// are bit-identical, not merely close.
		ref[aggKey{h, f, l}] += float64(rec.Octets)
	}

	want := make([]features.Record, 0, len(ref))
	for k, b := range ref {
		want = append(want, features.Record{Hour: k.h, Flow: k.f, Link: k.l, Bytes: b})
	}
	slices.SortFunc(want, cmpRecord)

	got := agg.Records()
	if len(got) == 0 {
		t.Fatal("workload produced no aggregates")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("sharded drain diverged from single-map reference: %d vs %d aggregates", len(want), len(got))
	}
	if !reflect.DeepEqual(truth.recs, got) {
		t.Fatalf("truth sink saw %d records, drain returned %d — order or content diverged", len(truth.recs), len(got))
	}
}

type truthCapture struct{ recs []features.Record }

func (tc *truthCapture) ObserveTruth(rec features.Record) { tc.recs = append(tc.recs, rec) }

// TestAggregatorBatchMatchesRecord feeds one stream through Record and
// through RecordBatch in message-sized chunks and requires identical
// drains — the equivalence RecordBatch's documentation promises.
func TestAggregatorBatchMatchesRecord(t *testing.T) {
	const n = 5000
	perRec := raceAggregator()
	batched := raceAggregator()

	recs := make([]ipfix.FlowRecord, n)
	for i := range recs {
		recs[i] = raceBatchRecord(i)
	}
	for i := range recs {
		r := recs[i]
		perRec.Record(wan.Hour(r.StartSecs/3600), wan.LinkID(r.Ingress), &r)
	}
	for off := 0; off < n; off += 64 {
		end := min(off+64, n)
		batched.RecordBatch(recs[off:end])
	}

	a, b := perRec.Records(), batched.Records()
	if len(a) == 0 {
		t.Fatal("workload produced no aggregates")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("batch ingest diverged from per-record ingest: %d vs %d aggregates", len(a), len(b))
	}
}

// TestAggregatorConcurrentMixedStress hammers Record, RecordBatch, and
// Records (the drain) concurrently. Under -race this proves the
// locking sound; in any mode it checks conservation — every ingested
// byte comes back out exactly once across the interleaved drains.
// Octet counts are small integers, so the per-key float sums are exact
// and the check is equality, not tolerance.
func TestAggregatorConcurrentMixedStress(t *testing.T) {
	const n, workers = 12000, 4
	agg := raceAggregator()

	var mu sync.Mutex
	drained := make(map[string]float64) // serialized key -> bytes
	keyOf := func(r features.Record) string {
		return string(rune(r.Hour)) + string(rune(r.Flow.AS)) + string(rune(r.Flow.Prefix)) +
			string(rune(r.Flow.Loc)) + string(rune(r.Flow.Region)) + string(rune(r.Flow.Type)) +
			string(rune(r.Link))
	}
	collect := func(recs []features.Record) {
		mu.Lock()
		for _, r := range recs {
			drained[keyOf(r)] += r.Bytes
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				for i := w; i < n; i += workers {
					h, l, r := raceRecord(i)
					agg.Record(h, l, &r)
				}
				return
			}
			batch := make([]ipfix.FlowRecord, 0, 64)
			for i := w; i < n; i += workers {
				batch = append(batch, raceBatchRecord(i))
				if len(batch) == 64 {
					agg.RecordBatch(batch)
					batch = batch[:0]
				}
			}
			agg.RecordBatch(batch)
		}(w)
	}
	// Concurrent drains race the writers; whatever they swap out must
	// still be accounted for.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for d := 0; d < 50; d++ {
			collect(agg.Records())
		}
	}()
	wg.Wait()
	collect(agg.Records())

	raw, dropped, pending := agg.Stats()
	if raw != n {
		t.Errorf("raw = %d, want %d", raw, n)
	}
	if pending != 0 {
		t.Errorf("pending = %d after final drain, want 0", pending)
	}

	// Serial reference over the identical workload.
	serial := raceAggregator()
	for i := 0; i < n; i++ {
		h, l, r := raceRecord(i)
		serial.Record(h, l, &r)
	}
	sraw, sdropped, _ := serial.Stats()
	if sraw != raw || sdropped != dropped {
		t.Errorf("stats diverge: serial (%d,%d) concurrent (%d,%d)", sraw, sdropped, raw, dropped)
	}
	want := make(map[string]float64)
	for _, r := range serial.Records() {
		want[keyOf(r)] += r.Bytes
	}
	if !reflect.DeepEqual(want, drained) {
		t.Fatalf("conservation violated: serial %d keys, concurrent drains %d keys", len(want), len(drained))
	}
}
