package pipeline

import (
	"reflect"
	"testing"

	"tipsy/internal/features"
	"tipsy/internal/geo"
	"tipsy/internal/ipfix"
	"tipsy/internal/netsim"
	"tipsy/internal/topology"
	"tipsy/internal/traffic"
	"tipsy/internal/wan"
)

func staticMeta(region wan.Region, svc wan.ServiceType) Metadata {
	return func(dst uint32) (wan.Region, wan.ServiceType, bool) {
		if dst>>24 != 40 {
			return 0, 0, false
		}
		return region, svc, true
	}
}

func TestAggregatorSumsWithinHour(t *testing.T) {
	g := geo.NewGeoIP(geo.World(), 0, 1)
	g.Register(0x0b000100, 7)
	a := NewAggregator(g, staticMeta(3, 2))
	rec := ipfix.FlowRecord{SrcAddr: 0x0b000105, DstAddr: 40 << 24, Octets: 1000, SrcAS: 64496}
	a.Record(5, 9, &rec)
	a.Record(5, 9, &rec)
	rec2 := rec
	rec2.Octets = 500
	a.Record(6, 9, &rec2) // different hour: separate aggregate

	out := a.Records()
	if len(out) != 2 {
		t.Fatalf("want 2 aggregates, got %d: %+v", len(out), out)
	}
	first := out[0]
	if first.Hour != 5 || first.Bytes != 2000 || first.Link != 9 {
		t.Errorf("hour-5 aggregate wrong: %+v", first)
	}
	f := first.Flow
	if f.AS != 64496 || f.Prefix != 0x0b000100 || f.Loc != 7 || f.Region != 3 || f.Type != 2 {
		t.Errorf("joined features wrong: %+v", f)
	}
}

func TestAggregatorDropsUnknownDestinations(t *testing.T) {
	g := geo.NewGeoIP(geo.World(), 0, 1)
	a := NewAggregator(g, staticMeta(1, 1))
	rec := ipfix.FlowRecord{SrcAddr: 0x0b000001, DstAddr: 10 << 24, Octets: 100}
	a.Record(0, 1, &rec)
	raw, dropped, pending := a.Stats()
	if raw != 1 || dropped != 1 || pending != 0 {
		t.Errorf("stats = %d %d %d", raw, dropped, pending)
	}
	if out := a.Records(); len(out) != 0 {
		t.Errorf("dropped record produced aggregates: %+v", out)
	}
}

func TestAggregatorDrainResets(t *testing.T) {
	g := geo.NewGeoIP(geo.World(), 0, 1)
	a := NewAggregator(g, staticMeta(1, 1))
	rec := ipfix.FlowRecord{SrcAddr: 0x0b000001, DstAddr: 40 << 24, Octets: 100}
	a.Record(0, 1, &rec)
	if out := a.Records(); len(out) != 1 {
		t.Fatalf("first drain: %d", len(out))
	}
	if out := a.Records(); len(out) != 0 {
		t.Fatal("drain should reset the accumulator")
	}
}

func TestAggregationIsVolumePreserving(t *testing.T) {
	// §4.2: aggregation merely sums bytes — nothing the models need
	// is lost, only record count shrinks.
	metros := geo.World()
	g := topology.Generate(topology.TestGenConfig(20), metros)
	w := traffic.Generate(traffic.TestConfig(20), g, metros)
	cfg := netsim.DefaultConfig(20)
	cfg.SamplingInterval = 1 // no sampling: exact volume accounting
	s := netsim.New(cfg, g, metros, w)

	agg := NewAggregator(s.GeoIP(), s.DstMetadata)
	var rawBytes float64
	raw := 0
	s.Run(netsim.RunOptions{From: 0, To: 4, Sink: netsim.RecordSinkFunc(
		func(h wan.Hour, link wan.LinkID, rec *ipfix.FlowRecord) {
			raw++
			rawBytes += float64(rec.Octets)
			agg.Record(h, link, rec)
		})})
	recs := agg.Records()
	if len(recs) == 0 {
		t.Fatal("no aggregates")
	}
	if len(recs) > raw {
		t.Errorf("aggregation grew the data: %d -> %d", raw, len(recs))
	}
	var aggBytes float64
	for _, r := range recs {
		aggBytes += r.Bytes
	}
	if diff := (aggBytes - rawBytes) / rawBytes; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("aggregation changed total volume: %.0f vs %.0f", aggBytes, rawBytes)
	}
}

func TestAggregatorDeterministicOrder(t *testing.T) {
	build := func() []features.Record {
		g := geo.NewGeoIP(geo.World(), 0, 1)
		a := NewAggregator(g, staticMeta(1, 1))
		for i := 0; i < 100; i++ {
			rec := ipfix.FlowRecord{
				SrcAddr: 0x0b000000 + uint32(i%7)*256,
				DstAddr: 40<<24 + uint32(i%3),
				Octets:  uint64(i + 1),
				SrcAS:   uint32(100 + i%5),
			}
			a.Record(wan.Hour(i%4), wan.LinkID(1+i%6), &rec)
		}
		return a.Records()
	}
	if !reflect.DeepEqual(build(), build()) {
		t.Error("aggregate order not deterministic")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	recs := []features.Record{
		{Hour: 1, Flow: features.FlowFeatures{AS: 64496, Prefix: 0x0b000100, Loc: 3, Region: 9, Type: 2}, Link: 4, Bytes: 100},
		{Hour: 2, Flow: features.FlowFeatures{AS: 174, Prefix: 0x0b000200, Loc: 5, Region: 9, Type: 1}, Link: 7, Bytes: 50},
		{Hour: 2, Flow: features.FlowFeatures{AS: 64496, Prefix: 0x0b000100, Loc: 3, Region: 9, Type: 2}, Link: 4, Bytes: 25},
	}
	enc := Encode(recs)
	if enc.AS.Len() != 2 || enc.Prefix.Len() != 2 {
		t.Errorf("dictionary sizes wrong: AS=%d Prefix=%d", enc.AS.Len(), enc.Prefix.Len())
	}
	back := enc.Decode()
	if !reflect.DeepEqual(recs, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, recs)
	}
}

// recordingSink captures ObserveTruth calls for the truth-sink test.
type recordingSink struct{ recs []features.Record }

func (r *recordingSink) ObserveTruth(rec features.Record) { r.recs = append(r.recs, rec) }

func TestAggregatorStreamsTruthOnDrain(t *testing.T) {
	g := geo.NewGeoIP(geo.World(), 0, 1)
	a := NewAggregator(g, staticMeta(1, 1))
	sink := &recordingSink{}
	a.SetTruthSink(sink)

	rec := ipfix.FlowRecord{SrcAddr: 0x0b000001, DstAddr: 40 << 24, Octets: 100}
	a.Record(2, 1, &rec)
	a.Record(1, 3, &rec)
	if len(sink.recs) != 0 {
		t.Fatal("truth streamed before drain")
	}

	out := a.Records()
	if !reflect.DeepEqual(sink.recs, out) {
		t.Errorf("truth sink saw %+v, drain returned %+v", sink.recs, out)
	}
	if len(sink.recs) != 2 || sink.recs[0].Hour != 1 {
		t.Errorf("truth not in deterministic drain order: %+v", sink.recs)
	}

	// Draining again streams nothing new.
	a.Records()
	if len(sink.recs) != 2 {
		t.Errorf("empty drain streamed truth: %d records", len(sink.recs))
	}
}
